(* The serve subsystem under test: wire framing, token buckets, bounded
   admission, tenant quotas, disconnect cancellation, drain, and the
   no-escaped-exceptions contract under per-tenant chaos.

   Protocol tests drive [Server.handle_connection] directly over a
   socketpair — no real listening socket, no subprocess — so they run in
   the normal alcotest binary at any SJOS_DOMAINS.  Seeded bits honor
   SJOS_SERVE_SEED (default 11). *)

open Sjos_engine
module Json = Sjos_obs.Json
module Registry = Sjos_obs.Registry
module Wire = Sjos_serve.Wire
module Limiter = Sjos_serve.Limiter
module Tenant = Sjos_serve.Tenant
module Admission = Sjos_serve.Admission
module Server = Sjos_serve.Server
module Error = Sjos_guard.Error

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool
let cs = Alcotest.string

let seed =
  match Sys.getenv_opt "SJOS_SERVE_SEED" with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 11)
  | None -> 11

let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let db = lazy (Database.of_document (Lazy.force Helpers.pers_1k))

let obj fields = Json.Obj fields

let str_field j k =
  match Json.member k j with Some (Json.Str s) -> Some s | _ -> None

let ok_of j =
  match Json.member "ok" j with Some (Json.Bool b) -> b | _ -> false

let error_class j =
  match Option.bind (Json.member "error" j) (Json.member "class") with
  | Some (Json.Str c) -> c
  | _ -> "<no error class>"

let int_of j k =
  match Json.member k j with Some (Json.Int n) -> n | _ -> -1

(* ---------- wire framing ---------- *)

let test_wire_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
  @@ fun () ->
  let msgs =
    [
      Json.Null;
      obj [ ("op", Json.Str "health"); ("id", Json.Int 42) ];
      Json.List [ Json.Int 1; Json.Str "x\n\"y"; Json.Bool false ];
      Json.Str (String.make 70_000 'z');
    ]
  in
  List.iter (fun m -> Wire.write_frame a m) msgs;
  List.iter
    (fun expected ->
      match Wire.read_frame b with
      | Wire.Frame got ->
          check cb "frame round-trips" true (Json.equal expected got)
      | Wire.Eof -> Alcotest.fail "unexpected EOF"
      | Wire.Bad msg -> Alcotest.fail ("bad frame: " ^ msg))
    msgs;
  Unix.close a;
  (match Wire.read_frame b with
  | Wire.Eof -> ()
  | _ -> Alcotest.fail "expected EOF after peer close");
  check cb "peer_closed detects the close" true (Wire.peer_closed b)

let test_wire_rejects_oversize () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
  @@ fun () ->
  (* a header announcing more than max_frame_bytes must be rejected
     without buffering the payload *)
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int (Wire.max_frame_bytes + 1));
  let _ = Unix.write a hdr 0 4 in
  (match Wire.read_frame b with
  | Wire.Bad _ -> ()
  | _ -> Alcotest.fail "oversized frame accepted");
  match
    Wire.write_frame a (Json.Str (String.make (Wire.max_frame_bytes + 1) 'x'))
  with
  | () -> Alcotest.fail "oversized write accepted"
  | exception Invalid_argument _ -> ()

(* ---------- limiter ---------- *)

let test_limiter_deterministic () =
  let l = Limiter.create ~rate_per_sec:10.0 ~burst:2.0 in
  let t0 = 1_000_000_000L in
  let take now = Limiter.try_take ~now_ns:now l in
  check cb "burst token 1" true (Result.is_ok (take t0));
  check cb "burst token 2" true (Result.is_ok (take t0));
  (match take t0 with
  | Error retry_ms ->
      check cb "retry hint positive" true (retry_ms > 0.0);
      check cb "retry hint sane" true (retry_ms <= 100.0)
  | Ok () -> Alcotest.fail "empty bucket admitted");
  (* 100 ms refills exactly one token at 10/s *)
  let t1 = Int64.add t0 100_000_000L in
  check cb "refilled token" true (Result.is_ok (take t1));
  check cb "only one token refilled" true (Result.is_error (take t1))

(* ---------- server fixtures ---------- *)

let tenant_config =
  Printf.sprintf
    {|{"tenants":
        {"throttled": {"rate_per_sec": 0.000001, "burst": 1},
         "capped":    {"max_concurrent": 1},
         "slow":      {"stall_ms": 3000},
         "draindemo": {"stall_ms": 300},
         "chaotic":   {"chaos_seed": %d, "stall_ms": 1}}}|}
    seed

let make_server ?(max_active = 2) ?(max_queue = 2) () =
  let tenants =
    match
      Result.bind (Json.of_string tenant_config) (Tenant.registry_of_json)
    with
    | Ok r -> r
    | Error msg -> Alcotest.fail ("tenant config: " ^ msg)
  in
  let config =
    { Server.default_config with max_active; max_queue }
  in
  Server.create ~config ~tenants (Lazy.force db)

let request ?(tenant = "default") ?(id = 1) op extra =
  obj
    ([ ("op", Json.Str op); ("id", Json.Int id); ("tenant", Json.Str tenant) ]
    @ extra)

let exec_req ?tenant ?id pattern =
  request ?tenant ?id "exec" [ ("pattern", Json.Str pattern) ]

let q1 = "manager(//employee(/name))"
let q2 = "manager(/department(/name))"

(* ---------- protocol over a socketpair ---------- *)

let with_connection srv f =
  let client, server_side = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let th = Thread.create (fun () -> Server.handle_connection srv server_side) () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close client with Unix.Unix_error _ -> ());
      Thread.join th)
    (fun () -> f client)

let roundtrip fd req =
  Wire.write_frame fd req;
  match Wire.read_frame fd with
  | Wire.Frame j -> j
  | Wire.Eof -> Alcotest.fail "unexpected EOF from server"
  | Wire.Bad msg -> Alcotest.fail ("bad response frame: " ^ msg)

let test_protocol_roundtrip () =
  let srv = make_server () in
  Fun.protect ~finally:(fun () -> Server.shutdown srv) @@ fun () ->
  with_connection srv @@ fun fd ->
  (* health *)
  let h = roundtrip fd (request "health" []) in
  check cb "health ok" true (ok_of h);
  check (Alcotest.option cs) "health status" (Some "ok") (str_field h "status");
  (* prepare then exec by name, pipelined on one connection *)
  let p =
    roundtrip fd
      (request "prepare"
         [ ("name", Json.Str "s1"); ("pattern", Json.Str q1) ])
  in
  check cb "prepare ok" true (ok_of p);
  let e1 = roundtrip fd (request "exec" [ ("name", Json.Str "s1") ]) in
  check cb "exec by name ok" true (ok_of e1);
  let direct = Database.run (Lazy.force db) (Helpers.pat q1) in
  check ci "served matches = direct matches"
    (Array.length direct.Database.exec.Sjos_exec.Executor.tuples)
    (int_of e1 "matches");
  check (Alcotest.option cs) "served digest = direct digest"
    (Some (Server.result_digest direct.Database.exec.Sjos_exec.Executor.tuples))
    (str_field e1 "digest");
  (* inline exec of a second pattern on the same connection *)
  let e2 = roundtrip fd (exec_req q2) in
  check cb "inline exec ok" true (ok_of e2);
  (* explain and analyze *)
  let ex = roundtrip fd (request "explain" [ ("pattern", Json.Str q1) ]) in
  check cb "explain ok" true (ok_of ex);
  check cb "explain has a plan" true (str_field ex "plan" <> None);
  let an = roundtrip fd (request "analyze" [ ("pattern", Json.Str q1) ]) in
  check cb "analyze ok" true (ok_of an);
  check cb "analyze has rows" true (Json.member "analysis" an <> None);
  (* errors stay structured and the connection stays usable *)
  let bad = roundtrip fd (request "exec" [ ("pattern", Json.Str "((" ) ]) in
  check cb "parse error not ok" false (ok_of bad);
  check cs "parse error class" "parse_error" (error_class bad);
  let unk = roundtrip fd (request "frobnicate" []) in
  check cs "unknown op class" "invalid_request" (error_class unk);
  let missing = roundtrip fd (request "exec" [ ("name", Json.Str "nope") ]) in
  check cs "unknown statement class" "invalid_request" (error_class missing);
  (* id echo *)
  let echoed = roundtrip fd (request ~id:77 "health" []) in
  check ci "id echoed" 77 (int_of echoed "id")

let test_exec_matches_direct_all_ops () =
  let srv = make_server () in
  Fun.protect ~finally:(fun () -> Server.shutdown srv) @@ fun () ->
  List.iter
    (fun pattern ->
      let resp = Server.handle_request srv (exec_req pattern) in
      check cb (pattern ^ " ok") true (ok_of resp);
      let direct = Database.run (Lazy.force db) (Helpers.pat pattern) in
      check (Alcotest.option cs) (pattern ^ " digest")
        (Some
           (Server.result_digest
              direct.Database.exec.Sjos_exec.Executor.tuples))
        (str_field resp "digest"))
    [ q1; q2; "employee(/name)"; "manager(//department)" ]

(* Plan-cache hit statistics are namespaced per tenant, but the cached
   plan itself is keyed by the structural fingerprint and shared: the
   second tenant to ask an identical query reuses the first tenant's
   plan. *)
let test_cross_tenant_cache_reuse () =
  let srv = make_server () in
  Fun.protect ~finally:(fun () -> Server.shutdown srv) @@ fun () ->
  let bool_field j k =
    match Json.member k j with Some (Json.Bool b) -> Some b | _ -> None
  in
  (* a pattern no other test runs, so the shared db's cache is cold *)
  let q = "department(//employee)" in
  let r1 = Server.handle_request srv (exec_req ~tenant:"alice" q) in
  check cb "alice ok" true (ok_of r1);
  check (Alcotest.option cb) "alice optimizes cold" (Some false)
    (bool_field r1 "plan_cached");
  let r2 = Server.handle_request srv (exec_req ~tenant:"bob" q) in
  check cb "bob ok" true (ok_of r2);
  check (Alcotest.option cb) "bob reuses alice's plan" (Some true)
    (bool_field r2 "plan_cached");
  check cb "identical digests across tenants" true
    (str_field r1 "digest" = str_field r2 "digest"
    && str_field r1 "digest" <> None);
  let hits name =
    Atomic.get (Tenant.find (Server.tenants srv) name).Tenant.cache_hits
  in
  check ci "hit counted against bob" 1 (hits "bob");
  check ci "no hit counted against alice" 0 (hits "alice")

(* ---------- admission control ---------- *)

let test_queue_overflow_sheds () =
  let srv = make_server ~max_active:1 ~max_queue:0 () in
  Fun.protect ~finally:(fun () -> Server.shutdown srv) @@ fun () ->
  let adm = Server.admission srv in
  check cb "pin the only slot" true (Admission.try_acquire adm);
  Fun.protect ~finally:(fun () -> Admission.release adm) @@ fun () ->
  let resp = Server.handle_request srv (exec_req q1) in
  check cb "shed response not ok" false (ok_of resp);
  check cs "shed class" "overloaded" (error_class resp);
  (match Option.bind (Json.member "error" resp) (Json.member "retry_after_ms")
   with
  | Some j -> (
      match Json.number j with
      | Some ms -> check cb "retry_after_ms positive" true (ms > 0.0)
      | None -> Alcotest.fail "retry_after_ms not numeric")
  | None -> Alcotest.fail "overloaded carries retry_after_ms");
  (* freed slot admits again *)
  Admission.release adm;
  let ok_resp = Server.handle_request srv (exec_req q1) in
  check cb "admits after release" true (ok_of ok_resp);
  check cb "re-pin for finally" true (Admission.try_acquire adm)

let test_queued_request_proceeds () =
  let srv = make_server ~max_active:1 ~max_queue:2 () in
  Fun.protect ~finally:(fun () -> Server.shutdown srv) @@ fun () ->
  let adm = Server.admission srv in
  check cb "pin slot" true (Admission.try_acquire adm);
  let result = ref Json.Null in
  let th =
    Thread.create
      (fun () -> result := Server.handle_request srv (exec_req q1))
      ()
  in
  (* give the request time to enqueue, then free the slot; the watcher
     (or the release signal) wakes it *)
  Thread.delay 0.15;
  check ci "request is queued" 1 (Admission.queued adm);
  Admission.release adm;
  Thread.join th;
  check cb "queued request completed" true (ok_of !result)

let test_tenant_isolation () =
  let srv = make_server ~max_active:4 ~max_queue:4 () in
  Fun.protect ~finally:(fun () -> Server.shutdown srv) @@ fun () ->
  (* throttled tenant: burst of 1, negligible refill — second request
     sheds; the default tenant is unaffected before, between and after *)
  let r1 = Server.handle_request srv (exec_req ~tenant:"throttled" q1) in
  check cb "throttled first request admitted" true (ok_of r1);
  let r2 = Server.handle_request srv (exec_req ~tenant:"throttled" q1) in
  check cs "throttled second request shed" "overloaded" (error_class r2);
  let other = Server.handle_request srv (exec_req q1) in
  check cb "default tenant unaffected" true (ok_of other);
  (* capped tenant: one concurrent query; a second concurrent one sheds.
     The 'slow' stall keeps the first occupying its quota slot. *)
  let slow_started = Thread.create
      (fun () ->
        ignore
          (Server.handle_request srv
             (request ~tenant:"capped" "exec"
                [ ("pattern", Json.Str q1); ("deadline_ms", Json.Float 400.0) ])))
      ()
  in
  ignore slow_started;
  (* no reliable cross-thread start signal: the capped tenant has no
     stall, so instead check the counters after both complete *)
  Thread.join slow_started;
  let t = Tenant.find (Server.tenants srv) "capped" in
  check cb "capped tenant ran" true (Atomic.get t.Tenant.admitted >= 1)

let test_capped_tenant_sheds_concurrent () =
  let srv = make_server ~max_active:4 ~max_queue:4 () in
  Fun.protect ~finally:(fun () -> Server.shutdown srv) @@ fun () ->
  (* 'slow' stalls 3 s; its tenant allows 8 concurrent, so pin the
     capped tenant by hand instead: max_concurrent=1 *)
  let t = Tenant.find (Server.tenants srv) "capped" in
  (match Tenant.admit t with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "first admit must pass");
  let resp = Server.handle_request srv (exec_req ~tenant:"capped" q1) in
  check cs "concurrent over quota sheds" "overloaded" (error_class resp);
  Tenant.release t;
  let resp2 = Server.handle_request srv (exec_req ~tenant:"capped" q1) in
  check cb "admits after release" true (ok_of resp2)

(* ---------- disconnect cancellation ---------- *)

let counter_value name = Registry.counter_value (Registry.counter name)

let test_disconnect_cancels () =
  let was_enabled = Registry.enabled () in
  Registry.set_enabled true;
  Fun.protect ~finally:(fun () -> Registry.set_enabled was_enabled)
  @@ fun () ->
  let srv = make_server () in
  Fun.protect ~finally:(fun () -> Server.shutdown srv) @@ fun () ->
  let before = counter_value "guard.cancelled" in
  let client, server_side = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let th =
    Thread.create (fun () -> Server.handle_connection srv server_side) ()
  in
  (* 'slow' stalls 3 s polling its budget; hang up mid-stall.  The
     watcher peeks the dead socket and cancels the budget — the handler
     thread must come back long before the stall would have ended. *)
  Wire.write_frame client (exec_req ~tenant:"slow" q1);
  Thread.delay 0.2;
  Unix.close client;
  let t0 = Unix.gettimeofday () in
  Thread.join th;
  let waited = Unix.gettimeofday () -. t0 in
  check cb
    (Printf.sprintf "handler unwound by cancellation, not the stall (%.2fs)"
       waited)
    true (waited < 2.0);
  check cb "guard.cancelled incremented" true
    (counter_value "guard.cancelled" > before)

(* ---------- drain ---------- *)

let test_drain_completes_inflight () =
  let srv = make_server () in
  Fun.protect ~finally:(fun () -> Server.shutdown srv) @@ fun () ->
  with_connection srv @@ fun fd ->
  (* 'draindemo' stalls 300 ms: start it, then drain mid-flight *)
  Wire.write_frame fd (exec_req ~tenant:"draindemo" q1);
  Thread.delay 0.05;
  Server.initiate_drain srv;
  check cb "draining flag set" true (Server.draining srv);
  (match Wire.read_frame fd with
  | Wire.Frame resp ->
      check cb "in-flight request completed during drain" true (ok_of resp)
  | Wire.Eof -> Alcotest.fail "in-flight response lost to drain"
  | Wire.Bad msg -> Alcotest.fail ("bad frame: " ^ msg));
  (* the connection loop observes the drain flag and closes *)
  match Wire.read_frame fd with
  | Wire.Eof -> ()
  | Wire.Frame _ -> Alcotest.fail "connection outlived drain"
  | Wire.Bad msg -> Alcotest.fail ("bad frame: " ^ msg)

let test_drain_sheds_queued () =
  let srv = make_server ~max_active:1 ~max_queue:4 () in
  Fun.protect ~finally:(fun () -> Server.shutdown srv) @@ fun () ->
  let adm = Server.admission srv in
  check cb "pin slot" true (Admission.try_acquire adm);
  Fun.protect ~finally:(fun () -> Admission.release adm) @@ fun () ->
  let result = ref Json.Null in
  let th =
    Thread.create
      (fun () -> result := Server.handle_request srv (exec_req q1))
      ()
  in
  Thread.delay 0.15;
  check ci "request queued behind the pin" 1 (Admission.queued adm);
  Server.initiate_drain srv;
  Thread.join th;
  check cs "queued request shed on drain" "overloaded" (error_class !result)

(* ---------- chaos under load ---------- *)

let test_chaos_structured_errors_only () =
  let srv = make_server ~max_active:4 ~max_queue:8 () in
  Fun.protect ~finally:(fun () -> Server.shutdown srv) @@ fun () ->
  let patterns = [| q1; q2; "employee(/name)"; "manager(//department)" |] in
  let classes = Error.all_class_names in
  for i = 0 to 59 do
    let pattern = patterns.(i mod Array.length patterns) in
    let resp =
      Server.handle_request srv (exec_req ~tenant:"chaotic" ~id:i pattern)
    in
    (* the contract: every response is well-formed; failures carry a
       known class; nothing ever escapes as an exception *)
    match Json.member "ok" resp with
    | Some (Json.Bool true) ->
        check cb
          (Printf.sprintf "request %d has a digest" i)
          true
          (str_field resp "digest" <> None)
    | Some (Json.Bool false) ->
        let cls = error_class resp in
        check cb
          (Printf.sprintf "request %d error class %S is known" i cls)
          true (List.mem cls classes)
    | _ -> Alcotest.failf "request %d: response without ok field" i
  done

(* ---------- oversized responses ---------- *)

let test_oversized_response_structured () =
  (* a response that cannot fit one wire frame must be replaced by a
     structured invalid_request (echoing the id), never surface as
     Wire.write_frame's Invalid_argument / an escaped exception *)
  let huge = obj [ ("ok", Json.Bool true);
                   ("tuples", Json.Str (String.make (Wire.max_frame_bytes + 1) 'x')) ] in
  let payload = Server.response_payload ~id:(Json.Int 9) huge in
  check cb "substitute fits a frame" true
    (String.length payload <= Wire.max_frame_bytes);
  (match Json.of_string payload with
  | Error msg -> Alcotest.fail ("substitute is not JSON: " ^ msg)
  | Ok j ->
      check cb "substitute is an error response" false (ok_of j);
      check cs "substitute class" "invalid_request" (error_class j);
      check ci "substitute echoes the id" 9 (int_of j "id"));
  (* a small response passes through verbatim *)
  let small = obj [ ("ok", Json.Bool true) ] in
  check cs "small responses unchanged" (Json.to_string small)
    (Server.response_payload ~id:(Json.Int 1) small)

(* ---------- tenant registry bounds ---------- *)

let test_tenant_registry_bounded () =
  let reg =
    Tenant.registry ~max_ad_hoc:2 [ ("cfg", Tenant.default_quota) ]
  in
  let a = Tenant.find reg "a" in
  let b = Tenant.find reg "b" in
  check cb "ad-hoc tenants distinct under the cap" true (not (a == b));
  check cb "repeat lookup is stable" true (Tenant.find reg "a" == a);
  (* past the cap: arbitrary fresh names share one overflow tenant *)
  let c = Tenant.find reg "stranger-3" in
  let d = Tenant.find reg "stranger-4" in
  check cb "over-cap strangers share the overflow tenant" true (c == d);
  check cs "overflow tenant name" "~overflow" c.Tenant.name;
  (* cfg + a + b + ~overflow: the registry no longer grows *)
  check ci "registry stays bounded" 4 (List.length (Tenant.known reg));
  check cb "configured tenant still resolves" true
    (Tenant.find reg "cfg" == Tenant.find reg "cfg")

(* ---------- admission fairness ---------- *)

let test_arrivals_do_not_overtake_queue () =
  let adm = Admission.create ~max_active:1 ~max_queue:4 in
  check cb "pin the only slot" true (Admission.try_acquire adm);
  let gate = Atomic.make false in
  let ran = Atomic.make false in
  let th =
    Thread.create
      (fun () ->
        ignore
          (Admission.with_slot adm
             ~should_abort:(fun () -> None)
             (fun () ->
               Atomic.set ran true;
               while not (Atomic.get gate) do
                 Thread.delay 0.005
               done)))
      ()
  in
  let rec wait_queued n =
    if Admission.queued adm = 1 || n = 0 then ()
    else begin
      Thread.delay 0.01;
      wait_queued (n - 1)
    end
  in
  wait_queued 200;
  check ci "waiter is queued" 1 (Admission.queued adm);
  (* free the slot: whether or not the waiter has woken yet, a fresh
     arrival must not grab the slot ahead of the queue *)
  Admission.release adm;
  check cb "arrival cannot overtake the queue" false (Admission.try_acquire adm);
  Atomic.set gate true;
  Thread.join th;
  check cb "queued waiter got the slot" true (Atomic.get ran);
  (* queue empty again: the fast path reopens *)
  check cb "fast path reopens once the queue drains" true
    (Admission.try_acquire adm);
  Admission.release adm

(* ---------- tenant config parsing ---------- *)

let test_tenant_config_errors () =
  (match
     Result.bind
       (Json.of_string {|{"tenants": {"x": {"rate_per_sec": "fast"}}}|})
       Tenant.registry_of_json
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-numeric rate accepted");
  (match
     Result.bind
       (Json.of_string {|{"tenants": {"x": {"chaos_faults": ["nope"]}}}|})
       Tenant.registry_of_json
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown fault accepted");
  match
    Result.bind
      (Json.of_string
         {|{"default": {"max_concurrent": 3},
            "tenants": {"x": {"chaos_faults": ["truncate_candidates"],
                              "chaos_seed": 5}}}|})
      Tenant.registry_of_json
  with
  | Error msg -> Alcotest.fail msg
  | Ok reg ->
      let stranger = Tenant.find reg "unseen" in
      check ci "stranger gets default quota" 3
        stranger.Tenant.quota.Tenant.max_concurrent;
      let x = Tenant.find reg "x" in
      check cb "configured tenant has chaos" true (x.Tenant.chaos <> None)

let suite =
  [
    Alcotest.test_case "wire round-trip and EOF" `Quick test_wire_roundtrip;
    Alcotest.test_case "wire rejects oversized frames" `Quick
      test_wire_rejects_oversize;
    Alcotest.test_case "limiter is deterministic in injected time" `Quick
      test_limiter_deterministic;
    Alcotest.test_case "protocol round-trip over socketpair" `Quick
      test_protocol_roundtrip;
    Alcotest.test_case "cross-tenant plan reuse, namespaced hit counts"
      `Quick test_cross_tenant_cache_reuse;
    Alcotest.test_case "served results identical to direct exec" `Quick
      test_exec_matches_direct_all_ops;
    Alcotest.test_case "full queue sheds with overloaded" `Quick
      test_queue_overflow_sheds;
    Alcotest.test_case "queued request proceeds when a slot frees" `Quick
      test_queued_request_proceeds;
    Alcotest.test_case "tenant rate limits are isolated" `Quick
      test_tenant_isolation;
    Alcotest.test_case "tenant concurrency cap sheds" `Quick
      test_capped_tenant_sheds_concurrent;
    Alcotest.test_case "client disconnect cancels the query" `Quick
      test_disconnect_cancels;
    Alcotest.test_case "drain completes in-flight requests" `Quick
      test_drain_completes_inflight;
    Alcotest.test_case "drain sheds queued requests" `Quick
      test_drain_sheds_queued;
    Alcotest.test_case "chaos under load: structured errors only" `Quick
      test_chaos_structured_errors_only;
    Alcotest.test_case "oversized response becomes a structured error" `Quick
      test_oversized_response_structured;
    Alcotest.test_case "ad-hoc tenant creation is bounded" `Quick
      test_tenant_registry_bounded;
    Alcotest.test_case "arrivals cannot overtake queued requests" `Quick
      test_arrivals_do_not_overtake_queue;
    Alcotest.test_case "tenant config parsing" `Quick
      test_tenant_config_errors;
  ]
