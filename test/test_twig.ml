(* Differential tests for the holistic twig engine: the columnar
   TwigStack kernel against the legacy Twig_join oracle, the binary
   Stack-Tree plans, and the naive matcher — on randomized documents and
   patterns (base seed via SJOS_TWIG_SEED), both storage backends, and
   under budget truncation and chaos fault injection (structured errors
   only). *)

open Sjos_xml
open Sjos_storage
open Sjos_pattern
open Sjos_core
open Sjos_exec
open Sjos_engine
open Sjos_guard
open Sjos_datagen

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let seed_base =
  match Sys.getenv_opt "SJOS_TWIG_SEED" with
  | Some s -> ( try int_of_string s with _ -> 7)
  | None -> 7

(* ---------- deterministic random structures (independent of the
   test_properties streams, so the suites don't couple) ---------- *)

let tags = [| "a"; "b"; "c"; "d" |]

let random_doc seed =
  let rng = Rng.create (seed * 37 + 11) in
  let b = Builder.create () in
  let budget = ref (25 + Rng.int rng 80) in
  let rec node depth =
    decr budget;
    Builder.open_element b tags.(Rng.int rng (Array.length tags));
    let kids = if depth >= 7 then 0 else Rng.geometric rng ~p:0.5 ~max:4 in
    for _ = 1 to kids do
      if !budget > 0 then node (depth + 1)
    done;
    Builder.close_element b
  in
  node 0;
  Builder.finish b

let random_pattern seed =
  let rng = Rng.create (seed * 41 + 23) in
  let n = 2 + Rng.int rng 4 in
  let labels =
    Array.init n (fun _ ->
        Candidate.of_tag tags.(Rng.int rng (Array.length tags)))
  in
  let edges =
    Array.init (n - 1) (fun i ->
        let child = i + 1 in
        let parent = Rng.int rng child in
        let axis = if Rng.bool rng then Axes.Child else Axes.Descendant in
        (parent, axis, child))
  in
  Pattern.create ~labels ~edges ()

let tuple_lists run = List.map Array.to_list (Array.to_list run)
let matches_of (run : Database.query_run) =
  Array.to_list run.Database.exec.Executor.tuples

(* ---------- four-way differential on random inputs ---------- *)

let test_differential_random () =
  for i = 0 to 29 do
    let seed = seed_base + i in
    let doc = random_doc seed in
    let idx = Element_index.build doc in
    let p = random_pattern seed in
    let msg s = Printf.sprintf "seed %d %s: %s" seed (Pattern.to_string p) s in
    let naive = Naive.matches idx p in
    let hplan = Sjos_plan.Plan.holistic_of_pattern p in
    let col = Executor.execute idx p hplan in
    let leg = Executor.execute ~kernel:`Legacy idx p hplan in
    let opt =
      Optimizer.optimize ~provider:(Naive.exact_provider idx p) Optimizer.Dpp p
    in
    let bin = Executor.execute idx p opt.Optimizer.plan in
    Helpers.check_same_matches (msg "columnar twig = naive") naive
      (Array.to_list col.Executor.tuples);
    Helpers.check_same_matches (msg "legacy twig = naive") naive
      (Array.to_list leg.Executor.tuples);
    Helpers.check_same_matches (msg "binary = naive") naive
      (Array.to_list bin.Executor.tuples);
    (* the two holistic kernels agree on the canonical output order, not
       just the set *)
    check
      (Alcotest.list (Alcotest.list ci))
      (msg "canonical order parity")
      (tuple_lists col.Executor.tuples)
      (tuple_lists leg.Executor.tuples)
  done

(* The twig counters are deterministic: same query, same counters, every
   time — and path solutions are priced as buffered IO. *)
let test_columnar_work_deterministic () =
  let doc = random_doc (seed_base * 3) in
  let idx = Element_index.build doc in
  let p = random_pattern (seed_base * 3) in
  let hplan = Sjos_plan.Plan.holistic_of_pattern p in
  let once () =
    let w, r = Sjos_obs.Work.scoped (fun () -> Executor.execute idx p hplan) in
    match r with Ok run -> (w, run) | Error e -> raise e
  in
  let w1, r1 = once () in
  let w2, r2 = once () in
  check cb "work identical across runs" true (Sjos_obs.Work.equal w1 w2);
  check ci "tuples identical" (Array.length r1.Executor.tuples)
    (Array.length r2.Executor.tuples);
  check cb "io_items covers path solutions" true
    (r1.Executor.metrics.Metrics.io_items >= 2 * Array.length r1.Executor.tuples
    || Array.length r1.Executor.tuples = 0
    || Pattern.edge_count p = 0)

(* ---------- storage backends: identical output and logical work ------ *)

let test_backend_parity () =
  let doc = Lazy.force Helpers.pers_1k in
  List.iter
    (fun src ->
      let p = Helpers.pat src in
      let run_with config =
        let db = Database.of_document ~storage:config doc in
        let w, r =
          Sjos_obs.Work.scoped (fun () ->
              Database.run
                ~opts:
                  (Query_opts.make ~engine:Optimizer.Holistic ~use_cache:false
                     ())
                db p)
        in
        let run = match r with Ok run -> run | Error e -> raise e in
        let out = tuple_lists run.Database.exec.Executor.tuples in
        Database.dispose db;
        (out, w)
      in
      let out_m, w_m = run_with Column_store.mem in
      let out_d, w_d =
        run_with (Column_store.disk ~page_size:128 ~pool_pages:8 ())
      in
      check
        (Alcotest.list (Alcotest.list ci))
        (src ^ ": mem and disk produce identical ordered tuples")
        out_m out_d;
      check cb
        (src ^ ": work identical modulo page accounting")
        true
        (Sjos_obs.Work.equal_mod_io w_m w_d))
    [
      "manager(//employee(/name))";
      "manager(//employee(//name),//department)";
      "manager(/name,//employee)";
    ]

(* ---------- engine selection ---------- *)

let pers_db = lazy (Database.of_document (Lazy.force Helpers.pers_1k))

let test_holistic_engine_forced () =
  let db = Lazy.force pers_db in
  let p = Helpers.pat "manager(//employee(/name),//department)" in
  let r = Database.optimize ~engine:Optimizer.Holistic db p in
  check cb "plan is holistic" true (Sjos_plan.Plan.uses_holistic r.Optimizer.plan);
  check ci "one plan considered" 1 r.Optimizer.plans_considered;
  check cb "EXPLAIN names the operator" true
    (Helpers.contains (Database.explain ~engine:Optimizer.Holistic db p)
       "TwigStack")

let test_auto_matches_binary_results () =
  let db = Lazy.force pers_db in
  List.iter
    (fun src ->
      let p = Helpers.pat src in
      let bin =
        Database.run ~opts:(Query_opts.make ~use_cache:false ()) db p
      in
      let auto =
        Database.run
          ~opts:(Query_opts.make ~engine:Optimizer.Auto ~use_cache:false ())
          db p
      in
      let hol =
        Database.run
          ~opts:
            (Query_opts.make ~engine:Optimizer.Holistic ~use_cache:false ())
          db p
      in
      Helpers.check_same_matches (src ^ ": auto = binary") (matches_of bin)
        (matches_of auto);
      Helpers.check_same_matches (src ^ ": holistic = binary") (matches_of bin)
        (matches_of hol);
      check ci
        (src ^ ": auto considered the holistic alternative too")
        (bin.Database.opt.Optimizer.plans_considered + 1)
        auto.Database.opt.Optimizer.plans_considered)
    [
      "manager(//employee)";
      "manager(//employee(/name))";
      "manager(//employee(/name),//department(/name))";
    ]

(* ---------- budgets: truncation is a structured failure ---------- *)

let test_budget_truncation () =
  let db = Lazy.force pers_db in
  let p = Helpers.pat "manager(//employee(/name),//department)" in
  let full =
    Database.run
      ~opts:(Query_opts.make ~engine:Optimizer.Holistic ~use_cache:false ())
      db p
  in
  let n = Array.length full.Database.exec.Executor.tuples in
  check cb "fixture produces enough matches" true (n >= 2);
  List.iter
    (fun kernel ->
      let idx = Database.index db in
      let hplan = Sjos_plan.Plan.holistic_of_pattern p in
      match
        Error.protect (fun () ->
            Executor.execute ~kernel ~max_tuples:(n - 1) idx p hplan)
      with
      | Ok _ -> Alcotest.fail "truncated budget must fail"
      | Error (Error.Budget_exhausted { during; _ }) ->
          check Alcotest.string "failed during execution" "execute" during
      | Error e ->
          Alcotest.fail ("unexpected error class: " ^ Error.class_name e))
    [ `Columnar; `Legacy ]

(* ---------- legacy oracle: external streams are verified ---------- *)

let test_legacy_verifies_streams () =
  let idx = Lazy.force Helpers.tiny_index in
  let p = Helpers.pat "manager(//employee)" in
  let reversed i =
    let a = Array.copy (Candidate.select idx (Pattern.label p i)) in
    let n = Array.length a in
    Array.init n (fun j -> a.(n - 1 - j))
  in
  (match
     Error.protect (fun () ->
         Twig_join.run ~candidates:reversed ~metrics:(Metrics.create ()) idx p)
   with
  | Error (Error.Corrupt_input { reason; _ }) ->
      check cb "reason mentions order" true
        (Helpers.contains reason "document order")
  | Ok _ -> Alcotest.fail "reversed stream must be rejected"
  | Error e -> Alcotest.fail ("unexpected error class: " ^ Error.class_name e));
  let bogus _ =
    [| { (Document.node (Lazy.force Helpers.tiny_pers) 0) with Node.id = 999 } |]
  in
  match
    Error.protect (fun () ->
        Twig_join.run ~candidates:bogus ~metrics:(Metrics.create ()) idx p)
  with
  | Error (Error.Corrupt_input { reason; _ }) ->
      check cb "reason mentions the id" true (Helpers.contains reason "999")
  | Ok _ -> Alcotest.fail "out-of-document id must be rejected"
  | Error e -> Alcotest.fail ("unexpected error class: " ^ Error.class_name e)

(* External-but-honest streams reproduce the default result exactly. *)
let test_legacy_external_streams_honest () =
  let idx = Lazy.force Helpers.tiny_index in
  let p = Helpers.pat "manager(//employee(/name))" in
  let honest i = Candidate.select idx (Pattern.label p i) in
  let m1 = Metrics.create () and m2 = Metrics.create () in
  let a = Twig_join.run ~metrics:m1 idx p in
  let b = Twig_join.run ~candidates:honest ~metrics:m2 idx p in
  Helpers.check_same_matches "external streams change nothing"
    (Array.to_list a) (Array.to_list b)

(* ---------- chaos: structured errors only, results never invented ----- *)

let test_chaos_parity () =
  let db = Lazy.force pers_db in
  let patterns =
    [ "manager(//employee(/name))"; "manager(//employee,//department)" ]
  in
  List.iter
    (fun engine ->
      for i = 0 to 14 do
        let seed = (seed_base * 1000) + i in
        List.iter
          (fun src ->
            let p = Helpers.pat src in
            let chaos =
              Chaos.create
                ~faults:
                  Chaos.
                    [ Truncate_candidates; Unsort_candidates; Lie_cardinalities ]
                ~seed ()
            in
            match
              Database.run_r
                ~opts:(Query_opts.make ~engine ~chaos ~use_cache:false ())
                db p
            with
            | Ok run ->
                (* whatever survives is a subset of the truth: chaos can
                   drop candidates, never invent matches *)
                let truth =
                  Database.run
                    ~opts:(Query_opts.make ~engine ~use_cache:false ())
                    db p
                in
                let truth_sorted =
                  Helpers.sorted_tuples (matches_of truth)
                in
                let got = Helpers.sorted_tuples (matches_of run) in
                let rec is_subset small big =
                  match (small, big) with
                  | [], _ -> true
                  | _ :: _, [] -> false
                  | s :: srest, b :: brest ->
                      if s = b then is_subset srest brest
                      else if compare s b > 0 then is_subset small brest
                      else false
                in
                check cb
                  (Printf.sprintf "%s seed %d: no invented matches" src seed)
                  true
                  (is_subset got truth_sorted)
            | Error (Error.Corrupt_input _) -> ()
            | Error e ->
                Alcotest.fail
                  (Printf.sprintf "%s seed %d: unexpected class %s" src seed
                     (Error.class_name e))
            | exception e ->
                Alcotest.fail
                  (Printf.sprintf "%s seed %d: unstructured exception %s" src
                     seed (Printexc.to_string e)))
          patterns
      done)
    [ Optimizer.Holistic; Optimizer.Auto ]

let suite =
  [
    Alcotest.test_case "differential: columnar/legacy/binary/naive" `Quick
      test_differential_random;
    Alcotest.test_case "columnar twig work is deterministic" `Quick
      test_columnar_work_deterministic;
    Alcotest.test_case "mem and disk backends agree bit-for-bit" `Quick
      test_backend_parity;
    Alcotest.test_case "engine=holistic forces the twig plan" `Quick
      test_holistic_engine_forced;
    Alcotest.test_case "engine=auto matches binary results" `Quick
      test_auto_matches_binary_results;
    Alcotest.test_case "budget truncation fails structurally" `Quick
      test_budget_truncation;
    Alcotest.test_case "legacy oracle verifies external streams" `Quick
      test_legacy_verifies_streams;
    Alcotest.test_case "legacy oracle accepts honest external streams" `Quick
      test_legacy_external_streams_honest;
    Alcotest.test_case "chaos: structured errors, no invented matches" `Quick
      test_chaos_parity;
  ]
