let () =
  Alcotest.run "sjos"
    [
      ("xml", Test_xml.suite);
      ("storage", Test_storage.suite);
      ("storage-extra", Test_storage_extra.suite);
      ("histogram", Test_histogram.suite);
      ("pattern", Test_pattern.suite);
      ("xpath", Test_xpath.suite);
      ("cost+plan", Test_cost_plan.suite);
      ("exec", Test_exec.suite);
      ("batch", Test_batch.suite);
      ("optimizer", Test_optimizer.suite);
      ("datagen", Test_datagen.suite);
      ("engine", Test_engine.suite);
      ("cache", Test_cache.suite);
      ("obs", Test_obs.suite);
      ("extensions", Test_extensions.suite);
      ("guard", Test_guard.suite);
      ("par", Test_par.suite);
      ("store", Test_store.suite);
      ("serve", Test_serve.suite);
      ("work", Test_work.suite);
      ("twig", Test_twig.suite);
      ("bigopt", Test_bigopt.suite);
      ("properties", Test_properties.suite);
    ]
