(* Observability layer: JSON, spans, registry, and EXPLAIN ANALYZE. *)

open Sjos_obs
open Sjos_engine

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool
let cs = Alcotest.string

let with_obs_enabled f =
  Report.reset_all ();
  Report.enable_all ();
  Fun.protect
    ~finally:(fun () ->
      Report.disable_all ();
      Report.reset_all ())
    f

(* ---------- JSON ---------- *)

let sample_json =
  Json.Obj
    [
      ("null", Json.Null);
      ("flag", Json.Bool true);
      ("n", Json.Int (-42));
      ("x", Json.Float 1.5);
      ("big", Json.Float 5232.0666643235254);
      ("s", Json.Str "quote \" backslash \\ newline \n tab \t");
      ("empty_list", Json.List []);
      ("empty_obj", Json.Obj []);
      ( "nested",
        Json.List [ Json.Int 1; Json.Obj [ ("k", Json.Str "v") ]; Json.Null ] );
    ]

let test_json_roundtrip () =
  let compact = Json.to_string sample_json in
  let pretty = Json.to_string_pretty sample_json in
  (match Json.of_string compact with
  | Ok j -> check cb "compact round-trips" true (Json.equal j sample_json)
  | Error e -> Alcotest.failf "compact parse failed: %s" e);
  (match Json.of_string pretty with
  | Ok j -> check cb "pretty round-trips" true (Json.equal j sample_json)
  | Error e -> Alcotest.failf "pretty parse failed: %s" e);
  (* non-finite floats serialize as null (valid JSON) *)
  let nan_doc = Json.to_string (Json.List [ Json.Float nan ]) in
  check cs "nan -> null" "[null]" nan_doc;
  (* malformed inputs are rejected, not crashed on *)
  List.iter
    (fun bad ->
      match Json.of_string bad with
      | Ok _ -> Alcotest.failf "accepted malformed JSON: %s" bad
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2" ]

let test_json_accessors () =
  check cb "member hit" true
    (Json.member "n" sample_json = Some (Json.Int (-42)));
  check cb "member miss" true (Json.member "absent" sample_json = None);
  check cb "number of int" true (Json.number (Json.Int 3) = Some 3.0);
  check cb "number of float" true (Json.number (Json.Float 2.5) = Some 2.5);
  check cb "number of str" true (Json.number (Json.Str "x") = None)

(* ---------- spans ---------- *)

let test_span_nesting () =
  with_obs_enabled (fun () ->
      let outer = Trace.begin_span "outer" in
      let inner = Trace.begin_span "inner" in
      Trace.end_span inner ~attrs:[ ("rows", Json.Int 7) ];
      Trace.end_span outer;
      Trace.with_span "second_root" (fun () -> Trace.event "tick");
      match Trace.to_json () with
      | Json.List [ first; second ] ->
          check cb "first root named outer" true
            (Json.member "name" first = Some (Json.Str "outer"));
          (match Json.member "children" first with
          | Some (Json.List [ child ]) ->
              check cb "inner nests under outer" true
                (Json.member "name" child = Some (Json.Str "inner"));
              let attrs =
                match Json.member "attrs" child with
                | Some a -> a
                | None -> Json.Null
              in
              check cb "close attrs recorded" true
                (Json.member "rows" attrs = Some (Json.Int 7))
          | _ -> Alcotest.fail "outer should have exactly one child");
          check cb "second root present" true
            (Json.member "name" second = Some (Json.Str "second_root"))
      | j -> Alcotest.failf "unexpected trace shape: %s" (Json.to_string j))

let test_span_orphan_close () =
  with_obs_enabled (fun () ->
      (* closing a span also closes still-open descendants *)
      let outer = Trace.begin_span "outer" in
      let _leaked = Trace.begin_span "leaked" in
      Trace.end_span outer;
      check cb "forest not empty" true (not (Trace.is_empty ()));
      let rendered = Trace.to_string () in
      check cb "render mentions leaked span" true
        (Helpers.contains rendered "leaked"))

(* ---------- registry ---------- *)

let test_counter_aggregation () =
  with_obs_enabled (fun () ->
      let c = Registry.counter "test.counter" in
      Registry.incr c;
      Registry.add c 4;
      (* same name, same instrument *)
      Registry.incr (Registry.counter "test.counter");
      check ci "counter aggregates" 6 (Registry.counter_value c);
      let t = Registry.timer "test.timer" in
      Registry.add_seconds t 0.25;
      Registry.add_seconds t 0.5;
      check ci "timer count" 2 (Registry.timer_count t);
      Alcotest.(check (float 1e-9)) "timer total" 0.75 (Registry.timer_total t);
      let json = Registry.to_json () in
      match Json.member "counters" json with
      | Some counters ->
          check cb "counter exported" true
            (Json.member "test.counter" counters = Some (Json.Int 6))
      | None -> Alcotest.fail "registry JSON lacks counters")

let test_noop_mode () =
  Report.reset_all ();
  (* both layers disabled: instrumented code must record nothing *)
  check cb "registry off by default" false (Registry.enabled ());
  check cb "trace off by default" false (Trace.enabled ());
  let s = Trace.begin_span "ignored" in
  check cb "disabled begin_span yields null span" true (s == Trace.null_span);
  Trace.end_span s;
  Trace.event "ignored event";
  let db = Database.of_string Helpers.tiny_pers_xml in
  let pat = Sjos_pattern.Parse.pattern "manager(//employee(/name))" in
  ignore (Database.analyze db pat);
  check cb "no spans recorded" true (Trace.is_empty ());
  (* a full optimize+execute left the registry without a single instrument —
     the guarded hot paths never even registered their names *)
  check cs "report renders empty" "" (Report.to_string ());
  (* explicit recording calls while disabled are no-ops too (the probe
     lookup itself registers the name, so check this after the emptiness
     assertion above) *)
  Registry.incr (Registry.counter "noop.counter");
  check ci "counter untouched by disabled incr" 0
    (Registry.counter_value (Registry.counter "noop.counter"));
  check cb "executor timer absent" true
    (Registry.timer_count (Registry.timer "executor.seconds") = 0);
  Report.reset_all ()

(* ---------- tracing must not change optimizer behavior ---------- *)

let test_counters_invariant_under_tracing () =
  let db =
    Database.of_document
      (Workload.generate ~size:800 Workload.q_pers_3_d.Workload.dataset)
  in
  let pat = Workload.q_pers_3_d.Workload.pattern in
  let effort algo =
    let r = Database.optimize ~algorithm:algo db pat in
    let e = r.Sjos_core.Optimizer.effort in
    Sjos_core.Effort.
      (e.considered, e.generated, e.expanded, e.pruned_bound, e.pruned_deadend)
  in
  let algos =
    Sjos_core.Optimizer.
      [ Dp; Dpp; Dpp_no_lookahead; Dpap_eb 2; Dpap_ld; Fp ]
  in
  let plain = List.map effort algos in
  let traced = with_obs_enabled (fun () -> List.map effort algos) in
  List.iter2
    (fun (c, g, e, pb, pd) (c', g', e', pb', pd') ->
      check ci "considered unchanged" c c';
      check ci "generated unchanged" g g';
      check ci "expanded unchanged" e e';
      check ci "pruned_bound unchanged" pb pb';
      check ci "pruned_deadend unchanged" pd pd')
    plain traced

(* ---------- EXPLAIN ANALYZE ---------- *)

let analyze_queries () =
  (* every workload query, on small data so the whole matrix stays fast *)
  List.map
    (fun (q : Workload.query) ->
      let db =
        Database.of_document (Workload.generate ~size:600 q.Workload.dataset)
      in
      (q, db, Database.analyze db q.Workload.pattern))
    Workload.queries

let test_analyze_rows_populated () =
  List.iter
    (fun ((q : Workload.query), _db, a) ->
      let plan = a.Database.opt.Sjos_core.Optimizer.plan in
      let rec count_ops p =
        1
        +
        match p with
        | Sjos_plan.Plan.Index_scan _ | Sjos_plan.Plan.Holistic _ -> 0
        | Sjos_plan.Plan.Sort { input; _ } -> count_ops input
        | Sjos_plan.Plan.Structural_join { anc_side; desc_side; _ } ->
            count_ops anc_side + count_ops desc_side
      in
      check ci
        (q.Workload.id ^ ": one analysis row per plan operator")
        (count_ops plan)
        (List.length a.Database.rows);
      List.iter
        (fun (r : Sjos_plan.Explain.analysis_row) ->
          let name = q.Workload.id in
          check cb (name ^ ": est_rows finite") true
            (Float.is_finite r.Sjos_plan.Explain.est_rows);
          check cb (name ^ ": est_rows >= 0") true
            (r.Sjos_plan.Explain.est_rows >= 0.0);
          check cb (name ^ ": actual_rows >= 0") true
            (r.Sjos_plan.Explain.actual_rows >= 0);
          check cb (name ^ ": est_units >= 0") true
            (r.Sjos_plan.Explain.est_units >= 0.0);
          check cb (name ^ ": actual_units >= 0") true
            (r.Sjos_plan.Explain.actual_units >= 0.0);
          check cb (name ^ ": q_error >= 1") true
            (r.Sjos_plan.Explain.q_error >= 1.0);
          check cb (name ^ ": seconds >= 0") true
            (r.Sjos_plan.Explain.seconds >= 0.0))
        a.Database.rows;
      (* the root row's actual cardinality is the query's match count *)
      match a.Database.rows with
      | root :: _ ->
          check ci
            (q.Workload.id ^ ": root actual_rows = matches")
            (Array.length a.Database.exec.Sjos_exec.Executor.tuples)
            root.Sjos_plan.Explain.actual_rows
      | [] -> Alcotest.fail "no analysis rows")
    (analyze_queries ())

let test_analyze_renderings () =
  let db = Database.of_string Helpers.tiny_pers_xml in
  let pat = Sjos_pattern.Parse.pattern "manager(//employee(/name))" in
  let a = Database.analyze db pat in
  let table = Sjos_plan.Explain.analyze_to_string pat a.Database.rows in
  List.iter
    (fun needle ->
      check cb ("table mentions " ^ needle) true (Helpers.contains table needle))
    [ "est.rows"; "act.rows"; "q-err"; "act.units"; "time(ms)"; "IdxScan" ];
  let json = Sjos_plan.Explain.analysis_to_json pat a.Database.rows in
  match Json.of_string (Json.to_string_pretty json) with
  | Ok j -> check cb "analysis JSON round-trips" true (Json.equal j json)
  | Error e -> Alcotest.failf "analysis JSON did not parse: %s" e

let test_q_error () =
  let q = Sjos_plan.Explain.q_error in
  Alcotest.(check (float 1e-9)) "exact" 1.0 (q ~est:10.0 ~actual:10.);
  Alcotest.(check (float 1e-9)) "over by 2x" 2.0 (q ~est:20.0 ~actual:10.);
  Alcotest.(check (float 1e-9)) "under by 4x" 4.0 (q ~est:2.5 ~actual:10.);
  (* zeroes clamp instead of dividing by zero *)
  check cb "zero actual finite" true (Float.is_finite (q ~est:5.0 ~actual:0.));
  check cb "zero both" true (q ~est:0.0 ~actual:0. = 1.0)

(* ---------- optimizer result export ---------- *)

let test_optimizer_result_json () =
  let db = Database.of_string Helpers.tiny_pers_xml in
  let pat = Sjos_pattern.Parse.pattern "manager(//employee(/name))" in
  let r = Database.optimize ~algorithm:Sjos_core.Optimizer.Dpp db pat in
  let json = Sjos_core.Optimizer.result_to_json pat r in
  check cb "algorithm present" true
    (Json.member "algorithm" json = Some (Json.Str "DPP"));
  check cb "plans_considered matches record" true
    (Json.member "plans_considered" json
    = Some (Json.Int r.Sjos_core.Optimizer.plans_considered));
  (match Json.member "effort" json with
  | Some effort ->
      check cb "effort.considered present" true
        (Json.member "considered" effort
        = Some (Json.Int r.Sjos_core.Optimizer.plans_considered))
  | None -> Alcotest.fail "effort block missing");
  match Json.of_string (Json.to_string json) with
  | Ok j -> check cb "result JSON round-trips" true (Json.equal j json)
  | Error e -> Alcotest.failf "result JSON did not parse: %s" e

let suite =
  [
    Alcotest.test_case "JSON round-trip and rejection" `Quick
      test_json_roundtrip;
    Alcotest.test_case "JSON accessors" `Quick test_json_accessors;
    Alcotest.test_case "span nesting and attrs" `Quick test_span_nesting;
    Alcotest.test_case "closing closes open descendants" `Quick
      test_span_orphan_close;
    Alcotest.test_case "counter and timer aggregation" `Quick
      test_counter_aggregation;
    Alcotest.test_case "disabled layer records nothing" `Quick test_noop_mode;
    Alcotest.test_case "tracing leaves search effort unchanged" `Quick
      test_counters_invariant_under_tracing;
    Alcotest.test_case "EXPLAIN ANALYZE covers every operator" `Quick
      test_analyze_rows_populated;
    Alcotest.test_case "EXPLAIN ANALYZE renderings" `Quick
      test_analyze_renderings;
    Alcotest.test_case "q-error definition" `Quick test_q_error;
    Alcotest.test_case "optimizer result JSON" `Quick
      test_optimizer_result_json;
  ]
