(* Differential properties for the columnar batch execution engine: on
   randomized documents x tag pairs x axes x both Stack-Tree variants, the
   flat-array kernels must produce exactly the tuple sequence (same
   tuples, same order) and exactly the counters of the legacy list-based
   kernels kept in {!Sjos_exec.Stack_tree_legacy} — including on
   chaos-truncated inputs.  [Metrics.skipped_items] is deliberately
   excluded from the comparison: it is the batch engine's own diagnostic
   and is always 0 for the legacy kernels.

   Seeds are deterministic; CI varies the base via the SJOS_BATCH_SEED
   environment variable so different runs explore different documents
   while any failure stays replayable from its seed. *)

open Sjos_xml
open Sjos_storage
open Sjos_plan
open Sjos_core
open Sjos_exec

let check = Alcotest.check
let ci = Alcotest.int

let seed_base =
  match Sys.getenv_opt "SJOS_BATCH_SEED" with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 7)
  | None -> 7

(* ---------- comparison helpers ---------- *)

let check_same_tuple_seq msg (expected : Tuple.t array) (actual : Tuple.t array)
    =
  check ci (msg ^ ": length") (Array.length expected) (Array.length actual);
  Array.iteri
    (fun i t ->
      if not (Tuple.equal t actual.(i)) then
        Alcotest.failf "%s: tuple %d differs: %s vs %s" msg i
          (Tuple.to_string t)
          (Tuple.to_string actual.(i)))
    expected

(* skipped_items deliberately not compared; see the header comment. *)
let check_metrics_equal msg (a : Metrics.t) (b : Metrics.t) =
  check ci (msg ^ ": index_items") a.Metrics.index_items b.Metrics.index_items;
  check ci (msg ^ ": stack_ops") a.Metrics.stack_ops b.Metrics.stack_ops;
  check ci (msg ^ ": io_items") a.Metrics.io_items b.Metrics.io_items;
  check ci (msg ^ ": sorted_items") a.Metrics.sorted_items
    b.Metrics.sorted_items;
  Helpers.check_float (msg ^ ": sort_cost") a.Metrics.sort_cost
    b.Metrics.sort_cost;
  check ci (msg ^ ": output_tuples") a.Metrics.output_tuples
    b.Metrics.output_tuples;
  check ci (msg ^ ": joins") a.Metrics.joins b.Metrics.joins;
  check ci (msg ^ ": sorts") a.Metrics.sorts b.Metrics.sorts;
  check ci (msg ^ ": legacy skipped_items = 0") 0 a.Metrics.skipped_items

let docs_under_test seed =
  [
    ("pers", Sjos_datagen.Pers.generate ~seed ~target_nodes:600 ());
    ("dblp", Sjos_datagen.Dblp.generate ~seed:(seed + 1) ~target_nodes:600 ());
    ( "mbench",
      Sjos_datagen.Mbench.generate ~seed:(seed + 2) ~target_nodes:600 () );
  ]

let scan idx tag slot width ~metrics =
  Operators.index_scan ~metrics ~width ~slot (Element_index.lookup idx tag)

(* Run one (anc tag, desc tag, axis, algo) case through both engines. *)
let join_both ~doc ~idx ~atag ~dtag ~axis ~algo =
  let legacy_metrics = Metrics.create () in
  let anc_l = scan idx atag 0 2 ~metrics:legacy_metrics in
  let desc_l = scan idx dtag 1 2 ~metrics:legacy_metrics in
  let legacy =
    Stack_tree_legacy.join ~metrics:legacy_metrics ~doc ~axis ~algo
      ~anc:(anc_l, 0) ~desc:(desc_l, 1) ()
  in
  let batch_metrics = Metrics.create () in
  let anc_b = scan idx atag 0 2 ~metrics:batch_metrics in
  let desc_b = scan idx dtag 1 2 ~metrics:batch_metrics in
  let batch =
    Stack_tree.join ~metrics:batch_metrics ~doc ~axis ~algo ~anc:(anc_b, 0)
      ~desc:(desc_b, 1) ()
  in
  (legacy, legacy_metrics, batch, batch_metrics)

let all_cases = [ Plan.Stack_tree_desc; Plan.Stack_tree_anc ]
let all_axes = [ Axes.Descendant; Axes.Child ]

(* ---------- kernel-level differential ---------- *)

let test_kernel_differential () =
  List.iter
    (fun (name, doc) ->
      let idx = Element_index.build doc in
      let tags = Array.of_list (Document.tags doc) in
      let rng = Sjos_datagen.Rng.create (seed_base + 11) in
      for _ = 1 to 24 do
        let atag = tags.(Sjos_datagen.Rng.int rng (Array.length tags)) in
        let dtag = tags.(Sjos_datagen.Rng.int rng (Array.length tags)) in
        List.iter
          (fun axis ->
            List.iter
              (fun algo ->
                let msg =
                  Printf.sprintf "%s %s->%s %s/%s" name atag dtag
                    (match axis with Axes.Child -> "child" | _ -> "desc")
                    (match algo with
                    | Plan.Stack_tree_desc -> "STJ-D"
                    | Plan.Stack_tree_anc -> "STJ-A")
                in
                let legacy, lm, batch, bm =
                  join_both ~doc ~idx ~atag ~dtag ~axis ~algo
                in
                check_same_tuple_seq msg legacy batch;
                check_metrics_equal msg lm bm)
              all_cases)
          all_axes
      done)
    (docs_under_test seed_base)

(* ---------- multi-join chains (duplicate join values) ---------- *)

let chain_legacy ~doc ~idx (t0, t1, t2) ~axis ~algo =
  let metrics = Metrics.create () in
  let a = scan idx t0 0 3 ~metrics in
  let b = scan idx t1 1 3 ~metrics in
  let j1 =
    Stack_tree_legacy.join ~metrics ~doc ~axis ~algo ~anc:(a, 0) ~desc:(b, 1)
      ()
  in
  let sorted = Operators.sort_legacy ~metrics ~doc ~by:1 j1 in
  let c = scan idx t2 2 3 ~metrics in
  let out =
    Stack_tree_legacy.join ~metrics ~doc ~axis ~algo ~anc:(sorted, 1)
      ~desc:(c, 2) ()
  in
  (out, metrics)

let chain_batch ~doc ~idx (t0, t1, t2) ~axis ~algo =
  let metrics = Metrics.create () in
  let a = scan idx t0 0 3 ~metrics in
  let b = scan idx t1 1 3 ~metrics in
  let j1 =
    Stack_tree.join ~metrics ~doc ~axis ~algo ~anc:(a, 0) ~desc:(b, 1) ()
  in
  let sorted = Operators.sort ~metrics ~doc ~by:1 j1 in
  let c = scan idx t2 2 3 ~metrics in
  let out =
    Stack_tree.join ~metrics ~doc ~axis ~algo ~anc:(sorted, 1) ~desc:(c, 2) ()
  in
  (out, metrics)

let test_multi_join_chain () =
  let doc = Lazy.force Helpers.pers_1k in
  let idx = Element_index.build doc in
  let chains =
    [ ("manager", "employee", "name"); ("manager", "manager", "name") ]
  in
  List.iter
    (fun chain ->
      List.iter
        (fun axis ->
          List.iter
            (fun algo ->
              let legacy, lm = chain_legacy ~doc ~idx chain ~axis ~algo in
              let batch, bm = chain_batch ~doc ~idx chain ~axis ~algo in
              check_same_tuple_seq "chain" legacy batch;
              check_metrics_equal "chain" lm bm)
            all_cases)
        all_axes)
    chains

(* ---------- chaos-style inputs ---------- *)

let test_truncated_inputs () =
  let doc = Lazy.force Helpers.pers_1k in
  let idx = Element_index.build doc in
  let rng = Sjos_datagen.Rng.create (seed_base + 23) in
  for _ = 1 to 12 do
    let metrics = Metrics.create () in
    let anc = scan idx "manager" 0 2 ~metrics in
    let desc = scan idx "name" 1 2 ~metrics in
    (* truncation keeps a sorted prefix — both engines must agree *)
    let anc = Array.sub anc 0 (Sjos_datagen.Rng.int rng (Array.length anc + 1)) in
    let desc =
      Array.sub desc 0 (Sjos_datagen.Rng.int rng (Array.length desc + 1))
    in
    List.iter
      (fun algo ->
        let lm = Metrics.create () and bm = Metrics.create () in
        let legacy =
          Stack_tree_legacy.join ~metrics:lm ~doc ~axis:Axes.Descendant ~algo
            ~anc:(anc, 0) ~desc:(desc, 1) ()
        in
        let batch =
          Stack_tree.join ~metrics:bm ~doc ~axis:Axes.Descendant ~algo
            ~anc:(anc, 0) ~desc:(desc, 1) ()
        in
        check_same_tuple_seq "truncated" legacy batch;
        check_metrics_equal "truncated" lm bm)
      all_cases
  done

let test_unsorted_rejected_identically () =
  let doc = Lazy.force Helpers.pers_1k in
  let idx = Element_index.build doc in
  let metrics = Metrics.create () in
  let anc = scan idx "manager" 0 2 ~metrics in
  let desc = scan idx "name" 1 2 ~metrics in
  let n = Array.length anc in
  Alcotest.(check bool) "enough managers" true (n > 2);
  (* swap two tuples with distinct join nodes: unsorted input *)
  let unsorted = Array.copy anc in
  let tmp = unsorted.(0) in
  unsorted.(0) <- unsorted.(n - 1);
  unsorted.(n - 1) <- tmp;
  let expected = "Stack_tree: input not sorted by its join slot" in
  (match
     Stack_tree_legacy.join ~metrics:(Metrics.create ()) ~doc
       ~axis:Axes.Descendant ~algo:Plan.Stack_tree_desc ~anc:(unsorted, 0)
       ~desc:(desc, 1) ()
   with
  | exception Invalid_argument m -> check Alcotest.string "legacy rejects" expected m
  | _ -> Alcotest.fail "legacy accepted unsorted input");
  match
    Stack_tree.join ~metrics:(Metrics.create ()) ~doc ~axis:Axes.Descendant
      ~algo:Plan.Stack_tree_desc ~anc:(unsorted, 0) ~desc:(desc, 1) ()
  with
  | exception Invalid_argument m -> check Alcotest.string "batch rejects" expected m
  | _ -> Alcotest.fail "batch accepted unsorted input"

(* ---------- executor-level differential ---------- *)

let run_both_kernels ?fetch index pattern =
  let provider = Sjos_exec.Naive.exact_provider index pattern in
  let _, plan = Dpp.run (Search.make_ctx ~provider pattern) in
  let legacy = Executor.execute ?fetch ~kernel:`Legacy index pattern plan in
  let batch = Executor.execute ?fetch ~kernel:`Columnar index pattern plan in
  (legacy, batch)

let test_executor_kernel_differential () =
  List.iter
    (fun (query : Sjos_engine.Workload.query) ->
      let doc =
        Sjos_engine.Workload.generate ~size:1500 query.Sjos_engine.Workload.dataset
      in
      let index = Element_index.build doc in
      let legacy, batch =
        run_both_kernels index query.Sjos_engine.Workload.pattern
      in
      let msg = query.Sjos_engine.Workload.id in
      check_same_tuple_seq msg legacy.Executor.tuples batch.Executor.tuples;
      check_metrics_equal msg legacy.Executor.metrics batch.Executor.metrics;
      Helpers.check_float (msg ^ ": cost units") legacy.Executor.cost_units
        batch.Executor.cost_units)
    Sjos_engine.Workload.queries

let test_executor_fetch_differential () =
  (* an external fetch that truncates candidate streams: both kernels see
     the same degraded inputs and must still agree *)
  let query = Sjos_engine.Workload.q_pers_3_d in
  let doc = Sjos_engine.Workload.generate ~size:1500 Sjos_engine.Workload.Pers in
  let index = Element_index.build doc in
  let fetch spec =
    let base = Candidate.select index spec in
    Array.sub base 0 (2 * Array.length base / 3)
  in
  let legacy, batch =
    run_both_kernels ~fetch index query.Sjos_engine.Workload.pattern
  in
  check_same_tuple_seq "fetch" legacy.Executor.tuples batch.Executor.tuples;
  check_metrics_equal "fetch" legacy.Executor.metrics batch.Executor.metrics

(* ---------- the skip-ahead actually skips ---------- *)

let test_skip_ahead_counts () =
  (* Mbench at this size has many level-tagged joins where most input is
     unproductive; assert the batch engine records skips somewhere while
     still matching the legacy engine everywhere (covered above). *)
  let doc = Lazy.force Helpers.mbench_1k in
  let idx = Element_index.build doc in
  let total = ref 0 in
  let tags = Array.of_list (Document.tags doc) in
  Array.iter
    (fun atag ->
      Array.iter
        (fun dtag ->
          let _, _, _, bm = join_both ~doc ~idx ~atag ~dtag
              ~axis:Axes.Child ~algo:Plan.Stack_tree_desc in
          total := !total + bm.Metrics.skipped_items)
        tags)
    tags;
  Alcotest.(check bool) "skip-ahead fired" true (!total > 0)

(* ---------- Batch/Ibuf unit tests ---------- *)

let test_ibuf () =
  let b = Batch.Ibuf.create 1 in
  for i = 0 to 99 do
    Batch.Ibuf.push b i
  done;
  check ci "len" 100 (Batch.Ibuf.length b);
  check ci "get" 42 (Batch.Ibuf.get b 42);
  check ci "to_array" 99 (Batch.Ibuf.to_array b).(99);
  Batch.Ibuf.clear b;
  check ci "cleared" 0 (Batch.Ibuf.length b);
  Batch.Ibuf.reserve b 1000;
  check ci "reserve keeps len" 0 (Batch.Ibuf.length b)

let test_batch_roundtrip () =
  let tuples =
    [| [| 1; Tuple.unbound |]; [| 2; 5 |]; [| Tuple.unbound; 9 |] |]
  in
  let b = Batch.of_tuples ~width:2 tuples in
  check ci "width" 2 (Batch.width b);
  check ci "length" 3 (Batch.length b);
  check ci "get" 5 (Batch.get b 1 1);
  let back = Batch.to_tuples b in
  Array.iteri
    (fun i t -> Alcotest.(check bool) "roundtrip" true (Tuple.equal t back.(i)))
    tuples;
  (match Batch.of_tuples ~width:3 tuples with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "width mismatch should be rejected");
  (match Batch.unsafe_of_raw ~width:2 ~len:4 (Array.make 6 0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "short raw array should be rejected");
  let ids = Batch.of_ids ~width:2 ~slot:1 [| 3; 7 |] in
  check ci "of_ids bound" 7 (Batch.get ids 1 1);
  check ci "of_ids unbound" Tuple.unbound (Batch.get ids 1 0)

let test_batch_sort_matches_tuple_sort () =
  let doc = Lazy.force Helpers.pers_1k in
  let idx = Element_index.build doc in
  let metrics = Metrics.create () in
  let tuples =
    Stack_tree.join ~metrics ~doc ~axis:Axes.Descendant
      ~algo:Plan.Stack_tree_anc
      ~anc:(scan idx "manager" 0 2 ~metrics, 0)
      ~desc:(scan idx "name" 1 2 ~metrics, 1)
      ()
  in
  (* result is ordered by slot 0; re-sorting by slot 1 must agree with the
     legacy comparator sort (both stable) *)
  let reference = Array.copy tuples in
  Array.stable_sort (Tuple.compare_by_slot doc 1) reference;
  let via_tuples = Batch.sort_tuples ~doc ~by:1 tuples in
  check_same_tuple_seq "sort_tuples" reference via_tuples;
  let via_batch =
    Batch.to_tuples
      (Batch.sort ~doc ~by:1 (Batch.of_tuples ~width:2 tuples))
  in
  check_same_tuple_seq "Batch.sort" reference via_batch

let suite =
  [
    Alcotest.test_case "kernel differential: legacy = columnar" `Slow
      test_kernel_differential;
    Alcotest.test_case "multi-join chains agree" `Quick test_multi_join_chain;
    Alcotest.test_case "truncated inputs agree" `Quick test_truncated_inputs;
    Alcotest.test_case "unsorted input rejected identically" `Quick
      test_unsorted_rejected_identically;
    Alcotest.test_case "executor kernels agree on the workload" `Slow
      test_executor_kernel_differential;
    Alcotest.test_case "executor kernels agree under degraded fetch" `Quick
      test_executor_fetch_differential;
    Alcotest.test_case "skip-ahead fires and is counted" `Quick
      test_skip_ahead_counts;
    Alcotest.test_case "int buffers" `Quick test_ibuf;
    Alcotest.test_case "batch round-trips" `Quick test_batch_roundtrip;
    Alcotest.test_case "key-column sort = comparator sort" `Quick
      test_batch_sort_matches_tuple_sort;
  ]
