(* The prepared-query pipeline: structural fingerprints, the LRU plan
   cache, epoch invalidation, and cached-vs-cold result identity. *)

open Sjos_xml
open Sjos_storage
open Sjos_pattern
open Sjos_core
open Sjos_exec
open Sjos_engine
open Sjos_cache

let cb = Alcotest.bool
let ci = Alcotest.int
let cs = Alcotest.string
let check = Alcotest.check

(* ---------- fingerprints ---------- *)

let tag = Candidate.of_tag

(* manager(//employee(/name),/department), built with two different node
   numberings: the canonical parse order and a scrambled one. *)
let pat_ordered =
  Pattern.create
    ~labels:[| tag "manager"; tag "employee"; tag "name"; tag "department" |]
    ~edges:
      [|
        (0, Axes.Descendant, 1); (1, Axes.Child, 2); (0, Axes.Child, 3);
      |]
    ()

let pat_scrambled =
  Pattern.create
    ~labels:[| tag "manager"; tag "department"; tag "employee"; tag "name" |]
    ~edges:
      [|
        (0, Axes.Child, 1); (0, Axes.Descendant, 2); (2, Axes.Child, 3);
      |]
    ()

let test_fingerprint_renumbering () =
  check cs "renumbered isomorphs share a fingerprint"
    (Fingerprint.fingerprint pat_ordered)
    (Fingerprint.fingerprint pat_scrambled);
  check cb "structurally_equal agrees" true
    (Fingerprint.structurally_equal pat_ordered pat_scrambled);
  (* sibling order in the parse string is also numbering, not structure *)
  check cs "permuted branches share a fingerprint"
    (Fingerprint.fingerprint (Parse.pattern "a(/b,//c(/d))"))
    (Fingerprint.fingerprint (Parse.pattern "a(//c(/d),/b)"))

let test_fingerprint_sensitivity () =
  let fp s = Fingerprint.fingerprint (Parse.pattern s) in
  check cb "axis change changes the fingerprint" false (fp "a(/b)" = fp "a(//b)");
  check cb "label change changes the fingerprint" false (fp "a(/b)" = fp "a(/c)");
  check cb "shape change changes the fingerprint" false
    (fp "a(/b(/c))" = fp "a(/b,/c)");
  let p = Parse.pattern "a(/b,/c)" in
  check cb "order-by node changes the fingerprint" false
    (Fingerprint.fingerprint (Pattern.with_order_by p (Some 1))
    = Fingerprint.fingerprint (Pattern.with_order_by p (Some 2)));
  check cb "order-by presence changes the fingerprint" false
    (Fingerprint.fingerprint p
    = Fingerprint.fingerprint (Pattern.with_order_by p (Some 1)));
  (* order-by on one of two *identical* branches is pure renumbering: the
     canonical mapping transports the sort node, so the fingerprints agree *)
  let twin = Parse.pattern "a(/b,/b)" in
  check cs "order-by on interchangeable twins is isomorphic"
    (Fingerprint.fingerprint (Pattern.with_order_by twin (Some 1)))
    (Fingerprint.fingerprint (Pattern.with_order_by twin (Some 2)))

let test_canonical_mapping () =
  let canon, mapping = Fingerprint.canonical pat_scrambled in
  check cs "canonical form has the same fingerprint"
    (Fingerprint.fingerprint pat_scrambled)
    (Fingerprint.fingerprint canon);
  check ci "same node count" (Pattern.node_count pat_scrambled)
    (Pattern.node_count canon);
  (* the mapping transports labels old -> canonical *)
  Array.iteri
    (fun old nw ->
      check cb "label preserved through mapping" true
        (Pattern.label pat_scrambled old = Pattern.label canon nw))
    mapping;
  check ci "root maps to root" 0 mapping.(0)

(* ---------- LRU ---------- *)

let test_lru_eviction_order () =
  let l = Lru.create ~capacity:2 in
  check cb "no eviction below capacity" true (Lru.add l "a" 1 = None);
  check cb "no eviction at capacity" true (Lru.add l "b" 2 = None);
  (* touching "a" makes "b" the least recently used *)
  check cb "hit" true (Lru.find l "a" = Some 1);
  check cb "evicts the LRU key" true (Lru.add l "c" 3 = Some "b");
  check cb "b gone" false (Lru.mem l "b");
  check cb "a survives" true (Lru.mem l "a");
  check ci "still at capacity" 2 (Lru.length l);
  check cb "MRU order" true (Lru.to_list l = [ ("c", 3); ("a", 1) ]);
  (* replacing an existing key never evicts *)
  check cb "replace is not an insert" true (Lru.add l "a" 9 = None);
  check cb "replaced value" true (Lru.find l "a" = Some 9)

let test_plan_cache_counters () =
  let c = Plan_cache.create ~capacity:2 () in
  let entry = { Plan_cache.plan_text = "(scan A)"; est_cost = 1.; algorithm = "DPP" } in
  check cb "miss on empty" true (Plan_cache.find c "k1" = None);
  Plan_cache.add c "k1" entry;
  check cb "hit" true (Plan_cache.find c "k1" <> None);
  Plan_cache.add c "k2" entry;
  Plan_cache.add c "k3" entry (* evicts k1's slot: k1 was MRU, k2 LRU... *);
  let s = Plan_cache.stats c in
  check ci "one eviction" 1 s.Plan_cache.evictions;
  check ci "one hit" 1 s.Plan_cache.hits;
  check ci "one miss" 1 s.Plan_cache.misses;
  Plan_cache.bump_epoch c;
  check cb "stale entry is a miss" true (Plan_cache.find c "k3" = None);
  let s = Plan_cache.stats c in
  check ci "invalidation counted" 1 s.Plan_cache.invalidations

(* ---------- prepared queries against a database ---------- *)

let db () = Database.of_string Helpers.tiny_pers_xml
let pers_pat = "manager(//employee(/name))"

let effort_is_zero (r : Optimizer.result) =
  r.Optimizer.plans_considered = 0
  && r.Optimizer.statuses_generated = 0
  && r.Optimizer.statuses_expanded = 0
  && r.Optimizer.effort.Effort.considered = 0
  && r.Optimizer.effort.Effort.generated = 0
  && r.Optimizer.effort.Effort.expanded = 0

let test_warm_run_skips_search () =
  let db = db () in
  let p = Helpers.pat pers_pat in
  let cold = Database.run_query db p in
  check cb "cold run searched" true (cold.Database.opt.Optimizer.plans_considered > 0);
  let warm = Database.run_query db p in
  check cb "warm run searched nothing" true (effort_is_zero warm.Database.opt);
  let s = Plan_cache.stats (Database.plan_cache db) in
  check cb "hit counted" true (s.Plan_cache.hits >= 1);
  check cb "same plan" true
    (Sjos_plan.Plan.equal cold.Database.opt.Optimizer.plan
       warm.Database.opt.Optimizer.plan);
  check cb "identical tuples" true
    (cold.Database.exec.Executor.tuples = warm.Database.exec.Executor.tuples)

let test_warm_hit_across_numbering () =
  let db = db () in
  (* same structure, different construction order: one optimizer search
     serves both *)
  ignore (Database.run db pat_ordered);
  let p = Database.prepare db pat_scrambled in
  check cb "renumbered pattern hits the cache" true
    (Database.prepared_from_cache p);
  let run = Database.exec p in
  check cb "and still finds matches" true
    (Array.length run.Database.exec.Executor.tuples > 0)

let test_cold_opts_bypass () =
  let db = db () in
  let p = Helpers.pat pers_pat in
  ignore (Database.run db p);
  let run = Database.run ~opts:(Query_opts.cold Query_opts.default) db p in
  check cb "cold opts always search" true
    (run.Database.opt.Optimizer.plans_considered > 0);
  (* Database.optimize is the fresh-search entry Table 2 relies on *)
  let r = Database.optimize db p in
  check cb "optimize never reads the cache" true (r.Optimizer.plans_considered > 0)

let test_epoch_invalidation () =
  let db = db () in
  let p = Helpers.pat pers_pat in
  let prep = Database.prepare db p in
  ignore (Database.exec prep);
  ignore (Database.exec prep);
  let before = Plan_cache.epoch (Database.plan_cache db) in
  Database.set_factors db
    (Sjos_cost.Cost_model.make ~f_index:2.0 ());
  check ci "stats change bumps the epoch" (before + 1)
    (Plan_cache.epoch (Database.plan_cache db));
  (* the prepared handle notices and re-optimizes *)
  let r = Database.prepared_result prep in
  check cb "handle re-optimized under new stats" false (effort_is_zero r);
  check cb "re-resolve was not a cache hit" false (Database.prepared_from_cache prep);
  let s = Plan_cache.stats (Database.plan_cache db) in
  check cb "invalidation counted" true (s.Plan_cache.invalidations >= 1);
  (* and the handle still executes correctly *)
  let run = Database.exec prep in
  check cb "still correct" true (Array.length run.Database.exec.Executor.tuples > 0)

let test_cached_equals_cold_on_workload () =
  let sizes = function
    | Workload.Pers -> 600
    | Workload.Mbench -> 800
    | Workload.Dblp -> 800
  in
  let dbs = Hashtbl.create 4 in
  let db_for ds =
    match Hashtbl.find_opt dbs ds with
    | Some db -> db
    | None ->
        let db = Database.of_document (Workload.generate ~size:(sizes ds) ds) in
        Hashtbl.add dbs ds db;
        db
  in
  List.iter
    (fun (q : Workload.query) ->
      let db = db_for q.Workload.dataset in
      let cold =
        Workload.run ~opts:(Query_opts.cold Query_opts.default) db q
      in
      ignore (Workload.run db q) (* populate *);
      let warm = Workload.run db q in
      check cb (q.Workload.id ^ " warm used the cache") true
        (effort_is_zero warm.Database.opt);
      let ct = cold.Database.exec.Executor.tuples in
      let wt = warm.Database.exec.Executor.tuples in
      check ci (q.Workload.id ^ " same match count") (Array.length ct)
        (Array.length wt);
      Array.iteri
        (fun i t ->
          check cb (q.Workload.id ^ " tuple bit-identical") true
            (Tuple.equal t wt.(i)))
        ct)
    Workload.queries

(* The engine is part of the cache key: a plan optimized under one
   physical engine must never be served to another, and a holistic plan
   round-trips through the serialized cache entry intact. *)
let test_engine_in_cache_key () =
  let db = db () in
  let p = Helpers.pat pers_pat in
  let run engine = Database.run ~opts:(Query_opts.make ~engine ()) db p in
  let bin = run Optimizer.Binary in
  check cb "binary cold run searched" true
    (bin.Database.opt.Optimizer.plans_considered > 0);
  (* a different engine with the same algorithm+structure must miss *)
  let hol = run Optimizer.Holistic in
  check cb "holistic plan chosen" true
    (Sjos_plan.Plan.uses_holistic hol.Database.opt.Optimizer.plan);
  check cb "binary entry not served to holistic" false
    (Sjos_plan.Plan.uses_holistic bin.Database.opt.Optimizer.plan);
  let auto = run Optimizer.Auto in
  check cb "auto cold run searched" true
    (auto.Database.opt.Optimizer.plans_considered > 0);
  (* warm per engine: each hits its own entry and round-trips its plan *)
  let bin2 = run Optimizer.Binary in
  let hol2 = run Optimizer.Holistic in
  let auto2 = run Optimizer.Auto in
  check cb "binary warm hit" true (effort_is_zero bin2.Database.opt);
  check cb "holistic warm hit" true (effort_is_zero hol2.Database.opt);
  check cb "auto warm hit" true (effort_is_zero auto2.Database.opt);
  check cb "holistic plan round-trips the cache" true
    (Sjos_plan.Plan.equal hol.Database.opt.Optimizer.plan
       hol2.Database.opt.Optimizer.plan);
  check cb "binary warm plan unchanged" true
    (Sjos_plan.Plan.equal bin.Database.opt.Optimizer.plan
       bin2.Database.opt.Optimizer.plan);
  check cb "auto warm plan unchanged" true
    (Sjos_plan.Plan.equal auto.Database.opt.Optimizer.plan
       auto2.Database.opt.Optimizer.plan);
  (* all three engines agree on the result set *)
  let sorted (r : Database.query_run) =
    List.sort compare
      (List.map Array.to_list
         (Array.to_list r.Database.exec.Executor.tuples))
  in
  check cb "identical results across engines" true
    (sorted bin = sorted hol && sorted hol = sorted auto)

let test_pattern_names_distinct () =
  (* >26 nodes used to collide on "N%d"-style names *)
  let n = 60 in
  let labels = Array.make n Candidate.any in
  let edges = Array.init (n - 1) (fun i -> (i, Axes.Child, i + 1)) in
  let p = Pattern.create ~labels ~edges () in
  let names = List.init n (Pattern.name p) in
  check ci "all names distinct" n
    (List.length (List.sort_uniq String.compare names));
  check cs "index 0" "A" (Pattern.name p 0);
  check cs "index 25" "Z" (Pattern.name p 25);
  check cs "index 26" "AA" (Pattern.name p 26);
  check cs "index 51" "AZ" (Pattern.name p 51);
  check cs "index 52" "BA" (Pattern.name p 52)

let suite =
  [
    Alcotest.test_case "fingerprint invariant under renumbering" `Quick
      test_fingerprint_renumbering;
    Alcotest.test_case "fingerprint sensitive to axis/label/shape" `Quick
      test_fingerprint_sensitivity;
    Alcotest.test_case "canonical mapping preserves labels" `Quick
      test_canonical_mapping;
    Alcotest.test_case "LRU eviction order" `Quick test_lru_eviction_order;
    Alcotest.test_case "plan-cache counters" `Quick test_plan_cache_counters;
    Alcotest.test_case "warm run skips the search" `Quick
      test_warm_run_skips_search;
    Alcotest.test_case "warm hit across numberings" `Quick
      test_warm_hit_across_numbering;
    Alcotest.test_case "cold opts bypass the cache" `Quick
      test_cold_opts_bypass;
    Alcotest.test_case "epoch invalidation on stats change" `Quick
      test_epoch_invalidation;
    Alcotest.test_case "cached = cold on all workload queries" `Slow
      test_cached_equals_cold_on_workload;
    Alcotest.test_case "engine is part of the cache key" `Quick
      test_engine_in_cache_key;
    Alcotest.test_case "pattern names distinct past 26 nodes" `Quick
      test_pattern_names_distinct;
  ]
