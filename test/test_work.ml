(* Deterministic work accounting, trace export and the perf-history gate.

   The load-bearing claims, each tested directly:

   - Work counters are partition-invariant: the same join charged
     through pools of 1, 2 and 4 domains (sharding forced with
     [par_min_rows:0]) produces bit-identical totals, and the columnar
     and legacy engines agree on every engine-invariant counter.
   - [Pool.run] absorbs each task's scoped delta at the barrier, so
     manual counter bumps from parallel tasks sum exactly.
   - The Chrome trace export round-trips through the project's own JSON
     parser and carries the span/track structure Perfetto needs.
   - The perf-history store appends, lists and reloads datapoints, and
     its gate passes on equal/improved runs, bootstraps on short
     history, and fails on work regressions, allocation regressions and
     disappearing entries. *)

open Sjos_xml
open Sjos_storage
open Sjos_plan
open Sjos_exec
module Pool = Sjos_par.Pool
module Work = Sjos_obs.Work
module Json = Sjos_obs.Json
module Trace = Sjos_obs.Trace
module Perf_history = Sjos_obs.Perf_history

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let with_pool n f =
  let p = Pool.create ~domains:n () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

let check_work_equal msg (a : Work.t) (b : Work.t) =
  List.iter2
    (fun (name, av) (_, bv) -> check ci (msg ^ ": " ^ name) av bv)
    (Work.fields a) (Work.fields b)

(* ---------- accumulator mechanics ---------- *)

let test_scoped_isolation () =
  Work.reset ();
  let outer = Work.current () in
  outer.Work.comparisons <- 5;
  let inner, result =
    Work.scoped (fun () ->
        let w = Work.current () in
        w.Work.comparisons <- w.Work.comparisons + 3;
        w.Work.tuples_emitted <- 7;
        "done")
  in
  check cb "thunk ran" true (result = Ok "done");
  check ci "inner delta captured" 3 inner.Work.comparisons;
  check ci "inner tuples captured" 7 inner.Work.tuples_emitted;
  check ci "outer untouched by inner" 5 (Work.current ()).Work.comparisons;
  (* the delta lands only when explicitly absorbed *)
  Work.absorb inner;
  check ci "absorb adds" 8 (Work.current ()).Work.comparisons;
  (* exceptions still return the charged work *)
  let w, r =
    Work.scoped (fun () ->
        (Work.current ()).Work.expansions <- 11;
        failwith "boom")
  in
  check cb "exception reported" true (match r with Error _ -> true | _ -> false);
  check ci "work charged before raise survives" 11 w.Work.expansions;
  Work.reset ()

let test_pool_absorbs_task_work () =
  [ 1; 2; 4 ]
  |> List.iter @@ fun domains ->
     with_pool domains @@ fun pool ->
     Work.reset ();
     let results =
       Pool.run pool 32 (fun i ->
           let w = Work.current () in
           w.Work.comparisons <- w.Work.comparisons + i;
           w.Work.page_touches <- w.Work.page_touches + 1;
           i)
     in
     check ci "results intact" 32 (Array.length results);
     let total = Work.snapshot () in
     check ci
       (Printf.sprintf "comparisons sum @%d domains" domains)
       (31 * 32 / 2) total.Work.comparisons;
     check ci
       (Printf.sprintf "page_touches sum @%d domains" domains)
       32 total.Work.page_touches;
     Work.reset ()

let test_json_roundtrip () =
  let w = Work.zero () in
  w.Work.comparisons <- 17;
  w.Work.tuples_emitted <- 3;
  w.Work.items_skipped <- 99;
  w.Work.page_touches <- 2;
  let json_str = Json.to_string (Work.to_json w) in
  match Result.bind (Json.of_string json_str) Work.of_json with
  | Error msg -> Alcotest.failf "work json roundtrip: %s" msg
  | Ok w' ->
      check_work_equal "roundtrip" w w';
      check ci "score excludes skips" (17 + 3 + 2) (Work.score w')

(* ---------- kernel invariance ---------- *)

let doc_and_index () =
  let doc = Sjos_datagen.Dblp.generate ~seed:42 ~target_nodes:900 () in
  (doc, Element_index.build doc)

let columnar_join ?pool ~doc ~idx ~atag ~dtag ~algo () =
  let metrics = Metrics.create () in
  let anc =
    Operators.index_scan ~metrics ~width:2 ~slot:0
      (Element_index.lookup idx atag)
  in
  let desc =
    Operators.index_scan ~metrics ~width:2 ~slot:1
      (Element_index.lookup idx dtag)
  in
  Work.scoped (fun () ->
      Stack_tree.join ?pool ~par_min_rows:0 ~metrics ~doc
        ~axis:Axes.Descendant ~algo ~anc:(anc, 0) ~desc:(desc, 1)
        ())

let legacy_join ~doc ~idx ~atag ~dtag ~algo () =
  let metrics = Metrics.create () in
  let anc =
    Operators.index_scan ~metrics ~width:2 ~slot:0
      (Element_index.lookup idx atag)
  in
  let desc =
    Operators.index_scan ~metrics ~width:2 ~slot:1
      (Element_index.lookup idx dtag)
  in
  Work.scoped (fun () ->
      Stack_tree_legacy.join ~metrics ~doc
        ~axis:Axes.Descendant ~algo ~anc:(anc, 0) ~desc:(desc, 1)
        ())

let algos = [ Plan.Stack_tree_desc; Plan.Stack_tree_anc ]

let test_work_identical_across_domains () =
  let doc, idx = doc_and_index () in
  List.iter
    (fun algo ->
      let serial_work, serial_r =
        columnar_join ~doc ~idx ~atag:"article" ~dtag:"author" ~algo ()
      in
      (match serial_r with Ok _ -> () | Error e -> raise e);
      check cb "serial charged comparisons" true
        (serial_work.Work.comparisons > 0);
      [ 1; 2; 4 ]
      |> List.iter (fun domains ->
             with_pool domains @@ fun pool ->
             let work, r =
               columnar_join ~pool ~doc ~idx ~atag:"article" ~dtag:"author"
                 ~algo ()
             in
             (match r with Ok _ -> () | Error e -> raise e);
             check_work_equal
               (Printf.sprintf "pool of %d vs serial" domains)
               serial_work work))
    algos

let test_work_identical_across_engines () =
  let doc, idx = doc_and_index () in
  List.iter
    (fun algo ->
      let col, cr =
        columnar_join ~doc ~idx ~atag:"article" ~dtag:"author" ~algo ()
      in
      let leg, lr = legacy_join ~doc ~idx ~atag:"article" ~dtag:"author" ~algo () in
      (match (cr, lr) with
      | Ok _, Ok _ -> ()
      | Error e, _ | _, Error e -> raise e);
      (* items_skipped is the one legitimate difference: only the
         columnar kernels skip *)
      check ci "comparisons engine-invariant" leg.Work.comparisons
        col.Work.comparisons;
      check ci "tuples engine-invariant" leg.Work.tuples_emitted
        col.Work.tuples_emitted;
      check ci "stack_ops engine-invariant" leg.Work.stack_ops
        col.Work.stack_ops;
      check ci "io engine-invariant" leg.Work.io_items col.Work.io_items;
      check ci "legacy never skips" 0 leg.Work.items_skipped)
    algos

let test_repeat_run_determinism () =
  let doc, idx = doc_and_index () in
  let run () =
    let w, r =
      columnar_join ~doc ~idx ~atag:"article" ~dtag:"title"
        ~algo:Plan.Stack_tree_desc ()
    in
    (match r with Ok _ -> () | Error e -> raise e);
    w
  in
  check_work_equal "two consecutive runs" (run ()) (run ())

let test_pager_page_touches () =
  let before = (Work.snapshot ()).Work.page_touches in
  let p = Pager.create ~page_size:10 ~pool_pages:2 () in
  let seg = Pager.allocate p ~items:95 in
  Pager.scan p seg;
  let after = (Work.snapshot ()).Work.page_touches in
  check ci "one work unit per page access" 10 (after - before)

(* ---------- chrome trace export ---------- *)

let test_chrome_trace_roundtrip () =
  Trace.set_enabled true;
  Trace.reset ();
  Trace.with_span "outer" (fun () ->
      Trace.with_span
        ~attrs:[ ("k", Json.Int 3) ]
        "inner"
        (fun () -> ignore (Sys.opaque_identity (List.init 100 Fun.id))));
  let chrome = Trace.to_chrome_json () in
  Trace.set_enabled false;
  Trace.reset ();
  (* must round-trip through our own parser *)
  let reparsed =
    match Json.of_string (Json.to_string chrome) with
    | Ok j -> j
    | Error msg -> Alcotest.failf "chrome json does not reparse: %s" msg
  in
  let events =
    match Json.member "traceEvents" reparsed with
    | Some (Json.List es) -> es
    | _ -> Alcotest.fail "no traceEvents list"
  in
  let has_phase ph name =
    List.exists
      (fun e ->
        Json.member "ph" e = Some (Json.Str ph)
        && Json.member "name" e = Some (Json.Str name))
      events
  in
  check cb "thread_name metadata present" true (has_phase "M" "thread_name");
  check cb "outer span exported" true (has_phase "X" "outer");
  check cb "inner span exported" true (has_phase "X" "inner");
  (* X events need ts/dur numbers and a tid *)
  List.iter
    (fun e ->
      if Json.member "ph" e = Some (Json.Str "X") then begin
        check cb "has ts" true (Option.is_some (Option.bind (Json.member "ts" e) Json.number));
        check cb "has dur" true (Option.is_some (Option.bind (Json.member "dur" e) Json.number));
        check cb "has tid" true (Option.is_some (Option.bind (Json.member "tid" e) Json.number))
      end)
    events

(* ---------- perf-history store and gate ---------- *)

let mk_entry ?(alloc = 1000.0) id score =
  let w = Work.zero () in
  w.Work.comparisons <- score;
  {
    Perf_history.entry_id = id;
    work = w;
    allocated_bytes = alloc;
    seconds = 0.001;
  }

let mk_datapoint ~timestamp entries =
  { Perf_history.bench = "test"; timestamp; meta = []; entries }

let temp_dir () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "sjos_hist_%d_%d" (Unix.getpid ()) (Random.int 100000))
  in
  dir

let test_history_store () =
  let dir = temp_dir () in
  let d1 = mk_datapoint ~timestamp:100 [ mk_entry "q1" 50 ] in
  let d2 = mk_datapoint ~timestamp:200 [ mk_entry "q1" 50 ] in
  let p1 = Perf_history.append ~dir d1 in
  let p2 = Perf_history.append ~dir d2 in
  check cb "files differ" true (p1 <> p2);
  (match Perf_history.history ~dir ~bench:"test" with
  | [ h1; h2 ] ->
      check cb "oldest first" true (h1 = p1 && h2 = p2)
  | files -> Alcotest.failf "expected 2 history files, got %d" (List.length files));
  (* latest.json exists, reloads, but is not part of the history *)
  let latest = Filename.concat dir "test-latest.json" in
  check cb "latest written" true (Sys.file_exists latest);
  (match Perf_history.load latest with
  | Ok d -> check ci "latest is the newest datapoint" 200 d.Perf_history.timestamp
  | Error m -> Alcotest.fail m);
  (* same-second append gets a suffixed file instead of clobbering *)
  let p2' = Perf_history.append ~dir d2 in
  check cb "same-second suffix" true (p2' <> p2);
  check ci "history grew" 3
    (List.length (Perf_history.history ~dir ~bench:"test"))

let verdict_label = function
  | Perf_history.Pass _ -> "pass"
  | Perf_history.Bootstrap _ -> "bootstrap"
  | Perf_history.Fail _ -> "fail"

let test_gate_verdicts () =
  let dir = temp_dir () in
  let gate () = verdict_label (Perf_history.gate ~dir ~bench:"test" ()) in
  check Alcotest.string "empty store bootstraps" "bootstrap" (gate ());
  ignore (Perf_history.append ~dir (mk_datapoint ~timestamp:100 [ mk_entry "q1" 1000 ]));
  check Alcotest.string "single datapoint bootstraps" "bootstrap" (gate ());
  (* equal work, equal alloc: pass *)
  ignore (Perf_history.append ~dir (mk_datapoint ~timestamp:200 [ mk_entry "q1" 1000 ]));
  check Alcotest.string "identical run passes" "pass" (gate ());
  (* an improvement passes *)
  ignore (Perf_history.append ~dir (mk_datapoint ~timestamp:300 [ mk_entry "q1" 700 ]));
  check Alcotest.string "improvement passes" "pass" (gate ());
  (* a >1% work regression fails *)
  ignore (Perf_history.append ~dir (mk_datapoint ~timestamp:400 [ mk_entry "q1" 720 ]));
  check Alcotest.string "work regression fails" "fail" (gate ());
  (* an entry disappearing fails even with scores fine *)
  ignore
    (Perf_history.append ~dir
       (mk_datapoint ~timestamp:500 [ mk_entry "q1" 720; mk_entry "q2" 10 ]));
  ignore (Perf_history.append ~dir (mk_datapoint ~timestamp:600 [ mk_entry "q1" 720 ]));
  check Alcotest.string "missing entry fails" "fail" (gate ())

let test_gate_alloc_tolerance () =
  let base = mk_datapoint ~timestamp:1 [ mk_entry ~alloc:1000.0 "q" 100 ] in
  let within = mk_datapoint ~timestamp:2 [ mk_entry ~alloc:1080.0 "q" 100 ] in
  let beyond = mk_datapoint ~timestamp:3 [ mk_entry ~alloc:1200.0 "q" 100 ] in
  check Alcotest.string "alloc within 10% passes" "pass"
    (verdict_label
       (Perf_history.compare_datapoints ~baseline:base ~current:within ()));
  check Alcotest.string "alloc beyond 10% fails" "fail"
    (verdict_label
       (Perf_history.compare_datapoints ~baseline:base ~current:beyond ()));
  (* work tolerance is configurable *)
  let more_work = mk_datapoint ~timestamp:4 [ mk_entry "q" 105 ] in
  check Alcotest.string "5% fails at default tolerance" "fail"
    (verdict_label
       (Perf_history.compare_datapoints ~baseline:base ~current:more_work ()));
  check Alcotest.string "5% passes at 10% tolerance" "pass"
    (verdict_label
       (Perf_history.compare_datapoints ~work_tolerance:0.10 ~baseline:base
          ~current:more_work ()))

let test_datapoint_json_roundtrip () =
  let d =
    {
      Perf_history.bench = "perf";
      timestamp = 12345;
      meta = [ ("scale", Json.Float 0.5) ];
      entries = [ mk_entry "a" 10; mk_entry "b" 20 ];
    }
  in
  match Perf_history.of_string (Json.to_string (Perf_history.to_json d)) with
  | Error msg -> Alcotest.failf "datapoint roundtrip: %s" msg
  | Ok d' ->
      check Alcotest.string "bench" d.Perf_history.bench d'.Perf_history.bench;
      check ci "timestamp" d.Perf_history.timestamp d'.Perf_history.timestamp;
      check ci "entries" 2 (List.length d'.Perf_history.entries);
      List.iter2
        (fun (a : Perf_history.entry) (b : Perf_history.entry) ->
          check Alcotest.string "id" a.Perf_history.entry_id
            b.Perf_history.entry_id;
          check_work_equal "entry work" a.Perf_history.work b.Perf_history.work)
        d.Perf_history.entries d'.Perf_history.entries

let suite =
  [
    Alcotest.test_case "scoped deltas isolate and absorb" `Quick
      test_scoped_isolation;
    Alcotest.test_case "pool absorbs task work at the barrier" `Quick
      test_pool_absorbs_task_work;
    Alcotest.test_case "work json roundtrip + score" `Quick test_json_roundtrip;
    Alcotest.test_case "work identical across 1/2/4 domains" `Quick
      test_work_identical_across_domains;
    Alcotest.test_case "work identical across engines" `Quick
      test_work_identical_across_engines;
    Alcotest.test_case "repeat runs bit-identical" `Quick
      test_repeat_run_determinism;
    Alcotest.test_case "pager charges page_touches" `Quick
      test_pager_page_touches;
    Alcotest.test_case "chrome trace export round-trips" `Quick
      test_chrome_trace_roundtrip;
    Alcotest.test_case "perf-history store append/list/load" `Quick
      test_history_store;
    Alcotest.test_case "gate: bootstrap/pass/regression/missing" `Quick
      test_gate_verdicts;
    Alcotest.test_case "gate: allocation and tolerance knobs" `Quick
      test_gate_alloc_tolerance;
    Alcotest.test_case "datapoint json roundtrip" `Quick
      test_datapoint_json_roundtrip;
  ]
