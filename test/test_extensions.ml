(* Tests for the extension modules: plan serialization, pattern
   minimization, randomized optimizers, cost calibration, attribute index,
   and the FLWOR front end. *)

open Sjos_xml
open Sjos_storage
open Sjos_pattern
open Sjos_plan
open Sjos_core
open Sjos_exec
open Sjos_engine

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool
let cs = Alcotest.string

(* ---------- Plan_io ---------- *)

let test_plan_io_roundtrip () =
  let idx = Lazy.force Helpers.pers_1k_index in
  List.iter
    (fun s ->
      let p = Helpers.pat s in
      let provider = Naive.exact_provider idx p in
      List.iter
        (fun algo ->
          let r = Optimizer.optimize ~provider algo p in
          let text = Plan_io.to_string p r.Optimizer.plan in
          match Plan_io.of_string p text with
          | Ok plan ->
              check cb ("roundtrip " ^ text) true (Plan.equal plan r.Optimizer.plan)
          | Error e -> Alcotest.fail (text ^ ": " ^ e))
        [ Optimizer.Dp; Optimizer.Fp; Optimizer.Dpap_ld ])
    [
      "manager(//employee(/name))";
      "manager(//employee(/name),//manager(/department(/name)))";
    ]

let test_plan_io_format () =
  let p = Helpers.pat "manager(//employee)" in
  let edge = List.hd (Pattern.edges p) in
  let plan =
    Plan.sort
      (Plan.join ~anc_side:(Plan.scan 0) ~desc_side:(Plan.scan 1) ~edge
         ~algo:Plan.Stack_tree_desc)
      ~by:0
  in
  check cs "rendered" "(sort A (desc A B (scan A) (scan B)))"
    (Plan_io.to_string p plan)

let test_plan_io_errors () =
  let p = Helpers.pat "manager(//employee)" in
  List.iter
    (fun s -> check cb s true (Result.is_error (Plan_io.of_string p s)))
    [
      "";
      "(scan Z)";
      "(anc B A (scan B) (scan A))";
      "(scan A";
      "(bogus A)";
      "(scan A) extra";
    ]

(* ---------- Minimize ---------- *)

let test_label_subsumes () =
  let open Candidate in
  check cb "any subsumes tag" true (Minimize.label_subsumes any (of_tag "a"));
  check cb "tag subsumes same tag" true
    (Minimize.label_subsumes (of_tag "a") (of_tag "a"));
  check cb "tag vs other" false (Minimize.label_subsumes (of_tag "a") (of_tag "b"));
  check cb "attr more specific" true
    (Minimize.label_subsumes (of_tag "a")
       { (of_tag "a") with attr = Some ("k", "v") });
  check cb "not the other way" false
    (Minimize.label_subsumes
       { (of_tag "a") with attr = Some ("k", "v") }
       (of_tag "a"))

let minimize_nodes s =
  let p, _ = Minimize.minimize (Helpers.pat s) in
  Pattern.node_count p

let test_minimize_removes_duplicates () =
  check ci "a(//b,//b)" 2 (minimize_nodes "a(//b,//b)");
  check ci "a(//b(/c),//b)" 3 (minimize_nodes "a(//b(/c),//b)");
  check ci "a(/b,//b) drops the weaker" 2 (minimize_nodes "a(/b,//b)");
  check ci "a(//b,//c) stays" 3 (minimize_nodes "a(//b,//c)");
  check ci "a(/b,/b)" 2 (minimize_nodes "a(/b,/b)");
  (* the // branch embeds into the deeper chain *)
  check ci "a(//c,//b(//c))" 3 (minimize_nodes "a(//c,//b(//c))")

let test_minimize_keeps_kept_nodes () =
  let p = Helpers.pat "a(//b,//b)" in
  (* keeping node 2 (the second b) forces the redundant branch to be the
     first b *)
  let p', mapping = Minimize.minimize ~keep:[ 2 ] p in
  check ci "still two nodes" 2 (Pattern.node_count p');
  check cb "kept survives" true (mapping.(2) >= 0);
  (* keeping both prevents any removal *)
  let p'', _ = Minimize.minimize ~keep:[ 1; 2 ] p in
  check ci "no removal" 3 (Pattern.node_count p'')

let test_minimize_preserves_matches () =
  let idx = Lazy.force Helpers.tiny_index in
  List.iter
    (fun s ->
      let p = Helpers.pat s in
      let p', mapping = Minimize.minimize ~keep:[ 0 ] p in
      (* bindings of the root must be identical *)
      let roots pat' =
        Naive.matches idx pat'
        |> List.map (fun t -> Tuple.get t 0)
        |> List.sort_uniq compare
      in
      check cb "root mapped to root" true (mapping.(0) = 0);
      check (Alcotest.list ci) ("root bindings " ^ s) (roots p) (roots p'))
    [
      "manager(//employee,//employee)";
      "manager(//name,//employee(/name))";
      "manager(//employee(/name),//employee)";
    ]

let test_minimize_order_by_kept () =
  let p = Helpers.pat "a(//b,//b) order by A" in
  let p', _ = Minimize.minimize p in
  check ci "minimized" 2 (Pattern.node_count p');
  check (Alcotest.option ci) "order-by remapped" (Some 0) (Pattern.order_by p')

(* ---------- Randomized optimizers ---------- *)

let test_randomized_valid_and_bounded () =
  let idx = Lazy.force Helpers.pers_1k_index in
  let p = Helpers.pat "manager(//employee(/name),//manager(/department(/name)))" in
  let provider = Naive.exact_provider idx p in
  let dp_cost, _ = Dp.run (Search.make_ctx ~provider p) in
  let ii_cost, ii_plan =
    Randomized.iterative_improvement ~seed:3 (Search.make_ctx ~provider p)
  in
  check cb "II plan valid" true (Properties.is_valid p ii_plan);
  check cb "II >= optimal" true (ii_cost >= dp_cost -. 1e-6);
  let sa_cost, sa_plan =
    Randomized.simulated_annealing ~seed:4 (Search.make_ctx ~provider p)
  in
  check cb "SA plan valid" true (Properties.is_valid p sa_plan);
  check cb "SA >= optimal" true (sa_cost >= dp_cost -. 1e-6);
  (* both should land well below the worst random plan *)
  let worst, _ = Random_plan.worst_of ~seed:5 (Search.make_ctx ~provider p) 30 in
  check cb "II beats worst random" true (ii_cost < worst);
  check cb "SA beats worst random" true (sa_cost < worst)

let test_randomized_deterministic () =
  let idx = Lazy.force Helpers.tiny_index in
  let p = Helpers.pat "manager(//employee(/name))" in
  let provider = Naive.exact_provider idx p in
  let c1, _ = Randomized.iterative_improvement ~seed:7 (Search.make_ctx ~provider p) in
  let c2, _ = Randomized.iterative_improvement ~seed:7 (Search.make_ctx ~provider p) in
  Helpers.checkf "same seed same result" c1 c2

(* ---------- Calibrate ---------- *)

let synthetic_metrics (i, s, io, st) =
  let m = Metrics.create () in
  m.Metrics.index_items <- i;
  m.Metrics.sort_cost <- s;
  m.Metrics.io_items <- io;
  m.Metrics.stack_ops <- st;
  m

let test_calibrate_recovers_factors () =
  let truth =
    Sjos_cost.Cost_model.make ~f_index:2.0 ~f_sort:0.5 ~f_io:7.0 ~f_stack:1.5 ()
  in
  let observations =
    List.map
      (fun spec ->
        let m = synthetic_metrics spec in
        (m, Metrics.cost_units truth m))
      [
        (100, 5.0, 20, 300);
        (50, 80.0, 5, 10);
        (10, 1.0, 200, 50);
        (400, 20.0, 3, 900);
        (7, 300.0, 60, 2);
        (33, 0.0, 0, 44);
      ]
  in
  let fitted = Calibrate.fit observations in
  Helpers.checkf "f_index" 2.0 fitted.Sjos_cost.Cost_model.f_index;
  Helpers.checkf "f_sort" 0.5 fitted.Sjos_cost.Cost_model.f_sort;
  Helpers.checkf "f_io" 7.0 fitted.Sjos_cost.Cost_model.f_io;
  Helpers.checkf "f_stack" 1.5 fitted.Sjos_cost.Cost_model.f_stack;
  Helpers.checkf "zero residual" 0.0
    (Calibrate.mean_relative_error fitted observations)

let test_calibrate_degenerate () =
  (* one observation: singular system; fall back to scaled defaults *)
  let m = synthetic_metrics (100, 0.0, 0, 0) in
  let fitted = Calibrate.fit [ (m, 5.0) ] in
  Helpers.checkf "prediction matches total" 5.0 (Calibrate.predict fitted m);
  match Calibrate.fit [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty observations rejected"

let test_calibrate_on_real_runs () =
  let db = Database.of_document (Lazy.force Helpers.pers_1k) in
  let observations =
    List.concat_map
      (fun (q : Workload.query) ->
        if q.Workload.dataset = Workload.Pers then begin
          let run = Database.run_query db q.Workload.pattern in
          [ (run.Database.exec.Executor.metrics, run.Database.exec.Executor.seconds) ]
        end
        else [])
      Workload.queries
  in
  let fitted = Calibrate.fit observations in
  (* fitted factors are non-negative and prediction error is bounded *)
  check cb "non-negative" true
    (fitted.Sjos_cost.Cost_model.f_index >= 0.
    && fitted.Sjos_cost.Cost_model.f_sort >= 0.
    && fitted.Sjos_cost.Cost_model.f_io >= 0.
    && fitted.Sjos_cost.Cost_model.f_stack >= 0.)

(* ---------- Attribute index ---------- *)

let test_attribute_index () =
  let doc = Lazy.force Helpers.mbench_1k in
  let idx = Element_index.build doc in
  let via_index = Element_index.lookup_attr idx ~tag:"eNest" ~attr:"aLevel" ~value:"3" in
  let via_filter =
    Array.to_list (Element_index.lookup idx "eNest")
    |> List.filter (fun n -> Node.has_attr_value n "aLevel" "3")
  in
  check ci "same cardinality" (List.length via_filter) (Array.length via_index);
  check cb "same nodes" true (Array.to_list via_index = via_filter);
  check ci "missing value" 0
    (Array.length (Element_index.lookup_attr idx ~tag:"eNest" ~attr:"aLevel" ~value:"99"));
  check ci "missing attr" 0
    (Array.length (Element_index.lookup_attr idx ~tag:"eNest" ~attr:"nope" ~value:"1"));
  (* Candidate.select goes through the secondary index and agrees *)
  let spec = { (Candidate.of_tag "eNest") with Candidate.attr = Some ("aLevel", "3") } in
  check ci "candidate select agrees" (Array.length via_index)
    (Array.length (Candidate.select idx spec))

(* ---------- Xquery ---------- *)

let tiny_db = lazy (Database.of_string Helpers.tiny_pers_xml)

let test_xquery_basic () =
  let db = Lazy.force tiny_db in
  let doc =
    Xquery.run db
      "for $m in //manager for $e in $m//employee return <r>{$e/text()}</r>"
  in
  (* one <r> per (manager, employee) pair: (1,3),(1,9),(5,9),(13,15) *)
  check ci "results" 4
    (List.length (Document.children doc (Document.root doc)))

let test_xquery_where () =
  let db = Lazy.force tiny_db in
  let out =
    Xquery.run_string db
      "for $m in //manager for $e in $m//employee where $e/name = 'dan' \
       return <hit>{$m/name/text()}</hit>"
  in
  (* dan works under ann and under cid *)
  check cb "two hits" true
    (Helpers.contains out "<hit>ann</hit>" && Helpers.contains out "<hit>cid</hit>")

let test_xquery_existence_and_copy () =
  let db = Lazy.force tiny_db in
  let doc =
    Xquery.run db
      "for $m in //manager where $m/department return <boss>{$m/name}</boss>"
  in
  (* managers with a *child* department: ann and cid *)
  let results = Document.children doc (Document.root doc) in
  check ci "two bosses" 2 (List.length results);
  (* {$m/name} would copy a subtree — here name: one name child each *)
  List.iter
    (fun r ->
      check ci "copied subtree" 1 (List.length (Document.children doc r)))
    results

let test_xquery_errors () =
  let db = Lazy.force tiny_db in
  List.iter
    (fun q ->
      match Xquery.run db q with
      | exception Xquery.Error _ -> ()
      | exception Sjos_pattern.Parse.Syntax_error _ -> ()
      | _ -> Alcotest.fail ("expected failure: " ^ q))
    [
      "";
      "for $x in //a";
      "for $x in $y//a return <r></r>";
      "for $x in //a for $x in $x/b return <r></r>";
      "for $x in //a where $x return <r></r>";
      "for $x in //a return <r>{$zzz}</r>";
      "for $x in //a return <r>{$x/bogus()}</r>";
      "for $x in //a return <r></s>";
    ]

let test_xquery_optimized_consistently () =
  let db = Database.of_document (Lazy.force Helpers.pers_1k) in
  let q =
    "for $m in //manager for $d in $m//department for $n in $d/name \
     return <x></x>"
  in
  let count algorithm =
    let doc = Xquery.run ~opts:(Query_opts.make ~algorithm ()) db q in
    List.length (Document.children doc (Document.root doc))
  in
  let dp = count Optimizer.Dp in
  List.iter
    (fun a -> check ci "same result count" dp (count a))
    [ Optimizer.Dpp; Optimizer.Fp; Optimizer.Dpap_ld ]

(* ---------- Streaming executor ---------- *)

let test_stream_equals_executor () =
  let idx = Lazy.force Helpers.pers_1k_index in
  List.iter
    (fun s ->
      let p = Helpers.pat s in
      let provider = Naive.exact_provider idx p in
      List.iter
        (fun algo ->
          let r = Optimizer.optimize ~provider algo p in
          let batch = Executor.execute idx p r.Optimizer.plan in
          let streamed = List.of_seq (Stream_exec.stream idx p r.Optimizer.plan) in
          check cb
            (Printf.sprintf "%s via %s" s (Optimizer.name algo))
            true
            (Array.to_list batch.Executor.tuples = streamed))
        [ Optimizer.Dpp; Optimizer.Fp; Optimizer.Dpap_ld ])
    [
      "manager(//employee(/name))";
      "manager(//employee(/name),//department(/name))";
      "manager(//employee(/name),//manager(/department(/name)))";
    ]

let test_stream_first_k () =
  let idx = Lazy.force Helpers.pers_1k_index in
  let p = Helpers.pat "manager(//employee(/name))" in
  let provider = Naive.exact_provider idx p in
  let r = Optimizer.optimize ~provider Optimizer.Fp p in
  let all = Executor.execute idx p r.Optimizer.plan in
  let k = min 5 (Array.length all.Executor.tuples) in
  let firsts = Stream_exec.first_k idx p r.Optimizer.plan k in
  check ci "k results" k (List.length firsts);
  List.iteri
    (fun i t -> check cb "prefix matches" true (t = all.Executor.tuples.(i)))
    firsts;
  check ci "zero results ok" 0 (List.length (Stream_exec.first_k idx p r.Optimizer.plan 0))

let test_stream_rejects_invalid () =
  let idx = Lazy.force Helpers.tiny_index in
  let p = Helpers.pat "manager(//employee)" in
  match Stream_exec.stream idx p (Plan.scan 0) with
  | exception Invalid_argument _ -> ()
  | (_ : Tuple.t Seq.t) -> Alcotest.fail "invalid plan must be rejected"

let test_stream_time_to_first () =
  let idx = Lazy.force Helpers.pers_1k_index in
  let p = Helpers.pat "manager(//employee(/name))" in
  let provider = Naive.exact_provider idx p in
  let r = Optimizer.optimize ~provider Optimizer.Fp p in
  let first, total = Stream_exec.time_to_first idx p r.Optimizer.plan in
  check cb "timings nonnegative" true (first >= 0.0 && total >= 0.0)

let suite =
  [
    ("plan_io roundtrip", `Quick, test_plan_io_roundtrip);
    ("plan_io format", `Quick, test_plan_io_format);
    ("plan_io errors", `Quick, test_plan_io_errors);
    ("minimize label subsumption", `Quick, test_label_subsumes);
    ("minimize removes duplicates", `Quick, test_minimize_removes_duplicates);
    ("minimize keeps kept nodes", `Quick, test_minimize_keeps_kept_nodes);
    ("minimize preserves root bindings", `Quick, test_minimize_preserves_matches);
    ("minimize remaps order-by", `Quick, test_minimize_order_by_kept);
    ("randomized optimizers valid & bounded", `Quick, test_randomized_valid_and_bounded);
    ("randomized deterministic", `Quick, test_randomized_deterministic);
    ("calibrate recovers factors", `Quick, test_calibrate_recovers_factors);
    ("calibrate degenerate input", `Quick, test_calibrate_degenerate);
    ("calibrate on real runs", `Quick, test_calibrate_on_real_runs);
    ("attribute index", `Quick, test_attribute_index);
    ("xquery basic", `Quick, test_xquery_basic);
    ("xquery where", `Quick, test_xquery_where);
    ("xquery existence and copy", `Quick, test_xquery_existence_and_copy);
    ("xquery errors", `Quick, test_xquery_errors);
    ("xquery all optimizers agree", `Quick, test_xquery_optimized_consistently);
    ("streaming = materializing executor", `Quick, test_stream_equals_executor);
    ("streaming first-k", `Quick, test_stream_first_k);
    ("streaming rejects invalid plans", `Quick, test_stream_rejects_invalid);
    ("streaming time-to-first", `Quick, test_stream_time_to_first);
  ]
