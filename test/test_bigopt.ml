(* The large-pattern optimizer tier and the status-space fixes that ride
   with it:

   - Status.key regression: keys must separate statuses whose cluster
     partitions coincide but whose consumed-edge sets differ (the old
     [(mask, order) list] key collided them);
   - Pattern.max_nodes: oversized patterns are rejected structurally,
     never silently wrapped into a negative bitmask;
   - bit-identical effort counters after the popcount/cluster-map
     rework, pinned on the paper's Pers.3.d query;
   - BigDP differential: plan-cost equality with DP and DPP on every
     generated pattern <= 10 nodes, across the generator's four shape
     classes (seed via SJOS_BIGOPT_SEED, default 42);
   - budget truncation degrades structurally (Ok + degraded_from),
     never crashes;
   - generator shape invariants and determinism;
   - automatic tiering past the node threshold, end to end through
     Database. *)

open Sjos_xml
open Sjos_storage
open Sjos_pattern
open Sjos_plan
open Sjos_core
open Sjos_engine

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool
let cs = Alcotest.string

let seed =
  match Sys.getenv_opt "SJOS_BIGOPT_SEED" with
  | Some s -> ( try int_of_string s with _ -> 42)
  | None -> 42

(* A deterministic synthetic cardinality provider: cheap (no document),
   spread over three orders of magnitude, and a pure function of the
   mask so DP and BigDP price identical plans identically. *)
let synth_provider =
  {
    Costing.node_card = (fun i -> float_of_int (10 + (i * 37 mod 91)));
    cluster_card =
      (fun m ->
        let h = (m * 2654435761) land 0xFFFF in
        float_of_int (1 + (h mod 1000)));
  }

(* ---------- Status.key includes the consumed-edge set ---------- *)

let test_status_key_regression () =
  (* a(/b,//c): joining edge A-B and joining edge A-C can both leave the
     partition {A,B} | {C} vs {A,B,C}... instead build the collision
     directly: equal partitions, different [joined].  Such a pair is
     unreachable for tree patterns (a connected cluster determines its
     internal edges) but the key must not rely on reachability. *)
  let plan = Plan.scan 0 in
  let mk joined =
    {
      Status.clusters =
        [
          { Status.mask = 0b011; order = 0; plan; card = 1.0 };
          { Status.mask = 0b100; order = 2; plan; card = 1.0 };
        ];
      joined;
      cost = 1.0;
    }
  in
  let a = mk 0b01 and b = mk 0b10 in
  check cb "equal partitions" true
    ((Status.key a).Status.parts = (Status.key b).Status.parts);
  check cb "keys differ on joined" true (Status.key a <> Status.key b);
  check cb "equal statuses share a key" true
    (Status.key a = Status.key (mk 0b01))

(* ---------- word-parallel popcount and the cluster map ---------- *)

let test_popcount_and_cluster_map () =
  let reference m =
    let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
    go m 0
  in
  List.iter
    (fun m -> check ci (Printf.sprintf "popcount %x" m) (reference m)
        (Status.popcount m))
    [ 0; 1; 0b10101; 0xFF; 0xDEADBEEF; max_int; (1 lsl 60) - 1; 1 lsl 60 ];
  let p = Helpers.pat "a(//b(/c),//d)" in
  let ctx = Search.make_ctx ~provider:(Costing.constant_provider 5.0) p in
  let s =
    Status.start ~factors:ctx.Search.factors ~provider:ctx.Search.provider p
  in
  let map = Status.cluster_map ~n:4 s in
  for i = 0 to 3 do
    check cb "map agrees with cluster_of" true
      (map.(i) == Status.cluster_of s i)
  done

(* ---------- the node-count ceiling ---------- *)

let big_chain n =
  let labels = Array.make n (Candidate.of_tag "a") in
  let edges = Array.init (n - 1) (fun i -> (i, Axes.Descendant, i + 1)) in
  Pattern.create ~labels ~edges ()

let test_node_limit () =
  check ci "limit is the mask-safe width" (Sys.int_size - 2) Pattern.max_nodes;
  (* the largest legal pattern still optimizes without mask overflow *)
  let p = big_chain Pattern.max_nodes in
  check ci "node_count" Pattern.max_nodes (Pattern.node_count p);
  let r = Optimizer.optimize ~provider:synth_provider (Optimizer.Big_dp 64) p in
  check (Alcotest.result Alcotest.unit cs) "plan valid"
    (Ok ()) (Properties.validate p r.Optimizer.plan);
  (* one node more is rejected at construction, as a structured request
     error through the guarded surface *)
  (match big_chain (Pattern.max_nodes + 1) with
  | _ -> Alcotest.fail "oversized pattern accepted"
  | exception Invalid_argument _ -> ());
  match
    Sjos_guard.Error.protect (fun () -> big_chain (Pattern.max_nodes + 1))
  with
  | Error (Sjos_guard.Error.Invalid_request _) -> ()
  | _ -> Alcotest.fail "oversized pattern not classed Invalid_request"

(* ---------- effort counters pinned (popcount/cluster-map rework) ---- *)

let test_effort_pins () =
  let idx = Lazy.force Helpers.pers_1k_index in
  let q = Sjos_engine.Workload.q_pers_3_d in
  let p = q.Sjos_engine.Workload.pattern in
  let provider = Helpers.exact_provider idx p in
  let expect =
    (* (algo, considered, generated, expanded, pruned_bound,
       pruned_deadend, pruned_left_deep) — captured before the
       cluster-map/popcount rework; any drift means search behavior
       changed, not just speed *)
    [
      (Optimizer.Dp, 520, 520, 138, 0, 0, 0);
      (Optimizer.Dpp, 235, 235, 72, 102, 105, 0);
      (Optimizer.Dpp_no_lookahead, 340, 340, 102, 102, 0, 0);
      (Optimizer.Dpap_eb 5, 65, 65, 18, 7, 35, 0);
      (Optimizer.Dpap_ld, 64, 64, 33, 25, 3, 51);
      (Optimizer.Fp, 18, 0, 0, 0, 0, 0);
    ]
  in
  List.iter
    (fun (algo, considered, generated, expanded, pb, pd, pl) ->
      let r = Optimizer.optimize ~provider algo p in
      let e = r.Optimizer.effort in
      let nm = Optimizer.name algo in
      check ci (nm ^ " considered") considered e.Effort.considered;
      check ci (nm ^ " generated") generated e.Effort.generated;
      check ci (nm ^ " expanded") expanded e.Effort.expanded;
      check ci (nm ^ " pruned_bound") pb e.Effort.pruned_bound;
      check ci (nm ^ " pruned_deadend") pd e.Effort.pruned_deadend;
      check ci (nm ^ " pruned_left_deep") pl e.Effort.pruned_left_deep)
    expect

(* ---------- BigDP differential against DP/DPP on small patterns ----- *)

let test_bigdp_differential () =
  List.iter
    (fun shape ->
      List.iter
        (fun nodes ->
          List.iter
            (fun s ->
              let p = Shapes.generate ~seed:s ~nodes shape in
              let id =
                Printf.sprintf "%s/%d/seed%d" (Shapes.gen_shape_name shape)
                  nodes s
              in
              let dp = Optimizer.optimize ~provider:synth_provider Optimizer.Dp p in
              let dpp = Optimizer.optimize ~provider:synth_provider Optimizer.Dpp p in
              let big =
                Optimizer.optimize ~provider:synth_provider
                  (Optimizer.Big_dp Bigdp.default_width) p
              in
              Helpers.checkf (id ^ " BigDP = DP cost") dp.Optimizer.est_cost
                big.Optimizer.est_cost;
              Helpers.checkf (id ^ " BigDP = DPP cost") dpp.Optimizer.est_cost
                big.Optimizer.est_cost;
              check (Alcotest.result Alcotest.unit cs) (id ^ " plan valid")
                (Ok ())
                (Properties.validate p big.Optimizer.plan);
              (* the plan is priced honestly: re-costing both plans
                 through the same external cost function agrees (the
                 function's order-by accounting differs from the search's
                 internal tally by a constant, so compare plan to plan,
                 not plan to estimate) *)
              let recost plan =
                Costing.cost Sjos_cost.Cost_model.default synth_provider p plan
              in
              Helpers.checkf (id ^ " plan recost")
                (recost dp.Optimizer.plan)
                (recost big.Optimizer.plan))
            [ seed; seed + 1 ])
        [ 4; 5; 6; 7; 8; 9; 10 ])
    Shapes.all_gen_shapes

(* ---------- budget truncation degrades, never crashes ---------- *)

let test_budget_degrades () =
  let p = Shapes.generate ~seed ~nodes:20 Shapes.Star in
  (* DPP on 20 nodes auto-tiers to BigDP; a tiny expansion budget fires
     inside the layered enumeration and the result degrades to the
     narrow-beam fallback tier instead of crashing *)
  let budget = Sjos_guard.Budget.make ~max_expanded:5 () in
  (match
     Optimizer.optimize_r ~budget ~provider:synth_provider Optimizer.Dpp p
   with
  | Ok r ->
      check cb "degraded_from set" true
        (r.Optimizer.degraded_from = Some Optimizer.Dpp);
      check (Alcotest.result Alcotest.unit cs) "degraded plan valid"
        (Ok ())
        (Properties.validate p r.Optimizer.plan)
  | Error e ->
      Alcotest.failf "budgeted big-pattern optimize failed: %s"
        (Sjos_guard.Error.message e));
  (* forcing the tier explicitly degrades the same way *)
  match
    Optimizer.optimize_r ~budget ~provider:synth_provider
      (Optimizer.Big_dp 64) p
  with
  | Ok r -> check cb "forced tier degrades too" true
      (r.Optimizer.degraded_from = Some (Optimizer.Big_dp 64))
  | Error e ->
      Alcotest.failf "budgeted forced BigDP failed: %s"
        (Sjos_guard.Error.message e)

(* ---------- generator invariants ---------- *)

let test_generator_invariants () =
  List.iter
    (fun shape ->
      List.iter
        (fun nodes ->
          let p = Shapes.generate ~seed ~nodes shape in
          let id =
            Printf.sprintf "%s/%d" (Shapes.gen_shape_name shape) nodes
          in
          (* Pattern.create already validates tree-ness/connectivity and
             root-to-leaf edge direction; surviving construction is the
             invariant, the rest is per-class structure *)
          check ci (id ^ " node count") nodes (Pattern.node_count p);
          check ci (id ^ " edge count") (nodes - 1) (Pattern.edge_count p);
          (match shape with
          | Shapes.Chain ->
              check cb (id ^ " is a path") true (Pattern.is_path p);
              let desc =
                List.length
                  (List.filter
                     (fun (e : Pattern.edge) -> e.Pattern.axis = Axes.Descendant)
                     (Pattern.edges p))
              in
              check cb (id ^ " mostly // edges") true (2 * desc >= nodes - 1)
          | Shapes.Star ->
              check cb (id ^ " bushy hub") true
                (List.length (Pattern.children_of p 0) >= nodes / 3)
          | Shapes.Balanced ->
              check cb (id ^ " shallow") true
                (Pattern.depth p <= 1 + (nodes |> float_of_int |> log
                                          |> fun l -> int_of_float (l /. log 2.)))
          | Shapes.Mixed -> ());
          (* determinism: same inputs, same pattern *)
          check cs (id ^ " deterministic")
            (Pattern.to_string p)
            (Pattern.to_string (Shapes.generate ~seed ~nodes shape));
          (* distinct seeds disagree somewhere across the batch — the
             stream actually depends on the seed *)
          ())
        [ 15; 25; 40 ])
    Shapes.all_gen_shapes;
  let batch s =
    List.map
      (fun shape -> Pattern.to_string (Shapes.generate ~seed:s ~nodes:25 shape))
      Shapes.all_gen_shapes
  in
  check cb "seed changes the stream" true (batch seed <> batch (seed + 1))

(* ---------- automatic tiering ---------- *)

let test_auto_tiering () =
  let small = big_chain Optimizer.big_pattern_threshold in
  let large = big_chain (Optimizer.big_pattern_threshold + 1) in
  check cb "small stays DPP" true
    (Optimizer.effective small Optimizer.Dpp = Optimizer.Dpp);
  check cb "large re-tiers" true
    (Optimizer.effective large Optimizer.Dpp
    = Optimizer.Big_dp Bigdp.default_width);
  check cb "heuristics never re-tier" true
    (Optimizer.effective large Optimizer.Fp = Optimizer.Fp);
  let r = Optimizer.optimize ~provider:synth_provider Optimizer.Dpp large in
  check cs "result reports the effective tier" "BigDP(1024)"
    (Optimizer.name r.Optimizer.algorithm);
  (* and the effort counters are reproducible run over run *)
  let r2 = Optimizer.optimize ~provider:synth_provider Optimizer.Dpp large in
  check ci "considered deterministic" r.Optimizer.plans_considered
    r2.Optimizer.plans_considered;
  check ci "expanded deterministic" r.Optimizer.statuses_expanded
    r2.Optimizer.statuses_expanded

(* ---------- end to end through Database ---------- *)

let test_database_end_to_end () =
  let db =
    Database.of_document (Lazy.force Helpers.pers_1k)
  in
  (* a 15-node // self-chain of managers: deep, selective, empty at this
     depth — the point is the pipeline (tiering, caching, execution),
     not the result set *)
  let n = 15 in
  let labels = Array.make n (Candidate.of_tag "manager") in
  let edges = Array.init (n - 1) (fun i -> (i, Axes.Descendant, i + 1)) in
  let p = Pattern.create ~labels ~edges () in
  let run = Database.run db p in
  check cs "ran under the BigDP tier" "BigDP(1024)"
    (Optimizer.name run.Database.opt.Optimizer.algorithm);
  check ci "deep self-chain is empty at 1k nodes" 0
    (Array.length run.Database.exec.Sjos_exec.Executor.tuples);
  (* the second run hits the plan cache under the effective-tier key *)
  let again = Database.prepare db p in
  check cb "cache hit on the BigDP key" true
    (Database.prepared_from_cache again)

let suite =
  [
    ("Status.key separates consumed-edge sets", `Quick, test_status_key_regression);
    ("popcount and cluster map", `Quick, test_popcount_and_cluster_map);
    ("node-count ceiling", `Quick, test_node_limit);
    ("effort counters pinned", `Quick, test_effort_pins);
    ("BigDP = DP = DPP on generated patterns <= 10", `Quick, test_bigdp_differential);
    ("budget truncation degrades structurally", `Quick, test_budget_degrades);
    ("generator shape invariants", `Quick, test_generator_invariants);
    ("automatic tiering past the threshold", `Quick, test_auto_tiering);
    ("Database end to end at 15 nodes", `Quick, test_database_end_to_end);
  ]
