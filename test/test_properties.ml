(* Property-based tests (qcheck) on the core invariants. *)

open Sjos_xml
open Sjos_storage
open Sjos_pattern
open Sjos_plan
open Sjos_core
open Sjos_exec
open Sjos_datagen

(* ---------- deterministic random structures from an integer seed ------- *)

let tags = [| "a"; "b"; "c"; "d" |]

(* A random document over a tiny tag alphabet: nested enough that
   containment joins are non-trivial. *)
let random_doc seed =
  let rng = Rng.create seed in
  let b = Builder.create () in
  let budget = ref (20 + Rng.int rng 60) in
  let rec node depth =
    decr budget;
    Builder.open_element b tags.(Rng.int rng (Array.length tags));
    let kids = if depth >= 6 then 0 else Rng.geometric rng ~p:0.55 ~max:4 in
    for _ = 1 to kids do
      if !budget > 0 then node (depth + 1)
    done;
    Builder.close_element b
  in
  node 0;
  Builder.finish b

(* A random pattern tree with 2-5 nodes over the same alphabet. *)
let random_pattern seed =
  let rng = Rng.create (seed * 31 + 17) in
  let n = 2 + Rng.int rng 4 in
  let labels =
    Array.init n (fun _ -> Candidate.of_tag tags.(Rng.int rng (Array.length tags)))
  in
  let edges =
    Array.init (n - 1) (fun i ->
        let child = i + 1 in
        let parent = Rng.int rng child in
        let axis = if Rng.bool rng then Axes.Child else Axes.Descendant in
        (parent, axis, child))
  in
  Pattern.create ~labels ~edges ()

let seed_gen = QCheck2.Gen.int_range 0 100_000

(* ---------- properties ---------- *)

let prop_doc_valid =
  Helpers.qtest "random documents satisfy the interval encoding" seed_gen
    (fun seed ->
      match Document.validate (random_doc seed) with
      | Ok () -> true
      | Error _ -> false)

let prop_nest_or_disjoint =
  Helpers.qtest "any two nodes nest or are disjoint" seed_gen (fun seed ->
      let doc = random_doc seed in
      let nodes = Document.nodes doc in
      Array.for_all
        (fun a ->
          Array.for_all
            (fun b ->
              a.Node.id = b.Node.id
              || Axes.is_ancestor a b || Axes.is_ancestor b a
              || Axes.disjoint a b)
            nodes)
        nodes)

let prop_parse_serialize_id =
  Helpers.qtest "parse . serialize = id" seed_gen (fun seed ->
      let doc = random_doc seed in
      let doc' = Parser.parse_string (Serializer.to_string ~indent:false doc) in
      Document.nodes doc = Document.nodes doc')

let prop_executor_equals_naive =
  Helpers.qtest ~count:60 "optimized execution equals naive matching" seed_gen
    (fun seed ->
      let doc = random_doc seed in
      let idx = Element_index.build doc in
      let p = random_pattern seed in
      let provider = Naive.exact_provider idx p in
      let r = Optimizer.optimize ~provider Optimizer.Dpp p in
      let run = Executor.execute idx p r.Optimizer.plan in
      Helpers.sorted_tuples (Array.to_list run.Executor.tuples)
      = Helpers.sorted_tuples (Naive.matches idx p))

let prop_fp_equals_naive =
  Helpers.qtest ~count:40 "FP plans compute the same matches" seed_gen
    (fun seed ->
      let doc = random_doc seed in
      let idx = Element_index.build doc in
      let p = random_pattern seed in
      let provider = Naive.exact_provider idx p in
      let _, plan = Fp.run (Search.make_ctx ~provider p) in
      Properties.is_fully_pipelined plan
      && Properties.is_valid p plan
      && Helpers.sorted_tuples
           (Array.to_list (Executor.execute idx p plan).Executor.tuples)
         = Helpers.sorted_tuples (Naive.matches idx p))

let prop_dp_optimal_vs_random =
  Helpers.qtest ~count:40 "DP cost is a lower bound on random plans" seed_gen
    (fun seed ->
      let doc = random_doc seed in
      let idx = Element_index.build doc in
      let p = random_pattern seed in
      let provider = Naive.exact_provider idx p in
      let dp_cost, _ = Dp.run (Search.make_ctx ~provider p) in
      List.for_all
        (fun (c, _) -> c >= dp_cost -. 1e-6)
        (Random_plan.sample ~seed (Search.make_ctx ~provider p) 10))

let prop_dpp_equals_dp =
  Helpers.qtest ~count:40 "DPP finds the DP optimum" seed_gen (fun seed ->
      let doc = random_doc seed in
      let idx = Element_index.build doc in
      let p = random_pattern seed in
      let provider = Naive.exact_provider idx p in
      let dp_cost, _ = Dp.run (Search.make_ctx ~provider p) in
      let dpp_cost, _ = Dpp.run (Search.make_ctx ~provider p) in
      Float.abs (dp_cost -. dpp_cost) < 1e-6)

let prop_estimator_bounds =
  Helpers.qtest ~count:60 "pair estimates lie within [0, |A|*|D|]" seed_gen
    (fun seed ->
      let doc = random_doc seed in
      let idx = Element_index.build doc in
      let max_pos = Document.max_pos doc in
      let h tag =
        Sjos_histogram.Position_histogram.build ~grid:16 ~max_pos
          (Element_index.lookup idx tag)
      in
      let ha = h "a" and hb = h "b" in
      let est = Sjos_histogram.Estimator.ancestor_descendant ~anc:ha ~desc:hb in
      let bound =
        Sjos_histogram.Position_histogram.cardinality ha
        *. Sjos_histogram.Position_histogram.cardinality hb
      in
      est >= 0.0 && est <= bound +. 1e-9)

let prop_stack_tree_equals_filter =
  Helpers.qtest ~count:60 "stack-tree join = filtered cross product" seed_gen
    (fun seed ->
      let doc = random_doc seed in
      let idx = Element_index.build doc in
      let metrics = Metrics.create () in
      let a = Operators.index_scan ~metrics ~width:2 ~slot:0 (Element_index.lookup idx "a") in
      let b = Operators.index_scan ~metrics ~width:2 ~slot:1 (Element_index.lookup idx "b") in
      let axis = if seed mod 2 = 0 then Axes.Descendant else Axes.Child in
      let algo = if seed mod 3 = 0 then Plan.Stack_tree_anc else Plan.Stack_tree_desc in
      let joined =
        Stack_tree.join ~metrics ~doc ~axis ~algo ~anc:(a, 0) ~desc:(b, 1) ()
      in
      let expected =
        Array.to_list a
        |> List.concat_map (fun ta ->
               Array.to_list b
               |> List.filter_map (fun tb ->
                      let na = Document.node doc (Tuple.get ta 0) in
                      let nb = Document.node doc (Tuple.get tb 1) in
                      if Axes.related axis ~anc:na ~desc:nb then
                        Some (Tuple.merge ta tb)
                      else None))
      in
      Helpers.sorted_tuples (Array.to_list joined)
      = Helpers.sorted_tuples expected)

let prop_join_output_ordered =
  Helpers.qtest ~count:60 "join output is ordered as advertised" seed_gen
    (fun seed ->
      let doc = random_doc seed in
      let idx = Element_index.build doc in
      let metrics = Metrics.create () in
      let a = Operators.index_scan ~metrics ~width:2 ~slot:0 (Element_index.lookup idx "a") in
      let b = Operators.index_scan ~metrics ~width:2 ~slot:1 (Element_index.lookup idx "b") in
      let check_sorted algo slot =
        let out =
          Stack_tree.join ~metrics ~doc ~axis:Axes.Descendant ~algo ~anc:(a, 0)
            ~desc:(b, 1) ()
        in
        let ok = ref true in
        Array.iteri
          (fun i t ->
            if i > 0 && Tuple.compare_by_slot doc slot out.(i - 1) t > 0 then
              ok := false)
          out;
        !ok
      in
      check_sorted Plan.Stack_tree_anc 0 && check_sorted Plan.Stack_tree_desc 1)

(* random *path* pattern: a chain over the alphabet *)
let random_path_pattern seed =
  let rng = Rng.create (seed * 73 + 5) in
  let n = 1 + Rng.int rng 4 in
  let labels =
    List.init n (fun _ -> Candidate.of_tag tags.(Rng.int rng (Array.length tags)))
  in
  let axes =
    List.init (max 0 (n - 1)) (fun _ ->
        if Rng.bool rng then Axes.Child else Axes.Descendant)
  in
  Shapes.path labels axes

let prop_path_stack_equals_naive =
  Helpers.qtest ~count:60 "PathStack equals naive matching on paths" seed_gen
    (fun seed ->
      let doc = random_doc seed in
      let idx = Element_index.build doc in
      let p = random_path_pattern seed in
      let metrics = Metrics.create () in
      let out = Path_stack.run ~metrics idx p in
      Helpers.sorted_tuples (Array.to_list out)
      = Helpers.sorted_tuples (Naive.matches idx p))

let prop_twig_join_equals_naive =
  Helpers.qtest ~count:60 "TwigStack-style join equals naive matching"
    seed_gen (fun seed ->
      let doc = random_doc seed in
      let idx = Element_index.build doc in
      let p = random_pattern seed in
      let metrics = Metrics.create () in
      let out = Twig_join.run ~metrics idx p in
      Helpers.sorted_tuples (Array.to_list out)
      = Helpers.sorted_tuples (Naive.matches idx p))

let prop_mpmgjn_equals_stack_tree =
  Helpers.qtest ~count:60 "MPMGJN = Stack-Tree join results" seed_gen
    (fun seed ->
      let doc = random_doc seed in
      let idx = Element_index.build doc in
      let axis = if seed mod 2 = 0 then Axes.Descendant else Axes.Child in
      let m1 = Metrics.create () and m2 = Metrics.create () in
      let scan m slot tag =
        Operators.index_scan ~metrics:m ~width:2 ~slot
          (Element_index.lookup idx tag)
      in
      let st =
        Stack_tree.join ~metrics:m1 ~doc ~axis ~algo:Plan.Stack_tree_anc
          ~anc:(scan m1 0 "a", 0) ~desc:(scan m1 1 "b", 1) ()
      in
      let mj =
        Merge_join.join ~metrics:m2 ~doc ~axis ~anc:(scan m2 0 "a", 0)
          ~desc:(scan m2 1 "b", 1)
      in
      Helpers.sorted_tuples (Array.to_list st)
      = Helpers.sorted_tuples (Array.to_list mj))

let prop_stream_equals_executor =
  Helpers.qtest ~count:50 "streaming executor = materializing executor"
    seed_gen (fun seed ->
      let doc = random_doc seed in
      let idx = Element_index.build doc in
      let p = random_pattern seed in
      let provider = Naive.exact_provider idx p in
      let r = Optimizer.optimize ~provider Optimizer.Dpp p in
      let batch = Executor.execute idx p r.Optimizer.plan in
      Array.to_list batch.Executor.tuples
      = List.of_seq (Stream_exec.stream idx p r.Optimizer.plan))

let prop_minimize_preserves_root_bindings =
  Helpers.qtest ~count:50 "minimization preserves root bindings" seed_gen
    (fun seed ->
      let doc = random_doc seed in
      let idx = Element_index.build doc in
      let p = random_pattern seed in
      let p', mapping = Minimize.minimize ~keep:[ 0 ] p in
      let roots pat' =
        Naive.matches idx pat'
        |> List.map (fun t -> Tuple.get t 0)
        |> List.sort_uniq compare
      in
      mapping.(0) = 0 && roots p = roots p')

let prop_folding_linear =
  Helpers.qtest ~count:15 "folding multiplies match counts" seed_gen
    (fun seed ->
      let doc = random_doc seed in
      let p = random_pattern seed in
      let base = Naive.count (Element_index.build doc) p in
      let folded = Folding.replicate doc 3 in
      Naive.count (Element_index.build folded) p = 3 * base)

let prop_pq_sorts =
  Helpers.qtest "priority queue pops in priority order"
    QCheck2.Gen.(list_size (int_range 0 50) (float_range (-1000.) 1000.))
    (fun floats ->
      let q = Pq.create () in
      List.iter (fun f -> Pq.push q f f) floats;
      let rec drain acc =
        match Pq.pop q with
        | Some (pr, _) -> drain (pr :: acc)
        | None -> List.rev acc
      in
      let popped = drain [] in
      popped = List.sort compare floats)

let prop_random_plans_valid =
  Helpers.qtest ~count:40 "random plans are always valid" seed_gen (fun seed ->
      let doc = random_doc seed in
      let idx = Element_index.build doc in
      let p = random_pattern seed in
      let provider = Naive.exact_provider idx p in
      let ctx = Search.make_ctx ~provider p in
      List.for_all
        (fun (_, plan) -> Properties.is_valid p plan)
        (Random_plan.sample ~seed ctx 5))

let suite =
  [
    prop_doc_valid;
    prop_nest_or_disjoint;
    prop_parse_serialize_id;
    prop_executor_equals_naive;
    prop_fp_equals_naive;
    prop_dp_optimal_vs_random;
    prop_dpp_equals_dp;
    prop_estimator_bounds;
    prop_stack_tree_equals_filter;
    prop_join_output_ordered;
    prop_path_stack_equals_naive;
    prop_twig_join_equals_naive;
    prop_mpmgjn_equals_stack_tree;
    prop_stream_equals_executor;
    prop_minimize_preserves_root_bindings;
    prop_folding_linear;
    prop_pq_sorts;
    prop_random_plans_valid;
  ]
