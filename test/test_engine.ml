open Sjos_pattern
open Sjos_core
open Sjos_exec
open Sjos_engine

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let test_database_basics () =
  let db = Database.of_string Helpers.tiny_pers_xml in
  check ci "doc size" 17 (Sjos_xml.Document.size (Database.document db));
  let s = Database.stats db in
  check ci "stats nodes" 17 s.Sjos_storage.Stats.node_count;
  check cb "factors default" true
    (Database.factors db = Sjos_cost.Cost_model.default)

let test_database_run_query () =
  let db = Database.of_string Helpers.tiny_pers_xml in
  let p = Helpers.pat "manager(//employee(/name))" in
  let run = Database.run_query db p in
  check ci "matches" 4 (Array.length run.Database.exec.Executor.tuples);
  let naive = Naive.count (Database.index db) p in
  check ci "naive agrees" naive (Array.length run.Database.exec.Executor.tuples);
  check cb "plan valid" true
    (Sjos_plan.Properties.is_valid p run.Database.opt.Optimizer.plan)

let test_database_all_algorithms () =
  let db = Database.of_document (Lazy.force Helpers.pers_1k) in
  let p = Helpers.pat "manager(//employee(/name),//department(/name))" in
  let expected = Naive.count (Database.index db) p in
  List.iter
    (fun algo ->
      let run = Database.run_query ~algorithm:algo db p in
      check ci
        ("count with " ^ Optimizer.name algo)
        expected
        (Array.length run.Database.exec.Executor.tuples))
    (Optimizer.all p)

let test_database_explain () =
  let db = Database.of_string Helpers.tiny_pers_xml in
  let p = Helpers.pat "manager(//employee)" in
  let s = Database.explain db p in
  check cb "mentions scan" true (Helpers.contains s "IdxScan");
  check cb "mentions cost" true (Helpers.contains s "cost~")

let test_database_load_file () =
  let path = Filename.temp_file "sjos" ".xml" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc Helpers.tiny_pers_xml;
      close_out oc;
      let db = Database.load_file path in
      check ci "loaded" 17 (Sjos_xml.Document.size (Database.document db)))

let test_workload_queries () =
  check ci "eight queries" 8 (List.length Workload.queries);
  List.iter
    (fun (q : Workload.query) ->
      let n = Pattern.node_count q.Workload.pattern in
      let expected =
        match q.Workload.shape with
        | 'a' -> 3
        | 'b' -> 4
        | 'c' -> 5
        | 'd' -> 6
        | _ -> -1
      in
      check ci (q.Workload.id ^ " node count") expected n)
    Workload.queries;
  check cb "find works" true (Workload.find "Q.Pers.3.d" == Workload.q_pers_3_d);
  (match Workload.find "Q.Nope" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown id must raise");
  List.iter
    (fun ds ->
      check cb "dataset name nonempty" true
        (String.length (Workload.dataset_name ds) > 0);
      check cb "default size sane" true (Workload.default_size ds >= 1000))
    Workload.all_datasets

let test_workload_queries_have_matches () =
  (* every benchmark query must select something on its data set,
     otherwise the experiment is vacuous *)
  List.iter
    (fun (q : Workload.query) ->
      let doc = Workload.generate ~size:3000 q.Workload.dataset in
      let db = Database.of_document doc in
      let run = Database.run_query db q.Workload.pattern in
      check cb
        (q.Workload.id ^ " has matches")
        true
        (Array.length run.Database.exec.Executor.tuples > 0))
    Workload.queries

let test_experiment_cells () =
  let db = Database.of_document (Lazy.force Helpers.pers_1k) in
  let p = Helpers.pat "manager(//employee(/name))" in
  let cell = Experiment.run_cell ~opts:(Experiment.cold_opts Optimizer.Dpp) db p in
  check cb "opt time" true (cell.Experiment.opt_seconds >= 0.0);
  check cb "eval units" true (cell.Experiment.eval_units > 0.0);
  check cb "matches" true (cell.Experiment.matches > 0);
  let bad = Experiment.bad_plan_cell ~samples:5 db p in
  check cb "bad plan worse or equal" true
    (bad.Experiment.eval_units >= cell.Experiment.eval_units)

let test_experiment_bad_plan_limit () =
  let db = Database.of_document (Lazy.force Helpers.pers_1k) in
  let p = Helpers.pat "manager(//employee(/name),//department(/name))" in
  let bad = Experiment.bad_plan_cell ~samples:5 ~max_tuples:10 db p in
  check ci "not executed" (-1) bad.Experiment.matches;
  check cb "estimate reported" true (bad.Experiment.eval_units > 0.0)

let test_experiment_table2 () =
  let rows = Experiment.table2 ~size:1500 () in
  check ci "six algorithms" 6 (List.length rows);
  let get name =
    (List.find (fun r -> r.Experiment.algo_name = name) rows).Experiment.considered
  in
  check cb "DP most plans" true (get "DP" >= get "DPP'");
  check cb "DPP' > DPP" true (get "DPP'" > get "DPP");
  check cb "DPP > FP" true (get "DPP" > get "FP");
  List.iter
    (fun r -> check cb "positive counts" true (r.Experiment.considered > 0))
    rows

let test_experiment_table3_scaling () =
  let rows =
    Experiment.table3 ~base_size:400 ~folds:[ 1; 3 ] ~max_tuples:5_000_000 ()
  in
  check ci "six rows (5 algos + bad)" 6 (List.length rows);
  List.iter
    (fun r ->
      match r.Experiment.per_fold with
      | [ (1, u1, _); (3, u3, _) ] ->
          check cb
            (Printf.sprintf "%s grows with folding (%.0f -> %.0f)"
               r.Experiment.label u1 u3)
            true (u3 > u1)
      | _ -> Alcotest.fail "expected folds 1 and 3")
    rows

let test_experiment_figure_te () =
  let points = Experiment.figure_te ~base_size:400 ~fold:1 () in
  (* 6 Te settings + 4 reference algorithms *)
  check ci "point count" 10 (List.length points);
  List.iter
    (fun p ->
      check cb "components nonnegative" true
        (p.Experiment.opt_units_s >= 0.0 && p.Experiment.eval_units_s >= 0.0))
    points

let test_order_by_end_to_end () =
  let db = Database.of_document (Lazy.force Helpers.pers_1k) in
  let doc = Database.document db in
  List.iter
    (fun algo ->
      List.iter
        (fun node ->
          let p =
            Pattern.with_order_by
              (Helpers.pat "manager(//employee(/name))")
              (Some node)
          in
          let run = Database.run_query ~algorithm:algo db p in
          let tuples = run.Database.exec.Executor.tuples in
          check ci "count stable" (Naive.count (Database.index db) p)
            (Array.length tuples);
          let sorted = ref true in
          Array.iteri
            (fun i t ->
              if
                i > 0
                && Tuple.compare_by_slot doc node tuples.(i - 1) t > 0
              then sorted := false)
            tuples;
          check cb
            (Printf.sprintf "%s sorted by %s" (Optimizer.name algo)
               (Pattern.name p node))
            true !sorted)
        [ 0; 1; 2 ])
    [ Optimizer.Dp; Optimizer.Dpp; Optimizer.Fp ]

let test_mbench_attribute_query () =
  let db = Database.of_document (Lazy.force Helpers.mbench_1k) in
  let p, _ =
    Sjos_pattern.Xpath.compile "//eNest[@aLevel='3']//eNest[@aLevel='6']"
  in
  let run = Database.run_query db p in
  check ci "agrees with naive" (Naive.count (Database.index db) p)
    (Array.length run.Database.exec.Executor.tuples)

let suite =
  [
    ("database basics", `Quick, test_database_basics);
    ("database run_query", `Quick, test_database_run_query);
    ("database all algorithms agree", `Quick, test_database_all_algorithms);
    ("database explain", `Quick, test_database_explain);
    ("database load_file", `Quick, test_database_load_file);
    ("workload queries", `Quick, test_workload_queries);
    ("workload queries have matches", `Slow, test_workload_queries_have_matches);
    ("experiment cells", `Quick, test_experiment_cells);
    ("experiment bad-plan limit", `Quick, test_experiment_bad_plan_limit);
    ("experiment table2", `Quick, test_experiment_table2);
    ("experiment table3 scaling", `Slow, test_experiment_table3_scaling);
    ("experiment figure te", `Slow, test_experiment_figure_te);
    ("order-by end to end", `Quick, test_order_by_end_to_end);
    ("mbench attribute query", `Quick, test_mbench_attribute_query);
  ]
