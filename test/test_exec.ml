open Sjos_xml
open Sjos_storage
open Sjos_pattern
open Sjos_plan
open Sjos_exec

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

(* ---------- Tuple ---------- *)

let test_tuple () =
  let doc = Lazy.force Helpers.tiny_pers in
  let t = Tuple.create 3 in
  check cb "unbound" false (Tuple.is_bound t 0);
  let s = Tuple.singleton ~width:3 1 (Document.node doc 5) in
  check ci "bound id" 5 (Tuple.get s 1);
  check ci "mask" 0b010 (Tuple.bound_mask s);
  let s2 = Tuple.singleton ~width:3 0 (Document.node doc 1) in
  let m = Tuple.merge s s2 in
  check ci "merged mask" 0b011 (Tuple.bound_mask m);
  check cb "to_string" true (Helpers.contains (Tuple.to_string m) "5");
  (match Tuple.merge s s with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "overlapping merge should fail");
  (match Tuple.merge s (Tuple.create 4) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "width mismatch should fail")

(* ---------- Stack-Tree joins (node level) ---------- *)

(* doc:  <a><a><b/></a><b/><c><b/></c></a>
   ids:   0  1  2       3   4  5
   a-ids: 0,1 ; b-ids: 2,3,5 ; c-id: 4 *)
let st_doc = lazy (Parser.parse_string "<a><a><b/></a><b/><c><b/></c></a>")

let scan_tuples _doc idx tag slot width ~metrics =
  Operators.index_scan ~metrics ~width ~slot (Element_index.lookup idx tag)

let run_join algo axis =
  let doc = Lazy.force st_doc in
  let idx = Element_index.build doc in
  let metrics = Metrics.create () in
  let anc = scan_tuples doc idx "a" 0 2 ~metrics in
  let desc = scan_tuples doc idx "b" 1 2 ~metrics in
  let out =
    Stack_tree.join ~metrics ~doc ~axis ~algo ~anc:(anc, 0) ~desc:(desc, 1) ()
  in
  (out, metrics)

let pairs_of out = Array.to_list out |> List.map (fun t -> (Tuple.get t 0, Tuple.get t 1))

let test_stj_desc_descendant () =
  let out, metrics = run_join Plan.Stack_tree_desc Axes.Descendant in
  (* expected (a,b) with a ancestor of b: (0,2),(1,2),(0,3),(0,5) *)
  check
    (Alcotest.list (Alcotest.pair ci ci))
    "pairs ordered by descendant"
    [ (0, 2); (1, 2); (0, 3); (0, 5) ]
    (pairs_of out);
  check ci "output tuples" 4 metrics.Metrics.output_tuples;
  check ci "no buffered io" 0 metrics.Metrics.io_items;
  check ci "stack ops 2|A|" 4 metrics.Metrics.stack_ops

let test_stj_anc_descendant () =
  let out, metrics = run_join Plan.Stack_tree_anc Axes.Descendant in
  (* ordered by ancestor: a=0 pairs first (in b order), then a=1 *)
  check
    (Alcotest.list (Alcotest.pair ci ci))
    "pairs ordered by ancestor"
    [ (0, 2); (0, 3); (0, 5); (1, 2) ]
    (pairs_of out);
  check ci "buffered io 2|AB|" 8 metrics.Metrics.io_items

let test_stj_child_axis () =
  let out, _ = run_join Plan.Stack_tree_desc Axes.Child in
  (* only direct children: (1,2),(0,3) *)
  check
    (Alcotest.list (Alcotest.pair ci ci))
    "child pairs" [ (1, 2); (0, 3) ] (pairs_of out)

let test_stj_empty_inputs () =
  let doc = Lazy.force st_doc in
  let idx = Element_index.build doc in
  let metrics = Metrics.create () in
  let a = scan_tuples doc idx "a" 0 2 ~metrics in
  let none = scan_tuples doc idx "zz" 1 2 ~metrics in
  let out =
    Stack_tree.join ~metrics ~doc ~axis:Axes.Descendant
      ~algo:Plan.Stack_tree_desc ~anc:(a, 0) ~desc:(none, 1) ()
  in
  check ci "empty desc" 0 (Array.length out);
  let none_anc = scan_tuples doc idx "zz" 0 2 ~metrics in
  let b = scan_tuples doc idx "b" 1 2 ~metrics in
  let out2 =
    Stack_tree.join ~metrics ~doc ~axis:Axes.Descendant
      ~algo:Plan.Stack_tree_anc ~anc:(none_anc, 0) ~desc:(b, 1) ()
  in
  check ci "empty anc" 0 (Array.length out2)

let test_stj_unsorted_rejected () =
  let doc = Lazy.force st_doc in
  let idx = Element_index.build doc in
  let metrics = Metrics.create () in
  let a = scan_tuples doc idx "a" 0 2 ~metrics in
  let reversed = Array.of_list (List.rev (Array.to_list a)) in
  match
    Stack_tree.join ~metrics ~doc ~axis:Axes.Descendant
      ~algo:Plan.Stack_tree_desc ~anc:(reversed, 0) ~desc:(a, 1) ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unsorted input should be rejected"

(* Join where one input is an intermediate result with duplicate join-node
   values: (a,b) pairs joined with c on a//c. *)
let test_stj_duplicate_join_values () =
  let doc = Lazy.force st_doc in
  let idx = Element_index.build doc in
  let metrics = Metrics.create () in
  let width = 3 in
  let a = Operators.index_scan ~metrics ~width ~slot:0 (Element_index.lookup idx "a") in
  let b = Operators.index_scan ~metrics ~width ~slot:1 (Element_index.lookup idx "b") in
  let ab =
    Stack_tree.join ~metrics ~doc ~axis:Axes.Descendant
      ~algo:Plan.Stack_tree_anc ~anc:(a, 0) ~desc:(b, 1) ()
  in
  (* ab ordered by a (slot 0), with a=0 appearing three times *)
  let c = Operators.index_scan ~metrics ~width ~slot:2 (Element_index.lookup idx "c") in
  let abc =
    Stack_tree.join ~metrics ~doc ~axis:Axes.Descendant
      ~algo:Plan.Stack_tree_desc ~anc:(ab, 0) ~desc:(c, 2) ()
  in
  (* c=4 is a descendant of a=0 only; expect one tuple per (0,b) pair *)
  let triples =
    Array.to_list abc
    |> List.map (fun t -> (Tuple.get t 0, Tuple.get t 1, Tuple.get t 2))
    |> List.sort compare
  in
  check
    (Alcotest.list (Alcotest.triple ci ci ci))
    "triples" [ (0, 2, 4); (0, 3, 4); (0, 5, 4) ] triples

(* ---------- Sort operator ---------- *)

let test_sort_operator () =
  let doc = Lazy.force st_doc in
  let idx = Element_index.build doc in
  let metrics = Metrics.create () in
  let out, _ = run_join Plan.Stack_tree_desc Axes.Descendant in
  ignore idx;
  let sorted = Operators.sort ~metrics ~doc ~by:0 out in
  let firsts = Array.to_list sorted |> List.map (fun t -> Tuple.get t 0) in
  check (Alcotest.list ci) "sorted by slot 0" [ 0; 0; 0; 1 ]
    (List.sort compare firsts);
  (* verify actual order, not just multiset *)
  check (Alcotest.list ci) "order" [ 0; 0; 0; 1 ] firsts;
  check ci "sorted items" 4 metrics.Metrics.sorted_items;
  check cb "sort cost recorded" true (metrics.Metrics.sort_cost > 0.0)

(* ---------- Executor vs naive oracle ---------- *)

let patterns_for_oracle =
  [
    "manager(//employee(/name))";
    "manager(//employee,//department)";
    "manager(//employee(/name),//manager(/department(/name)))";
    "company(//manager(/name))";
    "manager(//manager)";
    "*(//name)";
    "manager(//name[.='dan'])";
  ]

let test_executor_matches_naive () =
  let idx = Lazy.force Helpers.tiny_index in
  List.iter
    (fun s ->
      let p = Helpers.pat s in
      let provider = Helpers.exact_provider idx p in
      let r = Sjos_core.Optimizer.optimize ~provider Sjos_core.Optimizer.Dpp p in
      let run = Executor.execute idx p r.Sjos_core.Optimizer.plan in
      let expected = Naive.matches idx p in
      Helpers.check_same_matches s expected (Array.to_list run.Executor.tuples))
    patterns_for_oracle

let test_executor_all_algorithms_agree () =
  let idx = Lazy.force Helpers.pers_1k_index in
  let p = Helpers.pat "manager(//employee(/name),//department(/name))" in
  let provider = Helpers.exact_provider idx p in
  let counts =
    List.map
      (fun algo ->
        let r = Sjos_core.Optimizer.optimize ~provider algo p in
        Executor.count_matches idx p r.Sjos_core.Optimizer.plan)
      (Sjos_core.Optimizer.all p)
  in
  match counts with
  | first :: rest ->
      List.iter (fun c -> check ci "same count across algorithms" first c) rest
  | [] -> Alcotest.fail "no algorithms"

let test_executor_output_order () =
  let idx = Lazy.force Helpers.pers_1k_index in
  let doc = Element_index.document idx in
  let p = Helpers.pat "manager(//employee(/name))" in
  let provider = Helpers.exact_provider idx p in
  List.iter
    (fun algo ->
      let r = Sjos_core.Optimizer.optimize ~provider algo p in
      let plan = r.Sjos_core.Optimizer.plan in
      let by = Plan.ordered_by plan in
      let run = Executor.execute idx p plan in
      let ok = ref true in
      Array.iteri
        (fun i t ->
          if i > 0 then
            let prev = run.Executor.tuples.(i - 1) in
            if Tuple.compare_by_slot doc by prev t > 0 then ok := false)
        run.Executor.tuples;
      check cb
        (Printf.sprintf "%s output ordered by %s"
           (Sjos_core.Optimizer.name algo)
           (Pattern.name p by))
        true !ok)
    (Sjos_core.Optimizer.all p)

let test_executor_rejects_invalid () =
  let idx = Lazy.force Helpers.tiny_index in
  let p = Helpers.pat "manager(//employee(/name))" in
  match Executor.execute idx p (Plan.scan 0) with
  | exception Sjos_guard.Error.Error (Sjos_guard.Error.Invalid_plan _) -> ()
  | _ -> Alcotest.fail "partial plan must be rejected"

let test_executor_limit () =
  let idx = Lazy.force Helpers.pers_1k_index in
  let p = Helpers.pat "manager(//name)" in
  let provider = Helpers.exact_provider idx p in
  let r = Sjos_core.Optimizer.optimize ~provider Sjos_core.Optimizer.Dpp p in
  match Executor.execute ~max_tuples:3 idx p r.Sjos_core.Optimizer.plan with
  | exception
      Sjos_guard.Budget.Exhausted
        {
          resource = Sjos_guard.Budget.Tuples_materialized { limit; count };
          _;
        } ->
      check ci "limit preserved" 3 limit;
      check cb "partial count reported" true (count > 3)
  | _ -> Alcotest.fail "expected Budget.Exhausted (Tuples_materialized)"

let test_metrics_accounting () =
  let idx = Lazy.force Helpers.tiny_index in
  let p = Helpers.pat "manager(//employee)" in
  let edge = List.hd (Pattern.edges p) in
  let plan =
    Plan.join ~anc_side:(Plan.scan 0) ~desc_side:(Plan.scan 1) ~edge
      ~algo:Plan.Stack_tree_desc
  in
  let run = Executor.execute idx p plan in
  check ci "index items = |A|+|B|" 6 run.Executor.metrics.Metrics.index_items;
  check ci "joins" 1 run.Executor.metrics.Metrics.joins;
  check cb "cost units positive" true (run.Executor.cost_units > 0.0);
  let m2 = Metrics.create () in
  Metrics.add m2 run.Executor.metrics;
  check ci "metrics add" run.Executor.metrics.Metrics.index_items
    m2.Metrics.index_items;
  Metrics.reset m2;
  check ci "metrics reset" 0 m2.Metrics.index_items;
  check cb "metrics pp" true
    (String.length (Fmt.str "%a" Metrics.pp m2) > 0)

(* ---------- PathStack holistic join ---------- *)

let test_path_stack_matches_naive () =
  let idx = Lazy.force Helpers.tiny_index in
  List.iter
    (fun s ->
      let p = Helpers.pat s in
      let metrics = Metrics.create () in
      let out = Path_stack.run ~metrics idx p in
      Helpers.check_same_matches ("pathstack " ^ s) (Naive.matches idx p)
        (Array.to_list out))
    [
      "manager(//employee(/name))";
      "manager(/name)";
      "company(//manager(//manager(/department)))";
      "manager(//manager)";
      "company(//manager(//employee(/name)))";
      "name";
    ]

let test_path_stack_ordered_by_leaf () =
  let idx = Lazy.force Helpers.pers_1k_index in
  let doc = Element_index.document idx in
  let p = Helpers.pat "manager(//employee(/name))" in
  let metrics = Metrics.create () in
  let out = Path_stack.run ~metrics idx p in
  check cb "has results" true (Array.length out > 0);
  let ok = ref true in
  Array.iteri
    (fun i t ->
      if i > 0 && Tuple.compare_by_slot doc 2 out.(i - 1) t > 0 then ok := false)
    out;
  check cb "ordered by leaf" true !ok;
  check ci "counts agree" (Naive.count idx p) (Array.length out)

let test_path_stack_rejects_twigs () =
  let idx = Lazy.force Helpers.tiny_index in
  let p = Helpers.pat "manager(//employee,//department)" in
  match Path_stack.count idx p with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "twig must be rejected"

let test_path_stack_no_intermediate_blowup () =
  (* the whole point of holistic joins: intermediate results of a binary
     plan can exceed the final result; PathStack only ever materializes
     output *)
  let idx = Lazy.force Helpers.pers_1k_index in
  let p = Helpers.pat "company(//manager(//name))" in
  let metrics = Metrics.create () in
  let out = Path_stack.run ~metrics idx p in
  check ci "output tuples metric = result size" (Array.length out)
    metrics.Metrics.output_tuples;
  check ci "no buffered io" 0 metrics.Metrics.io_items

(* ---------- TwigStack-style holistic twig join ---------- *)

let test_twig_join_matches_naive () =
  let idx = Lazy.force Helpers.tiny_index in
  List.iter
    (fun s ->
      let p = Helpers.pat s in
      let metrics = Metrics.create () in
      let out = Twig_join.run ~metrics idx p in
      Helpers.check_same_matches ("twig " ^ s) (Naive.matches idx p)
        (Array.to_list out))
    ([ "manager(//employee,//department)";
       "manager(//employee(/name),//department(/name))";
       "manager(//employee(/name),//manager(/department(/name)))";
       "company(//manager(/name),//manager(//employee))";
       "manager(//manager(/department),//employee)";
     ]
    @ patterns_for_oracle)

let test_twig_join_path_solutions () =
  let idx = Lazy.force Helpers.tiny_index in
  let p = Helpers.pat "manager(//employee(/name),//department)" in
  let metrics = Metrics.create () in
  let per_leaf = Twig_join.path_solutions ~metrics idx p in
  check ci "two leaves" 2 (List.length per_leaf);
  (* leaf C=2 path A//B/C; leaf D=3 path A//D *)
  let c_solutions = List.assoc 2 per_leaf in
  let d_solutions = List.assoc 3 per_leaf in
  let path_abc = Helpers.pat "manager(//employee(/name))" in
  check ci "A//B/C path solutions" (Naive.count idx path_abc)
    (List.length c_solutions);
  let path_ad = Helpers.pat "manager(//department)" in
  check ci "A//D path solutions" (Naive.count idx path_ad)
    (List.length d_solutions);
  (* every path solution binds exactly its path's slots *)
  List.iter
    (fun t -> check ci "C-path slots" 0b0111 (Tuple.bound_mask t))
    c_solutions;
  List.iter
    (fun t -> check ci "D-path slots" 0b1001 (Tuple.bound_mask t))
    d_solutions

let test_twig_join_single_node () =
  let idx = Lazy.force Helpers.tiny_index in
  let p = Helpers.pat "manager" in
  check ci "single node twig" 3 (Twig_join.count idx p)

let test_naive_cluster_count () =
  let idx = Lazy.force Helpers.tiny_index in
  let p = Helpers.pat "manager(//employee(/name))" in
  check ci "full" 4 (Naive.cluster_count idx p 0b111);
  (* B//C cluster: employee/name pairs = 3 *)
  check ci "sub cluster" 3 (Naive.cluster_count idx p 0b110);
  check ci "single" 3 (Naive.cluster_count idx p 0b001)

let suite =
  [
    ("tuple operations", `Quick, test_tuple);
    ("STJ-Desc descendant axis", `Quick, test_stj_desc_descendant);
    ("STJ-Anc descendant axis", `Quick, test_stj_anc_descendant);
    ("STJ child axis", `Quick, test_stj_child_axis);
    ("STJ empty inputs", `Quick, test_stj_empty_inputs);
    ("STJ unsorted input rejected", `Quick, test_stj_unsorted_rejected);
    ("STJ duplicate join values", `Quick, test_stj_duplicate_join_values);
    ("sort operator", `Quick, test_sort_operator);
    ("executor matches naive oracle", `Quick, test_executor_matches_naive);
    ("all algorithms same result", `Quick, test_executor_all_algorithms_agree);
    ("executor output ordering", `Quick, test_executor_output_order);
    ("executor rejects invalid plans", `Quick, test_executor_rejects_invalid);
    ("executor tuple limit", `Quick, test_executor_limit);
    ("metrics accounting", `Quick, test_metrics_accounting);
    ("naive cluster counts", `Quick, test_naive_cluster_count);
    ("pathstack matches naive", `Quick, test_path_stack_matches_naive);
    ("pathstack leaf order", `Quick, test_path_stack_ordered_by_leaf);
    ("pathstack rejects twigs", `Quick, test_path_stack_rejects_twigs);
    ("pathstack materializes only output", `Quick,
      test_path_stack_no_intermediate_blowup);
    ("twig join matches naive", `Quick, test_twig_join_matches_naive);
    ("twig join path solutions", `Quick, test_twig_join_path_solutions);
    ("twig join single node", `Quick, test_twig_join_single_node);
  ]
