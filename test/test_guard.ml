(* Resource governance and graceful degradation: budgets, structured
   errors, degradation to DPAP-EB, corrupt-cache recovery, the
   malformed-input matrix, and the seeded fault-injection property suite.

   The chaos properties run over a deterministic seed range; CI varies the
   base via the SJOS_GUARD_SEED environment variable so different runs
   explore different corruption sequences while any failure stays
   replayable from its seed. *)

open Sjos_guard
open Sjos_engine

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let seed_base =
  match Sys.getenv_opt "SJOS_GUARD_SEED" with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 7)
  | None -> 7

let pers_db = lazy (Database.of_document (Lazy.force Helpers.pers_1k))

(* ---------- Budget ---------- *)

let test_budget_unlimited () =
  check cb "make () is unlimited" true (Budget.is_unlimited (Budget.make ()));
  check cb "physically the same" true (Budget.make () == Budget.unlimited);
  check cb "poll is None" true (Budget.poll Budget.unlimited = None);
  Budget.check Budget.unlimited ~during:"test";
  Budget.check_search Budget.unlimited ~during:"test" ~expanded:max_int;
  Budget.check_tuples Budget.unlimited ~during:"test" ~count:max_int

let test_budget_ceilings () =
  let b = Budget.make ~max_expanded:5 ~max_tuples:10 () in
  Budget.check_search b ~during:"t" ~expanded:4;
  (match Budget.check_search b ~during:"t" ~expanded:5 with
  | exception Budget.Exhausted { resource = Budget.Statuses_expanded; during }
    ->
      check Alcotest.string "during" "t" during
  | () -> Alcotest.fail "expansion ceiling did not fire");
  Budget.check_tuples b ~during:"t" ~count:10;
  (match Budget.check_tuples b ~during:"t" ~count:11 with
  | exception
      Budget.Exhausted
        { resource = Budget.Tuples_materialized { limit; count }; _ } ->
      check ci "limit" 10 limit;
      check ci "count" 11 count
  | () -> Alcotest.fail "tuple ceiling did not fire");
  let flag = Atomic.make false in
  let c = Budget.make ~cancelled:flag () in
  check cb "not cancelled yet" true (Budget.poll c = None);
  Budget.cancel c;
  check cb "cancelled" true (Budget.poll c = Some Budget.Cancelled);
  check cb "cancel writes the caller's flag" true (Atomic.get flag);
  let d = Budget.make ~deadline_ms:0.0 () in
  (match Budget.check d ~during:"t" with
  | exception Budget.Exhausted { resource = Budget.Wall_clock; _ } -> ()
  | () -> Alcotest.fail "zero deadline did not fire")

let test_budget_cap_tuples () =
  let b = Budget.cap_tuples Budget.unlimited (Some 5) in
  check cb "cap on unlimited" true (b.Budget.max_tuples = Some 5);
  let b2 = Budget.cap_tuples (Budget.make ~max_tuples:3 ()) (Some 5) in
  check cb "min wins" true (b2.Budget.max_tuples = Some 3);
  let b3 = Budget.cap_tuples (Budget.make ~max_tuples:7 ()) (Some 5) in
  check cb "min wins (other side)" true (b3.Budget.max_tuples = Some 5);
  check cb "None is identity" true
    (Budget.cap_tuples Budget.unlimited None == Budget.unlimited)

(* A budget with no ceilings but a cancel flag must never be mistaken
   for [unlimited] (the serve path builds exactly this shape so a
   client disconnect can cancel an otherwise uncapped query): the
   engine has to keep polling it all the way down. *)
let test_budget_cancel_only_not_unlimited () =
  let b = Budget.make ~cancelled:(Atomic.make false) () in
  check cb "cancellable budget is not unlimited" false (Budget.is_unlimited b);
  Budget.cancel b;
  let db = Lazy.force pers_db in
  let p = Helpers.pat "manager(//employee(/name))" in
  match
    Database.run_r ~opts:(Query_opts.make ~use_cache:false ~budget:b ()) db p
  with
  | Result.Error (Error.Budget_exhausted { resource = Budget.Cancelled; _ })
    ->
      ()
  | Result.Error e ->
      Alcotest.failf "unexpected error class: %s" (Error.class_name e)
  | Result.Ok _ -> Alcotest.fail "cancelled uncapped budget did not abort"

(* ---------- Error ---------- *)

let all_errors =
  [
    Error.Parse_error { input = "x"; message = "m" };
    Error.Invalid_request "m";
    Error.Invalid_plan "m";
    Error.Budget_exhausted { resource = Budget.Wall_clock; during = "t" };
    Error.Corrupt_cache_entry { key = "k"; reason = "r" };
    Error.Corrupt_input { source = "s"; reason = "r" };
    Error.Internal "m";
  ]

let test_error_exit_codes () =
  let codes = List.map Error.exit_code all_errors in
  check ci "seven classes" 7 (List.length (List.sort_uniq compare codes));
  List.iter
    (fun c -> check cb "nonzero, distinct from cmdliner's 124/125" true
        (c >= 2 && c <= 8))
    codes;
  let names = List.map Error.class_name all_errors in
  check ci "distinct names" 7 (List.length (List.sort_uniq compare names));
  List.iter
    (fun e -> check cb "non-empty message" true (Error.message e <> ""))
    all_errors

let test_error_protect () =
  check cb "ok" true (Error.protect (fun () -> 2) = Ok 2);
  check cb "structured error passes through" true
    (Error.protect (fun () -> Error.fail (Error.Invalid_plan "p"))
    = Result.Error (Error.Invalid_plan "p"));
  (match
     Error.protect (fun () ->
         raise
           (Budget.Exhausted { resource = Budget.Wall_clock; during = "t" }))
   with
  | Result.Error (Error.Budget_exhausted { resource = Budget.Wall_clock; _ })
    ->
      ()
  | _ -> Alcotest.fail "Budget.Exhausted not mapped");
  (match Error.protect (fun () -> failwith "boom") with
  | Result.Error (Error.Internal _) -> ()
  | _ -> Alcotest.fail "stray exception not mapped to Internal");
  match
    Error.protect
      ~map:(function
        | Failure m -> Some (Error.Parse_error { input = ""; message = m })
        | _ -> None)
      (fun () -> failwith "syntax")
  with
  | Result.Error (Error.Parse_error { message = "syntax"; _ }) -> ()
  | _ -> Alcotest.fail "map not consulted"

(* ---------- structured tuple limit ---------- *)

let test_tuple_limit_structured () =
  let db = Lazy.force pers_db in
  let p = Helpers.pat "manager(//name)" in
  match Database.run_r ~opts:(Query_opts.make ~max_tuples:3 ()) db p with
  | Result.Error
      (Error.Budget_exhausted
         {
           resource = Budget.Tuples_materialized { limit; count };
           during = "execute";
         }) ->
      check ci "limit preserved" 3 limit;
      check cb "partial count preserved" true (count > 3)
  | Ok _ -> Alcotest.fail "limit did not fire"
  | Result.Error e -> Alcotest.fail ("wrong error: " ^ Error.class_name e)

(* ---------- degradation ---------- *)

let matches_of (run : Database.query_run) =
  Array.to_list run.Database.exec.Sjos_exec.Executor.tuples

let test_degradation_to_dpap () =
  let db = Lazy.force pers_db in
  let p = Helpers.pat "manager(//employee(/name),//department)" in
  let full = Database.run ~opts:(Query_opts.cold Query_opts.default) db p in
  Sjos_obs.Registry.set_enabled true;
  Sjos_obs.Registry.reset ();
  let opts =
    Query_opts.make ~use_cache:false
      ~budget:(Budget.make ~max_expanded:1 ())
      ()
  in
  let degraded = Sjos_obs.Registry.counter "guard.degraded" in
  let result = Database.run_r ~opts db p in
  let count = Sjos_obs.Registry.counter_value degraded in
  Sjos_obs.Registry.set_enabled false;
  match result with
  | Ok run ->
      (match run.Database.opt.Sjos_core.Optimizer.degraded_from with
      | Some Sjos_core.Optimizer.Dpp -> ()
      | _ -> Alcotest.fail "expected degraded_from = Some Dpp");
      (match run.Database.opt.Sjos_core.Optimizer.algorithm with
      | Sjos_core.Optimizer.Dpap_eb _ -> ()
      | _ -> Alcotest.fail "fallback tier should be DPAP-EB");
      check cb "guard.degraded counted" true (count >= 1);
      Helpers.check_same_matches "degraded plan computes the same matches"
        (matches_of full) (matches_of run)
  | Result.Error e ->
      Alcotest.fail ("degradation should absorb: " ^ Error.class_name e)

let test_heuristic_tier_not_degraded () =
  (* a budget firing inside an already-heuristic tier is a hard error *)
  let db = Lazy.force pers_db in
  let p = Helpers.pat "manager(//employee(/name),//department)" in
  let opts =
    Query_opts.make ~use_cache:false
      ~algorithm:(Sjos_core.Optimizer.Dpap_eb 2)
      ~budget:(Budget.make ~max_expanded:1 ())
      ()
  in
  match Database.run_r ~opts db p with
  | Result.Error (Error.Budget_exhausted { during = "optimize"; _ }) -> ()
  | Ok _ -> Alcotest.fail "Te=2 search should exceed one expansion"
  | Result.Error e -> Alcotest.fail ("wrong error: " ^ Error.class_name e)

let test_degraded_plan_not_cached () =
  let db = Database.of_document (Lazy.force Helpers.pers_1k) in
  let p = Helpers.pat "manager(//employee(/name))" in
  let opts = Query_opts.make ~budget:(Budget.make ~max_expanded:1 ()) () in
  (match Database.run_r ~opts db p with
  | Ok run ->
      check cb "degraded" true
        (run.Database.opt.Sjos_core.Optimizer.degraded_from <> None)
  | Result.Error e -> Alcotest.fail (Error.class_name e));
  (* the budgeted run must not have poisoned the cache for healthy queries *)
  let prep = Database.prepare db p in
  check cb "no cache entry from the degraded run" false
    (Database.prepared_from_cache prep);
  check cb "fresh search happened" true
    ((Database.prepared_result prep).Sjos_core.Optimizer.plans_considered > 0)

(* ---------- corrupt cache recovery ---------- *)

let test_corrupt_cache_recovery () =
  let db = Database.of_document (Lazy.force Helpers.pers_1k) in
  let p = Helpers.pat "manager(//employee(/name))" in
  let full = Database.run ~opts:(Query_opts.cold Query_opts.default) db p in
  let prep = Database.prepare db p in
  let key = "binary|DPP|" ^ Database.prepared_fingerprint prep in
  let poison plan_text =
    Sjos_cache.Plan_cache.add (Database.plan_cache db) key
      { Sjos_cache.Plan_cache.plan_text; est_cost = 1.0; algorithm = "DPP" };
    Sjos_obs.Registry.set_enabled true;
    Sjos_obs.Registry.reset ();
    let corrupt = Sjos_obs.Registry.counter "guard.corrupt_cache" in
    let run = Database.run db p in
    let count = Sjos_obs.Registry.counter_value corrupt in
    Sjos_obs.Registry.set_enabled false;
    check cb "corruption counted" true (count >= 1);
    Helpers.check_same_matches "re-optimized result is correct"
      (matches_of full) (matches_of run)
  in
  (* unparseable text, then a well-formed plan that doesn't evaluate the
     pattern (deserializes fine, fails validation) *)
  poison "not a plan";
  poison (Sjos_plan.Plan_io.to_string p (Sjos_plan.Plan.scan 0));
  (* the corrupt entry was overwritten: next lookup is a healthy hit *)
  let prep2 = Database.prepare db p in
  check cb "cache repaired" true (Database.prepared_from_cache prep2)

(* ---------- malformed-input matrix ---------- *)

let test_malformed_inputs () =
  let db = Lazy.force pers_db in
  (* bad axis / operator in the pattern language *)
  (match Sjos_pattern.Parse.pattern_opt "manager(||employee)" with
  | Result.Error _ -> ()
  | Ok _ -> Alcotest.fail "bad axis accepted");
  (* empty pattern *)
  (match Sjos_pattern.Parse.pattern_opt "" with
  | Result.Error _ -> ()
  | Ok _ -> Alcotest.fail "empty pattern accepted");
  (* unclosed tag in a document *)
  (match Sjos_xml.Parser.parse_string "<a><b></a>" with
  | exception Sjos_xml.Parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "unclosed tag accepted");
  (* malformed XQuery surfaces as a structured parse error *)
  (match Xquery.run_r db "for $x in" with
  | Result.Error (Error.Parse_error _) -> ()
  | _ -> Alcotest.fail "expected Parse_error from truncated XQuery");
  (match Xquery.run_r db "for $m in //manager return <r>{$ghost}</r>" with
  | Result.Error (Error.Parse_error _) -> ()
  | _ -> Alcotest.fail "expected Parse_error for unbound variable");
  (* oversized / nonsensical histogram grid *)
  (match Database.of_document ~grid:100_000 (Lazy.force Helpers.tiny_pers) with
  | exception Error.Error (Error.Invalid_request _) -> ()
  | _ -> Alcotest.fail "oversized grid accepted");
  (match Database.set_grid db 0 with
  | exception Error.Error (Error.Invalid_request _) -> ()
  | () -> Alcotest.fail "zero grid accepted");
  let p = Helpers.pat "manager(//name)" in
  match Database.run_r ~opts:(Query_opts.make ~grid:(-3) ()) db p with
  | Result.Error (Error.Invalid_request _) -> ()
  | Ok _ -> Alcotest.fail "negative per-query grid accepted"
  | Result.Error e -> Alcotest.fail ("wrong error: " ^ Error.class_name e)

(* ---------- chaos: determinism ---------- *)

let test_chaos_deterministic () =
  let candidates =
    Sjos_storage.Element_index.lookup (Lazy.force Helpers.pers_1k_index) "name"
  in
  let drive seed =
    let c = Chaos.create ~seed () in
    let outs =
      List.init 50 (fun _ ->
          Array.map
            (fun n -> n.Sjos_xml.Node.start_pos)
            (Chaos.wrap_candidates c candidates))
    in
    (outs, Chaos.injected c)
  in
  let o1, i1 = drive (seed_base * 31) and o2, i2 = drive (seed_base * 31) in
  check cb "same seed, same corruption sequence" true (o1 = o2);
  check ci "same injection count" i1 i2;
  let o3, _ = drive ((seed_base * 31) + 1) in
  check cb "different seed, different sequence" true (o1 <> o3)

(* ---------- chaos: the engine contract under injection ---------- *)

let chaos_patterns =
  [
    "manager(//name)";
    "manager(//employee(/name))";
    "manager(//employee,//department)";
    "manager(//employee(/name),//department(/name))";
  ]

let run_under_chaos ~faults ~seed db p =
  let chaos = Chaos.create ~faults ~seed () in
  Database.run_r ~opts:(Query_opts.make ~chaos ~use_cache:false ()) db p

(* Every query under full fault injection returns Ok or a structured
   error; nothing unstructured escapes, and the only corruption the
   engine can actually detect is an out-of-order stream. *)
let test_chaos_ok_or_structured () =
  let db = Lazy.force pers_db in
  for i = 0 to 19 do
    let seed = (seed_base * 1000) + i in
    List.iter
      (fun src ->
        let p = Helpers.pat src in
        match
          run_under_chaos
            ~faults:
              Chaos.
                [ Truncate_candidates; Unsort_candidates; Lie_cardinalities ]
            ~seed db p
        with
        | Ok _ -> ()
        | Result.Error (Error.Corrupt_input _) -> ()
        | Result.Error e ->
            Alcotest.fail
              (Printf.sprintf "seed %d %s: unexpected class %s" seed src
                 (Error.class_name e))
        | exception e ->
            Alcotest.fail
              (Printf.sprintf "seed %d %s: unstructured exception %s" seed src
                 (Printexc.to_string e)))
      chaos_patterns
  done

(* Lying cardinalities may change the chosen plan but never the result. *)
let test_chaos_lies_preserve_results () =
  let db = Lazy.force pers_db in
  List.iter
    (fun src ->
      let p = Helpers.pat src in
      let truth = Database.run ~opts:(Query_opts.cold Query_opts.default) db p in
      for i = 0 to 9 do
        let seed = (seed_base * 100) + i in
        match
          run_under_chaos ~faults:[ Chaos.Lie_cardinalities ] ~seed db p
        with
        | Ok run ->
            Helpers.check_same_matches
              (Printf.sprintf "lie seed %d %s" seed src)
              (matches_of truth) (matches_of run)
        | Result.Error e ->
            Alcotest.fail ("lies must not fail a query: " ^ Error.class_name e)
      done)
    chaos_patterns

(* Both lists ordered by [Helpers.sorted_tuples]: a linear merge walk. *)
let rec is_subset small big =
  match (small, big) with
  | [], _ -> true
  | _ :: _, [] -> false
  | s :: srest, b :: brest ->
      if s = b then is_subset srest brest
      else if compare s b > 0 then is_subset small brest
      else false

(* Truncation is undetectable (a shorter stream is a valid stream); the
   contract is a correct answer over the surviving data: a subset. *)
let test_chaos_truncation_yields_subset () =
  let db = Lazy.force pers_db in
  List.iter
    (fun src ->
      let p = Helpers.pat src in
      let truth = Database.run ~opts:(Query_opts.cold Query_opts.default) db p in
      let full = Helpers.sorted_tuples (matches_of truth) in
      for i = 0 to 9 do
        let seed = (seed_base * 10) + i in
        match
          run_under_chaos ~faults:[ Chaos.Truncate_candidates ] ~seed db p
        with
        | Ok run ->
            if not (is_subset (Helpers.sorted_tuples (matches_of run)) full)
            then
              Alcotest.fail
                (Printf.sprintf "truncation seed %d %s invented a match" seed
                   src)
        | Result.Error e ->
            Alcotest.fail
              ("truncation must not fail a query: " ^ Error.class_name e)
      done)
    chaos_patterns

(* Unsorted runs are caught at the executor's trust boundary. *)
let test_chaos_unsorted_detected () =
  let db = Lazy.force pers_db in
  let p = Helpers.pat "manager(//employee(/name))" in
  let saw_corrupt = ref false in
  for i = 0 to 29 do
    let seed = (seed_base * 7) + i in
    match run_under_chaos ~faults:[ Chaos.Unsort_candidates ] ~seed db p with
    | Ok run ->
        (* no injection this time: the result must then be the truth *)
        let truth =
          Database.run ~opts:(Query_opts.cold Query_opts.default) db p
        in
        Helpers.check_same_matches
          (Printf.sprintf "unsort seed %d (no injection)" seed)
          (matches_of truth) (matches_of run)
    | Result.Error (Error.Corrupt_input { source; _ }) ->
        saw_corrupt := true;
        check cb "source names the stream" true
          (Helpers.contains source "candidates")
    | Result.Error e -> Alcotest.fail ("wrong class: " ^ Error.class_name e)
  done;
  check cb "disorder detected at least once over 30 seeds" true !saw_corrupt

let suite =
  [
    Alcotest.test_case "budget: unlimited is free" `Quick
      test_budget_unlimited;
    Alcotest.test_case "budget: ceilings fire with context" `Quick
      test_budget_ceilings;
    Alcotest.test_case "budget: cap_tuples merges" `Quick
      test_budget_cap_tuples;
    Alcotest.test_case "budget: cancel-only budget is polled" `Quick
      test_budget_cancel_only_not_unlimited;
    Alcotest.test_case "error: distinct classes and exit codes" `Quick
      test_error_exit_codes;
    Alcotest.test_case "error: protect converts exceptions" `Quick
      test_error_protect;
    Alcotest.test_case "executor: tuple limit is structured" `Quick
      test_tuple_limit_structured;
    Alcotest.test_case "optimizer: exact search degrades to DPAP-EB" `Quick
      test_degradation_to_dpap;
    Alcotest.test_case "optimizer: heuristic tier exhaustion is an error"
      `Quick test_heuristic_tier_not_degraded;
    Alcotest.test_case "cache: degraded plans are not stored" `Quick
      test_degraded_plan_not_cached;
    Alcotest.test_case "cache: corrupt entries repaired transparently" `Quick
      test_corrupt_cache_recovery;
    Alcotest.test_case "malformed inputs map to error classes" `Quick
      test_malformed_inputs;
    Alcotest.test_case "chaos: seeded and deterministic" `Quick
      test_chaos_deterministic;
    Alcotest.test_case "chaos: Ok or structured error, never an exception"
      `Quick test_chaos_ok_or_structured;
    Alcotest.test_case "chaos: lying cardinalities preserve results" `Quick
      test_chaos_lies_preserve_results;
    Alcotest.test_case "chaos: truncation yields a subset" `Quick
      test_chaos_truncation_yields_subset;
    Alcotest.test_case "chaos: unsorted streams detected at the boundary"
      `Quick test_chaos_unsorted_detected;
  ]
