open Sjos_pattern
open Sjos_plan
open Sjos_core

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let ctx_for ?(provider = Costing.constant_provider 10.0) p =
  Search.make_ctx ~provider p

(* ---------- Status and search primitives ---------- *)

let test_status_start () =
  let p = Helpers.pat "a(//b(/c))" in
  let ctx = ctx_for p in
  let s = Status.start ~factors:ctx.Search.factors ~provider:ctx.Search.provider p in
  check ci "three clusters" 3 (List.length s.Status.clusters);
  check ci "level 0" 0 (Status.level s);
  check cb "not final" false (Status.is_final s);
  check ci "no multi clusters" 0 (Status.multi_cluster_count s);
  Helpers.checkf "cost = scans" 30.0 s.Status.cost;
  List.iter
    (fun (c : Status.cluster) ->
      check ci "singleton ordered by itself"
        (c.Status.mask land (1 lsl c.Status.order))
        (c.Status.mask))
    s.Status.clusters;
  check ci "popcount" 3 (Status.popcount 0b10101);
  check cb "pp prints" true
    (String.length (Fmt.str "%a" (Status.pp p) s) > 0)

let test_expand_moves () =
  let p = Helpers.pat "a(//b(/c))" in
  let ctx = ctx_for p in
  let s = Status.start ~factors:ctx.Search.factors ~provider:ctx.Search.provider p in
  let succs = Search.expand ctx s in
  (* 2 edges x 2 algorithms x (1 natural + useful sorts) *)
  check cb "successors exist" true (List.length succs >= 4);
  List.iter
    (fun (succ : Status.t) ->
      check ci "level 1" 1 (Status.level succ);
      check ci "two clusters" 2 (List.length succ.Status.clusters);
      check cb "cost grows" true (succ.Status.cost >= s.Status.cost))
    succs;
  check ci "expanded counter" 1 ctx.Search.effort.Effort.expanded;
  check ci "considered = generated" ctx.Search.effort.Effort.generated
    ctx.Search.effort.Effort.considered

let test_deadend_detection () =
  let p = Helpers.pat "a(//b,//c)" in
  let ctx = ctx_for p in
  let s = Status.start ~factors:ctx.Search.factors ~provider:ctx.Search.provider p in
  (* Join A-B with STJ-Desc and no re-sort: cluster {A,B} ordered by B.
     Remaining edge A-C needs {A,B} ordered by A: deadend. *)
  let deadends, alive =
    List.partition (Search.is_deadend ctx) (Search.expand ctx s)
  in
  check cb "some deadends exist" true (deadends <> []);
  check cb "some alive" true (alive <> []);
  (* With lookahead, none are generated. *)
  let ctx2 = ctx_for p in
  let s2 = Status.start ~factors:ctx2.Search.factors ~provider:ctx2.Search.provider p in
  let filtered = Search.expand ~lookahead:true ctx2 s2 in
  check cb "lookahead filters deadends" true
    (List.for_all (fun x -> not (Search.is_deadend ctx2 x)) filtered);
  check cb "lookahead generates fewer" true
    (List.length filtered < List.length deadends + List.length alive)

let test_finalize_order_by () =
  let p = Helpers.pat "a(//b) order by B" in
  let ctx = ctx_for p in
  let cost, plan = Dp.run ctx in
  check ci "final order" 1 (Plan.ordered_by plan);
  check cb "cost positive" true (cost > 0.0);
  (* order by A forces either STJ-Anc output or a final sort *)
  let p2 = Helpers.pat "a(//b) order by A" in
  let ctx2 = ctx_for p2 in
  let _, plan2 = Dp.run ctx2 in
  check ci "final order A" 0 (Plan.ordered_by plan2)

(* ---------- Optimality: DP == exhaustive enumeration ---------- *)

let small_patterns =
  [
    "manager(//employee)";
    "manager(//employee(/name))";
    "manager(/name,//employee)";
    "company(//manager(//employee,/name))";
  ]

let test_dp_matches_enumeration () =
  let idx = Lazy.force Helpers.tiny_index in
  List.iter
    (fun s ->
      let p = Helpers.pat s in
      let provider = Helpers.exact_provider idx p in
      let dp_cost, dp_plan = Dp.run (Search.make_ctx ~provider p) in
      let enum_cost, _ = Enumerate.optimal (Search.make_ctx ~provider p) in
      Helpers.checkf ("optimal cost " ^ s) enum_cost dp_cost;
      check cb "plan valid" true (Properties.is_valid p dp_plan))
    small_patterns

let test_dpp_matches_dp () =
  let idx = Lazy.force Helpers.pers_1k_index in
  List.iter
    (fun (q : Sjos_engine.Workload.query) ->
      let p = q.Sjos_engine.Workload.pattern in
      let provider = Helpers.exact_provider idx p in
      let dp_cost, _ = Dp.run (Search.make_ctx ~provider p) in
      let dpp_cost, dpp_plan = Dpp.run (Search.make_ctx ~provider p) in
      let dpp'_cost, _ = Dpp.run ~lookahead:false (Search.make_ctx ~provider p) in
      Helpers.checkf ("DPP optimal " ^ q.Sjos_engine.Workload.id) dp_cost dpp_cost;
      Helpers.checkf ("DPP' optimal " ^ q.Sjos_engine.Workload.id) dp_cost dpp'_cost;
      check cb "plan valid" true (Properties.is_valid p dpp_plan))
    (List.filter
       (fun (q : Sjos_engine.Workload.query) ->
         q.Sjos_engine.Workload.dataset = Sjos_engine.Workload.Pers)
       Sjos_engine.Workload.queries)

let test_dp_with_order_by_optimal () =
  let idx = Lazy.force Helpers.tiny_index in
  let p = Helpers.pat "manager(//employee(/name)) order by C" in
  let provider = Helpers.exact_provider idx p in
  let dp_cost, dp_plan = Dp.run (Search.make_ctx ~provider p) in
  let enum_cost, _ = Enumerate.optimal (Search.make_ctx ~provider p) in
  Helpers.checkf "optimal with order-by" enum_cost dp_cost;
  check ci "ordered by C" 2 (Plan.ordered_by dp_plan)

(* ---------- FP ---------- *)

let test_fp_pipelined () =
  let idx = Lazy.force Helpers.pers_1k_index in
  List.iter
    (fun s ->
      let p = Helpers.pat s in
      let provider = Helpers.exact_provider idx p in
      let cost, plan = Fp.run (Search.make_ctx ~provider p) in
      check cb ("fp plan valid " ^ s) true (Properties.is_valid p plan);
      check cb "fully pipelined" true (Properties.is_fully_pipelined plan);
      let dp_cost, _ = Dp.run (Search.make_ctx ~provider p) in
      check cb "fp >= optimal" true (cost >= dp_cost -. 1e-6))
    ([ "manager(//employee(/name),//manager(/department(/name)))" ]
    @ small_patterns)

let test_fp_order_by () =
  let idx = Lazy.force Helpers.tiny_index in
  for node = 0 to 2 do
    let p =
      Pattern.with_order_by (Helpers.pat "manager(//employee(/name))")
        (Some node)
    in
    let provider = Helpers.exact_provider idx p in
    let _, plan = Fp.run (Search.make_ctx ~provider p) in
    check ci "fp respects order-by" node (Plan.ordered_by plan);
    check cb "still pipelined" true (Properties.is_fully_pipelined plan)
  done

let test_fp_best_ordered_by () =
  let idx = Lazy.force Helpers.tiny_index in
  let p = Helpers.pat "manager(//employee(/name))" in
  let provider = Helpers.exact_provider idx p in
  List.iter
    (fun node ->
      let _, plan = Fp.best_ordered_by (Search.make_ctx ~provider p) node in
      check ci "ordered as requested" node (Plan.ordered_by plan))
    [ 0; 1; 2 ]

let test_fp_single_node_pattern () =
  let idx = Lazy.force Helpers.tiny_index in
  let p = Helpers.pat "manager" in
  let provider = Helpers.exact_provider idx p in
  let cost, plan = Fp.run (Search.make_ctx ~provider p) in
  check cb "scan plan" true (plan = Plan.scan 0);
  Helpers.checkf "scan cost" 3.0 cost

(* ---------- DPAP ---------- *)

let test_dpap_eb_spectrum () =
  let idx = Lazy.force Helpers.pers_1k_index in
  let p = Helpers.pat "manager(//employee(/name),//manager(/department(/name)))" in
  let provider = Helpers.exact_provider idx p in
  let dp_cost, _ = Dp.run (Search.make_ctx ~provider p) in
  let prev = ref None in
  for te = 1 to Pattern.node_count p do
    let cost, plan =
      Dpp.run ~expansion_bound:(Some te) (Search.make_ctx ~provider p)
    in
    check cb (Printf.sprintf "te=%d valid" te) true (Properties.is_valid p plan);
    check cb "te cost >= optimal" true (cost >= dp_cost -. 1e-6);
    (match !prev with _ -> ());
    prev := Some cost
  done;
  (* with a generous bound DPAP-EB finds the optimum *)
  let cost, _ =
    Dpp.run ~expansion_bound:(Some 10_000) (Search.make_ctx ~provider p)
  in
  Helpers.checkf "unbounded EB = optimal" dp_cost cost

let test_dpap_ld_left_deep () =
  let idx = Lazy.force Helpers.pers_1k_index in
  List.iter
    (fun s ->
      let p = Helpers.pat s in
      let provider = Helpers.exact_provider idx p in
      let cost, plan = Dpp.run ~left_deep:true (Search.make_ctx ~provider p) in
      check cb ("ld valid " ^ s) true (Properties.is_valid p plan);
      check cb "left deep" true (Properties.is_left_deep plan);
      let dp_cost, _ = Dp.run (Search.make_ctx ~provider p) in
      check cb "ld >= optimal" true (cost >= dp_cost -. 1e-6))
    [
      "manager(//employee(/name))";
      "manager(//employee(/name),//department(/name))";
      "manager(//employee(/name),//manager(/department(/name)))";
    ]

let test_dpp_priority_ablation () =
  let idx = Lazy.force Helpers.pers_1k_index in
  let p = Helpers.pat "manager(//employee(/name),//manager(/department(/name)))" in
  let provider = Helpers.exact_provider idx p in
  let dp_cost, _ = Dp.run (Search.make_ctx ~provider p) in
  let cost_only, _ =
    Dpp.run ~prioritize_by_ub:false (Search.make_ctx ~provider p)
  in
  Helpers.checkf "Cost-only priority is still optimal" dp_cost cost_only

(* ---------- Counters (Table 2 property) ---------- *)

let test_effort_ordering () =
  let idx = Lazy.force Helpers.pers_1k_index in
  let p = Helpers.pat "manager(//employee(/name),//manager(/department(/name)))" in
  let provider = Helpers.exact_provider idx p in
  let considered algo =
    (Optimizer.optimize ~provider algo p).Optimizer.plans_considered
  in
  let dp = considered Optimizer.Dp in
  let dpp' = considered Optimizer.Dpp_no_lookahead in
  let dpp = considered Optimizer.Dpp in
  let eb = considered (Optimizer.Dpap_eb (Optimizer.default_te p)) in
  let ld = considered Optimizer.Dpap_ld in
  let fp = considered Optimizer.Fp in
  check cb (Printf.sprintf "DP(%d) >= DPP'(%d)" dp dpp') true (dp >= dpp');
  check cb (Printf.sprintf "DPP'(%d) > DPP(%d)" dpp' dpp) true (dpp' > dpp);
  check cb (Printf.sprintf "DPP(%d) > EB(%d)" dpp eb) true (dpp > eb);
  check cb (Printf.sprintf "EB(%d) > FP(%d)" eb fp) true (eb > fp);
  check cb (Printf.sprintf "LD(%d) > FP(%d)" ld fp) true (ld > fp)

(* ---------- Random plans ---------- *)

let test_random_plans_valid () =
  let idx = Lazy.force Helpers.tiny_index in
  let p = Helpers.pat "manager(//employee(/name),//department(/name))" in
  let provider = Helpers.exact_provider idx p in
  let ctx = Search.make_ctx ~provider p in
  List.iter
    (fun (cost, plan) ->
      check cb "random plan valid" true (Properties.is_valid p plan);
      check cb "cost positive" true (cost > 0.0))
    (Random_plan.sample ~seed:5 ctx 25)

let test_random_plans_deterministic () =
  let idx = Lazy.force Helpers.tiny_index in
  let p = Helpers.pat "manager(//employee(/name))" in
  let provider = Helpers.exact_provider idx p in
  let s1 = Random_plan.sample ~seed:9 (Search.make_ctx ~provider p) 5 in
  let s2 = Random_plan.sample ~seed:9 (Search.make_ctx ~provider p) 5 in
  check cb "same seed same plans" true
    (List.for_all2 (fun (c1, p1) (c2, p2) -> c1 = c2 && Plan.equal p1 p2) s1 s2)

let test_worst_best () =
  let idx = Lazy.force Helpers.pers_1k_index in
  let p = Helpers.pat "manager(//employee(/name),//department(/name))" in
  let provider = Helpers.exact_provider idx p in
  let ctx = Search.make_ctx ~provider p in
  let wc, _ = Random_plan.worst_of ~seed:3 ctx 30 in
  let bc, _ = Random_plan.best_of ~seed:3 ctx 30 in
  check cb "worst >= best" true (wc >= bc);
  let dp_cost, _ = Dp.run (Search.make_ctx ~provider p) in
  check cb "optimal <= best random" true (dp_cost <= bc +. 1e-6);
  match Random_plan.worst_of ctx 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "k=0 must be rejected"

(* ---------- Optimizer facade ---------- *)

let test_optimizer_facade () =
  let idx = Lazy.force Helpers.tiny_index in
  let p = Helpers.pat "manager(//employee(/name))" in
  let provider = Helpers.exact_provider idx p in
  List.iter
    (fun algo ->
      let r = Optimizer.optimize ~provider algo p in
      check cb "plan valid" true (Properties.is_valid p r.Optimizer.plan);
      check cb "considered positive" true (r.Optimizer.plans_considered > 0);
      check cb "time recorded" true (r.Optimizer.opt_seconds >= 0.0);
      check cb "pp works" true
        (String.length (Fmt.str "%a" (Optimizer.pp_result p) r) > 0))
    (Optimizer.all p @ [ Optimizer.Dpp_no_lookahead ]);
  check Alcotest.string "names" "DPAP-EB(3)" (Optimizer.name (Optimizer.Dpap_eb 3));
  check ci "default te" (Pattern.edge_count p) (Optimizer.default_te p)

(* ---------- Priority queue ---------- *)

let test_pq () =
  let q = Pq.create () in
  check cb "empty" true (Pq.is_empty q);
  List.iter (fun (pr, v) -> Pq.push q pr v)
    [ (3.0, "c"); (1.0, "a"); (2.0, "b"); (1.0, "a2"); (0.5, "z") ];
  check ci "length" 5 (Pq.length q);
  (match Pq.peek q with
  | Some (pr, v) ->
      Helpers.checkf "peek prio" 0.5 pr;
      check Alcotest.string "peek value" "z" v
  | None -> Alcotest.fail "peek");
  let order = ref [] in
  let rec drain () =
    match Pq.pop q with
    | Some (_, v) ->
        order := v :: !order;
        drain ()
    | None -> ()
  in
  drain ();
  check (Alcotest.list Alcotest.string) "pop order (FIFO ties)"
    [ "z"; "a"; "a2"; "b"; "c" ]
    (List.rev !order);
  check cb "empty after drain" true (Pq.pop q = None)

let suite =
  [
    ("status start", `Quick, test_status_start);
    ("expand moves", `Quick, test_expand_moves);
    ("deadend detection & lookahead", `Quick, test_deadend_detection);
    ("finalize with order-by", `Quick, test_finalize_order_by);
    ("DP matches exhaustive enumeration", `Quick, test_dp_matches_enumeration);
    ("DPP and DPP' match DP", `Quick, test_dpp_matches_dp);
    ("DP optimal with order-by", `Quick, test_dp_with_order_by_optimal);
    ("FP plans are pipelined and valid", `Quick, test_fp_pipelined);
    ("FP respects order-by", `Quick, test_fp_order_by);
    ("FP best_ordered_by", `Quick, test_fp_best_ordered_by);
    ("FP on single-node pattern", `Quick, test_fp_single_node_pattern);
    ("DPAP-EB across Te", `Quick, test_dpap_eb_spectrum);
    ("DPAP-LD produces left-deep plans", `Quick, test_dpap_ld_left_deep);
    ("DPP priority ablation stays optimal", `Quick, test_dpp_priority_ablation);
    ("search effort ordering", `Quick, test_effort_ordering);
    ("random plans valid", `Quick, test_random_plans_valid);
    ("random plans deterministic", `Quick, test_random_plans_deterministic);
    ("worst/best of random plans", `Quick, test_worst_best);
    ("optimizer facade", `Quick, test_optimizer_facade);
    ("priority queue", `Quick, test_pq);
  ]
