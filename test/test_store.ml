(* Differential suite for the backend-polymorphic column store: the Disk
   backend must be observationally identical to Mem — same tuples in the
   same order, same executor metrics, same deterministic work counters —
   across page sizes, pool sizes (including pools small enough to force
   mid-join eviction), kernels, chaos faults and domain counts.  The only
   permitted divergence is the IO accounting ([Work.page_touches],
   [Pager.stats]) — that divergence is the backend's entire point. *)

open Sjos_xml
open Sjos_storage
open Sjos_pattern
open Sjos_plan
open Sjos_exec
open Sjos_engine
module Work = Sjos_obs.Work

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let check_same_tuple_seq msg (expected : Tuple.t array) (actual : Tuple.t array)
    =
  check ci (msg ^ ": length") (Array.length expected) (Array.length actual);
  Array.iteri
    (fun i t ->
      if not (Tuple.equal t actual.(i)) then
        Alcotest.failf "%s: tuple %d differs: %s vs %s" msg i
          (Tuple.to_string t)
          (Tuple.to_string actual.(i)))
    expected

let check_metrics_identical msg (a : Metrics.t) (b : Metrics.t) =
  check ci (msg ^ ": index_items") a.Metrics.index_items b.Metrics.index_items;
  check ci (msg ^ ": output_tuples") a.Metrics.output_tuples
    b.Metrics.output_tuples;
  check ci (msg ^ ": stack_ops") a.Metrics.stack_ops b.Metrics.stack_ops;
  check ci (msg ^ ": io_items") a.Metrics.io_items b.Metrics.io_items;
  check ci (msg ^ ": skipped_items") a.Metrics.skipped_items
    b.Metrics.skipped_items;
  check ci (msg ^ ": sorted_items") a.Metrics.sorted_items
    b.Metrics.sorted_items;
  check ci (msg ^ ": joins") a.Metrics.joins b.Metrics.joins;
  check ci (msg ^ ": sorts") a.Metrics.sorts b.Metrics.sorts

(* The workload slice used throughout: pure-tag leaves (served lazily on
   Disk) and one child-axis query. *)
let query_texts =
  [
    "manager(//employee(/name))";
    "manager(//employee(/name),//department(/name))";
    "manager(//department(/name),//manager(/employee(/name)))";
    "manager(/employee)";
  ]

let run_one db text =
  let work, outcome =
    Work.scoped (fun () -> Database.run db (Helpers.pat text))
  in
  let r = match outcome with Ok r -> r | Error e -> raise e in
  (r.Database.exec.Executor.tuples, r.Database.exec.Executor.metrics, work)

(* ---------- Mem vs Disk over the page/pool grid ---------- *)

let test_differential () =
  let doc = Lazy.force Helpers.pers_1k in
  List.iter
    (fun (page_size, pool_pages) ->
      (* a fresh Mem baseline per config: both sides must pay the same
         optimizer search (the plan cache is part of the Work score) *)
      let db_mem = Database.of_document ~storage:Column_store.mem doc in
      let db_disk =
        Database.of_document
          ~storage:(Column_store.disk ~page_size ~pool_pages ())
          doc
      in
      List.iter
        (fun text ->
          let msg =
            Printf.sprintf "%s @ page=%d pool=%d" text page_size pool_pages
          in
          let tm, mm, wm = run_one db_mem text in
          let td, md, wd = run_one db_disk text in
          check_same_tuple_seq msg tm td;
          check_metrics_identical msg mm md;
          check cb (msg ^ ": work equal mod IO") true (Work.equal_mod_io wm wd);
          check ci (msg ^ ": core score") (Work.core_score wm)
            (Work.core_score wd);
          check ci (msg ^ ": mem touches nothing") 0 wm.Work.page_touches;
          check cb (msg ^ ": disk touches pages") true (wd.Work.page_touches > 0))
        query_texts;
      (match Column_store.io_stats (Database.store db_disk) with
      | None -> Alcotest.fail "disk store has no io stats"
      | Some s ->
          check cb "pool saw accesses" true (s.Pager.accesses > 0);
          if pool_pages = 2 then
            check cb "tiny pool evicts mid-join" true (s.Pager.evictions > 0));
      Database.dispose db_disk)
    [ (64, 2); (64, 8); (256, 8); (1024, 64) ]

(* ---------- lazy leaves feeding the kernels directly ---------- *)

let leaf_scan store ~width ~slot tag (m : Metrics.t) =
  match Column_store.leaf store (Candidate.of_tag tag) with
  | None -> Alcotest.failf "no leaf for pure tag %s" tag
  | Some lf ->
      m.Metrics.index_items <-
        m.Metrics.index_items + Column_store.leaf_length lf;
      Stack_tree.leaf ~width ~slot lf

let rows_scan index ~width ~slot tag (m : Metrics.t) =
  Stack_tree.Rows
    (Operators.index_scan_batch ~metrics:m ~width ~slot
       (Element_index.cols index tag))

let algo_name = function
  | Plan.Stack_tree_desc -> "stj-desc"
  | Plan.Stack_tree_anc -> "stj-anc"

let test_leaf_kernel () =
  let doc = Lazy.force Helpers.pers_1k in
  let index = Element_index.build doc in
  let store =
    Column_store.create
      ~config:(Column_store.disk ~page_size:64 ~pool_pages:4 ())
      index
  in
  let pool = Sjos_par.Pool.create ~domains:2 () in
  Fun.protect ~finally:(fun () ->
      Sjos_par.Pool.shutdown pool;
      Column_store.dispose store)
  @@ fun () ->
  List.iter
    (fun algo ->
      List.iter
        (fun axis ->
          let name =
            Printf.sprintf "%s/%s" (algo_name algo) (Axes.axis_to_string axis)
          in
          let reference =
            let m = Metrics.create () in
            let anc = rows_scan index ~width:2 ~slot:0 "manager" m in
            let desc = rows_scan index ~width:2 ~slot:1 "employee" m in
            let b =
              Stack_tree.join_batch_in ~metrics:m ~doc ~axis ~algo
                ~anc:(anc, 0) ~desc:(desc, 1) ()
            in
            (Batch.to_tuples b, m)
          in
          let variants =
            [
              ( "lazy leaves",
                fun m ->
                  ( leaf_scan store ~width:2 ~slot:0 "manager" m,
                    leaf_scan store ~width:2 ~slot:1 "employee" m,
                    None,
                    None ) );
              ( "leaf anc, rows desc",
                fun m ->
                  ( leaf_scan store ~width:2 ~slot:0 "manager" m,
                    rows_scan index ~width:2 ~slot:1 "employee" m,
                    None,
                    None ) );
              ( "sharded leaves",
                fun m ->
                  ( leaf_scan store ~width:2 ~slot:0 "manager" m,
                    leaf_scan store ~width:2 ~slot:1 "employee" m,
                    Some pool,
                    Some 1 ) );
            ]
          in
          List.iter
            (fun (vname, build) ->
              let m = Metrics.create () in
              let anc, desc, pool, par_min_rows = build m in
              let b =
                Stack_tree.join_batch_in ?pool ?par_min_rows ~metrics:m ~doc
                  ~axis ~algo ~anc:(anc, 0) ~desc:(desc, 1) ()
              in
              let msg = name ^ " " ^ vname in
              check_same_tuple_seq msg (fst reference) (Batch.to_tuples b);
              check_metrics_identical msg (snd reference) m)
            variants)
        [ Axes.Descendant; Axes.Child ])
    [ Plan.Stack_tree_desc; Plan.Stack_tree_anc ]

(* A lazy leaf join never reads more pages than materializing its leaves
   outright (it can only save: ids pages are read per emitted chunk, and
   gallop probes touch O(log) pages per skip). *)
let test_leaf_laziness_bounded () =
  let doc = Lazy.force Helpers.pers_1k in
  let index = Element_index.build doc in
  let store =
    Column_store.create
      ~config:(Column_store.disk ~page_size:64 ~pool_pages:256 ())
      index
  in
  Fun.protect ~finally:(fun () -> Column_store.dispose store)
  @@ fun () ->
  let m = Metrics.create () in
  let anc = leaf_scan store ~width:2 ~slot:0 "manager" m in
  let desc = leaf_scan store ~width:2 ~slot:1 "employee" m in
  ignore
    (Stack_tree.join_batch_in ~metrics:m ~doc ~axis:Axes.Descendant
       ~algo:Plan.Stack_tree_desc ~anc:(anc, 0) ~desc:(desc, 1) ());
  let lazy_misses =
    (Option.get (Column_store.io_stats store)).Pager.misses
  in
  Column_store.reset_io store;
  ignore (Column_store.cols store "manager");
  ignore (Column_store.cols store "employee");
  let full_misses = (Option.get (Column_store.io_stats store)).Pager.misses in
  check cb "lazy join misses <= full materialization" true
    (lazy_misses <= full_misses);
  check cb "full scan reads every page exactly once" true (full_misses > 0)

(* ---------- legacy kernel reads through the same store ---------- *)

let test_legacy_kernel_disk () =
  let doc = Lazy.force Helpers.pers_1k in
  let index = Element_index.build doc in
  let store =
    Column_store.create
      ~config:(Column_store.disk ~page_size:128 ~pool_pages:8 ())
      index
  in
  Fun.protect ~finally:(fun () -> Column_store.dispose store)
  @@ fun () ->
  let p = Helpers.pat "manager(//employee)" in
  let edge = List.hd (Pattern.edges p) in
  let plan =
    Plan.join ~anc_side:(Plan.scan 0) ~desc_side:(Plan.scan 1) ~edge
      ~algo:Plan.Stack_tree_desc
  in
  let mem = Executor.execute index p plan in
  let legacy = Executor.execute ~kernel:`Legacy ~store index p plan in
  let columnar = Executor.execute ~store index p plan in
  check_same_tuple_seq "legacy@disk vs mem" mem.Executor.tuples
    legacy.Executor.tuples;
  check_same_tuple_seq "columnar@disk vs mem" mem.Executor.tuples
    columnar.Executor.tuples;
  check ci "legacy index_items" mem.Executor.metrics.Metrics.index_items
    legacy.Executor.metrics.Metrics.index_items

(* ---------- predicate specs (no leaf path) stay identical ---------- *)

let test_predicate_spec_differential () =
  let doc = Lazy.force Helpers.mbench_1k in
  let db_mem = Database.of_document ~storage:Column_store.mem doc in
  let db_disk =
    Database.of_document
      ~storage:(Column_store.disk ~page_size:256 ~pool_pages:8 ())
      doc
  in
  let text = "eNest[@aLevel='2'](//eNest[@aLevel='6'](/eNest[@aLevel='7']))" in
  let tm, mm, wm = run_one db_mem text in
  let td, md, wd = run_one db_disk text in
  check_same_tuple_seq "mbench attr query" tm td;
  check_metrics_identical "mbench attr query" mm md;
  check cb "work equal mod IO" true (Work.equal_mod_io wm wd);
  Database.dispose db_disk

(* ---------- chaos faults are backend-independent ---------- *)

let test_chaos_differential () =
  let doc = Lazy.force Helpers.pers_1k in
  let run_with storage seed =
    let db = Database.of_document ~storage doc in
    let chaos =
      Sjos_guard.Chaos.create
        ~faults:[ Sjos_guard.Chaos.Truncate_candidates ]
        ~seed ()
    in
    let opts = Query_opts.make ~chaos () in
    let out =
      List.map
        (fun text ->
          match Database.run_r ~opts db (Helpers.pat text) with
          | Ok r ->
              Ok
                (Array.map Array.to_list r.Database.exec.Executor.tuples
                |> Array.to_list)
          | Error e -> Error (Sjos_guard.Error.class_name e))
        query_texts
    in
    Database.dispose db;
    out
  in
  List.iter
    (fun seed ->
      let mem = run_with Column_store.mem seed in
      let disk =
        run_with (Column_store.disk ~page_size:64 ~pool_pages:4 ()) seed
      in
      check
        Alcotest.(
          list
            (result (list (list int)) string))
        (Printf.sprintf "chaos seed %d" seed)
        mem disk)
    [ 1; 2; 42 ]

(* ---------- multi-domain execution over Disk ---------- *)

let test_domains_differential () =
  let doc = Lazy.force Helpers.pers_1k in
  let serial =
    let db = Database.of_document ~storage:Column_store.mem doc in
    List.map
      (fun text ->
        let t, _, _ = run_one db text in
        Array.map Array.to_list t)
      query_texts
  in
  List.iter
    (fun domains ->
      let pool = Sjos_par.Pool.create ~domains () in
      Fun.protect ~finally:(fun () -> Sjos_par.Pool.shutdown pool)
      @@ fun () ->
      let db =
        Database.of_document
          ~storage:(Column_store.disk ~page_size:64 ~pool_pages:8 ())
          doc
      in
      let opts = Query_opts.make ~pool () in
      List.iteri
        (fun i text ->
          let r = Database.run ~opts db (Helpers.pat text) in
          let got =
            Array.map Array.to_list r.Database.exec.Executor.tuples
          in
          check
            Alcotest.(array (list int))
            (Printf.sprintf "domains=%d %s" domains text)
            (List.nth serial i) got)
        query_texts;
      Database.dispose db)
    [ 1; 2; 4 ]

(* ---------- store lifecycle and file format ---------- *)

let test_store_lifecycle () =
  let doc = Lazy.force Helpers.tiny_pers in
  let index = Element_index.build doc in
  let config = Column_store.disk ~page_size:64 ~pool_pages:4 () in
  let store = Column_store.create ~config index in
  let path = Option.get (Column_store.data_file store) in
  check cb "data file exists" true (Sys.file_exists path);
  check cb "is disk" true (Column_store.is_disk store);
  let total = Option.get (Column_store.total_column_bytes store) in
  check cb "column bytes > 0" true (total > 0);
  let c = Column_store.cols store "manager" in
  check ci "manager count" 3 (Cols.length c);
  check cb "equals index columns" true
    (Cols.equal c (Element_index.cols index "manager"));
  check ci "unknown tag is empty" 0 (Cols.length (Column_store.cols store "zz"));
  Column_store.dispose store;
  check cb "data file removed" false (Sys.file_exists path);
  Column_store.dispose store (* idempotent *)

(* The at_exit ordering fix: disk stores must dispose in the [`Dispose]
   stage, strictly before any [`Shutdown] hook (the domain pool's
   teardown), regardless of registration order. *)
let test_lifecycle_ordering () =
  Sjos_obs.Lifecycle.with_isolated @@ fun () ->
  let order = ref [] in
  let note tag () = order := tag :: !order in
  (* register shutdown FIRST: plain at_exit would run it last anyway,
     but a later dispose registration would then precede it — the
     interleaving this module exists to forbid *)
  Sjos_obs.Lifecycle.on_exit `Shutdown (note "shutdown");
  Sjos_obs.Lifecycle.on_exit `Dispose (note "dispose-a");
  Sjos_obs.Lifecycle.on_exit `Dispose (note "dispose-b");
  Sjos_obs.Lifecycle.run_now ();
  check
    Alcotest.(list string)
    "dispose stage first, registration order within a stage"
    [ "dispose-a"; "dispose-b"; "shutdown" ]
    (List.rev !order);
  Sjos_obs.Lifecycle.run_now ();
  check ci "hooks run at most once" 3 (List.length !order)

let test_lifecycle_disposes_store_before_shutdown () =
  Sjos_obs.Lifecycle.with_isolated @@ fun () ->
  let doc = Lazy.force Helpers.tiny_pers in
  let index = Element_index.build doc in
  let file_at_shutdown = ref true in
  let store =
    Column_store.create ~config:(Column_store.disk ~pool_pages:4 ()) index
  in
  let path = Option.get (Column_store.data_file store) in
  (* the store registered its own `Dispose hook at creation; this
     shutdown hook must observe the file already gone *)
  Sjos_obs.Lifecycle.on_exit `Shutdown (fun () ->
      file_at_shutdown := Sys.file_exists path);
  check cb "data file exists before exit hooks" true (Sys.file_exists path);
  Sjos_obs.Lifecycle.run_now ();
  check cb "column file removed before the shutdown stage ran" false
    !file_at_shutdown;
  Column_store.dispose store (* idempotent after the hook disposed it *)

let test_database_dispose_idempotent () =
  let db =
    Database.of_document
      ~storage:(Column_store.disk ~pool_pages:4 ())
      (Lazy.force Helpers.tiny_pers)
  in
  let path = Option.get (Column_store.data_file (Database.store db)) in
  let r1 = Database.run db (Helpers.pat "manager(/employee)") in
  check cb "query ran" true
    (Array.length r1.Database.exec.Executor.tuples > 0);
  Database.dispose db;
  check cb "file removed" false (Sys.file_exists path);
  Database.dispose db;
  (* double dispose is a no-op *)
  Database.dispose db

let test_mem_store_is_free () =
  let index = Lazy.force Helpers.tiny_index in
  let store = Column_store.create ~config:Column_store.mem index in
  check cb "not disk" false (Column_store.is_disk store);
  Alcotest.(check (option reject)) "no io stats" None
    (Option.map ignore (Column_store.io_stats store));
  Alcotest.(check (option reject)) "no data file" None
    (Option.map ignore (Column_store.data_file store));
  Column_store.dispose store;
  check ci "cols still served after dispose" 3
    (Cols.length (Column_store.cols store "manager"))

let test_truncated_file_fails_loudly () =
  let doc = Lazy.force Helpers.pers_1k in
  let index = Element_index.build doc in
  let store =
    Column_store.create
      ~config:(Column_store.disk ~page_size:64 ~pool_pages:4 ())
      index
  in
  Fun.protect ~finally:(fun () -> Column_store.dispose store)
  @@ fun () ->
  let path = Option.get (Column_store.data_file store) in
  (* chop the file: every unread page is now missing *)
  let oc = open_out_gen [ Open_trunc; Open_binary ] 0o600 path in
  close_out oc;
  match Column_store.cols store "manager" with
  | _ -> Alcotest.fail "truncated column file served data"
  | exception _ -> ()

let test_config_parsing () =
  check cb "mem parses" true
    (Column_store.backend_of_string "MEM" = Ok Column_store.Mem);
  check cb "disk parses" true
    (Column_store.backend_of_string "disk" = Ok Column_store.Disk);
  check cb "garbage rejected" true
    (Result.is_error (Column_store.backend_of_string "tape"));
  check cb "disk config equal" true
    (Column_store.config_equal
       (Column_store.disk ~page_size:64 ~pool_pages:2 ())
       (Column_store.disk ~page_size:64 ~pool_pages:2 ()));
  check cb "configs differ" false
    (Column_store.config_equal Column_store.mem
       (Column_store.disk ()));
  (match Column_store.disk ~page_size:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "page_size 0 accepted")

(* Per-query storage override resolves through the database's memo — two
   overridden runs share a store, and results match the default. *)
let test_query_opts_storage_override () =
  let doc = Lazy.force Helpers.pers_1k in
  let db = Database.of_document ~storage:Column_store.mem doc in
  let opts =
    Query_opts.make
      ~storage:(Column_store.disk ~page_size:64 ~pool_pages:4 ())
      ()
  in
  let text = List.hd query_texts in
  let base = Database.run db (Helpers.pat text) in
  let o1 = Database.run ~opts db (Helpers.pat text) in
  let o2 = Database.run ~opts db (Helpers.pat text) in
  check_same_tuple_seq "override vs default" base.Database.exec.Executor.tuples
    o1.Database.exec.Executor.tuples;
  check_same_tuple_seq "override repeat" o1.Database.exec.Executor.tuples
    o2.Database.exec.Executor.tuples;
  Database.dispose db

let suite =
  [
    Alcotest.test_case "mem vs disk differential (grid)" `Quick
      test_differential;
    Alcotest.test_case "lazy leaves vs rows kernels" `Quick test_leaf_kernel;
    Alcotest.test_case "lazy join misses bounded by full scan" `Quick
      test_leaf_laziness_bounded;
    Alcotest.test_case "legacy kernel reads through disk store" `Quick
      test_legacy_kernel_disk;
    Alcotest.test_case "predicate specs identical across backends" `Quick
      test_predicate_spec_differential;
    Alcotest.test_case "chaos faults backend-independent" `Quick
      test_chaos_differential;
    Alcotest.test_case "multi-domain over disk" `Quick
      test_domains_differential;
    Alcotest.test_case "disk store lifecycle" `Quick test_store_lifecycle;
    Alcotest.test_case "exit hooks: dispose stage before shutdown" `Quick
      test_lifecycle_ordering;
    Alcotest.test_case "exit hooks: store file gone before shutdown stage"
      `Quick test_lifecycle_disposes_store_before_shutdown;
    Alcotest.test_case "database dispose is idempotent" `Quick
      test_database_dispose_idempotent;
    Alcotest.test_case "mem store is free" `Quick test_mem_store_is_free;
    Alcotest.test_case "truncated column file fails loudly" `Quick
      test_truncated_file_fails_loudly;
    Alcotest.test_case "config parsing" `Quick test_config_parsing;
    Alcotest.test_case "per-query storage override" `Quick
      test_query_opts_storage_override;
  ]
