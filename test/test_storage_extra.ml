(* Pager (buffer pool) and MPMGJN merge-join tests. *)

open Sjos_xml
open Sjos_storage
open Sjos_exec

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let expect_invalid f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* ---------- Pager ---------- *)

let test_pager_basics () =
  let p = Pager.create ~page_size:10 ~pool_pages:2 () in
  check ci "page size" 10 (Pager.page_size p);
  let seg = Pager.allocate p ~items:25 in
  check ci "3 pages for 25 items" 3 (Pager.segment_pages p seg);
  Pager.scan p seg;
  let s = Pager.stats p in
  check ci "3 accesses" 3 s.Pager.accesses;
  check ci "3 cold misses" 3 s.Pager.misses;
  check ci "one eviction (pool of 2)" 1 s.Pager.evictions;
  check ci "resident bounded" 2 (Pager.resident_pages p)

let test_pager_lru () =
  let p = Pager.create ~page_size:1 ~pool_pages:2 () in
  let seg = Pager.allocate p ~items:3 in
  (* pages 0,1,2 *)
  Pager.scan_range p seg ~first_item:0 ~n_items:1;
  (* [0] *)
  Pager.scan_range p seg ~first_item:1 ~n_items:1;
  (* [1,0] *)
  Pager.scan_range p seg ~first_item:0 ~n_items:1;
  (* hit; [0,1] *)
  Pager.scan_range p seg ~first_item:2 ~n_items:1;
  (* miss; evict 1 -> [2,0] *)
  Pager.scan_range p seg ~first_item:0 ~n_items:1;
  (* hit *)
  Pager.scan_range p seg ~first_item:1 ~n_items:1;
  (* miss *)
  let s = Pager.stats p in
  check ci "hits" 2 s.Pager.hits;
  check ci "misses" 4 s.Pager.misses;
  check cb "hit ratio" true (abs_float (Pager.hit_ratio p -. (2. /. 6.)) < 1e-9)

let test_pager_reuse_across_scans () =
  (* a pool big enough for both segments turns the second scan into hits *)
  let p = Pager.create ~page_size:4 ~pool_pages:100 () in
  let a = Pager.allocate p ~items:40 in
  let b = Pager.allocate p ~items:40 in
  Pager.scan p a;
  Pager.scan p b;
  Pager.reset_stats p;
  Pager.scan p a;
  Pager.scan p b;
  let s = Pager.stats p in
  check ci "all hits on rescan" s.Pager.accesses s.Pager.hits;
  (* a pool of 1 page thrashes *)
  let q = Pager.create ~page_size:4 ~pool_pages:1 () in
  let c = Pager.allocate q ~items:40 in
  Pager.scan q c;
  Pager.reset_stats q;
  Pager.scan q c;
  check ci "all misses when thrashing" (Pager.stats q).Pager.accesses
    (Pager.stats q).Pager.misses

let test_pager_errors () =
  expect_invalid (fun () -> Pager.create ~page_size:0 ~pool_pages:1 ());
  expect_invalid (fun () -> Pager.create ~pool_pages:0 ());
  let p = Pager.create ~pool_pages:4 () in
  expect_invalid (fun () -> Pager.allocate p ~items:(-1));
  let seg = Pager.allocate p ~items:10 in
  expect_invalid (fun () -> Pager.scan_range p seg ~first_item:5 ~n_items:6);
  Helpers.checkf "ratio before access" 0.0 (Pager.hit_ratio p)

(* ---------- MPMGJN ---------- *)

let mj_doc = lazy (Parser.parse_string "<a><a><b/></a><b/><c><b/></c></a>")

let test_mpmgjn_pairs () =
  let doc = Lazy.force mj_doc in
  let idx = Element_index.build doc in
  let metrics = Metrics.create () in
  let a = Operators.index_scan ~metrics ~width:2 ~slot:0 (Element_index.lookup idx "a") in
  let b = Operators.index_scan ~metrics ~width:2 ~slot:1 (Element_index.lookup idx "b") in
  let out =
    Merge_join.join ~metrics ~doc ~axis:Axes.Descendant ~anc:(a, 0) ~desc:(b, 1)
  in
  let pairs =
    Array.to_list out |> List.map (fun t -> (Tuple.get t 0, Tuple.get t 1))
  in
  (* ordered by ancestor *)
  check
    (Alcotest.list (Alcotest.pair ci ci))
    "pairs" [ (0, 2); (0, 3); (0, 5); (1, 2) ] pairs

let test_mpmgjn_matches_stack_tree () =
  let idx = Lazy.force Helpers.pers_1k_index in
  let doc = Element_index.document idx in
  List.iter
    (fun (anc_tag, desc_tag, axis) ->
      let m1 = Metrics.create () and m2 = Metrics.create () in
      let scan m slot tag =
        Operators.index_scan ~metrics:m ~width:2 ~slot
          (Element_index.lookup idx tag)
      in
      let st =
        Stack_tree.join ~metrics:m1 ~doc ~axis ~algo:Sjos_plan.Plan.Stack_tree_anc
          ~anc:(scan m1 0 anc_tag, 0)
          ~desc:(scan m1 1 desc_tag, 1)
          ()
      in
      let mj =
        Merge_join.join ~metrics:m2 ~doc ~axis
          ~anc:(scan m2 0 anc_tag, 0)
          ~desc:(scan m2 1 desc_tag, 1)
      in
      Helpers.check_same_matches
        (Printf.sprintf "%s-%s" anc_tag desc_tag)
        (Array.to_list st) (Array.to_list mj))
    [
      ("manager", "employee", Axes.Descendant);
      ("manager", "name", Axes.Descendant);
      ("employee", "name", Axes.Child);
      ("manager", "manager", Axes.Descendant);
    ]

let test_mpmgjn_rescans_nested () =
  (* on deeply nested ancestors MPMGJN re-scans descendants: its scan-step
     count exceeds Stack-Tree's stack-op count *)
  let idx = Lazy.force Helpers.pers_1k_index in
  let doc = Element_index.document idx in
  let m1 = Metrics.create () and m2 = Metrics.create () in
  let scan m slot tag =
    Operators.index_scan ~metrics:m ~width:2 ~slot (Element_index.lookup idx tag)
  in
  ignore
    (Stack_tree.join ~metrics:m1 ~doc ~axis:Axes.Descendant
       ~algo:Sjos_plan.Plan.Stack_tree_desc
       ~anc:(scan m1 0 "manager", 0)
       ~desc:(scan m1 1 "name", 1)
       ());
  ignore
    (Merge_join.join ~metrics:m2 ~doc ~axis:Axes.Descendant
       ~anc:(scan m2 0 "manager", 0)
       ~desc:(scan m2 1 "name", 1));
  check cb
    (Printf.sprintf "MPMGJN steps (%d) > Stack-Tree ops (%d)"
       m2.Metrics.stack_ops m1.Metrics.stack_ops)
    true
    (m2.Metrics.stack_ops > m1.Metrics.stack_ops)

let test_mpmgjn_unsorted_rejected () =
  let doc = Lazy.force mj_doc in
  let idx = Element_index.build doc in
  let metrics = Metrics.create () in
  let a =
    Operators.index_scan ~metrics ~width:2 ~slot:0 (Element_index.lookup idx "a")
  in
  let reversed = Array.of_list (List.rev (Array.to_list a)) in
  expect_invalid (fun () ->
      Merge_join.join ~metrics ~doc ~axis:Axes.Descendant ~anc:(reversed, 0)
        ~desc:(a, 1))

let suite =
  [
    ("pager basics", `Quick, test_pager_basics);
    ("pager LRU order", `Quick, test_pager_lru);
    ("pager reuse vs thrash", `Quick, test_pager_reuse_across_scans);
    ("pager errors", `Quick, test_pager_errors);
    ("mpmgjn pairs", `Quick, test_mpmgjn_pairs);
    ("mpmgjn = stack-tree results", `Quick, test_mpmgjn_matches_stack_tree);
    ("mpmgjn rescans nested data", `Quick, test_mpmgjn_rescans_nested);
    ("mpmgjn unsorted rejected", `Quick, test_mpmgjn_unsorted_rejected);
  ]
