(* The multicore layer, tested two ways.

   Differential: the parallel paths — sharded Stack-Tree kernels, the
   executor's pool plumbing, the workload fan-out — must produce
   bit-identical tuples, orderings and metrics (including
   [skipped_items]) to their serial runs, on randomized documents and
   for every pool size.

   Regression: each shared-state fix (Registry atomics, Lru/Plan_cache
   locking, Budget atomic cancellation, Chaos per-query derivation) gets
   a test that fails on the pre-fix code: hammered counters must come
   out exact, cancellation must be visible across domains, and fault
   injection must not depend on query order or domain scheduling.

   Seeds are deterministic; CI varies the base via SJOS_PAR_SEED so
   different runs explore different documents while any failure stays
   replayable from its seed. *)

open Sjos_xml
open Sjos_storage
open Sjos_plan
open Sjos_exec
open Sjos_engine
module Pool = Sjos_par.Pool
module Lru = Sjos_cache.Lru
module Budget = Sjos_guard.Budget
module Chaos = Sjos_guard.Chaos
module Registry = Sjos_obs.Registry

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let seed_base =
  match Sys.getenv_opt "SJOS_PAR_SEED" with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 7)
  | None -> 7

let with_pool n f =
  let p = Pool.create ~domains:n () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

(* ---------- comparison helpers ---------- *)

let check_same_tuple_seq msg (expected : Tuple.t array) (actual : Tuple.t array)
    =
  check ci (msg ^ ": length") (Array.length expected) (Array.length actual);
  Array.iteri
    (fun i t ->
      if not (Tuple.equal t actual.(i)) then
        Alcotest.failf "%s: tuple %d differs: %s vs %s" msg i
          (Tuple.to_string t)
          (Tuple.to_string actual.(i)))
    expected

(* Every counter, [skipped_items] included: the sharded kernels claim
   bit-identical accounting, not just bit-identical output. *)
let check_metrics_identical msg (a : Metrics.t) (b : Metrics.t) =
  check ci (msg ^ ": index_items") a.Metrics.index_items b.Metrics.index_items;
  check ci (msg ^ ": stack_ops") a.Metrics.stack_ops b.Metrics.stack_ops;
  check ci (msg ^ ": io_items") a.Metrics.io_items b.Metrics.io_items;
  check ci (msg ^ ": sorted_items") a.Metrics.sorted_items
    b.Metrics.sorted_items;
  Helpers.check_float (msg ^ ": sort_cost") a.Metrics.sort_cost
    b.Metrics.sort_cost;
  check ci (msg ^ ": output_tuples") a.Metrics.output_tuples
    b.Metrics.output_tuples;
  check ci (msg ^ ": skipped_items") a.Metrics.skipped_items
    b.Metrics.skipped_items;
  check ci (msg ^ ": joins") a.Metrics.joins b.Metrics.joins;
  check ci (msg ^ ": sorts") a.Metrics.sorts b.Metrics.sorts

(* ---------- the pool itself ---------- *)

let test_pool_basics () =
  with_pool 4 @@ fun p ->
  check ci "size" 4 (Pool.size p);
  let r = Pool.run p 100 (fun i -> (i * i) + 1) in
  Array.iteri (fun i v -> check ci "result order" ((i * i) + 1) v) r;
  check ci "empty batch" 0 (Array.length (Pool.run p 0 (fun i -> i)));
  (* nested run executes inline instead of deadlocking the fixed pool *)
  let nested =
    Pool.run p 4 (fun i ->
        Array.fold_left ( + ) 0 (Pool.run p 5 (fun j -> (10 * i) + j)))
  in
  Array.iteri (fun i v -> check ci "nested sum" ((50 * i) + 10) v) nested;
  let s = Pool.run Pool.serial 7 (fun i -> i * 3) in
  Array.iteri (fun i v -> check ci "serial pool" (i * 3) v) s

exception Boom of int

let test_pool_exceptions () =
  with_pool 3 @@ fun p ->
  let ran = Atomic.make 0 in
  (match
     Pool.run p 8 (fun i ->
         Atomic.incr ran;
         if i >= 3 then raise (Boom i);
         i)
   with
  | _ -> Alcotest.fail "expected an exception"
  | exception Boom i -> check ci "lowest-index exception wins" 3 i);
  check ci "all tasks still ran" 8 (Atomic.get ran)

let test_pool_shutdown () =
  let p = Pool.create ~domains:3 () in
  Pool.shutdown p;
  Pool.shutdown p;
  let r = Pool.run p 5 (fun i -> i + 1) in
  Array.iteri (fun i v -> check ci "run after shutdown is serial" (i + 1) v) r

let test_default_pool () =
  (* the default pool is env-sized and process-wide; whatever its size,
     it must run correctly *)
  let p = Pool.get_default () in
  check cb "default size >= 1" true (Pool.size p >= 1);
  let r = Pool.run p 9 (fun i -> i * 7) in
  Array.iteri (fun i v -> check ci "default pool result" (i * 7) v) r

(* ---------- sharded kernels: differential vs. serial ---------- *)

let docs_under_test seed =
  [
    ("pers", Sjos_datagen.Pers.generate ~seed ~target_nodes:600 ());
    ("dblp", Sjos_datagen.Dblp.generate ~seed:(seed + 1) ~target_nodes:600 ());
    ( "mbench",
      Sjos_datagen.Mbench.generate ~seed:(seed + 2) ~target_nodes:600 () );
  ]

let scan idx tag slot width ~metrics =
  Operators.index_scan ~metrics ~width ~slot (Element_index.lookup idx tag)

let join_with ?pool ~doc ~idx ~atag ~dtag ~axis ~algo () =
  let metrics = Metrics.create () in
  let anc = scan idx atag 0 2 ~metrics in
  let desc = scan idx dtag 1 2 ~metrics in
  let out =
    Stack_tree.join ?pool ~par_min_rows:0 ~metrics ~doc ~axis ~algo
      ~anc:(anc, 0) ~desc:(desc, 1) ()
  in
  (out, metrics)

let test_kernel_shard_differential () =
  [ 2; 4 ]
  |> List.iter @@ fun domains ->
     with_pool domains @@ fun pool ->
     List.iter
       (fun (name, doc) ->
         let idx = Element_index.build doc in
         let tags = Array.of_list (Document.tags doc) in
         let rng = Sjos_datagen.Rng.create (seed_base + 31 + domains) in
         for case = 0 to 11 do
           let atag = tags.(Sjos_datagen.Rng.int rng (Array.length tags)) in
           let dtag =
             (* every fourth case is a self-join: the equal-start edge
                (same node on both sides) exercises the shard boundary *)
             if case mod 4 = 0 then atag
             else tags.(Sjos_datagen.Rng.int rng (Array.length tags))
           in
           List.iter
             (fun axis ->
               List.iter
                 (fun algo ->
                   let msg =
                     Printf.sprintf "%dd %s %s->%s %s/%s" domains name atag
                       dtag
                       (match axis with Axes.Child -> "child" | _ -> "desc")
                       (match algo with
                       | Plan.Stack_tree_desc -> "STJ-D"
                       | Plan.Stack_tree_anc -> "STJ-A")
                   in
                   let serial, sm =
                     join_with ~doc ~idx ~atag ~dtag ~axis ~algo ()
                   in
                   let par, pm =
                     join_with ~pool ~doc ~idx ~atag ~dtag ~axis ~algo ()
                   in
                   check_same_tuple_seq msg serial par;
                   check_metrics_identical msg sm pm)
                 [ Plan.Stack_tree_desc; Plan.Stack_tree_anc ])
             [ Axes.Descendant; Axes.Child ]
         done)
       (docs_under_test (seed_base + domains))

(* ---------- whole-workload differential ---------- *)

let workload_dbs () =
  let size = function
    | Workload.Mbench -> 12_000
    | Workload.Dblp -> 10_000
    | Workload.Pers -> 6_000
  in
  let dbs =
    List.map
      (fun ds -> (ds, Database.of_document (Workload.generate ~size:(size ds) ds)))
      Workload.all_datasets
  in
  fun ds -> List.assoc ds dbs

let test_workload_differential () =
  let db_for = workload_dbs () in
  let opts = Query_opts.make ~use_cache:false () in
  let reference = Workload.run_all ~opts ~pool:Pool.serial db_for in
  [ 2; 4 ]
  |> List.iter @@ fun domains ->
     with_pool domains @@ fun pool ->
     let par = Workload.run_all ~opts ~pool db_for in
     check ci "same query count" (Array.length reference) (Array.length par);
     Array.iteri
       (fun i ((q : Workload.query), (r : Database.query_run)) ->
         let q', r' = par.(i) in
         let msg = Printf.sprintf "%dd %s" domains q.Workload.id in
         check Alcotest.string (msg ^ ": order") q.Workload.id q'.Workload.id;
         check ci (msg ^ ": plans considered")
           r.Database.opt.Sjos_core.Optimizer.plans_considered
           r'.Database.opt.Sjos_core.Optimizer.plans_considered;
         check_same_tuple_seq msg r.Database.exec.Executor.tuples
           r'.Database.exec.Executor.tuples;
         check_metrics_identical msg r.Database.exec.Executor.metrics
           r'.Database.exec.Executor.metrics)
       reference

(* ---------- regression: Registry under concurrency ---------- *)

let test_registry_concurrent () =
  Registry.reset ();
  Registry.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Registry.reset ();
      Registry.set_enabled false)
  @@ fun () ->
  with_pool 4 @@ fun p ->
  let per = 25_000 in
  (* find_or_add raced from every domain must yield one shared counter,
     and no increment may be lost *)
  ignore
    (Pool.run p 4 (fun _ ->
         let c = Registry.counter "par.hammer" in
         for _ = 1 to per do
           Registry.incr c
         done));
  check ci "no lost increments" (4 * per)
    (Registry.counter_value (Registry.counter "par.hammer"));
  ignore
    (Pool.run p 4 (fun d ->
         Registry.add (Registry.counter "par.add") (d + 1)));
  check ci "adds sum exactly" 10
    (Registry.counter_value (Registry.counter "par.add"));
  ignore
    (Pool.run p 4 (fun _ ->
         let t = Registry.timer "par.timer" in
         for _ = 1 to 1_000 do
           Registry.add_seconds t 0.001
         done));
  check ci "timer count exact" 4_000 (Registry.timer_count (Registry.timer "par.timer"))

(* ---------- regression: Lru / Plan_cache under concurrency ---------- *)

let test_lru_concurrent () =
  with_pool 2 @@ fun p ->
  let lru = Lru.create ~capacity:16 in
  ignore
    (Pool.run p 2 (fun d ->
         for k = 0 to 5_000 do
           let key = string_of_int ((k * ((7 * d) + 3)) mod 64) in
           (match Lru.find lru key with
           | Some _ -> ()
           | None -> ignore (Lru.add lru key (k, d)));
           if k mod 97 = 0 then Lru.remove lru key
         done));
  let len = Lru.length lru in
  check cb "within capacity" true (len <= 16);
  let l = Lru.to_list lru in
  check ci "to_list agrees with length" len (List.length l);
  let keys = List.map fst l in
  check ci "keys unique" len (List.length (List.sort_uniq compare keys))

let test_plan_cache_concurrent () =
  with_pool 2 @@ fun p ->
  let pc = Sjos_cache.Plan_cache.create ~capacity:8 () in
  let entry =
    { Sjos_cache.Plan_cache.plan_text = "t"; est_cost = 1.0; algorithm = "DPP" }
  in
  let finds =
    Pool.run p 2 (fun d ->
        let n = ref 0 in
        for k = 0 to 4_000 do
          let key = string_of_int ((k * ((5 * d) + 1)) mod 24) in
          incr n;
          (match Sjos_cache.Plan_cache.find pc key with
          | Some _ -> ()
          | None -> Sjos_cache.Plan_cache.add pc key entry);
          if d = 0 && k mod 1_000 = 0 then
            Sjos_cache.Plan_cache.bump_epoch pc
        done;
        !n)
  in
  let total_finds = Array.fold_left ( + ) 0 finds in
  let s = Sjos_cache.Plan_cache.stats pc in
  check ci "hits + misses = finds" total_finds
    (s.Sjos_cache.Plan_cache.hits + s.Sjos_cache.Plan_cache.misses);
  check cb "entries within capacity" true
    (s.Sjos_cache.Plan_cache.entries <= s.Sjos_cache.Plan_cache.capacity);
  check cb "invalidations counted as misses" true
    (s.Sjos_cache.Plan_cache.invalidations <= s.Sjos_cache.Plan_cache.misses)

(* ---------- regression: Budget cancellation across domains ---------- *)

let test_budget_cross_domain_cancel () =
  (* an explicit flag: [make ()] with no ceilings normalizes to the
     uncancellable [unlimited] *)
  let b = Budget.make ~cancelled:(Atomic.make false) () in
  with_pool 2 @@ fun p ->
  let r =
    Pool.run p 2 (fun i ->
        if i = 0 then begin
          Budget.cancel b;
          0
        end
        else begin
          (* must observe the other domain's write; pre-fix (a plain
             bool field) nothing forces it to become visible.  Bounded
             so a broken cancel fails the test instead of hanging it. *)
          let t0 = Sjos_obs.Clock.now_ns () in
          while
            Budget.poll b <> Some Budget.Cancelled
            && Sjos_obs.Clock.elapsed_seconds ~since:t0 < 30.0
          do
            Domain.cpu_relax ()
          done;
          if Budget.poll b = Some Budget.Cancelled then 1 else -1
        end)
  in
  check ci "worker saw the cancel" 1 r.(1);
  check cb "cancel is sticky" true (Budget.poll b = Some Budget.Cancelled);
  match Budget.cancel Budget.unlimited with
  | () -> Alcotest.fail "cancelling the unlimited budget must be rejected"
  | exception Invalid_argument _ -> ()

let test_budget_cancel_aborts_execution () =
  let db_for = workload_dbs () in
  let q = Workload.q_pers_3_d in
  let db = db_for q.Workload.dataset in
  with_pool 2 @@ fun pool ->
  let b = Budget.make ~cancelled:(Atomic.make false) () in
  let opts = Query_opts.make ~use_cache:false ~budget:b ~pool () in
  let prep = Database.prepare ~opts db q.Workload.pattern in
  Budget.cancel b;
  match Database.exec prep with
  | _ -> Alcotest.fail "cancelled budget did not abort execution"
  | exception Budget.Exhausted { resource = Budget.Cancelled; _ } -> ()

(* ---------- regression: Chaos independent of order and scheduling ---------- *)

let chaos_faults = [ Chaos.Truncate_candidates; Chaos.Lie_cardinalities ]

(* Matches per query id, plus the shared injection total, for one parent
   chaos instance consumed by the given driver. *)
let chaos_run driver =
  let c = Chaos.create ~faults:chaos_faults ~seed:(seed_base + 41) () in
  let opts = Query_opts.make ~chaos:c () in
  let outcomes = driver opts in
  (outcomes, Chaos.injected c)

let test_chaos_schedule_independent () =
  let db_for = workload_dbs () in
  let serial order opts =
    List.map
      (fun (q : Workload.query) ->
        let r = Database.run ~opts (db_for q.Workload.dataset) q.Workload.pattern in
        (q.Workload.id, Array.length r.Database.exec.Executor.tuples))
      order
    |> List.sort compare
  in
  let forward, inj_fwd = chaos_run (serial Workload.queries) in
  let backward, inj_bwd = chaos_run (serial (List.rev Workload.queries)) in
  let parallel, inj_par =
    chaos_run (fun opts ->
        with_pool 4 @@ fun pool ->
        Workload.run_all ~opts ~pool db_for
        |> Array.to_list
        |> List.map (fun ((q : Workload.query), (r : Database.query_run)) ->
               (q.Workload.id, Array.length r.Database.exec.Executor.tuples))
        |> List.sort compare)
  in
  check cb "some faults actually fired" true (inj_fwd > 0);
  check ci "same injection total reversed" inj_fwd inj_bwd;
  check ci "same injection total parallel" inj_fwd inj_par;
  List.iter2
    (fun (id, m) (id', m') ->
      check Alcotest.string "query id" id id';
      check ci (id ^ ": matches independent of order") m m')
    forward backward;
  List.iter2
    (fun (id, m) (id', m') ->
      check Alcotest.string "query id" id id';
      check ci (id ^ ": matches independent of scheduling") m m')
    forward parallel

let test_chaos_derive_pure () =
  let c = Chaos.create ~faults:chaos_faults ~seed:(seed_base + 43) () in
  let a1 = Chaos.derive c ~key:"fp-a" in
  (* drawing from one child must not perturb a sibling derived later *)
  ignore (Chaos.wrap_candidates a1 [||]);
  let b = Chaos.derive c ~key:"fp-b" in
  let a2 = Chaos.derive c ~key:"fp-a" in
  check ci "same key, same stream" (Chaos.seed a1) (Chaos.seed a2);
  check cb "distinct keys, distinct streams" true (Chaos.seed a1 <> Chaos.seed b)

let suite =
  [
    Alcotest.test_case "pool: results in index order" `Quick test_pool_basics;
    Alcotest.test_case "pool: deterministic exceptions" `Quick
      test_pool_exceptions;
    Alcotest.test_case "pool: shutdown is safe" `Quick test_pool_shutdown;
    Alcotest.test_case "pool: env-sized default" `Quick test_default_pool;
    Alcotest.test_case "sharded kernels = serial kernels (tuples + metrics)"
      `Quick test_kernel_shard_differential;
    Alcotest.test_case "parallel workload = serial workload" `Quick
      test_workload_differential;
    Alcotest.test_case "registry: exact counts under contention" `Quick
      test_registry_concurrent;
    Alcotest.test_case "lru: invariants under contention" `Quick
      test_lru_concurrent;
    Alcotest.test_case "plan cache: counters agree with outcomes" `Quick
      test_plan_cache_concurrent;
    Alcotest.test_case "budget: cancellation visible across domains" `Quick
      test_budget_cross_domain_cancel;
    Alcotest.test_case "budget: cancel aborts a pooled execution" `Quick
      test_budget_cancel_aborts_execution;
    Alcotest.test_case "chaos: faults independent of order and scheduling"
      `Quick test_chaos_schedule_independent;
    Alcotest.test_case "chaos: derivation is pure and keyed" `Quick
      test_chaos_derive_pure;
  ]
