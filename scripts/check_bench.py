#!/usr/bin/env python3
"""Schema checks for the BENCH_*.json files the bench harnesses write.

Replaces the old `python3 -m json.tool` CI steps: well-formed JSON is
necessary but nowhere near sufficient — a bench that silently ran zero
queries still serializes cleanly.  Each checker asserts the keys CI's
gates read, that the row lists are non-empty, and that counters which
must be positive actually are.

Usage: check_bench.py FILE [FILE...]
The checker is picked from the file's basename; unknown names fail.
"""

import json
import sys


class CheckFailure(Exception):
    pass


def need(obj, key, types):
    if key not in obj:
        raise CheckFailure(f"missing key {key!r}")
    if not isinstance(obj[key], types):
        raise CheckFailure(
            f"key {key!r} has type {type(obj[key]).__name__}, "
            f"wanted {types}"
        )
    return obj[key]


def nonempty(seq, what):
    if len(seq) == 0:
        raise CheckFailure(f"{what} is empty — the bench ran nothing")
    return seq


NUM = (int, float)


def check_bench_1(doc):
    rows = nonempty(doc, "query list")
    if not isinstance(rows, list):
        raise CheckFailure("top level must be a list of per-query rows")
    for row in rows:
        need(row, "query", str)
        need(row, "bad_plan", dict)
        algos = nonempty(need(row, "algorithms", dict), "algorithms")
        for name, cell in algos.items():
            for key in ("plans_considered", "matches"):
                if need(cell, key, NUM) < 0:
                    raise CheckFailure(f"{row['query']}/{name}: {key} < 0")
            for key in (
                "opt_seconds",
                "eval_seconds",
                "est_cost_units",
                "actual_cost_units",
            ):
                need(cell, key, NUM)


def check_bench_cache(doc):
    cells = nonempty(need(doc, "cells", list), "cells")
    for cell in cells:
        need(cell, "query", str)
        need(cell, "algorithm", str)
        need(cell, "cold_opt_seconds", NUM)
        need(cell, "warm_opt_seconds", NUM)
        need(cell, "speedup", NUM)
    need(doc, "plan_cache", dict)


def check_bench_guard(doc):
    need(doc, "baseline", dict)
    need(doc, "degraded", dict)
    need(doc, "degraded_cost_ratio", NUM)
    need(doc, "degraded_matches_identical", bool)
    chaos = need(doc, "chaos", dict)
    if need(chaos, "runs", int) <= 0:
        raise CheckFailure("chaos sweep ran zero queries")
    for key in ("ok", "structured_errors", "escaped_exceptions"):
        need(chaos, key, int)
    need(chaos, "lies_only_divergences", int)
    need(chaos, "error_classes", dict)


def check_work(work, where):
    for key in (
        "comparisons",
        "tuples_emitted",
        "items_skipped",
        "candidates_scanned",
        "stack_ops",
        "io_items",
        "sorted_items",
        "expansions",
        "plans_considered",
        "page_touches",
        "score",
    ):
        if need(work, key, int) < 0:
            raise CheckFailure(f"{where}: work counter {key} < 0")
    if work["score"] <= 0:
        raise CheckFailure(f"{where}: work score is zero — nothing executed")


def check_bench_perf(doc):
    need(doc, "scale", NUM)
    need(doc, "reps", int)
    rows = nonempty(need(doc, "patterns", list), "patterns")
    for row in rows:
        pid = need(row, "id", str)
        need(row, "identical_output", bool)
        need(row, "work_identical", bool)
        need(row, "repeat_deterministic", bool)
        if need(row, "output_tuples", int) <= 0:
            raise CheckFailure(f"{pid}: zero output tuples")
        check_work(need(row, "legacy_work", dict), f"{pid}/legacy")
        check_work(need(row, "columnar_work", dict), f"{pid}/columnar")
        for key in (
            "legacy_seconds",
            "columnar_seconds",
            "speedup",
            "legacy_allocated_bytes",
            "columnar_allocated_bytes",
            "alloc_ratio",
        ):
            need(row, key, NUM)
    shape = need(doc, "shape", dict)
    for key in (
        "identical_outputs",
        "work_identical",
        "repeat_deterministic",
        "skip_ahead_active",
        "no_alloc_regression",
        "alloc_2x",
        "pass",
    ):
        need(shape, key, bool)


def check_bench_par(doc):
    need(doc, "scale", NUM)
    need(doc, "reps", int)
    need(doc, "cores", int)
    need(doc, "serial_seconds", NUM)
    serial = need(doc, "serial", dict)
    check_work(need(serial, "work", dict), "serial")
    rows = nonempty(need(doc, "per_domain", list), "per_domain")
    for row in rows:
        d = need(row, "domains", int)
        need(row, "seconds", NUM)
        need(row, "speedup", NUM)
        need(row, "identical", bool)
        acct = need(row, "accounting", dict)
        check_work(need(acct, "work", dict), f"domains={d}")
        need(acct, "sharded_joins", int)
        need(acct, "balance", NUM)
    table2 = nonempty(need(doc, "table2_considered", dict), "table2_considered")
    for name, considered in table2.items():
        if not isinstance(considered, int) or considered <= 0:
            raise CheckFailure(f"table2 {name}: bad considered count")
    shape = need(doc, "shape", dict)
    for key in (
        "identical_outputs",
        "counters_exact",
        "work_identical_across_domains",
        "sharding_active",
        "shard_balanced",
        "pass",
    ):
        need(shape, key, bool)
    need(shape, "max_balance", NUM)


def check_bench_io(doc):
    need(doc, "scale", NUM)
    if need(doc, "page_size", int) <= 0:
        raise CheckFailure("page_size must be positive")
    rows = nonempty(need(doc, "queries", list), "queries")
    for row in rows:
        qid = need(row, "id", str)
        need(row, "identical", bool)
        if need(row, "output_tuples", int) <= 0:
            raise CheckFailure(f"{qid}: zero output tuples")
        for key in ("page_touches", "disk_misses"):
            if need(row, key, int) < 0:
                raise CheckFailure(f"{qid}: {key} < 0")
        for key in ("mem_seconds", "disk_seconds"):
            need(row, key, NUM)
    sweep = need(doc, "pool_sweep", dict)
    need(sweep, "query", str)
    points = nonempty(need(sweep, "points", list), "pool sweep points")
    for point in points:
        for key in ("pool_pages", "accesses", "misses", "evictions"):
            if need(point, key, int) < 0:
                raise CheckFailure(f"pool sweep: {key} < 0")
    skips = nonempty(need(doc, "skip_ahead", list), "skip_ahead")
    for row in skips:
        qid = need(row, "id", str)
        lazy = need(row, "lazy_misses", int)
        full = need(row, "full_scan_misses", int)
        if lazy > full:
            raise CheckFailure(f"{qid}: lazy join read more pages than a full scan")
        need(row, "skipped_items", int)
    grounding = need(doc, "grounding", dict)
    need(grounding, "query", str)
    need(grounding, "page_misses", int)
    need(grounding, "io_items", int)
    if need(grounding, "f_io", NUM) < 0:
        raise CheckFailure("grounded f_io is negative")
    if "paper" in doc and isinstance(doc["paper"], dict):
        paper = doc["paper"]
        need(paper, "nodes", int)
        need(paper, "out_of_core", bool)
        if need(paper, "pool_bytes", int) >= need(paper, "total_column_bytes", int):
            raise CheckFailure("paper run: pool not smaller than the column data")
    shape = need(doc, "shape", dict)
    for key in (
        "identical_outputs_and_work",
        "table2_exact",
        "pool_sweep_monotone",
        "lazy_never_worse",
        "skip_ahead_saves_misses",
        "f_io_grounded",
        "pass",
    ):
        need(shape, key, bool)


def check_bench_serve(doc):
    need(doc, "seed", int)
    if need(doc, "requests", int) <= 0:
        raise CheckFailure("server bench ran zero requests")
    if need(doc, "chaos_requests", int) < 500:
        raise CheckFailure("fewer than 500 chaos-tenant requests")
    for key in ("admitted", "shed", "structured_failures", "degraded"):
        if need(doc, key, int) < 0:
            raise CheckFailure(f"{key} < 0")
    if doc["admitted"] <= 0:
        raise CheckFailure("no requests were admitted")
    for key in ("p50_ms", "p99_ms", "throughput_rps", "shed_rate"):
        if need(doc, key, NUM) < 0:
            raise CheckFailure(f"{key} < 0")
    if doc["p99_ms"] < doc["p50_ms"]:
        raise CheckFailure("p99 below p50")
    sat = need(doc, "saturation", dict)
    for key in (
        "pinned",
        "queued_at_peak",
        "burst_requests",
        "burst_shed",
        "burst_completed",
    ):
        if need(sat, key, int) < 0:
            raise CheckFailure(f"saturation.{key} < 0")
    if sat["burst_shed"] + sat["burst_completed"] != sat["burst_requests"]:
        raise CheckFailure("saturation burst requests unaccounted for")
    table2 = nonempty(need(doc, "table2_considered", dict), "table2_considered")
    for name, considered in table2.items():
        if not isinstance(considered, int) or considered <= 0:
            raise CheckFailure(f"table2 {name}: bad considered count")
    shape = need(doc, "shape", dict)
    for key in (
        "zero_escaped",
        "sheds_structured",
        "digests_exact",
        "enough_chaos",
        "counters_exact",
        "pass",
    ):
        need(shape, key, bool)


def check_bench_twig(doc):
    need(doc, "scale", NUM)
    cells = nonempty(need(doc, "cells", list), "cells")
    saw_holistic_expect = False
    for cell in cells:
        cid = need(cell, "id", str)
        need(cell, "dataset", str)
        need(cell, "pattern", str)
        expect = need(cell, "expect", str)
        if expect not in ("holistic", "binary"):
            raise CheckFailure(f"{cid}: expect must be holistic or binary")
        saw_holistic_expect = saw_holistic_expect or expect == "holistic"
        if need(cell, "output_tuples", int) <= 0:
            raise CheckFailure(f"{cid}: zero output tuples")
        for engine in ("binary", "holistic"):
            side = need(cell, engine, dict)
            for key in ("comparisons", "io_items", "score"):
                if need(side, key, int) < 0:
                    raise CheckFailure(f"{cid}/{engine}: {key} < 0")
            if side["score"] != side["comparisons"] + side["io_items"]:
                raise CheckFailure(f"{cid}/{engine}: score is not cmp+io")
            need(side, "est_cost", NUM)
            need(side, "seconds", NUM)
        if need(cell, "auto_picked", str) not in ("holistic", "binary"):
            raise CheckFailure(f"{cid}: bad auto_picked")
        need(cell, "identical", bool)
        need(cell, "deterministic", bool)
        if expect == "holistic":
            if cell["holistic"]["score"] >= cell["binary"]["score"]:
                raise CheckFailure(f"{cid}: holistic did not win cmp+io")
    if not saw_holistic_expect:
        raise CheckFailure("no deep-chain cell expects a holistic win")
    shape = need(doc, "shape", dict)
    for key in (
        "identical_outputs",
        "deterministic_work",
        "table2_exact",
        "holistic_wins_deep_chains",
        "auto_agrees",
        "pass",
    ):
        need(shape, key, bool)


def check_bench_bigopt(doc):
    need(doc, "seed", int)
    if need(doc, "width", int) <= 0:
        raise CheckFailure("beam width must be positive")
    diffs = nonempty(need(doc, "differential", list), "differential")
    for row in diffs:
        shape = need(row, "shape", str)
        n = need(row, "nodes", int)
        if n > 10:
            raise CheckFailure(f"{shape}/{n}: differential cell above 10 nodes")
        need(row, "dp_cost", NUM)
        need(row, "bigdp_cost", NUM)
        if not need(row, "equal", bool):
            raise CheckFailure(f"{shape}/{n}: BigDP cost != DP cost")
    scaling = nonempty(need(doc, "scaling", list), "scaling")
    saw_30 = False
    for row in scaling:
        shape = need(row, "shape", str)
        n = need(row, "nodes", int)
        need(row, "cost", NUM)
        seconds = need(row, "seconds", NUM)
        if need(row, "expanded", int) <= 0:
            raise CheckFailure(f"{shape}/{n}: zero expansions")
        if need(row, "considered", int) <= 0:
            raise CheckFailure(f"{shape}/{n}: zero plans considered")
        if not need(row, "deterministic", bool):
            raise CheckFailure(f"{shape}/{n}: nondeterministic work")
        if n == 30:
            saw_30 = True
            if seconds >= 1.0:
                raise CheckFailure(f"{shape}/{n}: {seconds}s at 30 nodes")
    if not saw_30:
        raise CheckFailure("no 30-node scaling cell")
    ladder = nonempty(need(doc, "dp_ladder", list), "dp_ladder")
    for rung in ladder:
        need(rung, "nodes", int)
        need(rung, "seconds", NUM)
    extrapolated = need(doc, "dp_extrapolated_seconds", NUM)
    if extrapolated <= 60.0:
        raise CheckFailure(
            f"DP extrapolates to only {extrapolated}s at 30 nodes"
        )
    shape = need(doc, "shape", dict)
    for key in (
        "cost_equality_small",
        "subsecond_at_30",
        "deterministic_work",
        "dp_infeasible_at_30",
        "table2_exact",
        "pass",
    ):
        need(shape, key, bool)


CHECKERS = {
    "BENCH_1.json": check_bench_1,
    "BENCH_CACHE.json": check_bench_cache,
    "BENCH_GUARD.json": check_bench_guard,
    "BENCH_PERF.json": check_bench_perf,
    "BENCH_PAR.json": check_bench_par,
    "BENCH_IO.json": check_bench_io,
    "BENCH_SERVE.json": check_bench_serve,
    "BENCH_TWIG.json": check_bench_twig,
    "BENCH_BIGOPT.json": check_bench_bigopt,
}


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        name = path.rsplit("/", 1)[-1]
        checker = CHECKERS.get(name)
        if checker is None:
            print(f"check_bench: {path}: no checker for {name}", file=sys.stderr)
            failed = True
            continue
        try:
            with open(path) as fh:
                doc = json.load(fh)
            checker(doc)
            print(f"check_bench: {path}: OK")
        except (OSError, json.JSONDecodeError, CheckFailure) as exc:
            print(f"check_bench: {path}: FAIL: {exc}", file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
