#!/usr/bin/env sh
# End-to-end smoke for `sjos serve` + `sjos client`: boot a server on a
# Unix-domain socket, drive every protocol op through the real wire
# format, assert served results agree with direct `sjos query`, and
# check that SIGTERM drains cleanly (exit 0, final metrics on stderr,
# socket unlinked).
#
# Usage:  scripts/serve_smoke.sh [path/to/sjos.exe]
# Defaults to the dune build output; run from the repository root.

set -u

BIN="${1:-./_build/default/bin/sjos.exe}"
TMP="${TMPDIR:-/tmp}"
XML="$TMP/sjos_serve_smoke_$$.xml"
SOCK="$TMP/sjos_serve_smoke_$$.sock"
TENANTS="$TMP/sjos_serve_smoke_$$.tenants.json"
ERR="$TMP/sjos_serve_smoke_$$.stderr"
fails=0
srv=

say() { printf '%s\n' "$*"; }

check() { # check LABEL COND-DESCRIPTION; caller sets ok=0/1
  if [ "$ok" -eq 0 ]; then
    say "ok   $1"
  else
    say "FAIL $1"
    fails=$((fails + 1))
  fi
}

cleanup() {
  [ -n "$srv" ] && kill "$srv" 2>/dev/null
  rm -f "$XML" "$SOCK" "$TENANTS" "$ERR"
}
trap cleanup EXIT

"$BIN" gen pers -n 2000 -o "$XML" || { say "FAIL gen"; exit 1; }

cat > "$TENANTS" <<'EOF'
{"default": {"max_concurrent": 4},
 "tenants": {"capped": {"max_concurrent": 1, "max_tuples": 5}}}
EOF

"$BIN" serve "$XML" --socket "$SOCK" --tenants "$TENANTS" \
  --max-active 2 --max-queue 4 2> "$ERR" &
srv=$!

tries=0
until "$BIN" client health --socket "$SOCK" > /dev/null 2>&1; do
  tries=$((tries + 1))
  [ "$tries" -ge 100 ] && { say "FAIL server never became ready"; exit 1; }
  sleep 0.1
done
say "ok   server ready on $SOCK"

Q="manager(//employee(/name))"

# served result must equal the direct CLI result (same doc, same query)
direct=$("$BIN" query "$Q" "$XML" --json | python3 -c \
  'import json,sys; print(json.load(sys.stdin)["matches"])')
exec1=$("$BIN" client exec --socket "$SOCK" --pattern "$Q")
served=$(printf '%s' "$exec1" | python3 -c \
  'import json,sys; print(json.load(sys.stdin)["matches"])')
[ "$direct" = "$served" ] && [ -n "$direct" ]; ok=$?
check "served matches == direct query matches ($served)"

# the second identical exec must hit the plan cache
printf '%s' "$("$BIN" client exec --socket "$SOCK" --pattern "$Q")" \
  | grep -q '"plan_cached": true'; ok=$?
check "repeat exec reuses the cached plan"

# prepare once, exec by name, explain and analyze all answer
"$BIN" client prepare --socket "$SOCK" --pattern "$Q" --name q1 \
  > /dev/null 2>&1 &&
  "$BIN" client exec --socket "$SOCK" --name q1 > /dev/null 2>&1 &&
  "$BIN" client explain --socket "$SOCK" --pattern "$Q" > /dev/null 2>&1 &&
  "$BIN" client analyze --socket "$SOCK" --pattern "$Q" > /dev/null 2>&1
ok=$?
check "prepare/exec-by-name/explain/analyze round-trips"

# tenant quota: the capped tenant's 5-tuple ceiling fires as a
# structured budget_exhausted wire error -> client exits 5
"$BIN" client exec --socket "$SOCK" --pattern "$Q" --tenant capped \
  > /dev/null 2>&1
[ $? -eq 5 ]; ok=$?
check "capped tenant's tuple quota maps to exit 5"

# a bad pattern comes back as a structured parse_error -> exit 2
"$BIN" client exec --socket "$SOCK" --pattern "manager(||x)" \
  > /dev/null 2>&1
[ $? -eq 2 ]; ok=$?
check "server-side parse error maps to exit 2"

# metrics endpoint shares the local `sjos metrics` shape + serve block
"$BIN" client metrics --socket "$SOCK" | python3 -c '
import json, sys
doc = json.load(sys.stdin)
serve = doc["serve"]
assert serve["active"] >= 0 and serve["max_active"] == 2
counters = doc["registry"]["counters"]
assert counters.get("serve.requests", 0) >= 5, counters
assert counters.get("serve.escaped", 0) == 0, "an exception escaped"
assert any(k.startswith("serve.tenant.") for k in counters), counters
'; ok=$?
check "metrics endpoint exposes serve.* counters, zero escaped"

# SIGTERM: in-flight work finishes, process exits 0, final metrics are
# flushed to stderr, and the socket path is unlinked
kill -TERM "$srv"
wait "$srv"
rc=$?
srv=
[ "$rc" -eq 0 ]; ok=$?
check "SIGTERM drain exits 0 (got $rc)"
grep -q '"serve"' "$ERR"; ok=$?
check "drain flushes final metrics to stderr"
[ ! -e "$SOCK" ]; ok=$?
check "socket unlinked after drain"

if [ "$fails" -eq 0 ]; then
  say "serve smoke: all checks passed"
else
  say "serve smoke: $fails check(s) FAILED"
  exit 1
fi
