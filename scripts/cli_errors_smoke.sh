#!/usr/bin/env sh
# Smoke-test the CLI error boundary: every failure class must exit with
# its documented code and print a one-line "sjos: <class>: <message>" on
# stderr -- never a backtrace.
#
# Usage:  scripts/cli_errors_smoke.sh [path/to/sjos.exe]
# With no argument the script runs the binary through `dune exec`
# (prefix with `opam exec --` in CI if needed via $SJOS).

set -u

SJOS="${1:-${SJOS:-dune exec bin/sjos.exe --}}"
XML="${TMPDIR:-/tmp}/sjos_smoke_pers.xml"
fails=0

say() { printf '%s\n' "$*"; }

expect_exit() {
  want=$1
  label=$2
  shift 2
  out=$("$@" 2>&1 >/dev/null)
  got=$?
  if [ "$got" -ne "$want" ]; then
    say "FAIL $label: exit $got, wanted $want"
    say "     stderr: $out"
    fails=$((fails + 1))
  elif [ "$want" -ne 0 ] && ! printf '%s' "$out" | grep -q '^sjos: '; then
    say "FAIL $label: exit $want but stderr is not a one-line sjos message:"
    say "     $out"
    fails=$((fails + 1))
  else
    say "ok   $label (exit $got)"
  fi
}

# shellcheck disable=SC2086  # $SJOS is intentionally word-split
run_sjos() { $SJOS "$@"; }

$SJOS gen pers -n 2000 -o "$XML" 2>/dev/null || {
  say "FAIL could not generate $XML"
  exit 1
}

# success path
expect_exit 0 "healthy query" \
  run_sjos query "manager(//employee(/name))" "$XML"

# parse_error = 2: bad pattern syntax, then malformed XML
expect_exit 2 "pattern parse error" \
  run_sjos query "manager(||employee)" "$XML"
BAD="${TMPDIR:-/tmp}/sjos_smoke_bad.xml"
printf '<a><b></a>' > "$BAD"
expect_exit 2 "malformed xml" \
  run_sjos query "manager(//name)" "$BAD"

# invalid_request = 3: per-query knob out of range
expect_exit 3 "grid out of range" \
  run_sjos query "manager(//name)" "$XML" --grid 0

# budget_exhausted = 5: tuple ceiling fires during execution
expect_exit 5 "tuple budget exhausted" \
  run_sjos query "manager(//employee(/name))" "$XML" --max-tuples 1

# degradation is NOT an error: an over-budget exact search falls back to
# DPAP-EB, exits 0 and says so on stderr
note=$(run_sjos query "manager(//employee(/name))" "$XML" \
  --no-cache --max-expanded 1 2>&1 >/dev/null)
rc=$?
if [ "$rc" -eq 0 ] && printf '%s' "$note" | grep -q 'DPAP-EB'; then
  say "ok   budgeted search degrades with a note (exit 0)"
else
  say "FAIL degradation: exit $rc, stderr: $note"
  fails=$((fails + 1))
fi

# the complete class-to-exit-code table, 2..9, via the selftest boundary:
# every class must map to its documented code even when no organic
# failing query exists for it in this script
code=2
for cls in parse_error invalid_request invalid_plan budget_exhausted \
  corrupt_cache_entry corrupt_input internal overloaded; do
  expect_exit "$code" "selftest-error $cls" run_sjos selftest-error "$cls"
  code=$((code + 1))
done
expect_exit 3 "selftest-error rejects unknown class" \
  run_sjos selftest-error no_such_class

# ---- disk storage failure paths -------------------------------------
# A server with --storage disk opens its column file lazily, on the
# first page fault.  Damaging the file between startup and the first
# query therefore surfaces as a structured corrupt_input error on the
# request that faults -- never a crash -- and the server stays up.
#
# These need a long-lived background process, so they use the built
# binary directly (dune exec would put dune between us and the signal).
BIN=./_build/default/bin/sjos.exe
if [ ! -x "$BIN" ]; then
  case "$SJOS" in
  *dune*) : ;; # dune exec above already built it; if not, skip below
  *) BIN=${SJOS% *} ;;
  esac
fi
if [ -x "$BIN" ]; then
  SOCK="${TMPDIR:-/tmp}/sjos_smoke_$$.sock"
  DIR="${TMPDIR:-/tmp}/sjos_smoke_store_$$"

  wait_ready() { # wait_ready PID LABEL -> 0 when serving, 1 on timeout
    tries=0
    while ! "$BIN" client health --socket "$SOCK" >/dev/null 2>&1; do
      tries=$((tries + 1))
      if [ "$tries" -ge 100 ]; then
        say "FAIL $2: server (pid $1) never became ready"
        return 1
      fi
      sleep 0.1
    done
    return 0
  }

  expect_client() { # expect_client CODE CLASS LABEL cmd...
    want=$1
    wantclass=$2
    label=$3
    shift 3
    out=$("$@" 2>/dev/null)
    got=$?
    if [ "$got" -ne "$want" ]; then
      say "FAIL $label: exit $got, wanted $want"
      say "     stdout: $out"
      fails=$((fails + 1))
    elif [ -n "$wantclass" ] &&
      ! printf '%s' "$out" | grep -q "\"class\": \"$wantclass\""; then
      say "FAIL $label: response lacks error class $wantclass:"
      say "     $out"
      fails=$((fails + 1))
    else
      say "ok   $label (exit $got)"
    fi
  }

  serve_disk_case() { # serve_disk_case LABEL DAMAGE-CMD...
    label=$1
    shift
    rm -rf "$DIR" "$SOCK"
    "$BIN" serve "$XML" --socket "$SOCK" --storage disk \
      --store-dir "$DIR" --pool-pages 2 2>/dev/null &
    srv=$!
    if wait_ready "$srv" "$label"; then
      "$@" # damage the column file before the first page fault
      expect_client 7 corrupt_input "$label" \
        "$BIN" client exec --socket "$SOCK" \
        --pattern "manager(//employee(/name))"
      # the fault was isolated to that request: the server still answers
      expect_client 0 "" "$label: server survives the IO fault" \
        "$BIN" client health --socket "$SOCK"
      kill -TERM "$srv" 2>/dev/null
      wait "$srv" 2>/dev/null
      drain_rc=$?
      if [ "$drain_rc" -ne 0 ]; then
        say "FAIL $label: drain exited $drain_rc"
        fails=$((fails + 1))
      fi
    else
      fails=$((fails + 1))
      kill "$srv" 2>/dev/null
      wait "$srv" 2>/dev/null
    fi
    rm -rf "$DIR" "$SOCK"
  }

  serve_disk_case "disk store: missing columns.bin" \
    rm -f "$DIR/columns.bin"
  serve_disk_case "disk store: truncated columns.bin" \
    sh -c ": > '$DIR/columns.bin'"
else
  say "skip disk failure paths: no built binary at $BIN"
fi

rm -f "$BAD"
if [ "$fails" -eq 0 ]; then
  say "cli error smoke: all checks passed"
else
  say "cli error smoke: $fails check(s) FAILED"
  exit 1
fi
