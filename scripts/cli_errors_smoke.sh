#!/usr/bin/env sh
# Smoke-test the CLI error boundary: every failure class must exit with
# its documented code and print a one-line "sjos: <class>: <message>" on
# stderr -- never a backtrace.
#
# Usage:  scripts/cli_errors_smoke.sh [path/to/sjos.exe]
# With no argument the script runs the binary through `dune exec`
# (prefix with `opam exec --` in CI if needed via $SJOS).

set -u

SJOS="${1:-${SJOS:-dune exec bin/sjos.exe --}}"
XML="${TMPDIR:-/tmp}/sjos_smoke_pers.xml"
fails=0

say() { printf '%s\n' "$*"; }

expect_exit() {
  want=$1
  label=$2
  shift 2
  out=$("$@" 2>&1 >/dev/null)
  got=$?
  if [ "$got" -ne "$want" ]; then
    say "FAIL $label: exit $got, wanted $want"
    say "     stderr: $out"
    fails=$((fails + 1))
  elif [ "$want" -ne 0 ] && ! printf '%s' "$out" | grep -q '^sjos: '; then
    say "FAIL $label: exit $want but stderr is not a one-line sjos message:"
    say "     $out"
    fails=$((fails + 1))
  else
    say "ok   $label (exit $got)"
  fi
}

# shellcheck disable=SC2086  # $SJOS is intentionally word-split
run_sjos() { $SJOS "$@"; }

$SJOS gen pers -n 2000 -o "$XML" 2>/dev/null || {
  say "FAIL could not generate $XML"
  exit 1
}

# success path
expect_exit 0 "healthy query" \
  run_sjos query "manager(//employee(/name))" "$XML"

# parse_error = 2: bad pattern syntax, then malformed XML
expect_exit 2 "pattern parse error" \
  run_sjos query "manager(||employee)" "$XML"
BAD="${TMPDIR:-/tmp}/sjos_smoke_bad.xml"
printf '<a><b></a>' > "$BAD"
expect_exit 2 "malformed xml" \
  run_sjos query "manager(//name)" "$BAD"

# invalid_request = 3: per-query knob out of range
expect_exit 3 "grid out of range" \
  run_sjos query "manager(//name)" "$XML" --grid 0

# budget_exhausted = 5: tuple ceiling fires during execution
expect_exit 5 "tuple budget exhausted" \
  run_sjos query "manager(//employee(/name))" "$XML" --max-tuples 1

# degradation is NOT an error: an over-budget exact search falls back to
# DPAP-EB, exits 0 and says so on stderr
note=$(run_sjos query "manager(//employee(/name))" "$XML" \
  --no-cache --max-expanded 1 2>&1 >/dev/null)
rc=$?
if [ "$rc" -eq 0 ] && printf '%s' "$note" | grep -q 'DPAP-EB'; then
  say "ok   budgeted search degrades with a note (exit 0)"
else
  say "FAIL degradation: exit $rc, stderr: $note"
  fails=$((fails + 1))
fi

rm -f "$BAD"
if [ "$fails" -eq 0 ]; then
  say "cli error smoke: all checks passed"
else
  say "cli error smoke: $fails check(s) FAILED"
  exit 1
fi
