(** Textual pattern syntax.

    Grammar (whitespace-insensitive):

    {v
      pattern  ::= step ( "order" "by" NAME )?
      step     ::= label ( "(" edge ("," edge)* ")" )?
      edge     ::= ("/" | "//") step
      label    ::= ("*" | TAG) predicate*
      predicate::= "[@" NAME "=" "'" VALUE "'" "]"      attribute equality
                 | "[.=" "'" VALUE "'" "]"              text equality
    v}

    Examples: ["manager(//employee(/name),//manager(/department(/name)))"],
    ["eNest[@aLevel='4'](//eNest[@aSixtyFour='3'])"],
    ["a(//b,//c) order by B"] (names [A], [B], ... refer to nodes in
    pre-order). *)

exception Syntax_error of { pos : int; message : string }

val pattern : string -> Pattern.t
(** Parse a pattern.  Raises {!Syntax_error}. *)

val pattern_opt : string -> (Pattern.t, string) result
(** Like {!pattern} but returning a readable error. *)
