lib/pattern/pattern.ml: Array Axes Buffer Candidate Char Fmt Fun List Printf Sjos_storage Sjos_xml String
