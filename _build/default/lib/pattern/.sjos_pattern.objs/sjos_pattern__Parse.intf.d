lib/pattern/parse.mli: Pattern
