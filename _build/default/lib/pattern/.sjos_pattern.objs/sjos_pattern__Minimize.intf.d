lib/pattern/minimize.mli: Pattern Sjos_storage
