lib/pattern/minimize.ml: Array Axes Candidate Fun Hashtbl List Pattern Sjos_storage Sjos_xml
