lib/pattern/pattern.mli: Axes Candidate Document Fmt Node Sjos_storage Sjos_xml
