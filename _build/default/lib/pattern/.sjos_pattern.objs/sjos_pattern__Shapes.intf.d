lib/pattern/shapes.mli: Axes Candidate Pattern Sjos_storage Sjos_xml
