lib/pattern/shapes.ml: Array Candidate List Pattern Printf Sjos_storage
