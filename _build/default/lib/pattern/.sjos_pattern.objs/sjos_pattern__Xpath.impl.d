lib/pattern/xpath.ml: Array Axes Candidate List Pattern Printf Sjos_storage Sjos_xml String
