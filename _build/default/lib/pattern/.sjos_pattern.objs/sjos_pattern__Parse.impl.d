lib/pattern/parse.ml: Array Axes Candidate Char List Pattern Printf Sjos_storage Sjos_xml String
