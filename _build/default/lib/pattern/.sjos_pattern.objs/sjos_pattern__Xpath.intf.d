lib/pattern/xpath.mli: Pattern
