open Sjos_storage

let path labels axes =
  let n = List.length labels in
  if List.length axes <> n - 1 then
    invalid_arg "Shapes.path: need one axis per edge";
  let edges = List.mapi (fun i axis -> (i, axis, i + 1)) axes in
  Pattern.create ~labels:(Array.of_list labels) ~edges:(Array.of_list edges) ()

let shape name ~nodes ~structure labels axes =
  if Array.length labels <> nodes then
    invalid_arg (Printf.sprintf "Shapes.%s: expected %d labels" name nodes);
  if Array.length axes <> nodes - 1 then
    invalid_arg (Printf.sprintf "Shapes.%s: expected %d axes" name (nodes - 1));
  let edges = Array.mapi (fun i (anc, desc) -> (anc, axes.(i), desc)) structure in
  Pattern.create ~labels ~edges ()

let a labels axes = shape "a" ~nodes:3 ~structure:[| (0, 1); (1, 2) |] labels axes

let b labels axes =
  shape "b" ~nodes:4 ~structure:[| (0, 1); (0, 2); (2, 3) |] labels axes

let c labels axes =
  shape "c" ~nodes:5 ~structure:[| (0, 1); (1, 2); (0, 3); (3, 4) |] labels axes

let d labels axes =
  shape "d" ~nodes:6
    ~structure:[| (0, 1); (1, 2); (0, 3); (3, 4); (4, 5) |]
    labels axes

let of_tags make tags axes =
  make
    (Array.of_list (List.map Candidate.of_tag tags))
    (Array.of_list axes)

let complete_tree ~fanout ~depth label axis =
  if fanout < 1 || depth < 0 then invalid_arg "Shapes.complete_tree";
  let labels = ref [] and edges = ref [] and next = ref 0 in
  let rec build d =
    let idx = !next in
    incr next;
    labels := label :: !labels;
    if d < depth then
      for _ = 1 to fanout do
        let child = build (d + 1) in
        edges := (idx, axis, child) :: !edges
      done;
    idx
  in
  let root = build 0 in
  assert (root = 0);
  (* edges were accumulated in reverse discovery order; any order is fine
     for Pattern.create as long as directions are root-to-leaf *)
  Pattern.create
    ~labels:(Array.of_list (List.rev !labels))
    ~edges:(Array.of_list (List.rev !edges))
    ()
