(** An XPath front end: compiles a practical subset of XPath into query
    pattern trees (the paper's §2.1: "XPath expressions used to bind
    variables in XQuery ... can be expressed as the matching of a query
    pattern tree").

    Supported grammar:

    {v
      xpath     ::= ("/" | "//") step ( ("/" | "//") step )*
      step      ::= nametest predicate*
      nametest  ::= NAME | "*"
      predicate ::= "[" expr "]"
      expr      ::= "@" NAME "=" string            attribute equality
                  | "." "=" string                 text equality
                  | rel-path ( "=" string )?       existence / value test
      rel-path  ::= ("/" | "//")? step ( ("/" | "//") step )*
      string    ::= "'" chars "'"
    v}

    Examples: [//manager//employee/name],
    [//manager[.//manager/department]/employee],
    [//eNest[@aLevel='4']//eNest[@aSixtyFour='3']],
    [//article[author='knuth']/title].

    The expression compiles to a pattern tree whose spine is the main
    location path and whose predicates become branches; the returned
    {e result node} is the pattern node for the final step (the node set an
    XPath engine would return), and the pattern's order-by is set to it so
    optimized plans deliver results in document order of the result node,
    as XPath semantics require. *)

exception Syntax_error of { pos : int; message : string }

val compile : string -> Pattern.t * int
(** [compile s] is the pattern tree plus the index of the result node.
    Raises {!Syntax_error} on unsupported or malformed input. *)

val compile_opt : string -> (Pattern.t * int, string) result
