(** Tree-pattern minimization (Amer-Yahia, Cho, Lakshmanan, Srivastava:
    "Minimization of Tree Pattern Queries", SIGMOD 2001) — the rewrite
    optimization the paper's §5 describes as "complementary to, and applied
    before, the cost-based access plan optimization that we consider".

    A branch of the pattern is redundant when a homomorphism maps it into
    the rest of the pattern: every label maps to a label at least as
    restrictive, parent-child edges map to parent-child edges, and
    ancestor-descendant edges map to arbitrary downward paths.  Removing a
    redundant branch changes neither the bindings of the remaining nodes
    nor, in particular, the query's result nodes — but it removes whole
    structural joins from the plan, which no join-order cleverness could.

    Because matches are tuples over pattern nodes, minimization is only
    applied to branches that contain no {e kept} node (the result/order-by
    nodes the caller still needs). *)

val label_subsumes :
  Sjos_storage.Candidate.spec -> Sjos_storage.Candidate.spec -> bool
(** [label_subsumes general specific]: every element matching [specific]
    also matches [general]. *)

val embeds : Pattern.t -> int -> int -> bool
(** [embeds pat a b] — is there a homomorphism from the subtree rooted at
    [a] into the subtree rooted at [b] mapping [a] to [b]? *)

val redundant_child : Pattern.t -> keep:int list -> (int * int) option
(** The first [(parent, child)] whose branch is redundant and free of kept
    nodes, if any. *)

val minimize : ?keep:int list -> Pattern.t -> Pattern.t * int array
(** Remove redundant branches until none is left.  [keep] defaults to the
    pattern's order-by node (if any).  Returns the minimized pattern and a
    map from old node indexes to new ones ([-1] for removed nodes).  The
    pattern root and kept nodes always survive. *)
