open Sjos_xml
open Sjos_storage

exception Syntax_error of { pos : int; message : string }

type state = { src : string; mutable pos : int }

let fail st message = raise (Syntax_error { pos = st.pos; message })
let eof st = st.pos >= String.length st.src
let peek st = if eof st then '\000' else st.src.[st.pos]

let peek2 st =
  if st.pos + 1 >= String.length st.src then '\000' else st.src.[st.pos + 1]

let skip_spaces st =
  while (not (eof st)) && peek st = ' ' do
    st.pos <- st.pos + 1
  done

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' -> true
  | _ -> false

let read_name st =
  skip_spaces st;
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then fail st "expected a name";
  String.sub st.src start (st.pos - start)

let read_string st =
  skip_spaces st;
  if peek st <> '\'' then fail st "expected a quoted string";
  st.pos <- st.pos + 1;
  let start = st.pos in
  while (not (eof st)) && peek st <> '\'' do
    st.pos <- st.pos + 1
  done;
  if eof st then fail st "unterminated string";
  let s = String.sub st.src start (st.pos - start) in
  st.pos <- st.pos + 1;
  s

(* Consume "/" or "//"; None when next token is not a path separator. *)
let read_axis st =
  skip_spaces st;
  if peek st <> '/' then None
  else begin
    st.pos <- st.pos + 1;
    if peek st = '/' then begin
      st.pos <- st.pos + 1;
      Some Axes.Descendant
    end
    else Some Axes.Child
  end

(* Growing pattern under construction. *)
type builder = {
  mutable labels : Candidate.spec list;  (* reversed *)
  mutable edges : (int * Axes.axis * int) list;
  mutable count : int;
}

let add_node b spec =
  b.labels <- spec :: b.labels;
  b.count <- b.count + 1;
  b.count - 1

let set_label b idx f =
  b.labels <-
    List.mapi (fun i l -> if i = b.count - 1 - idx then f l else l) b.labels

let nametest st =
  skip_spaces st;
  if peek st = '*' then begin
    st.pos <- st.pos + 1;
    None
  end
  else Some (read_name st)

(* step attached under [parent] via [axis]; returns the new node index *)
let rec step st b ~parent ~axis =
  let tag = nametest st in
  let idx = add_node b { Candidate.any with Candidate.tag } in
  (match parent with
  | Some p -> b.edges <- (p, axis, idx) :: b.edges
  | None -> ());
  predicates st b idx;
  idx

and predicates st b idx =
  skip_spaces st;
  if peek st = '[' then begin
    st.pos <- st.pos + 1;
    predicate st b idx;
    skip_spaces st;
    if peek st <> ']' then fail st "expected ']'";
    st.pos <- st.pos + 1;
    predicates st b idx
  end

and predicate st b idx =
  skip_spaces st;
  match peek st with
  | '@' ->
      st.pos <- st.pos + 1;
      let attr = read_name st in
      skip_spaces st;
      if peek st <> '=' then fail st "expected '=' after attribute";
      st.pos <- st.pos + 1;
      let value = read_string st in
      set_label b idx (fun l -> { l with Candidate.attr = Some (attr, value) })
  | '.' when peek2 st = '=' ->
      st.pos <- st.pos + 2;
      let value = read_string st in
      set_label b idx (fun l -> { l with Candidate.text = Some value })
  | _ ->
      (* relative path predicate: a branch of the pattern tree.  A leading
         '.' (the self step, as in [.//b]) is consumed first. *)
      if peek st = '.' && peek2 st = '/' then st.pos <- st.pos + 1;
      let axis =
        match read_axis st with
        | Some a -> a
        | None -> Axes.Child (* [b] means [./b] *)
      in
      let last = rel_path st b ~parent:idx ~axis in
      skip_spaces st;
      if peek st = '=' then begin
        st.pos <- st.pos + 1;
        let value = read_string st in
        set_label b last (fun l -> { l with Candidate.text = Some value })
      end

and rel_path st b ~parent ~axis =
  let idx = step st b ~parent:(Some parent) ~axis in
  match read_axis st with
  | Some next -> rel_path st b ~parent:idx ~axis:next
  | None -> idx

let compile src =
  let st = { src; pos = 0 } in
  let b = { labels = []; edges = []; count = 0 } in
  let axis =
    match read_axis st with
    | Some a -> a
    | None -> fail st "an absolute path must start with '/' or '//'"
  in
  (* the first step has no pattern parent; its axis relative to the
     document root is folded into the match semantics: '/a' binds only
     root elements, which we approximate by the tag test alone ('//a'
     and '/a' coincide when 'a' is the document root's tag) *)
  ignore axis;
  let rec spine parent axis =
    let idx = step st b ~parent ~axis in
    match read_axis st with
    | Some next -> spine (Some idx) next
    | None -> idx
  in
  let result = spine None Axes.Child in
  skip_spaces st;
  if not (eof st) then fail st "trailing input";
  let pattern =
    Pattern.create ~order_by:result
      ~labels:(Array.of_list (List.rev b.labels))
      ~edges:(Array.of_list (List.rev b.edges))
      ()
  in
  (pattern, result)

let compile_opt src =
  match compile src with
  | r -> Ok r
  | exception Syntax_error { pos; message } ->
      Error (Printf.sprintf "XPath error at %d: %s" pos message)
  | exception Invalid_argument m -> Error m
