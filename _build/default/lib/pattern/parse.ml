open Sjos_xml
open Sjos_storage

exception Syntax_error of { pos : int; message : string }

type state = { src : string; mutable pos : int }

let fail st message = raise (Syntax_error { pos = st.pos; message })
let eof st = st.pos >= String.length st.src
let peek st = if eof st then '\000' else st.src.[st.pos]

let skip_spaces st =
  while (not (eof st)) && (peek st = ' ' || peek st = '\t' || peek st = '\n') do
    st.pos <- st.pos + 1
  done

let expect st c =
  skip_spaces st;
  if peek st = c then st.pos <- st.pos + 1
  else fail st (Printf.sprintf "expected %C" c)

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' -> true
  | _ -> false

let read_name st =
  skip_spaces st;
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then fail st "expected a name";
  String.sub st.src start (st.pos - start)

let read_quoted st =
  expect st '\'';
  let start = st.pos in
  while (not (eof st)) && peek st <> '\'' do
    st.pos <- st.pos + 1
  done;
  if eof st then fail st "unterminated string";
  let s = String.sub st.src start (st.pos - start) in
  st.pos <- st.pos + 1;
  s

(* label ::= ("*" | TAG) predicate* *)
let read_label st =
  skip_spaces st;
  let tag =
    if peek st = '*' then begin
      st.pos <- st.pos + 1;
      None
    end
    else Some (read_name st)
  in
  let spec = ref { Candidate.any with tag } in
  let rec predicates () =
    skip_spaces st;
    if peek st = '[' then begin
      st.pos <- st.pos + 1;
      skip_spaces st;
      (match peek st with
      | '@' ->
          st.pos <- st.pos + 1;
          let attr = read_name st in
          expect st '=';
          let value = read_quoted st in
          spec := { !spec with Candidate.attr = Some (attr, value) }
      | '.' ->
          st.pos <- st.pos + 1;
          expect st '=';
          let value = read_quoted st in
          spec := { !spec with Candidate.text = Some value }
      | _ -> fail st "expected '@attr=' or '.=' in predicate");
      expect st ']';
      predicates ()
    end
  in
  predicates ();
  !spec

(* Parse into an accumulating node/edge list; returns the node index. *)
let rec read_step st nodes edges =
  let spec = read_label st in
  let idx = List.length !nodes in
  nodes := !nodes @ [ spec ];
  skip_spaces st;
  if peek st = '(' then begin
    st.pos <- st.pos + 1;
    let rec children () =
      skip_spaces st;
      let axis =
        if peek st <> '/' then fail st "expected '/' or '//'"
        else begin
          st.pos <- st.pos + 1;
          if peek st = '/' then begin
            st.pos <- st.pos + 1;
            Axes.Descendant
          end
          else Axes.Child
        end
      in
      let child = read_step st nodes edges in
      edges := (idx, axis, child) :: !edges;
      skip_spaces st;
      if peek st = ',' then begin
        st.pos <- st.pos + 1;
        children ()
      end
    in
    children ();
    expect st ')'
  end;
  idx

let node_of_name st n name =
  if String.length name = 1 && name.[0] >= 'A' && name.[0] <= 'Z' then begin
    let i = Char.code name.[0] - Char.code 'A' in
    if i >= n then fail st ("order-by node out of range: " ^ name);
    i
  end
  else fail st ("expected a node name A..Z, found " ^ name)

let pattern src =
  let st = { src; pos = 0 } in
  let nodes = ref [] and edges = ref [] in
  (* Tolerate a leading '//' or '/' before the root step. *)
  skip_spaces st;
  if peek st = '/' then begin
    st.pos <- st.pos + 1;
    if peek st = '/' then st.pos <- st.pos + 1
  end;
  let root = read_step st nodes edges in
  assert (root = 0);
  skip_spaces st;
  let order_by =
    if not (eof st) then begin
      let kw = read_name st in
      if not (String.equal (String.lowercase_ascii kw) "order") then
        fail st "trailing input; expected 'order by'";
      let by = read_name st in
      if not (String.equal (String.lowercase_ascii by) "by") then
        fail st "expected 'by'";
      Some (node_of_name st (List.length !nodes) (read_name st))
    end
    else None
  in
  skip_spaces st;
  if not (eof st) then fail st "trailing input";
  Pattern.create ?order_by
    ~labels:(Array.of_list !nodes)
    ~edges:(Array.of_list (List.rev !edges))
    ()

let pattern_opt src =
  match pattern src with
  | p -> Ok p
  | exception Syntax_error { pos; message } ->
      Error (Printf.sprintf "pattern syntax error at %d: %s" pos message)
  | exception Invalid_argument m -> Error m
