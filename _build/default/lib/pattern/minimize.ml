open Sjos_xml
open Sjos_storage

let option_subsumes general specific =
  match general with None -> true | Some _ -> general = specific

let label_subsumes (g : Candidate.spec) (s : Candidate.spec) =
  option_subsumes g.Candidate.tag s.Candidate.tag
  && option_subsumes g.Candidate.attr s.Candidate.attr
  && option_subsumes g.Candidate.text s.Candidate.text

(* All strict descendants of [b] in the pattern tree. *)
let strict_descendants pat b =
  let rec go i acc =
    List.fold_left
      (fun acc (c, _) -> go c (c :: acc))
      acc (Pattern.children_of pat i)
  in
  go b []

let embeds pat a b =
  let memo = Hashtbl.create 16 in
  let rec hom a b =
    match Hashtbl.find_opt memo (a, b) with
    | Some r -> r
    | None ->
        (* guard against cycles is unnecessary: the recursion strictly
           descends both subtrees *)
        let r =
          label_subsumes (Pattern.label pat a) (Pattern.label pat b)
          && List.for_all
               (fun (ca, (ea : Pattern.edge)) ->
                 match ea.Pattern.axis with
                 | Axes.Child ->
                     List.exists
                       (fun (cb, (eb : Pattern.edge)) ->
                         eb.Pattern.axis = Axes.Child && hom ca cb)
                       (Pattern.children_of pat b)
                 | Axes.Descendant ->
                     List.exists (fun d -> hom ca d) (strict_descendants pat b))
               (Pattern.children_of pat a)
        in
        Hashtbl.replace memo (a, b) r;
        r
  in
  hom a b

(* Is the branch rooted at [child] (attached to [parent] via [axis])
   redundant: can it embed elsewhere strictly below [parent], outside
   itself? *)
let branch_redundant pat parent (child, (edge : Pattern.edge)) =
  let in_branch = strict_descendants pat child in
  let in_branch = child :: in_branch in
  let candidates =
    match edge.Pattern.axis with
    | Axes.Child ->
        (* must map to another parent-child child of the same parent *)
        List.filter_map
          (fun (c, (e : Pattern.edge)) ->
            if c <> child && e.Pattern.axis = Axes.Child then Some c else None)
          (Pattern.children_of pat parent)
    | Axes.Descendant ->
        List.filter
          (fun d -> not (List.mem d in_branch))
          (strict_descendants pat parent)
  in
  List.exists (fun target -> embeds pat child target) candidates

let redundant_child pat ~keep =
  let contains_kept child =
    let members = child :: strict_descendants pat child in
    List.exists (fun k -> List.mem k members) keep
  in
  let result = ref None in
  for parent = 0 to Pattern.node_count pat - 1 do
    if !result = None then
      List.iter
        (fun (child, edge) ->
          if
            !result = None
            && (not (contains_kept child))
            && branch_redundant pat parent (child, edge)
          then result := Some (parent, child))
        (Pattern.children_of pat parent)
  done;
  !result

(* Rebuild the pattern without the subtree rooted at [drop]. *)
let remove_branch pat drop =
  let n = Pattern.node_count pat in
  let dead = drop :: strict_descendants pat drop in
  let mapping = Array.make n (-1) in
  let next = ref 0 in
  for i = 0 to n - 1 do
    if not (List.mem i dead) then begin
      mapping.(i) <- !next;
      incr next
    end
  done;
  let labels =
    Array.of_list
      (List.filter_map
         (fun i ->
           if mapping.(i) >= 0 then Some (Pattern.label pat i) else None)
         (List.init n Fun.id))
  in
  let edges =
    Pattern.edges pat
    |> List.filter_map (fun (e : Pattern.edge) ->
           if mapping.(e.Pattern.anc) >= 0 && mapping.(e.Pattern.desc) >= 0
           then
             Some (mapping.(e.Pattern.anc), e.Pattern.axis, mapping.(e.Pattern.desc))
           else None)
    |> Array.of_list
  in
  let order_by =
    match Pattern.order_by pat with
    | Some o when mapping.(o) >= 0 -> Some mapping.(o)
    | _ -> None
  in
  (Pattern.create ?order_by ~labels ~edges (), mapping)

let minimize ?keep pat =
  let keep =
    match keep with
    | Some k -> k
    | None -> ( match Pattern.order_by pat with Some o -> [ o ] | None -> [])
  in
  let compose outer inner =
    Array.map (fun v -> if v < 0 then -1 else outer.(v)) inner
  in
  let rec go pat mapping keep =
    match redundant_child pat ~keep with
    | None -> (pat, mapping)
    | Some (_, child) ->
        let pat', step = remove_branch pat child in
        let keep' = List.filter_map (fun k ->
            if step.(k) >= 0 then Some step.(k) else None) keep
        in
        go pat' (compose step mapping) keep'
  in
  let identity = Array.init (Pattern.node_count pat) Fun.id in
  go pat identity keep
