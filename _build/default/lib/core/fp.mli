(** The Fully-Pipelined optimizer (§3.4).

    Only sort-free plans are considered.  By Theorem 3.1 every pattern has
    a fully-pipelined plan producing results ordered by any chosen node, so
    the algorithm "picks the pattern up" at each node [N] in turn: it
    recursively finds, for each sub-pattern hanging off [N], the best
    pipelined plan ordered by that sub-pattern's root, then tries every
    order of joining the sub-patterns into [N]'s candidate list.  The join
    algorithm at each step is forced by pipelining (Stack-Tree-Anc when [N]
    is the ancestor side, Stack-Tree-Desc otherwise), so the output stays
    ordered by [N].

    Returns the cheapest fully-pipelined plan — optimal within the FP
    sub-space, generally close to the global optimum, and found while
    considering very few alternatives. *)

open Sjos_plan

val run : Search.ctx -> float * Plan.t
(** When the pattern has an order-by node the search is restricted to
    plans ordered by it (the [O(|E| * (f-1)!)] case); otherwise all root
    choices are compared. *)

val best_ordered_by : Search.ctx -> int -> float * Plan.t
(** Cheapest fully-pipelined plan whose output is ordered by the given
    pattern node. *)
