let all_plans ctx =
  let acc = ref [] in
  let rec go (s : Status.t) =
    if Status.is_final s then acc := Search.finalize ctx s :: !acc
    else List.iter go (Search.expand ctx s)
  in
  go
    (Status.start ~factors:ctx.Search.factors ~provider:ctx.Search.provider
       ctx.Search.pat);
  !acc

let optimal ctx =
  match all_plans ctx with
  | [] -> invalid_arg "Enumerate.optimal: no plans"
  | first :: rest ->
      List.fold_left
        (fun (bc, bp) (c, p) -> if c < bc then (c, p) else (bc, bp))
        first rest

let count ctx = List.length (all_plans ctx)
