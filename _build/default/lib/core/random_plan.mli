(** Random valid plan generation, used to quantify the impact of
    optimization ("bad plans", §4.2.1 of the paper).

    Plans are built by repeatedly picking a random remaining edge and a
    random join algorithm; inputs that are not ordered by the join node get
    an explicit sort, so every generated plan is valid — just usually
    expensive. *)

open Sjos_plan

val generate : Random.State.t -> Search.ctx -> float * Plan.t
(** One random finalized plan with its estimated cost. *)

val sample : ?seed:int -> Search.ctx -> int -> (float * Plan.t) list
(** [sample ctx k] — [k] independent random plans (deterministic for a
    given seed; default seed [42]). *)

val worst_of : ?seed:int -> Search.ctx -> int -> float * Plan.t
(** The most expensive of [k] random plans — the paper's "bad plan": not
    necessarily the worst possible, just a plan a naive system might pick.
    Raises [Invalid_argument] for [k < 1]. *)

val best_of : ?seed:int -> Search.ctx -> int -> float * Plan.t
(** The cheapest of [k] random plans (for sanity comparisons). *)
