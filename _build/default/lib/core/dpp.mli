(** Dynamic Programming with Pruning (§3.2) and its aggressively-pruned
    variants (§3.3).

    Best-first search over the status space:

    - {b Expanding Rule} — always expand the un-expanded status with the
      lowest [Cost + ubCost] (a priority queue);
    - {b Pruning Rule} — a status is dead once its [Cost] meets or exceeds
      the cost of the best complete plan found so far, and a status is not
      re-expanded when a cheaper path to the same status is known;
    - {b Lookahead Rule} (optional) — deadend statuses are never generated.

    The pruning rule only ever discards statuses that provably cannot lead
    to a better complete plan, so with [expansion_bound = None] and
    [left_deep = false] the result is optimal — identical in cost to
    {!Dp.run}.

    [expansion_bound = Some te] is DPAP-EB: at most [te] statuses are
    expanded per level, and saturating a level stops expansion of all
    shallower levels.  [left_deep = true] is DPAP-LD: only statuses with a
    single composite cluster (the "growing node") are generated. *)

open Sjos_plan

val run :
  ?lookahead:bool ->
  ?expansion_bound:int option ->
  ?left_deep:bool ->
  ?prioritize_by_ub:bool ->
  Search.ctx ->
  float * Plan.t
(** Defaults: [lookahead = true], [expansion_bound = None],
    [left_deep = false], [prioritize_by_ub = true] — i.e. plain DPP.
    [prioritize_by_ub = false] is an ablation: order expansion by
    accumulated [Cost] alone (Dijkstra-style) instead of [Cost + ubCost];
    still optimal, but complete plans are found later, so cost-based
    pruning fires later and more statuses are generated. *)
