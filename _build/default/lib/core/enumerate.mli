(** Exhaustive enumeration of the plan space, without memoization.

    Intended for tests on small patterns: it walks every sequence of moves
    (all join orders, both Stack-Tree algorithms, every useful output
    re-sort) and returns every finalized plan.  The minimum over this set is
    the ground-truth optimum that DP and DPP must match.  Cost is
    exponential — keep patterns at or below ~6 nodes. *)

open Sjos_plan

val all_plans : Search.ctx -> (float * Plan.t) list
(** Every complete finalized plan (duplicates possible when different move
    interleavings build the same tree). *)

val optimal : Search.ctx -> float * Plan.t
(** The cheapest plan of {!all_plans}. *)

val count : Search.ctx -> int
