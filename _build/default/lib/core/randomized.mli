(** Randomized join-order search — Iterative Improvement and Simulated
    Annealing in the style of Steinbrunn/Moerkotte/Kemper (VLDB J. 1997),
    which the paper's related-work section cites as the relational
    alternative to exhaustive enumeration.

    Both walk the space of complete move sequences: a plan is encoded as
    the list of random decisions (edge, algorithm, re-sort) taken while
    transforming the start status into a final status; a {e neighbor}
    re-randomizes the decision suffix from a random position, i.e. keeps a
    prefix of the join order and replans the rest.  Cost is the same
    finalized status cost the exact algorithms use, so results are directly
    comparable with {!Dp}/{!Dpp}.

    Neither algorithm is part of the paper's five; they serve as ablation
    baselines showing what the exact/pruned searches buy. *)

open Sjos_plan

val iterative_improvement :
  ?seed:int -> ?restarts:int -> ?max_stall:int -> Search.ctx -> float * Plan.t
(** Hill-climb from a random plan, moving to strictly cheaper neighbors;
    restart from scratch [restarts] times (default 5) and stop a climb
    after [max_stall] (default 30) non-improving neighbors.  Each costed
    candidate bumps the context's [considered] counter. *)

val simulated_annealing :
  ?seed:int ->
  ?initial_temperature:float ->
  ?cooling:float ->
  ?steps:int ->
  Search.ctx ->
  float * Plan.t
(** Classic annealing: accept a worse neighbor with probability
    [exp (-delta / temperature)]; temperature starts at
    [initial_temperature * cost(start plan)] (factor default 0.1) and is
    multiplied by [cooling] (default 0.95) every step, for [steps]
    (default 200) steps.  Returns the best plan ever visited. *)
