(** Exhaustive Dynamic Programming (§3.1).

    Level-wise search: all statuses on level [k-1] are expanded before any
    status on level [k] is considered; when the same status is reached along
    several paths only the cheapest is retained.  Explores the entire
    solution space — bushy plans included — and is therefore guaranteed to
    return an optimal plan under the cost model. *)

open Sjos_plan

val run : Search.ctx -> float * Plan.t
(** Returns the optimal finalized cost and plan.  The context's counters
    record the search effort. *)
