type 'a entry = { prio : float; serial : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_serial : int;  (* FIFO tie-break for equal priorities *)
}

let create () = { data = [||]; size = 0; next_serial = 0 }
let is_empty t = t.size = 0
let length t = t.size

let less a b =
  a.prio < b.prio || (a.prio = b.prio && a.serial < b.serial)

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t.data.(i) t.data.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && less t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.size && less t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t prio value =
  let entry = { prio; serial = t.next_serial; value } in
  t.next_serial <- t.next_serial + 1;
  if t.size = Array.length t.data then begin
    let cap = max 16 (2 * Array.length t.data) in
    let data = Array.make cap entry in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some (top.prio, top.value)
  end

let peek t = if t.size = 0 then None else Some (t.data.(0).prio, t.data.(0).value)
