lib/core/pq.ml: Array
