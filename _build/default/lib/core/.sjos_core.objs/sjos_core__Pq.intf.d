lib/core/pq.mli:
