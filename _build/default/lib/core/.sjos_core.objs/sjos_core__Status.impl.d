lib/core/status.ml: Cost_model Costing Fmt Fun List Pattern Plan Sjos_cost Sjos_pattern Sjos_plan String
