lib/core/dp.mli: Plan Search Sjos_plan
