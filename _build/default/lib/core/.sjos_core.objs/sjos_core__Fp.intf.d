lib/core/fp.mli: Plan Search Sjos_plan
