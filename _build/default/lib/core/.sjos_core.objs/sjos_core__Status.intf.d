lib/core/status.mli: Costing Fmt Pattern Plan Sjos_cost Sjos_pattern Sjos_plan
