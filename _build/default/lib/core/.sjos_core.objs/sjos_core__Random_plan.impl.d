lib/core/random_plan.ml: Cost_model Costing List Pattern Plan Random Search Sjos_cost Sjos_pattern Sjos_plan Status
