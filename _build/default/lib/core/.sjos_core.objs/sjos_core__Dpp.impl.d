lib/core/dpp.ml: Array Fp Hashtbl List Pattern Pq Search Sjos_pattern Status
