lib/core/fp.ml: Cost_model Costing Hashtbl List Option Pattern Plan Search Sjos_cost Sjos_pattern Sjos_plan
