lib/core/random_plan.mli: Plan Random Search Sjos_plan
