lib/core/randomized.ml: Cost_model Costing Float List Option Pattern Plan Random Search Sjos_cost Sjos_pattern Sjos_plan Status
