lib/core/dp.ml: Hashtbl List Pattern Search Sjos_pattern Status
