lib/core/enumerate.ml: List Search Status
