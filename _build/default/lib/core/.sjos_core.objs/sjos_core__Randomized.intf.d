lib/core/randomized.mli: Plan Search Sjos_plan
