lib/core/enumerate.mli: Plan Search Sjos_plan
