lib/core/optimizer.ml: Dp Dpp Explain Fmt Fp Pattern Plan Printf Search Sjos_pattern Sjos_plan Unix
