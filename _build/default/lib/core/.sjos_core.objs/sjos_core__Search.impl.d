lib/core/search.ml: Array Cost_model Costing List Pattern Plan Sjos_cost Sjos_pattern Sjos_plan Status
