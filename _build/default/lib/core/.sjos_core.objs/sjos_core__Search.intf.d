lib/core/search.mli: Costing Pattern Plan Sjos_cost Sjos_pattern Sjos_plan Status
