lib/core/dpp.mli: Plan Search Sjos_plan
