(** A minimal binary min-heap keyed by float priority, used as DPP's
    priority list of un-expanded statuses. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int
val push : 'a t -> float -> 'a -> unit
val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority element. *)

val peek : 'a t -> (float * 'a) option
