open Sjos_pattern
open Sjos_cost
open Sjos_plan

type cluster = { mask : int; order : int; plan : Plan.t; card : float }
type t = { clusters : cluster list; joined : int; cost : float }
type key = (int * int) list

let key t = List.map (fun c -> (c.mask, c.order)) t.clusters

let popcount m =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go m 0

let level t = popcount t.joined
let is_final t = match t.clusters with [ _ ] -> true | _ -> false

let cluster_of t node =
  List.find (fun c -> c.mask land (1 lsl node) <> 0) t.clusters

let start ~factors ~provider pat =
  let n = Pattern.node_count pat in
  let clusters = ref [] in
  let cost = ref 0.0 in
  for i = n - 1 downto 0 do
    let card = provider.Costing.node_card i in
    cost := !cost +. Cost_model.index_access factors card;
    clusters :=
      { mask = 1 lsl i; order = i; plan = Plan.scan i; card } :: !clusters
  done;
  { clusters = !clusters; joined = 0; cost = !cost }

let multi_cluster_count t =
  List.length (List.filter (fun c -> popcount c.mask > 1) t.clusters)

let pp pat ppf t =
  let pp_cluster ppf c =
    let members =
      List.filter_map
        (fun i ->
          if c.mask land (1 lsl i) <> 0 then Some (Pattern.name pat i) else None)
        (List.init (Pattern.node_count pat) Fun.id)
    in
    Fmt.pf ppf "{%s|by %s}" (String.concat "" members) (Pattern.name pat c.order)
  in
  Fmt.pf ppf "@[%a cost=%.1f@]" (Fmt.list ~sep:Fmt.sp pp_cluster) t.clusters
    t.cost
