open Sjos_pattern
open Sjos_plan

type algorithm =
  | Dp
  | Dpp
  | Dpp_no_lookahead
  | Dpap_eb of int
  | Dpap_ld
  | Fp

let name = function
  | Dp -> "DP"
  | Dpp -> "DPP"
  | Dpp_no_lookahead -> "DPP'"
  | Dpap_eb te -> Printf.sprintf "DPAP-EB(%d)" te
  | Dpap_ld -> "DPAP-LD"
  | Fp -> "FP"

let default_te pat = Pattern.edge_count pat
let all pat = [ Dp; Dpp; Dpap_eb (default_te pat); Dpap_ld; Fp ]

type result = {
  algorithm : algorithm;
  plan : Plan.t;
  est_cost : float;
  plans_considered : int;
  statuses_generated : int;
  statuses_expanded : int;
  opt_seconds : float;
}

let now () = Unix.gettimeofday ()

let optimize ?factors ~provider algorithm pat =
  let ctx = Search.make_ctx ?factors ~provider pat in
  let t0 = now () in
  let est_cost, plan =
    match algorithm with
    | Dp -> Dp.run ctx
    | Dpp -> Dpp.run ctx
    | Dpp_no_lookahead -> Dpp.run ~lookahead:false ctx
    | Dpap_eb te -> Dpp.run ~expansion_bound:(Some te) ctx
    | Dpap_ld -> Dpp.run ~left_deep:true ctx
    | Fp -> Fp.run ctx
  in
  let opt_seconds = now () -. t0 in
  {
    algorithm;
    plan;
    est_cost;
    plans_considered = ctx.Search.considered;
    statuses_generated = ctx.Search.generated;
    statuses_expanded = ctx.Search.expanded;
    opt_seconds;
  }

let pp_result pat ppf r =
  Fmt.pf ppf "@[<v>%s: est_cost=%.1f considered=%d opt=%.4fs@,%s@]"
    (name r.algorithm) r.est_cost r.plans_considered r.opt_seconds
    (Explain.to_string pat r.plan)
