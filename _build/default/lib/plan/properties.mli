(** Structural properties of plans: validity for a pattern, plan shape
    (left-deep vs bushy), and pipelining (blocking vs fully pipelined). *)

open Sjos_pattern

val validate : Pattern.t -> Plan.t -> (unit, string) result
(** A plan is valid for a pattern when:
    - each pattern node is scanned exactly once and each edge joined
      exactly once;
    - each join's ancestor side binds [edge.anc] ordered by it, and its
      descendant side binds [edge.desc] ordered by it (the Stack-Tree input
      requirement);
    - sorts reorder by a node bound in their input. *)

val is_valid : Pattern.t -> Plan.t -> bool

val is_fully_pipelined : Plan.t -> bool
(** No sort operator anywhere — every intermediate result streams. *)

val is_left_deep : Plan.t -> bool
(** Every join has at most one non-leaf input (sorts are transparent).
    A single scan counts as left-deep. *)

val is_bushy : Plan.t -> bool
(** Some join combines two composite inputs. *)

val covers : Pattern.t -> Plan.t -> bool
(** Does the plan bind every pattern node? *)
