(** Human-readable plan rendering, in the spirit of SQL [EXPLAIN]. *)

open Sjos_pattern

val to_string : Pattern.t -> Plan.t -> string
(** Multi-line operator tree, e.g.:

    {v
      STJ-Anc A//B -> ordered by A
      +- IdxScan A (manager)
      +- Sort by B
         +- STJ-Desc B/C -> ordered by C
            ...
    v} *)

val with_costs :
  Sjos_cost.Cost_model.factors ->
  Costing.provider ->
  Pattern.t ->
  Plan.t ->
  string
(** Like {!to_string} with per-operator estimated cardinalities and costs. *)

val one_line : Pattern.t -> Plan.t -> string
(** Compact nested form, e.g. ["((A anc B) desc (C))"], for logs and test
    failure messages. *)
