lib/plan/properties.ml: Pattern Plan Printf Result Sjos_pattern
