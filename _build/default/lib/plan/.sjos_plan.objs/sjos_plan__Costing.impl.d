lib/plan/costing.ml: Cost_model Plan Sjos_cost
