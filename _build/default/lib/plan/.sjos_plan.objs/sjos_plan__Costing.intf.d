lib/plan/costing.mli: Pattern Plan Sjos_cost Sjos_pattern
