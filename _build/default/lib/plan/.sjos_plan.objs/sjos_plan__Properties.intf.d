lib/plan/properties.mli: Pattern Plan Sjos_pattern
