lib/plan/plan.ml: Fmt Pattern Sjos_pattern
