lib/plan/plan_io.mli: Pattern Plan Sjos_pattern
