lib/plan/explain.mli: Costing Pattern Plan Sjos_cost Sjos_pattern
