lib/plan/plan_io.ml: List Pattern Plan Printf Sjos_pattern String
