lib/plan/plan.mli: Fmt Pattern Sjos_pattern
