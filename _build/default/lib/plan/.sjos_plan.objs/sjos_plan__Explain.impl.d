lib/plan/explain.ml: Axes Buffer Candidate Costing Pattern Plan Printf Sjos_pattern Sjos_storage Sjos_xml
