(** Plan cost computation against a cardinality provider.

    The provider abstracts over where cardinalities come from: the
    positional-histogram estimator during optimization, or an exact oracle
    in tests.  Clusters are bit masks of pattern nodes (bit [i] = node [i]). *)

open Sjos_pattern

type provider = {
  node_card : int -> float;  (** candidate-set size of a pattern node *)
  cluster_card : int -> float;  (** estimated matches of a cluster mask *)
}

val constant_provider : float -> provider
(** Every node and cluster has the given cardinality; for tests. *)

val cost : Sjos_cost.Cost_model.factors -> provider -> Pattern.t -> Plan.t -> float
(** Total estimated cost: index access for every scan, the Stack-Tree
    formula for every join (with [|A|] the ancestor-side cluster
    cardinality and [|AB|] the output cluster cardinality), and
    [n log n] for every sort. *)

val operator_cost :
  Sjos_cost.Cost_model.factors -> provider -> Plan.t -> float
(** Cost of the root operator of the given (sub-)plan alone. *)
