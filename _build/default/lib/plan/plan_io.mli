(** Textual plan serialization — a stable, re-parseable format so chosen
    plans can be logged, cached across sessions, diffed in tests, or fed
    back to the executor ("plan hints").

    Grammar (node names are the pattern's [A], [B], ... display names):

    {v
      plan ::= (scan NODE)
             | (sort NODE plan)
             | (anc NODE NODE plan plan)      Stack-Tree-Anc on edge N1-N2
             | (desc NODE NODE plan plan)     Stack-Tree-Desc on edge N1-N2
    v}

    Round-trip guarantee: [of_string pat (to_string pat plan) = Ok plan]
    for every plan that is valid for [pat]. *)

open Sjos_pattern

val to_string : Pattern.t -> Plan.t -> string

val of_string : Pattern.t -> string -> (Plan.t, string) result
(** Parse and structurally validate against the pattern (unknown node
    names, non-edges and malformed syntax are reported; full plan validity
    is the caller's concern — use {!Properties.validate}). *)
