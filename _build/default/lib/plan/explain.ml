open Sjos_xml
open Sjos_storage
open Sjos_pattern

let describe pat = function
  | Plan.Index_scan i ->
      Printf.sprintf "IdxScan %s (%s)" (Pattern.name pat i)
        (Candidate.spec_to_string (Pattern.label pat i))
  | Plan.Sort { by; _ } -> Printf.sprintf "Sort by %s" (Pattern.name pat by)
  | Plan.Structural_join { edge; algo; _ } as op ->
      Printf.sprintf "%s %s%s%s -> ordered by %s" (Plan.algo_to_string algo)
        (Pattern.name pat edge.Pattern.anc)
        (Axes.axis_to_string edge.Pattern.axis)
        (Pattern.name pat edge.Pattern.desc)
        (Pattern.name pat (Plan.ordered_by op))

let render annotate pat plan =
  let buf = Buffer.create 256 in
  let rec emit prefix plan =
    Buffer.add_string buf prefix;
    Buffer.add_string buf (describe pat plan);
    Buffer.add_string buf (annotate plan);
    Buffer.add_char buf '\n';
    let child = prefix ^ "  " in
    match plan with
    | Plan.Index_scan _ -> ()
    | Plan.Sort { input; _ } -> emit child input
    | Plan.Structural_join { anc_side; desc_side; _ } ->
        emit child anc_side;
        emit child desc_side
  in
  emit "" plan;
  Buffer.contents buf

let to_string pat plan = render (fun _ -> "") pat plan

let with_costs factors provider pat plan =
  let annotate op =
    let card = provider.Costing.cluster_card (Plan.nodes_mask op) in
    Printf.sprintf "  [card~%.0f cost~%.1f]" card
      (Costing.operator_cost factors provider op)
  in
  render annotate pat plan

let one_line pat plan =
  let buf = Buffer.create 64 in
  let rec emit = function
    | Plan.Index_scan i -> Buffer.add_string buf (Pattern.name pat i)
    | Plan.Sort { input; by } ->
        Buffer.add_string buf "sort[";
        Buffer.add_string buf (Pattern.name pat by);
        Buffer.add_string buf "](";
        emit input;
        Buffer.add_char buf ')'
    | Plan.Structural_join { anc_side; desc_side; algo; _ } ->
        Buffer.add_char buf '(';
        emit anc_side;
        Buffer.add_string buf
          (match algo with
          | Plan.Stack_tree_anc -> " anc "
          | Plan.Stack_tree_desc -> " desc ");
        emit desc_side;
        Buffer.add_char buf ')'
  in
  emit plan;
  Buffer.contents buf
