(** XML element nodes with interval (region) encoding.

    Every element of a document carries a [(start_pos, end_pos, level)]
    triple assigned by a depth-first pre-order traversal.  The encoding
    supports constant-time structural predicates: a node [d] is a descendant
    of [a] iff [a.start_pos < d.start_pos] and [d.end_pos < a.end_pos];
    it is a child iff additionally [d.level = a.level + 1].  This is the
    numbering scheme used by the Stack-Tree structural join algorithms
    (Al-Khalifa et al., ICDE 2002) on which the paper's optimizer rests. *)

type t = {
  id : int;  (** pre-order rank of the element; index into the document *)
  tag : string;  (** element tag name *)
  start_pos : int;  (** pre-order begin position *)
  end_pos : int;  (** position after all descendants *)
  level : int;  (** depth; the root element has level 0 *)
  parent : int;  (** [id] of the parent element, or [-1] for the root *)
  attrs : (string * string) list;  (** attributes in document order *)
  text : string;  (** concatenation of the direct text children *)
}

val root_parent : int
(** Parent id used by the document root ([-1]). *)

val attr : t -> string -> string option
(** [attr n name] is the value of attribute [name] of [n], if present. *)

val has_attr_value : t -> string -> string -> bool
(** [has_attr_value n name v] tests whether [n] carries [name="v"]. *)

val compare_start : t -> t -> int
(** Compare by [start_pos] (document order). *)

val width : t -> int
(** [width n] is [end_pos - start_pos], a proxy for subtree size. *)

val pp : t Fmt.t
(** Debug printer: [tag@[start,end)lvl]. *)
