type open_frame = {
  o_id : int;
  o_tag : string;
  o_start : int;
  o_level : int;
  o_parent : int;
  o_attrs : (string * string) list;
  mutable o_text : Buffer.t;
}

type t = {
  mutable pos : int;  (* next position to hand out *)
  mutable next_id : int;
  mutable stack : open_frame list;
  mutable closed : bool;  (* a root has been fully closed *)
  finished : (int, Node.t) Hashtbl.t;  (* id -> node, filled at close *)
}

let create () =
  { pos = 0; next_id = 0; stack = []; closed = false; finished = Hashtbl.create 64 }

let open_element ?(attrs = []) t tag =
  (match (t.stack, t.closed) with
  | [], true -> invalid_arg "Builder.open_element: second root"
  | _ -> ());
  let parent = match t.stack with [] -> Node.root_parent | f :: _ -> f.o_id in
  let level = match t.stack with [] -> 0 | f :: _ -> f.o_level + 1 in
  let frame =
    {
      o_id = t.next_id;
      o_tag = tag;
      o_start = t.pos;
      o_level = level;
      o_parent = parent;
      o_attrs = attrs;
      o_text = Buffer.create 8;
    }
  in
  t.next_id <- t.next_id + 1;
  t.pos <- t.pos + 1;
  t.stack <- frame :: t.stack

let text t s =
  match t.stack with
  | [] -> invalid_arg "Builder.text: no open element"
  | f :: _ -> Buffer.add_string f.o_text s

let close_element t =
  match t.stack with
  | [] -> invalid_arg "Builder.close_element: no open element"
  | f :: rest ->
      let node =
        {
          Node.id = f.o_id;
          tag = f.o_tag;
          start_pos = f.o_start;
          end_pos = t.pos;
          level = f.o_level;
          parent = f.o_parent;
          attrs = f.o_attrs;
          text = Buffer.contents f.o_text;
        }
      in
      t.pos <- t.pos + 1;
      Hashtbl.replace t.finished f.o_id node;
      t.stack <- rest;
      if rest = [] then t.closed <- true

let leaf ?attrs ?text:(txt = "") t tag =
  open_element ?attrs t tag;
  if txt <> "" then text t txt;
  close_element t

let depth t = List.length t.stack

let finish t =
  if t.stack <> [] then invalid_arg "Builder.finish: unclosed elements";
  if not t.closed then invalid_arg "Builder.finish: no root element";
  let n = t.next_id in
  let arr =
    Array.init n (fun i ->
        match Hashtbl.find_opt t.finished i with
        | Some node -> node
        | None -> invalid_arg "Builder.finish: missing node")
  in
  Document.of_nodes arr
