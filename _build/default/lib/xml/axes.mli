(** Constant-time structural predicates over the interval encoding, and the
    axis vocabulary used by pattern edges. *)

type axis =
  | Child  (** the [/] edge: parent-child *)
  | Descendant  (** the [//] edge: ancestor-descendant, any depth *)

val axis_to_string : axis -> string
val pp_axis : axis Fmt.t

val is_ancestor : Node.t -> Node.t -> bool
(** [is_ancestor a d] — [a] properly contains [d]. *)

val is_parent : Node.t -> Node.t -> bool
val is_descendant : Node.t -> Node.t -> bool
val is_child : Node.t -> Node.t -> bool

val related : axis -> anc:Node.t -> desc:Node.t -> bool
(** [related axis ~anc ~desc] tests the containment required by a pattern
    edge with the given axis. *)

val disjoint : Node.t -> Node.t -> bool
(** Neither node contains the other. *)

val document_order : Node.t -> Node.t -> int
(** Total order by [start_pos]. *)
