type t = {
  id : int;
  tag : string;
  start_pos : int;
  end_pos : int;
  level : int;
  parent : int;
  attrs : (string * string) list;
  text : string;
}

let root_parent = -1
let attr n name = List.assoc_opt name n.attrs

let has_attr_value n name v =
  match attr n name with Some v' -> String.equal v v' | None -> false

let compare_start a b = compare a.start_pos b.start_pos
let width n = n.end_pos - n.start_pos

let pp ppf n =
  Fmt.pf ppf "%s[%d,%d)l%d" n.tag n.start_pos n.end_pos n.level
