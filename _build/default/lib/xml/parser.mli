(** A minimal, dependency-free XML parser.

    Supports the subset needed by the data sets and examples: elements,
    attributes (single- or double-quoted), character data, self-closing
    tags, comments, processing instructions, an optional XML declaration,
    and the five predefined entities ([&amp;lt;] etc.) plus decimal/hex
    character references.  DTDs, namespaces and CDATA sections beyond
    pass-through are out of scope. *)

exception Parse_error of { line : int; col : int; message : string }

val parse_string : string -> Document.t
(** Parse a complete document from a string.
    Raises {!Parse_error} on malformed input. *)

val parse_file : string -> Document.t
(** Parse a document from a file.  Raises {!Parse_error} or [Sys_error]. *)

val error_to_string : exn -> string option
(** Human-readable rendering of {!Parse_error}; [None] for other
    exceptions. *)
