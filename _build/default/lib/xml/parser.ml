exception Parse_error of { line : int; col : int; message : string }

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let make src = { src; pos = 0; line = 1; col = 1 }
let eof st = st.pos >= String.length st.src
let peek st = if eof st then '\000' else st.src.[st.pos]

let peek2 st =
  if st.pos + 1 >= String.length st.src then '\000' else st.src.[st.pos + 1]

let advance st =
  if not (eof st) then begin
    (if st.src.[st.pos] = '\n' then begin
       st.line <- st.line + 1;
       st.col <- 1
     end
     else st.col <- st.col + 1);
    st.pos <- st.pos + 1
  end

let fail st message = raise (Parse_error { line = st.line; col = st.col; message })

let expect st c =
  if peek st = c then advance st
  else fail st (Printf.sprintf "expected %C, found %C" c (peek st))

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let is_name_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
  | _ -> false

let is_name_char c =
  is_name_start c || (match c with '0' .. '9' | '-' | '.' -> true | _ -> false)

let skip_spaces st =
  while (not (eof st)) && is_space (peek st) do
    advance st
  done

let read_name st =
  if not (is_name_start (peek st)) then fail st "expected a name";
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

(* Decode an entity starting just after '&'. *)
let read_entity st =
  let start = st.pos in
  while (not (eof st)) && peek st <> ';' do
    advance st
  done;
  if eof st then fail st "unterminated entity";
  let name = String.sub st.src start (st.pos - start) in
  advance st;
  match name with
  | "lt" -> "<"
  | "gt" -> ">"
  | "amp" -> "&"
  | "apos" -> "'"
  | "quot" -> "\""
  | _ ->
      let decode prefix base =
        let digits = String.sub name (String.length prefix) (String.length name - String.length prefix) in
        match int_of_string_opt (base ^ digits) with
        | Some code when code >= 0 && code < 128 -> String.make 1 (Char.chr code)
        | Some _ -> "?" (* non-ASCII: keep documents byte-oriented *)
        | None -> fail st ("bad character reference &" ^ name ^ ";")
      in
      if String.length name > 2 && name.[0] = '#' && (name.[1] = 'x' || name.[1] = 'X')
      then decode "#x" "0x"
      else if String.length name > 1 && name.[0] = '#' then decode "#" ""
      else fail st ("unknown entity &" ^ name ^ ";")

let read_quoted st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then fail st "expected quoted value";
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    if eof st then fail st "unterminated attribute value"
    else if peek st = quote then advance st
    else if peek st = '&' then begin
      advance st;
      Buffer.add_string buf (read_entity st);
      go ()
    end
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      go ()
    end
  in
  go ();
  Buffer.contents buf

let read_attrs st =
  let rec go acc =
    skip_spaces st;
    if is_name_start (peek st) then begin
      let name = read_name st in
      skip_spaces st;
      expect st '=';
      skip_spaces st;
      let value = read_quoted st in
      go ((name, value) :: acc)
    end
    else List.rev acc
  in
  go []

let skip_until st target =
  let tlen = String.length target in
  let rec go () =
    if st.pos + tlen > String.length st.src then fail st ("unterminated " ^ target)
    else if String.sub st.src st.pos tlen = target then
      for _ = 1 to tlen do
        advance st
      done
    else begin
      advance st;
      go ()
    end
  in
  go ()

(* Skip <?...?>, <!--...-->, <!DOCTYPE...> between markup. *)
let rec skip_misc st =
  skip_spaces st;
  if peek st = '<' then
    match peek2 st with
    | '?' ->
        skip_until st "?>";
        skip_misc st
    | '!' ->
        if st.pos + 3 < String.length st.src && String.sub st.src st.pos 4 = "<!--"
        then skip_until st "-->"
        else skip_until st ">";
        skip_misc st
    | _ -> ()

let parse_string src =
  let st = make src in
  let builder = Builder.create () in
  skip_misc st;
  if eof st then fail st "empty document";
  let rec element () =
    expect st '<';
    let tag = read_name st in
    let attrs = read_attrs st in
    skip_spaces st;
    if peek st = '/' then begin
      advance st;
      expect st '>';
      Builder.leaf ~attrs builder tag
    end
    else begin
      expect st '>';
      Builder.open_element ~attrs builder tag;
      content tag;
      Builder.close_element builder
    end
  and content tag =
    if eof st then fail st ("unterminated element <" ^ tag ^ ">")
    else if peek st = '<' then
      match peek2 st with
      | '/' ->
          advance st;
          advance st;
          let closing = read_name st in
          skip_spaces st;
          expect st '>';
          if not (String.equal closing tag) then
            fail st (Printf.sprintf "mismatched </%s>, expected </%s>" closing tag)
      | '!' ->
          if st.pos + 8 < String.length st.src && String.sub st.src st.pos 9 = "<![CDATA["
          then begin
            st.pos <- st.pos + 9;
            let start = st.pos in
            skip_until st "]]>";
            Builder.text builder (String.sub st.src start (st.pos - 3 - start))
          end
          else skip_until st "-->";
          content tag
      | '?' ->
          skip_until st "?>";
          content tag
      | _ ->
          element ();
          content tag
    else if peek st = '&' then begin
      advance st;
      Builder.text builder (read_entity st);
      content tag
    end
    else begin
      let start = st.pos in
      while (not (eof st)) && peek st <> '<' && peek st <> '&' do
        advance st
      done;
      let chunk = String.sub st.src start (st.pos - start) in
      if String.exists (fun c -> not (is_space c)) chunk then
        Builder.text builder (String.trim chunk);
      content tag
    end
  in
  element ();
  skip_misc st;
  skip_spaces st;
  if not (eof st) then fail st "content after root element";
  Builder.finish builder

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse_string (really_input_string ic (in_channel_length ic)))

let error_to_string = function
  | Parse_error { line; col; message } ->
      Some (Printf.sprintf "XML parse error at %d:%d: %s" line col message)
  | _ -> None
