(** Serialization of documents back to XML text. *)

val escape_text : string -> string
(** Escape [&], [<] and [>] for character data. *)

val escape_attr : string -> string
(** Escape ampersand, angle brackets and double quotes for attribute
    values. *)

val to_buffer : ?indent:bool -> Buffer.t -> Document.t -> unit
(** Serialize the whole document.  With [~indent:true] (default) each
    element starts on its own line, indented two spaces per level. *)

val to_string : ?indent:bool -> Document.t -> string
val to_file : ?indent:bool -> string -> Document.t -> unit

val subtree_to_string : Document.t -> Node.t -> string
(** Serialize only the subtree rooted at the given node (no indentation). *)
