let escape buf ~attr s =
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' when attr -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s

let escape_text s =
  let buf = Buffer.create (String.length s) in
  escape buf ~attr:false s;
  Buffer.contents buf

let escape_attr s =
  let buf = Buffer.create (String.length s) in
  escape buf ~attr:true s;
  Buffer.contents buf

let write_subtree ?(indent = false) buf doc (root : Node.t) =
  let rec emit (n : Node.t) depth =
    if indent then begin
      if n.Node.id <> root.Node.id then Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * depth) ' ')
    end;
    Buffer.add_char buf '<';
    Buffer.add_string buf n.Node.tag;
    List.iter
      (fun (k, v) ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf k;
        Buffer.add_string buf "=\"";
        escape buf ~attr:true v;
        Buffer.add_char buf '"')
      n.Node.attrs;
    let kids = Document.children doc n in
    if kids = [] && n.Node.text = "" then Buffer.add_string buf "/>"
    else begin
      Buffer.add_char buf '>';
      escape buf ~attr:false n.Node.text;
      List.iter (fun k -> emit k (depth + 1)) kids;
      if indent && kids <> [] then begin
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make (2 * depth) ' ')
      end;
      Buffer.add_string buf "</";
      Buffer.add_string buf n.Node.tag;
      Buffer.add_char buf '>'
    end
  in
  emit root 0

let to_buffer ?(indent = true) buf doc =
  write_subtree ~indent buf doc (Document.root doc)

let to_string ?indent doc =
  let buf = Buffer.create 1024 in
  to_buffer ?indent buf doc;
  Buffer.contents buf

let to_file ?indent path doc =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string ?indent doc))

let subtree_to_string doc n =
  let buf = Buffer.create 256 in
  write_subtree buf doc n;
  Buffer.contents buf
