(** Imperative construction of documents with automatic interval numbering.

    The builder assigns [(start_pos, end_pos, level)] as elements are opened
    and closed, so generators and the parser never compute positions by
    hand.  Usage:

    {[
      let b = Builder.create () in
      Builder.open_element b "dblp";
      Builder.open_element b ~attrs:[ ("key", "x") ] "article";
      Builder.text b "...";
      Builder.close_element b;
      Builder.close_element b;
      let doc = Builder.finish b
    ]} *)

type t

val create : unit -> t

val open_element : ?attrs:(string * string) list -> t -> string -> unit
(** Open a child element of the currently open element (or the root if none
    is open).  Raises [Invalid_argument] when a second root is opened. *)

val text : t -> string -> unit
(** Append character data to the currently open element.
    Raises [Invalid_argument] outside any element. *)

val close_element : t -> unit
(** Close the innermost open element.  Raises [Invalid_argument] when no
    element is open. *)

val leaf : ?attrs:(string * string) list -> ?text:string -> t -> string -> unit
(** [leaf b tag] opens and immediately closes an element. *)

val depth : t -> int
(** Number of currently open elements. *)

val finish : t -> Document.t
(** Complete the document.  Raises [Invalid_argument] if elements are still
    open or no root was ever produced. *)
