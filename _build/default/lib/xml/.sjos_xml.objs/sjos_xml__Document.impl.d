lib/xml/document.ml: Array List Node Printf Result Set String
