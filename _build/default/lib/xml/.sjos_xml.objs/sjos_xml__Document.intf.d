lib/xml/document.mli: Node
