lib/xml/builder.ml: Array Buffer Document Hashtbl List Node
