lib/xml/builder.mli: Document
