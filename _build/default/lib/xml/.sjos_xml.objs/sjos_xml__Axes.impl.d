lib/xml/axes.ml: Fmt Node
