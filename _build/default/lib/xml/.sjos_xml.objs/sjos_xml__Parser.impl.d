lib/xml/parser.ml: Buffer Builder Char Fun List Printf String
