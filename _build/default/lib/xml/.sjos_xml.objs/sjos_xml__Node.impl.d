lib/xml/node.ml: Fmt List String
