lib/xml/axes.mli: Fmt Node
