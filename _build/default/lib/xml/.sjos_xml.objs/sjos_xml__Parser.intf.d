lib/xml/parser.mli: Document
