lib/xml/serializer.ml: Buffer Document Fun List Node String
