lib/xml/node.mli: Fmt
