lib/xml/serializer.mli: Buffer Document Node
