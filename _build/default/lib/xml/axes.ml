type axis = Child | Descendant

let axis_to_string = function Child -> "/" | Descendant -> "//"
let pp_axis ppf a = Fmt.string ppf (axis_to_string a)

let is_ancestor (a : Node.t) (d : Node.t) =
  a.Node.start_pos < d.Node.start_pos && d.Node.end_pos < a.Node.end_pos

let is_parent a d = is_ancestor a d && d.Node.level = a.Node.level + 1
let is_descendant d a = is_ancestor a d
let is_child d a = is_parent a d

let related axis ~anc ~desc =
  match axis with
  | Descendant -> is_ancestor anc desc
  | Child -> is_parent anc desc

let disjoint a b = not (is_ancestor a b || is_ancestor b a || a.Node.id = b.Node.id)
let document_order = Node.compare_start
