(** MPMGJN — the multi-predicate merge join of Zhang et al. ("On Supporting
    Containment Queries in RDBMS", SIGMOD 2001), the binary structural join
    the Stack-Tree algorithms were designed to beat (the paper's §2.2.1
    cites it as an alternative access method).

    Like Stack-Tree it merges two inputs sorted by the join nodes, but it
    has no stack: for every ancestor it re-scans the descendant input from
    the first position that can still fall inside the ancestor's interval.
    With deeply nested ancestors the same descendants are scanned over and
    over, so its work is super-linear exactly where Stack-Tree stays linear
    — the ablation benchmark quantifies this.

    Output is ordered by the ancestor side.  Scan steps are accounted in
    [Metrics.stack_ops] so cost units remain comparable. *)

open Sjos_xml

val join :
  metrics:Metrics.t ->
  doc:Document.t ->
  axis:Axes.axis ->
  anc:Tuple.t array * int ->
  desc:Tuple.t array * int ->
  Tuple.t array
(** Same contract as {!Stack_tree.join} with [algo = Stack_tree_anc]
    (ancestor-ordered output); raises [Invalid_argument] on unsorted
    input. *)
