(** Cost-model calibration: fit the four factors (f_I, f_s, f_IO, f_st)
    from measured executions.

    The paper notes that "each implementation of an XML database would have
    different constants associated with the cost of each physical
    operation" — this module recovers them for {e this} implementation on
    {e this} machine by ordinary least squares over (operation counters,
    wall-seconds) observations, with factors clamped to be non-negative.

    A calibrated model makes estimated cost units proportional to the wall
    clock of the host, tightening the optimizer's opt-vs-exec trade-off
    reasoning (Figures 7-8). *)

open Sjos_cost

val fit : (Metrics.t * float) list -> Cost_model.factors
(** [fit observations] — least-squares factors from
    [(counters, measured seconds)] pairs.  Needs at least 4 observations
    with linearly independent counter vectors; degenerate systems fall back
    to {!Cost_model.default} proportions scaled to match total time.
    Raises [Invalid_argument] on an empty observation list. *)

val predict : Cost_model.factors -> Metrics.t -> float
(** The model's prediction for an execution with the given counters
    (equal to {!Metrics.cost_units}). *)

val mean_relative_error : Cost_model.factors -> (Metrics.t * float) list -> float
(** Average of [|predicted - actual| / actual] over observations with
    [actual > 0]. *)
