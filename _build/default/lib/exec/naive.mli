(** Reference pattern-matching by exhaustive tree search.

    Also serves as the paper's "navigational" strawman (Example 2.2): for
    each candidate root it scans the relevant subtrees for every pattern
    edge.  Quadratic in the worst case — used as a correctness oracle for
    the structural-join executor and to build exact cardinality
    providers. *)

open Sjos_storage
open Sjos_pattern

val matches : Element_index.t -> Pattern.t -> Tuple.t list
(** All matches of the pattern, as full tuples (every slot bound), in no
    particular order. *)

val count : Element_index.t -> Pattern.t -> int

val cluster_count : Element_index.t -> Pattern.t -> int -> int
(** [cluster_count index pat mask] — exact number of matches of the
    sub-pattern induced by the (connected) cluster [mask]. *)

val exact_provider : Element_index.t -> Pattern.t -> Sjos_plan.Costing.provider
(** A cardinality provider with exact counts (memoized per cluster);
    useful to isolate optimizer behaviour from estimation error. *)
