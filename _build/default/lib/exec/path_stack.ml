open Sjos_xml
open Sjos_storage
open Sjos_pattern

type entry = { node : Node.t; parent_top : int }
type stack = { mutable items : entry array; mutable len : int }

let dummy_entry =
  {
    node =
      {
        Node.id = -1;
        tag = "";
        start_pos = -1;
        end_pos = -1;
        level = -1;
        parent = -1;
        attrs = [];
        text = "";
      };
    parent_top = -1;
  }

let new_stack () = { items = Array.make 8 dummy_entry; len = 0 }

let push st e =
  if st.len = Array.length st.items then begin
    let items = Array.make (2 * st.len) dummy_entry in
    Array.blit st.items 0 items 0 st.len;
    st.items <- items
  end;
  st.items.(st.len) <- e;
  st.len <- st.len + 1

(* The chain of pattern nodes from the root to the leaf, with the axis
   connecting each node to its child. *)
let chain_of pat =
  if not (Pattern.is_path pat) then
    invalid_arg "Path_stack: pattern is not a simple path";
  let rec go i acc =
    match Pattern.children_of pat i with
    | [] -> List.rev ((i, None) :: acc)
    | [ (c, e) ] -> go c ((i, Some e.Pattern.axis) :: acc)
    | _ -> assert false
  in
  Array.of_list (go 0 [])

let run ~metrics index pat =
  let chain = chain_of pat in
  let n = Array.length chain in
  let width = Pattern.node_count pat in
  let streams =
    Array.map (fun (i, _) -> Candidate.select index (Pattern.label pat i)) chain
  in
  Array.iter
    (fun s ->
      metrics.Metrics.index_items <-
        metrics.Metrics.index_items + Array.length s)
    streams;
  let pos = Array.make n 0 in
  let stacks = Array.init n (fun _ -> new_stack ()) in
  let out = ref [] in
  (* stream with the smallest next start position *)
  let next_min () =
    let best = ref (-1) in
    let best_start = ref max_int in
    for k = 0 to n - 1 do
      if pos.(k) < Array.length streams.(k) then begin
        let s = streams.(k).(pos.(k)).Node.start_pos in
        if s < !best_start then begin
          best_start := s;
          best := k
        end
      end
    done;
    if !best < 0 then None else Some !best
  in
  let clean_stacks start =
    Array.iter
      (fun st ->
        while st.len > 0 && st.items.(st.len - 1).node.Node.end_pos < start do
          st.len <- st.len - 1;
          metrics.Metrics.stack_ops <- metrics.Metrics.stack_ops + 1
        done)
      stacks
  in
  (* All root-to-leaf solutions ending in [leaf_entry]: walk the linked
     stacks from the leaf toward the root.  [parent_top] bounds the entries
     of the parent stack that contain this entry; parent-child edges are
     checked explicitly (PathStack's standard post-filter). *)
  let emit leaf_entry =
    let rec expand k bound child_node acc =
      if k < 0 then begin
        out := acc :: !out;
        metrics.Metrics.output_tuples <- metrics.Metrics.output_tuples + 1
      end
      else
        let axis_to_child =
          match snd chain.(k) with Some a -> a | None -> assert false
        in
        for j = 0 to bound do
          let e = stacks.(k).items.(j) in
          let ok =
            match axis_to_child with
            | Axes.Descendant -> true
            | Axes.Child -> Axes.is_parent e.node child_node
          in
          if ok then begin
            let t = Array.copy acc in
            t.(fst chain.(k)) <- e.node.Node.id;
            expand (k - 1) e.parent_top e.node t
          end
        done
    in
    let base = Tuple.create width in
    base.(fst chain.(n - 1)) <- leaf_entry.node.Node.id;
    if n = 1 then begin
      out := base :: !out;
      metrics.Metrics.output_tuples <- metrics.Metrics.output_tuples + 1
    end
    else expand (n - 2) leaf_entry.parent_top leaf_entry.node base
  in
  let rec loop () =
    match next_min () with
    | None -> ()
    | Some k ->
        let t = streams.(k).(pos.(k)) in
        pos.(k) <- pos.(k) + 1;
        clean_stacks t.Node.start_pos;
        (* the parent pointer must reference strict ancestors only; when the
           same document node is a candidate for two adjacent chain
           positions it sits atop the parent stack with an equal interval
           and must be skipped (containment is proper in pattern edges) *)
        let parent_top =
          if k = 0 then -1
          else begin
            let pt = ref (stacks.(k - 1).len - 1) in
            while
              !pt >= 0
              && stacks.(k - 1).items.(!pt).node.Node.start_pos
                 >= t.Node.start_pos
            do
              decr pt
            done;
            !pt
          end
        in
        if k = 0 || parent_top >= 0 then begin
          metrics.Metrics.stack_ops <- metrics.Metrics.stack_ops + 1;
          let e = { node = t; parent_top } in
          if k = n - 1 then
            (* leaf entries contribute all their solutions immediately and
               never serve as parents: no need to keep them *)
            emit e
          else push stacks.(k) e
        end;
        loop ()
  in
  loop ();
  metrics.Metrics.joins <- metrics.Metrics.joins + (n - 1);
  Array.of_list (List.rev !out)

let count index pat =
  let metrics = Metrics.create () in
  Array.length (run ~metrics index pat)
