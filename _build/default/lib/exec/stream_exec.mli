(** A pull-based (streaming) plan interpreter.

    The paper motivates the FP algorithm with the observation that
    "fully-pipelined plans have the property of producing the initial
    result tuples quickly, which is desirable in many applications, such as
    online querying on XML data sources" (§3.4).  The materializing
    {!Executor} cannot show that property; this interpreter can: operators
    are lazy sequences, so a consumer that stops after [k] results only
    pays for the work those [k] results need — unless a blocking operator
    (sort, and to a lesser degree Stack-Tree-Anc's inherit-list buffering)
    stands in the way.

    Results are identical to {!Executor.execute} (same plans, same
    tuples, same order). *)

open Sjos_storage
open Sjos_pattern
open Sjos_plan

val stream : Element_index.t -> Pattern.t -> Plan.t -> Tuple.t Seq.t
(** Lazy evaluation of a valid plan.  Raises [Invalid_argument] on invalid
    plans (checked eagerly). *)

val first_k : Element_index.t -> Pattern.t -> Plan.t -> int -> Tuple.t list
(** The first [k] result tuples, computing no more than needed. *)

val time_to_first :
  Element_index.t -> Pattern.t -> Plan.t -> float * float
(** [(first, total)] wall-clock seconds: time until the first tuple is
    available, and time to drain the whole stream.  For fully-pipelined
    plans [first] is far below [total]; a top-level sort drags [first] up
    to [total]. *)
