open Sjos_xml

type t = int array

let unbound = -1
let create width = Array.make width unbound

let singleton ~width slot (node : Node.t) =
  let t = create width in
  t.(slot) <- node.Node.id;
  t

let get t slot = t.(slot)
let is_bound t slot = t.(slot) <> unbound

let merge a b =
  let width = Array.length a in
  if Array.length b <> width then invalid_arg "Tuple.merge: width mismatch";
  Array.init width (fun i ->
      match (a.(i), b.(i)) with
      | x, y when x = unbound -> y
      | x, y when y = unbound -> x
      | _ -> invalid_arg "Tuple.merge: slot bound on both sides")

let bound_mask t =
  let m = ref 0 in
  Array.iteri (fun i v -> if v <> unbound then m := !m lor (1 lsl i)) t;
  !m

let to_string t =
  "("
  ^ String.concat ","
      (Array.to_list
         (Array.map (fun v -> if v = unbound then "_" else string_of_int v) t))
  ^ ")"

let equal = ( = )

let compare_by_slot doc slot a b =
  compare
    (Document.node doc a.(slot)).Node.start_pos
    (Document.node doc b.(slot)).Node.start_pos
