open Sjos_xml
open Sjos_storage
open Sjos_pattern
open Sjos_plan

(* Matches of the sub-pattern induced by [mask] (or the whole pattern),
   computed by recursive search from each candidate of the cluster root. *)
let cluster_matches index pat mask =
  let width = Pattern.node_count pat in
  let in_mask i = mask land (1 lsl i) <> 0 in
  let candidates i = Candidate.select index (Pattern.label pat i) in
  (* root of the cluster: the member whose tree parent is outside *)
  let root =
    let rec first i = if in_mask i then i else first (i + 1) in
    let rec up i =
      match Pattern.parent_of pat i with
      | Some (p, _) when in_mask p -> up p
      | _ -> i
    in
    up (first 0)
  in
  let rec sub u (x : Node.t) : Tuple.t list =
    let base = Tuple.singleton ~width u x in
    List.fold_left
      (fun acc (c, (e : Pattern.edge)) ->
        if not (in_mask c) then acc
        else begin
          let child_tuples =
            Array.to_list (candidates c)
            |> List.filter (fun y -> Axes.related e.Pattern.axis ~anc:x ~desc:y)
            |> List.concat_map (sub c)
          in
          List.concat_map
            (fun t -> List.map (fun ct -> Tuple.merge t ct) child_tuples)
            acc
        end)
      [ base ]
      (Pattern.children_of pat u)
  in
  Array.to_list (candidates root) |> List.concat_map (sub root)

let matches index pat =
  cluster_matches index pat ((1 lsl Pattern.node_count pat) - 1)

let count index pat = List.length (matches index pat)
let cluster_count index pat mask = List.length (cluster_matches index pat mask)

let exact_provider index pat =
  let memo = Hashtbl.create 32 in
  let cluster_card mask =
    match Hashtbl.find_opt memo mask with
    | Some c -> c
    | None ->
        let c = float_of_int (cluster_count index pat mask) in
        Hashtbl.replace memo mask c;
        c
  in
  {
    Costing.node_card =
      (fun i ->
        float_of_int (Array.length (Candidate.select index (Pattern.label pat i))));
    cluster_card;
  }
