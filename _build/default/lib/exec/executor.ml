open Sjos_storage
open Sjos_pattern
open Sjos_cost
open Sjos_plan

exception Tuple_limit_exceeded of int

type run = {
  tuples : Tuple.t array;
  metrics : Metrics.t;
  cost_units : float;
  seconds : float;
}

let execute ?(factors = Cost_model.default) ?max_tuples index pat plan =
  (match Properties.validate pat plan with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Executor.execute: invalid plan: " ^ msg));
  let doc = Element_index.document index in
  let width = Pattern.node_count pat in
  let metrics = Metrics.create () in
  let check_limit (tuples : Tuple.t array) =
    match max_tuples with
    | Some limit when Array.length tuples > limit ->
        raise (Tuple_limit_exceeded (Array.length tuples))
    | _ -> tuples
  in
  let t0 = Unix.gettimeofday () in
  let rec eval = function
    | Plan.Index_scan i ->
        let candidates = Candidate.select index (Pattern.label pat i) in
        check_limit (Operators.index_scan ~metrics ~width ~slot:i candidates)
    | Plan.Sort { input; by } ->
        Operators.sort ~metrics ~doc ~by (eval input)
    | Plan.Structural_join { anc_side; desc_side; edge; algo } ->
        let anc_tuples = eval anc_side in
        let desc_tuples = eval desc_side in
        check_limit
          (Stack_tree.join ~metrics ~doc ~axis:edge.Pattern.axis ~algo
             ~anc:(anc_tuples, edge.Pattern.anc)
             ~desc:(desc_tuples, edge.Pattern.desc))
  in
  let tuples = eval plan in
  let seconds = Unix.gettimeofday () -. t0 in
  { tuples; metrics; cost_units = Metrics.cost_units factors metrics; seconds }

let count_matches ?factors index pat plan =
  Array.length (execute ?factors index pat plan).tuples
