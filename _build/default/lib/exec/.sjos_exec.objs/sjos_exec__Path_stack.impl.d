lib/exec/path_stack.ml: Array Axes Candidate List Metrics Node Pattern Sjos_pattern Sjos_storage Sjos_xml Tuple
