lib/exec/executor.ml: Array Candidate Cost_model Element_index Metrics Operators Pattern Plan Properties Sjos_cost Sjos_pattern Sjos_plan Sjos_storage Stack_tree Tuple Unix
