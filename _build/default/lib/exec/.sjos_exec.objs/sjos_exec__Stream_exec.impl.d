lib/exec/stream_exec.ml: Array Axes Candidate Document Element_index List Node Pattern Plan Seq Sjos_pattern Sjos_plan Sjos_storage Sjos_xml Tuple Unix
