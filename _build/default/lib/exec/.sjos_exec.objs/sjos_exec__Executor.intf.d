lib/exec/executor.mli: Element_index Metrics Pattern Plan Sjos_cost Sjos_pattern Sjos_plan Sjos_storage Tuple
