lib/exec/merge_join.ml: Array Axes Document List Metrics Node Sjos_xml Tuple
