lib/exec/twig_join.mli: Element_index Metrics Pattern Sjos_pattern Sjos_storage Tuple
