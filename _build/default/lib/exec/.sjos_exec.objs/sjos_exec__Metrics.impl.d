lib/exec/metrics.ml: Cost_model Fmt Sjos_cost
