lib/exec/naive.mli: Element_index Pattern Sjos_pattern Sjos_plan Sjos_storage Tuple
