lib/exec/tuple.mli: Document Node Sjos_xml
