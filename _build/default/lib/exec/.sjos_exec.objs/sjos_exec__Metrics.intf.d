lib/exec/metrics.mli: Fmt Sjos_cost
