lib/exec/twig_join.ml: Array Axes Candidate Fun Hashtbl List Metrics Node Pattern Sjos_pattern Sjos_storage Sjos_xml Tuple
