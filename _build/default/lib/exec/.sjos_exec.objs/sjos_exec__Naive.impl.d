lib/exec/naive.ml: Array Axes Candidate Costing Hashtbl List Node Pattern Sjos_pattern Sjos_plan Sjos_storage Sjos_xml Tuple
