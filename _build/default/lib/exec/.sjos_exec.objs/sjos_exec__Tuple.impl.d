lib/exec/tuple.ml: Array Document Node Sjos_xml String
