lib/exec/calibrate.ml: Array Cost_model Float List Metrics Sjos_cost
