lib/exec/path_stack.mli: Element_index Metrics Pattern Sjos_pattern Sjos_storage Tuple
