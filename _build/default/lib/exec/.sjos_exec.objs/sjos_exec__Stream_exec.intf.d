lib/exec/stream_exec.mli: Element_index Pattern Plan Seq Sjos_pattern Sjos_plan Sjos_storage Tuple
