lib/exec/calibrate.mli: Cost_model Metrics Sjos_cost
