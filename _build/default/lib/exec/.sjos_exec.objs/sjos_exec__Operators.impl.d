lib/exec/operators.ml: Array Float Metrics Tuple
