lib/exec/merge_join.mli: Axes Document Metrics Sjos_xml Tuple
