lib/exec/stack_tree.ml: Array Axes Document List Metrics Node Plan Sjos_plan Sjos_xml Tuple
