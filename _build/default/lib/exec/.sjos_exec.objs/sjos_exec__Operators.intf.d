lib/exec/operators.mli: Document Metrics Node Sjos_xml Tuple
