lib/exec/stack_tree.mli: Axes Document Metrics Plan Sjos_plan Sjos_xml Tuple
