open Sjos_xml

(* Group consecutive tuples sharing the join node, as in Stack_tree. *)
let group_by_slot doc tuples slot =
  let groups = ref [] in
  let current_id = ref min_int in
  let current : Tuple.t list ref = ref [] in
  let last_start = ref (-1) in
  let flush () =
    if !current <> [] then
      groups := (Document.node doc !current_id, !current) :: !groups
  in
  Array.iter
    (fun t ->
      let id = Tuple.get t slot in
      if id = Tuple.unbound then
        invalid_arg "Merge_join: join slot unbound in input tuple";
      if id <> !current_id then begin
        let start = (Document.node doc id).Node.start_pos in
        if start < !last_start then
          invalid_arg "Merge_join: input not sorted by its join slot";
        last_start := start;
        flush ();
        current_id := id;
        current := [ t ]
      end
      else current := t :: !current)
    tuples;
  flush ();
  Array.of_list (List.rev !groups)

let join ~metrics ~doc ~axis ~anc:(anc_tuples, anc_slot)
    ~desc:(desc_tuples, desc_slot) =
  metrics.Metrics.joins <- metrics.Metrics.joins + 1;
  let ag = group_by_slot doc anc_tuples anc_slot in
  let dg = group_by_slot doc desc_tuples desc_slot in
  let nd = Array.length dg in
  let out = ref [] in
  (* lo = first descendant group that can still start inside the current or
     any later ancestor; it only moves forward across ancestors, but the
     inner scan below it restarts for every ancestor — MPMGJN's weakness *)
  let lo = ref 0 in
  Array.iter
    (fun ((a : Node.t), a_tuples) ->
      while !lo < nd && (fst dg.(!lo)).Node.start_pos <= a.Node.start_pos do
        incr lo
      done;
      let j = ref !lo in
      while !j < nd && (fst dg.(!j)).Node.start_pos < a.Node.end_pos do
        metrics.Metrics.stack_ops <- metrics.Metrics.stack_ops + 1;
        let d, d_tuples = dg.(!j) in
        if Axes.related axis ~anc:a ~desc:d then
          List.iter
            (fun ta ->
              List.iter
                (fun td ->
                  out := Tuple.merge ta td :: !out;
                  metrics.Metrics.output_tuples <-
                    metrics.Metrics.output_tuples + 1)
                d_tuples)
            a_tuples;
        incr j
      done)
    ag;
  Array.of_list (List.rev !out)
