(** PathStack — a holistic (multi-way) structural join for path patterns
    (Bruno, Koudas, Srivastava: "Holistic Twig Joins", SIGMOD 2002).

    The paper lists multi-way structural joins as future work for its
    optimizer (§6); this module implements the path case as an extension
    and ablation baseline: instead of composing binary Stack-Tree joins,
    all candidate streams are merged in one pass over a chain of linked
    stacks, so no intermediate result is ever materialized.

    Parent-child ([/]) edges are handled by post-filtering emitted paths on
    levels, the standard simplification (PathStack is I/O-optimal only for
    ancestor-descendant edges).

    Limitations: the pattern must be a simple path ({!Sjos_pattern.Pattern.is_path});
    branching twigs would require the full TwigStack merge phase. *)

open Sjos_storage
open Sjos_pattern

val run :
  metrics:Metrics.t -> Element_index.t -> Pattern.t -> Tuple.t array
(** Evaluate a path pattern holistically.  The result contains exactly the
    pattern's matches, ordered by the leaf (deepest) pattern node.
    Raises [Invalid_argument] if the pattern is not a path. *)

val count : Element_index.t -> Pattern.t -> int
(** Convenience wrapper discarding metrics. *)
