open Sjos_cost

let features (m : Metrics.t) =
  [|
    float_of_int m.Metrics.index_items;
    m.Metrics.sort_cost;
    float_of_int m.Metrics.io_items;
    float_of_int m.Metrics.stack_ops;
  |]

let predict f m = Metrics.cost_units f m

(* Solve the 4x4 normal equations (X^T X) b = X^T y by Gaussian elimination
   with partial pivoting; returns None when the system is singular. *)
let solve a b =
  let n = Array.length b in
  let a = Array.map Array.copy a and b = Array.copy b in
  let ok = ref true in
  for col = 0 to n - 1 do
    (* pivot *)
    let pivot = ref col in
    for r = col + 1 to n - 1 do
      if Float.abs a.(r).(col) > Float.abs a.(!pivot).(col) then pivot := r
    done;
    if Float.abs a.(!pivot).(col) < 1e-12 then ok := false
    else begin
      if !pivot <> col then begin
        let tmp = a.(col) in
        a.(col) <- a.(!pivot);
        a.(!pivot) <- tmp;
        let tb = b.(col) in
        b.(col) <- b.(!pivot);
        b.(!pivot) <- tb
      end;
      for r = 0 to n - 1 do
        if r <> col then begin
          let factor = a.(r).(col) /. a.(col).(col) in
          for c = col to n - 1 do
            a.(r).(c) <- a.(r).(c) -. (factor *. a.(col).(c))
          done;
          b.(r) <- b.(r) -. (factor *. b.(col))
        end
      done
    end
  done;
  if not !ok then None
  else Some (Array.init n (fun i -> b.(i) /. a.(i).(i)))

let fallback observations =
  (* keep the default proportions, scale to match total observed time *)
  let predicted, actual =
    List.fold_left
      (fun (p, a) (m, seconds) ->
        (p +. Metrics.cost_units Cost_model.default m, a +. seconds))
      (0.0, 0.0) observations
  in
  let scale = if predicted > 0.0 then actual /. predicted else 1.0 in
  let d = Cost_model.default in
  Cost_model.make
    ~f_index:(d.Cost_model.f_index *. scale)
    ~f_sort:(d.Cost_model.f_sort *. scale)
    ~f_io:(d.Cost_model.f_io *. scale)
    ~f_stack:(d.Cost_model.f_stack *. scale)
    ()

let mean_relative_error f observations =
  let total, count =
    List.fold_left
      (fun (total, count) (m, actual) ->
        if actual > 0.0 then
          (total +. (Float.abs (predict f m -. actual) /. actual), count + 1)
        else (total, count))
      (0.0, 0) observations
  in
  if count = 0 then 0.0 else total /. float_of_int count

let fit observations =
  if observations = [] then invalid_arg "Calibrate.fit: no observations";
  let xs = List.map (fun (m, _) -> features m) observations in
  let ys = List.map snd observations in
  let xtx = Array.make_matrix 4 4 0.0 in
  let xty = Array.make 4 0.0 in
  (* weighted least squares with weights 1/y^2: minimizes the *relative*
     error, so sub-millisecond runs count as much as second-long ones *)
  List.iter2
    (fun x y ->
      if y > 0.0 then begin
        let w = 1.0 /. (y *. y) in
        for i = 0 to 3 do
          for j = 0 to 3 do
            xtx.(i).(j) <- xtx.(i).(j) +. (w *. x.(i) *. x.(j))
          done;
          xty.(i) <- xty.(i) +. (w *. x.(i) *. y)
        done
      end)
    xs ys;
  let fallback = fallback observations in
  match solve xtx xty with
  | Some b ->
      let clamp v = Float.max 0.0 v in
      let fitted =
        Cost_model.make ~f_index:(clamp b.(0)) ~f_sort:(clamp b.(1))
          ~f_io:(clamp b.(2)) ~f_stack:(clamp b.(3)) ()
      in
      (* clamping negative coefficients can wreck the fit (noisy, nearly
         collinear counters); keep whichever model predicts better *)
      if
        mean_relative_error fitted observations
        <= mean_relative_error fallback observations
      then fitted
      else fallback
  | None -> fallback
