lib/cost/cost_model.mli: Fmt
