lib/cost/cost_model.ml: Float Fmt
