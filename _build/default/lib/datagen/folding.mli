(** Folding-factor replication (§4.3 of the paper): to study the effect of
    data size, a data set is replicated [f] times under a fresh root,
    producing documents 10×, 100×, 500× the original.  Every original match
    appears once per copy, so result cardinalities scale exactly
    linearly. *)

open Sjos_xml

val replicate : Document.t -> int -> Document.t
(** [replicate doc f] — a new document whose root carries [f] structurally
    identical copies of [doc]'s root subtree.  [replicate doc 1] still
    introduces the fresh root, keeping depths comparable across factors.
    Raises [Invalid_argument] for [f < 1]. *)

val copy_subtree : Builder.t -> Document.t -> Node.t -> unit
(** Append a deep copy of the given subtree to the builder's currently
    open element. *)
