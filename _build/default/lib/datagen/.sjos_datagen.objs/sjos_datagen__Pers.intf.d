lib/datagen/pers.mli: Document Sjos_xml
