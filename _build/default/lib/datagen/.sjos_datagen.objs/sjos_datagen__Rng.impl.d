lib/datagen/rng.ml: Int64 List
