lib/datagen/folding.ml: Builder Document List Node Sjos_xml
