lib/datagen/pers.ml: Builder Rng Sjos_xml
