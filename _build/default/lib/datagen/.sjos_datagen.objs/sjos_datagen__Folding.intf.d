lib/datagen/folding.mli: Builder Document Node Sjos_xml
