lib/datagen/rng.mli:
