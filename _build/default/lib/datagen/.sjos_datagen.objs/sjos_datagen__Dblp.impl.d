lib/datagen/dblp.ml: Builder List Rng Sjos_xml String
