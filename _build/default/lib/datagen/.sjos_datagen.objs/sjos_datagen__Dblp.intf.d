lib/datagen/dblp.mli: Document Sjos_xml
