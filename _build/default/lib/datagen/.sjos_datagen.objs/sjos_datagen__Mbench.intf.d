lib/datagen/mbench.mli: Document Sjos_xml
