lib/datagen/mbench.ml: Builder Rng Sjos_xml
