open Sjos_xml

let authors =
  [ "knuth"; "codd"; "gray"; "stonebraker"; "ullman"; "widom"; "jagadish" ]

let words =
  [ "query"; "optimization"; "index"; "join"; "xml"; "tree"; "pattern" ]

let generate ?(seed = 2) ~target_nodes () =
  if target_nodes < 8 then invalid_arg "Dblp.generate: target too small";
  let rng = Rng.create seed in
  let b = Builder.create () in
  let budget = ref target_nodes in
  let spend n = budget := !budget - n in
  let title () =
    let t =
      String.concat " "
        (List.init (2 + Rng.int rng 3) (fun _ -> Rng.pick rng words))
    in
    Builder.leaf ~text:t b "title";
    spend 1
  in
  let entry kind =
    Builder.open_element b kind;
    spend 1;
    for _ = 1 to 1 + Rng.int rng 3 do
      Builder.leaf ~text:(Rng.pick rng authors) b "author";
      spend 1
    done;
    title ();
    Builder.leaf ~text:(string_of_int (1970 + Rng.int rng 50)) b "year";
    spend 1;
    if String.equal kind "inproceedings" then begin
      Builder.leaf ~text:(Rng.pick rng words) b "booktitle";
      spend 1
    end;
    let cites = Rng.geometric rng ~p:0.3 ~max:4 in
    for _ = 1 to cites do
      Builder.open_element b "cite";
      spend 1;
      title ();
      Builder.close_element b
    done;
    Builder.close_element b
  in
  Builder.open_element b "dblp";
  spend 1;
  while !budget > 10 do
    entry (Rng.pick rng [ "article"; "inproceedings"; "article"; "phdthesis" ])
  done;
  Builder.close_element b;
  Builder.finish b
