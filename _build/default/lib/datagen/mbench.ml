open Sjos_xml

let generate ?(seed = 3) ~target_nodes () =
  if target_nodes < 4 then invalid_arg "Mbench.generate: target too small";
  let rng = Rng.create seed in
  let b = Builder.create () in
  let budget = ref target_nodes in
  let unique = ref 0 in
  let attrs level =
    let u = !unique in
    incr unique;
    [
      ("aUnique", string_of_int u);
      ("aLevel", string_of_int level);
      ("aFour", string_of_int (u mod 4));
      ("aSixtyFour", string_of_int (u mod 64));
    ]
  in
  let rec nest level =
    Builder.open_element b ~attrs:(attrs level) "eNest";
    decr budget;
    if Rng.float rng < 0.1 && !budget > 0 then begin
      Builder.leaf ~attrs:[ ("aRef", string_of_int (Rng.int rng 64)) ] b
        "eOccasional";
      decr budget
    end;
    (* fanout shrinks with depth so the tree is deep but bounded *)
    let fanout =
      if level >= 14 then 0
      else if !budget <= 0 then 0
      else 1 + Rng.geometric rng ~p:0.55 ~max:3
    in
    for _ = 1 to fanout do
      if !budget > 0 then nest (level + 1)
    done;
    Builder.close_element b
  in
  (* one eNest root with as many level-1 subtrees as the budget allows, so
     large targets are actually met (a single recursive tree saturates) *)
  Builder.open_element b ~attrs:(attrs 0) "eNest";
  decr budget;
  while !budget > 2 do
    nest 1
  done;
  Builder.close_element b;
  Builder.finish b
