type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next t) 1L = 1L

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let geometric t ~p ~max =
  let rec go n = if n >= max || float t >= p then n else go (n + 1) in
  go 0
