open Sjos_xml

let first_names =
  [ "alice"; "bob"; "carol"; "dave"; "erin"; "frank"; "grace"; "heidi" ]

let dept_names =
  [ "sales"; "research"; "support"; "finance"; "operations"; "design" ]

let generate ?(seed = 1) ~target_nodes () =
  if target_nodes < 4 then invalid_arg "Pers.generate: target too small";
  let rng = Rng.create seed in
  let b = Builder.create () in
  let budget = ref target_nodes in
  let spend n = budget := !budget - n in
  let name b pool =
    Builder.leaf ~text:(Rng.pick rng pool) b "name";
    spend 1
  in
  let employee () =
    Builder.open_element b "employee";
    spend 1;
    name b first_names;
    Builder.leaf ~text:(string_of_int (30000 + Rng.int rng 90000)) b "salary";
    spend 1;
    Builder.close_element b
  in
  let department () =
    Builder.open_element b "department";
    spend 1;
    name b dept_names;
    Builder.close_element b
  in
  (* Managers nest: the deeper the hierarchy, the fewer sub-managers. *)
  let rec manager depth =
    Builder.open_element b "manager";
    spend 1;
    name b first_names;
    for _ = 1 to 1 + Rng.int rng 3 do
      if !budget > 0 then employee ()
    done;
    if Rng.float rng < 0.6 && !budget > 0 then department ();
    if Rng.float rng < 0.25 && !budget > 0 then department ();
    let recurse_p = if depth > 12 then 0.0 else 0.75 -. (0.02 *. float_of_int depth) in
    let subs = Rng.geometric rng ~p:recurse_p ~max:3 in
    for _ = 1 to subs do
      if !budget > 8 then manager (depth + 1)
    done;
    Builder.close_element b
  in
  Builder.open_element b "company";
  spend 1;
  while !budget > 8 do
    manager 0
  done;
  Builder.close_element b;
  Builder.finish b
