(** Synthetic bibliography in the shape of the DBLP data set: a shallow,
    wide document — one [dblp] root with many publication entries, each
    carrying [author]s, a [title], a [year], and occasionally [cite]
    references.  Shallow data exercises the optimizers in the regime where
    parent-child joins dominate and candidate lists are large but
    containment is rare. *)

open Sjos_xml

val generate : ?seed:int -> target_nodes:int -> unit -> Document.t
(** Deterministic for a given seed (default 2); approximately
    [target_nodes] elements. *)
