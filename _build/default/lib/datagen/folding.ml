open Sjos_xml

let rec copy_subtree b doc (n : Node.t) =
  Builder.open_element b ~attrs:n.Node.attrs n.Node.tag;
  if n.Node.text <> "" then Builder.text b n.Node.text;
  List.iter (copy_subtree b doc) (Document.children doc n);
  Builder.close_element b

let replicate doc f =
  if f < 1 then invalid_arg "Folding.replicate: factor must be >= 1";
  let b = Builder.create () in
  Builder.open_element b "folded";
  for _ = 1 to f do
    copy_subtree b doc (Document.root doc)
  done;
  Builder.close_element b;
  Builder.finish b
