(** A small deterministic PRNG (splitmix64) so generated data sets are
    byte-for-byte reproducible across OCaml versions and platforms —
    unlike [Stdlib.Random], whose algorithm has changed between releases. *)

type t

val create : int -> t
(** Seeded generator. *)

val next : t -> int64
val int : t -> int -> int
(** [int t bound] — uniform in [0, bound).  Raises [Invalid_argument] for
    [bound <= 0]. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> bool
val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val geometric : t -> p:float -> max:int -> int
(** Number of Bernoulli([p]) successes before the first failure, capped at
    [max] — handy for child counts. *)
