(** Synthetic data in the shape of the Michigan benchmark (Mbench): a
    single recursive element type [eNest] forming a deep tree, with
    attributes that carve out selective candidate sets —

    - [aUnique]    — unique integer id;
    - [aLevel]     — the node's depth;
    - [aFour]      — [aUnique mod 4];
    - [aSixtyFour] — [aUnique mod 64];

    plus sparse [eOccasional] leaf children.  Because every node shares the
    tag [eNest], queries select on attributes, and positional histograms
    are essential to tell the candidate sets apart. *)

open Sjos_xml

val generate : ?seed:int -> target_nodes:int -> unit -> Document.t
(** Deterministic for a given seed (default 3); approximately
    [target_nodes] elements, nested roughly 12-16 levels deep. *)
