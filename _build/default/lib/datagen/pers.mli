(** Synthetic personnel data set, modelled on the AT&T "Pers" data used by
    the paper (and by the structural-join paper it builds on): a deeply
    nested management hierarchy.

    Structure: a [company] root holds top-level [manager]s.  Every manager
    has a [name], some [employee]s (each with a [name] and a [salary]),
    possibly [department]s (each with a [name]), and recursively nested
    sub-[manager]s.  Deep manager-in-manager nesting is what makes
    ancestor-descendant queries on this data interesting. *)

open Sjos_xml

val generate : ?seed:int -> target_nodes:int -> unit -> Document.t
(** Generate a document with approximately [target_nodes] element nodes
    (within a few percent; generation stops once the budget is spent).
    Deterministic for a given seed (default 1). *)
