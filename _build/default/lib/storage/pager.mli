(** A simulated paged storage manager with an LRU buffer pool — the role
    SHORE plays under Timber in the paper's experimental setup (16 MB
    buffer pool, §4).

    Candidate lists and materialized intermediate results live in
    fixed-size pages; every access goes through the pool and is accounted
    as a hit or a miss (a miss evicts the least-recently-used resident
    page).  The executor's abstract [f_IO] factor can then be grounded:
    one miss = one physical page read.

    The pager is deliberately independent of the rest of the engine — it
    simulates access patterns that callers describe (sequential segment
    scans, buffered writes/re-reads), which is how the buffer-pool
    sensitivity experiment uses it. *)

type t

val create : ?page_size:int -> pool_pages:int -> unit -> t
(** [create ~pool_pages ()] — a pool holding [pool_pages] resident pages of
    [page_size] items each (default 256 items/page).
    Raises [Invalid_argument] for non-positive sizes. *)

val page_size : t -> int

type segment
(** A contiguous on-disk area holding a known number of items. *)

val allocate : t -> items:int -> segment
(** Allocate a segment (e.g. one tag's candidate list, or a materialized
    intermediate result). *)

val segment_pages : t -> segment -> int

val scan : t -> segment -> unit
(** Touch all pages of a segment in order — a full sequential scan. *)

val scan_range : t -> segment -> first_item:int -> n_items:int -> unit
(** Touch the pages covering an item range.  Raises [Invalid_argument] if
    the range exceeds the segment. *)

type stats = { accesses : int; hits : int; misses : int; evictions : int }

val stats : t -> stats
val reset_stats : t -> unit

val hit_ratio : t -> float
(** [hits / accesses]; [0.] before any access. *)

val resident_pages : t -> int
