(** Per-document summary statistics, used for reporting and as sanity
    inputs to the cardinality estimator. *)

open Sjos_xml

type t = {
  node_count : int;
  distinct_tags : int;
  max_depth : int;
  avg_depth : float;
  avg_fanout : float;  (** mean number of element children of non-leaves *)
  leaf_count : int;
  tag_counts : (string * int) list;  (** sorted by descending count *)
}

val compute : Document.t -> t
val pp : t Fmt.t
