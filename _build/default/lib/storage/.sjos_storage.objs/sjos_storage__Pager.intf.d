lib/storage/pager.mli:
