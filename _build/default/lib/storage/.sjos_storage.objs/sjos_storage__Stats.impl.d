lib/storage/stats.ml: Array Document Fmt Hashtbl List Node Sjos_xml
