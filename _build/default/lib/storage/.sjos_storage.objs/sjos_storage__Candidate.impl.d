lib/storage/candidate.ml: Array Document Element_index Fmt List Node Option Printf Sjos_xml String
