lib/storage/candidate.mli: Element_index Fmt Node Sjos_xml
