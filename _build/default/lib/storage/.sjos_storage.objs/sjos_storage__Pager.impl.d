lib/storage/pager.ml: Hashtbl
