lib/storage/stats.mli: Document Fmt Sjos_xml
