lib/storage/element_index.ml: Array Document Hashtbl List Node Sjos_xml
