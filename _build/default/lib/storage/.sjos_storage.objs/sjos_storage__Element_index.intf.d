lib/storage/element_index.mli: Document Node Sjos_xml
