open Sjos_xml

type t = {
  node_count : int;
  distinct_tags : int;
  max_depth : int;
  avg_depth : float;
  avg_fanout : float;
  leaf_count : int;
  tag_counts : (string * int) list;
}

let compute doc =
  let n = Document.size doc in
  let child_counts = Array.make (max n 1) 0 in
  let depth_sum = ref 0 in
  let max_depth = ref 0 in
  let tags : (string, int ref) Hashtbl.t = Hashtbl.create 64 in
  Document.iter
    (fun node ->
      depth_sum := !depth_sum + node.Node.level;
      if node.Node.level > !max_depth then max_depth := node.Node.level;
      if node.Node.parent >= 0 then
        child_counts.(node.Node.parent) <- child_counts.(node.Node.parent) + 1;
      match Hashtbl.find_opt tags node.Node.tag with
      | Some r -> incr r
      | None -> Hashtbl.add tags node.Node.tag (ref 1))
    doc;
  let leaf_count = ref 0 in
  let fanout_sum = ref 0 in
  let internal = ref 0 in
  Array.iteri
    (fun i c ->
      if i < n then
        if c = 0 then incr leaf_count
        else begin
          incr internal;
          fanout_sum := !fanout_sum + c
        end)
    child_counts;
  let tag_counts =
    Hashtbl.fold (fun tag r acc -> (tag, !r) :: acc) tags []
    |> List.sort (fun (ta, a) (tb, b) ->
           match compare b a with 0 -> compare ta tb | c -> c)
  in
  {
    node_count = n;
    distinct_tags = Hashtbl.length tags;
    max_depth = !max_depth;
    avg_depth = (if n = 0 then 0. else float_of_int !depth_sum /. float_of_int n);
    avg_fanout =
      (if !internal = 0 then 0.
       else float_of_int !fanout_sum /. float_of_int !internal);
    leaf_count = !leaf_count;
    tag_counts;
  }

let pp ppf t =
  Fmt.pf ppf
    "@[<v>nodes: %d@,tags: %d@,max depth: %d@,avg depth: %.2f@,avg fanout: \
     %.2f@,leaves: %d@]"
    t.node_count t.distinct_tags t.max_depth t.avg_depth t.avg_fanout
    t.leaf_count
