lib/engine/xquery.ml: Array Axes Builder Candidate Database Document List Node Option Pattern Printf Serializer Sjos_datagen Sjos_exec Sjos_pattern Sjos_storage Sjos_xml String
