lib/engine/experiment.ml: Array Database Executor Float Folding Hashtbl List Optimizer Pattern Printf Random_plan Search Sjos_core Sjos_datagen Sjos_exec Sjos_pattern Unix Workload
