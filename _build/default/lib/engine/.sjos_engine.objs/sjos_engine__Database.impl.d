lib/engine/database.ml: Cardinality Cost_model Costing Document Element_index Executor Explain Lazy Optimizer Parser Sjos_core Sjos_cost Sjos_exec Sjos_histogram Sjos_plan Sjos_storage Sjos_xml Stats
