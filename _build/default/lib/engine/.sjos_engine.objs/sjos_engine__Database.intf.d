lib/engine/database.mli: Document Element_index Executor Optimizer Pattern Sjos_core Sjos_cost Sjos_exec Sjos_pattern Sjos_plan Sjos_storage Sjos_xml Stats
