lib/engine/experiment.mli: Database Optimizer Pattern Sjos_core Sjos_pattern Workload
