lib/engine/workload.mli: Document Pattern Sjos_pattern Sjos_xml
