lib/engine/workload.ml: List Parse Pattern Pers Sjos_datagen Sjos_pattern String
