lib/engine/xquery.mli: Builder Database Document Sjos_core Sjos_exec Sjos_pattern Sjos_xml
