(** Structural-join cardinality estimation from positional histograms.

    Given the positional histograms of the two candidate sets, estimate the
    number of (ancestor, descendant) pairs satisfying containment by
    assuming positions are uniform within each grid cell: a descendant cell
    strictly right of the ancestor's start bucket and strictly below its end
    bucket is fully contained; cells sharing the start (resp. end) bucket
    contribute with probability 1/2; and same-cell (diagonal) pairs use the
    ancestor cell's width mass — a node of width [w] contains a uniformly
    placed narrower interval with probability [(w / bucket_span)^2]
    ({!Position_histogram.containment_mass}), which keeps flat documents
    (intervals much narrower than a bucket) from being grossly
    overestimated.
    Parent-child estimates refine the ancestor-descendant estimate with the
    level histograms. *)

val ancestor_descendant :
  anc:Position_histogram.t -> desc:Position_histogram.t -> float
(** Estimated number of pairs with [anc] containing [desc].  Requires both
    histograms built over the same position space with the same grid size
    (raises [Invalid_argument] otherwise). *)

val parent_child :
  anc:Position_histogram.t -> desc:Position_histogram.t -> float
(** Ancestor-descendant estimate scaled by the level-compatibility factor
    [P(level_d = level_a + 1 | containment-compatible levels)].  A coarse
    global correction — prefer {!parent_child_by_level} when the raw
    candidate sets are available. *)

val parent_child_by_level :
  grid:int ->
  max_pos:int ->
  anc:Sjos_xml.Node.t array ->
  desc:Sjos_xml.Node.t array ->
  float
(** The level-sliced positional estimate: partition both candidate sets by
    level and sum the ancestor-descendant estimates of the compatible
    slices [(anc at level l, desc at level l+1)].  Unlike the global
    factor, this captures the (common) correlation where descendants sit
    exactly one level below their ancestors, e.g. every employee having
    its own name child. *)

val pairs :
  Sjos_xml.Axes.axis ->
  anc:Position_histogram.t ->
  desc:Position_histogram.t ->
  float
(** Dispatch on the edge axis. *)

val selectivity :
  Sjos_xml.Axes.axis ->
  anc:Position_histogram.t ->
  desc:Position_histogram.t ->
  float
(** [pairs / (|anc| * |desc|)], clamped to [0, 1]; [0] when either side is
    empty. *)
