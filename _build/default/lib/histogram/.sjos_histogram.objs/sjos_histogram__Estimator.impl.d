lib/histogram/estimator.ml: Array Float Hashtbl List Position_histogram Sjos_xml
