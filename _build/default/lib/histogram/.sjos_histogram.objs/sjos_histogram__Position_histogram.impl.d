lib/histogram/position_histogram.ml: Array Float Grid Node Sjos_xml
