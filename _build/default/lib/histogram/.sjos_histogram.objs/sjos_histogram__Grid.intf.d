lib/histogram/grid.mli:
