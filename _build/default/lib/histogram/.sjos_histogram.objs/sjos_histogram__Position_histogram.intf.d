lib/histogram/position_histogram.mli: Node Sjos_xml
