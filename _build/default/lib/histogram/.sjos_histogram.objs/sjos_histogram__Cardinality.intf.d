lib/histogram/cardinality.mli: Element_index Pattern Sjos_pattern Sjos_storage
