lib/histogram/cardinality.ml: Array Candidate Document Element_index Estimator Float Hashtbl List Pattern Position_histogram Sjos_pattern Sjos_storage Sjos_xml
