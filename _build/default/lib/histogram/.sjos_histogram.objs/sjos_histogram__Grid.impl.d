lib/histogram/grid.ml: Array Printf
