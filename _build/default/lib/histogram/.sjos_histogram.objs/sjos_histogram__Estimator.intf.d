lib/histogram/estimator.mli: Position_histogram Sjos_xml
