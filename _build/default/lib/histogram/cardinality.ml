open Sjos_xml
open Sjos_storage
open Sjos_pattern

type t = {
  pat : Pattern.t;
  grid : int;
  max_pos : int;
  index : Element_index.t;
  hists : Position_histogram.t option array;  (* per pattern node, lazy *)
  cards : float array;
  sel_memo : (int * int, float) Hashtbl.t;  (* (anc, desc) -> selectivity *)
  cluster_memo : (int, float) Hashtbl.t;
}

let create ?(grid = 32) index pat =
  let doc = Element_index.document index in
  let n = Pattern.node_count pat in
  let cards = Array.make n 0.0 in
  for i = 0 to n - 1 do
    cards.(i) <-
      float_of_int (Array.length (Candidate.select index (Pattern.label pat i)))
  done;
  {
    pat;
    grid;
    max_pos = Document.max_pos doc;
    index;
    hists = Array.make n None;
    cards;
    sel_memo = Hashtbl.create 16;
    cluster_memo = Hashtbl.create 64;
  }

let pattern t = t.pat

let candidates t i = Candidate.select t.index (Pattern.label t.pat i)

let hist t i =
  match t.hists.(i) with
  | Some h -> h
  | None ->
      let h =
        Position_histogram.build ~grid:t.grid ~max_pos:t.max_pos (candidates t i)
      in
      t.hists.(i) <- Some h;
      h

let node_card t i = t.cards.(i)

let edge_selectivity t (e : Pattern.edge) =
  match Hashtbl.find_opt t.sel_memo (e.Pattern.anc, e.Pattern.desc) with
  | Some s -> s
  | None ->
      let s =
        match e.Pattern.axis with
        | Sjos_xml.Axes.Descendant ->
            Estimator.selectivity e.Pattern.axis ~anc:(hist t e.Pattern.anc)
              ~desc:(hist t e.Pattern.desc)
        | Sjos_xml.Axes.Child ->
            (* level-sliced histograms capture the parent-child correlation
               the global level factor misses *)
            let pairs =
              Estimator.parent_child_by_level ~grid:t.grid ~max_pos:t.max_pos
                ~anc:(candidates t e.Pattern.anc)
                ~desc:(candidates t e.Pattern.desc)
            in
            let ca = node_card t e.Pattern.anc
            and cd = node_card t e.Pattern.desc in
            if ca <= 0.0 || cd <= 0.0 then 0.0
            else Float.min 1.0 (Float.max 0.0 (pairs /. (ca *. cd)))
      in
      Hashtbl.replace t.sel_memo (e.Pattern.anc, e.Pattern.desc) s;
      s

let edge_pairs t (e : Pattern.edge) =
  edge_selectivity t e *. node_card t e.Pattern.anc *. node_card t e.Pattern.desc

let full_mask t = (1 lsl Pattern.node_count t.pat) - 1

let cluster_root pat mask =
  if mask = 0 then invalid_arg "Cardinality.cluster_root: empty cluster";
  let rec toward_root i =
    match Pattern.parent_of pat i with
    | Some (p, _) when mask land (1 lsl p) <> 0 -> toward_root p
    | _ -> i
  in
  (* start from any member *)
  let rec first i = if mask land (1 lsl i) <> 0 then i else first (i + 1) in
  toward_root (first 0)

let is_connected pat mask =
  if mask = 0 then false
  else begin
    let root = cluster_root pat mask in
    let seen = ref (1 lsl root) in
    let rec dfs i =
      List.iter
        (fun (j, _) ->
          if mask land (1 lsl j) <> 0 && !seen land (1 lsl j) = 0 then begin
            seen := !seen lor (1 lsl j);
            dfs j
          end)
        (Pattern.neighbors pat i)
    in
    dfs root;
    !seen = mask
  end

let cluster_card t mask =
  if mask = 0 then invalid_arg "Cardinality.cluster_card: empty cluster";
  match Hashtbl.find_opt t.cluster_memo mask with
  | Some c -> c
  | None ->
      if not (is_connected t.pat mask) then
        invalid_arg "Cardinality.cluster_card: cluster not connected";
      let rec matches u =
        let base = node_card t u in
        List.fold_left
          (fun acc (c, e) ->
            if mask land (1 lsl c) <> 0 then
              acc *. edge_selectivity t e *. matches c
            else acc)
          base
          (Pattern.children_of t.pat u)
      in
      let c = matches (cluster_root t.pat mask) in
      Hashtbl.replace t.cluster_memo mask c;
      c
