(** A 2-D counting grid with inclusive rectangular range sums in O(1)
    via prefix sums.  Shared by the positional histograms. *)

type t

val create : int -> t
(** [create g] — a [g × g] grid of zero counts.  Raises [Invalid_argument]
    for [g < 1]. *)

val size : t -> int
val add : t -> int -> int -> unit
(** [add t i j] increments cell [(i, j)].  Bounds-checked. *)

val get : t -> int -> int -> float
val total : t -> float

val seal : t -> unit
(** Build the prefix-sum table.  Must be called after the last {!add};
    calling {!add} afterwards raises [Invalid_argument]. *)

val range_sum : t -> i0:int -> i1:int -> j0:int -> j1:int -> float
(** Inclusive rectangle sum; empty when [i0 > i1] or [j0 > j1]; indexes are
    clamped to the grid.  Requires {!seal}. *)
