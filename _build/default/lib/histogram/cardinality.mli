(** Cardinality estimation for pattern sub-trees ("clusters").

    The optimizer prices a structural join from three numbers: the
    cardinality of each input cluster and of the output cluster.  A cluster
    is a connected set of pattern nodes, identified by a bit mask (bit [i]
    set = pattern node [i] belongs to the cluster).

    The estimate composes per-edge selectivities from the positional
    histograms bottom-up over the cluster's tree:
    [m(u) = |u| * prod over cluster children c of u (sel(u,c) * m(c))],
    which assumes edge independence — the standard System-R style
    assumption, here with structural selectivities. *)

open Sjos_storage
open Sjos_pattern

type t

val create : ?grid:int -> Element_index.t -> Pattern.t -> t
(** Build positional histograms for every pattern node's candidate set
    (lazily) and a memo table for cluster estimates. *)

val pattern : t -> Pattern.t
val node_card : t -> int -> float
(** Candidate-set cardinality of a pattern node. *)

val edge_pairs : t -> Pattern.edge -> float
(** Estimated structural-join result size of a single pattern edge. *)

val edge_selectivity : t -> Pattern.edge -> float

val cluster_card : t -> int -> float
(** [cluster_card t mask] — estimated number of matches of the sub-pattern
    induced by [mask].  Raises [Invalid_argument] if [mask] is empty or not
    connected in the pattern tree. *)

val full_mask : t -> int
val cluster_root : Pattern.t -> int -> int
(** The member of the cluster closest to the pattern root.  Raises
    [Invalid_argument] on an empty mask. *)

val is_connected : Pattern.t -> int -> bool
(** Is the induced sub-pattern connected? *)
