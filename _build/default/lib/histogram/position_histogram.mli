(** Positional histograms (Wu, Patel, Jagadish — EDBT 2002), the statistic
    Timber uses to estimate structural-join result sizes.

    Each candidate set is summarized by a [g × g] grid over the document's
    position space: a node with interval [(start, end)] falls in cell
    [(bucket start, bucket end)].  Because [start < end], only the upper
    triangle is populated.  Join-size estimates reduce to rectangle sums
    over the grid (see {!Estimator}). *)

open Sjos_xml

type t

val build : ?grid:int -> max_pos:int -> Node.t array -> t
(** Summarize a candidate set.  [grid] defaults to 32.  [max_pos] is the
    extent of the document's position space ({!Document.max_pos}). *)

val grid_size : t -> int
val cardinality : t -> float
val bucket : t -> int -> int
(** Bucket index of a position. *)

val count_in : t -> i0:int -> i1:int -> j0:int -> j1:int -> float
(** Inclusive rectangle sum over (start-bucket, end-bucket) cells. *)

val cell : t -> int -> int -> float

val containment_mass : t -> int -> int -> float
(** For a diagonal cell [(i, i)], the summed probability that a node of
    this set contains another node whose start falls uniformly in the same
    cell: [sum over nodes min(1, width / bucket_span)].  Containment is
    linear in the width because intervals of one document either nest or
    are disjoint — if a start falls strictly inside a wider interval, the
    whole node is contained.  Replaces the naive 1/4 same-cell heuristic,
    which wildly overestimates containment in flat documents where most
    intervals are far narrower than a bucket.  Zero for off-diagonal
    cells. *)

val level_counts : t -> float array
(** Histogram of node levels, index = level.  Used to refine
    ancestor-descendant estimates into parent-child estimates. *)
