open Sjos_xml

type t = {
  grid : Grid.t;
  diag_mass : float array;
      (* row-major g*g; for each diagonal cell, the sum over its nodes of
         min(1, (width / bucket_width)^2): the probability that a node
         whose start AND end fall uniformly in the same cell lies inside.
         Off-diagonal cells keep 0 (start bucket < end bucket there means
         width >= bucket span, handled by the coarse rules). *)
  bucket_width : float;
  card : float;
  levels : float array;
}

let build ?(grid = 32) ~max_pos nodes =
  if max_pos < 1 then invalid_arg "Position_histogram.build: bad max_pos";
  let g = Grid.create grid in
  let bucket_width = float_of_int max_pos /. float_of_int grid in
  let bucket pos =
    min (grid - 1) (int_of_float (float_of_int pos /. bucket_width))
  in
  let max_level =
    Array.fold_left (fun m (n : Node.t) -> max m n.Node.level) 0 nodes
  in
  let levels = Array.make (max_level + 2) 0.0 in
  let diag_mass = Array.make (grid * grid) 0.0 in
  Array.iter
    (fun (n : Node.t) ->
      let i = bucket n.Node.start_pos and j = bucket n.Node.end_pos in
      Grid.add g i j;
      if i = j then begin
        (* XML intervals nest or are disjoint, so a node whose start falls
           strictly inside [n] is contained in it: the containment
           probability for a same-cell node is linear in the width *)
        let w = float_of_int (Node.width n) /. bucket_width in
        diag_mass.((i * grid) + j) <-
          diag_mass.((i * grid) + j) +. Float.min 1.0 w
      end;
      levels.(n.Node.level) <- levels.(n.Node.level) +. 1.0)
    nodes;
  Grid.seal g;
  { grid = g; diag_mass; bucket_width; card = float_of_int (Array.length nodes); levels }

let grid_size t = Grid.size t.grid
let cardinality t = t.card

let bucket t pos =
  min (Grid.size t.grid - 1) (int_of_float (float_of_int pos /. t.bucket_width))

let count_in t ~i0 ~i1 ~j0 ~j1 = Grid.range_sum t.grid ~i0 ~i1 ~j0 ~j1
let cell t i j = Grid.get t.grid i j

let containment_mass t i j =
  if i < 0 || j < 0 || i >= grid_size t || j >= grid_size t then
    invalid_arg "Position_histogram.containment_mass: cell out of range";
  t.diag_mass.((i * grid_size t) + j)

let level_counts t = t.levels
