let check_compatible anc desc =
  if Position_histogram.grid_size anc <> Position_histogram.grid_size desc then
    invalid_arg "Estimator: histograms have different grid sizes"

let ancestor_descendant ~anc ~desc =
  check_compatible anc desc;
  let g = Position_histogram.grid_size anc in
  let total = ref 0.0 in
  for i = 0 to g - 1 do
    (* start positions precede end positions, so only j >= i is populated *)
    for j = i to g - 1 do
      let ca = Position_histogram.cell anc i j in
      if ca > 0.0 then begin
        let inner =
          Position_histogram.count_in desc ~i0:(i + 1) ~i1:(g - 1) ~j0:0
            ~j1:(j - 1)
        in
        let shared_start =
          0.5 *. Position_histogram.count_in desc ~i0:i ~i1:i ~j0:0 ~j1:(j - 1)
        in
        let shared_end =
          0.5
          *. Position_histogram.count_in desc ~i0:(i + 1) ~i1:(g - 1) ~j0:j
               ~j1:j
        in
        (* Same-cell containment: instead of a blind 1/4, use the summed
           width mass of the ancestor cell — a node of width w contains a
           uniformly placed narrower interval with probability (w/S)^2. *)
        let diagonal =
          Position_histogram.cell desc i j
          *. Position_histogram.containment_mass anc i j /. Float.max ca 1.0
        in
        total := !total +. (ca *. (inner +. shared_start +. shared_end +. diagonal))
      end
    done
  done;
  !total

(* Fraction of level-compatible (a, d) pairs that are exactly one level
   apart: Sum_l A[l]*D[l+1]  /  Sum_l A[l] * Sum_{m>l} D[m]. *)
let level_factor ~anc ~desc =
  let la = Position_histogram.level_counts anc in
  let ld = Position_histogram.level_counts desc in
  let deeper_than l =
    let acc = ref 0.0 in
    for m = l + 1 to Array.length ld - 1 do
      acc := !acc +. ld.(m)
    done;
    !acc
  in
  let ad = ref 0.0 and pc = ref 0.0 in
  Array.iteri
    (fun l a ->
      if a > 0.0 then begin
        ad := !ad +. (a *. deeper_than l);
        if l + 1 < Array.length ld then pc := !pc +. (a *. ld.(l + 1))
      end)
    la;
  if !ad <= 0.0 then 0.0 else !pc /. !ad

let parent_child ~anc ~desc =
  ancestor_descendant ~anc ~desc *. level_factor ~anc ~desc

let by_level nodes =
  let table : (int, Sjos_xml.Node.t list ref) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (fun (n : Sjos_xml.Node.t) ->
      match Hashtbl.find_opt table n.Sjos_xml.Node.level with
      | Some l -> l := n :: !l
      | None -> Hashtbl.add table n.Sjos_xml.Node.level (ref [ n ]))
    nodes;
  table

let parent_child_by_level ~grid ~max_pos ~anc ~desc =
  let anc_levels = by_level anc and desc_levels = by_level desc in
  Hashtbl.fold
    (fun level anc_slice acc ->
      match Hashtbl.find_opt desc_levels (level + 1) with
      | None -> acc
      | Some desc_slice ->
          let h nodes =
            Position_histogram.build ~grid ~max_pos
              (Array.of_list (List.rev !nodes))
          in
          acc +. ancestor_descendant ~anc:(h anc_slice) ~desc:(h desc_slice))
    anc_levels 0.0

let pairs axis ~anc ~desc =
  match axis with
  | Sjos_xml.Axes.Descendant -> ancestor_descendant ~anc ~desc
  | Sjos_xml.Axes.Child -> parent_child ~anc ~desc

let selectivity axis ~anc ~desc =
  let ca = Position_histogram.cardinality anc in
  let cd = Position_histogram.cardinality desc in
  if ca <= 0.0 || cd <= 0.0 then 0.0
  else Float.min 1.0 (Float.max 0.0 (pairs axis ~anc ~desc /. (ca *. cd)))
