type t = {
  g : int;
  cells : float array;  (* g*g, row-major: cell (i,j) at i*g + j *)
  mutable prefix : float array option;  (* (g+1)*(g+1) prefix sums *)
}

let create g =
  if g < 1 then invalid_arg "Grid.create: size must be positive";
  { g; cells = Array.make (g * g) 0.0; prefix = None }

let size t = t.g

let check t i j =
  if i < 0 || i >= t.g || j < 0 || j >= t.g then
    invalid_arg (Printf.sprintf "Grid: cell (%d,%d) out of range" i j)

let add t i j =
  if t.prefix <> None then invalid_arg "Grid.add: grid already sealed";
  check t i j;
  t.cells.((i * t.g) + j) <- t.cells.((i * t.g) + j) +. 1.0

let get t i j =
  check t i j;
  t.cells.((i * t.g) + j)

let total t = Array.fold_left ( +. ) 0.0 t.cells

let seal t =
  let g = t.g in
  let p = Array.make ((g + 1) * (g + 1)) 0.0 in
  for i = 1 to g do
    for j = 1 to g do
      p.((i * (g + 1)) + j) <-
        t.cells.(((i - 1) * g) + (j - 1))
        +. p.(((i - 1) * (g + 1)) + j)
        +. p.((i * (g + 1)) + j - 1)
        -. p.(((i - 1) * (g + 1)) + j - 1)
    done
  done;
  t.prefix <- Some p

let range_sum t ~i0 ~i1 ~j0 ~j1 =
  match t.prefix with
  | None -> invalid_arg "Grid.range_sum: call seal first"
  | Some p ->
      let g = t.g in
      let i0 = max 0 i0 and j0 = max 0 j0 in
      let i1 = min (g - 1) i1 and j1 = min (g - 1) j1 in
      if i0 > i1 || j0 > j1 then 0.0
      else
        let at i j = p.((i * (g + 1)) + j) in
        at (i1 + 1) (j1 + 1) -. at i0 (j1 + 1) -. at (i1 + 1) j0 +. at i0 j0
