open Sjos_pattern

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool
let cs = Alcotest.string

let test_simple_path () =
  let p, result = Xpath.compile "//manager//employee/name" in
  check ci "three nodes" 3 (Pattern.node_count p);
  check ci "result is last step" 2 result;
  check (Alcotest.option ci) "ordered by result" (Some 2) (Pattern.order_by p);
  check cb "is path" true (Pattern.is_path p);
  check cs "rendered" "manager(//employee(/name)) order by C"
    (Pattern.to_string p)

let test_branch_predicate () =
  let p, result = Xpath.compile "//manager[.//manager/department]/employee" in
  (* spine: manager -> employee; branch: manager -> manager -> department *)
  check ci "four nodes" 4 (Pattern.node_count p);
  check cb "not a path" false (Pattern.is_path p);
  check ci "result is employee" result result;
  let employee = result in
  (match Pattern.parent_of p employee with
  | Some (0, e) -> check cb "employee child of root" true (e.Pattern.axis = Sjos_xml.Axes.Child)
  | _ -> Alcotest.fail "employee not attached to spine root")

let test_attribute_and_text () =
  let p, _ = Xpath.compile "//eNest[@aLevel='4']//eNest[@aSixtyFour='3']" in
  let l0 = Pattern.label p 0 in
  check (Alcotest.option (Alcotest.pair cs cs)) "attr on first"
    (Some ("aLevel", "4"))
    l0.Sjos_storage.Candidate.attr;
  let p2, _ = Xpath.compile "//article[author='knuth']/title" in
  check ci "article-author-title" 3 (Pattern.node_count p2);
  (* the author branch carries the text predicate *)
  let has_knuth =
    List.exists
      (fun i ->
        (Pattern.label p2 i).Sjos_storage.Candidate.text = Some "knuth")
      (List.init 3 Fun.id)
  in
  check cb "text predicate placed" true has_knuth

let test_wildcard_and_dot () =
  let p, _ = Xpath.compile "//*[.='dan']" in
  check ci "one node" 1 (Pattern.node_count p);
  let l = Pattern.label p 0 in
  check (Alcotest.option cs) "wildcard" None l.Sjos_storage.Candidate.tag;
  check (Alcotest.option cs) "text" (Some "dan") l.Sjos_storage.Candidate.text

let test_end_to_end () =
  let idx = Lazy.force Helpers.tiny_index in
  let checks =
    [
      ("//manager//employee/name", 4);
      ("//manager[.//department]//employee", 5);
      ("//employee[name='dan']", 1);
      ("//manager[department/name='sales']", 1);
      ("//company//name", 8);
    ]
  in
  List.iter
    (fun (xp, expected) ->
      let p, _ = Xpath.compile xp in
      check ci xp expected (Sjos_exec.Naive.count idx p))
    checks

let test_optimizes_and_executes () =
  let idx = Lazy.force Helpers.pers_1k_index in
  let p, result = Xpath.compile "//manager[.//department/name]/employee" in
  let provider = Sjos_exec.Naive.exact_provider idx p in
  let r = Sjos_core.Optimizer.optimize ~provider Sjos_core.Optimizer.Dpp p in
  let run = Sjos_exec.Executor.execute idx p r.Sjos_core.Optimizer.plan in
  check ci "agrees with naive" (Sjos_exec.Naive.count idx p)
    (Array.length run.Sjos_exec.Executor.tuples);
  check ci "plan ordered by result node" result
    (Sjos_plan.Plan.ordered_by r.Sjos_core.Optimizer.plan)

let expect_error s =
  match Xpath.compile s with
  | exception Xpath.Syntax_error _ -> ()
  | _ -> Alcotest.fail ("expected syntax error: " ^ s)

let test_errors () =
  expect_error "";
  expect_error "manager";
  expect_error "//manager[";
  expect_error "//manager[@k]";
  expect_error "//manager[@k='v'";
  expect_error "//manager/";
  expect_error "//manager]extra";
  check cb "compile_opt error" true (Result.is_error (Xpath.compile_opt "//a["));
  check cb "compile_opt ok" true (Result.is_ok (Xpath.compile_opt "//a/b"))

let suite =
  [
    ("simple path", `Quick, test_simple_path);
    ("branch predicate", `Quick, test_branch_predicate);
    ("attribute and text predicates", `Quick, test_attribute_and_text);
    ("wildcard and dot", `Quick, test_wildcard_and_dot);
    ("end to end counts", `Quick, test_end_to_end);
    ("optimizes and executes", `Quick, test_optimizes_and_executes);
    ("errors", `Quick, test_errors);
  ]
