open Sjos_xml

let check = Alcotest.check
let ci = Alcotest.int
let cs = Alcotest.string
let cb = Alcotest.bool

(* ---------- Builder ---------- *)

let test_builder_intervals () =
  let b = Builder.create () in
  Builder.open_element b "a";
  Builder.open_element b "b";
  Builder.close_element b;
  Builder.open_element b "c";
  Builder.open_element b "d";
  Builder.close_element b;
  Builder.close_element b;
  Builder.close_element b;
  let doc = Builder.finish b in
  check ci "four nodes" 4 (Document.size doc);
  let a = Document.node doc 0
  and bn = Document.node doc 1
  and c = Document.node doc 2
  and d = Document.node doc 3 in
  check cs "root tag" "a" a.Node.tag;
  check ci "a start" 0 a.Node.start_pos;
  check ci "b start" 1 bn.Node.start_pos;
  check ci "b end" 2 bn.Node.end_pos;
  check ci "c start" 3 c.Node.start_pos;
  check ci "d start" 4 d.Node.start_pos;
  check ci "d end" 5 d.Node.end_pos;
  check ci "c end" 6 c.Node.end_pos;
  check ci "a end" 7 a.Node.end_pos;
  check ci "a level" 0 a.Node.level;
  check ci "d level" 2 d.Node.level;
  check ci "d parent" 2 d.Node.parent;
  check ci "b parent" 0 bn.Node.parent

let test_builder_text_and_attrs () =
  let b = Builder.create () in
  Builder.open_element b ~attrs:[ ("k", "v"); ("x", "1") ] "root";
  Builder.text b "hello";
  Builder.text b " world";
  Builder.close_element b;
  let doc = Builder.finish b in
  let r = Document.root doc in
  check cs "text accumulates" "hello world" r.Node.text;
  check (Alcotest.option cs) "attr k" (Some "v") (Node.attr r "k");
  check (Alcotest.option cs) "attr missing" None (Node.attr r "nope");
  check cb "has_attr_value" true (Node.has_attr_value r "x" "1");
  check cb "has_attr_value wrong" false (Node.has_attr_value r "x" "2")

let expect_invalid f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_builder_errors () =
  expect_invalid (fun () ->
      let b = Builder.create () in
      Builder.close_element b);
  expect_invalid (fun () ->
      let b = Builder.create () in
      Builder.text b "x");
  expect_invalid (fun () ->
      let b = Builder.create () in
      Builder.open_element b "a";
      Builder.finish b);
  expect_invalid (fun () ->
      let b = Builder.create () in
      Builder.finish b);
  expect_invalid (fun () ->
      let b = Builder.create () in
      Builder.leaf b "a";
      Builder.open_element b "b")

let test_builder_leaf_depth () =
  let b = Builder.create () in
  Builder.open_element b "root";
  check ci "depth 1" 1 (Builder.depth b);
  Builder.leaf ~text:"t" b "kid";
  check ci "leaf leaves depth" 1 (Builder.depth b);
  Builder.close_element b;
  check ci "depth 0" 0 (Builder.depth b);
  let doc = Builder.finish b in
  check ci "two nodes" 2 (Document.size doc);
  check cs "leaf text" "t" (Document.node doc 1).Node.text

(* ---------- Document ---------- *)

let nested_doc () =
  Parser.parse_string
    "<a><b><c/><d/></b><e><f><g/></f></e></a>"

let test_document_navigation () =
  let doc = nested_doc () in
  let tags l = List.map (fun (n : Node.t) -> n.Node.tag) l in
  let a = Document.root doc in
  check (Alcotest.list cs) "children of root" [ "b"; "e" ]
    (tags (Document.children doc a));
  check (Alcotest.list cs) "descendants of root" [ "b"; "c"; "d"; "e"; "f"; "g" ]
    (tags (Document.descendants doc a));
  let g = Document.node doc 6 in
  check cs "g tag" "g" g.Node.tag;
  check (Alcotest.list cs) "ancestors of g" [ "f"; "e"; "a" ]
    (tags (Document.ancestors doc g));
  check cb "root has no parent" true (Document.parent doc a = None);
  check ci "max level" 3 (Document.max_level doc);
  check ci "count b" 1 (Document.count_tag doc "b");
  check ci "count zz" 0 (Document.count_tag doc "zz");
  check (Alcotest.list cs) "tags sorted" [ "a"; "b"; "c"; "d"; "e"; "f"; "g" ]
    (Document.tags doc)

let test_document_validate () =
  let doc = nested_doc () in
  (match Document.validate doc with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* corrupt a level *)
  let nodes = Array.map Fun.id (Document.nodes doc) in
  nodes.(3) <- { nodes.(3) with Node.level = 9 };
  let bad = Document.of_nodes nodes in
  check cb "corrupt level detected" true (Result.is_error (Document.validate bad));
  (* corrupt interval nesting *)
  let nodes2 = Array.map Fun.id (Document.nodes doc) in
  nodes2.(1) <- { nodes2.(1) with Node.end_pos = 100 };
  check cb "corrupt interval detected" true
    (Result.is_error (Document.validate (Document.of_nodes nodes2)))

let test_document_errors () =
  expect_invalid (fun () -> Document.node (nested_doc ()) 99);
  expect_invalid (fun () -> Document.node (nested_doc ()) (-1));
  expect_invalid (fun () ->
      Document.of_nodes
        [| { Node.id = 5; tag = "x"; start_pos = 0; end_pos = 1; level = 0;
             parent = -1; attrs = []; text = "" } |])

(* ---------- Parser ---------- *)

let test_parser_basic () =
  let doc = Parser.parse_string "<r a='1' b=\"two\"><x>hi</x><y/></r>" in
  check ci "three nodes" 3 (Document.size doc);
  let r = Document.root doc in
  check (Alcotest.option cs) "attr a" (Some "1") (Node.attr r "a");
  check (Alcotest.option cs) "attr b" (Some "two") (Node.attr r "b");
  check cs "text of x" "hi" (Document.node doc 1).Node.text

let test_parser_entities () =
  let doc = Parser.parse_string "<r>a&amp;b&lt;c&gt;d&#65;&#x42;</r>" in
  check cs "entities decoded" "a&b<c>dAB" (Document.root doc).Node.text;
  let doc2 = Parser.parse_string "<r k='x&quot;y'/>" in
  check (Alcotest.option cs) "entity in attr" (Some "x\"y")
    (Node.attr (Document.root doc2) "k")

let test_parser_misc_markup () =
  let doc =
    Parser.parse_string
      "<?xml version='1.0'?><!-- c --><r><!-- inner --><a/><?pi data?><![CDATA[x<y]]></r>"
  in
  check ci "nodes" 2 (Document.size doc);
  check cs "cdata text" "x<y" (Document.root doc).Node.text

let expect_parse_error s =
  match Parser.parse_string s with
  | exception Parser.Parse_error _ -> ()
  | _ -> Alcotest.fail ("expected parse error for: " ^ s)

let test_parser_errors () =
  expect_parse_error "";
  expect_parse_error "<a><b></a></b>";
  expect_parse_error "<a>";
  expect_parse_error "<a></a><b></b>";
  expect_parse_error "<a foo></a>";
  expect_parse_error "<a>&unknown;</a>";
  expect_parse_error "plain text";
  check cb "error_to_string" true
    (Option.is_some
       (Parser.error_to_string
          (Parser.Parse_error { line = 1; col = 2; message = "m" })));
  check cb "error_to_string other" true
    (Option.is_none (Parser.error_to_string Exit))

let test_parse_serialize_roundtrip () =
  let original = Lazy.force Helpers.tiny_pers in
  let text = Serializer.to_string ~indent:false original in
  let reparsed = Parser.parse_string text in
  check ci "same size" (Document.size original) (Document.size reparsed);
  Array.iteri
    (fun i (n : Node.t) ->
      let m = Document.node reparsed i in
      check cs "tag" n.Node.tag m.Node.tag;
      check ci "start" n.Node.start_pos m.Node.start_pos;
      check ci "end" n.Node.end_pos m.Node.end_pos;
      check cs "text" n.Node.text m.Node.text)
    (Document.nodes original)

(* ---------- Serializer ---------- *)

let test_serializer_escaping () =
  check cs "text escape" "a&amp;b&lt;c&gt;" (Serializer.escape_text "a&b<c>");
  check cs "attr escape" "&quot;x&amp;" (Serializer.escape_attr "\"x&");
  let b = Builder.create () in
  Builder.open_element b ~attrs:[ ("k", "a\"b") ] "r";
  Builder.text b "1<2";
  Builder.close_element b;
  let doc = Builder.finish b in
  let s = Serializer.to_string ~indent:false doc in
  check cs "serialized" "<r k=\"a&quot;b\">1&lt;2</r>" s

let test_serializer_subtree () =
  let doc = nested_doc () in
  let e = Document.node doc 4 in
  check cs "subtree" "<e><f><g/></f></e>" (Serializer.subtree_to_string doc e)

let test_serializer_indent () =
  let doc = Parser.parse_string "<a><b/></a>" in
  let s = Serializer.to_string ~indent:true doc in
  check cb "has newline" true (String.contains s '\n')

(* ---------- Axes ---------- *)

let test_axes () =
  let doc = nested_doc () in
  let a = Document.node doc 0
  and b = Document.node doc 1
  and c = Document.node doc 2
  and e = Document.node doc 4
  and g = Document.node doc 6 in
  check cb "a anc of g" true (Axes.is_ancestor a g);
  check cb "a parent of b" true (Axes.is_parent a b);
  check cb "a not parent of g" false (Axes.is_parent a g);
  check cb "g desc of a" true (Axes.is_descendant g a);
  check cb "c child of b" true (Axes.is_child c b);
  check cb "b,e disjoint" true (Axes.disjoint b e);
  check cb "a,g not disjoint" false (Axes.disjoint a g);
  check cb "related child" true (Axes.related Axes.Child ~anc:a ~desc:b);
  check cb "related desc" true (Axes.related Axes.Descendant ~anc:a ~desc:g);
  check cb "related child deep" false (Axes.related Axes.Child ~anc:a ~desc:g);
  check cb "doc order" true (Axes.document_order a b < 0);
  check cs "axis strings" "/" (Axes.axis_to_string Axes.Child);
  check cs "axis strings 2" "//" (Axes.axis_to_string Axes.Descendant)

let test_node_helpers () =
  let doc = nested_doc () in
  let a = Document.node doc 0 in
  check ci "width" (a.Node.end_pos - a.Node.start_pos) (Node.width a);
  check cb "pp prints" true (String.length (Fmt.str "%a" Node.pp a) > 0)

let suite =
  [
    ("builder intervals", `Quick, test_builder_intervals);
    ("builder text and attrs", `Quick, test_builder_text_and_attrs);
    ("builder errors", `Quick, test_builder_errors);
    ("builder leaf and depth", `Quick, test_builder_leaf_depth);
    ("document navigation", `Quick, test_document_navigation);
    ("document validate", `Quick, test_document_validate);
    ("document errors", `Quick, test_document_errors);
    ("parser basic", `Quick, test_parser_basic);
    ("parser entities", `Quick, test_parser_entities);
    ("parser misc markup", `Quick, test_parser_misc_markup);
    ("parser errors", `Quick, test_parser_errors);
    ("parse/serialize roundtrip", `Quick, test_parse_serialize_roundtrip);
    ("serializer escaping", `Quick, test_serializer_escaping);
    ("serializer subtree", `Quick, test_serializer_subtree);
    ("serializer indent", `Quick, test_serializer_indent);
    ("axes predicates", `Quick, test_axes);
    ("node helpers", `Quick, test_node_helpers);
  ]
