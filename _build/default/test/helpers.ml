(* Shared fixtures and utilities for the test suites. *)

open Sjos_xml
open Sjos_storage
open Sjos_pattern

(* A small personnel document with known structure, used throughout:

   <company>
     <manager>                          id 1
       <name>ann</name>                 id 2
       <employee><name>bob</name></employee>      ids 3,4
       <manager>                        id 5
         <name>cid</name>               id 6
         <department><name>sales</name></department>  ids 7,8
         <employee><name>dan</name></employee>        ids 9,10
       </manager>
       <department><name>ops</name></department>      ids 11,12
     </manager>
     <manager>                          id 13
       <name>eve</name>                 id 14
       <employee><name>fay</name></employee>          ids 15,16
     </manager>
   </company> *)
let tiny_pers_xml =
  "<company><manager><name>ann</name><employee><name>bob</name></employee>\
   <manager><name>cid</name><department><name>sales</name></department>\
   <employee><name>dan</name></employee></manager>\
   <department><name>ops</name></department></manager>\
   <manager><name>eve</name><employee><name>fay</name></employee></manager>\
   </company>"

let tiny_pers = lazy (Parser.parse_string tiny_pers_xml)
let tiny_index = lazy (Element_index.build (Lazy.force tiny_pers))

(* Deterministic generated documents, shared across suites to amortize
   generation cost. *)
let pers_1k = lazy (Sjos_datagen.Pers.generate ~seed:7 ~target_nodes:1000 ())
let pers_1k_index = lazy (Element_index.build (Lazy.force pers_1k))
let dblp_1k = lazy (Sjos_datagen.Dblp.generate ~seed:8 ~target_nodes:1000 ())
let mbench_1k = lazy (Sjos_datagen.Mbench.generate ~seed:9 ~target_nodes:1000 ())

let pat s = Parse.pattern s

(* Compare two match-sets regardless of order. *)
let sorted_tuples l =
  List.sort compare (List.map Array.to_list l)

let check_same_matches msg expected actual =
  Alcotest.(check (list (list int)))
    msg (sorted_tuples expected) (sorted_tuples actual)

let exact_provider index p = Sjos_exec.Naive.exact_provider index p

let check_float = Alcotest.(check (float 1e-9))
let checkf msg a b = Alcotest.(check (float 1e-6)) msg a b

(* Run one optimizer algorithm against the tiny fixture. *)
let optimize_tiny ?(provider_of = exact_provider) algorithm p =
  let index = Lazy.force tiny_index in
  Sjos_core.Optimizer.optimize ~provider:(provider_of index p) algorithm p

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

(* Substring test (Stdlib has none). *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  nn = 0 || go 0
