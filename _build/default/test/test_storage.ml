open Sjos_xml
open Sjos_storage

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let doc () = Lazy.force Helpers.tiny_pers
let index () = Lazy.force Helpers.tiny_index

let test_index_lookup () =
  let idx = index () in
  check ci "managers" 3 (Element_index.cardinality idx "manager");
  check ci "employees" 3 (Element_index.cardinality idx "employee");
  check ci "departments" 2 (Element_index.cardinality idx "department");
  check ci "names" 8 (Element_index.cardinality idx "name");
  check ci "unknown" 0 (Element_index.cardinality idx "nope");
  check ci "total" (Document.size (doc ())) (Element_index.total_nodes idx)

let test_index_sorted () =
  let idx = index () in
  List.iter
    (fun tag ->
      let arr = Element_index.lookup idx tag in
      Array.iteri
        (fun i (n : Node.t) ->
          if i > 0 then
            check cb "sorted by start" true
              (arr.(i - 1).Node.start_pos < n.Node.start_pos))
        arr)
    (Element_index.tags idx)

let test_index_tags () =
  let idx = index () in
  check (Alcotest.list Alcotest.string) "tags"
    [ "company"; "department"; "employee"; "manager"; "name" ]
    (Element_index.tags idx)

let test_candidate_tag () =
  let idx = index () in
  let spec = Candidate.of_tag "manager" in
  check ci "managers" 3 (Array.length (Candidate.select idx spec));
  check ci "wildcard = all" (Document.size (doc ()))
    (Array.length (Candidate.select idx Candidate.any))

let test_candidate_text () =
  let idx = index () in
  let spec = { (Candidate.of_tag "name") with Candidate.text = Some "ann" } in
  let hits = Candidate.select idx spec in
  check ci "one ann" 1 (Array.length hits);
  check Alcotest.string "text matches" "ann" hits.(0).Node.text

let test_candidate_attr () =
  let d =
    Parser.parse_string "<r><x k='1'/><x k='2'/><x k='1'><y/></x></r>"
  in
  let idx = Element_index.build d in
  let spec = { (Candidate.of_tag "x") with Candidate.attr = Some ("k", "1") } in
  check ci "two k=1" 2 (Array.length (Candidate.select idx spec));
  let both =
    { Candidate.tag = None; attr = Some ("k", "2"); text = None }
  in
  check ci "wildcard with attr" 1 (Array.length (Candidate.select idx both))

let test_candidate_matches () =
  let d = Parser.parse_string "<r><x k='1'>t</x></r>" in
  let x = Document.node d 1 in
  check cb "tag" true (Candidate.matches (Candidate.of_tag "x") x);
  check cb "wrong tag" false (Candidate.matches (Candidate.of_tag "y") x);
  check cb "attr" true
    (Candidate.matches
       { Candidate.tag = Some "x"; attr = Some ("k", "1"); text = None }
       x);
  check cb "attr wrong" false
    (Candidate.matches
       { Candidate.tag = Some "x"; attr = Some ("k", "2"); text = None }
       x);
  check cb "text" true
    (Candidate.matches
       { Candidate.tag = None; attr = None; text = Some "t" }
       x)

let test_candidate_to_string () =
  check Alcotest.string "plain" "manager"
    (Candidate.spec_to_string (Candidate.of_tag "manager"));
  check Alcotest.string "wildcard" "*" (Candidate.spec_to_string Candidate.any);
  check Alcotest.string "full" "x[@k='v'][.='t']"
    (Candidate.spec_to_string
       { Candidate.tag = Some "x"; attr = Some ("k", "v"); text = Some "t" })

let test_stats () =
  let s = Stats.compute (doc ()) in
  check ci "node count" 17 s.Stats.node_count;
  check ci "distinct tags" 5 s.Stats.distinct_tags;
  check ci "max depth" 4 s.Stats.max_depth;
  check ci "leaves" 8 s.Stats.leaf_count;
  check cb "avg depth positive" true (s.Stats.avg_depth > 0.);
  check cb "avg fanout positive" true (s.Stats.avg_fanout > 1.);
  (match s.Stats.tag_counts with
  | (top, count) :: _ ->
      check Alcotest.string "most frequent" "name" top;
      check ci "count" 8 count
  | [] -> Alcotest.fail "no tag counts");
  check cb "pp prints" true (String.length (Fmt.str "%a" Stats.pp s) > 0)

let test_stats_single () =
  let s = Stats.compute (Parser.parse_string "<only/>") in
  check ci "one node" 1 s.Stats.node_count;
  check ci "no depth" 0 s.Stats.max_depth;
  check ci "one leaf" 1 s.Stats.leaf_count;
  Helpers.checkf "fanout zero" 0.0 s.Stats.avg_fanout

let suite =
  [
    ("index lookup", `Quick, test_index_lookup);
    ("index sorted", `Quick, test_index_sorted);
    ("index tags", `Quick, test_index_tags);
    ("candidate by tag", `Quick, test_candidate_tag);
    ("candidate by text", `Quick, test_candidate_text);
    ("candidate by attr", `Quick, test_candidate_attr);
    ("candidate matches", `Quick, test_candidate_matches);
    ("candidate to_string", `Quick, test_candidate_to_string);
    ("stats", `Quick, test_stats);
    ("stats single node", `Quick, test_stats_single);
  ]
