open Sjos_xml
open Sjos_pattern
open Sjos_cost
open Sjos_plan

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

let expect_invalid f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* ---------- Cost model ---------- *)

let test_cost_formulas () =
  let f = Cost_model.make ~f_index:2.0 ~f_sort:3.0 ~f_io:5.0 ~f_stack:7.0 () in
  Helpers.checkf "index" 20.0 (Cost_model.index_access f 10.0);
  Helpers.checkf "sort of 8" (3.0 *. 8.0 *. 3.0) (Cost_model.sort f 8.0);
  Helpers.checkf "sort of 1" 0.0 (Cost_model.sort f 1.0);
  Helpers.checkf "sort of 0" 0.0 (Cost_model.sort f 0.0);
  Helpers.checkf "stj-anc" ((2.0 *. 4.0 *. 5.0) +. (2.0 *. 3.0 *. 7.0))
    (Cost_model.stack_tree_anc f ~anc:3.0 ~output:4.0);
  Helpers.checkf "stj-desc" (2.0 *. 3.0 *. 7.0)
    (Cost_model.stack_tree_desc f ~anc:3.0)

let test_cost_monotonic () =
  let f = Cost_model.default in
  check cb "sort grows" true (Cost_model.sort f 100.0 < Cost_model.sort f 200.0);
  check cb "anc >= desc" true
    (Cost_model.stack_tree_anc f ~anc:10.0 ~output:0.0
    >= Cost_model.stack_tree_desc f ~anc:10.0)

let test_cost_make_errors () =
  expect_invalid (fun () -> Cost_model.make ~f_io:(-1.0) ());
  check cb "pp" true
    (String.length (Fmt.str "%a" Cost_model.pp_factors Cost_model.default) > 0)

(* ---------- Plan properties ---------- *)

let p3 () = Helpers.pat "manager(//employee(/name))"

let edge p i j = Option.get (Pattern.edge_between p i j)

let pipelined_plan p =
  (* ((A desc B) desc C): the first join outputs ordered by B, exactly what
     the second join's ancestor side needs — fully pipelined *)
  Plan.join
    ~anc_side:
      (Plan.join ~anc_side:(Plan.scan 0) ~desc_side:(Plan.scan 1)
         ~edge:(edge p 0 1) ~algo:Plan.Stack_tree_desc)
    ~desc_side:(Plan.scan 2) ~edge:(edge p 1 2) ~algo:Plan.Stack_tree_desc

let test_plan_accessors () =
  let p = p3 () in
  let plan = pipelined_plan p in
  check ci "mask" 0b111 (Plan.nodes_mask plan);
  check ci "joins" 2 (Plan.join_count plan);
  check ci "sorts" 0 (Plan.sort_count plan);
  check ci "ordered by C" 2 (Plan.ordered_by plan);
  let sorted = Plan.sort plan ~by:0 in
  check ci "sort changes order" 0 (Plan.ordered_by sorted);
  check ci "sort count" 1 (Plan.sort_count sorted);
  check Alcotest.string "algo names" "STJ-Anc"
    (Plan.algo_to_string Plan.Stack_tree_anc)

let test_plan_validate_ok () =
  let p = p3 () in
  (match Properties.validate p (pipelined_plan p) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check cb "valid" true (Properties.is_valid p (pipelined_plan p))

let test_plan_validate_rejects () =
  let p = p3 () in
  (* wrong input order: B side ordered by A after STJ-Anc, then joined on B *)
  let bad_order =
    Plan.join
      ~anc_side:
        (Plan.join ~anc_side:(Plan.scan 1) ~desc_side:(Plan.scan 2)
           ~edge:(edge p 1 2) ~algo:Plan.Stack_tree_desc)
        (* ordered by C, but the next join needs order by B *)
      ~desc_side:(Plan.scan 0) ~edge:(edge p 0 1) ~algo:Plan.Stack_tree_anc
  in
  check cb "bad order rejected" true (not (Properties.is_valid p bad_order));
  (* scanning the same node twice *)
  let double_scan =
    Plan.join ~anc_side:(Plan.scan 0) ~desc_side:(Plan.scan 0)
      ~edge:(edge p 0 1) ~algo:Plan.Stack_tree_anc
  in
  check cb "double scan rejected" true (not (Properties.is_valid p double_scan));
  (* missing node *)
  let partial =
    Plan.join ~anc_side:(Plan.scan 0) ~desc_side:(Plan.scan 1)
      ~edge:(edge p 0 1) ~algo:Plan.Stack_tree_anc
  in
  check cb "partial plan rejected" true (not (Properties.is_valid p partial));
  (* sort by unbound node *)
  let bad_sort = Plan.sort (Plan.scan 0) ~by:2 in
  check cb "sort unbound rejected" true (not (Properties.is_valid p bad_sort));
  (* join on a non-edge *)
  let non_edge =
    Plan.join ~anc_side:(Plan.scan 0) ~desc_side:(Plan.scan 2)
      ~edge:{ Pattern.anc = 0; desc = 2; axis = Axes.Descendant }
      ~algo:Plan.Stack_tree_anc
  in
  check cb "non-edge rejected" true (not (Properties.is_valid p non_edge))

let test_plan_shapes () =
  let p = p3 () in
  let plan = pipelined_plan p in
  check cb "fully pipelined" true (Properties.is_fully_pipelined plan);
  check cb "left deep" true (Properties.is_left_deep plan);
  check cb "not bushy" false (Properties.is_bushy plan);
  check cb "covers" true (Properties.covers p plan);
  let with_sort = Plan.sort plan ~by:0 in
  check cb "sorted not pipelined" false (Properties.is_fully_pipelined with_sort);
  (* a bushy plan over a 4-node pattern *)
  let p4 = Helpers.pat "a(//b,//c(/d))" in
  let bushy =
    Plan.join
      ~anc_side:
        (Plan.join ~anc_side:(Plan.scan 0) ~desc_side:(Plan.scan 1)
           ~edge:(edge p4 0 1) ~algo:Plan.Stack_tree_anc)
      ~desc_side:
        (Plan.join ~anc_side:(Plan.scan 2) ~desc_side:(Plan.scan 3)
           ~edge:(edge p4 2 3) ~algo:Plan.Stack_tree_anc)
      ~edge:(edge p4 0 2) ~algo:Plan.Stack_tree_anc
  in
  check cb "bushy valid" true (Properties.is_valid p4 bushy);
  check cb "bushy detected" true (Properties.is_bushy bushy);
  check cb "bushy pipelined" true (Properties.is_fully_pipelined bushy)

(* ---------- Costing ---------- *)

let test_costing_constant () =
  let p = p3 () in
  let f = Cost_model.make ~f_index:1.0 ~f_sort:1.0 ~f_io:1.0 ~f_stack:1.0 () in
  let provider = Costing.constant_provider 10.0 in
  let plan = pipelined_plan p in
  (* scans: 3 * 10; each STJ-Desc join: 2 * 10 = 20 *)
  Helpers.checkf "total" (30.0 +. 20.0 +. 20.0)
    (Costing.cost f provider p plan);
  Helpers.checkf "operator cost of scan" 10.0
    (Costing.operator_cost f provider (Plan.scan 0));
  let sort_node = Plan.sort plan ~by:0 in
  Helpers.checkf "sort operator" (10.0 *. Float.log 10.0 /. Float.log 2.0)
    (Costing.operator_cost f provider sort_node)

let test_costing_real_provider () =
  let idx = Lazy.force Helpers.tiny_index in
  let p = p3 () in
  let provider = Helpers.exact_provider idx p in
  let plan = pipelined_plan p in
  let cost = Costing.cost Cost_model.default provider p plan in
  check cb "cost positive" true (cost > 0.0)

(* ---------- Explain ---------- *)

let test_explain () =
  let p = p3 () in
  let plan = Plan.sort (pipelined_plan p) ~by:0 in
  let s = Explain.to_string p plan in
  check cb "mentions STJ-Desc" true (Helpers.contains s "STJ-Desc");
  check cb "mentions sort" true (Helpers.contains s "Sort by A");
  check cb "mentions scan" true (Helpers.contains s "IdxScan C");
  let one = Explain.one_line p plan in
  check Alcotest.string "one line" "sort[A](((A desc B) desc C))" one;
  let wc =
    Explain.with_costs Cost_model.default (Costing.constant_provider 5.0) p plan
  in
  check cb "costs annotated" true (Helpers.contains wc "card~5")

let suite =
  [
    ("cost formulas", `Quick, test_cost_formulas);
    ("cost monotonicity", `Quick, test_cost_monotonic);
    ("cost make errors", `Quick, test_cost_make_errors);
    ("plan accessors", `Quick, test_plan_accessors);
    ("plan validate ok", `Quick, test_plan_validate_ok);
    ("plan validate rejects", `Quick, test_plan_validate_rejects);
    ("plan shapes", `Quick, test_plan_shapes);
    ("costing constant provider", `Quick, test_costing_constant);
    ("costing real provider", `Quick, test_costing_real_provider);
    ("explain", `Quick, test_explain);
  ]
