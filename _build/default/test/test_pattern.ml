open Sjos_xml
open Sjos_storage
open Sjos_pattern

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool
let cs = Alcotest.string

let expect_invalid f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let labels tags = Array.of_list (List.map Candidate.of_tag tags)

let test_create_valid () =
  let p =
    Pattern.create
      ~labels:(labels [ "a"; "b"; "c" ])
      ~edges:[| (0, Axes.Descendant, 1); (1, Axes.Child, 2) |]
      ()
  in
  check ci "nodes" 3 (Pattern.node_count p);
  check ci "edges" 2 (Pattern.edge_count p);
  check cs "name A" "A" (Pattern.name p 0);
  check cs "name C" "C" (Pattern.name p 2);
  check cb "is path" true (Pattern.is_path p);
  check ci "depth" 2 (Pattern.depth p)

let test_create_errors () =
  expect_invalid (fun () ->
      Pattern.create ~labels:[||] ~edges:[||] ());
  expect_invalid (fun () ->
      Pattern.create ~labels:(labels [ "a"; "b" ]) ~edges:[||] ());
  (* edge pointing toward the root *)
  expect_invalid (fun () ->
      Pattern.create
        ~labels:(labels [ "a"; "b" ])
        ~edges:[| (1, Axes.Child, 0) |]
        ());
  (* disconnected: self-edge style duplicate *)
  expect_invalid (fun () ->
      Pattern.create
        ~labels:(labels [ "a"; "b"; "c" ])
        ~edges:[| (0, Axes.Child, 1); (0, Axes.Child, 1) |]
        ());
  expect_invalid (fun () ->
      Pattern.create
        ~labels:(labels [ "a"; "b" ])
        ~edges:[| (0, Axes.Child, 5) |]
        ());
  expect_invalid (fun () ->
      Pattern.create ~order_by:7
        ~labels:(labels [ "a"; "b" ])
        ~edges:[| (0, Axes.Child, 1) |]
        ())

let test_navigation () =
  let p = Helpers.pat "a(//b(/c),//d(/e(/f)))" in
  check ci "six nodes" 6 (Pattern.node_count p);
  check cb "not a path" false (Pattern.is_path p);
  check ci "depth" 3 (Pattern.depth p);
  (match Pattern.parent_of p 5 with
  | Some (4, e) ->
      check ci "edge anc" 4 e.Pattern.anc;
      check cb "axis child" true (e.Pattern.axis = Axes.Child)
  | _ -> Alcotest.fail "parent of F should be E");
  check cb "root has no parent" true (Pattern.parent_of p 0 = None);
  check ci "children of root" 2 (List.length (Pattern.children_of p 0));
  check ci "neighbors of D" 2 (List.length (Pattern.neighbors p 3));
  (match Pattern.edge_between p 0 3 with
  | Some e -> check cb "descendant axis" true (e.Pattern.axis = Axes.Descendant)
  | None -> Alcotest.fail "edge A-D expected");
  (match Pattern.edge_between p 3 0 with
  | Some e -> check ci "symmetric lookup" 0 e.Pattern.anc
  | None -> Alcotest.fail "edge D-A expected");
  check cb "no edge A-F" true (Pattern.edge_between p 0 5 = None)

let test_parse_roundtrip () =
  List.iter
    (fun s ->
      let p = Helpers.pat s in
      let s' = Pattern.to_string p in
      let p' = Helpers.pat s' in
      check cs ("roundtrip " ^ s) s' (Pattern.to_string p'))
    [
      "a(//b)";
      "a(//b(/c),//d(/e(/f)))";
      "manager(//employee(/name),//department(/name))";
      "eNest[@aLevel='2'](//eNest[@aSixtyFour='3'](/eOccasional))";
      "x[.='v'](/y)";
      "*(//y)";
      "a(//b,//c) order by B";
    ]

let test_parse_syntax () =
  let p = Helpers.pat "  //a ( / b , // c ) " in
  check ci "whitespace ok" 3 (Pattern.node_count p);
  let p2 = Helpers.pat "a(//b) order by B" in
  check (Alcotest.option ci) "order by parsed" (Some 1) (Pattern.order_by p2);
  let p3 = Pattern.with_order_by p2 None in
  check (Alcotest.option ci) "order by removed" None (Pattern.order_by p3);
  expect_invalid (fun () -> Pattern.with_order_by p2 (Some 9))

let expect_syntax_error s =
  match Helpers.pat s with
  | exception Parse.Syntax_error _ -> ()
  | _ -> Alcotest.fail ("expected syntax error: " ^ s)

let test_parse_errors () =
  expect_syntax_error "";
  expect_syntax_error "a(";
  expect_syntax_error "a(b)";
  expect_syntax_error "a(/b";
  expect_syntax_error "a(/b))";
  expect_syntax_error "a[@k]";
  expect_syntax_error "a[@k='v'";
  expect_syntax_error "a(/b) order by Z";
  expect_syntax_error "a(/b) nonsense";
  check cb "pattern_opt error" true
    (Result.is_error (Parse.pattern_opt "a("));
  check cb "pattern_opt ok" true (Result.is_ok (Parse.pattern_opt "a(/b)"))

let test_matches_mapping () =
  let doc = Lazy.force Helpers.tiny_pers in
  let p = Helpers.pat "manager(//employee(/name))" in
  let node i = Document.node doc i in
  (* manager id1 contains employee id3 with name child id4 *)
  check cb "valid mapping" true
    (Pattern.matches_mapping p doc [| node 1; node 3; node 4 |]);
  (* name id2 is not under employee id3 *)
  check cb "wrong child" false
    (Pattern.matches_mapping p doc [| node 1; node 3; node 2 |]);
  (* wrong label *)
  check cb "wrong label" false
    (Pattern.matches_mapping p doc [| node 0; node 3; node 4 |])

let test_shapes () =
  let specs n = Array.init n (fun i -> Candidate.of_tag (Printf.sprintf "t%d" i)) in
  let axes n = Array.make n Axes.Descendant in
  let a = Shapes.a (specs 3) (axes 2) in
  check cb "a is path" true (Pattern.is_path a);
  let b = Shapes.b (specs 4) (axes 3) in
  check ci "b children of root" 2 (List.length (Pattern.children_of b 0));
  check ci "b depth" 2 (Pattern.depth b);
  let c = Shapes.c (specs 5) (axes 4) in
  check ci "c nodes" 5 (Pattern.node_count c);
  check ci "c depth" 2 (Pattern.depth c);
  let d = Shapes.d (specs 6) (axes 5) in
  check ci "d nodes" 6 (Pattern.node_count d);
  check ci "d depth" 3 (Pattern.depth d);
  expect_invalid (fun () -> Shapes.a (specs 4) (axes 2));
  expect_invalid (fun () -> Shapes.a (specs 3) (axes 5))

let test_shapes_path_and_tree () =
  let p =
    Shapes.path
      (List.map Candidate.of_tag [ "a"; "b"; "c"; "d" ])
      [ Axes.Child; Axes.Descendant; Axes.Child ]
  in
  check ci "path nodes" 4 (Pattern.node_count p);
  check cb "is path" true (Pattern.is_path p);
  let t = Shapes.complete_tree ~fanout:2 ~depth:2 (Candidate.of_tag "x") Axes.Child in
  check ci "complete tree nodes" 7 (Pattern.node_count t);
  check ci "complete tree depth" 2 (Pattern.depth t);
  let t1 = Shapes.complete_tree ~fanout:3 ~depth:1 (Candidate.of_tag "x") Axes.Child in
  check ci "fanout 3 nodes" 4 (Pattern.node_count t1);
  expect_invalid (fun () ->
      Shapes.complete_tree ~fanout:0 ~depth:1 (Candidate.of_tag "x") Axes.Child)

let test_of_tags () =
  let p = Shapes.of_tags Shapes.a [ "x"; "y"; "z" ] [ Axes.Child; Axes.Child ] in
  check cs "rendered" "x(/y(/z))" (Pattern.to_string p)

let suite =
  [
    ("create valid", `Quick, test_create_valid);
    ("create errors", `Quick, test_create_errors);
    ("navigation", `Quick, test_navigation);
    ("parse roundtrip", `Quick, test_parse_roundtrip);
    ("parse syntax", `Quick, test_parse_syntax);
    ("parse errors", `Quick, test_parse_errors);
    ("matches_mapping", `Quick, test_matches_mapping);
    ("shapes a-d", `Quick, test_shapes);
    ("shapes path and complete tree", `Quick, test_shapes_path_and_tree);
    ("shapes of_tags", `Quick, test_of_tags);
  ]
