open Sjos_xml
open Sjos_storage
open Sjos_datagen

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

(* ---------- Rng ---------- *)

let test_rng_int () =
  let r = Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Rng.int r 7 in
    check cb "in range" true (v >= 0 && v < 7)
  done;
  (match Rng.int r 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bound 0 rejected")

let test_rng_float_bool () =
  let r = Rng.create 2 in
  for _ = 1 to 1000 do
    let f = Rng.float r in
    check cb "float range" true (f >= 0.0 && f < 1.0)
  done;
  let r2 = Rng.create 3 in
  let trues = ref 0 in
  for _ = 1 to 1000 do
    if Rng.bool r2 then incr trues
  done;
  check cb "bool roughly balanced" true (!trues > 300 && !trues < 700)

let test_rng_deterministic () =
  let a = Rng.create 99 and b = Rng.create 99 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.next a) (Rng.next b)
  done;
  let c = Rng.create 100 in
  check cb "different seed differs" true (Rng.next (Rng.create 99) <> Rng.next c)

let test_rng_pick_geometric () =
  let r = Rng.create 4 in
  for _ = 1 to 100 do
    let v = Rng.pick r [ 1; 2; 3 ] in
    check cb "picked member" true (List.mem v [ 1; 2; 3 ])
  done;
  (match Rng.pick r [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty pick rejected");
  for _ = 1 to 100 do
    let g = Rng.geometric r ~p:0.5 ~max:4 in
    check cb "geometric bounds" true (g >= 0 && g <= 4)
  done;
  check ci "p=0 is 0" 0 (Rng.geometric r ~p:0.0 ~max:10)

(* ---------- Generators ---------- *)

let close_to target actual =
  let t = float_of_int target and a = float_of_int actual in
  a > 0.5 *. t && a < 1.5 *. t

let test_generator_sizes () =
  List.iter
    (fun (name, doc, target) ->
      check cb
        (Printf.sprintf "%s size %d close to %d" name (Document.size doc) target)
        true
        (close_to target (Document.size doc)))
    [
      ("pers", Pers.generate ~seed:1 ~target_nodes:2000 (), 2000);
      ("dblp", Dblp.generate ~seed:1 ~target_nodes:2000 (), 2000);
      ("mbench", Mbench.generate ~seed:1 ~target_nodes:2000 (), 2000);
    ]

let test_generators_valid () =
  List.iter
    (fun doc ->
      match Document.validate doc with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    [
      Pers.generate ~seed:5 ~target_nodes:500 ();
      Dblp.generate ~seed:5 ~target_nodes:500 ();
      Mbench.generate ~seed:5 ~target_nodes:500 ();
    ]

let test_generators_deterministic () =
  let d1 = Pers.generate ~seed:11 ~target_nodes:800 () in
  let d2 = Pers.generate ~seed:11 ~target_nodes:800 () in
  check cb "same seed same doc" true
    (Document.nodes d1 = Document.nodes d2);
  let d3 = Pers.generate ~seed:12 ~target_nodes:800 () in
  check cb "different seed differs" true (Document.nodes d1 <> Document.nodes d3)

let test_pers_structure () =
  let doc = Lazy.force Helpers.pers_1k in
  let idx = Lazy.force Helpers.pers_1k_index in
  check Alcotest.string "root" "company" (Document.root doc).Node.tag;
  List.iter
    (fun tag ->
      check cb (tag ^ " present") true (Element_index.cardinality idx tag > 0))
    [ "manager"; "employee"; "department"; "name"; "salary" ];
  (* recursion: some manager under another manager *)
  let managers = Element_index.lookup idx "manager" in
  let nested =
    Array.exists
      (fun m ->
        Array.exists (fun m' -> Axes.is_ancestor m' m) managers)
      managers
  in
  check cb "managers nest" true nested;
  check cb "reasonably deep" true (Document.max_level doc >= 5)

let test_dblp_structure () =
  let doc = Lazy.force Helpers.dblp_1k in
  let idx = Element_index.build doc in
  check Alcotest.string "root" "dblp" (Document.root doc).Node.tag;
  List.iter
    (fun tag ->
      check cb (tag ^ " present") true (Element_index.cardinality idx tag > 0))
    [ "article"; "inproceedings"; "author"; "title"; "year"; "cite" ];
  check cb "shallow" true (Document.max_level doc <= 4)

let test_mbench_structure () =
  let doc = Lazy.force Helpers.mbench_1k in
  let idx = Element_index.build doc in
  check cb "mostly eNest" true
    (Element_index.cardinality idx "eNest" > Document.size doc / 2);
  check cb "deep" true (Document.max_level doc >= 8);
  (* aLevel attribute equals the node's level *)
  Array.iter
    (fun (n : Node.t) ->
      match Node.attr n "aLevel" with
      | Some l -> check ci "aLevel = level" n.Node.level (int_of_string l)
      | None -> Alcotest.fail "eNest without aLevel")
    (Element_index.lookup idx "eNest");
  (* aUnique values are unique *)
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun (n : Node.t) ->
      let u = Option.get (Node.attr n "aUnique") in
      check cb "aUnique unique" false (Hashtbl.mem seen u);
      Hashtbl.add seen u ())
    (Element_index.lookup idx "eNest")

(* ---------- Folding ---------- *)

let test_folding_structure () =
  let base = Pers.generate ~seed:21 ~target_nodes:300 () in
  let folded = Folding.replicate base 3 in
  (match Document.validate folded with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check ci "size = 3n+1" ((3 * Document.size base) + 1) (Document.size folded);
  check Alcotest.string "fresh root" "folded" (Document.root folded).Node.tag;
  check ci "three copies" 3
    (List.length (Document.children folded (Document.root folded)))

let test_folding_scales_matches () =
  let base = Pers.generate ~seed:22 ~target_nodes:300 () in
  let p = Helpers.pat "manager(//employee(/name))" in
  let base_count = Sjos_exec.Naive.count (Element_index.build base) p in
  let folded = Folding.replicate base 4 in
  let folded_count = Sjos_exec.Naive.count (Element_index.build folded) p in
  check ci "matches scale linearly" (4 * base_count) folded_count

let test_folding_errors () =
  let base = Pers.generate ~seed:23 ~target_nodes:100 () in
  match Folding.replicate base 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "factor 0 rejected"

let test_generator_target_validation () =
  List.iter
    (fun f ->
      match f () with
      | exception Invalid_argument _ -> ()
      | (_ : Document.t) -> Alcotest.fail "tiny target rejected")
    [
      (fun () -> Pers.generate ~target_nodes:1 ());
      (fun () -> Dblp.generate ~target_nodes:1 ());
      (fun () -> Mbench.generate ~target_nodes:1 ());
    ]

let suite =
  [
    ("rng int bounds", `Quick, test_rng_int);
    ("rng float/bool", `Quick, test_rng_float_bool);
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng pick/geometric", `Quick, test_rng_pick_geometric);
    ("generator sizes", `Quick, test_generator_sizes);
    ("generators produce valid documents", `Quick, test_generators_valid);
    ("generators deterministic", `Quick, test_generators_deterministic);
    ("pers structure", `Quick, test_pers_structure);
    ("dblp structure", `Quick, test_dblp_structure);
    ("mbench structure", `Quick, test_mbench_structure);
    ("folding structure", `Quick, test_folding_structure);
    ("folding scales matches", `Quick, test_folding_scales_matches);
    ("folding errors", `Quick, test_folding_errors);
    ("generator target validation", `Quick, test_generator_target_validation);
  ]
