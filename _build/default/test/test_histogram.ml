open Sjos_xml
open Sjos_storage
open Sjos_histogram
open Sjos_pattern

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

(* ---------- Grid ---------- *)

let test_grid_basics () =
  let g = Grid.create 4 in
  check ci "size" 4 (Grid.size g);
  Grid.add g 0 0;
  Grid.add g 1 2;
  Grid.add g 1 2;
  Grid.add g 3 3;
  Helpers.checkf "get" 2.0 (Grid.get g 1 2);
  Helpers.checkf "total" 4.0 (Grid.total g);
  Grid.seal g;
  Helpers.checkf "full sum" 4.0 (Grid.range_sum g ~i0:0 ~i1:3 ~j0:0 ~j1:3);
  Helpers.checkf "row" 2.0 (Grid.range_sum g ~i0:1 ~i1:1 ~j0:0 ~j1:3);
  Helpers.checkf "cell" 1.0 (Grid.range_sum g ~i0:3 ~i1:3 ~j0:3 ~j1:3);
  Helpers.checkf "empty range" 0.0 (Grid.range_sum g ~i0:2 ~i1:1 ~j0:0 ~j1:3);
  Helpers.checkf "clamped" 4.0 (Grid.range_sum g ~i0:(-5) ~i1:99 ~j0:(-1) ~j1:99)

let expect_invalid f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_grid_errors () =
  expect_invalid (fun () -> Grid.create 0);
  let g = Grid.create 2 in
  expect_invalid (fun () -> Grid.add g 2 0);
  expect_invalid (fun () -> Grid.range_sum g ~i0:0 ~i1:1 ~j0:0 ~j1:1);
  Grid.seal g;
  expect_invalid (fun () -> Grid.add g 0 0)

(* ---------- Position histogram ---------- *)

let test_position_histogram () =
  let doc = Lazy.force Helpers.tiny_pers in
  let idx = Lazy.force Helpers.tiny_index in
  let names = Element_index.lookup idx "name" in
  let h =
    Position_histogram.build ~grid:8 ~max_pos:(Document.max_pos doc) names
  in
  check ci "grid size" 8 (Position_histogram.grid_size h);
  Helpers.checkf "cardinality" 8.0 (Position_histogram.cardinality h);
  Helpers.checkf "total mass" 8.0
    (Position_histogram.count_in h ~i0:0 ~i1:7 ~j0:0 ~j1:7);
  let levels = Position_histogram.level_counts h in
  Helpers.checkf "level sum" 8.0 (Array.fold_left ( +. ) 0.0 levels);
  check cb "bucket in range" true (Position_histogram.bucket h 0 = 0)

(* ---------- Pair estimation ---------- *)

(* Exact number of (anc, desc) pairs by brute force. *)
let exact_pairs axis anc desc =
  Array.fold_left
    (fun acc a ->
      Array.fold_left
        (fun acc d -> if Axes.related axis ~anc:a ~desc:d then acc + 1 else acc)
        acc desc)
    0 anc

let pair_fixture tag_a tag_b =
  let doc = Lazy.force Helpers.pers_1k in
  let idx = Lazy.force Helpers.pers_1k_index in
  let max_pos = Document.max_pos doc in
  let a = Element_index.lookup idx tag_a in
  let b = Element_index.lookup idx tag_b in
  ( Position_histogram.build ~grid:32 ~max_pos a,
    Position_histogram.build ~grid:32 ~max_pos b,
    a,
    b )

let test_estimate_ad_reasonable () =
  let ha, hb, a, b = pair_fixture "manager" "employee" in
  let est = Estimator.ancestor_descendant ~anc:ha ~desc:hb in
  let exact = float_of_int (exact_pairs Axes.Descendant a b) in
  check cb "positive" true (est > 0.);
  check cb
    (Printf.sprintf "within 4x of exact (est=%.0f exact=%.0f)" est exact)
    true
    (est > exact /. 4.0 && est < exact *. 4.0)

let test_estimate_pc_le_ad () =
  let ha, hb, _, _ = pair_fixture "manager" "employee" in
  let ad = Estimator.ancestor_descendant ~anc:ha ~desc:hb in
  let pc = Estimator.parent_child ~anc:ha ~desc:hb in
  check cb "pc <= ad" true (pc <= ad +. 1e-9);
  check cb "pc >= 0" true (pc >= 0.)

let test_estimate_empty_side () =
  let doc = Lazy.force Helpers.pers_1k in
  let max_pos = Document.max_pos doc in
  let empty = Position_histogram.build ~grid:32 ~max_pos [||] in
  let ha, _, _, _ = pair_fixture "manager" "employee" in
  Helpers.checkf "empty desc" 0.0 (Estimator.ancestor_descendant ~anc:ha ~desc:empty);
  Helpers.checkf "empty anc" 0.0 (Estimator.ancestor_descendant ~anc:empty ~desc:ha);
  Helpers.checkf "selectivity zero" 0.0
    (Estimator.selectivity Axes.Descendant ~anc:empty ~desc:ha)

let test_estimate_grid_mismatch () =
  let doc = Lazy.force Helpers.pers_1k in
  let max_pos = Document.max_pos doc in
  let h1 = Position_histogram.build ~grid:8 ~max_pos [||] in
  let h2 = Position_histogram.build ~grid:16 ~max_pos [||] in
  expect_invalid (fun () -> Estimator.ancestor_descendant ~anc:h1 ~desc:h2)

let test_selectivity_bounds () =
  let ha, hb, _, _ = pair_fixture "manager" "name" in
  List.iter
    (fun axis ->
      let s = Estimator.selectivity axis ~anc:ha ~desc:hb in
      check cb "in [0,1]" true (s >= 0.0 && s <= 1.0))
    [ Axes.Child; Axes.Descendant ]

(* ---------- Cluster cardinality ---------- *)

let test_cardinality_nodes () =
  let idx = Lazy.force Helpers.tiny_index in
  let p = Helpers.pat "manager(//employee(/name))" in
  let c = Cardinality.create ~grid:8 idx p in
  Helpers.checkf "node 0 card" 3.0 (Cardinality.node_card c 0);
  Helpers.checkf "node 1 card" 3.0 (Cardinality.node_card c 1);
  Helpers.checkf "node 2 card" 8.0 (Cardinality.node_card c 2);
  Helpers.checkf "singleton cluster = node card" 3.0
    (Cardinality.cluster_card c 1)

let test_cardinality_cluster_vs_exact () =
  let idx = Lazy.force Helpers.pers_1k_index in
  let p = Helpers.pat "manager(//employee(/name))" in
  let c = Cardinality.create ~grid:32 idx p in
  let est = Cardinality.cluster_card c 0b111 in
  let exact = float_of_int (Sjos_exec.Naive.cluster_count idx p 0b111) in
  check cb
    (Printf.sprintf "cluster est within 5x (est=%.0f exact=%.0f)" est exact)
    true
    (est > exact /. 5.0 && est < exact *. 5.0)

let test_cardinality_validation () =
  let idx = Lazy.force Helpers.tiny_index in
  let p = Helpers.pat "manager(//employee(/name))" in
  let c = Cardinality.create idx p in
  expect_invalid (fun () -> Cardinality.cluster_card c 0);
  (* nodes 0 and 2 are not adjacent: not a connected cluster *)
  expect_invalid (fun () -> Cardinality.cluster_card c 0b101);
  check cb "connected" true (Cardinality.is_connected p 0b011);
  check cb "disconnected" false (Cardinality.is_connected p 0b101);
  check ci "root of full" 0 (Cardinality.cluster_root p 0b111);
  check ci "root of subtree" 1 (Cardinality.cluster_root p 0b110)

let test_cardinality_edges () =
  let idx = Lazy.force Helpers.tiny_index in
  let p = Helpers.pat "manager(//employee)" in
  let c = Cardinality.create ~grid:8 idx p in
  match Pattern.edges p with
  | [ e ] ->
      let pairs = Cardinality.edge_pairs c e in
      check cb "pairs positive" true (pairs > 0.);
      let s = Cardinality.edge_selectivity c e in
      check cb "selectivity bounds" true (s >= 0. && s <= 1.);
      Helpers.checkf "pairs = sel * |A| * |B|" pairs (s *. 3.0 *. 3.0);
      Helpers.checkf "full mask" 3.0 (float_of_int (Cardinality.full_mask c))
  | _ -> Alcotest.fail "expected one edge"

let suite =
  [
    ("grid basics", `Quick, test_grid_basics);
    ("grid errors", `Quick, test_grid_errors);
    ("position histogram", `Quick, test_position_histogram);
    ("AD estimate near exact", `Quick, test_estimate_ad_reasonable);
    ("PC estimate below AD", `Quick, test_estimate_pc_le_ad);
    ("estimates with empty side", `Quick, test_estimate_empty_side);
    ("grid mismatch rejected", `Quick, test_estimate_grid_mismatch);
    ("selectivity bounds", `Quick, test_selectivity_bounds);
    ("cardinality of nodes", `Quick, test_cardinality_nodes);
    ("cluster estimate vs exact", `Quick, test_cardinality_cluster_vs_exact);
    ("cardinality validation", `Quick, test_cardinality_validation);
    ("edge pairs and selectivity", `Quick, test_cardinality_edges);
  ]
