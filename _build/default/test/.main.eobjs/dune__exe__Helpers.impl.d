test/helpers.ml: Alcotest Array Element_index Lazy List Parse Parser QCheck2 QCheck_alcotest Sjos_core Sjos_datagen Sjos_exec Sjos_pattern Sjos_storage Sjos_xml String
