test/test_xml.ml: Alcotest Array Axes Builder Document Fmt Fun Helpers Lazy List Node Option Parser Result Serializer Sjos_xml String
