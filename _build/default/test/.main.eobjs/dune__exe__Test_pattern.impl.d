test/test_pattern.ml: Alcotest Array Axes Candidate Document Helpers Lazy List Parse Pattern Printf Result Shapes Sjos_pattern Sjos_storage Sjos_xml
