test/test_storage.ml: Alcotest Array Candidate Document Element_index Fmt Helpers Lazy List Node Parser Sjos_storage Sjos_xml Stats String
