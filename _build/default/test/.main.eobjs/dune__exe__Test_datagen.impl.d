test/test_datagen.ml: Alcotest Array Axes Dblp Document Element_index Folding Hashtbl Helpers Lazy List Mbench Node Option Pers Printf Rng Sjos_datagen Sjos_exec Sjos_storage Sjos_xml
