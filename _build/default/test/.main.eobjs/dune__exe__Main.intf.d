test/main.mli:
