test/test_xpath.ml: Alcotest Array Fun Helpers Lazy List Pattern Result Sjos_core Sjos_exec Sjos_pattern Sjos_plan Sjos_storage Sjos_xml Xpath
