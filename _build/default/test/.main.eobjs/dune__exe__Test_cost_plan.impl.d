test/test_cost_plan.ml: Alcotest Axes Cost_model Costing Explain Float Fmt Helpers Lazy Option Pattern Plan Properties Sjos_cost Sjos_pattern Sjos_plan Sjos_xml String
