test/test_storage_extra.ml: Alcotest Array Axes Element_index Helpers Lazy List Merge_join Metrics Operators Pager Parser Printf Sjos_exec Sjos_plan Sjos_storage Sjos_xml Stack_tree Tuple
