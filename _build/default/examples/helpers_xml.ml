(* A small personnel document shared by example programs. *)

let tiny_company =
  "<company>\
   <manager><name>ann</name>\
   <employee><name>bob</name></employee>\
   <manager><name>cid</name>\
   <department><name>sales</name></department>\
   <employee><name>dan</name></employee>\
   </manager>\
   <department><name>ops</name></department>\
   </manager>\
   <manager><name>eve</name>\
   <employee><name>fay</name></employee>\
   </manager>\
   </company>"
