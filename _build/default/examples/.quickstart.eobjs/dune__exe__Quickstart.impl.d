examples/quickstart.ml: Array Database Fmt Option Sjos_core Sjos_engine Sjos_exec Sjos_pattern Sjos_plan Sjos_xml
