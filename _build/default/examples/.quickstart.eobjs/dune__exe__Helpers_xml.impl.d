examples/helpers_xml.ml:
