examples/dblp_explore.ml: Array Database Fmt List Parse Pattern Sjos_core Sjos_engine Sjos_exec Sjos_histogram Sjos_pattern Sjos_plan Sjos_storage Sjos_xml Workload
