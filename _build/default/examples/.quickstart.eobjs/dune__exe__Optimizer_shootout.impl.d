examples/optimizer_shootout.ml: Database Fmt List Optimizer Sjos_core Sjos_engine Sjos_exec Workload
