examples/quickstart.mli:
