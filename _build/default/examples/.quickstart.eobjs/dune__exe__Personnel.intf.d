examples/personnel.mli:
