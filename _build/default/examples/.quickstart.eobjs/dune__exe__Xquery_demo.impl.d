examples/xquery_demo.ml: Database Fmt Helpers_xml List Sjos_core Sjos_engine Sjos_pattern Sjos_plan Sjos_xml String Xquery
