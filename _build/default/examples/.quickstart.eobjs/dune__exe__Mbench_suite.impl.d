examples/mbench_suite.ml: Array Database Fmt List Pattern Sjos_core Sjos_engine Sjos_exec Sjos_pattern Sjos_plan Sjos_storage Workload Xpath
