examples/optimizer_shootout.mli:
