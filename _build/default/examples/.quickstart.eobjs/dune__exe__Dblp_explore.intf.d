examples/dblp_explore.mli:
