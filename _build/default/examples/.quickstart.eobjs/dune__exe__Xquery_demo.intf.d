examples/xquery_demo.mli:
