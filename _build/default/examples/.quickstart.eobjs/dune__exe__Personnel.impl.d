examples/personnel.ml: Array Database Fmt List Optimizer Random_plan Sjos_core Sjos_engine Sjos_exec Sjos_pattern Sjos_storage Workload
