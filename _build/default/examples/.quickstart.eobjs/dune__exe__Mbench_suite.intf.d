examples/mbench_suite.mli:
