(* Optimizer shootout across pattern shapes and data sets: a compact
   reproduction of the paper's qualitative findings —

   - DP and DPP always agree (both optimal), DPP works much less;
   - left-deep-only optimization (DPAP-LD) misses good bushy plans;
   - FP is nearly optimal at a fraction of the optimization effort.

   Run with: dune exec examples/optimizer_shootout.exe *)

open Sjos_engine
open Sjos_core

let () =
  Fmt.pr
    "%-14s %-9s | %10s %8s | %10s %8s | %10s %8s | %10s %8s@." "query" "data"
    "DP units" "plans" "DPP units" "plans" "LD units" "plans" "FP units"
    "plans";
  List.iter
    (fun (q : Workload.query) ->
      let db =
        Database.of_document (Workload.generate ~size:8_000 q.Workload.dataset)
      in
      let cell algo =
        (* use_cache:false — the whole point here is to measure the search *)
        let run =
          Database.run
            ~opts:(Query_opts.make ~algorithm:algo ~use_cache:false ())
            db q.Workload.pattern
        in
        ( run.Database.exec.Sjos_exec.Executor.cost_units,
          run.Database.opt.Optimizer.plans_considered )
      in
      let dp_u, dp_p = cell Optimizer.Dp in
      let dpp_u, dpp_p = cell Optimizer.Dpp in
      let ld_u, ld_p = cell Optimizer.Dpap_ld in
      let fp_u, fp_p = cell Optimizer.Fp in
      Fmt.pr "%-14s %-9s | %10.0f %8d | %10.0f %8d | %10.0f %8d | %10.0f %8d@."
        q.Workload.id
        (Workload.dataset_name q.Workload.dataset)
        dp_u dp_p dpp_u dpp_p ld_u ld_p fp_u fp_p)
    Workload.queries;
  Fmt.pr
    "@.Reading guide: 'units' = measured execution cost units of the chosen \
     plan (lower is better); 'plans' = alternatives the optimizer costed.  \
     DP and DPP columns should match unit-for-unit; DPAP-LD should lose on \
     the branchy d-shaped queries; FP should track DP closely while \
     considering an order of magnitude fewer plans.@."
