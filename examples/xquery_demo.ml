(* FLWOR queries end to end: XQuery-subset text in, optimized structural
   join plan in the middle, constructed XML out — the full Timber-style
   pipeline the paper's optimizer sits inside.

   Run with: dune exec examples/xquery_demo.exe *)

open Sjos_engine

let queries =
  [
    ( "names of dan's bosses",
      "for $m in //manager for $e in $m//employee where $e/name = 'dan' \
       return <boss>{$m/name/text()}</boss>" );
    ( "departments of managers who manage managers",
      "for $m in //manager for $s in $m//manager for $d in $s/department \
       return <dept>{$d/name/text()}</dept>" );
    ( "employees of managers with a sales department",
      "for $m in //manager for $e in $m//employee where $m//department/name \
       = 'sales' return <hit>{$e/name}</hit>" );
  ]

let () =
  let db = Database.of_string Helpers_xml.tiny_company in
  Fmt.pr "Database: %d nodes@.@."
    (Sjos_xml.Document.size (Database.document db));
  List.iter
    (fun (label, q) ->
      Fmt.pr "-- %s@.%s@." label (String.trim q);
      (* show the pattern and plan the FLWOR compiles to *)
      let compiled, _ = Xquery.compile q in
      Fmt.pr "pattern: %s@."
        (Sjos_pattern.Pattern.to_string compiled.Xquery.pattern);
      let prep = Database.prepare db compiled.Xquery.pattern in
      let opt = Database.prepared_result prep in
      Fmt.pr "plan:    %s@."
        (Sjos_plan.Explain.one_line compiled.Xquery.pattern
           opt.Sjos_core.Optimizer.plan);
      (* Xquery.run compiles to the same pattern structure, so this hits
         the plan cache populated by the prepare above *)
      Fmt.pr "result:  %s@.@." (Xquery.run_string db q))
    queries
