(* The paper's running example (Example 2.2 / Figure 1):

   "for each manager A, list the names of the employees supervised by A,
    and the name of any department that is directly supervised by another
    manager, who is a subordinate of A."

   This example generates a synthetic personnel database, shows why the
   navigational strawman is slow, and compares the plans the five
   optimizers pick for the Figure 1 pattern.

   Run with: dune exec examples/personnel.exe *)

open Sjos_engine
open Sjos_core

let () =
  let doc = Workload.generate ~size:20_000 Workload.Pers in
  let db = Database.of_document doc in
  Fmt.pr "Personnel database: %a@.@." Sjos_storage.Stats.pp (Database.stats db);

  let pattern = Workload.q_pers_3_d.Workload.pattern in
  Fmt.pr "Figure-1 pattern: %s@.@." (Sjos_pattern.Pattern.to_string pattern);

  (* The five algorithms of the paper, plus the DPP variant without the
     lookahead rule (DPP' of Table 2). *)
  let algorithms =
    Optimizer.all pattern @ [ Optimizer.Dpp_no_lookahead ]
  in
  Fmt.pr "%-12s %12s %10s %14s %12s %10s@." "algorithm" "est. cost"
    "plans" "exec units" "exec time" "matches";
  List.iter
    (fun algo ->
      (* cold options: a cache hit would report zero plans considered *)
      let run =
        Database.run
          ~opts:(Query_opts.make ~algorithm:algo ~use_cache:false ())
          db pattern
      in
      Fmt.pr "%-12s %12.0f %10d %14.0f %10.2fms %10d@."
        (Optimizer.name algo) run.opt.Optimizer.est_cost
        run.opt.Optimizer.plans_considered
        run.exec.Sjos_exec.Executor.cost_units
        (run.exec.Sjos_exec.Executor.seconds *. 1000.)
        (Array.length run.exec.Sjos_exec.Executor.tuples))
    algorithms;

  (* Contrast with a deliberately bad join order. *)
  let provider = Database.provider db pattern in
  let ctx = Sjos_core.Search.make_ctx ~provider pattern in
  let _, bad_plan = Random_plan.worst_of ~seed:7 ctx 20 in
  let bad = Database.execute_plan db pattern bad_plan in
  Fmt.pr "%-12s %12s %10s %14.0f %10.2fms %10d@." "bad plan" "-" "-"
    bad.Sjos_exec.Executor.cost_units
    (bad.Sjos_exec.Executor.seconds *. 1000.)
    (Array.length bad.Sjos_exec.Executor.tuples);

  let prep = Database.prepare db pattern in
  Fmt.pr "@.The DPP plan in detail (fingerprint %s):@.%s@."
    (Sjos_pattern.Fingerprint.short (Database.prepared_fingerprint prep))
    (Database.explain_prepared prep)
