(* A Michigan-benchmark-style query suite, written in XPath and compiled
   through the Xpath front end.  It exercises the attribute-predicate
   candidate sets that make Mbench interesting: every element shares the
   tag eNest, so only @aLevel / @aSixtyFour / @aFour selections tell the
   pattern nodes apart, and the positional histograms have to carry the
   optimizer.

   Run with: dune exec examples/mbench_suite.exe *)

open Sjos_engine
open Sjos_pattern

(* Names follow the Mbench structure-query convention (QS = structure). *)
let suite =
  [
    (* exact-match selections *)
    ("QS1: sparse attribute", "//eNest[@aSixtyFour='3']");
    ("QS2: dense attribute", "//eNest[@aFour='1']");
    (* parent-child vs ancestor-descendant *)
    ("QS8: child step", "//eNest[@aLevel='4']/eNest");
    ("QS11: descendant step", "//eNest[@aLevel='4']//eNest[@aSixtyFour='3']");
    (* deeper chains *)
    ("QS15: 3-step chain", "//eNest[@aLevel='2']//eNest[@aLevel='6']/eNest");
    (* twig with two branches *)
    ( "QS21: twig",
      "//eNest[@aLevel='3'][.//eNest[@aSixtyFour='7']]//eOccasional" );
    (* value + structure *)
    ("QS25: sparse under dense", "//eNest[@aFour='2']//eNest[@aSixtyFour='40']");
  ]

let () =
  let db = Database.of_document (Workload.generate ~size:50_000 Workload.Mbench) in
  Fmt.pr "Mbench-like database: %a@.@." Sjos_storage.Stats.pp (Database.stats db);
  Fmt.pr "%-26s %8s %10s %12s %10s  %s@." "query" "nodes" "est." "actual"
    "exec(ms)" "plan";
  List.iter
    (fun (label, xpath) ->
      match Xpath.compile_opt xpath with
      | Error msg -> Fmt.pr "%-26s failed: %s@." label msg
      | Ok (pattern, _result) ->
          let prep = Database.prepare db pattern in
          let full = (1 lsl Pattern.node_count pattern) - 1 in
          let est =
            (Database.provider db pattern).Sjos_plan.Costing.cluster_card full
          in
          let run = Database.exec prep in
          Fmt.pr "%-26s %8d %10.0f %12d %10.2f  %s@." label
            (Pattern.node_count pattern)
            est
            (Array.length run.exec.Sjos_exec.Executor.tuples)
            (run.exec.Sjos_exec.Executor.seconds *. 1000.)
            (Sjos_plan.Explain.one_line pattern run.opt.Sjos_core.Optimizer.plan))
    suite;
  Fmt.pr
    "@.Estimates come from 32x32 positional histograms over each \
     attribute-filtered candidate set; 'plan' shows the structural join \
     order DPP picked.@."
