(* Querying a shallow bibliography: shows the cardinality estimator at
   work (estimates vs. exact counts) and how the optimizer's choice reacts
   to candidate-set sizes.

   Run with: dune exec examples/dblp_explore.exe *)

open Sjos_engine
open Sjos_pattern

let queries =
  [
    ("articles with authors", "article(/author)");
    ("articles by knuth", "article(/author[.='knuth'])");
    ("inproceedings citing something", "inproceedings(//cite(/title))");
    ("co-citation shape", "dblp(//article(/author),//inproceedings(/cite))");
  ]

let () =
  let doc = Workload.generate ~size:30_000 Workload.Dblp in
  let db = Database.of_document doc in
  let idx = Database.index db in
  Fmt.pr "DBLP-like database: %a@.@." Sjos_storage.Stats.pp (Database.stats db);

  List.iter
    (fun (label, text) ->
      let pattern = Parse.pattern text in
      let provider = Database.provider db pattern in
      let full = (1 lsl Pattern.node_count pattern) - 1 in
      let estimated = provider.Sjos_plan.Costing.cluster_card full in
      let run = Database.run db pattern in
      let actual = Array.length run.exec.Sjos_exec.Executor.tuples in
      Fmt.pr "%-32s %-46s@." label text;
      Fmt.pr "    estimated %-10.0f actual %-10d plan %s@." estimated actual
        (Sjos_plan.Explain.one_line pattern run.opt.Sjos_core.Optimizer.plan);
      ignore idx)
    queries;

  (* Estimation quality per edge for one pattern *)
  let pattern = Parse.pattern "inproceedings(//cite(/title))" in
  let cards = Sjos_histogram.Cardinality.create (Database.index db) pattern in
  Fmt.pr "@.Per-edge estimates for %s:@." (Pattern.to_string pattern);
  List.iter
    (fun (e : Pattern.edge) ->
      let est = Sjos_histogram.Cardinality.edge_pairs cards e in
      let mask = (1 lsl e.Pattern.anc) lor (1 lsl e.Pattern.desc) in
      let exact = Sjos_exec.Naive.cluster_count (Database.index db) pattern mask in
      Fmt.pr "  %s%s%s: estimated %.0f, exact %d@."
        (Pattern.name pattern e.Pattern.anc)
        (Sjos_xml.Axes.axis_to_string e.Pattern.axis)
        (Pattern.name pattern e.Pattern.desc)
        est exact)
    (Pattern.edges pattern)
