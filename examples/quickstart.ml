(* Quickstart: parse a document, pose a tree-pattern query, let the
   optimizer pick a structural-join order, and execute it.

   Run with: dune exec examples/quickstart.exe *)

open Sjos_engine

let xml =
  {|<library>
      <shelf floor="1">
        <book genre="db"><title>Transaction Processing</title>
          <author>Gray</author><author>Reuter</author></book>
        <book genre="pl"><title>SICP</title><author>Abelson</author></book>
      </shelf>
      <shelf floor="2">
        <book genre="db"><title>Readings in Databases</title>
          <author>Stonebraker</author></book>
      </shelf>
    </library>|}

let () =
  (* 1. load & index *)
  let db = Database.of_string xml in
  Fmt.pr "Loaded %d element nodes.@."
    (Sjos_xml.Document.size (Database.document db));

  (* 2. a query pattern: shelves containing db books with their authors.
     '/' is parent-child, '//' ancestor-descendant. *)
  let pattern =
    Sjos_pattern.Parse.pattern "shelf(//book[@genre='db'](/author))"
  in
  Fmt.pr "Query pattern: %s@." (Sjos_pattern.Pattern.to_string pattern);

  (* 3. prepare the query: canonicalize, fingerprint, and let the optimizer
     (DPP: optimal plan) choose the join order.  The handle caches the
     chosen plan, so re-executing skips optimization entirely. *)
  let prep = Database.prepare db pattern in
  Fmt.pr "Fingerprint:   %s@." (Database.prepared_fingerprint prep);
  let run = Database.exec prep in
  Fmt.pr "@.Chosen plan (cost estimate %.1f, %d alternatives considered):@.%s"
    run.opt.Sjos_core.Optimizer.est_cost
    run.opt.Sjos_core.Optimizer.plans_considered
    (Sjos_plan.Explain.to_string pattern run.opt.Sjos_core.Optimizer.plan);

  (* 4. inspect the matches: one tuple per (shelf, book, author) triple *)
  let doc = Database.document db in
  Fmt.pr "@.%d matches:@." (Array.length run.exec.Sjos_exec.Executor.tuples);
  Array.iter
    (fun tuple ->
      let node i = Sjos_xml.Document.node doc (Sjos_exec.Tuple.get tuple i) in
      let shelf = node 0 and book = node 1 and author = node 2 in
      Fmt.pr "  floor %s: %s  --  %s@."
        (Option.value ~default:"?" (Sjos_xml.Node.attr shelf "floor"))
        (match Sjos_xml.Document.children doc book with
        | title :: _ -> title.Sjos_xml.Node.text
        | [] -> "?")
        author.Sjos_xml.Node.text)
    run.exec.Sjos_exec.Executor.tuples;

  Fmt.pr "@.Execution metrics: %a@." Sjos_exec.Metrics.pp
    run.exec.Sjos_exec.Executor.metrics;

  (* 5. run it again: the plan comes from the cache — zero search effort *)
  let again = Database.run db pattern in
  Fmt.pr
    "@.Second run: %d matches, %d plans considered (plan served from the \
     cache), %a@."
    (Array.length again.exec.Sjos_exec.Executor.tuples)
    again.opt.Sjos_core.Optimizer.plans_considered Sjos_cache.Plan_cache.pp
    (Database.plan_cache db)
