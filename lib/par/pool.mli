(** A reusable pool of OCaml 5 domains for data-parallel fan-out.

    The pool owns [size - 1] worker domains; the caller of {!run}
    participates as the remaining worker, so a pool of size 1 spawns no
    domains at all and {!run} degenerates to a plain serial loop.  Tasks
    are claimed from a shared atomic counter, which load-balances
    uneven shards without any per-task allocation in the scheduler.

    Determinism: {!run} always returns results in task-index order, and
    when tasks raise, the exception of the {e lowest-indexed} failing
    task is re-raised — independent of which domain ran what, or in
    which order tasks finished.

    Nesting: calling {!run} from inside a pool task executes the inner
    batch inline on the calling domain (no new work is posted), so
    parallel code can freely call other parallel code without
    deadlocking a fixed-size pool.

    Work accounting: each parallel task runs against a fresh
    {!Sjos_obs.Work} accumulator, and {!run} absorbs every task's delta
    into the calling domain at the barrier — so work counters observed
    by the caller are bit-identical to running the same tasks serially,
    at any pool size. *)

type t

val create : ?domains:int -> unit -> t
(** [create ?domains ()] builds a pool of [domains] total workers
    (including the caller of {!run}).  Defaults to
    {!default_domains}[ ()].  Values are clamped to [\[1, 128\]]. *)

val size : t -> int
(** Total parallelism, including the calling domain. *)

val serial : t
(** A shared size-1 pool: [run serial n f] is exactly a serial loop.
    Useful as an explicit "no parallelism" argument. *)

val default_domains : unit -> int
(** Pool size requested by the environment: [SJOS_DOMAINS] when set to
    a positive integer, else 1.  Unparsable values fall back to 1. *)

val get_default : unit -> t
(** The lazily-created process-wide pool, sized by {!default_domains}.
    Created once on first use; shut down automatically at exit. *)

val run : t -> int -> (int -> 'a) -> 'a array
(** [run pool n f] evaluates [f 0 .. f (n-1)], using up to [size pool]
    domains, and returns the results in index order ([Array.init n f]
    observationally, modulo side-effect interleaving inside [f]).  If
    one or more tasks raise, all tasks still run to completion (or
    raise) and the exception from the lowest-indexed failing task is
    re-raised on the calling domain. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent.  Calling {!run}
    after [shutdown] falls back to serial execution. *)

val pp : t Fmt.t
