let lower_bound (a : int array) ~lo ~hi x =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = !lo + ((!hi - !lo) / 2) in
    if Array.unsafe_get a mid < x then lo := mid + 1 else hi := mid
  done;
  !lo

(* Greedy balanced cuts: walk the groups once, maintaining the running
   maximum of interval ends; a boundary is dropped at the first valid
   position at-or-after each ideal k/shards row split.  Validity —
   [run_max < gstart.(i)] — guarantees no interval straddles the cut. *)
let cut_points ~shards ~(off : int array) ~(gstart : int array)
    ~(gend : int array) ~n =
  let total = off.(n) in
  if shards <= 1 || n <= 1 || total <= 0 then [| 0; n |]
  else begin
    let cuts = ref [ 0 ] in
    let ncuts = ref 1 in
    let run_max = ref gend.(0) in
    (* next ideal split, as "rows consumed * shards >= total * k" *)
    let k = ref 1 in
    let i = ref 1 in
    while !i < n && !ncuts < shards do
      if !run_max < gstart.(!i) && off.(!i) * shards >= total * !k then begin
        cuts := !i :: !cuts;
        incr ncuts;
        (* skip past every ideal boundary this cut already covers *)
        k := (off.(!i) * shards / total) + 1
      end;
      run_max := max !run_max gend.(!i);
      incr i
    done;
    Array.of_list (List.rev (n :: !cuts))
  end
