(** Forest-closed range partitioning for interval-encoded node columns.

    The columnar Stack-Tree kernels group candidate rows by node; a
    group column is described by [n] groups with strictly increasing
    start positions [gstart], end positions [gend], and row offsets
    [off] (length [n + 1]).  A cut before group [i] is {e valid} when no
    earlier interval straddles it: [max (gend.(0..i-1)) < gstart.(i)].
    Partitioning only at valid cuts means every ancestor/descendant
    containment pair falls entirely inside one shard, which is what
    makes sharded execution bit-identical to serial by construction. *)

val lower_bound : int array -> lo:int -> hi:int -> int -> int
(** [lower_bound a ~lo ~hi x] is the smallest [i] in [\[lo, hi)] with
    [a.(i) >= x], or [hi] if there is none.  [a.(lo..hi-1)] must be
    sorted ascending. *)

val cut_points :
  shards:int -> off:int array -> gstart:int array -> gend:int array ->
  n:int -> int array
(** [cut_points ~shards ~off ~gstart ~gend ~n] returns group-index
    boundaries [\[|0; c1; ...; n|\]] describing at most [shards]
    contiguous segments.  Every interior boundary is a valid cut in the
    sense above, and boundaries are placed to balance {e rows} (as
    measured by [off]) across segments.  When no valid cut exists the
    result is [\[|0; n|\]]. *)
