(* Hand-rolled domain pool.  The toolchain ships no domainslib, and the
   scheduling this engine needs — fixed fan-out, deterministic result
   ordering, deterministic exception choice — fits in a page of
   Mutex/Condition/Atomic.

   One batch at a time is published as a [job] closure guarded by
   [m]/[cond]; sleeping workers are woken by a generation bump.  Inside
   a batch, tasks are claimed with [Atomic.fetch_and_add] on a shared
   counter (work-sharing, so uneven shards balance), results and
   exceptions land in index-slotted arrays, and the caller is itself a
   worker — a pool of size 1 owns no domains at all. *)

let in_worker = Domain.DLS.new_key (fun () -> false)

type t = {
  size : int;
  m : Mutex.t;
  cond : Condition.t;
  mutable job : (unit -> unit) option;
  mutable generation : int;
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
}

let size t = t.size

let clamp d = max 1 (min 128 d)

let default_domains () =
  match Sys.getenv_opt "SJOS_DOMAINS" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> clamp d
      | Some _ | None -> 1)

(* A worker sleeps until the generation moves (a new batch) or the pool
   stops.  It may also observe a batch that is already drained — [help]
   then returns immediately — or a generation bump whose job was already
   retired ([job = None]); both are benign. *)
let rec worker_wait t last_gen =
  Mutex.lock t.m;
  while (not t.stopped) && t.generation = last_gen do
    Condition.wait t.cond t.m
  done;
  if t.stopped then Mutex.unlock t.m
  else begin
    let gen = t.generation in
    let job = t.job in
    Mutex.unlock t.m;
    (match job with Some help -> help () | None -> ());
    worker_wait t gen
  end

let create ?domains () =
  let size =
    clamp (match domains with Some d -> d | None -> default_domains ())
  in
  let t =
    {
      size;
      m = Mutex.create ();
      cond = Condition.create ();
      job = None;
      generation = 0;
      stopped = false;
      workers = [];
    }
  in
  if size > 1 then
    t.workers <-
      List.init (size - 1) (fun _ ->
          Domain.spawn (fun () ->
              Domain.DLS.set in_worker true;
              worker_wait t 0));
  t

let serial = create ~domains:1 ()

let run_serial n f = Array.init n f

let run t n f =
  if n <= 0 then [||]
  else if t.size <= 1 || n = 1 || t.stopped || Domain.DLS.get in_worker then
    run_serial n f
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    (* Deterministic work accounting survives the fan-out: each task
       runs against a fresh per-task accumulator on whatever domain
       claimed it, and the caller absorbs every task's delta at the
       barrier below.  Integer sums are order-independent, so the
       caller-visible totals are bit-identical to the serial loop at any
       pool size — the property the perf CI gate stands on. *)
    let works = Array.make n None in
    let next = Atomic.make 0 in
    let completed = Atomic.make 0 in
    let done_m = Mutex.create () in
    let done_c = Condition.create () in
    let help () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else begin
          let work, outcome = Sjos_obs.Work.scoped (fun () -> f i) in
          works.(i) <- Some work;
          (match outcome with
          | Ok v -> results.(i) <- Some v
          | Error e -> errors.(i) <- Some e);
          (* the atomic increment publishes the slot writes above to the
             waiter, which reads [completed] before touching the arrays *)
          if Atomic.fetch_and_add completed 1 + 1 = n then begin
            Mutex.lock done_m;
            Condition.broadcast done_c;
            Mutex.unlock done_m
          end
        end
      done
    in
    Mutex.lock t.m;
    t.job <- Some help;
    t.generation <- t.generation + 1;
    let my_gen = t.generation in
    Condition.broadcast t.cond;
    Mutex.unlock t.m;
    help ();
    Mutex.lock done_m;
    while Atomic.get completed < n do
      Condition.wait done_c done_m
    done;
    Mutex.unlock done_m;
    (* retire the job so the closure (and these arrays) don't outlive
       the batch; a late-waking worker sees [None] and just re-sleeps *)
    Mutex.lock t.m;
    if t.generation = my_gen then t.job <- None;
    Mutex.unlock t.m;
    Array.iter
      (function Some w -> Sjos_obs.Work.absorb w | None -> ())
      works;
    let first_error = ref None in
    for i = n - 1 downto 0 do
      match errors.(i) with Some e -> first_error := Some e | None -> ()
    done;
    match !first_error with
    | Some e -> raise e
    | None ->
        Array.map (function Some v -> v | None -> assert false) results
  end

let shutdown t =
  Mutex.lock t.m;
  if t.stopped then Mutex.unlock t.m
  else begin
    t.stopped <- true;
    Condition.broadcast t.cond;
    let ws = t.workers in
    t.workers <- [];
    Mutex.unlock t.m;
    List.iter Domain.join ws
  end

let default_m = Mutex.create ()
let default_pool = ref None

let get_default () =
  Mutex.lock default_m;
  let p =
    match !default_pool with
    | Some p -> p
    | None ->
        let p = create () in
        default_pool := Some p;
        (* Through Lifecycle so that disk-backed column stores (stage
           [`Dispose]) are always released before the pool's workers are
           joined, whichever subsystem initialized first. *)
        if p.size > 1 then
          Sjos_obs.Lifecycle.on_exit `Shutdown (fun () -> shutdown p);
        p
  in
  Mutex.unlock default_m;
  p

let pp ppf t =
  Fmt.pf ppf "pool(size=%d%s)" t.size (if t.stopped then ", stopped" else "")
