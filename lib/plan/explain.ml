open Sjos_xml
open Sjos_storage
open Sjos_pattern

let mask_names pat mask =
  let rec go i acc =
    if 1 lsl i > mask then List.rev acc
    else if mask land (1 lsl i) <> 0 then go (i + 1) (Pattern.name pat i :: acc)
    else go (i + 1) acc
  in
  String.concat "," (go 0 [])

let describe pat = function
  | Plan.Index_scan i ->
      Printf.sprintf "IdxScan %s (%s)" (Pattern.name pat i)
        (Candidate.spec_to_string (Pattern.label pat i))
  | Plan.Holistic { mask; order; paths } ->
      Printf.sprintf "TwigStack {%s} (%d paths) -> ordered by %s"
        (mask_names pat mask) (List.length paths) (Pattern.name pat order)
  | Plan.Sort { by; _ } -> Printf.sprintf "Sort by %s" (Pattern.name pat by)
  | Plan.Structural_join { edge; algo; _ } as op ->
      Printf.sprintf "%s %s%s%s -> ordered by %s" (Plan.algo_to_string algo)
        (Pattern.name pat edge.Pattern.anc)
        (Axes.axis_to_string edge.Pattern.axis)
        (Pattern.name pat edge.Pattern.desc)
        (Pattern.name pat (Plan.ordered_by op))

let render annotate pat plan =
  let buf = Buffer.create 256 in
  let rec emit prefix plan =
    Buffer.add_string buf prefix;
    Buffer.add_string buf (describe pat plan);
    Buffer.add_string buf (annotate plan);
    Buffer.add_char buf '\n';
    let child = prefix ^ "  " in
    match plan with
    | Plan.Index_scan _ | Plan.Holistic _ -> ()
    | Plan.Sort { input; _ } -> emit child input
    | Plan.Structural_join { anc_side; desc_side; _ } ->
        emit child anc_side;
        emit child desc_side
  in
  emit "" plan;
  Buffer.contents buf

let to_string pat plan = render (fun _ -> "") pat plan

let with_costs factors provider pat plan =
  let annotate op =
    let card = provider.Costing.cluster_card (Plan.nodes_mask op) in
    Printf.sprintf "  [card~%.0f cost~%.1f]" card
      (Costing.operator_cost factors provider op)
  in
  render annotate pat plan

(* ---------- EXPLAIN ANALYZE ---------- *)

type measured = {
  mplan : Plan.t;
  rows : int;
  units : float;
  seconds : float;
  inputs : measured list;
}

type analysis_row = {
  op : Plan.t;
  depth : int;
  est_rows : float;
  actual_rows : int;
  est_units : float;
  actual_units : float;
  q_error : float;
  seconds : float;
}

(* Moerkotte's q-error, made total: both sides are clamped to >= 1 so a
   zero on either side reads as "off by the other side's magnitude" and
   exact zero-vs-zero is a perfect 1.0. *)
let q_error ~est ~actual =
  let e = Float.max est 1.0 and a = Float.max actual 1.0 in
  Float.max (e /. a) (a /. e)

let analyze factors provider _pat measured =
  let rec walk depth m acc =
    let est_rows = provider.Costing.cluster_card (Plan.nodes_mask m.mplan) in
    let row =
      {
        op = m.mplan;
        depth;
        est_rows;
        actual_rows = m.rows;
        est_units = Costing.operator_cost factors provider m.mplan;
        actual_units = m.units;
        q_error = q_error ~est:est_rows ~actual:(float_of_int m.rows);
        seconds = m.seconds;
      }
    in
    List.fold_left (fun acc i -> walk (depth + 1) i acc) (row :: acc) m.inputs
  in
  List.rev (walk 0 measured [])

let analyze_to_string pat rows =
  let buf = Buffer.create 512 in
  let col_op = 46 in
  Buffer.add_string buf
    (Printf.sprintf "%-*s %10s %10s %7s %12s %12s %10s\n" col_op "operator"
       "est.rows" "act.rows" "q-err" "est.units" "act.units" "time(ms)");
  List.iter
    (fun r ->
      let label = String.make (2 * r.depth) ' ' ^ describe pat r.op in
      let label =
        if String.length label > col_op then String.sub label 0 col_op else label
      in
      Buffer.add_string buf
        (Printf.sprintf "%-*s %10.0f %10d %7.2f %12.1f %12.1f %10.3f\n" col_op
           label r.est_rows r.actual_rows r.q_error r.est_units r.actual_units
           (r.seconds *. 1e3)))
    rows;
  Buffer.contents buf

let analysis_to_json pat rows =
  Sjos_obs.Json.List
    (List.map
       (fun r ->
         Sjos_obs.Json.Obj
           [
             ("operator", Sjos_obs.Json.Str (describe pat r.op));
             ("depth", Sjos_obs.Json.Int r.depth);
             ("est_rows", Sjos_obs.Json.Float r.est_rows);
             ("actual_rows", Sjos_obs.Json.Int r.actual_rows);
             ("q_error", Sjos_obs.Json.Float r.q_error);
             ("est_cost_units", Sjos_obs.Json.Float r.est_units);
             ("actual_cost_units", Sjos_obs.Json.Float r.actual_units);
             ("seconds", Sjos_obs.Json.Float r.seconds);
           ])
       rows)

let one_line pat plan =
  let buf = Buffer.create 64 in
  let rec emit = function
    | Plan.Index_scan i -> Buffer.add_string buf (Pattern.name pat i)
    | Plan.Holistic { mask; _ } ->
        Buffer.add_string buf "twig{";
        Buffer.add_string buf (mask_names pat mask);
        Buffer.add_char buf '}'
    | Plan.Sort { input; by } ->
        Buffer.add_string buf "sort[";
        Buffer.add_string buf (Pattern.name pat by);
        Buffer.add_string buf "](";
        emit input;
        Buffer.add_char buf ')'
    | Plan.Structural_join { anc_side; desc_side; algo; _ } ->
        Buffer.add_char buf '(';
        emit anc_side;
        Buffer.add_string buf
          (match algo with
          | Plan.Stack_tree_anc -> " anc "
          | Plan.Stack_tree_desc -> " desc ");
        emit desc_side;
        Buffer.add_char buf ')'
  in
  emit plan;
  Buffer.contents buf
