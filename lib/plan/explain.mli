(** Human-readable plan rendering, in the spirit of SQL [EXPLAIN]. *)

open Sjos_pattern

val to_string : Pattern.t -> Plan.t -> string
(** Multi-line operator tree, e.g.:

    {v
      STJ-Anc A//B -> ordered by A
      +- IdxScan A (manager)
      +- Sort by B
         +- STJ-Desc B/C -> ordered by C
            ...
    v} *)

val with_costs :
  Sjos_cost.Cost_model.factors ->
  Costing.provider ->
  Pattern.t ->
  Plan.t ->
  string
(** Like {!to_string} with per-operator estimated cardinalities and costs. *)

val one_line : Pattern.t -> Plan.t -> string
(** Compact nested form, e.g. ["((A anc B) desc (C))"], for logs and test
    failure messages. *)

(** {1 EXPLAIN ANALYZE}

    [measured] is the per-operator execution profile the executor collects
    (actual output rows, actual cost units and self wall time per
    operator); [analyze] joins it with the optimizer's estimates to
    produce one row per plan operator — the estimated-vs-actual view that
    checks the cost model per operator rather than per plan. *)

type measured = {
  mplan : Plan.t;  (** the operator (root of this measured subtree) *)
  rows : int;  (** tuples this operator output *)
  units : float;  (** cost units of this operator alone *)
  seconds : float;  (** wall time of this operator alone *)
  inputs : measured list;  (** profiles of the operator's inputs *)
}

type analysis_row = {
  op : Plan.t;
  depth : int;  (** nesting depth in the plan tree (root = 0) *)
  est_rows : float;  (** optimizer's cardinality estimate for the output *)
  actual_rows : int;
  est_units : float;  (** cost-model estimate for this operator alone *)
  actual_units : float;
  q_error : float;
      (** max(est/act, act/est) with both sides clamped to ≥ 1 *)
  seconds : float;
}

val q_error : est:float -> actual:float -> float
(** Moerkotte's q-error, [max (est/act) (act/est)] with both operands
    clamped to at least 1 so empty results stay finite. *)

val analyze :
  Sjos_cost.Cost_model.factors ->
  Costing.provider ->
  Pattern.t ->
  measured ->
  analysis_row list
(** One row per operator, in pre-order (an operator before its inputs,
    ancestor side first) — the same order {!to_string} renders. *)

val analyze_to_string : Pattern.t -> analysis_row list -> string
(** Fixed-width per-operator table with estimated vs. actual cardinality,
    q-error, cost units and wall time. *)

val analysis_to_json : Pattern.t -> analysis_row list -> Sjos_obs.Json.t
