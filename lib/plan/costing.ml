open Sjos_cost

type provider = { node_card : int -> float; cluster_card : int -> float }

let constant_provider c =
  { node_card = (fun _ -> c); cluster_card = (fun _ -> c) }

let mask_nodes mask =
  let rec go i acc =
    if 1 lsl i > mask then List.rev acc
    else if mask land (1 lsl i) <> 0 then go (i + 1) (i :: acc)
    else go (i + 1) acc
  in
  go 0 []

let operator_cost factors provider = function
  | Plan.Index_scan i -> Cost_model.index_access factors (provider.node_card i)
  | Plan.Holistic { mask; paths; _ } ->
      let candidates =
        List.fold_left
          (fun acc i -> acc +. provider.node_card i)
          0.0 (mask_nodes mask)
      in
      let path_solutions =
        List.fold_left
          (fun acc p -> acc +. provider.cluster_card p)
          0.0 paths
      in
      Cost_model.twig factors ~candidates ~path_solutions
  | Plan.Sort { input; _ } ->
      Cost_model.sort factors (provider.cluster_card (Plan.nodes_mask input))
  | Plan.Structural_join { anc_side; desc_side; algo; _ } ->
      let anc = provider.cluster_card (Plan.nodes_mask anc_side) in
      let output =
        provider.cluster_card
          (Plan.nodes_mask anc_side lor Plan.nodes_mask desc_side)
      in
      (match algo with
      | Plan.Stack_tree_anc -> Cost_model.stack_tree_anc factors ~anc ~output
      | Plan.Stack_tree_desc -> Cost_model.stack_tree_desc factors ~anc)

let cost factors provider _pat plan =
  Plan.fold (fun acc op -> acc +. operator_cost factors provider op) 0.0 plan
