open Sjos_pattern

let validate pat plan =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let n = Pattern.node_count pat in
  let rec check = function
    | Plan.Index_scan i ->
        if i < 0 || i >= n then err "scan of unknown pattern node %d" i
        else Ok ()
    | Plan.Holistic { mask; order; paths } ->
        (* the holistic operator always evaluates the whole pattern; a
           partial twig has no binary-algebra equivalent to compare with *)
        if mask <> (1 lsl n) - 1 then err "holistic twig does not bind every node"
        else if order < 0 || order >= n then
          err "holistic twig ordered by unknown node %d" order
        else if paths <> Plan.path_masks pat then
          err "holistic twig paths do not match the pattern"
        else Ok ()
    | Plan.Sort { input; by } ->
        let* () = check input in
        if Plan.nodes_mask input land (1 lsl by) = 0 then
          err "sort by node %s not bound by its input" (Pattern.name pat by)
        else Ok ()
    | Plan.Structural_join { anc_side; desc_side; edge; _ } ->
        let* () = check anc_side in
        let* () = check desc_side in
        let { Pattern.anc; desc; _ } = edge in
        let* () =
          match Pattern.edge_between pat anc desc with
          | Some e when e.Pattern.anc = anc -> Ok ()
          | _ -> err "join on a non-edge %d-%d" anc desc
        in
        let ma = Plan.nodes_mask anc_side and md = Plan.nodes_mask desc_side in
        let* () =
          if ma land md <> 0 then err "join inputs overlap" else Ok ()
        in
        let* () =
          if ma land (1 lsl anc) = 0 then
            err "ancestor side does not bind %s" (Pattern.name pat anc)
          else Ok ()
        in
        let* () =
          if md land (1 lsl desc) = 0 then
            err "descendant side does not bind %s" (Pattern.name pat desc)
          else Ok ()
        in
        let* () =
          if Plan.ordered_by anc_side <> anc then
            err "ancestor side not ordered by %s" (Pattern.name pat anc)
          else Ok ()
        in
        if Plan.ordered_by desc_side <> desc then
          err "descendant side not ordered by %s" (Pattern.name pat desc)
        else Ok ()
  in
  let* () = check plan in
  let full = (1 lsl n) - 1 in
  let* () =
    if Plan.nodes_mask plan <> full then err "plan does not bind every node"
    else Ok ()
  in
  (* n nodes and n-1 joins with disjoint inputs imply each node scanned
     exactly once and each edge joined exactly once.  A holistic twig
     covers all nodes and edges by itself, so it admits no joins at all:
     since its mask is full, the join-input disjointness check above
     already rules out any Structural_join around it. *)
  let holistics =
    Plan.fold
      (fun acc op -> match op with Plan.Holistic _ -> acc + 1 | _ -> acc)
      0 plan
  in
  if holistics > 1 then err "plan contains %d holistic operators" holistics
  else if holistics = 1 then
    if Plan.join_count plan <> 0 then
      err "holistic plan must not contain binary joins"
    else Ok ()
  else if Plan.join_count plan <> n - 1 then
    err "expected %d joins, found %d" (n - 1) (Plan.join_count plan)
  else Ok ()

let is_valid pat plan = Result.is_ok (validate pat plan)
let is_fully_pipelined plan = Plan.sort_count plan = 0

let is_left_deep plan =
  let rec composite = function
    | Plan.Index_scan _ | Plan.Holistic _ -> false
    | Plan.Sort { input; _ } -> composite input
    | Plan.Structural_join _ -> true
  in
  let rec check = function
    | Plan.Index_scan _ | Plan.Holistic _ -> true
    | Plan.Sort { input; _ } -> check input
    | Plan.Structural_join { anc_side; desc_side; _ } ->
        (not (composite anc_side && composite desc_side))
        && check anc_side && check desc_side
  in
  check plan

let is_bushy plan = not (is_left_deep plan)

let covers pat plan =
  Plan.nodes_mask plan = (1 lsl Pattern.node_count pat) - 1
