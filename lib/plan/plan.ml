open Sjos_pattern

type algo = Stack_tree_anc | Stack_tree_desc

type t =
  | Index_scan of int
  | Structural_join of {
      anc_side : t;
      desc_side : t;
      edge : Pattern.edge;
      algo : algo;
    }
  | Sort of { input : t; by : int }

let algo_to_string = function
  | Stack_tree_anc -> "STJ-Anc"
  | Stack_tree_desc -> "STJ-Desc"

let pp_algo ppf a = Fmt.string ppf (algo_to_string a)
let scan i = Index_scan i
let join ~anc_side ~desc_side ~edge ~algo = Structural_join { anc_side; desc_side; edge; algo }
let sort input ~by = Sort { input; by }

let rec nodes_mask = function
  | Index_scan i -> 1 lsl i
  | Structural_join { anc_side; desc_side; _ } ->
      nodes_mask anc_side lor nodes_mask desc_side
  | Sort { input; _ } -> nodes_mask input

let ordered_by = function
  | Index_scan i -> i
  | Structural_join { edge; algo; _ } -> (
      match algo with
      | Stack_tree_anc -> edge.Pattern.anc
      | Stack_tree_desc -> edge.Pattern.desc)
  | Sort { by; _ } -> by

let rec join_count = function
  | Index_scan _ -> 0
  | Structural_join { anc_side; desc_side; _ } ->
      1 + join_count anc_side + join_count desc_side
  | Sort { input; _ } -> join_count input

let rec sort_count = function
  | Index_scan _ -> 0
  | Structural_join { anc_side; desc_side; _ } ->
      sort_count anc_side + sort_count desc_side
  | Sort { input; _ } -> 1 + sort_count input

let rec fold f acc t =
  let acc = f acc t in
  match t with
  | Index_scan _ -> acc
  | Structural_join { anc_side; desc_side; _ } ->
      fold f (fold f acc anc_side) desc_side
  | Sort { input; _ } -> fold f acc input

let rec map_nodes f = function
  | Index_scan i -> Index_scan (f i)
  | Structural_join { anc_side; desc_side; edge; algo } ->
      Structural_join
        {
          anc_side = map_nodes f anc_side;
          desc_side = map_nodes f desc_side;
          edge =
            {
              Pattern.anc = f edge.Pattern.anc;
              desc = f edge.Pattern.desc;
              axis = edge.Pattern.axis;
            };
          algo;
        }
  | Sort { input; by } -> Sort { input = map_nodes f input; by = f by }

let equal = ( = )
