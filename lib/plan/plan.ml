open Sjos_pattern

type algo = Stack_tree_anc | Stack_tree_desc

type t =
  | Index_scan of int
  | Structural_join of {
      anc_side : t;
      desc_side : t;
      edge : Pattern.edge;
      algo : algo;
    }
  | Sort of { input : t; by : int }
  | Holistic of { mask : int; order : int; paths : int list }

let algo_to_string = function
  | Stack_tree_anc -> "STJ-Anc"
  | Stack_tree_desc -> "STJ-Desc"

let pp_algo ppf a = Fmt.string ppf (algo_to_string a)
let scan i = Index_scan i
let join ~anc_side ~desc_side ~edge ~algo = Structural_join { anc_side; desc_side; edge; algo }
let sort input ~by = Sort { input; by }

(* Root-to-leaf path masks, sorted for a canonical representation: the
   holistic operator's cost (and its serialized identity) depends only on
   the set of paths, not on leaf enumeration order. *)
let path_masks pat =
  let n = Pattern.node_count pat in
  let rec up j acc =
    let acc = acc lor (1 lsl j) in
    match Pattern.parent_of pat j with None -> acc | Some (p, _) -> up p acc
  in
  List.init n Fun.id
  |> List.filter (fun i -> Pattern.children_of pat i = [])
  |> List.map (fun leaf -> up leaf 0)
  |> List.sort_uniq compare

let holistic_node ?(order = 0) pat =
  Holistic
    {
      mask = (1 lsl Pattern.node_count pat) - 1;
      order;
      paths = path_masks pat;
    }

let holistic_of_pattern pat =
  let h = holistic_node pat in
  match Pattern.order_by pat with
  | Some by when by <> 0 -> Sort { input = h; by }
  | _ -> h

let rec nodes_mask = function
  | Index_scan i -> 1 lsl i
  | Structural_join { anc_side; desc_side; _ } ->
      nodes_mask anc_side lor nodes_mask desc_side
  | Sort { input; _ } -> nodes_mask input
  | Holistic { mask; _ } -> mask

let ordered_by = function
  | Index_scan i -> i
  | Structural_join { edge; algo; _ } -> (
      match algo with
      | Stack_tree_anc -> edge.Pattern.anc
      | Stack_tree_desc -> edge.Pattern.desc)
  | Sort { by; _ } -> by
  | Holistic { order; _ } -> order

let rec join_count = function
  | Index_scan _ | Holistic _ -> 0
  | Structural_join { anc_side; desc_side; _ } ->
      1 + join_count anc_side + join_count desc_side
  | Sort { input; _ } -> join_count input

let rec sort_count = function
  | Index_scan _ | Holistic _ -> 0
  | Structural_join { anc_side; desc_side; _ } ->
      sort_count anc_side + sort_count desc_side
  | Sort { input; _ } -> 1 + sort_count input

let rec fold f acc t =
  let acc = f acc t in
  match t with
  | Index_scan _ | Holistic _ -> acc
  | Structural_join { anc_side; desc_side; _ } ->
      fold f (fold f acc anc_side) desc_side
  | Sort { input; _ } -> fold f acc input

let uses_holistic plan =
  fold (fun acc op -> acc || match op with Holistic _ -> true | _ -> false)
    false plan

let remap_mask f m =
  let rec go i acc =
    if 1 lsl i > m then acc
    else if m land (1 lsl i) <> 0 then go (i + 1) (acc lor (1 lsl f i))
    else go (i + 1) acc
  in
  go 0 0

let rec map_nodes f = function
  | Index_scan i -> Index_scan (f i)
  | Structural_join { anc_side; desc_side; edge; algo } ->
      Structural_join
        {
          anc_side = map_nodes f anc_side;
          desc_side = map_nodes f desc_side;
          edge =
            {
              Pattern.anc = f edge.Pattern.anc;
              desc = f edge.Pattern.desc;
              axis = edge.Pattern.axis;
            };
          algo;
        }
  | Sort { input; by } -> Sort { input = map_nodes f input; by = f by }
  | Holistic { mask; order; paths } ->
      Holistic
        {
          mask = remap_mask f mask;
          order = f order;
          paths = List.sort_uniq compare (List.map (remap_mask f) paths);
        }

let equal = ( = )
