open Sjos_pattern

let rec to_string pat = function
  | Plan.Index_scan i -> Printf.sprintf "(scan %s)" (Pattern.name pat i)
  | Plan.Holistic { order; _ } ->
      (* mask and paths are derivable from the pattern, so the stored
         form carries only the ordering node (the root) *)
      Printf.sprintf "(twig %s)" (Pattern.name pat order)
  | Plan.Sort { input; by } ->
      Printf.sprintf "(sort %s %s)" (Pattern.name pat by) (to_string pat input)
  | Plan.Structural_join { anc_side; desc_side; edge; algo } ->
      Printf.sprintf "(%s %s %s %s %s)"
        (match algo with
        | Plan.Stack_tree_anc -> "anc"
        | Plan.Stack_tree_desc -> "desc")
        (Pattern.name pat edge.Pattern.anc)
        (Pattern.name pat edge.Pattern.desc)
        (to_string pat anc_side) (to_string pat desc_side)

(* --- tiny s-expression reader ----------------------------------------- *)

type sexp = Atom of string | List of sexp list

exception Err of string

let parse_sexp src =
  let pos = ref 0 in
  let n = String.length src in
  let peek () = if !pos >= n then '\000' else src.[!pos] in
  let skip () =
    while !pos < n && (peek () = ' ' || peek () = '\n' || peek () = '\t') do
      incr pos
    done
  in
  let rec sexp () =
    skip ();
    if !pos >= n then raise (Err "unexpected end of input")
    else if peek () = '(' then begin
      incr pos;
      let items = ref [] in
      skip ();
      while peek () <> ')' do
        if !pos >= n then raise (Err "unterminated list");
        items := sexp () :: !items;
        skip ()
      done;
      incr pos;
      List (List.rev !items)
    end
    else begin
      let start = !pos in
      while
        !pos < n && peek () <> ' ' && peek () <> '(' && peek () <> ')'
        && peek () <> '\n' && peek () <> '\t'
      do
        incr pos
      done;
      if !pos = start then raise (Err "empty atom");
      Atom (String.sub src start (!pos - start))
    end
  in
  let s = sexp () in
  skip ();
  if !pos <> n then raise (Err "trailing input");
  s

let of_string pat src =
  let node name =
    let found = ref None in
    for i = 0 to Pattern.node_count pat - 1 do
      if String.equal (Pattern.name pat i) name then found := Some i
    done;
    match !found with
    | Some i -> i
    | None -> raise (Err ("unknown pattern node " ^ name))
  in
  let edge a d =
    match Pattern.edge_between pat a d with
    | Some e when e.Pattern.anc = a -> e
    | _ ->
        raise
          (Err
             (Printf.sprintf "no %s->%s edge in the pattern"
                (Pattern.name pat a) (Pattern.name pat d)))
  in
  let rec build = function
    | List [ Atom "scan"; Atom name ] -> Plan.scan (node name)
    | List [ Atom "twig"; Atom name ] ->
        Plan.holistic_node ~order:(node name) pat
    | List [ Atom "sort"; Atom name; input ] ->
        Plan.sort (build input) ~by:(node name)
    | List [ Atom ("anc" | "desc" as algo); Atom a; Atom d; anc_side; desc_side ]
      ->
        let a = node a and d = node d in
        Plan.join ~anc_side:(build anc_side) ~desc_side:(build desc_side)
          ~edge:(edge a d)
          ~algo:
            (if String.equal algo "anc" then Plan.Stack_tree_anc
             else Plan.Stack_tree_desc)
    | Atom a -> raise (Err ("expected a plan form, found atom " ^ a))
    | List _ -> raise (Err "malformed plan form")
  in
  match build (parse_sexp src) with
  | plan -> Ok plan
  | exception Err msg -> Error msg
