(** Physical evaluation plans (§2.3 of the paper).

    A plan is a rooted tree of physical operators over a fixed pattern:
    index scans at the leaves (one per pattern node), binary structural
    joins (one per pattern edge, with an explicit Stack-Tree algorithm
    choice), and sort operators wherever an ordering has to be changed.

    Plans are pure descriptions: properties, costing, explanation and
    execution live in sibling modules. *)

open Sjos_pattern

type algo =
  | Stack_tree_anc  (** output ordered by the ancestor-side join node *)
  | Stack_tree_desc  (** output ordered by the descendant-side join node *)

type t =
  | Index_scan of int  (** scan the candidate set of a pattern node *)
  | Structural_join of { anc_side : t; desc_side : t; edge : Pattern.edge; algo : algo }
      (** [anc_side] must contain [edge.anc] and be ordered by it;
          [desc_side] must contain [edge.desc] and be ordered by it *)
  | Sort of { input : t; by : int }  (** reorder by a pattern node *)
  | Holistic of { mask : int; order : int; paths : int list }
      (** evaluate the whole twig with one holistic TwigStack pass:
          every candidate stream is scanned once in global document
          order, path solutions are buffered per root-to-leaf path and
          merge-joined on shared prefixes.  [mask] must bind every
          pattern node, [order] is the pattern root, and [paths] holds
          the root-to-leaf path masks (sorted) the cost model prices *)

val algo_to_string : algo -> string
val pp_algo : algo Fmt.t

val scan : int -> t
val join : anc_side:t -> desc_side:t -> edge:Pattern.edge -> algo:algo -> t
val sort : t -> by:int -> t

val path_masks : Pattern.t -> int list
(** Masks of the pattern's root-to-leaf paths, sorted. *)

val holistic_node : ?order:int -> Pattern.t -> t
(** The bare holistic operator for a pattern: full node mask,
    [paths = path_masks pat], ordered by [order] (default the root). *)

val holistic_of_pattern : Pattern.t -> t
(** {!holistic_node}, wrapped in a {!Sort} when the pattern requests an
    ordering by a non-root node. *)

val uses_holistic : t -> bool
(** Whether any operator in the plan is {!Holistic}. *)

val nodes_mask : t -> int
(** Bit mask of the pattern nodes bound by the plan's output. *)

val ordered_by : t -> int
(** The pattern node whose document order the output follows. *)

val join_count : t -> int
val sort_count : t -> int

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Pre-order fold over all operators. *)

val map_nodes : (int -> int) -> t -> t
(** Renumber every pattern-node reference (scan indexes, join-edge
    endpoints, sort keys) through the given mapping.  Used to transport a
    plan between a pattern and its canonical renumbering. *)

val equal : t -> t -> bool
