open Sjos_xml
open Sjos_storage
open Sjos_histogram
open Sjos_cost
open Sjos_pattern
open Sjos_plan
open Sjos_core
open Sjos_exec
open Sjos_cache
open Sjos_obs
open Sjos_guard

type t = {
  doc : Document.t;
  index : Element_index.t;
  (* Not a [Lazy.t]: forcing a lazy from two domains at once raises
     [CamlinternalLazy.Undefined] in one of them.  A mutex-guarded memo
     gives the same compute-once behavior safely. *)
  stats_m : Mutex.t;
  mutable stats_v : Stats.t option;
  mutable factors : Cost_model.factors;
  mutable grid : int;
  plan_cache : Plan_cache.t;
  store : Column_store.t;
  (* Per-query [Query_opts.storage] overrides resolve through a small
     config-keyed memo, so repeated overridden queries share one store
     (and, for Disk, one on-disk file set) instead of rewriting the
     column file per query. *)
  stores_m : Mutex.t;
  mutable extra_stores : (Column_store.config * Column_store.t) list;
}

(* A grid of g costs O(g^2) cells per histogram: an absurd request is an
   out-of-range knob (Invalid_request), not an allocation failure later. *)
let max_grid = 4096

let validate_grid grid =
  if grid < 1 || grid > max_grid then
    Error.fail
      (Error.Invalid_request
         (Printf.sprintf "histogram grid %d out of range 1..%d" grid max_grid))

let of_document ?(factors = Cost_model.default) ?(grid = 32)
    ?(cache_capacity = 256) ?storage doc =
  validate_grid grid;
  let storage =
    match storage with Some c -> c | None -> Column_store.config_of_env ()
  in
  let index = Element_index.build doc in
  {
    doc;
    index;
    stats_m = Mutex.create ();
    stats_v = None;
    factors;
    grid;
    plan_cache = Plan_cache.create ~capacity:cache_capacity ();
    store = Column_store.create ~config:storage index;
    stores_m = Mutex.create ();
    extra_stores = [];
  }

let of_string ?factors ?grid ?cache_capacity ?storage s =
  of_document ?factors ?grid ?cache_capacity ?storage (Parser.parse_string s)

let load_file ?factors ?grid ?cache_capacity ?storage p =
  of_document ?factors ?grid ?cache_capacity ?storage (Parser.parse_file p)

let document t = t.doc
let index t = t.index
let store t = t.store

let store_for t (opts : Query_opts.t) =
  match opts.Query_opts.storage with
  | None -> t.store
  | Some c when Column_store.config_equal c (Column_store.config t.store) ->
      t.store
  | Some c ->
      Mutex.lock t.stores_m;
      let s =
        match
          List.find_opt
            (fun (c', _) -> Column_store.config_equal c c')
            t.extra_stores
        with
        | Some (_, s) -> s
        | None ->
            let s = Column_store.create ~config:c t.index in
            t.extra_stores <- (c, s) :: t.extra_stores;
            s
      in
      Mutex.unlock t.stores_m;
      s

let dispose t =
  Mutex.lock t.stores_m;
  let extras = t.extra_stores in
  t.extra_stores <- [];
  Mutex.unlock t.stores_m;
  List.iter (fun (_, s) -> Column_store.dispose s) extras;
  Column_store.dispose t.store

let stats t =
  Mutex.lock t.stats_m;
  let s =
    match t.stats_v with
    | Some s -> s
    | None ->
        let s = Stats.compute t.doc in
        t.stats_v <- Some s;
        s
  in
  Mutex.unlock t.stats_m;
  s

(* Build every lazily cached read-side structure up front, so that
   queries fanned out across domains afterwards touch only read paths. *)
let warm t =
  ignore (Document.positions t.doc);
  Element_index.warm t.index;
  ignore (stats t)
let factors t = t.factors
let grid t = t.grid
let plan_cache t = t.plan_cache
let invalidate_plans t = Plan_cache.bump_epoch t.plan_cache

let set_factors t factors =
  t.factors <- factors;
  invalidate_plans t

let set_grid t grid =
  validate_grid grid;
  t.grid <- grid;
  invalidate_plans t

let provider_with t ~grid pat =
  validate_grid grid;
  let cards = Cardinality.create ~grid t.index pat in
  {
    Costing.node_card = Cardinality.node_card cards;
    cluster_card = Cardinality.cluster_card cards;
  }

let provider t pat = provider_with t ~grid:t.grid pat

let eff_factors t (opts : Query_opts.t) =
  Option.value opts.Query_opts.factors ~default:t.factors

let eff_grid t (opts : Query_opts.t) =
  Option.value opts.Query_opts.grid ~default:t.grid

(* A query is cacheable only when it runs against the database's own
   statistics configuration: per-query factor/grid overrides would poison
   entries keyed purely on algorithm + structure.  Chaos runs are never
   cached either way — a plan chosen under lying statistics must not leak
   into healthy queries. *)
let cache_key t (opts : Query_opts.t) ~pat ~fingerprint =
  if
    opts.Query_opts.use_cache
    && Option.is_none opts.Query_opts.factors
    && Option.is_none opts.Query_opts.grid
    && Option.is_none opts.Query_opts.chaos
  then begin
    ignore t;
    (* the engine is part of the key: Auto and Binary may pick different
       plans for the same (algorithm, structure).  The algorithm is the
       *effective* one — a DPP request on a large pattern runs (and
       caches) as the BigDP tier, and the entry must say so. *)
    Some
      (Optimizer.engine_name opts.Query_opts.engine
      ^ "|"
      ^ Optimizer.name (Optimizer.effective pat opts.Query_opts.algorithm)
      ^ "|" ^ fingerprint)
  end
  else None

(* Run the optimizer through the plan cache.  On a hit the stored plan —
   serialized against the canonical numbering — is parsed and transported
   back to the caller's numbering; the synthesized result reports zero
   search effort and the (tiny) lookup time as [opt_seconds].  Returns the
   result and whether it came from the cache.

   Budget exhaustion goes through {!Optimizer.optimize_r}, so an exact
   search degrades to DPAP-EB instead of failing; a degraded plan is never
   stored (the budget, not the statistics, chose it).  A cached entry that
   fails to deserialize or no longer evaluates the pattern is treated as
   corruption: counted, overwritten by a fresh optimization, never served. *)
let resolve t ~(opts : Query_opts.t) ~pat ~canon ~from_canon ~to_canon ~key
    ~provider =
  let t0 = Clock.now_ns () in
  let fresh ~store () =
    match
      Optimizer.optimize_e ~factors:(eff_factors t opts)
        ~budget:opts.Query_opts.budget ~provider
        ~engine:opts.Query_opts.engine opts.Query_opts.algorithm pat
    with
    | Error e -> Error.fail e
    | Ok r ->
        (match (store, key) with
        | true, Some key when r.Optimizer.degraded_from = None ->
            let cplan = Plan.map_nodes to_canon r.Optimizer.plan in
            Plan_cache.add t.plan_cache key
              {
                Plan_cache.plan_text = Plan_io.to_string canon cplan;
                est_cost = r.Optimizer.est_cost;
                algorithm =
                  Optimizer.name
                    (Optimizer.effective pat opts.Query_opts.algorithm);
              }
        | _ -> ());
        (r, false)
  in
  let corrupt k reason =
    if Registry.enabled () then
      Registry.incr (Registry.counter "guard.corrupt_cache");
    Trace.event "plan_cache.corrupt"
      ~attrs:[ ("key", Json.Str k); ("reason", Json.Str reason) ];
    fresh ~store:true ()
  in
  match key with
  | None -> fresh ~store:false ()
  | Some k -> (
      match Plan_cache.find t.plan_cache k with
      | None -> fresh ~store:true ()
      | Some entry -> (
          match Plan_io.of_string canon entry.Plan_cache.plan_text with
          | Error msg -> corrupt k msg
          | Ok cplan -> (
              let plan = Plan.map_nodes from_canon cplan in
              match Properties.validate pat plan with
              | Error msg -> corrupt k msg
              | Ok () ->
                  ( {
                      Optimizer.algorithm =
                        Optimizer.effective pat opts.Query_opts.algorithm;
                      plan;
                      est_cost = entry.Plan_cache.est_cost;
                      plans_considered = 0;
                      statuses_generated = 0;
                      statuses_expanded = 0;
                      opt_seconds = Clock.elapsed_seconds ~since:t0;
                      effort = Effort.create ();
                      degraded_from = None;
                    },
                    true ))))

type prepared = {
  pdb : t;
  ppattern : Pattern.t;
  popts : Query_opts.t;
  pfingerprint : string;
  pkey : string option;
  pcanon : Pattern.t;
  pto_canon : int -> int;
  pfrom_canon : int -> int;
  pchaos : Chaos.t option;
  mutable pprovider : Costing.provider;
  mutable presult : Optimizer.result;
  mutable pcached : bool;
  mutable pepoch : int;
}

(* Fault injection hooks in at the two trust boundaries: the cardinality
   provider (lies) and the candidate streams (truncation / disorder).
   The caller's chaos instance is never drawn from directly: [prepare]
   derives an independent child stream keyed on the query fingerprint
   ({!Chaos.derive}), so which faults a query sees is a function of
   (seed, query) alone — not of how many queries ran before it, nor of
   the domain scheduling of a parallel workload. *)
let chaos_provider t ~(opts : Query_opts.t) ~chaos pat =
  let p = provider_with t ~grid:(eff_grid t opts) pat in
  match chaos with Some c -> Chaos.wrap_provider c p | None -> p

let chaos_fetch t chaos =
  match chaos with
  | Some c ->
      Some (fun spec -> Chaos.wrap_candidates c (Candidate.select t.index spec))
  | None -> None

let prepare ?(opts = Query_opts.default) t pat =
  let canon, mapping = Fingerprint.canonical pat in
  let inverse = Array.make (Array.length mapping) 0 in
  Array.iteri (fun old nw -> inverse.(nw) <- old) mapping;
  let to_canon i = mapping.(i) in
  let from_canon i = inverse.(i) in
  let fingerprint = Fingerprint.fingerprint pat in
  let chaos =
    Option.map
      (fun c -> Chaos.derive c ~key:fingerprint)
      opts.Query_opts.chaos
  in
  let key = cache_key t opts ~pat ~fingerprint in
  let provider = chaos_provider t ~opts ~chaos pat in
  let result, cached =
    resolve t ~opts ~pat ~canon ~from_canon ~to_canon ~key ~provider
  in
  {
    pdb = t;
    ppattern = pat;
    popts = opts;
    pfingerprint = fingerprint;
    pkey = key;
    pcanon = canon;
    pto_canon = to_canon;
    pfrom_canon = from_canon;
    pchaos = chaos;
    pprovider = provider;
    presult = result;
    pcached = cached;
    pepoch = Plan_cache.epoch t.plan_cache;
  }

(* The handle survives configuration changes on its database: when the
   cache epoch has moved since the last resolve, rebuild the cardinality
   provider (the grid may have changed) and re-optimize. *)
let refresh p =
  let t = p.pdb in
  let epoch = Plan_cache.epoch t.plan_cache in
  if epoch <> p.pepoch then begin
    p.pprovider <- chaos_provider t ~opts:p.popts ~chaos:p.pchaos p.ppattern;
    let result, cached =
      resolve t ~opts:p.popts ~pat:p.ppattern ~canon:p.pcanon
        ~from_canon:p.pfrom_canon ~to_canon:p.pto_canon ~key:p.pkey
        ~provider:p.pprovider
    in
    p.presult <- result;
    p.pcached <- cached;
    p.pepoch <- epoch
  end

let prepared_pattern p = p.ppattern
let prepared_opts p = p.popts
let prepared_fingerprint p = p.pfingerprint

let prepared_result p =
  refresh p;
  p.presult

let prepared_from_cache p = p.pcached

type query_run = { opt : Optimizer.result; exec : Executor.run }

let execute_plan ?budget ?max_tuples ?pool t pat plan =
  Executor.execute ~factors:t.factors ?budget ?max_tuples ?pool ~store:t.store
    t.index pat plan

let exec p =
  refresh p;
  let t = p.pdb in
  let exec =
    Executor.execute
      ~factors:(eff_factors t p.popts)
      ~budget:p.popts.Query_opts.budget
      ?max_tuples:p.popts.Query_opts.max_tuples
      ?fetch:(chaos_fetch t p.pchaos)
      ?pool:p.popts.Query_opts.pool
      ~store:(store_for t p.popts)
      t.index p.ppattern p.presult.Optimizer.plan
  in
  { opt = p.presult; exec }

let explain_prepared p =
  refresh p;
  Explain.with_costs
    (eff_factors p.pdb p.popts)
    p.pprovider p.ppattern p.presult.Optimizer.plan

type analysis = {
  opt : Optimizer.result;
  exec : Executor.run;
  rows : Explain.analysis_row list;
}

let analyze_prepared p =
  let r = exec p in
  let rows =
    Explain.analyze
      (eff_factors p.pdb p.popts)
      p.pprovider p.ppattern r.exec.Executor.profile
  in
  { opt = r.opt; exec = r.exec; rows }

let run ?opts t pat = exec (prepare ?opts t pat)

(* Result-returning surface: same pipeline, failures as values.  Anything
   the pipeline raises that is not already structured is an engine bug and
   comes back as [Internal]. *)
let prepare_r ?opts t pat = Error.protect (fun () -> prepare ?opts t pat)
let exec_r p = Error.protect (fun () -> exec p)
let run_r ?opts t pat = Error.protect (fun () -> run ?opts t pat)
let analyze_prepared_r p = Error.protect (fun () -> analyze_prepared p)

let run_query ?algorithm ?engine ?max_tuples t pat =
  run ~opts:(Query_opts.make ?algorithm ?engine ?max_tuples ()) t pat

let optimize ?algorithm ?engine t pat =
  let opts = Query_opts.make ?algorithm ?engine ~use_cache:false () in
  (prepare ~opts t pat).presult

let explain ?algorithm ?engine t pat =
  explain_prepared (prepare ~opts:(Query_opts.make ?algorithm ?engine ()) t pat)

let analyze ?algorithm ?engine ?max_tuples t pat =
  analyze_prepared
    (prepare ~opts:(Query_opts.make ?algorithm ?engine ?max_tuples ()) t pat)
