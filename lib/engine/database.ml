open Sjos_xml
open Sjos_storage
open Sjos_histogram
open Sjos_cost
open Sjos_plan
open Sjos_core
open Sjos_exec

type t = {
  doc : Document.t;
  index : Element_index.t;
  stats : Stats.t Lazy.t;
  factors : Cost_model.factors;
  grid : int;
}

let of_document ?(factors = Cost_model.default) ?(grid = 32) doc =
  {
    doc;
    index = Element_index.build doc;
    stats = lazy (Stats.compute doc);
    factors;
    grid;
  }

let of_string ?factors ?grid s = of_document ?factors ?grid (Parser.parse_string s)
let load_file ?factors ?grid p = of_document ?factors ?grid (Parser.parse_file p)
let document t = t.doc
let index t = t.index
let stats t = Lazy.force t.stats
let factors t = t.factors

let provider t pat =
  let cards = Cardinality.create ~grid:t.grid t.index pat in
  {
    Costing.node_card = Cardinality.node_card cards;
    cluster_card = Cardinality.cluster_card cards;
  }

let optimize ?(algorithm = Optimizer.Dpp) t pat =
  Optimizer.optimize ~factors:t.factors ~provider:(provider t pat) algorithm pat

type query_run = { opt : Optimizer.result; exec : Executor.run }

let execute_plan ?max_tuples t pat plan =
  Executor.execute ~factors:t.factors ?max_tuples t.index pat plan

let run_query ?algorithm ?max_tuples t pat =
  let opt = optimize ?algorithm t pat in
  let exec = execute_plan ?max_tuples t pat opt.Optimizer.plan in
  { opt; exec }

let explain ?algorithm t pat =
  let opt = optimize ?algorithm t pat in
  Explain.with_costs t.factors (provider t pat) pat opt.Optimizer.plan

type analysis = {
  opt : Optimizer.result;
  exec : Executor.run;
  rows : Explain.analysis_row list;
}

let analyze ?algorithm ?max_tuples t pat =
  let opt = optimize ?algorithm t pat in
  let exec = execute_plan ?max_tuples t pat opt.Optimizer.plan in
  let rows =
    Explain.analyze t.factors (provider t pat) pat exec.Executor.profile
  in
  { opt; exec; rows }
