(** A miniature XQuery FLWOR front end.

    The paper situates structural join order selection inside Timber's
    XQuery pipeline: "the XPath expressions used to bind variables in
    XQuery, along with the conditions in the WHERE clause, can be expressed
    as the matching of a query pattern tree" (§2.1).  This module closes
    that loop for a compact FLWOR subset: it compiles for/where clauses
    into a single pattern tree, lets the cost-based optimizer pick the
    structural join order, and evaluates the return clause per match.

    Supported grammar:

    {v
      query   ::= for+ where? "return" item
      for     ::= "for" "$"NAME "in" source
      source  ::= absolute-xpath                    first binding
                | "$"NAME steps                     relative to a binding
      where   ::= "where" cond ("and" cond)*
      cond    ::= "$"NAME steps? "=" "'" chars "'"  value condition
                | "$"NAME steps                     existence condition
      item    ::= "<" NAME ">" item* "</" NAME ">"  element constructor
                | "{" "$"NAME "}"                   copy the bound subtree
                | "{" "$"NAME "/text()" "}"         text content
                | raw text
      steps   ::= (("/" | "//") step)+              (see {!Xpath})
    v}

    Example:

    {v
      for $m in //manager
      for $e in $m//employee
      where $e/name = 'dan' and $m/department
      return <hit><boss>{$m/name/text()}</boss>{$e}</hit>
    v}

    Every query evaluates to a fresh document rooted at [<results>] with
    one child per match. *)

open Sjos_xml

exception Error of string

type compiled = {
  pattern : Sjos_pattern.Pattern.t;
  bindings : (string * int) list;  (** variable name -> pattern node *)
}

val compile : string -> compiled * (Document.t -> Sjos_exec.Tuple.t -> Builder.t -> unit)
(** Parse and compile; returns the pattern plus the per-match constructor.
    Raises {!Error} on unsupported input. *)

val run : ?opts:Query_opts.t -> Database.t -> string -> Document.t
(** Compile, prepare (default {!Query_opts.default}: DPP through the plan
    cache), execute, construct results. *)

val run_string : ?opts:Query_opts.t -> Database.t -> string -> string
(** {!run} rendered as XML text. *)

val run_r :
  ?opts:Query_opts.t ->
  Database.t ->
  string ->
  (Document.t, Sjos_guard.Error.t) result
(** {!run} with failures as values: {!Error} becomes
    [Parse_error { input = src; _ }], budget exhaustion that survives
    degradation becomes [Budget_exhausted], anything else unstructured
    becomes [Internal]. *)
