open Sjos_pattern
open Sjos_core
open Sjos_exec
open Sjos_datagen

type cell = {
  opt_seconds : float;
  plans_considered : int;
  eval_units : float;
  eval_seconds : float;
  matches : int;
  est_cost : float;
}

let run_cell ?(opts = Query_opts.default) db pat =
  let p = Database.prepare ~opts db pat in
  let opt = Database.prepared_result p in
  match Database.exec p with
  | run ->
      {
        opt_seconds = opt.Optimizer.opt_seconds;
        plans_considered = opt.Optimizer.plans_considered;
        eval_units = run.Database.exec.Executor.cost_units;
        eval_seconds = run.Database.exec.Executor.seconds;
        matches = Array.length run.Database.exec.Executor.tuples;
        est_cost = opt.Optimizer.est_cost;
      }
  | exception
      Sjos_guard.Budget.Exhausted
        { resource = Sjos_guard.Budget.Tuples_materialized _; _ } ->
      (* the chosen plan materializes too much to run safely (only heuristic
         algorithms ever get here); report the cost-model estimate, as the
         paper does for its ">4000 s" entries *)
      {
        opt_seconds = opt.Optimizer.opt_seconds;
        plans_considered = opt.Optimizer.plans_considered;
        eval_units = opt.Optimizer.est_cost;
        eval_seconds = nan;
        matches = -1;
        est_cost = opt.Optimizer.est_cost;
      }

(* The table harnesses measure search effort, so they always run cold:
   a cache hit would report zero plans considered. *)
let cold_opts ?max_tuples algorithm =
  Query_opts.make ~algorithm ?max_tuples ~use_cache:false ()

let bad_plan_cell ?(seed = 42) ?(samples = 20) ?max_tuples db pat =
  let provider = Database.provider db pat in
  let ctx = Search.make_ctx ~factors:(Database.factors db) ~provider pat in
  let t0 = Sjos_obs.Clock.now_ns () in
  let est_cost, plan = Random_plan.worst_of ~seed ctx samples in
  let opt_seconds = Sjos_obs.Clock.elapsed_seconds ~since:t0 in
  let considered = ctx.Search.effort.Effort.considered in
  match Database.execute_plan ?max_tuples db pat plan with
  | exec ->
      {
        opt_seconds;
        plans_considered = considered;
        eval_units = exec.Executor.cost_units;
        eval_seconds = exec.Executor.seconds;
        matches = Array.length exec.Executor.tuples;
        est_cost;
      }
  | exception
      Sjos_guard.Budget.Exhausted
        { resource = Sjos_guard.Budget.Tuples_materialized _; _ } ->
      (* too expensive to run safely: report the cost-model estimate *)
      {
        opt_seconds;
        plans_considered = considered;
        eval_units = est_cost;
        eval_seconds = nan;
        matches = -1;
        est_cost;
      }

(* ------------------------------------------------------------------ *)

type table1_row = {
  query : Workload.query;
  cells : (Optimizer.algorithm * cell) list;
  bad : cell;
}

let database_cache :
    (Workload.dataset * int, Database.t) Hashtbl.t =
  Hashtbl.create 8

let database_for ?sizes ds =
  let size =
    match sizes with Some f -> f ds | None -> Workload.default_size ds
  in
  match Hashtbl.find_opt database_cache (ds, size) with
  | Some db -> db
  | None ->
      let db = Database.of_document (Workload.generate ~size ds) in
      Hashtbl.add database_cache (ds, size) db;
      db

(* The parallel workload driver: resolve (and cache) the databases on
   the calling domain — [database_cache] is a plain Hashtbl — then hand
   the fan-out to [Workload.run_all]. *)
let run_workload ?sizes ?opts ?pool () =
  let dbs =
    List.map (fun ds -> (ds, database_for ?sizes ds)) Workload.all_datasets
  in
  Workload.run_all ?opts ?pool (fun ds -> List.assoc ds dbs)

let table1 ?sizes ?max_tuples () =
  List.map
    (fun (query : Workload.query) ->
      let db = database_for ?sizes query.Workload.dataset in
      let pat = query.Workload.pattern in
      let cells =
        List.map
          (fun algo -> (algo, run_cell ~opts:(cold_opts ?max_tuples algo) db pat))
          (Optimizer.all pat)
      in
      let bad = bad_plan_cell ?max_tuples db pat in
      { query; cells; bad })
    Workload.queries

let cell_to_json (c : cell) =
  let open Sjos_obs.Json in
  Obj
    [
      ("est_cost_units", Float c.est_cost);
      ("actual_cost_units", Float c.eval_units);
      ("plans_considered", Int c.plans_considered);
      ("opt_seconds", Float c.opt_seconds);
      ("eval_seconds", Float c.eval_seconds);
      ("matches", Int c.matches);
    ]

let table1_to_json rows =
  let open Sjos_obs.Json in
  List
    (List.map
       (fun row ->
         Obj
           [
             ("query", Str row.query.Workload.id);
             ( "algorithms",
               Obj
                 (List.map
                    (fun (algo, c) -> (Optimizer.name algo, cell_to_json c))
                    row.cells) );
             ("bad_plan", cell_to_json row.bad);
           ])
       rows)

let print_table1 rows =
  let pr fmt = Printf.printf fmt in
  pr "%-14s" "Query";
  List.iter
    (fun (algo, _) ->
      let n =
        match algo with Optimizer.Dpap_eb _ -> "DPAP-EB" | a -> Optimizer.name a
      in
      pr "| %-17s" n)
    (match rows with r :: _ -> r.cells | [] -> []);
  pr "| %-17s\n" "Bad plan";
  pr "%-14s" "";
  List.iter (fun _ -> pr "| %-8s %-8s" "Opt(ms)" "Eval(kU)")
    (match rows with r :: _ -> r.cells | [] -> []);
  pr "| %-8s %-8s\n" "" "Eval(kU)";
  List.iter
    (fun row ->
      pr "%-14s" row.query.Workload.id;
      List.iter
        (fun (_, c) ->
          pr "| %8.2f %8.1f" (c.opt_seconds *. 1000.) (c.eval_units /. 1000.))
        row.cells;
      pr "| %8s %8.1f\n" "" (row.bad.eval_units /. 1000.))
    rows

(* ------------------------------------------------------------------ *)

type table2_row = { algo_name : string; opt_seconds : float; considered : int }

let table2 ?size ?(query = Workload.q_pers_3_d) () =
  let sizes =
    match size with Some s -> Some (fun _ -> s) | None -> None
  in
  let db = database_for ?sizes query.Workload.dataset in
  let pat = query.Workload.pattern in
  let te = Optimizer.default_te pat in
  let algos =
    [
      ("DP", Optimizer.Dp);
      ("DPP'", Optimizer.Dpp_no_lookahead);
      ("DPP", Optimizer.Dpp);
      ("DPAP-EB", Optimizer.Dpap_eb te);
      ("DPAP-LD", Optimizer.Dpap_ld);
      ("FP", Optimizer.Fp);
    ]
  in
  List.map
    (fun (algo_name, algo) ->
      let r = Database.optimize ~algorithm:algo db pat in
      {
        algo_name;
        opt_seconds = r.Optimizer.opt_seconds;
        considered = r.Optimizer.plans_considered;
      })
    algos

let print_table2 rows =
  Printf.printf "%-12s" "";
  List.iter (fun r -> Printf.printf "| %9s " r.algo_name) rows;
  Printf.printf "\n%-12s" "OpTime(ms)";
  List.iter (fun r -> Printf.printf "| %9.3f " (r.opt_seconds *. 1000.)) rows;
  Printf.printf "\n%-12s" "# of Plans";
  List.iter (fun r -> Printf.printf "| %9d " r.considered) rows;
  print_newline ()

(* ------------------------------------------------------------------ *)

type table3_row = { label : string; per_fold : (int * float * float) list }

let table3 ?(base_size = 2_000) ?(folds = [ 1; 10; 100; 500 ])
    ?(query = Workload.q_pers_3_d) ?(max_tuples = 20_000_000) () =
  let base = Workload.generate ~size:base_size query.Workload.dataset in
  let pat = query.Workload.pattern in
  let dbs =
    List.map (fun f -> (f, Database.of_document (Folding.replicate base f))) folds
  in
  let te = Optimizer.default_te pat in
  let algos =
    [
      ("DP", Optimizer.Dp);
      ("DPP", Optimizer.Dpp);
      ("DPAP-EB", Optimizer.Dpap_eb te);
      ("DPAP-LD", Optimizer.Dpap_ld);
      ("FP", Optimizer.Fp);
    ]
  in
  let algo_rows =
    List.map
      (fun (label, algo) ->
        {
          label;
          per_fold =
            List.map
              (fun (f, db) ->
                let c = run_cell ~opts:(cold_opts ~max_tuples algo) db pat in
                (f, c.eval_units, c.eval_seconds))
              dbs;
        })
      algos
  in
  let bad_row =
    {
      label = "bad plan";
      per_fold =
        List.map
          (fun (f, db) ->
            let c = bad_plan_cell ~max_tuples db pat in
            (f, c.eval_units, c.eval_seconds))
          dbs;
    }
  in
  algo_rows @ [ bad_row ]

let print_table3 rows =
  (match rows with
  | [] -> ()
  | r :: _ ->
      Printf.printf "%-10s" "";
      List.iter (fun (f, _, _) -> Printf.printf "| x%-11d " f) r.per_fold;
      print_newline ());
  List.iter
    (fun r ->
      Printf.printf "%-10s" r.label;
      List.iter
        (fun (_, units, seconds) ->
          if Float.is_nan seconds then Printf.printf "| >%-9.0fkU*" (units /. 1000.)
          else Printf.printf "| %8.1fkU  " (units /. 1000.))
        r.per_fold;
      print_newline ())
    rows;
  Printf.printf "(* = not executed; cost-model estimate)\n"

(* ------------------------------------------------------------------ *)

type te_point = { setting : string; opt_units_s : float; eval_units_s : float }

let figure_te ?(base_size = 2_000) ?(fold = 1) ?(query = Workload.q_pers_3_d)
    () =
  let base = Workload.generate ~size:base_size query.Workload.dataset in
  let db = Database.of_document (Folding.replicate base fold) in
  let pat = query.Workload.pattern in
  let n = Pattern.node_count pat in
  let point setting algo =
    let c = run_cell ~opts:(cold_opts algo) db pat in
    { setting; opt_units_s = c.opt_seconds; eval_units_s = c.eval_seconds }
  in
  List.init n (fun i ->
      point (Printf.sprintf "DPAP-EB(%d)" (i + 1)) (Optimizer.Dpap_eb (i + 1)))
  @ [
      point "DPAP-LD" Optimizer.Dpap_ld;
      point "DPP" Optimizer.Dpp;
      point "DP" Optimizer.Dp;
      point "FP" Optimizer.Fp;
    ]

let print_figure ~title points =
  Printf.printf "%s\n" title;
  Printf.printf "%-14s %12s %12s %12s\n" "setting" "opt(ms)" "eval(ms)"
    "total(ms)";
  List.iter
    (fun p ->
      Printf.printf "%-14s %12.3f %12.3f %12.3f\n" p.setting
        (p.opt_units_s *. 1000.) (p.eval_units_s *. 1000.)
        ((p.opt_units_s +. p.eval_units_s) *. 1000.))
    points
