(** The engine façade: an in-memory XML database that ties together
    storage, statistics, optimization and execution — the role Timber plays
    in the paper.

    {[
      let db = Database.of_document doc in
      let pattern = Sjos_pattern.Parse.pattern "manager(//employee(/name))" in
      let run = Database.run_query db pattern in
      Fmt.pr "%d matches@." (Array.length run.exec.tuples)
    ]} *)

open Sjos_xml
open Sjos_storage
open Sjos_pattern
open Sjos_core
open Sjos_exec

type t

val of_document :
  ?factors:Sjos_cost.Cost_model.factors -> ?grid:int -> Document.t -> t
(** Index a document and prepare it for querying.  [grid] is the
    positional-histogram resolution (default 32). *)

val of_string :
  ?factors:Sjos_cost.Cost_model.factors -> ?grid:int -> string -> t
(** Parse XML text and index it. *)

val load_file :
  ?factors:Sjos_cost.Cost_model.factors -> ?grid:int -> string -> t

val document : t -> Document.t
val index : t -> Element_index.t
val stats : t -> Stats.t
val factors : t -> Sjos_cost.Cost_model.factors

val provider : t -> Pattern.t -> Sjos_plan.Costing.provider
(** Histogram-backed cardinality provider for a pattern (memoized per
    pattern structure for the lifetime of the call result). *)

val optimize : ?algorithm:Optimizer.algorithm -> t -> Pattern.t -> Optimizer.result
(** Pick a plan; default algorithm is [Dpp] (the paper's recommendation
    when execution time matters). *)

type query_run = { opt : Optimizer.result; exec : Executor.run }

val run_query :
  ?algorithm:Optimizer.algorithm ->
  ?max_tuples:int ->
  t ->
  Pattern.t ->
  query_run
(** Optimize then execute. *)

val execute_plan :
  ?max_tuples:int -> t -> Pattern.t -> Sjos_plan.Plan.t -> Executor.run

val explain : ?algorithm:Optimizer.algorithm -> t -> Pattern.t -> string
(** The chosen plan, rendered with estimated cardinalities and costs. *)

type analysis = {
  opt : Optimizer.result;
  exec : Executor.run;
  rows : Sjos_plan.Explain.analysis_row list;
      (** one row per plan operator, pre-order *)
}

val analyze :
  ?algorithm:Optimizer.algorithm -> ?max_tuples:int -> t -> Pattern.t -> analysis
(** EXPLAIN ANALYZE: optimize, execute, and compare the optimizer's
    estimates against measured per-operator cardinalities, cost units and
    wall time.  Render with {!Sjos_plan.Explain.analyze_to_string} or
    {!Sjos_plan.Explain.analysis_to_json}. *)
