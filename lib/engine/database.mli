(** The engine façade: an in-memory XML database that ties together
    storage, statistics, optimization and execution — the role Timber plays
    in the paper.

    The primary query interface is {e prepared queries}: {!prepare}
    canonicalizes the pattern ({!Sjos_pattern.Fingerprint}), picks a plan —
    consulting the database's LRU plan cache first, so repeated structures
    skip the optimizer search entirely — and returns a handle off which
    {!exec}, {!explain_prepared} and {!analyze_prepared} run.

    {[
      let db = Database.of_document doc in
      let pat = Sjos_pattern.Parse.pattern "manager(//employee(/name))" in
      let p = Database.prepare db pat in
      let run = Database.exec p in          (* cold: optimizer searched *)
      let run' = Database.exec p in         (* warm: plan reused *)
      Fmt.pr "%d matches (fingerprint %s)@."
        (Array.length run'.exec.tuples)
        (Database.prepared_fingerprint p)
    ]}

    Per-query knobs travel in a {!Query_opts.t}.  The [?algorithm] /
    [?max_tuples] entry points further down are retained for source
    compatibility but are {b deprecated}: they are thin wrappers over
    [prepare] and will be removed in a future release. *)

open Sjos_xml
open Sjos_storage
open Sjos_pattern
open Sjos_core
open Sjos_exec

type t

val of_document :
  ?factors:Sjos_cost.Cost_model.factors ->
  ?grid:int ->
  ?cache_capacity:int ->
  ?storage:Column_store.config ->
  Document.t ->
  t
(** Index a document and prepare it for querying.  [grid] is the
    positional-histogram resolution (default 32); [cache_capacity] bounds
    the plan cache (default 256 entries).

    [storage] selects the column storage backend queries read candidate
    streams through, defaulting to
    {!Sjos_storage.Column_store.config_of_env} ([SJOS_STORAGE=mem|disk],
    mem when unset).  A [Disk] store writes the per-tag column file at
    this point — a load-time cost proportional to document size. *)

val of_string :
  ?factors:Sjos_cost.Cost_model.factors ->
  ?grid:int ->
  ?cache_capacity:int ->
  ?storage:Column_store.config ->
  string ->
  t
(** Parse XML text and index it. *)

val load_file :
  ?factors:Sjos_cost.Cost_model.factors ->
  ?grid:int ->
  ?cache_capacity:int ->
  ?storage:Column_store.config ->
  string ->
  t

val document : t -> Document.t
val index : t -> Element_index.t

val store : t -> Column_store.t
(** The database's column store — inspect {!Column_store.io_stats} after
    Disk-backed runs, or {!Column_store.reset_io} to cold-start the
    pool. *)

val dispose : t -> unit
(** Dispose the database's store and every memoized per-query override
    store (deleting Disk files).  The database must not be queried
    afterwards under a Disk configuration; Mem queries are unaffected.
    Idempotent. *)

val stats : t -> Stats.t
(** Document statistics, computed once on first use (mutex-guarded memo —
    safe to race from several domains). *)

val warm : t -> unit
(** Pre-build every lazily cached read-side structure (document position
    columns, per-tag candidate columns, statistics), so queries fanned
    out across domains afterwards touch only read paths.  Idempotent;
    purely a scheduling hint — parallel queries are correct without it. *)

val factors : t -> Sjos_cost.Cost_model.factors
val grid : t -> int

val set_factors : t -> Sjos_cost.Cost_model.factors -> unit
(** Change the database's cost factors.  Bumps the plan-cache epoch: every
    cached plan was chosen under the old statistics and is invalidated. *)

val set_grid : t -> int -> unit
(** Change the histogram grid resolution.  Also bumps the epoch. *)

val invalidate_plans : t -> unit
(** Bump the plan-cache epoch without changing configuration (e.g. tests,
    or after external document mutation). *)

val plan_cache : t -> Sjos_cache.Plan_cache.t
(** The database's plan cache, for stats inspection. *)

val provider : t -> Pattern.t -> Sjos_plan.Costing.provider
(** Histogram-backed cardinality provider for a pattern (memoized per
    pattern structure for the lifetime of the call result). *)

(** {1 Prepared queries} *)

type prepared
(** A pattern bound to a database with its options, fingerprint, memoized
    cardinality provider and chosen plan.  Re-executing a prepared query
    costs no optimizer search; if the database's configuration changes
    after preparation, the handle transparently re-optimizes on next use. *)

val prepare : ?opts:Query_opts.t -> t -> Pattern.t -> prepared
(** Canonicalize, fingerprint and optimize (through the plan cache when
    [opts.use_cache], the default).  [opts] defaults to
    {!Query_opts.default}.

    When [opts.chaos] is set, the query does not draw faults from the
    caller's instance directly: an independent child stream is derived
    from it, keyed on the query fingerprint
    ({!Sjos_guard.Chaos.derive}), so the faults a query sees depend only
    on (seed, query) — replayable regardless of query order or of the
    domain scheduling of a parallel workload.  Injection totals still
    accumulate on the caller's instance. *)

type query_run = { opt : Optimizer.result; exec : Executor.run }

val exec : prepared -> query_run
(** Execute the prepared plan.  [opt] is the resolution that produced the
    plan: a cache hit reports zero search effort and only the lookup time
    as [opt_seconds]. *)

val explain_prepared : prepared -> string
(** The prepared plan, rendered with estimated cardinalities and costs. *)

type analysis = {
  opt : Optimizer.result;
  exec : Executor.run;
  rows : Sjos_plan.Explain.analysis_row list;
      (** one row per plan operator, pre-order *)
}

val analyze_prepared : prepared -> analysis
(** EXPLAIN ANALYZE off the handle: execute and compare the optimizer's
    estimates against measured per-operator cardinalities, cost units and
    wall time.  Render with {!Sjos_plan.Explain.analyze_to_string} or
    {!Sjos_plan.Explain.analysis_to_json}. *)

val prepared_result : prepared -> Optimizer.result
val prepared_pattern : prepared -> Pattern.t
val prepared_opts : prepared -> Query_opts.t

val prepared_fingerprint : prepared -> string
(** Structural fingerprint of the pattern — the cache-key component. *)

val prepared_from_cache : prepared -> bool
(** Did the most recent plan resolution hit the cache? *)

val run : ?opts:Query_opts.t -> t -> Pattern.t -> query_run
(** [prepare] + [exec] in one call — the normal one-shot entry point. *)

val execute_plan :
  ?budget:Sjos_guard.Budget.t ->
  ?max_tuples:int ->
  ?pool:Sjos_par.Pool.t ->
  t ->
  Pattern.t ->
  Sjos_plan.Plan.t ->
  Executor.run
(** Execute an externally supplied plan ("plan hints"); bypasses the
    optimizer and the cache. *)

(** {1 Result-returning surface}

    The same pipeline with every failure mode as a value: parse/knob
    problems, invalid plans, budget exhaustion that no degradation tier
    absorbed, corruption detected at a trust boundary — all come back as
    a {!Sjos_guard.Error.t} instead of an exception.  The raising
    functions above are thin wrappers retained for compatibility; these
    are the entry points services should use. *)

val prepare_r :
  ?opts:Query_opts.t ->
  t ->
  Pattern.t ->
  (prepared, Sjos_guard.Error.t) result

val exec_r : prepared -> (query_run, Sjos_guard.Error.t) result
(** Budget exhaustion during execution preserves the partial tuple count
    in [Budget_exhausted { resource = Tuples_materialized _; _ }]. *)

val run_r :
  ?opts:Query_opts.t ->
  t ->
  Pattern.t ->
  (query_run, Sjos_guard.Error.t) result
(** [prepare_r] + [exec_r] in one call.  With a budget in [opts], an
    exact optimizer search that blows its budget transparently degrades
    to DPAP-EB (see {!Sjos_core.Optimizer.optimize_r}); check
    [(run.opt).degraded_from] to detect it. *)

val analyze_prepared_r : prepared -> (analysis, Sjos_guard.Error.t) result

(** {1 Deprecated one-shot wrappers}

    Thin veneers over {!prepare} kept for one release so existing callers
    keep compiling; prefer {!run} / {!prepare} with a {!Query_opts.t}. *)

val optimize :
  ?algorithm:Optimizer.algorithm ->
  ?engine:Optimizer.engine ->
  t ->
  Pattern.t ->
  Optimizer.result
(** Pick a plan with a {e fresh} search — never consults the plan cache, so
    effort counters are always the true search cost (Table 2 relies on
    this).  Default algorithm is [Dpp].  {b Deprecated}: use
    [prepare ~opts:(Query_opts.make ~use_cache:false ())]. *)

val run_query :
  ?algorithm:Optimizer.algorithm ->
  ?engine:Optimizer.engine ->
  ?max_tuples:int ->
  t ->
  Pattern.t ->
  query_run
(** Optimize (through the cache) then execute.  {b Deprecated}: use
    {!run}. *)

val explain :
  ?algorithm:Optimizer.algorithm -> ?engine:Optimizer.engine -> t -> Pattern.t -> string
(** {b Deprecated}: use {!prepare} + {!explain_prepared}. *)

val analyze :
  ?algorithm:Optimizer.algorithm ->
  ?engine:Optimizer.engine ->
  ?max_tuples:int ->
  t ->
  Pattern.t ->
  analysis
(** {b Deprecated}: use {!prepare} + {!analyze_prepared}. *)
