(** Harnesses that regenerate every table and figure of the paper's
    evaluation (§4).  Each function returns structured rows; printing
    helpers render them in the paper's layout.

    Times are reported in two currencies: wall-clock seconds on the host,
    and machine-independent {e cost units} (the executor's operation counts
    weighted by the cost-model factors).  The paper's absolute seconds are
    not reproducible — its substrate was Timber on a Pentium III — but the
    relative shapes are; EXPERIMENTS.md records both. *)

open Sjos_pattern
open Sjos_core

type cell = {
  opt_seconds : float;  (** time spent choosing the plan *)
  plans_considered : int;
  eval_units : float;  (** execution cost units of the chosen plan *)
  eval_seconds : float;
  matches : int;
  est_cost : float;  (** the optimizer's estimate for the chosen plan *)
}

val run_cell : ?opts:Query_opts.t -> Database.t -> Pattern.t -> cell
(** Optimize (per [opts], default {!Query_opts.default}) and execute the
    chosen plan.  If execution would exceed [opts.max_tuples],
    [eval_units] falls back to the cost-model estimate, [eval_seconds] is
    [nan] and [matches] is [-1]. *)

val cold_opts : ?max_tuples:int -> Optimizer.algorithm -> Query_opts.t
(** Options for a cold measurement cell: the given algorithm with plan
    caching off, so [plans_considered]/[opt_seconds] always reflect a real
    search.  All table/figure harnesses below use this. *)

val bad_plan_cell :
  ?seed:int -> ?samples:int -> ?max_tuples:int -> Database.t -> Pattern.t -> cell
(** The paper's "bad plan": the worst of [samples] (default 20) random
    plans.  If execution exceeds [max_tuples], [eval_units] is the
    cost-model estimate instead and [matches] is [-1]. *)

val run_workload :
  ?sizes:(Workload.dataset -> int) ->
  ?opts:Query_opts.t ->
  ?pool:Sjos_par.Pool.t ->
  unit ->
  (Workload.query * Database.query_run) array
(** All eight workload queries through {!Workload.run_all}: databases
    are resolved (and cached) serially on the calling domain, then the
    queries fan out across the pool.  Results are in workload order and
    bit-identical to a serial run for every pool size. *)

(** {1 Table 1} — plan quality and optimization time, 8 queries × 5
    algorithms + bad plan *)

type table1_row = {
  query : Workload.query;
  cells : (Optimizer.algorithm * cell) list;
  bad : cell;
}

val table1 :
  ?sizes:(Workload.dataset -> int) -> ?max_tuples:int -> unit -> table1_row list

val print_table1 : table1_row list -> unit

val cell_to_json : cell -> Sjos_obs.Json.t

val table1_to_json : table1_row list -> Sjos_obs.Json.t
(** One object per query: the per-algorithm cells keyed by algorithm name
    (est/actual cost units, plans considered, opt seconds, …) plus the bad
    plan — the payload the bench harness writes to [BENCH_1.json]. *)

(** {1 Table 2} — optimization time and number of plans considered *)

type table2_row = { algo_name : string; opt_seconds : float; considered : int }

val table2 : ?size:int -> ?query:Workload.query -> unit -> table2_row list
val print_table2 : table2_row list -> unit

(** {1 Table 3} — effect of data size (folding factors) *)

type table3_row = {
  label : string;
  per_fold : (int * float * float) list;
      (** folding factor, eval cost units, eval seconds *)
}

val table3 :
  ?base_size:int ->
  ?folds:int list ->
  ?query:Workload.query ->
  ?max_tuples:int ->
  unit ->
  table3_row list

val print_table3 : table3_row list -> unit

(** {1 Figures 7 and 8} — the Te sweep for DPAP-EB *)

type te_point = { setting : string; opt_units_s : float; eval_units_s : float }
(** One bar of the figure: optimization and execution components of total
    query evaluation time (seconds). *)

val figure_te :
  ?base_size:int -> ?fold:int -> ?query:Workload.query -> unit -> te_point list
(** Runs DPAP-EB for [Te = 1 .. node count], plus DP, DPP, DPAP-LD and FP
    for comparison, on the query's data set replicated [fold] times. *)

val print_figure : title:string -> te_point list -> unit
