open Sjos_xml
open Sjos_storage
open Sjos_pattern

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* ---------- surface syntax ---------- *)

type step = Axes.axis * string
type source = Absolute of step list | Relative of string * step list

type item =
  | Element of string * item list
  | Hole of string * step list * bool
      (* variable, navigation steps, text()? — {$m/name/text()} navigates
         from the binding at construction time *)
  | Raw of string

type clauses = {
  fors : (string * source) list;
  wheres : (string * step list * string option) list;
  return : item;
}

(* ---------- lexer-ish cursor ---------- *)

type cursor = { src : string; mutable pos : int }

let eof c = c.pos >= String.length c.src
let peek c = if eof c then '\000' else c.src.[c.pos]

let peek_at c k =
  if c.pos + k >= String.length c.src then '\000' else c.src.[c.pos + k]

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while (not (eof c)) && (peek c = ' ' || peek c = '\n' || peek c = '\t') do
    advance c
  done

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' -> true
  | _ -> false

let read_name c =
  skip_ws c;
  let start = c.pos in
  while (not (eof c)) && is_name_char (peek c) do
    advance c
  done;
  if c.pos = start then fail "expected a name at offset %d" c.pos;
  String.sub c.src start (c.pos - start)

let read_keyword c kw =
  skip_ws c;
  let n = String.length kw in
  if
    c.pos + n <= String.length c.src
    && String.sub c.src c.pos n = kw
    && (c.pos + n = String.length c.src || not (is_name_char c.src.[c.pos + n]))
  then begin
    c.pos <- c.pos + n;
    true
  end
  else false

let expect_keyword c kw =
  if not (read_keyword c kw) then fail "expected '%s' at offset %d" kw c.pos

let read_var c =
  skip_ws c;
  if peek c <> '$' then fail "expected a variable at offset %d" c.pos;
  advance c;
  read_name c

let read_literal c =
  skip_ws c;
  if peek c <> '\'' then fail "expected a quoted literal at offset %d" c.pos;
  advance c;
  let start = c.pos in
  while (not (eof c)) && peek c <> '\'' do
    advance c
  done;
  if eof c then fail "unterminated literal";
  let s = String.sub c.src start (c.pos - start) in
  advance c;
  s

let read_steps c =
  let rec go acc =
    skip_ws c;
    if peek c = '/' then begin
      advance c;
      let axis =
        if peek c = '/' then begin
          advance c;
          Axes.Descendant
        end
        else Axes.Child
      in
      let name = read_name c in
      go ((axis, name) :: acc)
    end
    else List.rev acc
  in
  go []

(* ---------- parser ---------- *)

let parse_source c =
  skip_ws c;
  if peek c = '$' then begin
    let var = read_var c in
    let steps = read_steps c in
    if steps = [] then fail "a relative source needs at least one step";
    Relative (var, steps)
  end
  else begin
    let steps = read_steps c in
    if steps = [] then fail "an absolute source must start with '/' or '//'";
    Absolute steps
  end

let parse_condition c =
  let var = read_var c in
  let steps = read_steps c in
  skip_ws c;
  if peek c = '=' then begin
    advance c;
    let v = read_literal c in
    (var, steps, Some v)
  end
  else (var, steps, None)

let rec parse_item c =
  skip_ws c;
  if peek c = '<' then begin
    advance c;
    let tag = read_name c in
    skip_ws c;
    if peek c <> '>' then fail "expected '>' in constructor";
    advance c;
    let children = ref [] in
    let rec content () =
      if eof c then fail "unterminated element constructor"
      else if peek c = '<' && peek_at c 1 = '/' then begin
        advance c;
        advance c;
        let closing = read_name c in
        skip_ws c;
        if peek c <> '>' then fail "expected '>' in closing tag";
        advance c;
        if not (String.equal closing tag) then
          fail "mismatched </%s>, expected </%s>" closing tag
      end
      else begin
        children := parse_item c :: !children;
        content ()
      end
    in
    content ();
    Element (tag, List.rev !children)
  end
  else if peek c = '{' then begin
    advance c;
    let var = read_var c in
    let steps = read_steps c in
    skip_ws c;
    (* a trailing '()' turns the last step into the text() function *)
    let steps, text =
      if peek c = '(' then begin
        (match List.rev steps with
        | (Axes.Child, "text") :: rest ->
            if peek_at c 1 <> ')' then fail "expected () after text";
            advance c;
            advance c;
            (List.rev rest, true)
        | _ -> fail "only the text() function is supported in holes")
      end
      else (steps, false)
    in
    skip_ws c;
    if peek c <> '}' then fail "expected '}'";
    advance c;
    Hole (var, steps, text)
  end
  else begin
    let start = c.pos in
    while (not (eof c)) && peek c <> '<' && peek c <> '{' do
      advance c
    done;
    if c.pos = start then fail "unexpected character at offset %d" c.pos;
    Raw (String.trim (String.sub c.src start (c.pos - start)))
  end

let parse src =
  let c = { src; pos = 0 } in
  let fors = ref [] in
  expect_keyword c "for";
  let rec for_clauses () =
    let var = read_var c in
    expect_keyword c "in";
    let source = parse_source c in
    fors := (var, source) :: !fors;
    if read_keyword c "for" then for_clauses ()
  in
  for_clauses ();
  let wheres = ref [] in
  if read_keyword c "where" then begin
    let rec conds () =
      wheres := parse_condition c :: !wheres;
      if read_keyword c "and" then conds ()
    in
    conds ()
  end;
  expect_keyword c "return";
  let return = parse_item c in
  skip_ws c;
  if not (eof c) then fail "trailing input at offset %d" c.pos;
  { fors = List.rev !fors; wheres = List.rev !wheres; return }

(* ---------- compilation to a pattern tree ---------- *)

type compiled = { pattern : Pattern.t; bindings : (string * int) list }

type growing = {
  mutable labels : Candidate.spec list;  (* reversed *)
  mutable edges : (int * Axes.axis * int) list;
  mutable count : int;
}

let grow g spec =
  g.labels <- spec :: g.labels;
  g.count <- g.count + 1;
  g.count - 1

let attach g parent steps =
  List.fold_left
    (fun parent (axis, name) ->
      let idx = grow g (Candidate.of_tag name) in
      (match parent with
      | Some p -> g.edges <- (p, axis, idx) :: g.edges
      | None -> ());
      Some idx)
    parent steps
  |> Option.get

let set_text g idx value =
  g.labels <-
    List.mapi
      (fun i l ->
        if i = g.count - 1 - idx then { l with Candidate.text = Some value }
        else l)
      g.labels

let compile_clauses q =
  let g = { labels = []; edges = []; count = 0 } in
  let bindings = ref [] in
  let node_of var =
    match List.assoc_opt var !bindings with
    | Some i -> i
    | None -> fail "unbound variable $%s" var
  in
  List.iteri
    (fun i (var, source) ->
      if List.mem_assoc var !bindings then fail "duplicate variable $%s" var;
      let node =
        match source with
        | Absolute steps ->
            if i <> 0 then
              fail "only the first 'for' may use an absolute path";
            attach g None steps
        | Relative (base, steps) ->
            if i = 0 then fail "the first 'for' must use an absolute path";
            attach g (Some (node_of base)) steps
      in
      bindings := (var, node) :: !bindings)
    q.fors;
  List.iter
    (fun (var, steps, value) ->
      let base = node_of var in
      match (steps, value) with
      | [], Some v -> set_text g base v
      | [], None -> fail "a bare '$%s' condition is vacuous" var
      | steps, value -> (
          let last = attach g (Some base) steps in
          match value with Some v -> set_text g last v | None -> ()))
    q.wheres;
  let first_binding = snd (List.hd (List.rev !bindings)) in
  let pattern =
    Pattern.create ~order_by:first_binding
      ~labels:(Array.of_list (List.rev g.labels))
      ~edges:(Array.of_list (List.rev g.edges))
      ()
  in
  { pattern; bindings = List.rev !bindings }

(* ---------- evaluation ---------- *)

let rec text_content doc (n : Node.t) =
  List.fold_left
    (fun acc child -> acc ^ text_content doc child)
    n.Node.text
    (Document.children doc n)

(* Navigate [steps] from a node, XPath-style. *)
let navigate doc node steps =
  List.fold_left
    (fun nodes (axis, name) ->
      List.concat_map
        (fun n ->
          (match axis with
          | Axes.Child -> Document.children doc n
          | Axes.Descendant -> Document.descendants doc n)
          |> List.filter (fun (m : Node.t) -> String.equal m.Node.tag name))
        nodes)
    [ node ] steps

let constructor q compiled doc tuple builder =
  let node_of var =
    match List.assoc_opt var compiled.bindings with
    | Some slot -> Document.node doc (Sjos_exec.Tuple.get tuple slot)
    | None -> fail "unbound variable $%s in return clause" var
  in
  let rec render = function
    | Raw "" -> ()
    | Raw s -> Builder.text builder s
    | Hole (var, steps, text) ->
        let targets = navigate doc (node_of var) steps in
        if text then
          Builder.text builder
            (String.concat "" (List.map (text_content doc) targets))
        else
          List.iter (Sjos_datagen.Folding.copy_subtree builder doc) targets
    | Element (tag, children) ->
        Builder.open_element builder tag;
        List.iter render children;
        Builder.close_element builder
  in
  render q.return

let rec check_item bindings = function
  | Raw _ -> ()
  | Hole (var, _, _) ->
      if not (List.mem_assoc var bindings) then
        fail "unbound variable $%s in return clause" var
  | Element (_, children) -> List.iter (check_item bindings) children

let compile src =
  let q = parse src in
  let compiled = compile_clauses q in
  check_item compiled.bindings q.return;
  (compiled, fun doc tuple builder -> constructor q compiled doc tuple builder)

let run ?opts db src =
  let compiled, construct = compile src in
  let result = Database.run ?opts db compiled.pattern in
  let doc = Database.document db in
  let b = Builder.create () in
  Builder.open_element b "results";
  Array.iter
    (fun tuple -> construct doc tuple b)
    result.Database.exec.Sjos_exec.Executor.tuples;
  Builder.close_element b;
  Builder.finish b

let run_string ?opts db src = Serializer.to_string (run ?opts db src)

(* The compiler's own failures and the XML/pattern parser's are all parse
   errors from the caller's point of view; anything else unstructured that
   escapes evaluation is an engine bug. *)
let run_r ?opts db src =
  Sjos_guard.Error.protect
    ~map:(function
      | Error msg ->
          Some (Sjos_guard.Error.Parse_error { input = src; message = msg })
      | _ -> None)
    (fun () -> run ?opts db src)
