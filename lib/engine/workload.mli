(** The paper's experimental workload (§4.1): three data sets and eight
    queries named [Q.DataSet.QueryNum.Pattern], where the trailing letter
    is the pattern shape of Figure 6 (see {!Sjos_pattern.Shapes}). *)

open Sjos_xml
open Sjos_pattern

type dataset = Mbench | Dblp | Pers

val dataset_name : dataset -> string
val all_datasets : dataset list

val default_size : dataset -> int
(** Default generated size (element count) used by the benchmarks:
    Mbench 60k, DBLP 50k, Pers 5k — scaled-down but with the same size
    ordering as the paper's 740k / 500k / 5k. *)

val paper_size : dataset -> int
(** The paper's §4.1 document sizes: Mbench 740k, DBLP 500k, Pers 5k
    elements.  [bench/bench_io] runs the Disk backend at this scale when
    asked ([SJOS_IO_PAPER=1]). *)

val stress_size : dataset -> int
(** An order of magnitude past the paper (Mbench 10M elements) for
    out-of-core stress runs; generation alone takes a while. *)

val generate : ?size:int -> dataset -> Document.t
(** Deterministic synthetic document for the data set. *)

type query = {
  id : string;  (** e.g. ["Q.Pers.3.d"] *)
  dataset : dataset;
  shape : char;  (** 'a' .. 'd' *)
  pattern : Pattern.t;
}

val queries : query list
(** The eight queries of Table 1, in the paper's order. *)

val find : string -> query
(** Lookup by id.  Raises [Not_found]. *)

val q_pers_3_d : query
(** The query used by Tables 2-3 and Figures 7-8. *)

val run : ?opts:Query_opts.t -> Database.t -> query -> Database.query_run
(** Prepare and execute a workload query ([opts] defaults to
    {!Query_opts.default}); repeated runs of the same query structure hit
    the database's plan cache. *)

val run_all :
  ?opts:Query_opts.t ->
  ?pool:Sjos_par.Pool.t ->
  (dataset -> Database.t) ->
  (query * Database.query_run) array
(** Run all eight queries, fanned out across the pool (one task per
    query) — results come back in {!queries} order regardless of domain
    scheduling, and each run's tuples and metrics are bit-identical to
    the serial loop.  [db_for] is called, and the databases warmed
    ({!Database.warm}), serially before the fan-out.  [pool] defaults to
    [opts.pool], then {!Sjos_par.Pool.get_default}; the queries carry
    the same pool, so large joins inside a single query shard over idle
    domains too.  An exception from any query (budget exhaustion, a
    chaos fault) is re-raised deterministically: lowest query index
    wins. *)
