open Sjos_core
open Sjos_guard
open Sjos_obs

type t = {
  algorithm : Optimizer.algorithm;
  engine : Optimizer.engine;
  max_tuples : int option;
  use_cache : bool;
  factors : Sjos_cost.Cost_model.factors option;
  grid : int option;
  budget : Budget.t;
  chaos : Chaos.t option;
  pool : Sjos_par.Pool.t option;
  storage : Sjos_storage.Column_store.config option;
}

let default =
  {
    algorithm = Optimizer.Dpp;
    engine = Optimizer.Binary;
    max_tuples = None;
    use_cache = true;
    factors = None;
    grid = None;
    budget = Budget.unlimited;
    chaos = None;
    pool = None;
    storage = None;
  }

let make ?(algorithm = Optimizer.Dpp) ?(engine = Optimizer.Binary) ?max_tuples
    ?(use_cache = true) ?factors ?grid ?(budget = Budget.unlimited) ?chaos ?pool
    ?storage () =
  {
    algorithm;
    engine;
    max_tuples;
    use_cache;
    factors;
    grid;
    budget;
    chaos;
    pool;
    storage;
  }

let with_algorithm t algorithm = { t with algorithm }
let with_engine t engine = { t with engine }
let with_max_tuples t max_tuples = { t with max_tuples }
let with_use_cache t use_cache = { t with use_cache }
let with_factors t factors = { t with factors }
let with_grid t grid = { t with grid }
let with_budget t budget = { t with budget }
let with_chaos t chaos = { t with chaos }
let with_pool t pool = { t with pool }
let with_storage t storage = { t with storage }
let cold t = { t with use_cache = false }

let to_json t =
  Json.Obj
    [
      ("algorithm", Json.Str (Optimizer.name t.algorithm));
      ("engine", Json.Str (Optimizer.engine_name t.engine));
      ( "max_tuples",
        match t.max_tuples with Some n -> Json.Int n | None -> Json.Null );
      ("use_cache", Json.Bool t.use_cache);
      ("custom_factors", Json.Bool (Option.is_some t.factors));
      ("grid", match t.grid with Some g -> Json.Int g | None -> Json.Null);
      ( "budget",
        if Budget.is_unlimited t.budget then Json.Null
        else Budget.to_json t.budget );
      ( "chaos",
        match t.chaos with Some c -> Chaos.to_json c | None -> Json.Null );
      ( "domains",
        match t.pool with
        | Some p -> Json.Int (Sjos_par.Pool.size p)
        | None -> Json.Null );
      ( "storage",
        match t.storage with
        | Some c -> Sjos_storage.Column_store.config_to_json c
        | None -> Json.Null );
    ]

let pp ppf t =
  Fmt.pf ppf "{algorithm=%s; engine=%s; max_tuples=%a; use_cache=%b%s%s%s%s%s%s}"
    (Optimizer.name t.algorithm)
    (Optimizer.engine_name t.engine)
    Fmt.(option ~none:(any "none") int)
    t.max_tuples t.use_cache
    (if Option.is_some t.factors then "; custom factors" else "")
    (match t.grid with Some g -> Printf.sprintf "; grid=%d" g | None -> "")
    (if Budget.is_unlimited t.budget then ""
     else Fmt.str "; budget=%a" Budget.pp t.budget)
    (match t.chaos with
    | Some c -> Fmt.str "; %a" Chaos.pp c
    | None -> "")
    (match t.pool with
    | Some p -> Fmt.str "; domains=%d" (Sjos_par.Pool.size p)
    | None -> "")
    (match t.storage with
    | Some c -> Fmt.str "; storage=%a" Sjos_storage.Column_store.pp_config c
    | None -> "")
