open Sjos_core
open Sjos_obs

type t = {
  algorithm : Optimizer.algorithm;
  max_tuples : int option;
  use_cache : bool;
  factors : Sjos_cost.Cost_model.factors option;
  grid : int option;
}

let default =
  {
    algorithm = Optimizer.Dpp;
    max_tuples = None;
    use_cache = true;
    factors = None;
    grid = None;
  }

let make ?(algorithm = Optimizer.Dpp) ?max_tuples ?(use_cache = true) ?factors
    ?grid () =
  { algorithm; max_tuples; use_cache; factors; grid }

let with_algorithm t algorithm = { t with algorithm }
let with_max_tuples t max_tuples = { t with max_tuples }
let with_use_cache t use_cache = { t with use_cache }
let with_factors t factors = { t with factors }
let with_grid t grid = { t with grid }
let cold t = { t with use_cache = false }

let to_json t =
  Json.Obj
    [
      ("algorithm", Json.Str (Optimizer.name t.algorithm));
      ( "max_tuples",
        match t.max_tuples with Some n -> Json.Int n | None -> Json.Null );
      ("use_cache", Json.Bool t.use_cache);
      ("custom_factors", Json.Bool (Option.is_some t.factors));
      ("grid", match t.grid with Some g -> Json.Int g | None -> Json.Null);
    ]

let pp ppf t =
  Fmt.pf ppf "{algorithm=%s; max_tuples=%a; use_cache=%b%s%s}"
    (Optimizer.name t.algorithm)
    Fmt.(option ~none:(any "none") int)
    t.max_tuples t.use_cache
    (if Option.is_some t.factors then "; custom factors" else "")
    (match t.grid with Some g -> Printf.sprintf "; grid=%d" g | None -> "")
