(** Per-query knobs, consolidated.

    Earlier revisions scattered [?algorithm], [?max_tuples], [?factors] and
    [?grid] across [Database], [Experiment], [Workload] and [Xquery] entry
    points; this record is the single carrier.  Build one with {!make} (or
    start from {!default}) and pass it to [Database.prepare] / [run],
    [Experiment.run_cell], [Workload.run] or [Xquery.run]. *)

type t = {
  algorithm : Sjos_core.Optimizer.algorithm;
      (** plan-selection algorithm; default [Dpp] *)
  engine : Sjos_core.Optimizer.engine;
      (** physical algebra: binary Stack-Tree plans (the default),
          the holistic TwigStack operator, or cost-based [Auto] *)
  max_tuples : int option;
      (** abort execution past this many intermediate tuples *)
  use_cache : bool;  (** consult/populate the database's plan cache *)
  factors : Sjos_cost.Cost_model.factors option;
      (** override the database's cost factors for this query (disables
          plan caching, which is keyed on the database's own factors) *)
  grid : int option;
      (** override the database's histogram grid (also disables caching) *)
  budget : Sjos_guard.Budget.t;
      (** resource ceilings enforced across optimization and execution;
          default {!Sjos_guard.Budget.unlimited}, which costs nothing *)
  chaos : Sjos_guard.Chaos.t option;
      (** seeded fault injection into candidate streams and cardinality
          estimates — testing only; disables plan caching *)
  pool : Sjos_par.Pool.t option;
      (** domain pool the join kernels shard large joins over; [None]
          (the default) falls back to {!Sjos_par.Pool.get_default},
          which is serial unless [SJOS_DOMAINS] says otherwise.
          Results are bit-identical for every pool size. *)
  storage : Sjos_storage.Column_store.config option;
      (** column storage backend override for this query; [None] (the
          default) uses the database's own store.  A [Some] config is
          resolved by the database against a small per-config store
          memo, so repeated queries with the same override reuse one
          store (and one on-disk file set).  Outputs and all counters
          except page/IO accounting are backend-independent, so plan
          caching stays on. *)
}

val default : t
(** [Dpp], no tuple limit, caching on, database-level factors and grid,
    unlimited budget, no fault injection. *)

val make :
  ?algorithm:Sjos_core.Optimizer.algorithm ->
  ?engine:Sjos_core.Optimizer.engine ->
  ?max_tuples:int ->
  ?use_cache:bool ->
  ?factors:Sjos_cost.Cost_model.factors ->
  ?grid:int ->
  ?budget:Sjos_guard.Budget.t ->
  ?chaos:Sjos_guard.Chaos.t ->
  ?pool:Sjos_par.Pool.t ->
  ?storage:Sjos_storage.Column_store.config ->
  unit ->
  t

val with_algorithm : t -> Sjos_core.Optimizer.algorithm -> t
val with_engine : t -> Sjos_core.Optimizer.engine -> t
val with_max_tuples : t -> int option -> t
val with_use_cache : t -> bool -> t
val with_factors : t -> Sjos_cost.Cost_model.factors option -> t
val with_grid : t -> int option -> t
val with_budget : t -> Sjos_guard.Budget.t -> t
val with_chaos : t -> Sjos_guard.Chaos.t option -> t
val with_pool : t -> Sjos_par.Pool.t option -> t
val with_storage : t -> Sjos_storage.Column_store.config option -> t

val cold : t -> t
(** The same options with caching off — always a fresh optimizer search. *)

val to_json : t -> Sjos_obs.Json.t
val pp : t Fmt.t
