open Sjos_pattern
open Sjos_datagen

type dataset = Mbench | Dblp | Pers

let dataset_name = function
  | Mbench -> "Mbench"
  | Dblp -> "DBLP"
  | Pers -> "Pers"

let all_datasets = [ Mbench; Dblp; Pers ]

let default_size = function Mbench -> 60_000 | Dblp -> 50_000 | Pers -> 5_000

(* the paper's §4.1 document sizes *)
let paper_size = function Mbench -> 740_000 | Dblp -> 500_000 | Pers -> 5_000

(* an order of magnitude past the paper, for out-of-core stress runs *)
let stress_size = function
  | Mbench -> 10_000_000
  | Dblp -> 5_000_000
  | Pers -> 500_000

let generate ?size ds =
  let target_nodes = match size with Some s -> s | None -> default_size ds in
  match ds with
  | Mbench -> Sjos_datagen.Mbench.generate ~target_nodes ()
  | Dblp -> Sjos_datagen.Dblp.generate ~target_nodes ()
  | Pers -> Pers.generate ~target_nodes ()

type query = { id : string; dataset : dataset; shape : char; pattern : Pattern.t }

let q id dataset shape text =
  { id; dataset; shape; pattern = Parse.pattern text }

let queries =
  [
    q "Q.Mbench.1.a" Mbench 'a'
      "eNest[@aLevel='2'](//eNest[@aLevel='6'](/eNest[@aLevel='7']))";
    q "Q.Mbench.2.b" Mbench 'b'
      "eNest[@aLevel='1'](/eNest[@aLevel='2'],//eNest[@aSixtyFour='3'](/eOccasional))";
    q "Q.DBLP.1.b" Dblp 'b' "inproceedings(/author,//cite(/title))";
    q "Q.DBLP.2.c" Dblp 'c' "dblp(//article(/author),//inproceedings(/cite))";
    q "Q.Pers.1.a" Pers 'a' "manager(//employee(/name))";
    q "Q.Pers.2.c" Pers 'c' "manager(//employee(/name),//department(/name))";
    q "Q.Pers.3.d" Pers 'd'
      "manager(//employee(/name),//manager(/department(/name)))";
    q "Q.Pers.4.d" Pers 'd'
      "manager(//department(/name),//manager(/employee(/name)))";
  ]

let find id = List.find (fun query -> String.equal query.id id) queries
let q_pers_3_d = find "Q.Pers.3.d"

let run ?opts db query = Database.run ?opts db query.pattern

(* Inter-query parallelism: the eight queries are independent, so they
   fan out across the pool, one task per query, and come back in query
   order (Pool.run is index-ordered) — the output is identical to the
   serial loop no matter how the domains interleave.  Databases are
   obtained and warmed serially first: [db_for] may build/cache them
   (not thread-safe), and warming moves every lazily built read-side
   structure out of the racy window.  The queries themselves also carry
   the pool, so a query large enough to shard its joins uses the same
   domains — nested parallelism degrades to serial inside a worker
   rather than deadlocking. *)
let run_all ?(opts = Query_opts.default) ?pool db_for =
  let pool =
    match (pool, opts.Query_opts.pool) with
    | Some p, _ -> p
    | None, Some p -> p
    | None, None -> Sjos_par.Pool.get_default ()
  in
  let qs = Array.of_list queries in
  let dbs = Array.map (fun q -> db_for q.dataset) qs in
  Array.iter Database.warm dbs;
  let opts = Query_opts.with_pool opts (Some pool) in
  let runs =
    Sjos_par.Pool.run pool (Array.length qs) (fun i ->
        Database.run ~opts dbs.(i) qs.(i).pattern)
  in
  Array.mapi (fun i r -> (qs.(i), r)) runs
