(** The four pattern-tree shapes of the paper's evaluation (Figure 6).

    Each constructor takes the tag (or full spec) of every node plus the
    axis of every edge, in pre-order.  Shapes:

    {v
      a: A - B - C                      (3-node path)
      b: A - (B, C - D)                 (4 nodes, one branch)
      c: A - (B - C, D - E)             (5 nodes, two branches)
      d: A - (B - C, D - E - F)         (6 nodes; the paper's Figure 1)
    v} *)

open Sjos_xml
open Sjos_storage

val path : Candidate.spec list -> Axes.axis list -> Pattern.t
(** [path labels axes] builds a chain; [length axes = length labels - 1].
    Raises [Invalid_argument] on mismatched lengths. *)

val a : Candidate.spec array -> Axes.axis array -> Pattern.t
(** 3 labels, 2 axes: edges A-B, B-C. *)

val b : Candidate.spec array -> Axes.axis array -> Pattern.t
(** 4 labels, 3 axes: edges A-B, A-C, C-D. *)

val c : Candidate.spec array -> Axes.axis array -> Pattern.t
(** 5 labels, 4 axes: edges A-B, B-C, A-D, D-E. *)

val d : Candidate.spec array -> Axes.axis array -> Pattern.t
(** 6 labels, 5 axes: edges A-B, B-C, A-D, D-E, E-F. *)

val of_tags : (Candidate.spec array -> Axes.axis array -> Pattern.t) ->
  string list -> Axes.axis list -> Pattern.t
(** Convenience: build a shape from plain tag names. *)

val complete_tree : fanout:int -> depth:int -> Candidate.spec -> Axes.axis -> Pattern.t
(** A complete tree pattern with uniform label and axis — the shape used in
    the paper's complexity analyses (§3.2, §3.4). *)

(** {1 Seeded generator for large patterns}

    Shape classes from "A Survey of XML Tree Patterns": deep [//]
    chains, bushy stars, balanced binary branching, and uniform random
    attachment, with wildcard labels, mixed axes and an occasional
    order-by.  Drives the large-pattern optimizer tier's differential
    tests and benchmarks at 15-40 nodes. *)

type gen_shape = Chain | Star | Balanced | Mixed

val gen_shape_name : gen_shape -> string
(** ["chain"], ["star"], ["balanced"], ["mixed"]. *)

val all_gen_shapes : gen_shape list
(** The four classes, in declaration order. *)

val generate : seed:int -> nodes:int -> gen_shape -> Pattern.t
(** [generate ~seed ~nodes shape] builds a valid [nodes]-node pattern of
    the class, deterministically from [(seed, nodes, shape)] — an inline
    splitmix64 stream, bit-stable across platforms and OCaml versions.
    Raises [Invalid_argument] when [nodes < 1] or above
    {!Pattern.max_nodes} (via {!Pattern.create}). *)
