(** Canonical forms and structural fingerprints for pattern trees.

    Two patterns that denote the same query — same multiset of labelled
    nodes, same axes, same tree shape, same (marked) order-by node — can
    still be numbered differently by callers: node indexes are an artifact
    of construction order, and siblings may be listed in any order.  This
    module quotients that away:

    - {!canonical} renumbers a pattern into a deterministic normal form
      (children visited in sorted structural order, preorder indexes), and
      returns the node mapping so plans chosen for the canonical pattern
      can be transported back to the original numbering;
    - {!fingerprint} is a stable content hash of that normal form, usable
      as a cache key across pattern instances, sessions and processes.

    The fingerprint covers labels (tag, attribute and text predicates),
    edge axes, tree shape and the order-by node; it is invariant under node
    renumbering and sibling reordering, and changes whenever any of those
    ingredients changes.  With [~minimize:true] both operations first apply
    tree-pattern minimization ({!Minimize.minimize}), fingerprinting the
    redundancy-free core instead — note that minimization changes the match
    tuple width, so plan caches keyed on minimized fingerprints must also
    evaluate the minimized pattern. *)

val canonical : ?minimize:bool -> Pattern.t -> Pattern.t * int array
(** [canonical pat] — the canonical renumbering of [pat] and the mapping
    from [pat]'s node indexes to canonical indexes.  With [~minimize:true]
    the pattern is minimized first and dropped nodes map to [-1] (default
    [false]). *)

val fingerprint : ?minimize:bool -> Pattern.t -> string
(** Hex digest of the canonical structure.  Equal for any two patterns
    with the same canonical form. *)

val structure : Pattern.t -> string
(** The un-hashed canonical structure string (labels length-prefixed,
    children sorted), for debugging and tests. *)

val short : string -> string
(** First 12 hex characters of a fingerprint, for display. *)

val structurally_equal : Pattern.t -> Pattern.t -> bool
(** [fingerprint a = fingerprint b]. *)
