open Sjos_xml
open Sjos_storage

let path labels axes =
  let n = List.length labels in
  if List.length axes <> n - 1 then
    invalid_arg "Shapes.path: need one axis per edge";
  let edges = List.mapi (fun i axis -> (i, axis, i + 1)) axes in
  Pattern.create ~labels:(Array.of_list labels) ~edges:(Array.of_list edges) ()

let shape name ~nodes ~structure labels axes =
  if Array.length labels <> nodes then
    invalid_arg (Printf.sprintf "Shapes.%s: expected %d labels" name nodes);
  if Array.length axes <> nodes - 1 then
    invalid_arg (Printf.sprintf "Shapes.%s: expected %d axes" name (nodes - 1));
  let edges = Array.mapi (fun i (anc, desc) -> (anc, axes.(i), desc)) structure in
  Pattern.create ~labels ~edges ()

let a labels axes = shape "a" ~nodes:3 ~structure:[| (0, 1); (1, 2) |] labels axes

let b labels axes =
  shape "b" ~nodes:4 ~structure:[| (0, 1); (0, 2); (2, 3) |] labels axes

let c labels axes =
  shape "c" ~nodes:5 ~structure:[| (0, 1); (1, 2); (0, 3); (3, 4) |] labels axes

let d labels axes =
  shape "d" ~nodes:6
    ~structure:[| (0, 1); (1, 2); (0, 3); (3, 4); (4, 5) |]
    labels axes

let of_tags make tags axes =
  make
    (Array.of_list (List.map Candidate.of_tag tags))
    (Array.of_list axes)

(* ---------- seeded generator for large patterns ----------

   The survey's shape classes for tree patterns: deep chains of [//]
   steps, bushy stars (one hub, many arms), balanced branching, and a
   mixed class with uniform random attachment.  Labels draw from a small
   tag alphabet with occasional wildcards, axes mix [/] and [//], and a
   quarter of the patterns carry an order-by node — everything the
   large-pattern optimizer tier must face.

   The RNG is an inline splitmix64: this library depends only on the
   xml/storage layers, and the generator must be bit-stable across OCaml
   versions (no [Random]). *)

type gen_shape = Chain | Star | Balanced | Mixed

let gen_shape_name = function
  | Chain -> "chain"
  | Star -> "star"
  | Balanced -> "balanced"
  | Mixed -> "mixed"

let all_gen_shapes = [ Chain; Star; Balanced; Mixed ]

let gen_tags = [| "a"; "b"; "c"; "d"; "e"; "f"; "g"; "h" |]

let generate ~seed ~nodes shape =
  if nodes < 1 then invalid_arg "Shapes.generate: need at least one node";
  (* splitmix64 over Int64, truncated to 30 positive bits per draw *)
  let state =
    ref
      (Int64.add
         (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L)
         (Int64.of_int
            (match shape with Chain -> 1 | Star -> 2 | Balanced -> 3 | Mixed -> 4)))
  in
  let next () =
    state := Int64.add !state 0x9E3779B97F4A7C15L;
    let z = !state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL in
    let z = Int64.logxor z (Int64.shift_right_logical z 31) in
    Int64.to_int (Int64.logand z 0x3FFFFFFFL)
  in
  let rand bound = if bound <= 1 then 0 else next () mod bound in
  let wildcard_pct = match shape with Mixed -> 25 | _ -> 12 in
  let label () =
    if rand 100 < wildcard_pct then Candidate.any
    else Candidate.of_tag gen_tags.(rand (Array.length gen_tags))
  in
  let axis () =
    match shape with
    (* deep-[//] chains are the survey's first class; keep them mostly
       descendant edges *)
    | Chain -> if rand 4 < 3 then Axes.Descendant else Axes.Child
    | _ -> if rand 2 = 0 then Axes.Descendant else Axes.Child
  in
  let parent i =
    match shape with
    | Chain -> i - 1
    | Star ->
        (* bushy: most nodes hang off the hub, a few extend short arms *)
        if i = 1 || rand 10 < 7 then 0 else 1 + rand (i - 1)
    | Balanced -> (i - 1) / 2
    | Mixed -> rand i
  in
  let labels = Array.init nodes (fun _ -> label ()) in
  let edges =
    Array.init (max 0 (nodes - 1)) (fun k ->
        let child = k + 1 in
        (parent child, axis (), child))
  in
  let order_by = if nodes > 1 && rand 4 = 0 then Some (rand nodes) else None in
  Pattern.create ?order_by ~labels ~edges ()

let complete_tree ~fanout ~depth label axis =
  if fanout < 1 || depth < 0 then invalid_arg "Shapes.complete_tree";
  let labels = ref [] and edges = ref [] and next = ref 0 in
  let rec build d =
    let idx = !next in
    incr next;
    labels := label :: !labels;
    if d < depth then
      for _ = 1 to fanout do
        let child = build (d + 1) in
        edges := (idx, axis, child) :: !edges
      done;
    idx
  in
  let root = build 0 in
  assert (root = 0);
  (* edges were accumulated in reverse discovery order; any order is fine
     for Pattern.create as long as directions are root-to-leaf *)
  Pattern.create
    ~labels:(Array.of_list (List.rev !labels))
    ~edges:(Array.of_list (List.rev !edges))
    ()
