(** Query pattern trees (§2.1 of the paper).

    A pattern is a rooted node-labelled tree [Q = (V_Q, E_Q)].  Node labels
    are predicates over elements ({!Sjos_storage.Candidate.spec}); each edge
    carries an axis: [/] (parent-child) or [//] (ancestor-descendant).
    A match is a total mapping from pattern nodes to document nodes that
    satisfies every label and every edge's containment relationship.

    Nodes are identified by dense indexes [0 .. node_count - 1]; node [0] is
    the pattern root, and every edge is directed from the ancestor side to
    the descendant side. *)

open Sjos_xml
open Sjos_storage

type edge = {
  anc : int;  (** index of the ancestor-side node *)
  desc : int;  (** index of the descendant-side node *)
  axis : Axes.axis;
}

type t

val max_nodes : int
(** Largest supported pattern size ([Sys.int_size - 2], 61 on 64-bit
    platforms): node sets are native-[int] bitmasks and the full mask
    [(1 lsl n) - 1] must not overflow.  {!create} rejects larger
    patterns; without the check the optimizer's masks would silently
    wrap and produce wrong plans. *)

val create :
  ?order_by:int ->
  labels:Candidate.spec array ->
  edges:(int * Axes.axis * int) array ->
  unit ->
  t
(** [create ~labels ~edges ()] builds a pattern with node [i] labelled
    [labels.(i)] and one edge [(anc, axis, desc)] per entry.  The edges
    must form a tree rooted at node [0] with every edge directed away from
    the root.  [order_by] optionally requests the final result sorted by
    that node.  Raises [Invalid_argument] when the input is not such a
    tree. *)

val node_count : t -> int
val edge_count : t -> int
val label : t -> int -> Candidate.spec
val labels : t -> Candidate.spec array
val edges : t -> edge list
val order_by : t -> int option
val with_order_by : t -> int option -> t

val name : t -> int -> string
(** Display name of a pattern node in index order: ["A"], ["B"], ... ["Z"],
    then ["AA"], ["AB"], ... (bijective base-26, always distinct). *)

val edge_between : t -> int -> int -> edge option
(** The unique edge joining two nodes, in either direction. *)

val neighbors : t -> int -> (int * edge) list
(** Adjacent nodes with the connecting edge (both directions). *)

val parent_of : t -> int -> (int * edge) option
(** Tree parent of a node (its ancestor-side neighbor on the path to the
    root), [None] for the root. *)

val children_of : t -> int -> (int * edge) list
(** Tree children (descendant-side neighbors). *)

val matches_mapping : t -> Document.t -> Node.t array -> bool
(** [matches_mapping q doc h] checks whether the assignment [h] (indexed by
    pattern node) is a match of [q] in [doc]: every label holds and every
    edge's containment holds.  A reference-semantics oracle for tests. *)

val is_path : t -> bool
(** Is the pattern a simple path (every node has at most one child)? *)

val depth : t -> int
(** Longest root-to-leaf edge count. *)

val to_string : t -> string
(** Re-parseable textual form, e.g. ["manager(//employee(/name),//dept)"]. *)

val pp : t Fmt.t
