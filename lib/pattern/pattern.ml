open Sjos_xml
open Sjos_storage

type edge = { anc : int; desc : int; axis : Axes.axis }

type t = {
  labels : Candidate.spec array;
  edge_list : edge list;
  adjacency : (int * edge) list array;  (* per node: (other endpoint, edge) *)
  tree_parent : (int * edge) option array;  (* parent in the rooted tree *)
  order_by : int option;
}

let node_count t = Array.length t.labels
let edge_count t = List.length t.edge_list
let label t i = t.labels.(i)
let labels t = Array.copy t.labels
let edges t = t.edge_list
let order_by t = t.order_by

(* Bijective base-26: A..Z, AA..AZ, BA.. — never collides with a node whose
   label is literally "N27", unlike the old "N%d" fallback. *)
let name _t i =
  let rec go i acc =
    let acc = String.make 1 (Char.chr (Char.code 'A' + (i mod 26))) ^ acc in
    if i < 26 then acc else go ((i / 26) - 1) acc
  in
  go i ""

(* Node sets, cluster masks and [(1 lsl n) - 1] full-masks all live in
   one native [int]; [1 lsl (int_size - 1)] is the sign bit and
   [int_size - 1] bits would make the full mask overflow to [-1]'s
   neighborhood — so the last safely addressable node index is
   [int_size - 3], i.e. 61 nodes on a 64-bit platform. *)
let max_nodes = Sys.int_size - 2

let create ?order_by ~labels ~edges () =
  let n = Array.length labels in
  if n = 0 then invalid_arg "Pattern.create: empty pattern";
  if n > max_nodes then
    invalid_arg
      (Printf.sprintf
         "Pattern.create: %d nodes exceed the %d-node bitmask limit" n
         max_nodes);
  if Array.length edges <> n - 1 then
    invalid_arg "Pattern.create: a tree on n nodes has n-1 edges";
  (match order_by with
  | Some i when i < 0 || i >= n -> invalid_arg "Pattern.create: bad order_by"
  | _ -> ());
  let edge_list =
    Array.to_list edges
    |> List.map (fun (anc, axis, desc) ->
           if anc < 0 || anc >= n || desc < 0 || desc >= n || anc = desc then
             invalid_arg "Pattern.create: bad edge endpoints";
           { anc; axis; desc })
  in
  let adjacency = Array.make n [] in
  List.iter
    (fun e ->
      adjacency.(e.anc) <- (e.desc, e) :: adjacency.(e.anc);
      adjacency.(e.desc) <- (e.anc, e) :: adjacency.(e.desc))
    edge_list;
  Array.iteri (fun i l -> adjacency.(i) <- List.rev l) adjacency;
  (* Check the edges form a tree rooted at 0 with edges directed away from
     the root, and record each node's tree parent. *)
  let tree_parent = Array.make n None in
  let visited = Array.make n false in
  let rec dfs i =
    visited.(i) <- true;
    List.iter
      (fun (j, e) ->
        if not visited.(j) then begin
          if e.anc <> i then
            invalid_arg
              (Printf.sprintf
                 "Pattern.create: edge %d->%d points toward the root" e.anc
                 e.desc);
          tree_parent.(j) <- Some (i, e);
          dfs j
        end)
      adjacency.(i)
  in
  dfs 0;
  if not (Array.for_all Fun.id visited) then
    invalid_arg "Pattern.create: pattern is not connected";
  { labels = Array.copy labels; edge_list; adjacency; tree_parent; order_by }

let with_order_by t order_by =
  (match order_by with
  | Some i when i < 0 || i >= node_count t ->
      invalid_arg "Pattern.with_order_by: bad node"
  | _ -> ());
  { t with order_by }

let edge_between t i j =
  List.find_map
    (fun (k, e) -> if k = j then Some e else None)
    t.adjacency.(i)

let neighbors t i = t.adjacency.(i)
let parent_of t i = t.tree_parent.(i)

let children_of t i =
  List.filter_map
    (fun (j, e) -> if e.anc = i && e.desc = j then Some (j, e) else None)
    t.adjacency.(i)

let matches_mapping t doc h =
  ignore doc;
  Array.length h = node_count t
  && Array.for_all2 Candidate.matches t.labels h
  && List.for_all
       (fun e -> Axes.related e.axis ~anc:h.(e.anc) ~desc:h.(e.desc))
       t.edge_list

let is_path t =
  let ok = ref true in
  for i = 0 to node_count t - 1 do
    if List.length (children_of t i) > 1 then ok := false
  done;
  !ok

let depth t =
  let rec go i = List.fold_left (fun m (j, _) -> max m (1 + go j)) 0 (children_of t i) in
  go 0

let to_string t =
  let buf = Buffer.create 64 in
  let rec emit i =
    Buffer.add_string buf (Candidate.spec_to_string t.labels.(i));
    match children_of t i with
    | [] -> ()
    | kids ->
        Buffer.add_char buf '(';
        List.iteri
          (fun k (j, e) ->
            if k > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf (Axes.axis_to_string e.axis);
            emit j)
          kids;
        Buffer.add_char buf ')'
  in
  emit 0;
  (match t.order_by with
  | Some i -> Buffer.add_string buf (Printf.sprintf " order by %s" (name t i))
  | None -> ());
  Buffer.contents buf

let pp ppf t = Fmt.string ppf (to_string t)
