open Sjos_xml
open Sjos_storage

(* Length-prefix every label so that no concatenation of labels, axes and
   separators can collide with a differently-shaped pattern. *)
let enc s = string_of_int (String.length s) ^ ":" ^ s

let node_code pat =
  let rec code i =
    let mark = if Pattern.order_by pat = Some i then "!" else "" in
    let label = enc (Candidate.spec_to_string (Pattern.label pat i)) in
    let kids =
      Pattern.children_of pat i
      |> List.map (fun (j, (e : Pattern.edge)) ->
             Axes.axis_to_string e.Pattern.axis ^ code j)
      |> List.sort String.compare
    in
    mark ^ label ^ "(" ^ String.concat "," kids ^ ")"
  in
  code

let structure pat = node_code pat 0

let minimize_map pat minimize =
  if minimize then Minimize.minimize pat
  else (pat, Array.init (Pattern.node_count pat) Fun.id)

let canonical ?(minimize = false) pat =
  let pat0, pre = minimize_map pat minimize in
  let n = Pattern.node_count pat0 in
  let code = node_code pat0 in
  (* memoize per node: code is recomputed along every root path otherwise *)
  let codes = Array.init n code in
  let to_new = Array.make n (-1) in
  let next = ref 0 in
  let rec assign i =
    to_new.(i) <- !next;
    incr next;
    Pattern.children_of pat0 i
    |> List.map (fun (j, (e : Pattern.edge)) ->
           (Axes.axis_to_string e.Pattern.axis ^ codes.(j), j))
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.iter (fun (_, j) -> assign j)
  in
  assign 0;
  let from_new = Array.make n 0 in
  Array.iteri (fun old nw -> from_new.(nw) <- old) to_new;
  let labels = Array.init n (fun nw -> Pattern.label pat0 from_new.(nw)) in
  let edges =
    Pattern.edges pat0
    |> List.map (fun (e : Pattern.edge) ->
           (to_new.(e.Pattern.anc), e.Pattern.axis, to_new.(e.Pattern.desc)))
    |> List.sort compare |> Array.of_list
  in
  let order_by =
    Option.map (fun o -> to_new.(o)) (Pattern.order_by pat0)
  in
  let canon = Pattern.create ?order_by ~labels ~edges () in
  let mapping =
    Array.map (fun v -> if v < 0 then -1 else to_new.(v)) pre
  in
  (canon, mapping)

let fingerprint ?(minimize = false) pat =
  let pat0, _ = minimize_map pat minimize in
  let payload =
    string_of_int (Pattern.node_count pat0) ^ "#" ^ structure pat0
  in
  Digest.to_hex (Digest.string payload)

let short fp = if String.length fp <= 12 then fp else String.sub fp 0 12

let structurally_equal a b = String.equal (fingerprint a) (fingerprint b)
