(** Unified optimizer interface over the five algorithms of the paper,
    with search-effort accounting and wall-clock optimization time. *)

open Sjos_pattern
open Sjos_plan

type algorithm =
  | Dp  (** exhaustive dynamic programming (§3.1) *)
  | Dpp  (** DP with pruning and lookahead (§3.2) *)
  | Dpp_no_lookahead  (** DPP′ of Table 2 — pruning without lookahead *)
  | Dpap_eb of int  (** expansion bound [Te] per level (§3.3.1) *)
  | Dpap_ld  (** left-deep plans only (§3.3.2) *)
  | Fp  (** fully-pipelined plans only (§3.4) *)
  | Big_dp of int
      (** the large-pattern tier ({!Bigdp}): subset DP over connected
          node-masks with the given per-layer width cap — exact on
          small patterns, sub-second at 30-40 nodes where the status
          searches are infeasible *)

val name : algorithm -> string
val all : Pattern.t -> algorithm list
(** The five algorithms evaluated in the paper, with DPAP-EB's [Te] set to
    the number of pattern edges (the §4.2 default). *)

val default_te : Pattern.t -> int
(** The paper's default tuning: [Te] = number of edges. *)

val big_pattern_threshold : int
(** Node count above which requests for an exact status search (DP,
    DPP, DPP′) are transparently re-tiered onto {!Big_dp} — the status
    space explodes combinatorially past the paper's query sizes. *)

val effective : Pattern.t -> algorithm -> algorithm
(** The algorithm {!optimize} will actually run for this pattern: the
    input, except that exact status searches on patterns wider than
    {!big_pattern_threshold} become [Big_dp Bigdp.default_width].  The
    returned {!result}'s [algorithm] field and the engine's plan-cache
    key both use this, never the requested tier. *)

type result = {
  algorithm : algorithm;
  plan : Plan.t;
  est_cost : float;  (** estimated cost of [plan] under the cost model *)
  plans_considered : int;  (** alternative (sub-)plans costed *)
  statuses_generated : int;
  statuses_expanded : int;
  opt_seconds : float;
      (** monotonic wall-clock time spent optimizing (never negative) *)
  effort : Effort.t;  (** the full search-effort breakdown *)
  degraded_from : algorithm option;
      (** [Some a] when the budget fired during exact algorithm [a] and
          the plan came from the bounded fallback tier instead *)
}

val optimize :
  ?factors:Sjos_cost.Cost_model.factors ->
  ?budget:Sjos_guard.Budget.t ->
  provider:Costing.provider ->
  algorithm ->
  Pattern.t ->
  result
(** Run one algorithm over a pattern.  The returned plan is always valid
    for the pattern ({!Sjos_plan.Properties.validate}).  Raises
    {!Sjos_guard.Budget.Exhausted} when [budget] fires — prefer
    {!optimize_r}, which degrades gracefully. *)

val optimize_r :
  ?factors:Sjos_cost.Cost_model.factors ->
  ?budget:Sjos_guard.Budget.t ->
  provider:Costing.provider ->
  algorithm ->
  Pattern.t ->
  (result, Sjos_guard.Error.t) Stdlib.result
(** Like {!optimize}, but budget exhaustion becomes a value.  When the
    budget fires during an {e exact} search (DP, DPP, DPP′, BigDP) the
    query degrades to a tier with work bounded by construction — DPAP-EB
    with a capped [Te] at paper scale, a narrow BigDP beam past
    {!big_pattern_threshold} — and the result carries [degraded_from]; the
    [guard.degraded] registry counter and an [optimizer.degraded] trace
    event record the fallback.  Exhaustion in an already-heuristic tier
    returns [Error (Budget_exhausted _)]. *)

(** {1 Physical engine selection}

    The binary Stack-Tree plans and the holistic TwigStack operator are
    two physical algebras for the same logical pattern.  [Binary] is the
    paper's search space (the default everywhere — Table 2 and all
    existing behavior are unchanged); [Holistic] forces the single
    {!Plan.Holistic} plan; [Auto] runs the binary search and picks
    whichever side's estimated cost is lower (ties to binary). *)

type engine = Binary | Holistic | Auto

val engine_name : engine -> string
(** ["binary"], ["holistic"], ["auto"] — also the cache-key prefix. *)

val engine_of_string : string -> engine option
(** Case-insensitive inverse of {!engine_name}. *)

val holistic_result :
  ?factors:Sjos_cost.Cost_model.factors ->
  provider:Costing.provider ->
  algorithm ->
  Pattern.t ->
  result
(** The (unique) holistic plan for a pattern, costed under the same
    factors as the binary search; counts as one considered plan.  The
    [algorithm] tag is carried through for reporting only. *)

val optimize_e :
  ?factors:Sjos_cost.Cost_model.factors ->
  ?budget:Sjos_guard.Budget.t ->
  provider:Costing.provider ->
  engine:engine ->
  algorithm ->
  Pattern.t ->
  (result, Sjos_guard.Error.t) Stdlib.result
(** {!optimize_r} generalized over the physical engine.  [Auto] charges
    one extra considered plan (the holistic alternative) on top of the
    binary search's count; a budget error from the binary search
    propagates even under [Auto]. *)

val pp_result : Pattern.t -> result Fmt.t

val result_to_json : Pattern.t -> result -> Sjos_obs.Json.t
(** Machine-readable counterpart of {!pp_result}: algorithm, estimated
    cost, effort counters, optimization seconds and the one-line plan. *)
