open Sjos_pattern
open Sjos_cost
open Sjos_plan

type sub = { plan : Plan.t; cost : float; mask : int; card : float }

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y != x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

(* Best pipelined plan for the sub-pattern reachable from [center] without
   crossing back to [avoid], output ordered by [center].  Memoized on
   (center, avoid). *)
let best ctx =
  let memo : (int * int, sub) Hashtbl.t = Hashtbl.create 32 in
  let rec go center avoid =
    match Hashtbl.find_opt memo (center, avoid) with
    | Some r -> r
    | None ->
        let subtrees =
          List.filter (fun (n, _) -> n <> avoid) (Pattern.neighbors ctx.Search.pat center)
        in
        let subs = List.map (fun (n, e) -> (go n center, e)) subtrees in
        let center_card = ctx.Search.provider.Costing.node_card center in
        let scan_cost = Cost_model.index_access ctx.Search.factors center_card in
        let result =
          if subs = [] then
            {
              plan = Plan.scan center;
              cost = scan_cost;
              mask = 1 lsl center;
              card = center_card;
            }
          else begin
            let candidate order =
              (* the permutation scan is FP's inner loop; poll the
                 deadline/cancellation budget here *)
              Search.check_budget ctx;
              let acc =
                ref
                  {
                    plan = Plan.scan center;
                    cost = scan_cost;
                    mask = 1 lsl center;
                    card = center_card;
                  }
              in
              List.iter
                (fun ((sub : sub), (e : Pattern.edge)) ->
                  let merged_mask = !acc.mask lor sub.mask in
                  let merged_card =
                    ctx.Search.provider.Costing.cluster_card merged_mask
                  in
                  let plan, join_cost =
                    if e.Pattern.anc = center then
                      (* the accumulated cluster is the ancestor side;
                         Stack-Tree-Anc keeps the output ordered by it *)
                      ( Plan.join ~anc_side:!acc.plan ~desc_side:sub.plan
                          ~edge:e ~algo:Plan.Stack_tree_anc,
                        Cost_model.stack_tree_anc ctx.Search.factors
                          ~anc:!acc.card ~output:merged_card )
                    else
                      ( Plan.join ~anc_side:sub.plan ~desc_side:!acc.plan
                          ~edge:e ~algo:Plan.Stack_tree_desc,
                        Cost_model.stack_tree_desc ctx.Search.factors
                          ~anc:sub.card )
                  in
                  acc :=
                    {
                      plan;
                      cost = !acc.cost +. sub.cost +. join_cost;
                      mask = merged_mask;
                      card = merged_card;
                    })
                order;
              let eff = ctx.Search.effort in
              eff.Effort.considered <- eff.Effort.considered + 1;
              !acc
            in
            List.fold_left
              (fun best order ->
                let c = candidate order in
                match best with
                | Some (b : sub) when b.cost <= c.cost -> Some b
                | _ -> Some c)
              None (permutations subs)
            |> Option.get
          end
        in
        Hashtbl.replace memo (center, avoid) result;
        result
  in
  go

let best_ordered_by ctx node =
  let r = (best ctx) node (-1) in
  (r.cost, r.plan)

let run ctx =
  let span = Sjos_obs.Trace.begin_span "fp.search" in
  let go = best ctx in
  let result =
    match Pattern.order_by ctx.Search.pat with
    | Some r ->
        let s = go r (-1) in
        (s.cost, s.plan)
    | None ->
        let n = Pattern.node_count ctx.Search.pat in
        let best_result = ref None in
        for center = 0 to n - 1 do
          let s = go center (-1) in
          match !best_result with
          | Some (c, _) when c <= s.cost -> ()
          | _ -> best_result := Some (s.cost, s.plan)
        done;
        Option.get !best_result
  in
  Sjos_obs.Trace.end_span span
    ~attrs:
      [
        ("considered", Sjos_obs.Json.Int ctx.Search.effort.Effort.considered);
        ("best_cost", Sjos_obs.Json.Float (fst result));
      ];
  result
