open Sjos_pattern
open Sjos_cost
open Sjos_plan
open Sjos_guard

type ctx = {
  pat : Pattern.t;
  factors : Cost_model.factors;
  provider : Costing.provider;
  edges : Pattern.edge array;
  effort : Effort.t;
  budget : Budget.t;
}

let make_ctx ?(factors = Cost_model.default) ?(budget = Budget.unlimited)
    ~provider pat =
  {
    pat;
    factors;
    provider;
    edges = Array.of_list (Pattern.edges pat);
    effort = Effort.create ();
    budget;
  }

let check_budget ctx =
  Budget.check_search ctx.budget ~during:"optimize"
    ~expanded:ctx.effort.Effort.expanded

let remaining_edges ctx (s : Status.t) =
  let acc = ref [] in
  for i = Array.length ctx.edges - 1 downto 0 do
    if s.Status.joined land (1 lsl i) = 0 then acc := (i, ctx.edges.(i)) :: !acc
  done;
  !acc

(* The hot loops below resolve node→cluster through a dense array built
   once per status ({!Status.cluster_map}) instead of a [List.find] per
   lookup — the list scan is quadratic noise once patterns reach the
   30-node tier. *)
let joinable_m (cmap : Status.cluster Array.t) (e : Pattern.edge) =
  let cu = cmap.(e.Pattern.anc) in
  let cv = cmap.(e.Pattern.desc) in
  cu.Status.mask <> cv.Status.mask
  && cu.Status.order = e.Pattern.anc
  && cv.Status.order = e.Pattern.desc

let edge_joinable (s : Status.t) (e : Pattern.edge) =
  let cu = Status.cluster_of s e.Pattern.anc in
  let cv = Status.cluster_of s e.Pattern.desc in
  cu.Status.mask <> cv.Status.mask
  && cu.Status.order = e.Pattern.anc
  && cv.Status.order = e.Pattern.desc

let is_deadend ctx (s : Status.t) =
  (not (Status.is_final s))
  &&
  let cmap = Status.cluster_map ~n:(Pattern.node_count ctx.pat) s in
  not (List.exists (fun (_, e) -> joinable_m cmap e) (remaining_edges ctx s))

let useful_sort_targets ctx ~joined ~merged_mask =
  let useful = ref [] in
  Array.iteri
    (fun i (e : Pattern.edge) ->
      if joined land (1 lsl i) = 0 then begin
        if merged_mask land (1 lsl e.Pattern.anc) <> 0 then
          useful := e.Pattern.anc :: !useful;
        if merged_mask land (1 lsl e.Pattern.desc) <> 0 then
          useful := e.Pattern.desc :: !useful
      end)
    ctx.edges;
  List.sort_uniq compare !useful

(* Replace the two input clusters by the merged one, keeping the list
   sorted by mask. *)
let merge_clusters (s : Status.t) (cu : Status.cluster) (cv : Status.cluster)
    merged =
  let rest =
    List.filter
      (fun (c : Status.cluster) ->
        c.Status.mask <> cu.Status.mask && c.Status.mask <> cv.Status.mask)
      s.Status.clusters
  in
  List.sort
    (fun (a : Status.cluster) b -> compare a.Status.mask b.Status.mask)
    (merged :: rest)

let expand ?(left_deep = false) ?(lookahead = false) ?(cost_bound = infinity)
    ctx (s : Status.t) =
  (* Budget check before the counter moves: an aborted search has done
     exactly the budgeted number of expansions, and an unlimited budget is
     a single physical-equality test — search order is never perturbed. *)
  check_budget ctx;
  let eff = ctx.effort in
  eff.Effort.expanded <- eff.Effort.expanded + 1;
  let cmap = Status.cluster_map ~n:(Pattern.node_count ctx.pat) s in
  let successors = ref [] in
  let emit status =
    (* Pruning Rule, applied at generation time: a successor whose Cost
       already meets the best complete plan is dead and never considered. *)
    if status.Status.cost < cost_bound then begin
      if lookahead && is_deadend ctx status then
        eff.Effort.pruned_deadend <- eff.Effort.pruned_deadend + 1
      else begin
        eff.Effort.considered <- eff.Effort.considered + 1;
        eff.Effort.generated <- eff.Effort.generated + 1;
        successors := status :: !successors
      end
    end
    else eff.Effort.pruned_bound <- eff.Effort.pruned_bound + 1
  in
  List.iter
    (fun (edge_idx, (e : Pattern.edge)) ->
      if joinable_m cmap e then begin
        let cu = cmap.(e.Pattern.anc) in
        let cv = cmap.(e.Pattern.desc) in
        (* Left-deep rule: after the move, at most one cluster (the growing
           node) may hold several pattern nodes — so the merge must absorb
           every existing composite cluster. *)
        let stays_left_deep =
          let multi_in_inputs =
            (if Status.popcount cu.Status.mask > 1 then 1 else 0)
            + if Status.popcount cv.Status.mask > 1 then 1 else 0
          in
          multi_in_inputs <= 1
          && Status.multi_cluster_count s = multi_in_inputs
        in
        if left_deep && not stays_left_deep then
          eff.Effort.pruned_left_deep <- eff.Effort.pruned_left_deep + 1
        else begin
          let merged_mask = cu.Status.mask lor cv.Status.mask in
          let merged_card = ctx.provider.Costing.cluster_card merged_mask in
          let joined = s.Status.joined lor (1 lsl edge_idx) in
          let will_be_final = merged_mask = (1 lsl Pattern.node_count ctx.pat) - 1 in
          let variants algo =
            let join_cost =
              match algo with
              | Plan.Stack_tree_anc ->
                  Cost_model.stack_tree_anc ctx.factors ~anc:cu.Status.card
                    ~output:merged_card
              | Plan.Stack_tree_desc ->
                  Cost_model.stack_tree_desc ctx.factors ~anc:cu.Status.card
            in
            let natural_order =
              match algo with
              | Plan.Stack_tree_anc -> e.Pattern.anc
              | Plan.Stack_tree_desc -> e.Pattern.desc
            in
            let join_plan =
              Plan.join ~anc_side:cu.Status.plan ~desc_side:cv.Status.plan
                ~edge:e ~algo
            in
            let mk order plan extra =
              emit
                {
                  Status.clusters =
                    merge_clusters s cu cv
                      {
                        Status.mask = merged_mask;
                        order;
                        plan;
                        card = merged_card;
                      };
                  joined;
                  cost = s.Status.cost +. join_cost +. extra;
                }
            in
            mk natural_order join_plan 0.0;
            (* Output re-sorts are only worthwhile toward orders a later
               join can still consume; a final status needs none (the
               order-by sort, if any, is added by [finalize]). *)
            if not will_be_final then
              List.iter
                (fun target ->
                  if target <> natural_order then
                    mk target
                      (Plan.sort join_plan ~by:target)
                      (Cost_model.sort ctx.factors merged_card))
                (useful_sort_targets ctx ~joined ~merged_mask)
          in
          variants Plan.Stack_tree_anc;
          variants Plan.Stack_tree_desc
        end
      end)
    (remaining_edges ctx s);
  !successors

let finalize ctx (s : Status.t) =
  match s.Status.clusters with
  | [ c ] -> (
      match Pattern.order_by ctx.pat with
      | Some r when c.Status.order <> r ->
          ( s.Status.cost +. Cost_model.sort ctx.factors c.Status.card,
            Plan.sort c.Status.plan ~by:r )
      | _ -> (s.Status.cost, c.Status.plan))
  | _ -> invalid_arg "Search.finalize: status is not final"

let ub_cost ctx (s : Status.t) =
  let cmap = Status.cluster_map ~n:(Pattern.node_count ctx.pat) s in
  List.fold_left
    (fun acc (_, (e : Pattern.edge)) ->
      let cu = cmap.(e.Pattern.anc) in
      let cv = cmap.(e.Pattern.desc) in
      if cu.Status.mask = cv.Status.mask then acc
      else
        let merged = cu.Status.mask lor cv.Status.mask in
        let out = ctx.provider.Costing.cluster_card merged in
        acc
        +. Cost_model.stack_tree_anc ctx.factors ~anc:cu.Status.card ~output:out
        +. Cost_model.sort ctx.factors out)
    0.0 (remaining_edges ctx s)
