open Sjos_obs

type t = {
  mutable considered : int;
  mutable generated : int;
  mutable expanded : int;
  mutable pruned_bound : int;
  mutable pruned_deadend : int;
  mutable pruned_left_deep : int;
  mutable peak_queue : int;
}

let create () =
  {
    considered = 0;
    generated = 0;
    expanded = 0;
    pruned_bound = 0;
    pruned_deadend = 0;
    pruned_left_deep = 0;
    peak_queue = 0;
  }

let note_queue_depth t depth = if depth > t.peak_queue then t.peak_queue <- depth

let fields t =
  [
    ("considered", t.considered);
    ("generated", t.generated);
    ("expanded", t.expanded);
    ("pruned_bound", t.pruned_bound);
    ("pruned_deadend", t.pruned_deadend);
    ("pruned_left_deep", t.pruned_left_deep);
    ("peak_queue", t.peak_queue);
  ]

let to_json t = Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (fields t))

let publish ~prefix t =
  if Registry.enabled () then
    List.iter
      (fun (k, v) -> Registry.add (Registry.counter (prefix ^ "." ^ k)) v)
      (fields t)

let pp ppf t =
  Fmt.pf ppf
    "considered=%d generated=%d expanded=%d pruned(bound=%d deadend=%d \
     left_deep=%d) peak_queue=%d"
    t.considered t.generated t.expanded t.pruned_bound t.pruned_deadend
    t.pruned_left_deep t.peak_queue
