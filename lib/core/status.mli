(** Statuses: the optimizer's search states (Definitions 1-3 of the paper).

    A status partitions the pattern nodes into connected clusters — each an
    already-evaluated sub-pattern — and records, per cluster, the node its
    intermediate result is ordered by, the sub-plan that computes it, and
    its estimated cardinality.  The accumulated [cost] counts every
    operation performed so far (index scans included, so plan costs are
    comparable across shapes). *)

open Sjos_pattern
open Sjos_plan

type cluster = {
  mask : int;  (** pattern nodes in the cluster (bit [i] = node [i]) *)
  order : int;  (** the node the cluster's result is ordered by *)
  plan : Plan.t;  (** sub-plan producing the cluster *)
  card : float;  (** estimated cardinality of the sub-plan's result *)
}

type t = {
  clusters : cluster list;  (** sorted by [mask] — canonical *)
  joined : int;  (** mask over pattern-edge indexes already evaluated *)
  cost : float;  (** accumulated cost from the start status *)
}

type key = { parts : (int * int) list; kjoined : int }
(** Canonical identity of a status: the sorted [(mask, order)] pairs plus
    the consumed-edge mask.  Two statuses with equal keys are the same
    search state and only the cheaper is worth keeping.

    For statuses {e reachable} from [start] on a tree pattern the edge
    mask is derivable from the partition (a connected cluster of [k]
    nodes has consumed exactly its [k-1] internal edges), but the key
    must not rely on reachability: hand-built or corrupted statuses with
    equal partitions and different remaining-edge sets would otherwise
    collide in hash-based dedup and the survivor would corrupt the
    search. *)

val key : t -> key
val level : t -> int
(** Number of edges evaluated so far (the paper's status level). *)

val is_final : t -> bool
(** Exactly one cluster left. *)

val cluster_of : t -> int -> cluster
(** The cluster containing a pattern node.  Raises [Not_found] if absent
    (cannot happen for in-range nodes). *)

val cluster_map : n:int -> t -> cluster array
(** [cluster_map ~n t] is the node→cluster map as a dense array over the
    [n] pattern nodes — build once per status, then every lookup is O(1)
    instead of {!cluster_of}'s list scan.  Raises [Invalid_argument] if
    some node below [n] is in no cluster. *)

val popcount : int -> int
(** Word-parallel (SWAR) population count. *)

val start :
  factors:Sjos_cost.Cost_model.factors ->
  provider:Costing.provider ->
  Pattern.t ->
  t
(** The start status [S_0]: one singleton cluster per pattern node, each
    ordered by itself, with the index-scan costs already accumulated. *)

val multi_cluster_count : t -> int
(** Number of clusters with more than one pattern node (left-deep statuses
    have at most one — the "growing node"). *)

val pp : Pattern.t -> t Fmt.t
