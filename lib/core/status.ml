open Sjos_pattern
open Sjos_cost
open Sjos_plan

type cluster = { mask : int; order : int; plan : Plan.t; card : float }
type t = { clusters : cluster list; joined : int; cost : float }
type key = { parts : (int * int) list; kjoined : int }

let key t =
  { parts = List.map (fun c -> (c.mask, c.order)) t.clusters;
    kjoined = t.joined }

(* Word-parallel popcount (SWAR): O(1) per word instead of one loop
   iteration per bit — this runs on every expansion and every left-deep
   check, and patterns can now reach 61 nodes. *)
let popcount m =
  let m = m - ((m lsr 1) land 0x5555555555555555) in
  let m = (m land 0x3333333333333333) + ((m lsr 2) land 0x3333333333333333) in
  let m = (m + (m lsr 4)) land 0x0F0F0F0F0F0F0F0F in
  (m * 0x0101010101010101) lsr 56

let level t = popcount t.joined
let is_final t = match t.clusters with [ _ ] -> true | _ -> false

let cluster_of t node =
  List.find (fun c -> c.mask land (1 lsl node) <> 0) t.clusters

let cluster_map ~n t =
  let map = Array.make n None in
  List.iter
    (fun c ->
      let m = ref c.mask in
      while !m <> 0 do
        let low = !m land - !m in
        (* index of the lowest set bit via de-looped popcount *)
        map.(popcount (low - 1)) <- Some c;
        m := !m lxor low
      done)
    t.clusters;
  Array.map
    (function
      | Some c -> c
      | None -> invalid_arg "Status.cluster_map: node in no cluster")
    map

let start ~factors ~provider pat =
  let n = Pattern.node_count pat in
  let clusters = ref [] in
  let cost = ref 0.0 in
  for i = n - 1 downto 0 do
    let card = provider.Costing.node_card i in
    cost := !cost +. Cost_model.index_access factors card;
    clusters :=
      { mask = 1 lsl i; order = i; plan = Plan.scan i; card } :: !clusters
  done;
  { clusters = !clusters; joined = 0; cost = !cost }

let multi_cluster_count t =
  List.length (List.filter (fun c -> popcount c.mask > 1) t.clusters)

let pp pat ppf t =
  let pp_cluster ppf c =
    let members =
      List.filter_map
        (fun i ->
          if c.mask land (1 lsl i) <> 0 then Some (Pattern.name pat i) else None)
        (List.init (Pattern.node_count pat) Fun.id)
    in
    Fmt.pf ppf "{%s|by %s}" (String.concat "" members) (Pattern.name pat c.order)
  in
  Fmt.pf ppf "@[%a cost=%.1f@]" (Fmt.list ~sep:Fmt.sp pp_cluster) t.clusters
    t.cost
