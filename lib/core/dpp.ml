open Sjos_pattern
open Sjos_obs

let run ?(lookahead = true) ?(expansion_bound = None) ?(left_deep = false)
    ?(prioritize_by_ub = true) ctx =
  let start =
    Status.start ~factors:ctx.Search.factors ~provider:ctx.Search.provider
      ctx.Search.pat
  in
  let levels = Pattern.edge_count ctx.Search.pat in
  let eff = ctx.Search.effort in
  let best_cost : (Status.key, float) Hashtbl.t = Hashtbl.create 64 in
  let queue : Status.t Pq.t = Pq.create () in
  let min_full = ref infinity in
  let best = ref None in
  let expanded_at_level = Array.make (levels + 1) 0 in
  let saturated_above = ref (-1) in
  (* highest level whose expansion budget is exhausted; all strictly
     shallower levels stop expanding (the DPAP-EB rule) *)
  let note_expansion lv =
    match expansion_bound with
    | None -> ()
    | Some te ->
        expanded_at_level.(lv) <- expanded_at_level.(lv) + 1;
        if expanded_at_level.(lv) >= te && lv > !saturated_above then
          saturated_above := lv
  in
  let budget_allows lv =
    match expansion_bound with
    | None -> true
    | Some te -> expanded_at_level.(lv) < te && lv >= !saturated_above
  in
  (* Per-level search effort, reported on the search span when tracing. *)
  let tracing = Trace.enabled () in
  let span =
    Trace.begin_span "dpp.search"
      ~attrs:
        [
          ("lookahead", Json.Bool lookahead);
          ("left_deep", Json.Bool left_deep);
          ( "expansion_bound",
            match expansion_bound with Some te -> Json.Int te | None -> Json.Null );
        ]
  in
  let expanded_per_level = if tracing then Array.make (levels + 1) 0 else [||] in
  let settle (s : Status.t) =
    if Status.is_final s then begin
      let cost, plan = Search.finalize ctx s in
      if cost < !min_full then begin
        min_full := cost;
        best := Some (cost, plan)
      end
    end
    else begin
      let key = Status.key s in
      let better =
        match Hashtbl.find_opt best_cost key with
        | Some c -> s.Status.cost < c
        | None -> true
      in
      if better then begin
        Hashtbl.replace best_cost key s.Status.cost;
        let priority =
          if prioritize_by_ub then s.Status.cost +. Search.ub_cost ctx s
          else s.Status.cost
        in
        Pq.push queue priority s;
        Effort.note_queue_depth eff (Pq.length queue)
      end
    end
  in
  settle start;
  (* A status may be queued several times (cheaper paths to the same key
     can be discovered later, since ubCost is only a heuristic); re-expand
     only on a strict improvement. *)
  let expanded_cost : (Status.key, float) Hashtbl.t = Hashtbl.create 64 in
  let rec loop () =
    match Pq.pop queue with
    | None -> ()
    | Some (_, s) ->
        let key = Status.key s in
        let stale =
          (match Hashtbl.find_opt expanded_cost key with
          | Some c -> s.Status.cost >= c
          | None -> false)
          ||
          match Hashtbl.find_opt best_cost key with
          | Some c -> s.Status.cost > c
          | None -> false
        in
        let dead = s.Status.cost >= !min_full in
        if (not stale) && (not dead) && budget_allows (Status.level s) then begin
          Hashtbl.replace expanded_cost key s.Status.cost;
          let successors =
            Search.expand ~left_deep ~lookahead ~cost_bound:!min_full ctx s
          in
          (* an expansion that created nothing (every successor was a
             lookahead deadend) does not use up the level's budget *)
          if successors <> [] then note_expansion (Status.level s);
          if tracing then begin
            let lv = Status.level s in
            expanded_per_level.(lv) <- expanded_per_level.(lv) + 1
          end;
          List.iter settle successors
        end;
        loop ()
  in
  loop ();
  Trace.end_span span
    ~attrs:
      [
        ("considered", Json.Int eff.Effort.considered);
        ("generated", Json.Int eff.Effort.generated);
        ("expanded", Json.Int eff.Effort.expanded);
        ("pruned_bound", Json.Int eff.Effort.pruned_bound);
        ("pruned_deadend", Json.Int eff.Effort.pruned_deadend);
        ("pruned_left_deep", Json.Int eff.Effort.pruned_left_deep);
        ("peak_queue_depth", Json.Int eff.Effort.peak_queue);
        ( "expanded_per_level",
          Json.List
            (Array.to_list (Array.map (fun n -> Json.Int n) expanded_per_level))
        );
        ("best_cost", Json.Float !min_full);
      ];
  match (!best, expansion_bound) with
  | Some r, _ -> r
  | None, Some _ ->
      (* The expansion bound is a heuristic and can starve the levels that
         would have completed the plan; fall back to the cheapest
         fully-pipelined plan, which always exists (Theorem 3.1). *)
      Fp.run ctx
  | None, None -> invalid_arg "Dpp.run: no complete plan found"
