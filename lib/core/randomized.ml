open Sjos_pattern
open Sjos_cost
open Sjos_plan

(* A plan is determined by the sequence of decisions taken while joining
   the remaining edges one by one.  Decisions are consumed from a prefix
   list and extended randomly once the prefix runs out, which gives us
   genotype-style neighbors: keep a prefix, replan the suffix. *)

type decider = {
  rng : Random.State.t;
  mutable prefix : int list;  (* decisions to replay *)
  mutable taken : int list;  (* all decisions, reversed *)
}

let decide d bound =
  if bound <= 0 then invalid_arg "Randomized.decide: empty choice";
  let v =
    match d.prefix with
    | x :: rest ->
        d.prefix <- rest;
        x mod bound
    | [] -> Random.State.int d.rng bound
  in
  d.taken <- v :: d.taken;
  v

(* Build one complete plan following the decider; mirrors
   Random_plan.generate but with recorded decisions. *)
let build ctx d =
  let rec loop (s : Status.t) =
    if Status.is_final s then Search.finalize ctx s
    else begin
      let remaining = Search.remaining_edges ctx s in
      let edge_idx, e =
        List.nth remaining (decide d (List.length remaining))
      in
      let cu = Status.cluster_of s e.Pattern.anc in
      let cv = Status.cluster_of s e.Pattern.desc in
      let prepare (c : Status.cluster) node =
        if c.Status.order = node then (c.Status.plan, 0.0)
        else
          ( Plan.sort c.Status.plan ~by:node,
            Cost_model.sort ctx.Search.factors c.Status.card )
      in
      let anc_plan, anc_sort = prepare cu e.Pattern.anc in
      let desc_plan, desc_sort = prepare cv e.Pattern.desc in
      let algo =
        if decide d 2 = 0 then Plan.Stack_tree_anc else Plan.Stack_tree_desc
      in
      let merged_mask = cu.Status.mask lor cv.Status.mask in
      let merged_card = ctx.Search.provider.Costing.cluster_card merged_mask in
      let join_cost =
        match algo with
        | Plan.Stack_tree_anc ->
            Cost_model.stack_tree_anc ctx.Search.factors ~anc:cu.Status.card
              ~output:merged_card
        | Plan.Stack_tree_desc ->
            Cost_model.stack_tree_desc ctx.Search.factors ~anc:cu.Status.card
      in
      let order =
        match algo with
        | Plan.Stack_tree_anc -> e.Pattern.anc
        | Plan.Stack_tree_desc -> e.Pattern.desc
      in
      let merged =
        {
          Status.mask = merged_mask;
          order;
          plan = Plan.join ~anc_side:anc_plan ~desc_side:desc_plan ~edge:e ~algo;
          card = merged_card;
        }
      in
      let clusters =
        merged
        :: List.filter
             (fun (c : Status.cluster) ->
               c.Status.mask <> cu.Status.mask && c.Status.mask <> cv.Status.mask)
             s.Status.clusters
        |> List.sort (fun (a : Status.cluster) b ->
               compare a.Status.mask b.Status.mask)
      in
      loop
        {
          Status.clusters;
          joined = s.Status.joined lor (1 lsl edge_idx);
          cost = s.Status.cost +. anc_sort +. desc_sort +. join_cost;
        }
    end
  in
  loop
    (Status.start ~factors:ctx.Search.factors ~provider:ctx.Search.provider
       ctx.Search.pat)

let plan_from ctx rng prefix =
  let d = { rng; prefix; taken = [] } in
  let cost, plan = build ctx d in
  ctx.Search.effort.Effort.considered <-
    ctx.Search.effort.Effort.considered + 1;
  (cost, plan, List.rev d.taken)

(* Neighbor: keep a random prefix of the decision list, replan the rest. *)
let neighbor ctx rng genome =
  let cut =
    match genome with [] -> 0 | l -> Random.State.int rng (List.length l)
  in
  let prefix = List.filteri (fun i _ -> i < cut) genome in
  plan_from ctx rng prefix

let iterative_improvement ?(seed = 11) ?(restarts = 5) ?(max_stall = 30) ctx =
  let rng = Random.State.make [| seed |] in
  let best = ref None in
  let note (cost, plan) =
    match !best with
    | Some (c, _) when c <= cost -> ()
    | _ -> best := Some (cost, plan)
  in
  for _ = 1 to max 1 restarts do
    let current = ref (plan_from ctx rng []) in
    let stall = ref 0 in
    while !stall < max_stall do
      let ccost, _, genome = !current in
      let ncost, nplan, ngenome = neighbor ctx rng genome in
      if ncost < ccost then begin
        current := (ncost, nplan, ngenome);
        stall := 0
      end
      else incr stall
    done;
    let cost, plan, _ = !current in
    note (cost, plan)
  done;
  Option.get !best

let simulated_annealing ?(seed = 13) ?(initial_temperature = 0.1)
    ?(cooling = 0.95) ?(steps = 200) ctx =
  let rng = Random.State.make [| seed |] in
  let cost0, plan0, genome0 = plan_from ctx rng [] in
  let best = ref (cost0, plan0) in
  let current = ref (cost0, plan0, genome0) in
  let temperature = ref (Float.max 1.0 (initial_temperature *. cost0)) in
  for _ = 1 to steps do
    let ccost, _, genome = !current in
    let ncost, nplan, ngenome = neighbor ctx rng genome in
    let accept =
      ncost < ccost
      || Random.State.float rng 1.0 < exp (-.(ncost -. ccost) /. !temperature)
    in
    if accept then begin
      current := (ncost, nplan, ngenome);
      if ncost < fst !best then best := (ncost, nplan)
    end;
    temperature := Float.max 1e-6 (!temperature *. cooling)
  done;
  !best
