(** Large-pattern optimizer tier: bottom-up subset DP over connected
    node-masks, after DPconv's layered-subset formulation.

    Where the paper's status search memoizes whole partitions, this tier
    memoizes one entry per [(mask, order)] — the best sub-plan producing
    exactly the nodes of the connected mask, ordered by the given node.
    For tree patterns the two searches find the same optimum: a
    cluster's internal edges, boundary sort targets and cost are all
    independent of how the remaining nodes are partitioned.

    Work is bounded by three devices: cost-bound pruning against a
    greedy O(n²) incumbent plan, a per-layer width cap (only the
    [width] cheapest masks of each popcount layer seed the next), and
    {!Search.check_budget} polled once per expanded mask.  Layers of
    patterns with ≤ 10 nodes never reach the default width, so the tier
    is exact there; beyond it degrades gracefully to the best plan found
    (never worse than the greedy incumbent).

    Enumeration is serial and iteration-order-free, so the effort
    counters are deterministic across runs and domain counts. *)

val default_width : int
(** Per-layer mask cap used by {!Optimizer} when auto-tiering (1024). *)

val run : ?width:int -> Search.ctx -> float * Sjos_plan.Plan.t
(** [run ?width ctx] returns the cheapest complete plan found and its
    cost, including the order-by sort.  The plan is always valid for the
    pattern.  Effort counters move on the context: one [expanded] per
    processed mask, [considered]/[generated] per memo candidate,
    [pruned_bound] per candidate cut by the incumbent bound or the
    layer cap.  Raises {!Sjos_guard.Budget.Exhausted} when the context's
    budget fires, and [Invalid_argument] when [width < 1]. *)
