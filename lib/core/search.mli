(** Shared search machinery: moves, expansion, deadend lookahead, final
    sorting, and the effort counters every algorithm reports.

    A move (Definition 4) evaluates one remaining pattern edge [(u, v)].
    Stack-Tree joins consume inputs sorted by the join nodes, so the move
    requires the cluster containing [u] to be ordered by [u] and the
    cluster containing [v] by [v].  The move picks the join algorithm
    (Stack-Tree-Anc → output ordered by [u]; Stack-Tree-Desc → by [v]) and
    may re-sort the output by any other node of the merged cluster that a
    remaining edge still needs. *)

open Sjos_pattern
open Sjos_plan

type ctx = {
  pat : Pattern.t;
  factors : Sjos_cost.Cost_model.factors;
  provider : Costing.provider;
  edges : Pattern.edge array;
  effort : Effort.t;  (** search-effort counters, always on *)
  budget : Sjos_guard.Budget.t;
      (** resource ceilings for this search; checked before every
          expansion and never perturbing search order *)
}

val make_ctx :
  ?factors:Sjos_cost.Cost_model.factors ->
  ?budget:Sjos_guard.Budget.t ->
  provider:Costing.provider ->
  Pattern.t ->
  ctx

val check_budget : ctx -> unit
(** Poll the context's budget against its effort counters; raises
    {!Sjos_guard.Budget.Exhausted} when a ceiling fired.  Called by
    {!expand}; algorithms with their own inner loops (FP's permutation
    scan) call it directly. *)

val remaining_edges : ctx -> Status.t -> (int * Pattern.edge) list
(** Indexed pattern edges not yet evaluated by the status. *)

val edge_joinable : Status.t -> Pattern.edge -> bool
(** Does the status satisfy the Stack-Tree input-order requirement for the
    edge? *)

val is_deadend : ctx -> Status.t -> bool
(** Definition 6: non-final and no remaining edge is joinable. *)

val expand :
  ?left_deep:bool ->
  ?lookahead:bool ->
  ?cost_bound:float ->
  ctx ->
  Status.t ->
  Status.t list
(** All successor statuses reachable by one move.  Every returned status
    bumps [effort.considered] and [effort.generated]; the call itself
    bumps [effort.expanded].  With [~left_deep:true], successors with two
    composite clusters are not generated (the DPAP-LD rule; skipped moves
    bump [effort.pruned_left_deep]).  With [~lookahead:true], deadend
    successors are detected one step ahead and never generated nor counted
    (DPP's Lookahead Rule; bumps [effort.pruned_deadend]).  Successors
    whose accumulated cost reaches [cost_bound] (the cost of the best
    complete plan found so far) are dead on arrival and are not generated
    either (the Pruning Rule; bumps [effort.pruned_bound]). *)

val useful_sort_targets : ctx -> joined:int -> merged_mask:int -> int list
(** Nodes of the merged cluster that some remaining edge still needs as an
    input order — the only worthwhile output re-sort targets. *)

val finalize : ctx -> Status.t -> float * Plan.t
(** Cost and plan of a final status, adding the result sort required by the
    pattern's order-by node, if any.  Raises [Invalid_argument] on a
    non-final status. *)

val ub_cost : ctx -> Status.t -> float
(** DPP's [ubCost]: a quick upper-bound style estimate of the cost needed
    to finish the status — for every remaining edge, a Stack-Tree-Anc join
    at current cluster cardinalities plus a sort of its output.  Used only
    to order expansion; pruning relies on [cost] alone, so optimality does
    not depend on this being a true upper bound. *)
