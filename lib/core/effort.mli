(** Search-effort accounting, shared by every optimization algorithm.

    These counters are the paper's own currency (Table 2 reports "number
    of plans considered"), so they are always on: plain mutable integers
    whose increments cost nothing measurable and whose values are
    deterministic — independent of whether tracing or the metrics
    registry is enabled.  The observability layer reads them out (span
    attributes, [to_json], registry publication) rather than owning
    them. *)

type t = {
  mutable considered : int;  (** alternative (partial) plans costed *)
  mutable generated : int;  (** statuses generated *)
  mutable expanded : int;  (** statuses expanded *)
  mutable pruned_bound : int;
      (** successors discarded by the Pruning Rule (cost ≥ best plan) *)
  mutable pruned_deadend : int;
      (** successors discarded by DPP's Lookahead Rule *)
  mutable pruned_left_deep : int;
      (** moves skipped by the DPAP-LD left-deep-only rule *)
  mutable peak_queue : int;  (** deepest priority-queue length observed *)
}

val create : unit -> t

val note_queue_depth : t -> int -> unit
(** Record the current priority-queue length, keeping the maximum. *)

val to_json : t -> Sjos_obs.Json.t

val publish : prefix:string -> t -> unit
(** Copy the counters into the global metrics registry as
    [prefix.considered] etc. (no-op while the registry is disabled). *)

val pp : t Fmt.t
