open Sjos_pattern
open Sjos_obs

let update_min table status =
  let key = Status.key status in
  match Hashtbl.find_opt table key with
  | Some (existing : Status.t) when existing.Status.cost <= status.Status.cost
    ->
      ()
  | _ -> Hashtbl.replace table key status

let run ctx =
  let start =
    Status.start ~factors:ctx.Search.factors ~provider:ctx.Search.provider
      ctx.Search.pat
  in
  let levels = Pattern.edge_count ctx.Search.pat in
  let current : (Status.key, Status.t) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.replace current (Status.key start) start;
  let eff = ctx.Search.effort in
  let rec step lv current =
    if lv = levels then current
    else begin
      let next = Hashtbl.create 64 in
      let span = Trace.begin_span "dp.level" ~attrs:[ ("level", Json.Int lv) ] in
      Hashtbl.iter
        (fun _ status -> List.iter (update_min next) (Search.expand ctx status))
        current;
      Trace.end_span span
        ~attrs:
          [
            ("statuses_kept", Json.Int (Hashtbl.length next));
            ("generated_so_far", Json.Int eff.Effort.generated);
            ("expanded_so_far", Json.Int eff.Effort.expanded);
          ];
      step (lv + 1) next
    end
  in
  let finals = step 0 current in
  let best = ref None in
  Hashtbl.iter
    (fun _ status ->
      let cost, plan = Search.finalize ctx status in
      match !best with
      | Some (c, _) when c <= cost -> ()
      | _ -> best := Some (cost, plan))
    finals;
  match !best with
  | Some r -> r
  | None -> invalid_arg "Dp.run: no final status reached"
