open Sjos_pattern
open Sjos_cost
open Sjos_plan

let generate rng ctx =
  let rec loop (s : Status.t) =
    if Status.is_final s then Search.finalize ctx s
    else begin
      let remaining = Search.remaining_edges ctx s in
      let edge_idx, e =
        List.nth remaining (Random.State.int rng (List.length remaining))
      in
      let cu = Status.cluster_of s e.Pattern.anc in
      let cv = Status.cluster_of s e.Pattern.desc in
      (* Sort any input that is not ordered by its join node — this is what
         makes arbitrary join orders legal, and expensive. *)
      let prepare (c : Status.cluster) node =
        if c.Status.order = node then (c.Status.plan, 0.0)
        else
          ( Plan.sort c.Status.plan ~by:node,
            Cost_model.sort ctx.Search.factors c.Status.card )
      in
      let anc_plan, anc_sort = prepare cu e.Pattern.anc in
      let desc_plan, desc_sort = prepare cv e.Pattern.desc in
      let algo =
        if Random.State.bool rng then Plan.Stack_tree_anc
        else Plan.Stack_tree_desc
      in
      let merged_mask = cu.Status.mask lor cv.Status.mask in
      let merged_card = ctx.Search.provider.Costing.cluster_card merged_mask in
      let join_cost =
        match algo with
        | Plan.Stack_tree_anc ->
            Cost_model.stack_tree_anc ctx.Search.factors ~anc:cu.Status.card
              ~output:merged_card
        | Plan.Stack_tree_desc ->
            Cost_model.stack_tree_desc ctx.Search.factors ~anc:cu.Status.card
      in
      let order =
        match algo with
        | Plan.Stack_tree_anc -> e.Pattern.anc
        | Plan.Stack_tree_desc -> e.Pattern.desc
      in
      let merged =
        {
          Status.mask = merged_mask;
          order;
          plan = Plan.join ~anc_side:anc_plan ~desc_side:desc_plan ~edge:e ~algo;
          card = merged_card;
        }
      in
      let clusters =
        merged
        :: List.filter
             (fun (c : Status.cluster) ->
               c.Status.mask <> cu.Status.mask && c.Status.mask <> cv.Status.mask)
             s.Status.clusters
        |> List.sort (fun (a : Status.cluster) b ->
               compare a.Status.mask b.Status.mask)
      in
      ctx.Search.effort.Effort.considered <-
        ctx.Search.effort.Effort.considered + 1;
      loop
        {
          Status.clusters;
          joined = s.Status.joined lor (1 lsl edge_idx);
          cost = s.Status.cost +. anc_sort +. desc_sort +. join_cost;
        }
    end
  in
  loop
    (Status.start ~factors:ctx.Search.factors ~provider:ctx.Search.provider
       ctx.Search.pat)

let sample ?(seed = 42) ctx k =
  let rng = Random.State.make [| seed |] in
  List.init k (fun _ -> generate rng ctx)

let pick ?seed ctx k better =
  if k < 1 then invalid_arg "Random_plan: need at least one sample";
  match sample ?seed ctx k with
  | [] -> assert false
  | first :: rest ->
      List.fold_left
        (fun (bc, bp) (c, p) -> if better c bc then (c, p) else (bc, bp))
        first rest

let worst_of ?seed ctx k = pick ?seed ctx k (fun c bc -> c > bc)
let best_of ?seed ctx k = pick ?seed ctx k (fun c bc -> c < bc)
