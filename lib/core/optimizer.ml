open Sjos_pattern
open Sjos_plan
open Sjos_obs

type algorithm =
  | Dp
  | Dpp
  | Dpp_no_lookahead
  | Dpap_eb of int
  | Dpap_ld
  | Fp
  | Big_dp of int

let name = function
  | Dp -> "DP"
  | Dpp -> "DPP"
  | Dpp_no_lookahead -> "DPP'"
  | Dpap_eb te -> Printf.sprintf "DPAP-EB(%d)" te
  | Dpap_ld -> "DPAP-LD"
  | Fp -> "FP"
  | Big_dp w -> Printf.sprintf "BigDP(%d)" w

let default_te pat = Pattern.edge_count pat
let all pat = [ Dp; Dpp; Dpap_eb (default_te pat); Dpap_ld; Fp ]

(* Status-space searches explode combinatorially with pattern size; the
   paper's queries top out at 7 nodes and the exact algorithms stay
   comfortable a little past that.  Beyond the threshold, requests for an
   exact status search are transparently re-tiered onto the subset DP,
   which is exact on everything the status searches can actually finish
   and stays sub-second at 30-40 nodes. *)
let big_pattern_threshold = 12

let effective pat = function
  | Dp | Dpp | Dpp_no_lookahead
    when Pattern.node_count pat > big_pattern_threshold ->
      Big_dp Bigdp.default_width
  | a -> a

type result = {
  algorithm : algorithm;
  plan : Plan.t;
  est_cost : float;
  plans_considered : int;
  statuses_generated : int;
  statuses_expanded : int;
  opt_seconds : float;
  effort : Effort.t;
  degraded_from : algorithm option;
}

let optimize ?factors ?budget ~provider algorithm pat =
  (* Defensive double of the {!Pattern.create} check: a pattern wide
     enough to overflow the node bitmasks must never reach a search. *)
  if Pattern.node_count pat > Pattern.max_nodes then
    Sjos_guard.Error.fail
      (Sjos_guard.Error.Invalid_request
         (Printf.sprintf "pattern has %d nodes; the optimizer supports at most %d"
            (Pattern.node_count pat) Pattern.max_nodes));
  let requested = algorithm in
  let algorithm = effective pat algorithm in
  let ctx = Search.make_ctx ?factors ?budget ~provider pat in
  let span =
    Trace.begin_span "optimize"
      ~attrs:
        (("algorithm", Json.Str (name algorithm))
        ::
        (if requested = algorithm then []
         else [ ("requested", Json.Str (name requested)) ]))
  in
  let t0 = Clock.now_ns () in
  let est_cost, plan =
    match algorithm with
    | Dp -> Dp.run ctx
    | Dpp -> Dpp.run ctx
    | Dpp_no_lookahead -> Dpp.run ~lookahead:false ctx
    | Dpap_eb te -> Dpp.run ~expansion_bound:(Some te) ctx
    | Dpap_ld -> Dpp.run ~left_deep:true ctx
    | Fp -> Fp.run ctx
    | Big_dp w -> Bigdp.run ~width:w ctx
  in
  let opt_seconds = Clock.elapsed_seconds ~since:t0 in
  let eff = ctx.Search.effort in
  (* Deterministic optimizer work: one unit per status expansion, plus
     the (advisory) count of complete plans considered. *)
  let w = Work.current () in
  w.Work.expansions <- w.Work.expansions + eff.Effort.expanded;
  w.Work.plans_considered <- w.Work.plans_considered + eff.Effort.considered;
  Trace.end_span span
    ~attrs:[ ("est_cost", Json.Float est_cost); ("effort", Effort.to_json eff) ];
  Effort.publish ~prefix:("optimizer." ^ name algorithm) eff;
  if Registry.enabled () then
    Registry.add_seconds (Registry.timer "optimizer.opt_seconds") opt_seconds;
  {
    algorithm;
    plan;
    est_cost;
    plans_considered = eff.Effort.considered;
    statuses_generated = eff.Effort.generated;
    statuses_expanded = eff.Effort.expanded;
    opt_seconds;
    effort = eff;
    degraded_from = None;
  }

let is_exact = function
  | Dp | Dpp | Dpp_no_lookahead | Big_dp _ -> true
  | Dpap_eb _ | Dpap_ld | Fp -> false

(* Anytime degradation: when the budget fires during an *exact* search,
   retry under a tier whose work is bounded *by construction*, so it can
   run outside the exhausted budget — the whole point is to always come
   back with *some* plan.  For paper-scale patterns that is DPAP-EB with
   a small Te (at most Te expansions per level).  Past the big-pattern
   threshold DPAP-EB is itself a status-space search and can blow up, so
   big patterns degrade to a narrow BigDP beam instead: its layered
   enumeration expands at most [width] masks per layer, O(width * n^2)
   work total, and the built-in greedy incumbent guarantees a plan even
   when the beam prunes everything. *)
let fallback_te pat = max 1 (min 4 (default_te pat))
let fallback_width = 16

let fallback_algorithm pat =
  if Pattern.node_count pat > big_pattern_threshold then Big_dp fallback_width
  else Dpap_eb (fallback_te pat)

let optimize_r ?factors ?(budget = Sjos_guard.Budget.unlimited) ~provider
    algorithm pat =
  match optimize ?factors ~budget ~provider algorithm pat with
  | r -> Ok r
  | exception Sjos_guard.Budget.Exhausted { resource; during } ->
      if is_exact algorithm then begin
        if Registry.enabled () then
          Registry.incr (Registry.counter "guard.degraded");
        Trace.event "optimizer.degraded"
          ~attrs:
            [
              ("from", Json.Str (name algorithm));
              ("resource", Json.Str (Sjos_guard.Budget.resource_name resource));
            ];
        match optimize ?factors ~provider (fallback_algorithm pat) pat with
        | r -> Ok { r with degraded_from = Some algorithm }
        | exception Sjos_guard.Budget.Exhausted { resource; during } ->
            Error
              (Sjos_guard.Error.Budget_exhausted { resource; during })
      end
      else Error (Sjos_guard.Error.Budget_exhausted { resource; during })

(* ---------- physical engine selection ---------- *)

type engine = Binary | Holistic | Auto

let engine_name = function
  | Binary -> "binary"
  | Holistic -> "holistic"
  | Auto -> "auto"

let engine_of_string s =
  match String.lowercase_ascii s with
  | "binary" -> Some Binary
  | "holistic" -> Some Holistic
  | "auto" -> Some Auto
  | _ -> None

(* The holistic "search": there is exactly one holistic plan per
   pattern, so producing it is O(pattern) — but it still gets costed
   (under the same factors that price the binary plans), counted as one
   considered plan, and timed, so Auto's comparison and the cache's
   synthesized results stay uniform across engines. *)
let holistic_result ?factors ~provider algorithm pat =
  let factors =
    match factors with Some f -> f | None -> Sjos_cost.Cost_model.default
  in
  let t0 = Clock.now_ns () in
  let plan = Plan.holistic_of_pattern pat in
  let est_cost = Costing.cost factors provider pat plan in
  let eff = Effort.create () in
  eff.Effort.considered <- 1;
  let w = Work.current () in
  w.Work.plans_considered <- w.Work.plans_considered + 1;
  {
    algorithm;
    plan;
    est_cost;
    plans_considered = 1;
    statuses_generated = 0;
    statuses_expanded = 0;
    opt_seconds = Clock.elapsed_seconds ~since:t0;
    effort = eff;
    degraded_from = None;
  }

let optimize_e ?factors ?budget ~provider ~engine algorithm pat =
  match engine with
  | Binary -> optimize_r ?factors ?budget ~provider algorithm pat
  | Holistic -> Ok (holistic_result ?factors ~provider algorithm pat)
  | Auto -> (
      match optimize_r ?factors ?budget ~provider algorithm pat with
      | Error _ as e -> e
      | Ok binary ->
          let holistic = holistic_result ?factors ~provider algorithm pat in
          (* strict inequality: ties go to the binary plan, whose cost
             formulae are the calibrated ones *)
          let winner =
            if holistic.est_cost < binary.est_cost then holistic else binary
          in
          Ok { winner with plans_considered = binary.plans_considered + 1 })

let pp_result pat ppf r =
  Fmt.pf ppf "@[<v>%s: est_cost=%.1f considered=%d opt=%.4fs fp=%s%s@,%s@]"
    (name r.algorithm) r.est_cost r.plans_considered r.opt_seconds
    (Fingerprint.short (Fingerprint.fingerprint pat))
    (match r.degraded_from with
    | Some a -> Printf.sprintf " (degraded from %s)" (name a)
    | None -> "")
    (Explain.to_string pat r.plan)

let result_to_json pat r =
  Json.Obj
    [
      ("algorithm", Json.Str (name r.algorithm));
      ("fingerprint", Json.Str (Fingerprint.fingerprint pat));
      ("est_cost", Json.Float r.est_cost);
      ("plans_considered", Json.Int r.plans_considered);
      ("statuses_generated", Json.Int r.statuses_generated);
      ("statuses_expanded", Json.Int r.statuses_expanded);
      ("opt_seconds", Json.Float r.opt_seconds);
      ("effort", Effort.to_json r.effort);
      ( "degraded_from",
        match r.degraded_from with
        | Some a -> Json.Str (name a)
        | None -> Json.Null );
      ("plan", Json.Str (Explain.one_line pat r.plan));
    ]
