open Sjos_pattern
open Sjos_plan
open Sjos_obs

type algorithm =
  | Dp
  | Dpp
  | Dpp_no_lookahead
  | Dpap_eb of int
  | Dpap_ld
  | Fp

let name = function
  | Dp -> "DP"
  | Dpp -> "DPP"
  | Dpp_no_lookahead -> "DPP'"
  | Dpap_eb te -> Printf.sprintf "DPAP-EB(%d)" te
  | Dpap_ld -> "DPAP-LD"
  | Fp -> "FP"

let default_te pat = Pattern.edge_count pat
let all pat = [ Dp; Dpp; Dpap_eb (default_te pat); Dpap_ld; Fp ]

type result = {
  algorithm : algorithm;
  plan : Plan.t;
  est_cost : float;
  plans_considered : int;
  statuses_generated : int;
  statuses_expanded : int;
  opt_seconds : float;
  effort : Effort.t;
}

let optimize ?factors ~provider algorithm pat =
  let ctx = Search.make_ctx ?factors ~provider pat in
  let span =
    Trace.begin_span "optimize" ~attrs:[ ("algorithm", Json.Str (name algorithm)) ]
  in
  let t0 = Clock.now_ns () in
  let est_cost, plan =
    match algorithm with
    | Dp -> Dp.run ctx
    | Dpp -> Dpp.run ctx
    | Dpp_no_lookahead -> Dpp.run ~lookahead:false ctx
    | Dpap_eb te -> Dpp.run ~expansion_bound:(Some te) ctx
    | Dpap_ld -> Dpp.run ~left_deep:true ctx
    | Fp -> Fp.run ctx
  in
  let opt_seconds = Clock.elapsed_seconds ~since:t0 in
  let eff = ctx.Search.effort in
  Trace.end_span span
    ~attrs:[ ("est_cost", Json.Float est_cost); ("effort", Effort.to_json eff) ];
  Effort.publish ~prefix:("optimizer." ^ name algorithm) eff;
  if Registry.enabled () then
    Registry.add_seconds (Registry.timer "optimizer.opt_seconds") opt_seconds;
  {
    algorithm;
    plan;
    est_cost;
    plans_considered = eff.Effort.considered;
    statuses_generated = eff.Effort.generated;
    statuses_expanded = eff.Effort.expanded;
    opt_seconds;
    effort = eff;
  }

let pp_result pat ppf r =
  Fmt.pf ppf "@[<v>%s: est_cost=%.1f considered=%d opt=%.4fs fp=%s@,%s@]"
    (name r.algorithm) r.est_cost r.plans_considered r.opt_seconds
    (Fingerprint.short (Fingerprint.fingerprint pat))
    (Explain.to_string pat r.plan)

let result_to_json pat r =
  Json.Obj
    [
      ("algorithm", Json.Str (name r.algorithm));
      ("fingerprint", Json.Str (Fingerprint.fingerprint pat));
      ("est_cost", Json.Float r.est_cost);
      ("plans_considered", Json.Int r.plans_considered);
      ("statuses_generated", Json.Int r.statuses_generated);
      ("statuses_expanded", Json.Int r.statuses_expanded);
      ("opt_seconds", Json.Float r.opt_seconds);
      ("effort", Effort.to_json r.effort);
      ("plan", Json.Str (Explain.one_line pat r.plan));
    ]
