(* Large-pattern optimizer tier: bottom-up subset DP over connected
   node-masks, after DPconv's formulation of join ordering as layered
   subset dynamic programming.

   The paper's status search keeps whole partitions of the pattern as
   states, which explodes combinatorially past ~10 nodes (Table 2's
   queries top out at 7).  For tree patterns the per-cluster optimum is
   independent of how the rest of the pattern is partitioned: a cluster
   is a connected subtree, its consumed edges are exactly its internal
   edges, and its useful sort targets (endpoints of still-pending edges)
   are its boundary nodes — none of which depends on the other clusters.
   So the memo can be keyed on [(mask, order)] alone: the best sub-plan
   producing exactly the nodes of [mask], ordered by [order].

   Enumeration is layered by popcount ("convolution layers"): every
   connected mask of size [k] splits at each internal edge [e] into the
   rooted subtree below [e.desc] intersected with the mask and its
   complement — both connected, both strictly smaller, so both already
   memoized.  Three devices bound the work on 30-40-node patterns:

   - cost-bound pruning against an incumbent: a greedy O(n^2) complete
     plan seeds the upper bound, and any entry whose cost alone (a lower
     bound on any completion, since every cluster's cost is part of the
     final sum) reaches it is dropped ([pruned_bound]);
   - a per-layer width cap: after a layer is filled, only the [width]
     cheapest masks (tie-broken by mask value — deterministic) survive
     to seed the next layer.  Layers of patterns with <= 10 nodes never
     exceed the default width, so the tier is exact there — the
     differential gate in test/bench relies on this;
   - budget polling through {!Search.check_budget} once per expanded
     mask, so the guard's deadline/expansion ceilings fire inside the
     enumeration exactly as they do in the status search.

   Everything is serial and iteration-order-free: masks are processed in
   sorted order and hashtables are used only for point lookups, so the
   effort counters are deterministic across runs and domain counts. *)

open Sjos_pattern
open Sjos_cost
open Sjos_plan

let default_width = 1024

type entry = { cost : float; plan : Plan.t; card : float }

(* Index of the (single) set bit of a one-bit mask. *)
let bit_index m = Status.popcount (m - 1)

let run ?(width = default_width) (ctx : Search.ctx) =
  if width < 1 then invalid_arg "Bigdp.run: width must be positive";
  let pat = ctx.Search.pat in
  let n = Pattern.node_count pat in
  let full = (1 lsl n) - 1 in
  let eff = ctx.Search.effort in
  let factors = ctx.Search.factors in
  let provider = ctx.Search.provider in
  let edges = ctx.Search.edges in
  (* adjacency and rooted-subtree masks *)
  let adj = Array.make n 0 in
  Array.iter
    (fun (e : Pattern.edge) ->
      adj.(e.Pattern.anc) <- adj.(e.Pattern.anc) lor (1 lsl e.Pattern.desc);
      adj.(e.Pattern.desc) <- adj.(e.Pattern.desc) lor (1 lsl e.Pattern.anc))
    edges;
  let subtree = Array.make n 0 in
  let rec fill i =
    let m =
      List.fold_left
        (fun acc (j, _) -> acc lor fill j)
        (1 lsl i) (Pattern.children_of pat i)
    in
    subtree.(i) <- m;
    m
  in
  ignore (fill 0);
  let card_memo : (int, float) Hashtbl.t = Hashtbl.create 256 in
  let card mask =
    match Hashtbl.find_opt card_memo mask with
    | Some c -> c
    | None ->
        (* singletons use the index cardinality, like [Status.start] *)
        let c =
          if mask land (mask - 1) = 0 then
            provider.Costing.node_card (bit_index mask)
          else provider.Costing.cluster_card mask
        in
        Hashtbl.replace card_memo mask c;
        c
  in
  (* ---------- greedy incumbent: a complete plan in O(n^2) ----------
     From each start node, repeatedly apply the cheapest legal move
     absorbing one more scan (re-sorting the growing cluster first when
     its order does not match the edge).  Never uses FP — FP's
     permutation scan is factorial on bushy stars, the very shape this
     tier exists for. *)
  let greedy_from start =
    let mask = ref (1 lsl start) in
    let order = ref start in
    let plan = ref (Plan.scan start) in
    let cost = ref (Cost_model.index_access factors (card !mask)) in
    while !mask <> full do
      let best = ref None in
      Array.iter
        (fun (e : Pattern.edge) ->
          let a_in = !mask land (1 lsl e.Pattern.anc) <> 0 in
          let d_in = !mask land (1 lsl e.Pattern.desc) <> 0 in
          if a_in <> d_in then begin
            let cluster_card = card !mask in
            let other = if a_in then e.Pattern.desc else e.Pattern.anc in
            let scan_cost = Cost_model.index_access factors (card (1 lsl other)) in
            let need = if a_in then e.Pattern.anc else e.Pattern.desc in
            let presort =
              if !order <> need then Cost_model.sort factors cluster_card
              else 0.0
            in
            let merged = !mask lor (1 lsl other) in
            let anc_card =
              if a_in then cluster_card else card (1 lsl e.Pattern.anc)
            in
            List.iter
              (fun algo ->
                let join_cost =
                  match algo with
                  | Plan.Stack_tree_anc ->
                      Cost_model.stack_tree_anc factors ~anc:anc_card
                        ~output:(card merged)
                  | Plan.Stack_tree_desc ->
                      Cost_model.stack_tree_desc factors ~anc:anc_card
                in
                let total = presort +. scan_cost +. join_cost in
                match !best with
                | Some (c, _, _, _) when c <= total -> ()
                | _ -> best := Some (total, e, other, algo))
              [ Plan.Stack_tree_anc; Plan.Stack_tree_desc ]
          end)
        edges;
      match !best with
      | None -> invalid_arg "Bigdp: pattern is not connected"
      | Some (move_cost, e, other, algo) ->
          let a_in = other = e.Pattern.desc in
          let need = if a_in then e.Pattern.anc else e.Pattern.desc in
          let cluster_plan =
            if !order <> need then Plan.sort !plan ~by:need else !plan
          in
          let anc_side, desc_side =
            if a_in then (cluster_plan, Plan.scan other)
            else (Plan.scan other, cluster_plan)
          in
          plan := Plan.join ~anc_side ~desc_side ~edge:e ~algo;
          order :=
            (match algo with
            | Plan.Stack_tree_anc -> e.Pattern.anc
            | Plan.Stack_tree_desc -> e.Pattern.desc);
          mask := !mask lor (1 lsl other);
          cost := !cost +. move_cost
    done;
    (* final order-by sort, mirroring [Search.finalize] *)
    (match Pattern.order_by pat with
    | Some r when !order <> r ->
        cost := !cost +. Cost_model.sort factors (card full);
        plan := Plan.sort !plan ~by:r
    | _ -> ());
    eff.Effort.considered <- eff.Effort.considered + 1;
    (!cost, !plan)
  in
  let incumbent = ref (greedy_from 0) in
  for c = 1 to n - 1 do
    let ((cost, _) as cand) = greedy_from c in
    if cost < fst !incumbent then incumbent := cand
  done;
  let ub = ref (fst !incumbent) in
  if n = 1 then begin
    (* single-node pattern: the scan is the plan (order-by is node 0) *)
    eff.Effort.expanded <- eff.Effort.expanded + 1;
    !incumbent
  end
  else begin
    (* ---------- the subset DP ---------- *)
    let tbl : (int * int, entry) Hashtbl.t = Hashtbl.create 1024 in
    let emit mask order cost plan =
      if cost >= !ub then
        eff.Effort.pruned_bound <- eff.Effort.pruned_bound + 1
      else begin
        eff.Effort.considered <- eff.Effort.considered + 1;
        eff.Effort.generated <- eff.Effort.generated + 1;
        match Hashtbl.find_opt tbl (mask, order) with
        | Some e when e.cost <= cost -> ()
        | _ -> Hashtbl.replace tbl (mask, order) { cost; plan; card = card mask }
      end
    in
    for i = 0 to n - 1 do
      let c = card (1 lsl i) in
      Hashtbl.replace tbl
        (1 lsl i, i)
        {
          cost = Cost_model.index_access factors c;
          plan = Plan.scan i;
          card = c;
        }
    done;
    (* nodes of [mask] in increasing index order *)
    let mask_bits mask =
      let acc = ref [] in
      let m = ref mask in
      while !m <> 0 do
        let low = !m land - !m in
        acc := bit_index low :: !acc;
        m := !m lxor low
      done;
      List.rev !acc
    in
    (* cheapest surviving entry of a mask, any order (ties to the lower
       order index — [mask_bits] is increasing) *)
    let best_of mask =
      List.fold_left
        (fun best o ->
          match (Hashtbl.find_opt tbl (mask, o), best) with
          | None, b -> b
          | Some e, None -> Some (o, e)
          | Some e, Some (_, be) -> if e.cost < be.cost then Some (o, e) else best)
        None (mask_bits mask)
    in
    let expand_mask mask =
      Search.check_budget ctx;
      eff.Effort.expanded <- eff.Effort.expanded + 1;
      let bits = mask_bits mask in
      (* joins: split at each internal edge *)
      Array.iter
        (fun (e : Pattern.edge) ->
          if
            mask land (1 lsl e.Pattern.anc) <> 0
            && mask land (1 lsl e.Pattern.desc) <> 0
          then begin
            let sd = mask land subtree.(e.Pattern.desc) in
            let sa = mask lxor sd in
            match
              ( Hashtbl.find_opt tbl (sa, e.Pattern.anc),
                Hashtbl.find_opt tbl (sd, e.Pattern.desc) )
            with
            | Some ea, Some ed ->
                let out_card = card mask in
                let join algo =
                  let join_cost =
                    match algo with
                    | Plan.Stack_tree_anc ->
                        Cost_model.stack_tree_anc factors ~anc:ea.card
                          ~output:out_card
                    | Plan.Stack_tree_desc ->
                        Cost_model.stack_tree_desc factors ~anc:ea.card
                  in
                  let order =
                    match algo with
                    | Plan.Stack_tree_anc -> e.Pattern.anc
                    | Plan.Stack_tree_desc -> e.Pattern.desc
                  in
                  emit mask order
                    (ea.cost +. ed.cost +. join_cost)
                    (Plan.join ~anc_side:ea.plan ~desc_side:ed.plan ~edge:e
                       ~algo)
                in
                join Plan.Stack_tree_anc;
                join Plan.Stack_tree_desc
            | _ -> () (* a half was pruned away; skip this split *)
          end)
        edges;
      (* sorts: from the cheapest entry toward every boundary node (the
         mask's useful sort targets).  One step suffices: sort cost
         depends only on the cardinality, never on the source order, so
         a sort of a sort is never cheaper. *)
      if mask <> full then
        match best_of mask with
        | None -> ()
        | Some (bo, be) ->
            let scost = be.cost +. Cost_model.sort factors be.card in
            List.iter
              (fun o ->
                if o <> bo && adj.(o) land lnot mask <> 0 then
                  emit mask o scost (Plan.sort be.plan ~by:o))
              bits
    in
    (* Layered enumeration: layer k holds the expanded connected masks
       of popcount k; candidates for k+1 extend each by one frontier
       node.  Over-width layers are cut *before* expansion — candidates
       are ranked by the best entry cost among their generating parents
       (ties by mask value), so the cheap regions of the lattice grow
       first and the cut costs no expansion work.  Entry-less parents
       rank last but are still legal seeds: their supersets can split
       into smaller memoized halves, so dropping them eagerly could
       disconnect the enumeration.  Under the cap every candidate is
       expanded, which keeps the tier exact on small patterns. *)
    let layer = ref (List.init n (fun i -> 1 lsl i)) in
    for _size = 2 to n do
      let scores : (int, float) Hashtbl.t = Hashtbl.create 1024 in
      List.iter
        (fun mask ->
          let pscore =
            match best_of mask with Some (_, e) -> e.cost | None -> infinity
          in
          let frontier =
            List.fold_left (fun acc i -> acc lor adj.(i)) 0 (mask_bits mask)
            land lnot mask
          in
          List.iter
            (fun j ->
              let c = mask lor (1 lsl j) in
              match Hashtbl.find_opt scores c with
              | Some s when s <= pscore -> ()
              | _ -> Hashtbl.replace scores c pscore)
            (mask_bits frontier))
        !layer;
      (* sorted by (score, mask): a total order, so the fold's hashtable
         iteration order never shows *)
      let candidates =
        Hashtbl.fold (fun c s acc -> (s, c) :: acc) scores []
        |> List.sort compare
      in
      let kept, dropped =
        let rec split i = function
          | [] -> ([], 0)
          | x :: tl ->
              if i < width then
                let k, d = split (i + 1) tl in
                (x :: k, d)
              else ([], List.length (x :: tl))
        in
        split 0 candidates
      in
      eff.Effort.pruned_bound <- eff.Effort.pruned_bound + dropped;
      List.iter (fun (_, c) -> expand_mask c) kept;
      layer := List.map snd kept
    done;
    (* finalize the full mask against the incumbent: the cheapest entry
       after the order-by sort, if any, mirroring [Search.finalize] *)
    let finalized o (e : entry) =
      match Pattern.order_by pat with
      | Some r when o <> r ->
          (e.cost +. Cost_model.sort factors e.card, Plan.sort e.plan ~by:r)
      | _ -> (e.cost, e.plan)
    in
    let final =
      List.fold_left
        (fun best o ->
          match Hashtbl.find_opt tbl (full, o) with
          | None -> best
          | Some e -> (
              let ((c, _) as f) = finalized o e in
              match best with
              | Some (bc, _) when bc <= c -> best
              | _ -> Some f))
        None (mask_bits full)
    in
    match final with
    | Some (c, p) when c < fst !incumbent -> (c, p)
    | _ -> !incumbent
  end

