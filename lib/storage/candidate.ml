open Sjos_xml

type spec = {
  tag : string option;
  attr : (string * string) option;
  text : string option;
}

let any = { tag = None; attr = None; text = None }
let of_tag tag = { tag = Some tag; attr = None; text = None }

let matches spec (n : Node.t) =
  (match spec.tag with Some t -> String.equal t n.Node.tag | None -> true)
  && (match spec.attr with
     | Some (k, v) -> Node.has_attr_value n k v
     | None -> true)
  && match spec.text with Some s -> String.equal s n.Node.text | None -> true

(* Single-pass count-and-fill: the filtered array is allocated at its
   exact size, with no intermediate lists. *)
let filter_nodes pred (base : Node.t array) =
  let n = Array.length base in
  let count = ref 0 in
  for i = 0 to n - 1 do
    if pred (Array.unsafe_get base i) then incr count
  done;
  if !count = n then base
  else begin
    let out = Array.make !count base.(0) in
    let j = ref 0 in
    for i = 0 to n - 1 do
      let node = Array.unsafe_get base i in
      if pred node then begin
        Array.unsafe_set out !j node;
        incr j
      end
    done;
    out
  end

let base_and_residual index spec =
  let base =
    match (spec.tag, spec.attr) with
    | Some tag, Some (attr, value) ->
        Element_index.lookup_attr index ~tag ~attr ~value
    | Some tag, None -> Element_index.lookup index tag
    | None, _ -> Document.nodes (Element_index.document index)
  in
  (* the attribute predicate is already satisfied when the secondary index
     answered; only residual predicates need filtering *)
  let residual =
    match spec.tag with
    | Some _ -> { spec with attr = None }
    | None -> spec
  in
  (base, residual)

let select index spec =
  let base, residual = base_and_residual index spec in
  if residual.attr = None && residual.text = None then base
  else filter_nodes (matches residual) base

let select_cols index spec =
  let base, residual = base_and_residual index spec in
  if residual.attr = None && residual.text = None then
    match spec.tag with
    | Some tag when spec.attr = None ->
        (* the common case hits the per-tag column cache *)
        Element_index.cols index tag
    | _ -> Cols.of_nodes base
  else Cols.of_nodes (filter_nodes (matches residual) base)

let is_pure_tag spec =
  match spec with
  | { tag = Some _; attr = None; text = None } -> true
  | _ -> false

let spec_to_string spec =
  let tag = Option.value spec.tag ~default:"*" in
  let attr =
    match spec.attr with
    | Some (k, v) -> Printf.sprintf "[@%s='%s']" k v
    | None -> ""
  in
  let text =
    match spec.text with Some s -> Printf.sprintf "[.='%s']" s | None -> ""
  in
  tag ^ attr ^ text

let pp_spec ppf spec = Fmt.string ppf (spec_to_string spec)
