include Sjos_xml.Cols
