(** The unified column record, re-exported into the storage layer.

    [Sjos_storage.Cols] is the canonical name consumers should use; the
    type itself lives in {!Sjos_xml.Cols} (the document's own positional
    columns are the same shape, and the xml layer sits below storage).
    The old duplicated records — [Document.columns] and
    [Element_index.columns] — are deprecated aliases of this type. *)

type t = Sjos_xml.Cols.t = {
  ids : int array;
  starts : int array;
  ends : int array;
  levels : int array;
}

val empty : t
val length : t -> int
val of_nodes : Sjos_xml.Node.t array -> t
val equal : t -> t -> bool
