open Sjos_xml
module Json = Sjos_obs.Json

(* ---------- configuration ---------- *)

type backend = Mem | Disk

type config = {
  backend : backend;
  page_size : int;  (* items per page; one item = one 8-byte int *)
  pool_pages : int;
  dir : string option;  (* Disk only; [None] = fresh temp directory *)
}

let default_page_size = 1024
let default_pool_pages = 256

let mem =
  {
    backend = Mem;
    page_size = default_page_size;
    pool_pages = default_pool_pages;
    dir = None;
  }

let disk ?(page_size = default_page_size) ?(pool_pages = default_pool_pages)
    ?dir () =
  if page_size < 1 || pool_pages < 1 then
    invalid_arg "Column_store.disk: sizes must be positive";
  { backend = Disk; page_size; pool_pages; dir }

let backend_name = function Mem -> "mem" | Disk -> "disk"

let backend_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "mem" | "memory" -> Ok Mem
  | "disk" -> Ok Disk
  | other -> Error (Printf.sprintf "unknown storage backend %S" other)

(* SJOS_STORAGE=mem|disk selects the process-wide default backend;
   SJOS_PAGE_SIZE / SJOS_POOL_PAGES tune the disk pool.  Unset or
   unparsable values fall back to [mem] — the environment must never be
   able to break a run, only to redirect it. *)
let config_of_env () =
  let int_env name default =
    match Sys.getenv_opt name with
    | Some s -> ( match int_of_string_opt (String.trim s) with
                  | Some n when n > 0 -> n
                  | _ -> default)
    | None -> default
  in
  let backend =
    match Sys.getenv_opt "SJOS_STORAGE" with
    | Some s -> ( match backend_of_string s with Ok b -> b | Error _ -> Mem)
    | None -> Mem
  in
  {
    backend;
    page_size = int_env "SJOS_PAGE_SIZE" default_page_size;
    pool_pages = int_env "SJOS_POOL_PAGES" default_pool_pages;
    dir = None;
  }

let config_to_json c =
  Json.Obj
    [
      ("backend", Json.Str (backend_name c.backend));
      ("page_size", Json.Int c.page_size);
      ("pool_pages", Json.Int c.pool_pages);
    ]

let pp_config ppf c =
  match c.backend with
  | Mem -> Fmt.string ppf "mem"
  | Disk ->
      Fmt.pf ppf "disk(page_size=%d, pool_pages=%d)" c.page_size c.pool_pages

(* Two configs select the same physical store when the backend and the
   pool geometry agree; [dir] is placement, not behavior, but distinct
   dirs are distinct files so it participates too. *)
let config_equal a b =
  a.backend = b.backend && a.page_size = b.page_size
  && a.pool_pages = b.pool_pages && a.dir = b.dir

(* ---------- disk layout ---------- *)

(* One data file holds every tag's candidate list as four page-aligned
   segments, laid out in allocation order:

     [tag_1.ids | tag_1.starts | tag_1.ends | tag_1.levels | tag_2.ids | ...]

   Each int is 8 bytes little-endian; a page is [page_size] items, so
   [page_bytes = 8 * page_size] and a page id maps to the byte offset
   [page_id * page_bytes] (the pager allocates page ids sequentially and
   the writer emits segments in the same order).  The final page of a
   segment is zero-padded, so every physical read is a full page. *)

type entry = {
  tag : string;
  n : int;
  seg_ids : Pager.segment;
  seg_starts : Pager.segment;
  seg_ends : Pager.segment;
  seg_levels : Pager.segment;
  (* the buffer frames this tag's pages decode into; allocated on first
     touch so a query only pays for the tags it reads *)
  mutable frames : Cols.t option;
}

type disk = {
  pager : Pager.t;
  page_bytes : int;
  path : string;  (* the columns.bin data file *)
  catalog_path : string;
  auto_dir : string option;  (* a temp dir we created and must remove *)
  entries : (string, entry) Hashtbl.t;
  sorted_tags : string list;
  (* One lock serializes the whole fault path: channel seeks, page-table
     updates, frame allocation and decode.  Faulting is the slow path by
     definition (it models physical IO); readers touch the decoded
     arrays outside the lock, which is safe because a frame slot is only
     ever written with the value it already holds after its first decode
     (pages re-read after eviction carry identical bytes). *)
  m : Mutex.t;
  buf : Bytes.t;  (* page-sized read buffer, guarded by [m] *)
  mutable chan : in_channel option;
  mutable disposed : bool;
}

type t = { index : Element_index.t; config : config; disk : disk option }

exception Io_error of { path : string; reason : string }

(* -- writing ----------------------------------------------------------- *)

let column_value which (node : Node.t) =
  match which with
  | `Ids -> node.Node.id
  | `Starts -> node.Node.start_pos
  | `Ends -> node.Node.end_pos
  | `Levels -> node.Node.level

let write_segment oc ~page_size ~buf which (nodes : Node.t array) =
  let n = Array.length nodes in
  let pages = max 1 ((n + page_size - 1) / page_size) in
  for p = 0 to pages - 1 do
    Bytes.fill buf 0 (Bytes.length buf) '\000';
    let lo = p * page_size in
    let hi = min n (lo + page_size) in
    for i = lo to hi - 1 do
      Bytes.set_int64_le buf ((i - lo) * 8)
        (Int64.of_int (column_value which nodes.(i)))
    done;
    output_bytes oc buf
  done

let fresh_dir () =
  let base = Filename.temp_file "sjos-store" "" in
  Sys.remove base;
  Sys.mkdir base 0o700;
  base

(* Stores placed in auto-created temp directories are swept at process
   exit, so test suites and CLI runs that build many disk-backed
   databases do not leak files.  Registration goes through
   [Sjos_obs.Lifecycle] stage [`Dispose], which is guaranteed to run
   before the domain pool's [`Shutdown] stage — disposal order no longer
   depends on which subsystem initialized first. *)
let register_auto_disposal f = Sjos_obs.Lifecycle.on_exit `Dispose f

let write_catalog d ~page_size entries =
  let oc = open_out_bin d in
  let tags =
    List.map
      (fun e ->
        Json.Obj
          [
            ("tag", Json.Str e.tag);
            ("items", Json.Int e.n);
            ("first_page", Json.Int (Pager.segment_base e.seg_ids));
          ])
      entries
  in
  output_string oc
    (Json.to_string
       (Json.Obj
          [ ("page_size", Json.Int page_size); ("tags", Json.List tags) ]));
  close_out oc

let build_disk config index =
  let page_size = config.page_size in
  let auto_dir, dir =
    match config.dir with
    | Some dir ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o700;
        (None, dir)
    | None ->
        let dir = fresh_dir () in
        (Some dir, dir)
  in
  let path = Filename.concat dir "columns.bin" in
  let catalog_path = Filename.concat dir "catalog.json" in
  let pager = Pager.create ~page_size ~pool_pages:config.pool_pages () in
  let page_bytes = 8 * page_size in
  let buf = Bytes.create page_bytes in
  let tags = Element_index.tags index in
  let oc = open_out_bin path in
  let entries = Hashtbl.create 64 in
  let ordered = ref [] in
  List.iter
    (fun tag ->
      let nodes = Element_index.lookup index tag in
      let n = Array.length nodes in
      (* allocation order = write order, so page ids map to offsets *)
      let seg which =
        let seg = Pager.allocate pager ~items:n in
        write_segment oc ~page_size ~buf which nodes;
        seg
      in
      let seg_ids = seg `Ids in
      let seg_starts = seg `Starts in
      let seg_ends = seg `Ends in
      let seg_levels = seg `Levels in
      let e =
        { tag; n; seg_ids; seg_starts; seg_ends; seg_levels; frames = None }
      in
      Hashtbl.replace entries tag e;
      ordered := e :: !ordered)
    tags;
  close_out oc;
  write_catalog catalog_path ~page_size (List.rev !ordered);
  let d =
    {
      pager;
      page_bytes;
      path;
      catalog_path;
      auto_dir;
      entries;
      sorted_tags = tags;
      m = Mutex.create ();
      buf = Bytes.create page_bytes;
      (* opened lazily on first fault: a store that never reads never
         holds a descriptor, and a data file that has gone missing
         between load and first query surfaces as a structured
         [Io_error] instead of a success-then-crash *)
      chan = None;
      disposed = false;
    }
  in
  d

let dispose_disk d =
  Mutex.lock d.m;
  if not d.disposed then begin
    d.disposed <- true;
    (match d.chan with Some c -> close_in_noerr c | None -> ());
    d.chan <- None;
    (try Sys.remove d.path with Sys_error _ -> ());
    (try Sys.remove d.catalog_path with Sys_error _ -> ());
    match d.auto_dir with
    | Some dir -> ( try Sys.rmdir dir with Sys_error _ -> ())
    | None -> ()
  end;
  Mutex.unlock d.m

let create ?(config = mem) index =
  match config.backend with
  | Mem -> { index; config; disk = None }
  | Disk ->
      let d = build_disk config index in
      if config.dir = None then register_auto_disposal (fun () -> dispose_disk d);
      { index; config; disk = Some d }

let index t = t.index
let document t = Element_index.document t.index
let config t = t.config
let is_disk t = t.disk <> None
let dispose t = match t.disk with Some d -> dispose_disk d | None -> ()

let io_stats t = Option.map (fun d -> Pager.stats d.pager) t.disk

let reset_io t =
  match t.disk with Some d -> Mutex.lock d.m; Pager.reset d.pager; Mutex.unlock d.m | None -> ()

let data_file t = Option.map (fun d -> d.path) t.disk

let pool_bytes t =
  match t.disk with
  | Some d -> Some (d.page_bytes * t.config.pool_pages)
  | None -> None

let total_column_bytes t =
  match t.disk with
  | Some d ->
      let pages =
        Hashtbl.fold
          (fun _ e acc ->
            acc
            + Pager.segment_pages d.pager e.seg_ids
            + Pager.segment_pages d.pager e.seg_starts
            + Pager.segment_pages d.pager e.seg_ends
            + Pager.segment_pages d.pager e.seg_levels)
          d.entries 0
      in
      Some (pages * d.page_bytes)
  | None -> None

(* ---------- the fault path ---------- *)

(* Read one physical page into [d.buf] and decode it into the segment's
   frame array.  [seg_base]/[n] locate the page's item range within the
   segment.  Decoding overwrites the frame slots with the values the
   bytes already encode — re-reads after eviction are real IO but
   idempotent stores, so concurrent readers of previously decoded slots
   are never invalidated. *)
let channel d =
  match d.chan with
  | Some c -> c
  | None ->
      if d.disposed then invalid_arg "Column_store: store has been disposed";
      (match open_in_bin d.path with
      | c ->
          d.chan <- Some c;
          c
      | exception Sys_error msg ->
          raise (Io_error { path = d.path; reason = msg }))

let read_page d (dst : int array) seg page =
  let chan = channel d in
  (try
     seek_in chan (page * d.page_bytes);
     really_input chan d.buf 0 d.page_bytes
   with
  | End_of_file ->
      raise
        (Io_error
           {
             path = d.path;
             reason =
               Printf.sprintf
                 "unexpected end of file reading page %d (truncated or \
                  corrupt column file)"
                 page;
           })
  | Sys_error msg -> raise (Io_error { path = d.path; reason = msg }));
  let page_size = Pager.page_size d.pager in
  let lo = (page - Pager.segment_base seg) * page_size in
  let hi = min (Pager.segment_items seg) (lo + page_size) in
  for i = lo to hi - 1 do
    Array.unsafe_set dst i (Int64.to_int (Bytes.get_int64_le d.buf ((i - lo) * 8)))
  done

let frames_of d e =
  Mutex.lock d.m;
  let f =
    match e.frames with
    | Some f -> f
    | None ->
        let f =
          {
            Cols.ids = Array.make e.n 0;
            starts = Array.make e.n 0;
            ends = Array.make e.n 0;
            levels = Array.make e.n 0;
          }
        in
        e.frames <- Some f;
        f
  in
  Mutex.unlock d.m;
  f

(* All faulting runs under [d.m]: the pager's LRU state, the shared read
   buffer and the channel position are one critical section. *)
let ensure_seg d (dst : int array) seg lo hi =
  if hi > lo then begin
    Mutex.lock d.m;
    (try
       Pager.fault_range d.pager seg ~first_item:lo ~n_items:(hi - lo)
         ~on_miss:(fun page -> read_page d dst seg page)
     with e -> Mutex.unlock d.m; raise e);
    Mutex.unlock d.m
  end

let entry_of d tag =
  match Hashtbl.find_opt d.entries tag with
  | Some e -> Some e
  | None -> None

let force_entry d e =
  let f = frames_of d e in
  ensure_seg d f.Cols.ids e.seg_ids 0 e.n;
  ensure_seg d f.Cols.starts e.seg_starts 0 e.n;
  ensure_seg d f.Cols.ends e.seg_ends 0 e.n;
  ensure_seg d f.Cols.levels e.seg_levels 0 e.n;
  f

(* ---------- materializing reads ---------- *)

let cols t tag =
  match t.disk with
  | None -> Element_index.cols t.index tag
  | Some d -> (
      match entry_of d tag with
      | None -> Cols.empty
      | Some e -> force_entry d e)

(* A predicate select against the disk backend still reads the tag's
   candidate list from storage — the full four-column scan is charged —
   and then filters in memory, exactly like the Mem path filters the
   cached arrays.  A wildcard reads every tag's list.  The *result*
   values are computed from the in-memory index either way, so both
   backends return bit-identical columns. *)
let charge_spec_scan t (spec : Candidate.spec) =
  match t.disk with
  | None -> ()
  | Some d -> (
      match spec.Candidate.tag with
      | Some tag -> (
          match entry_of d tag with
          | Some e -> ignore (force_entry d e)
          | None -> ())
      | None ->
          List.iter
            (fun tag ->
              match entry_of d tag with
              | Some e -> ignore (force_entry d e)
              | None -> ())
            d.sorted_tags)

let select t spec =
  match t.disk with
  | None -> Candidate.select_cols t.index spec
  | Some _ ->
      charge_spec_scan t spec;
      if Candidate.is_pure_tag spec then
        cols t (Option.get spec.Candidate.tag)
      else Candidate.select_cols t.index spec

let select_nodes t spec =
  charge_spec_scan t spec;
  Candidate.select t.index spec

(* ---------- lazy leaves ---------- *)

type leaf = { ld : disk; entry : entry; frames : Cols.t }

let leaf t spec =
  match t.disk with
  | None -> None
  | Some d ->
      if Candidate.is_pure_tag spec then
        match entry_of d (Option.get spec.Candidate.tag) with
        | None -> None
        | Some e -> Some { ld = d; entry = e; frames = frames_of d e }
      else None

let leaf_length l = l.entry.n
let leaf_cols l = l.frames
let leaf_tag l = l.entry.tag

let clamp l lo hi = (max 0 lo, min l.entry.n hi)

let ensure_probe l i =
  if i >= 0 && i < l.entry.n then
    ensure_seg l.ld l.frames.Cols.starts l.entry.seg_starts i (i + 1)

let ensure_meta l lo hi =
  let lo, hi = clamp l lo hi in
  ensure_seg l.ld l.frames.Cols.starts l.entry.seg_starts lo hi;
  ensure_seg l.ld l.frames.Cols.ends l.entry.seg_ends lo hi;
  ensure_seg l.ld l.frames.Cols.levels l.entry.seg_levels lo hi

let ensure_ids l lo hi =
  let lo, hi = clamp l lo hi in
  ensure_seg l.ld l.frames.Cols.ids l.entry.seg_ids lo hi

let force l = force_entry l.ld l.entry
