(** Candidate node sets for pattern-tree nodes.

    A pattern node's label is a predicate (tag test plus optional attribute
    and text-content tests).  Its candidate set is the document-ordered
    array of elements satisfying the predicate — the paper assumes these
    sets "can be found efficiently, for instance, through an index scan"
    (§2.2.1); this module is that index scan. *)

open Sjos_xml

type spec = {
  tag : string option;  (** [None] is the wildcard [*] *)
  attr : (string * string) option;  (** attribute name/value equality *)
  text : string option;  (** text-content equality *)
}

val any : spec
(** The wildcard spec: matches every element. *)

val of_tag : string -> spec

val matches : spec -> Node.t -> bool
(** Does the node satisfy the predicate? *)

val select : Element_index.t -> spec -> Node.t array
(** Document-ordered candidate array for a spec.  Tag lookups hit the
    element index; attribute/text predicates filter the tag bucket with a
    single-pass count-and-fill (no intermediate lists). *)

val select_cols : Element_index.t -> spec -> Cols.t
(** Flat-column counterpart of {!select} for the batch execution engine.
    Plain tag lookups reuse the per-tag column cache; residual predicates
    filter then extract fresh columns. *)

val is_pure_tag : spec -> bool
(** [true] when the spec is a plain tag test with no attribute or text
    predicate — the case whose candidate list is exactly one tag's
    column file in the disk store. *)

val spec_to_string : spec -> string
val pp_spec : spec Fmt.t
