(** Tag-name element index.

    Maps each tag to the array of its elements sorted by [start_pos]
    (document order), which is exactly the input format required by the
    Stack-Tree join algorithms.  This plays the role of Timber's
    element-tag index: "accessing an index built on the element tag names
    gives us a list of candidate data nodes for each node in the query
    pattern" (paper, Example 2.1). *)

open Sjos_xml

type t

type columns = Cols.t = {
  ids : int array;
  starts : int array;
  ends : int array;
  levels : int array;
}
[@@ocaml.deprecated "use Cols.t"]
(** Deprecated alias of {!Cols.t} — the candidate-list column record is
    now the unified column type shared with {!Document.positions} and
    {!Column_store}. *)

val build : Document.t -> t
(** Index every element of the document by tag. *)

val lookup : t -> string -> Node.t array
(** Sorted candidate array for a tag; the empty array for unknown tags.
    Callers must not mutate the result. *)

val cols : t -> string -> Cols.t
(** Flat-column view of {!lookup}, built lazily per tag and cached.
    Callers must not mutate the arrays.  Safe to call from any domain
    (the lazy caches are mutex-guarded). *)

val columns : t -> string -> Cols.t
[@@ocaml.deprecated "use Element_index.cols"]
(** Deprecated alias of {!cols}. *)

val warm : t -> unit
(** Pre-build the per-tag column cache for every tag, so parallel
    queries hit only read paths.  Idempotent. *)

val columns_of_nodes : Node.t array -> Cols.t
[@@ocaml.deprecated "use Cols.of_nodes"]
(** Deprecated alias of {!Cols.of_nodes}. *)

val lookup_attr : t -> tag:string -> attr:string -> value:string -> Node.t array
(** Document-ordered elements with the given tag carrying [attr="value"].
    The secondary index for a [(tag, attr)] pair is built lazily on first
    use and cached, so repeated attribute-predicate scans (the Mbench
    workload) are O(result) rather than O(tag bucket). *)

val cardinality : t -> string -> int
val tags : t -> string list

val document : t -> Document.t
(** The indexed document. *)

val total_nodes : t -> int
