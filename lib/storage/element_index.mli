(** Tag-name element index.

    Maps each tag to the array of its elements sorted by [start_pos]
    (document order), which is exactly the input format required by the
    Stack-Tree join algorithms.  This plays the role of Timber's
    element-tag index: "accessing an index built on the element tag names
    gives us a list of candidate data nodes for each node in the query
    pattern" (paper, Example 2.1). *)

open Sjos_xml

type t

type columns = {
  ids : int array;
  starts : int array;
  ends : int array;
  levels : int array;
}
(** Structure-of-arrays view of a candidate list, in document order:
    row [i] describes the node [ids.(i)].  The batch join kernels merge
    these flat int columns instead of chasing {!Node.t} records. *)

val build : Document.t -> t
(** Index every element of the document by tag. *)

val lookup : t -> string -> Node.t array
(** Sorted candidate array for a tag; the empty array for unknown tags.
    Callers must not mutate the result. *)

val columns : t -> string -> columns
(** Flat-column view of {!lookup}, built lazily per tag and cached.
    Callers must not mutate the arrays.  Safe to call from any domain
    (the lazy caches are mutex-guarded). *)

val warm : t -> unit
(** Pre-build the per-tag column cache for every tag, so parallel
    queries hit only read paths.  Idempotent. *)

val columns_of_nodes : Node.t array -> columns
(** Extract fresh columns from an arbitrary (document-ordered) candidate
    array — the conversion for externally fetched or filtered streams. *)

val lookup_attr : t -> tag:string -> attr:string -> value:string -> Node.t array
(** Document-ordered elements with the given tag carrying [attr="value"].
    The secondary index for a [(tag, attr)] pair is built lazily on first
    use and cached, so repeated attribute-predicate scans (the Mbench
    workload) are O(result) rather than O(tag bucket). *)

val cardinality : t -> string -> int
val tags : t -> string list

val document : t -> Document.t
(** The indexed document. *)

val total_nodes : t -> int
