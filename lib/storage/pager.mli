(** A paged storage manager with an LRU buffer pool — the role SHORE
    plays under Timber in the paper's experimental setup (16 MB buffer
    pool, §4).

    Candidate lists and materialized intermediate results live in
    fixed-size pages; every access goes through the pool and is accounted
    as a hit or a miss (a miss evicts the least-recently-used resident
    page).  The executor's abstract [f_IO] factor is grounded here: one
    miss = one physical page read.

    The pager itself only decides {e which} accesses are misses; it is
    deliberately independent of where the bytes live.  {!Column_store}
    supplies the bytes: its [Disk] backend preads a page from its column
    file on every miss reported by {!fault_range}.  The older simulation
    entry points ({!scan}, {!scan_range}, {!touch}) remain for access-
    pattern experiments that don't need data.

    Every access charges one [Work.page_touches] unit.  The batch entry
    points fetch the calling domain's accumulator once per call, not once
    per page, so per-page accounting costs one field increment. *)

type t

val create : ?page_size:int -> pool_pages:int -> unit -> t
(** [create ~pool_pages ()] — a pool holding [pool_pages] resident pages of
    [page_size] items each (default 256 items/page).
    Raises [Invalid_argument] for non-positive sizes. *)

val page_size : t -> int

type segment
(** A contiguous on-disk area holding a known number of items. *)

val allocate : t -> items:int -> segment
(** Allocate a segment (e.g. one tag's candidate list, or a materialized
    intermediate result). *)

val segment_pages : t -> segment -> int

val segment_base : segment -> int
(** The segment's first (absolute) page id.  Page ids are allocated
    sequentially, so a store laying segments out in allocation order can
    derive a page's file offset as [page_id * page_byte_size]. *)

val segment_items : segment -> int

val touch : t -> int -> unit
(** Access one page by absolute id, charging one [Work.page_touches]
    unit.  Prefer the batch entry points below on hot paths — they fetch
    the work accumulator once per call, not once per page. *)

val scan : t -> segment -> unit
(** Touch all pages of a segment in order — a full sequential scan. *)

val scan_range : t -> segment -> first_item:int -> n_items:int -> unit
(** Touch the pages covering an item range.  Raises [Invalid_argument] if
    the range exceeds the segment. *)

val fault_range :
  t -> segment -> first_item:int -> n_items:int -> on_miss:(int -> unit) -> unit
(** Like {!scan_range}, but calls [on_miss page_id] for every touched
    page that was not resident — the hook where a real backend performs
    the physical read.  Misses are reported in LRU-decision order.
    Raises [Invalid_argument] if the range exceeds the segment. *)

type stats = { accesses : int; hits : int; misses : int; evictions : int }

val stats : t -> stats
val reset_stats : t -> unit

val reset : t -> unit
(** {!reset_stats} plus dropping every resident page: the pool becomes
    cold (the next access to any page is a miss) while keeping its
    segment allocations.  Benches use this to re-measure miss counts
    without rebuilding a store. *)

val hit_ratio : t -> float
(** [hits / accesses]; [0.] before any access. *)

val resident_pages : t -> int
