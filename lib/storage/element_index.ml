open Sjos_xml

type columns = Cols.t = {
  ids : int array;
  starts : int array;
  ends : int array;
  levels : int array;
}

type t = {
  doc : Document.t;
  by_tag : (string, Node.t array) Hashtbl.t;  (* immutable after [build] *)
  (* (tag, attr) -> value -> sorted nodes; built lazily *)
  by_attr : (string * string, (string, Node.t array) Hashtbl.t) Hashtbl.t;
  (* flat per-tag columns mirroring [by_tag]; built lazily *)
  cols_by_tag : (string, Cols.t) Hashtbl.t;
  (* guards the two lazily-filled tables above: a Hashtbl mutated while
     another domain probes it is a real race (resize moves buckets), so
     every access to them takes the lock.  [by_tag] needs none. *)
  lazy_m : Mutex.t;
}

let columns_of_nodes = Cols.of_nodes

let build doc =
  let buckets : (string, Node.t list ref) Hashtbl.t = Hashtbl.create 64 in
  (* Pre-order iteration already yields nodes sorted by start position, so
     each bucket is sorted once the accumulation lists are reversed. *)
  Document.iter
    (fun n ->
      match Hashtbl.find_opt buckets n.Node.tag with
      | Some l -> l := n :: !l
      | None -> Hashtbl.add buckets n.Node.tag (ref [ n ]))
    doc;
  let by_tag = Hashtbl.create (Hashtbl.length buckets) in
  Hashtbl.iter
    (fun tag l -> Hashtbl.replace by_tag tag (Array.of_list (List.rev !l)))
    buckets;
  {
    doc;
    by_tag;
    by_attr = Hashtbl.create 8;
    cols_by_tag = Hashtbl.create 16;
    lazy_m = Mutex.create ();
  }

let lookup t tag =
  match Hashtbl.find_opt t.by_tag tag with Some a -> a | None -> [||]

let cols t tag =
  Mutex.lock t.lazy_m;
  let c =
    match Hashtbl.find_opt t.cols_by_tag tag with
    | Some c -> c
    | None ->
        let c =
          match Hashtbl.find_opt t.by_tag tag with
          | None -> Cols.empty
          | Some nodes -> Cols.of_nodes nodes
        in
        Hashtbl.replace t.cols_by_tag tag c;
        c
  in
  Mutex.unlock t.lazy_m;
  c

let columns = cols

let lookup_attr t ~tag ~attr ~value =
  Mutex.lock t.lazy_m;
  let table =
    match Hashtbl.find_opt t.by_attr (tag, attr) with
    | Some table -> table
    | None ->
        let buckets : (string, Node.t list ref) Hashtbl.t = Hashtbl.create 16 in
        Array.iter
          (fun n ->
            match Node.attr n attr with
            | Some v -> (
                match Hashtbl.find_opt buckets v with
                | Some l -> l := n :: !l
                | None -> Hashtbl.add buckets v (ref [ n ]))
            | None -> ())
          (lookup t tag);
        let table = Hashtbl.create (Hashtbl.length buckets) in
        Hashtbl.iter
          (fun v l -> Hashtbl.replace table v (Array.of_list (List.rev !l)))
          buckets;
        Hashtbl.replace t.by_attr (tag, attr) table;
        table
  in
  let r =
    match Hashtbl.find_opt table value with Some a -> a | None -> [||]
  in
  Mutex.unlock t.lazy_m;
  r

let warm t =
  Hashtbl.iter (fun tag _ -> ignore (cols t tag)) t.by_tag

let cardinality t tag = Array.length (lookup t tag)

let tags t =
  Hashtbl.fold (fun tag _ acc -> tag :: acc) t.by_tag [] |> List.sort compare

let document t = t.doc
let total_nodes t = Document.size t.doc
