(* LRU implemented with an intrusive doubly-linked list over page cells plus
   a hash table from page id to cell. *)

type stats = { accesses : int; hits : int; misses : int; evictions : int }

type cell = {
  page : int;
  mutable prev : cell option;
  mutable next : cell option;
}

type t = {
  page_size : int;
  pool_pages : int;
  table : (int, cell) Hashtbl.t;
  mutable head : cell option;  (* most recently used *)
  mutable tail : cell option;  (* least recently used *)
  mutable resident : int;
  mutable next_page : int;  (* page-id allocator *)
  mutable accesses : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type segment = { first_page : int; items : int }

let create ?(page_size = 256) ~pool_pages () =
  if page_size < 1 || pool_pages < 1 then
    invalid_arg "Pager.create: sizes must be positive";
  {
    page_size;
    pool_pages;
    table = Hashtbl.create (4 * pool_pages);
    head = None;
    tail = None;
    resident = 0;
    next_page = 0;
    accesses = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let page_size t = t.page_size

let unlink t cell =
  (match cell.prev with
  | Some p -> p.next <- cell.next
  | None -> t.head <- cell.next);
  (match cell.next with
  | Some n -> n.prev <- cell.prev
  | None -> t.tail <- cell.prev);
  cell.prev <- None;
  cell.next <- None

let push_front t cell =
  cell.next <- t.head;
  cell.prev <- None;
  (match t.head with Some h -> h.prev <- Some cell | None -> t.tail <- Some cell);
  t.head <- Some cell

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some lru ->
      unlink t lru;
      Hashtbl.remove t.table lru.page;
      t.resident <- t.resident - 1;
      t.evictions <- t.evictions + 1

(* LRU bookkeeping only — no work accounting.  Returns whether the page
   was resident (a hit).  Callers charge [Work.page_touches] themselves,
   which lets the batch entry points below fetch the calling domain's
   accumulator once per call instead of once per page (the Domain.DLS
   read used to sit on the per-touch path). *)
let touch_cell t page =
  t.accesses <- t.accesses + 1;
  match Hashtbl.find_opt t.table page with
  | Some cell ->
      t.hits <- t.hits + 1;
      unlink t cell;
      push_front t cell;
      true
  | None ->
      t.misses <- t.misses + 1;
      if t.resident >= t.pool_pages then evict_lru t;
      let cell = { page; prev = None; next = None } in
      Hashtbl.replace t.table page cell;
      push_front t cell;
      t.resident <- t.resident + 1;
      false

let charge_touches n =
  let w = Sjos_obs.Work.current () in
  w.Sjos_obs.Work.page_touches <- w.Sjos_obs.Work.page_touches + n

let touch t page =
  charge_touches 1;
  ignore (touch_cell t page)

let pages_for t items = max 1 ((items + t.page_size - 1) / t.page_size)

let allocate t ~items =
  if items < 0 then invalid_arg "Pager.allocate: negative size";
  let seg = { first_page = t.next_page; items } in
  t.next_page <- t.next_page + pages_for t items;
  seg

let segment_pages t seg = pages_for t seg.items
let segment_base seg = seg.first_page
let segment_items seg = seg.items

let scan t seg =
  let p0 = seg.first_page and p1 = seg.first_page + pages_for t seg.items - 1 in
  charge_touches (p1 - p0 + 1);
  for p = p0 to p1 do
    ignore (touch_cell t p)
  done

let page_span t seg ~first_item ~n_items =
  if first_item < 0 || n_items < 0 || first_item + n_items > seg.items then
    invalid_arg "Pager.scan_range: range outside segment";
  let p0 = seg.first_page + (first_item / t.page_size) in
  let p1 = seg.first_page + ((first_item + n_items - 1) / t.page_size) in
  (p0, p1)

let scan_range t seg ~first_item ~n_items =
  if n_items > 0 then begin
    let p0, p1 = page_span t seg ~first_item ~n_items in
    charge_touches (p1 - p0 + 1);
    for p = p0 to p1 do
      ignore (touch_cell t p)
    done
  end

let fault_range t seg ~first_item ~n_items ~on_miss =
  if n_items > 0 then begin
    let p0, p1 = page_span t seg ~first_item ~n_items in
    charge_touches (p1 - p0 + 1);
    for p = p0 to p1 do
      if not (touch_cell t p) then on_miss p
    done
  end

let stats t : stats =
  { accesses = t.accesses; hits = t.hits; misses = t.misses; evictions = t.evictions }

let reset_stats t =
  t.accesses <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0

(* Drop every resident page and zero the counters: the next access to
   any page is a cold miss, as if the pool had just been created — but
   without forgetting segment allocations, so benches can re-measure
   the same segments against a cold pool. *)
let reset t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None;
  t.resident <- 0;
  reset_stats t

let hit_ratio t =
  if t.accesses = 0 then 0.0 else float_of_int t.hits /. float_of_int t.accesses

let resident_pages t = t.resident
