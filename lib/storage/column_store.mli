(** Backend-polymorphic column storage for candidate lists.

    Every query reads its per-tag candidate columns ({!Cols.t}) through
    this one API.  Two backends implement it:

    - {b Mem} — today's behavior: the element index's cached flat
      arrays, no page accounting.  The default.
    - {b Disk} — an out-of-core store.  At creation the per-tag
      [(id, start, end, level)] columns are written to a binary page
      file ([columns.bin]: 8-byte little-endian ints, each column a
      page-aligned segment, zero-padded).  Reads go page-at-a-time
      through the LRU {!Pager}: a pool miss performs a physical
      [seek]+[read] of that page and decodes it into the tag's buffer
      frames.  Candidate sets are {e lazily materialized} — a query
      faults in only the tags, columns and page ranges it actually
      touches, which is what lets the skip-ahead join kernels turn
      skipped input runs into avoided page reads.

    Correctness is backend-independent by construction: the disk file is
    written from the same index the Mem backend serves, and decode is
    idempotent (a page re-read after eviction carries identical bytes),
    so outputs and all work counters except [page_touches]/IO statistics
    are bit-identical across backends — the differential property
    [test/test_store.ml] locks down.

    Thread-safety: the entire fault path (pager LRU state, read buffer,
    channel position, frame allocation) runs under one per-store mutex;
    decoded frame slots are only ever rewritten with the value they
    already hold.  Safe under any [SJOS_DOMAINS]. *)

open Sjos_xml

(** {1 Configuration} *)

type backend = Mem | Disk

type config = {
  backend : backend;
  page_size : int;  (** items (8-byte ints) per page *)
  pool_pages : int;  (** resident pages in the LRU pool *)
  dir : string option;
      (** where the Disk files live; [None] allocates a fresh temp
          directory that is removed at process exit *)
}

val default_page_size : int
(** 1024 items = 8 KiB pages. *)

val default_pool_pages : int
(** 256 pages = 2 MiB pool. *)

val mem : config
(** The Mem backend (page/pool fields are carried but unused). *)

val disk : ?page_size:int -> ?pool_pages:int -> ?dir:string -> unit -> config
(** A Disk configuration.  Raises [Invalid_argument] on non-positive
    sizes. *)

val backend_of_string : string -> (backend, string) result
val backend_name : backend -> string

val config_of_env : unit -> config
(** The process-wide default: [SJOS_STORAGE=mem|disk] selects the
    backend (mem when unset or unparsable), [SJOS_PAGE_SIZE] and
    [SJOS_POOL_PAGES] tune the pool. *)

val config_equal : config -> config -> bool
val config_to_json : config -> Sjos_obs.Json.t
val pp_config : config Fmt.t

(** {1 Stores} *)

type t

exception Io_error of { path : string; reason : string }
(** A physical read of the column data file failed: the file has gone
    missing since load, or is truncated/corrupt.  Raised from the fault
    path; {!Sjos_guard.Error.of_exn} maps it to [Corrupt_input], so CLI
    and server boundaries report it structurally (exit code 7) instead
    of leaking a [Sys_error]. *)

val create : ?config:config -> Element_index.t -> t
(** [create ~config index] — for [Disk], writes the column file from the
    index's candidate lists (load-time cost, proportional to document
    size).  The read channel is opened lazily on the first page fault;
    a data file that disappears or is damaged between load and first
    read raises {!Io_error} at fault time. *)

val index : t -> Element_index.t
val document : t -> Document.t
val config : t -> config
val is_disk : t -> bool

val io_stats : t -> Pager.stats option
(** The buffer pool's access/hit/miss/eviction counters ([None] for
    Mem).  Misses are physical page reads. *)

val reset_io : t -> unit
(** Cold-start the pool ({!Pager.reset}): statistics zeroed, every page
    non-resident.  No-op for Mem. *)

val data_file : t -> string option
val pool_bytes : t -> int option
val total_column_bytes : t -> int option

val dispose : t -> unit
(** Close and delete the Disk files (no-op for Mem).  Idempotent:
    disposing an already disposed store does nothing.  Any later fault
    raises [Invalid_argument].  Stores in auto-created temp directories
    are also disposed at process exit, through
    [Sjos_obs.Lifecycle] stage [`Dispose] — deterministically before
    the default domain pool's [`Shutdown] teardown. *)

(** {1 Materializing reads}

    These return fully resident columns.  On Disk they charge the full
    sequential scan of every column segment they cover — this is the
    full-scan baseline the lazy leaves are measured against. *)

val cols : t -> string -> Cols.t
(** One tag's complete candidate columns. *)

val select : t -> Candidate.spec -> Cols.t
(** Candidate columns for a spec.  On Disk, a predicate spec charges the
    full scan of its tag's segments (a wildcard scans every tag) and
    filters in memory; results are bit-identical to the Mem backend. *)

val select_nodes : t -> Candidate.spec -> Node.t array
(** Node-array counterpart of {!select} for the legacy engine; same
    charging. *)

(** {1 Lazy leaves}

    A leaf is a handle on one tag's on-disk columns that faults pages in
    on demand.  The join kernels drive it range-by-range: group metadata
    ([starts]/[ends]/[levels]) for groups actually examined, single
    [starts] probes for gallop skip-ahead, and [ids] only for rows that
    reach the output.  Reading a frame slot is only valid after an
    [ensure_*] covering it. *)

type leaf

val leaf : t -> Candidate.spec -> leaf option
(** [Some] only on Disk for a pure-tag spec (no attribute/text
    predicate) of a known tag; callers fall back to {!select}
    otherwise. *)

val leaf_length : leaf -> int
(** Number of candidate rows — answered from the catalog, no IO. *)

val leaf_cols : leaf -> Cols.t
(** The tag's buffer frames.  Slots are meaningful only after an
    [ensure_*] call covering them; do not mutate. *)

val leaf_tag : leaf -> string

val ensure_probe : leaf -> int -> unit
(** Fault in [starts.(i)] — one page touch; the gallop probe. *)

val ensure_meta : leaf -> int -> int -> unit
(** Fault in [starts]/[ends]/[levels] for item range [\[lo, hi)]
    (clamped to the leaf). *)

val ensure_ids : leaf -> int -> int -> unit
(** Fault in [ids] for item range [\[lo, hi)] (clamped). *)

val force : leaf -> Cols.t
(** Fault in everything; the result is fully resident. *)
