type factors = {
  f_index : float;
  f_sort : float;
  f_io : float;
  f_stack : float;
}

let default = { f_index = 1.0; f_sort = 2.0; f_io = 10.0; f_stack = 1.0 }

let make ?(f_index = default.f_index) ?(f_sort = default.f_sort)
    ?(f_io = default.f_io) ?(f_stack = default.f_stack) () =
  if f_index < 0. || f_sort < 0. || f_io < 0. || f_stack < 0. then
    invalid_arg "Cost_model.make: negative factor";
  { f_index; f_sort; f_io; f_stack }

let index_access f n = f.f_index *. n

let sort f n =
  if n <= 1.0 then 0.0 else f.f_sort *. n *. (Float.log n /. Float.log 2.0)

let stack_tree_anc f ~anc ~output =
  (2.0 *. output *. f.f_io) +. (2.0 *. anc *. f.f_stack)

let stack_tree_desc f ~anc = 2.0 *. anc *. f.f_stack

let twig f ~candidates ~path_solutions =
  (f.f_index *. candidates)
  +. (2.0 *. candidates *. f.f_stack)
  +. (2.0 *. path_solutions *. f.f_io)

let ground_io ?(per_miss = default.f_io) f ~page_misses ~io_items =
  if page_misses < 0 || io_items < 0 then
    invalid_arg "Cost_model.ground_io: negative counter";
  if per_miss < 0. then invalid_arg "Cost_model.ground_io: negative per_miss";
  if page_misses = 0 || io_items = 0 then f
  else
    {
      f with
      f_io = per_miss *. float_of_int page_misses /. float_of_int io_items;
    }

let pp_factors ppf f =
  Fmt.pf ppf "f_I=%g f_s=%g f_IO=%g f_st=%g" f.f_index f.f_sort f.f_io
    f.f_stack
