(** The paper's cost model (§2.2.2).

    Four machine-dependent factors normalize the cost of the physical
    operations so they can be compared and added:

    - index access of [n] items costs [f_index * n];
    - sorting [n] items costs [n * log2 n * f_sort];
    - Stack-Tree-Anc joining ancestor input [A] with output [AB] costs
      [2 * |AB| * f_io + 2 * |A| * f_stack] (the output must be buffered in
      the ancestor's inherit-lists, hence the IO term);
    - Stack-Tree-Desc costs [2 * |A| * f_stack] (fully streaming).

    Cardinalities are floats because they usually come from the
    estimator. *)

type factors = {
  f_index : float;  (** per item retrieved through an index *)
  f_sort : float;  (** per item·log2(item) sorted *)
  f_io : float;  (** per item of buffered intermediate result *)
  f_stack : float;  (** per in-memory stack operation *)
}

val default : factors
(** Factors calibrated so that cost units roughly track the executor's
    operation counts: [f_index = 1], [f_sort = 2], [f_io = 10],
    [f_stack = 1].  Disk IO dominates, as on the paper's hardware. *)

val make :
  ?f_index:float -> ?f_sort:float -> ?f_io:float -> ?f_stack:float -> unit ->
  factors
(** Build factors, defaulting each field to {!default}'s value.  Raises
    [Invalid_argument] on negative factors. *)

val index_access : factors -> float -> float
(** [index_access f n] — cost of retrieving [n] items. *)

val sort : factors -> float -> float
(** [sort f n] — cost of sorting [n] items ([0] for [n <= 1]). *)

val stack_tree_anc : factors -> anc:float -> output:float -> float
(** [stack_tree_anc f ~anc ~output] — Stack-Tree-Anc join cost. *)

val stack_tree_desc : factors -> anc:float -> float
(** [stack_tree_desc f ~anc] — Stack-Tree-Desc join cost. *)

val twig : factors -> candidates:float -> path_solutions:float -> float
(** [twig f ~candidates ~path_solutions] — cost of one holistic
    TwigStack pass over the whole pattern: retrieving every candidate
    stream once ([f_index * candidates]), pushing/popping each streamed
    element through the linked stacks ([2 * candidates * f_stack]), and
    buffering every root-to-leaf path solution for the final prefix
    merge ([2 * path_solutions * f_io] — the same per-buffered-item IO
    weight as Stack-Tree-Anc, so {!ground_io} recalibrates both
    formulas from the same measured run). *)

val ground_io :
  ?per_miss:float -> factors -> page_misses:int -> io_items:int -> factors
(** [ground_io f ~page_misses ~io_items] recalibrates the abstract
    [f_io] factor from a measured run on the Disk column store: if
    buffering [io_items] intermediate items caused [page_misses]
    physical page reads (see {!Sjos_storage.Column_store.io_stats}),
    one buffered item costs [per_miss * page_misses / io_items]
    (default [per_miss] = {!default}'s [f_io], i.e. one miss keeps the
    default per-page weight).  Returns [f] unchanged when either
    counter is zero — no measurement, no recalibration.  Raises
    [Invalid_argument] on negative inputs. *)

val pp_factors : factors Fmt.t
