(* Perf-history store and regression gate.

   Layout (after nim-lang/ci_bench and the hxhx M14 harness): each bench
   run appends one immutable datapoint file

     <dir>/<bench>-<timestamp>.json      (e.g. results/perf-1723111230.json)

   and rewrites <dir>/<bench>-latest.json with the same content.  The
   gate never reads latest.json as history — it is a convenience pointer
   for humans and dashboards; comparisons use the two newest timestamped
   datapoints, so the store stays append-only and a re-run can never
   erase the baseline it is judged against. *)

let schema_version = 1

type entry = {
  entry_id : string;
  work : Work.t;
  allocated_bytes : float;
  seconds : float;
}

type datapoint = {
  bench : string;
  timestamp : int;
  meta : (string * Json.t) list;
  entries : entry list;
}

let entry_to_json e =
  Json.Obj
    [
      ("id", Json.Str e.entry_id);
      ("work", Work.to_json e.work);
      ("score", Json.Int (Work.score e.work));
      ("allocated_bytes", Json.Float e.allocated_bytes);
      ("seconds", Json.Float e.seconds);
    ]

let to_json d =
  Json.Obj
    [
      ("schema", Json.Int schema_version);
      ("bench", Json.Str d.bench);
      ("timestamp", Json.Int d.timestamp);
      ("meta", Json.Obj d.meta);
      ("entries", Json.List (List.map entry_to_json d.entries));
    ]

let entry_of_json j =
  let ( let* ) = Result.bind in
  let* entry_id =
    match Json.member "id" j with
    | Some (Json.Str s) -> Ok s
    | _ -> Error "entry is missing a string \"id\""
  in
  let* work =
    match Json.member "work" j with
    | Some w -> Work.of_json w
    | None -> Error (Printf.sprintf "entry %S has no \"work\" object" entry_id)
  in
  let num name default =
    match Option.bind (Json.member name j) Json.number with
    | Some f -> f
    | None -> default
  in
  Ok
    {
      entry_id;
      work;
      allocated_bytes = num "allocated_bytes" 0.0;
      seconds = num "seconds" 0.0;
    }

let of_json j =
  let ( let* ) = Result.bind in
  let* () =
    match Option.bind (Json.member "schema" j) Json.number with
    | Some v when int_of_float v = schema_version -> Ok ()
    | Some v -> Error (Printf.sprintf "unsupported schema version %g" v)
    | None -> Error "datapoint has no \"schema\" field"
  in
  let* bench =
    match Json.member "bench" j with
    | Some (Json.Str s) -> Ok s
    | _ -> Error "datapoint has no string \"bench\" field"
  in
  let* timestamp =
    match Json.member "timestamp" j with
    | Some (Json.Int t) -> Ok t
    | _ -> Error "datapoint has no integer \"timestamp\" field"
  in
  let meta =
    match Json.member "meta" j with Some (Json.Obj kv) -> kv | _ -> []
  in
  let* entries =
    match Json.member "entries" j with
    | Some (Json.List es) ->
        List.fold_left
          (fun acc e ->
            let* acc = acc in
            let* e = entry_of_json e in
            Ok (e :: acc))
          (Ok []) es
        |> Result.map List.rev
    | _ -> Error "datapoint has no \"entries\" list"
  in
  Ok { bench; timestamp; meta; entries }

let of_string s = Result.bind (Json.of_string s) of_json

(* ---------- store ---------- *)

let ensure_dir dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755

let latest_path ~dir ~bench = Filename.concat dir (bench ^ "-latest.json")

let append ~dir d =
  ensure_dir dir;
  (* same-second re-runs get a disambiguating suffix instead of
     clobbering the earlier datapoint *)
  let rec fresh_path n =
    let name =
      if n = 0 then Printf.sprintf "%s-%d.json" d.bench d.timestamp
      else Printf.sprintf "%s-%d-%d.json" d.bench d.timestamp n
    in
    let path = Filename.concat dir name in
    if Sys.file_exists path then fresh_path (n + 1) else path
  in
  let path = fresh_path 0 in
  let json = to_json d in
  Report.write_file path json;
  Report.write_file (latest_path ~dir ~bench:d.bench) json;
  path

(* History files for a bench, oldest first.  latest.json is excluded by
   construction (its basename carries no integer timestamp), and the
   same-second "-N" suffix orders after the unsuffixed file. *)
let history ~dir ~bench =
  if not (Sys.file_exists dir) then []
  else
    let prefix = bench ^ "-" in
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (fun name ->
           if
             String.length name > String.length prefix + 5
             && String.sub name 0 (String.length prefix) = prefix
             && Filename.check_suffix name ".json"
           then
             let stem = Filename.chop_suffix name ".json" in
             let rest =
               String.sub stem (String.length prefix)
                 (String.length stem - String.length prefix)
             in
             let key =
               match String.split_on_char '-' rest with
               | [ ts ] -> Option.map (fun t -> (t, 0)) (int_of_string_opt ts)
               | [ ts; n ] ->
                   Option.bind (int_of_string_opt ts) (fun t ->
                       Option.map (fun n -> (t, n)) (int_of_string_opt n))
               | _ -> None
             in
             Option.map (fun key -> (key, Filename.concat dir name)) key
           else None)
    |> List.sort compare |> List.map snd

let load path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match of_string s with
  | Ok d -> Ok d
  | Error msg -> Error (Printf.sprintf "%s: %s" path msg)

(* ---------- gate ---------- *)

type verdict =
  | Pass of string
  | Bootstrap of string
  | Fail of string list

let default_work_tolerance = 0.01
let default_alloc_tolerance = 0.10

let compare_datapoints ?(work_tolerance = default_work_tolerance)
    ?(alloc_tolerance = default_alloc_tolerance) ~baseline ~current () =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  List.iter
    (fun (base : entry) ->
      match
        List.find_opt (fun e -> e.entry_id = base.entry_id) current.entries
      with
      | None ->
          fail "%s: entry disappeared from the bench (was score %d)"
            base.entry_id (Work.score base.work)
      | Some cur ->
          let bscore = Work.score base.work and cscore = Work.score cur.work in
          let limit =
            float_of_int bscore *. (1.0 +. work_tolerance)
          in
          if float_of_int cscore > limit && cscore > bscore then
            fail
              "%s: work score regressed %d -> %d (+%.2f%%, tolerance %.2f%%)"
              base.entry_id bscore cscore
              (100.0
              *. (float_of_int (cscore - bscore) /. float_of_int (max 1 bscore))
              )
              (100.0 *. work_tolerance);
          if
            base.allocated_bytes > 0.0
            && cur.allocated_bytes
               > base.allocated_bytes *. (1.0 +. alloc_tolerance)
          then
            fail
              "%s: allocation regressed %.0f -> %.0f bytes (+%.1f%%, \
               tolerance %.0f%%)"
              base.entry_id base.allocated_bytes cur.allocated_bytes
              (100.0
              *. ((cur.allocated_bytes /. base.allocated_bytes) -. 1.0))
              (100.0 *. alloc_tolerance))
    baseline.entries;
  match List.rev !failures with
  | [] ->
      Pass
        (Printf.sprintf "%d entries within tolerance of baseline @%d"
           (List.length baseline.entries) baseline.timestamp)
  | fs -> Fail fs

let gate ?work_tolerance ?alloc_tolerance ~dir ~bench () =
  match history ~dir ~bench with
  | [] -> Bootstrap (Printf.sprintf "no %s history under %s yet" bench dir)
  | [ only ] ->
      Bootstrap (Printf.sprintf "single datapoint %s — nothing to compare" only)
  | files -> (
      let rec last2 = function
        | [ a; b ] -> (a, b)
        | _ :: rest -> last2 rest
        | [] -> assert false
      in
      let base_path, cur_path = last2 files in
      match (load base_path, load cur_path) with
      | Error msg, _ | _, Error msg -> Fail [ msg ]
      | Ok baseline, Ok current ->
          compare_datapoints ?work_tolerance ?alloc_tolerance ~baseline
            ~current ())
