let enable_all () =
  Registry.set_enabled true;
  Trace.set_enabled true

let disable_all () =
  Registry.set_enabled false;
  Trace.set_enabled false

let reset_all () =
  Registry.reset ();
  Trace.reset ()

let to_json () =
  Json.Obj [ ("metrics", Registry.to_json ()); ("trace", Trace.to_json ()) ]

let to_string () =
  let metrics = Fmt.str "%a" Registry.pp () in
  let trace = Trace.to_string () in
  match (metrics, trace) with
  | "", "" -> ""
  | m, "" -> m
  | "", t -> t
  | m, t -> m ^ "\n" ^ t

let write_file path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string_pretty json);
      output_char oc '\n')
