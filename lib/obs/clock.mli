(** Monotonic wall-clock timing.

    All optimizer and executor timings go through this module rather than
    [Unix.gettimeofday]: the system clock is not monotonic (NTP steps can
    make intervals negative), while [CLOCK_MONOTONIC] cannot go backwards.
    Backed by the C stub of [bechamel.monotonic_clock]. *)

val now_ns : unit -> int64
(** Nanoseconds since an arbitrary fixed origin; strictly non-decreasing. *)

val elapsed_seconds : since:int64 -> float
(** Seconds elapsed between [since] (a previous [now_ns]) and now. *)

val seconds_of_ns : int64 -> float
(** Convert a nanosecond interval to seconds. *)

val time : (unit -> 'a) -> 'a * float
(** Run a thunk and return its result with the elapsed seconds. *)
