(** Append-only perf-history store and the deterministic regression gate
    built on it.

    Each bench run appends [<dir>/<bench>-<timestamp>.json] and rewrites
    [<dir>/<bench>-latest.json] (a human/dashboard convenience that the
    gate never treats as history).  A datapoint carries one {!entry} per
    benchmarked unit: its deterministic {!Work} counters (the score the
    gate compares), an allocation figure (looser threshold), and
    wall-clock seconds (advisory only — never gated).

    The gate compares the two newest timestamped datapoints: a work-unit
    score above the baseline by more than the tolerance fails, an
    improvement or equality passes, and a store with fewer than two
    datapoints bootstraps (passes with a note).  Because work scores are
    bit-deterministic, CI can run the same bench twice and gate the pair
    — any tolerance-exceeding difference is a real behavior change, not
    noise. *)

val schema_version : int

type entry = {
  entry_id : string;
  work : Work.t;
  allocated_bytes : float;
  seconds : float;  (** advisory; the gate never reads it *)
}

type datapoint = {
  bench : string;  (** store key: ["perf"], ["par"], ... *)
  timestamp : int;  (** unix seconds; ties get a [-N] file suffix *)
  meta : (string * Json.t) list;  (** scale, reps, cores, ... *)
  entries : entry list;
}

val to_json : datapoint -> Json.t
val of_json : Json.t -> (datapoint, string) result
val of_string : string -> (datapoint, string) result

val append : dir:string -> datapoint -> string
(** Write the datapoint under [dir] (created if missing), rewrite
    [<bench>-latest.json], and return the timestamped path. *)

val history : dir:string -> bench:string -> string list
(** Timestamped datapoint paths for a bench, oldest first; the [latest]
    pointer is excluded.  An absent directory is an empty history. *)

val load : string -> (datapoint, string) result

type verdict =
  | Pass of string
  | Bootstrap of string  (** fewer than two datapoints; passes *)
  | Fail of string list  (** one message per regressed entry *)

val default_work_tolerance : float
(** 1% — generous, since work scores are bit-deterministic. *)

val default_alloc_tolerance : float
(** 10% — allocation is deterministic only for serial runs. *)

val compare_datapoints :
  ?work_tolerance:float ->
  ?alloc_tolerance:float ->
  baseline:datapoint ->
  current:datapoint ->
  unit ->
  verdict
(** Entry-by-entry comparison (matched by [entry_id]).  An entry present
    in the baseline but missing from the current run fails — a silently
    shrinking bench must not pass as an improvement.  New entries are
    accepted. *)

val gate :
  ?work_tolerance:float ->
  ?alloc_tolerance:float ->
  dir:string ->
  bench:string ->
  unit ->
  verdict
(** {!compare_datapoints} over the two newest datapoints in the store. *)
