(* Thread-safety: instruments are shared across domains, so
   registration, float-bearing updates and snapshots are serialized by a
   single registry mutex, while counters use [int Atomic.t] so the hot
   increment path stays lock-free and allocation-free (immediate ints).
   Uncontended [Mutex.lock] does not allocate either, so the
   single-domain cost of a timer/histogram update is unchanged in
   kind: a branch, a lock word, a few field writes. *)

type counter = { c_name : string; count : int Atomic.t }
type gauge = { g_name : string; mutable value : float }
type timer = { t_name : string; mutable seconds : float; mutable samples : int }

type histogram = {
  h_name : string;
  bounds : float array;  (* upper bounds, ascending; +inf bucket implicit *)
  bucket_counts : int array;  (* length = Array.length bounds + 1 *)
  mutable h_count : int;
  mutable h_sum : float;
}

let on = Atomic.make false
let set_enabled b = Atomic.set on b
let enabled () = Atomic.get on

(* Guards the tables and every non-atomic instrument field. *)
let m = Mutex.create ()

let counters : (string, counter) Hashtbl.t = Hashtbl.create 16
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let timers : (string, timer) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let find_or_add table name make =
  Mutex.lock m;
  let x =
    match Hashtbl.find_opt table name with
    | Some x -> x
    | None ->
        let x = make () in
        Hashtbl.add table name x;
        x
  in
  Mutex.unlock m;
  x

let counter name =
  find_or_add counters name (fun () -> { c_name = name; count = Atomic.make 0 })

let incr c = if Atomic.get on then Atomic.incr c.count
let add c n = if Atomic.get on then ignore (Atomic.fetch_and_add c.count n)
let counter_value c = Atomic.get c.count

let gauge name = find_or_add gauges name (fun () -> { g_name = name; value = 0.0 })

let set_gauge g v =
  if Atomic.get on then begin
    Mutex.lock m;
    g.value <- v;
    Mutex.unlock m
  end

let gauge_value g =
  Mutex.lock m;
  let v = g.value in
  Mutex.unlock m;
  v

let timer name =
  find_or_add timers name (fun () -> { t_name = name; seconds = 0.0; samples = 0 })

let add_seconds t s =
  if Atomic.get on then begin
    Mutex.lock m;
    t.seconds <- t.seconds +. s;
    t.samples <- t.samples + 1;
    Mutex.unlock m
  end

let time t f =
  if not (Atomic.get on) then f ()
  else begin
    let t0 = Clock.now_ns () in
    let record () = add_seconds t (Clock.elapsed_seconds ~since:t0) in
    match f () with
    | r ->
        record ();
        r
    | exception e ->
        record ();
        raise e
  end

let timer_total t =
  Mutex.lock m;
  let v = t.seconds in
  Mutex.unlock m;
  v

let timer_count t =
  Mutex.lock m;
  let v = t.samples in
  Mutex.unlock m;
  v

let default_buckets =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.0; 10.0; 100.0; 1000.0 |]

let histogram ?(buckets = default_buckets) name =
  find_or_add histograms name (fun () ->
      {
        h_name = name;
        bounds = Array.copy buckets;
        bucket_counts = Array.make (Array.length buckets + 1) 0;
        h_count = 0;
        h_sum = 0.0;
      })

let observe h v =
  if Atomic.get on then begin
    let nb = Array.length h.bounds in
    let rec slot i = if i >= nb || v <= h.bounds.(i) then i else slot (i + 1) in
    let i = slot 0 in
    Mutex.lock m;
    h.bucket_counts.(i) <- h.bucket_counts.(i) + 1;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    Mutex.unlock m
  end

let reset () =
  Mutex.lock m;
  Hashtbl.reset counters;
  Hashtbl.reset gauges;
  Hashtbl.reset timers;
  Hashtbl.reset histograms;
  Mutex.unlock m

let sorted_values table =
  Hashtbl.fold (fun _ v acc -> v :: acc) table []

let to_json () =
  let by fst_of l = List.sort (fun a b -> compare (fst_of a) (fst_of b)) l in
  Mutex.lock m;
  let counters_j =
    sorted_values counters
    |> List.map (fun c -> (c.c_name, Json.Int (Atomic.get c.count)))
    |> by fst
  in
  let gauges_j =
    sorted_values gauges |> List.map (fun g -> (g.g_name, Json.Float g.value)) |> by fst
  in
  let timers_j =
    sorted_values timers
    |> List.map (fun t ->
           ( t.t_name,
             Json.Obj [ ("seconds", Json.Float t.seconds); ("count", Json.Int t.samples) ] ))
    |> by fst
  in
  let histograms_j =
    sorted_values histograms
    |> List.map (fun h ->
           let buckets =
             List.init
               (Array.length h.bucket_counts)
               (fun i ->
                 Json.Obj
                   [
                     ( "le",
                       if i < Array.length h.bounds then Json.Float h.bounds.(i)
                       else Json.Str "+inf" );
                     ("count", Json.Int h.bucket_counts.(i));
                   ])
           in
           ( h.h_name,
             Json.Obj
               [
                 ("count", Json.Int h.h_count);
                 ("sum", Json.Float h.h_sum);
                 ("buckets", Json.List buckets);
               ] ))
    |> by fst
  in
  Mutex.unlock m;
  Json.Obj
    [
      ("counters", Json.Obj counters_j);
      ("gauges", Json.Obj gauges_j);
      ("timers", Json.Obj timers_j);
      ("histograms", Json.Obj histograms_j);
    ]

let pp ppf () =
  (* snapshot under the lock, format outside it *)
  Mutex.lock m;
  let cs = List.sort compare (sorted_values counters) in
  let cs = List.map (fun c -> (c.c_name, Atomic.get c.count)) cs in
  let gs =
    List.sort compare (sorted_values gauges)
    |> List.map (fun g -> (g.g_name, g.value))
  in
  let ts =
    List.sort compare (sorted_values timers)
    |> List.map (fun t -> (t.t_name, t.seconds, t.samples))
  in
  let hs =
    List.sort compare (sorted_values histograms)
    |> List.map (fun h -> (h.h_name, h.h_count, h.h_sum))
  in
  Mutex.unlock m;
  let line fmt = Fmt.pf ppf fmt in
  List.iter (fun (name, count) -> line "counter %-40s %d@." name count) cs;
  List.iter (fun (name, value) -> line "gauge   %-40s %g@." name value) gs;
  List.iter
    (fun (name, seconds, samples) ->
      line "timer   %-40s %.6fs over %d@." name seconds samples)
    ts;
  List.iter
    (fun (name, count, sum) -> line "histo   %-40s n=%d sum=%g@." name count sum)
    hs
