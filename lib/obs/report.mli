(** Combined export of everything the observability layer collected:
    the metrics registry snapshot and the span forest, as one JSON
    document or one human-readable text block.  This is what the CLI's
    [--trace] / [--json] flags and the bench harness's [BENCH_*.json]
    writer build on. *)

val enable_all : unit -> unit
(** Turn on both the metrics registry and span tracing. *)

val disable_all : unit -> unit
val reset_all : unit -> unit

val to_json : unit -> Json.t
(** [{"metrics": <Registry.to_json>, "trace": <Trace.to_json>}]. *)

val to_string : unit -> string
(** Registry dump followed by the trace tree; empty string when nothing
    was recorded. *)

val write_file : string -> Json.t -> unit
(** Write a JSON document to a file (pretty-printed, trailing newline). *)
