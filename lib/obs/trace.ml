type span = {
  name : string;
  start_ns : int64;
  mutable end_ns : int64 option;
  mutable attrs : (string * Json.t) list;
  mutable children_rev : span list;
  dummy : bool;
}

let null_span =
  {
    name = "";
    start_ns = 0L;
    end_ns = Some 0L;
    attrs = [];
    children_rev = [];
    dummy = true;
  }

let on = Atomic.make false
let set_enabled b = Atomic.set on b
let enabled () = Atomic.get on

(* Recorded forest: finished roots in reverse order, plus the stack of
   currently-open spans (innermost first).  The state is domain-local:
   span nesting follows each domain's own call stack, so domains that
   trace concurrently each build their own forest instead of corrupting
   a shared one.  [to_json]/[to_string]/[reset] operate on the calling
   domain's forest.

   Every domain's state is additionally registered (once, at first use)
   in a process-global list so the Chrome trace exporter can emit one
   track per domain.  The registration order assigns track ids; the
   driving domain is almost always tid 0. *)
type state = {
  tid : int;
  mutable roots_rev : span list;
  mutable open_stack : span list;
}

let states_m = Mutex.create ()
let all_states : state list ref = ref []
let next_tid = ref 0

let state_key =
  Domain.DLS.new_key (fun () ->
      Mutex.lock states_m;
      let st = { tid = !next_tid; roots_rev = []; open_stack = [] } in
      incr next_tid;
      all_states := st :: !all_states;
      Mutex.unlock states_m;
      st)

let state () = Domain.DLS.get state_key

let reset () =
  let st = state () in
  st.roots_rev <- [];
  st.open_stack <- []

let is_empty () =
  let st = state () in
  st.roots_rev = [] && st.open_stack = []

let begin_span ?(attrs = []) name =
  if not (Atomic.get on) then null_span
  else begin
    let s =
      {
        name;
        start_ns = Clock.now_ns ();
        end_ns = None;
        attrs;
        children_rev = [];
        dummy = false;
      }
    in
    let st = state () in
    (match st.open_stack with
    | parent :: _ -> parent.children_rev <- s :: parent.children_rev
    | [] -> st.roots_rev <- s :: st.roots_rev);
    st.open_stack <- s :: st.open_stack;
    s
  end

let add_attr s key v = if not s.dummy then s.attrs <- s.attrs @ [ (key, v) ]

let end_span ?(attrs = []) s =
  if not s.dummy && s.end_ns = None then begin
    let now = Clock.now_ns () in
    let st = state () in
    (* close any descendants left open, then the span itself *)
    let rec close_to () =
      match st.open_stack with
      | top :: rest ->
          st.open_stack <- rest;
          if top.end_ns = None then top.end_ns <- Some now;
          if top != s then close_to ()
      | [] -> ()
    in
    if List.memq s st.open_stack then close_to () else s.end_ns <- Some now;
    s.attrs <- s.attrs @ attrs
  end

let with_span ?attrs name f =
  if not (Atomic.get on) then f ()
  else begin
    let s = begin_span ?attrs name in
    match f () with
    | r ->
        end_span s;
        r
    | exception e ->
        end_span s;
        raise e
  end

let event ?attrs name =
  if Atomic.get on then end_span (begin_span ?attrs name)

let span_seconds s =
  let finish = match s.end_ns with Some t -> t | None -> Clock.now_ns () in
  Clock.seconds_of_ns (Int64.sub finish s.start_ns)

let rec span_to_json s =
  let fields =
    [ ("name", Json.Str s.name); ("seconds", Json.Float (span_seconds s)) ]
  in
  let fields =
    if s.attrs = [] then fields else fields @ [ ("attrs", Json.Obj s.attrs) ]
  in
  let fields =
    match s.children_rev with
    | [] -> fields
    | kids ->
        fields @ [ ("children", Json.List (List.rev_map span_to_json kids)) ]
  in
  Json.Obj fields

let to_json () = Json.List (List.rev_map span_to_json (state ()).roots_rev)

(* ---------- Chrome trace-event export ----------

   The catapult/Perfetto JSON format: one complete ("X") event per span
   with microsecond timestamps, one track (tid) per domain, plus a
   thread_name metadata record per track.  Timestamps are rebased to the
   earliest recorded span so traces start near zero.  The export walks
   every domain's forest; it is meant to run after the traced work has
   completed (the pool's workers are idle between batches), like the
   CLI's [--trace-out] does. *)

let to_chrome_json () =
  let states =
    Mutex.lock states_m;
    let ss = !all_states in
    Mutex.unlock states_m;
    List.sort (fun a b -> compare a.tid b.tid) ss
  in
  let epoch = ref Int64.max_int in
  let scan_epoch st =
    match List.rev st.roots_rev with
    | [] -> ()
    | first :: _ -> if first.start_ns < !epoch then epoch := first.start_ns
  in
  List.iter scan_epoch states;
  let epoch = if !epoch = Int64.max_int then 0L else !epoch in
  let us_of ns = Int64.to_float (Int64.sub ns epoch) /. 1e3 in
  let events = ref [] in
  let emit_event e = events := e :: !events in
  let rec emit_span tid s =
    let finish =
      match s.end_ns with Some t -> t | None -> Clock.now_ns ()
    in
    let fields =
      [
        ("name", Json.Str s.name);
        ("ph", Json.Str "X");
        ("ts", Json.Float (us_of s.start_ns));
        ("dur", Json.Float (Int64.to_float (Int64.sub finish s.start_ns) /. 1e3));
        ("pid", Json.Int 0);
        ("tid", Json.Int tid);
      ]
    in
    let fields =
      if s.attrs = [] then fields else fields @ [ ("args", Json.Obj s.attrs) ]
    in
    emit_event (Json.Obj fields);
    List.iter (emit_span tid) (List.rev s.children_rev)
  in
  List.iter
    (fun st ->
      if st.roots_rev <> [] || st.open_stack <> [] then begin
        emit_event
          (Json.Obj
             [
               ("name", Json.Str "thread_name");
               ("ph", Json.Str "M");
               ("pid", Json.Int 0);
               ("tid", Json.Int st.tid);
               ( "args",
                 Json.Obj
                   [
                     ( "name",
                       Json.Str
                         (if st.tid = 0 then "main"
                          else Printf.sprintf "domain-%d" st.tid) );
                   ] );
             ]);
        List.iter (emit_span st.tid) (List.rev st.roots_rev)
      end)
    states;
  Json.Obj
    [
      ("traceEvents", Json.List (List.rev !events));
      ("displayTimeUnit", Json.Str "ms");
    ]

let to_string () =
  let buf = Buffer.create 256 in
  let rec emit depth s =
    Buffer.add_string buf (String.make (2 * depth) ' ');
    Buffer.add_string buf s.name;
    Buffer.add_string buf (Printf.sprintf "  %.3f ms" (span_seconds s *. 1e3));
    List.iter
      (fun (k, v) ->
        Buffer.add_string buf (Printf.sprintf "  %s=%s" k (Json.to_string v)))
      s.attrs;
    Buffer.add_char buf '\n';
    List.iter (emit (depth + 1)) (List.rev s.children_rev)
  in
  List.iter (emit 0) (List.rev (state ()).roots_rev);
  Buffer.contents buf
