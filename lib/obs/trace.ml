type span = {
  name : string;
  start_ns : int64;
  mutable end_ns : int64 option;
  mutable attrs : (string * Json.t) list;
  mutable children_rev : span list;
  dummy : bool;
}

let null_span =
  {
    name = "";
    start_ns = 0L;
    end_ns = Some 0L;
    attrs = [];
    children_rev = [];
    dummy = true;
  }

let on = Atomic.make false
let set_enabled b = Atomic.set on b
let enabled () = Atomic.get on

(* Recorded forest: finished roots in reverse order, plus the stack of
   currently-open spans (innermost first).  The state is domain-local:
   span nesting follows each domain's own call stack, so domains that
   trace concurrently each build their own forest instead of corrupting
   a shared one.  [to_json]/[to_string]/[reset] operate on the calling
   domain's forest. *)
type state = { mutable roots_rev : span list; mutable open_stack : span list }

let state_key = Domain.DLS.new_key (fun () -> { roots_rev = []; open_stack = [] })
let state () = Domain.DLS.get state_key

let reset () =
  let st = state () in
  st.roots_rev <- [];
  st.open_stack <- []

let is_empty () =
  let st = state () in
  st.roots_rev = [] && st.open_stack = []

let begin_span ?(attrs = []) name =
  if not (Atomic.get on) then null_span
  else begin
    let s =
      {
        name;
        start_ns = Clock.now_ns ();
        end_ns = None;
        attrs;
        children_rev = [];
        dummy = false;
      }
    in
    let st = state () in
    (match st.open_stack with
    | parent :: _ -> parent.children_rev <- s :: parent.children_rev
    | [] -> st.roots_rev <- s :: st.roots_rev);
    st.open_stack <- s :: st.open_stack;
    s
  end

let add_attr s key v = if not s.dummy then s.attrs <- s.attrs @ [ (key, v) ]

let end_span ?(attrs = []) s =
  if not s.dummy && s.end_ns = None then begin
    let now = Clock.now_ns () in
    let st = state () in
    (* close any descendants left open, then the span itself *)
    let rec close_to () =
      match st.open_stack with
      | top :: rest ->
          st.open_stack <- rest;
          if top.end_ns = None then top.end_ns <- Some now;
          if top != s then close_to ()
      | [] -> ()
    in
    if List.memq s st.open_stack then close_to () else s.end_ns <- Some now;
    s.attrs <- s.attrs @ attrs
  end

let with_span ?attrs name f =
  if not (Atomic.get on) then f ()
  else begin
    let s = begin_span ?attrs name in
    match f () with
    | r ->
        end_span s;
        r
    | exception e ->
        end_span s;
        raise e
  end

let event ?attrs name =
  if Atomic.get on then end_span (begin_span ?attrs name)

let span_seconds s =
  let finish = match s.end_ns with Some t -> t | None -> Clock.now_ns () in
  Clock.seconds_of_ns (Int64.sub finish s.start_ns)

let rec span_to_json s =
  let fields =
    [ ("name", Json.Str s.name); ("seconds", Json.Float (span_seconds s)) ]
  in
  let fields =
    if s.attrs = [] then fields else fields @ [ ("attrs", Json.Obj s.attrs) ]
  in
  let fields =
    match s.children_rev with
    | [] -> fields
    | kids ->
        fields @ [ ("children", Json.List (List.rev_map span_to_json kids)) ]
  in
  Json.Obj fields

let to_json () = Json.List (List.rev_map span_to_json (state ()).roots_rev)

let to_string () =
  let buf = Buffer.create 256 in
  let rec emit depth s =
    Buffer.add_string buf (String.make (2 * depth) ' ');
    Buffer.add_string buf s.name;
    Buffer.add_string buf (Printf.sprintf "  %.3f ms" (span_seconds s *. 1e3));
    List.iter
      (fun (k, v) ->
        Buffer.add_string buf (Printf.sprintf "  %s=%s" k (Json.to_string v)))
      s.attrs;
    Buffer.add_char buf '\n';
    List.iter (emit (depth + 1)) (List.rev s.children_rev)
  in
  List.iter (emit 0) (List.rev (state ()).roots_rev);
  Buffer.contents buf
