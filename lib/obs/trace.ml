type span = {
  name : string;
  start_ns : int64;
  mutable end_ns : int64 option;
  mutable attrs : (string * Json.t) list;
  mutable children_rev : span list;
  dummy : bool;
}

let null_span =
  {
    name = "";
    start_ns = 0L;
    end_ns = Some 0L;
    attrs = [];
    children_rev = [];
    dummy = true;
  }

let on = ref false
let set_enabled b = on := b
let enabled () = !on

(* Recorded forest: finished roots in reverse order, plus the stack of
   currently-open spans (innermost first). *)
let roots_rev : span list ref = ref []
let open_stack : span list ref = ref []

let reset () =
  roots_rev := [];
  open_stack := []

let is_empty () = !roots_rev = [] && !open_stack = []

let begin_span ?(attrs = []) name =
  if not !on then null_span
  else begin
    let s =
      {
        name;
        start_ns = Clock.now_ns ();
        end_ns = None;
        attrs;
        children_rev = [];
        dummy = false;
      }
    in
    (match !open_stack with
    | parent :: _ -> parent.children_rev <- s :: parent.children_rev
    | [] -> roots_rev := s :: !roots_rev);
    open_stack := s :: !open_stack;
    s
  end

let add_attr s key v = if not s.dummy then s.attrs <- s.attrs @ [ (key, v) ]

let end_span ?(attrs = []) s =
  if not s.dummy && s.end_ns = None then begin
    let now = Clock.now_ns () in
    (* close any descendants left open, then the span itself *)
    let rec close_to () =
      match !open_stack with
      | top :: rest ->
          open_stack := rest;
          if top.end_ns = None then top.end_ns <- Some now;
          if top != s then close_to ()
      | [] -> ()
    in
    if List.memq s !open_stack then close_to () else s.end_ns <- Some now;
    s.attrs <- s.attrs @ attrs
  end

let with_span ?attrs name f =
  if not !on then f ()
  else begin
    let s = begin_span ?attrs name in
    match f () with
    | r ->
        end_span s;
        r
    | exception e ->
        end_span s;
        raise e
  end

let event ?attrs name =
  if !on then end_span (begin_span ?attrs name)

let span_seconds s =
  let finish = match s.end_ns with Some t -> t | None -> Clock.now_ns () in
  Clock.seconds_of_ns (Int64.sub finish s.start_ns)

let rec span_to_json s =
  let fields =
    [ ("name", Json.Str s.name); ("seconds", Json.Float (span_seconds s)) ]
  in
  let fields =
    if s.attrs = [] then fields else fields @ [ ("attrs", Json.Obj s.attrs) ]
  in
  let fields =
    match s.children_rev with
    | [] -> fields
    | kids ->
        fields @ [ ("children", Json.List (List.rev_map span_to_json kids)) ]
  in
  Json.Obj fields

let to_json () = Json.List (List.rev_map span_to_json !roots_rev)

let to_string () =
  let buf = Buffer.create 256 in
  let rec emit depth s =
    Buffer.add_string buf (String.make (2 * depth) ' ');
    Buffer.add_string buf s.name;
    Buffer.add_string buf (Printf.sprintf "  %.3f ms" (span_seconds s *. 1e3));
    List.iter
      (fun (k, v) ->
        Buffer.add_string buf (Printf.sprintf "  %s=%s" k (Json.to_string v)))
      s.attrs;
    Buffer.add_char buf '\n';
    List.iter (emit (depth + 1)) (List.rev s.children_rev)
  in
  List.iter (emit 0) (List.rev !roots_rev);
  Buffer.contents buf
