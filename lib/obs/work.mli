(** Deterministic work accounting: machine-independent counters whose
    totals are bit-identical for a given query workload regardless of
    wall-clock noise, domain count, or scheduling.

    This is the currency the perf-history CI gate trades in.  Wall-clock
    seconds on a shared CI box swing by 2-3x; the number of containment
    comparisons a join performs, tuples it emits, candidate rows it
    scans, statuses the optimizer expands and pages the pager touches do
    not.  Every counter is {e partition-invariant}: running the same
    work sharded across N domains charges exactly the same totals as the
    serial loop (the kernels' drain accounting guarantees this for the
    sharded Stack-Tree merge, and {!Sjos_par.Pool.run} merges each
    task's delta into the caller at the barrier).

    Counters are always on — like {!Effort} and the executor's
    {!Metrics}, they are plain mutable integers owned by the calling
    domain, so charging work costs one field write and determinism can
    never depend on whether observability was enabled. *)

type t = {
  mutable comparisons : int;
      (** ancestor-stack entries examined per descendant visit in the
          Stack-Tree merge — identical for the columnar and legacy
          kernels, and across any sharding *)
  mutable tuples_emitted : int;  (** join output tuples *)
  mutable items_skipped : int;
      (** input items skip-ahead jumped over (columnar kernels only) *)
  mutable candidates_scanned : int;  (** candidate rows produced by scans *)
  mutable stack_ops : int;  (** Stack-Tree push+pop operations *)
  mutable io_items : int;  (** tuples buffered by Stack-Tree-Anc *)
  mutable sorted_items : int;  (** tuples passed through sorts *)
  mutable expansions : int;  (** optimizer status expansions ({!Effort}) *)
  mutable plans_considered : int;  (** alternative plans costed *)
  mutable page_touches : int;  (** buffer-pool page accesses ({!Pager}) *)
}

val current : unit -> t
(** The calling domain's accumulator.  Hot paths hoist this once and
    mutate fields directly. *)

val reset : unit -> unit
(** Zero the calling domain's accumulator. *)

val zero : unit -> t
val copy : t -> t

val snapshot : unit -> t
(** An immutable copy of the calling domain's current totals. *)

val diff : after:t -> before:t -> t
val merge_into : t -> t -> unit
(** [merge_into dst src] adds [src]'s counts into [dst]. *)

val absorb : t -> unit
(** Add the given counts into the calling domain's accumulator.  The
    domain pool calls this at its barrier with each task's delta. *)

val scoped : (unit -> 'a) -> t * ('a, exn) result
(** Run the thunk against a fresh accumulator, restore the previous one,
    and return the work the thunk charged — even when it raised.  The
    charged work is {e not} added to the outer accumulator; the caller
    decides where it goes ({!absorb}). *)

val fields : t -> (string * int) list
val equal : t -> t -> bool
val is_zero : t -> bool

val score : t -> int
(** The single work-unit figure the perf gate compares: the sum of every
    counter except [items_skipped] and [plans_considered] (skipping is
    avoided work; considered plans are a subset of expansion effort). *)

val core_score : t -> int
(** {!score} minus the IO counters ([io_items], [page_touches]) — the
    storage-independent slice.  The column-store differential tests
    require Mem and Disk runs to agree on this exactly, while the IO
    counters are what the backends are {e supposed} to change. *)

val equal_mod_io : t -> t -> bool
(** Field-wise equality ignoring [io_items] and [page_touches]. *)

val to_json : t -> Json.t
(** Every field plus the derived ["score"]. *)

val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json} (the ["score"] field is ignored). *)

val publish : ?prefix:string -> t -> unit
(** Copy the counters into the metrics registry as [work.comparisons]
    etc. (no-op while the registry is disabled). *)

val pp : t Fmt.t

(** {2 GC deltas}

    Allocation and collection counts ride along with work snapshots in
    bench reports.  They are process-global and deterministic only for
    serial runs of a deterministic program, so the perf gate treats them
    with a looser threshold than work units, and wall-clock stays purely
    advisory. *)

type gc_snapshot = {
  allocated_bytes : float;
  minor_collections : int;
  major_collections : int;
}

val gc_snapshot : unit -> gc_snapshot
val gc_diff : after:gc_snapshot -> before:gc_snapshot -> gc_snapshot
val gc_to_json : gc_snapshot -> Json.t
