(* Deterministic work accounting.

   Each domain owns one plain-mutable-int accumulator (Domain.DLS), so
   the hot-path cost of charging work is a field write — no atomics, no
   locks, no branches on an enablement flag.  Determinism comes from
   what is counted, not from how it is stored: every counter is defined
   so that its total is invariant under any partitioning of the same
   logical work across domains (integer sums are order-independent, and
   the kernels charge partition-invariant quantities — see
   {!Stack_tree}'s drain accounting).  The domain pool merges each
   task's delta into the caller at its barrier ({!Sjos_par.Pool.run}),
   so a snapshot taken on the driving domain sees identical totals at
   any [SJOS_DOMAINS]. *)

type t = {
  mutable comparisons : int;
  mutable tuples_emitted : int;
  mutable items_skipped : int;
  mutable candidates_scanned : int;
  mutable stack_ops : int;
  mutable io_items : int;
  mutable sorted_items : int;
  mutable expansions : int;
  mutable plans_considered : int;
  mutable page_touches : int;
}

let zero () =
  {
    comparisons = 0;
    tuples_emitted = 0;
    items_skipped = 0;
    candidates_scanned = 0;
    stack_ops = 0;
    io_items = 0;
    sorted_items = 0;
    expansions = 0;
    plans_considered = 0;
    page_touches = 0;
  }

(* The calling domain's accumulator lives behind one extra indirection
   so [scoped] can swap a fresh record in and out without touching the
   DLS slot itself. *)
let slot_key = Domain.DLS.new_key (fun () -> ref (zero ()))
let current () = !(Domain.DLS.get slot_key)

let reset () =
  let w = current () in
  w.comparisons <- 0;
  w.tuples_emitted <- 0;
  w.items_skipped <- 0;
  w.candidates_scanned <- 0;
  w.stack_ops <- 0;
  w.sorted_items <- 0;
  w.io_items <- 0;
  w.expansions <- 0;
  w.plans_considered <- 0;
  w.page_touches <- 0

let copy w =
  {
    comparisons = w.comparisons;
    tuples_emitted = w.tuples_emitted;
    items_skipped = w.items_skipped;
    candidates_scanned = w.candidates_scanned;
    stack_ops = w.stack_ops;
    io_items = w.io_items;
    sorted_items = w.sorted_items;
    expansions = w.expansions;
    plans_considered = w.plans_considered;
    page_touches = w.page_touches;
  }

let snapshot () = copy (current ())

let merge_into dst src =
  dst.comparisons <- dst.comparisons + src.comparisons;
  dst.tuples_emitted <- dst.tuples_emitted + src.tuples_emitted;
  dst.items_skipped <- dst.items_skipped + src.items_skipped;
  dst.candidates_scanned <- dst.candidates_scanned + src.candidates_scanned;
  dst.stack_ops <- dst.stack_ops + src.stack_ops;
  dst.io_items <- dst.io_items + src.io_items;
  dst.sorted_items <- dst.sorted_items + src.sorted_items;
  dst.expansions <- dst.expansions + src.expansions;
  dst.plans_considered <- dst.plans_considered + src.plans_considered;
  dst.page_touches <- dst.page_touches + src.page_touches

let absorb src = merge_into (current ()) src

let diff ~after ~before =
  {
    comparisons = after.comparisons - before.comparisons;
    tuples_emitted = after.tuples_emitted - before.tuples_emitted;
    items_skipped = after.items_skipped - before.items_skipped;
    candidates_scanned = after.candidates_scanned - before.candidates_scanned;
    stack_ops = after.stack_ops - before.stack_ops;
    io_items = after.io_items - before.io_items;
    sorted_items = after.sorted_items - before.sorted_items;
    expansions = after.expansions - before.expansions;
    plans_considered = after.plans_considered - before.plans_considered;
    page_touches = after.page_touches - before.page_touches;
  }

let scoped f =
  let slot = Domain.DLS.get slot_key in
  let outer = !slot in
  let fresh = zero () in
  slot := fresh;
  let result = match f () with v -> Ok v | exception e -> Error e in
  slot := outer;
  (fresh, result)

let fields w =
  [
    ("comparisons", w.comparisons);
    ("tuples_emitted", w.tuples_emitted);
    ("items_skipped", w.items_skipped);
    ("candidates_scanned", w.candidates_scanned);
    ("stack_ops", w.stack_ops);
    ("io_items", w.io_items);
    ("sorted_items", w.sorted_items);
    ("expansions", w.expansions);
    ("plans_considered", w.plans_considered);
    ("page_touches", w.page_touches);
  ]

let equal a b = fields a = fields b
let is_zero w = List.for_all (fun (_, v) -> v = 0) (fields w)

(* items_skipped is excluded by design: skip-ahead is work {e avoided},
   and a kernel that skips more while producing the same result must
   never score worse. *)
let score w =
  w.comparisons + w.tuples_emitted + w.candidates_scanned + w.stack_ops
  + w.io_items + w.sorted_items + w.expansions + w.page_touches

(* The storage-independent slice of the score: everything except the IO
   counters ([io_items], [page_touches]), which legitimately differ
   between the Mem and Disk column-store backends (and between lazy and
   forced leaf scans).  The differential tests compare this. *)
let core_score w =
  w.comparisons + w.tuples_emitted + w.candidates_scanned + w.stack_ops
  + w.sorted_items + w.expansions

let equal_mod_io a b =
  let strip w =
    List.filter
      (fun (k, _) -> k <> "io_items" && k <> "page_touches")
      (fields w)
  in
  strip a = strip b

let to_json w =
  Json.Obj
    (List.map (fun (k, v) -> (k, Json.Int v)) (fields w)
    @ [ ("score", Json.Int (score w)) ])

let of_json j =
  let field name =
    match Json.member name j with
    | Some (Json.Int v) -> Ok v
    | Some _ -> Error (Printf.sprintf "work field %S is not an integer" name)
    | None -> Error (Printf.sprintf "work field %S missing" name)
  in
  let ( let* ) = Result.bind in
  let* comparisons = field "comparisons" in
  let* tuples_emitted = field "tuples_emitted" in
  let* items_skipped = field "items_skipped" in
  let* candidates_scanned = field "candidates_scanned" in
  let* stack_ops = field "stack_ops" in
  let* io_items = field "io_items" in
  let* sorted_items = field "sorted_items" in
  let* expansions = field "expansions" in
  let* plans_considered = field "plans_considered" in
  let* page_touches = field "page_touches" in
  Ok
    {
      comparisons;
      tuples_emitted;
      items_skipped;
      candidates_scanned;
      stack_ops;
      io_items;
      sorted_items;
      expansions;
      plans_considered;
      page_touches;
    }

let publish ?(prefix = "work") w =
  if Registry.enabled () then
    List.iter
      (fun (k, v) -> Registry.add (Registry.counter (prefix ^ "." ^ k)) v)
      (fields w)

let pp ppf w =
  List.iter (fun (k, v) -> Fmt.pf ppf "%s=%d " k v) (fields w);
  Fmt.pf ppf "score=%d" (score w)

(* ---------- GC deltas (advisory; per-process, not per-domain) ---------- *)

type gc_snapshot = {
  allocated_bytes : float;
  minor_collections : int;
  major_collections : int;
}

let gc_snapshot () =
  let s = Gc.quick_stat () in
  {
    allocated_bytes = Gc.allocated_bytes ();
    minor_collections = s.Gc.minor_collections;
    major_collections = s.Gc.major_collections;
  }

let gc_diff ~after ~before =
  {
    allocated_bytes = after.allocated_bytes -. before.allocated_bytes;
    minor_collections = after.minor_collections - before.minor_collections;
    major_collections = after.major_collections - before.major_collections;
  }

let gc_to_json g =
  Json.Obj
    [
      ("allocated_bytes", Json.Float g.allocated_bytes);
      ("minor_collections", Json.Int g.minor_collections);
      ("major_collections", Json.Int g.major_collections);
    ]
