(** Lightweight span tracing.

    A span is a named, monotonic-timed interval; spans opened while
    another span is open nest under it, so a run produces a forest of
    timed trees (the optimizer's per-level search spans, the executor's
    per-operator spans).  Arbitrary JSON attributes can be attached at
    open or close time — counters, cardinalities, pruning statistics.

    Tracing is disabled by default: every entry point first checks one
    boolean and returns immediately, so instrumented code paths cost
    nothing unless the user asked for a trace ([--trace] in the CLI).

    The recorded forest is {e domain-local}: spans nest along each
    domain's own call stack, and [to_json]/[to_string]/[reset] act on
    the calling domain's forest.  Work traced on pool worker domains
    therefore does not appear in the driving domain's export. *)

type span

val set_enabled : bool -> unit
val enabled : unit -> bool

val null_span : span
(** The inert span returned while tracing is disabled. *)

val begin_span : ?attrs:(string * Json.t) list -> string -> span
(** Open a span nested under the innermost open span. *)

val end_span : ?attrs:(string * Json.t) list -> span -> unit
(** Close a span, merging any extra attributes.  Closing also closes any
    still-open descendants.  Closing [null_span] is a no-op. *)

val add_attr : span -> string -> Json.t -> unit

val with_span : ?attrs:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** [begin_span]/[end_span] around a thunk, exception-safe. *)

val event : ?attrs:(string * Json.t) list -> string -> unit
(** A zero-duration span, for point-in-time annotations. *)

val reset : unit -> unit
(** Drop all recorded spans (open and finished). *)

val is_empty : unit -> bool
(** No spans have been recorded. *)

val to_json : unit -> Json.t
(** The finished-span forest:
    [[{"name": .., "seconds": .., "attrs": {..}, "children": [..]}, ..]].
    Still-open spans are included with their current elapsed time. *)

val to_string : unit -> string
(** Indented human-readable tree, one span per line with milliseconds. *)

val to_chrome_json : unit -> Json.t
(** The whole process's span forests — every domain that ever traced,
    not just the caller's — as a Chrome trace-event document
    ([{"traceEvents": [..], "displayTimeUnit": "ms"}]) loadable in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}.  Each
    domain gets its own track ([tid]) with a [thread_name] metadata
    record; spans become complete ("X") events with microsecond
    timestamps rebased to the earliest span.  Meant to be called after
    the traced work has finished; still-open spans are exported with
    their current elapsed time. *)
