(** Ordered process-exit hooks.

    [at_exit] runs callbacks in reverse registration order, which makes
    cross-subsystem teardown order an accident of which subsystem
    happened to initialize first: a disk-backed column store swept
    {e after} the domain pool has shut down is fine today, but the
    reverse interleaving (pool teardown waiting on a worker that still
    holds a store open) is the kind of ordering bug that only fires in
    one process in a thousand.

    This module registers {e exactly one} [at_exit] callback, lazily on
    first use, and runs every registered hook in fixed stage order:

    + [`Dispose] — release external resources (close and remove
      on-disk column files, flush caches);
    + [`Shutdown] — stop execution machinery (join domain-pool
      workers).

    Within a stage, hooks run in registration order.  Hooks must not
    raise; a raising hook is caught and ignored so later hooks (and
    later [at_exit] callbacks) still run.  All operations are
    thread-safe. *)

type stage = [ `Dispose | `Shutdown ]

val on_exit : stage -> (unit -> unit) -> unit
(** Register a hook to run at process exit during [stage].  The first
    registration installs the single [at_exit] callback. *)

val run_now : unit -> unit
(** Run all registered hooks immediately (each at most once — hooks
    already run are not run again at exit).  Exposed for tests; normal
    code never calls this. *)

val with_isolated : (unit -> 'a) -> 'a
(** Run [f] against a private, empty hook set: {!on_exit} and {!run_now}
    inside [f] see only hooks registered inside [f], and the global
    hooks are restored afterwards — so a test can exercise ordering
    without firing other subsystems' exit hooks mid-process.  Tests
    only. *)
