(** A process-global metrics registry: named counters, gauges, timers and
    fixed-bucket histograms.

    Instruments are created (or found) by name; recording into them is a
    single branch plus a field write, and becomes a pure no-op when the
    registry is disabled ([set_enabled false], the default), so
    instrumented hot paths pay nothing in production runs that do not ask
    for metrics.

    The registry is deliberately not the source of truth for quantities
    the system's behavior depends on (search-effort counters, executor
    cost accounting keep their own always-on structures); it is the
    aggregation and export layer above them.

    Thread-safety: all operations are safe to call from any domain.
    Counter updates are atomic and lock-free; registration,
    gauge/timer/histogram updates and snapshots are serialized by an
    internal mutex.  No increment is ever lost. *)

type counter
type gauge
type timer
type histogram

val set_enabled : bool -> unit
val enabled : unit -> bool

val counter : string -> counter
(** Find or create; the same name always yields the same instrument. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val timer : string -> timer

val add_seconds : timer -> float -> unit
(** Record one observation of the given duration. *)

val time : timer -> (unit -> 'a) -> 'a
(** Run the thunk, recording its monotonic duration (even when an
    exception escapes). *)

val timer_total : timer -> float
val timer_count : timer -> int

val histogram : ?buckets:float array -> string -> histogram
(** [buckets] are upper bounds of cumulative buckets (a final [+inf]
    bucket is implicit).  Defaults to powers of ten from 1e-6 to 1e3. *)

val observe : histogram -> float -> unit

val reset : unit -> unit
(** Drop every instrument (tests). *)

val to_json : unit -> Json.t
(** Snapshot of every instrument:
    [{"counters": {..}, "gauges": {..},
      "timers": {name: {"seconds": s, "count": n}, ..},
      "histograms": {name: {"count": n, "sum": s, "buckets": [{"le": b, "count": n}..]}, ..}}] *)

val pp : unit Fmt.t
(** Human-readable one-instrument-per-line dump. *)
