type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---------- serialization ---------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.17g" f in
    let shorter = Printf.sprintf "%.12g" f in
    if float_of_string shorter = f then shorter else s

let rec write ~indent level buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s -> escape buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      write_seq ~indent level buf '[' ']' (fun level x -> write ~indent level buf x) items
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      write_seq ~indent level buf '{' '}'
        (fun level (k, v) ->
          escape buf k;
          Buffer.add_string buf (if indent then ": " else ":");
          write ~indent level buf v)
        fields

and write_seq : 'a. indent:bool -> int -> Buffer.t -> char -> char ->
    (int -> 'a -> unit) -> 'a list -> unit =
 fun ~indent level buf opening closing emit items ->
  let pad n = if indent then Buffer.add_string buf ("\n" ^ String.make (2 * n) ' ') in
  Buffer.add_char buf opening;
  List.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char buf ',';
      pad (level + 1);
      emit (level + 1) x)
    items;
  pad level;
  Buffer.add_char buf closing

let to_buffer ~indent t =
  let buf = Buffer.create 256 in
  write ~indent 0 buf t;
  buf

let to_string t = Buffer.contents (to_buffer ~indent:false t)
let to_string_pretty t = Buffer.contents (to_buffer ~indent:true t)
let pp ppf t = Fmt.string ppf (to_string_pretty t)

(* ---------- parsing ---------- *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > n then fail "truncated \\u escape";
                   let hex = String.sub s !pos 4 in
                   let code =
                     try int_of_string ("0x" ^ hex)
                     with _ -> fail "bad \\u escape"
                   in
                   pos := !pos + 4;
                   (* encode the code point as UTF-8 (BMP only) *)
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else if code < 0x800 then begin
                     Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
                   else begin
                     Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char buf
                       (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
               | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
            go ()
        | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number '%s'" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing input";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ---------- accessors ---------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let number = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let equal = ( = )
