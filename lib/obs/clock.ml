let now_ns () = Monotonic_clock.now ()
let seconds_of_ns ns = Int64.to_float ns *. 1e-9
let elapsed_seconds ~since = seconds_of_ns (Int64.sub (now_ns ()) since)

let time f =
  let t0 = now_ns () in
  let r = f () in
  (r, elapsed_seconds ~since:t0)
