type stage = [ `Dispose | `Shutdown ]

type hook = { mutable ran : bool; f : unit -> unit }

let m = Mutex.create ()
let dispose_hooks : hook list ref = ref []
let shutdown_hooks : hook list ref = ref []
let installed = ref false

let run_hook h =
  if not h.ran then begin
    h.ran <- true;
    try h.f () with _ -> ()
  end

let run_all () =
  (* snapshot under the lock, run outside it: a hook may itself touch
     this module (it must not deadlock doing so) *)
  Mutex.lock m;
  let ds = List.rev !dispose_hooks in
  let ss = List.rev !shutdown_hooks in
  Mutex.unlock m;
  List.iter run_hook ds;
  List.iter run_hook ss

let on_exit stage f =
  let h = { ran = false; f } in
  Mutex.lock m;
  (match stage with
  | `Dispose -> dispose_hooks := h :: !dispose_hooks
  | `Shutdown -> shutdown_hooks := h :: !shutdown_hooks);
  if not !installed then begin
    installed := true;
    at_exit run_all
  end;
  Mutex.unlock m

let run_now = run_all

let with_isolated f =
  Mutex.lock m;
  let saved_d = !dispose_hooks and saved_s = !shutdown_hooks in
  dispose_hooks := [];
  shutdown_hooks := [];
  Mutex.unlock m;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock m;
      dispose_hooks := saved_d;
      shutdown_hooks := saved_s;
      Mutex.unlock m)
    f
