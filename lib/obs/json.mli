(** A minimal JSON document type with a serializer and a parser.

    Every machine-readable export in the system — EXPLAIN ANALYZE output,
    optimizer results, metrics snapshots, trace dumps, bench tables — goes
    through this one representation, so that `--json` output from any layer
    has a single, testable round-trip ([to_string] then [of_string]).

    Non-finite floats, which JSON cannot represent, serialize as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) JSON. *)

val to_string_pretty : t -> string
(** Two-space-indented JSON, for humans. *)

val pp : t Fmt.t
(** Pretty form. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; trailing non-whitespace is an error.
    Numbers parse as [Int] when they are integral literals without
    exponent or fraction, [Float] otherwise. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] for missing fields or non-objects. *)

val number : t -> float option
(** The numeric value of an [Int] or [Float]. *)

val equal : t -> t -> bool
(** Structural equality; object fields compare order-sensitively. *)
