(** The multi-tenant query server.

    One [t] owns a {!Sjos_engine.Database.t}, a tenant registry, a
    bounded {!Admission} queue in front of the execution pool, and a
    watcher thread.  Requests arrive as length-prefixed JSON frames
    ({!Wire}); each is handled under {!Sjos_guard.Error.protect}, so the
    wire only ever carries well-formed responses — an engine failure of
    any class becomes [{"ok": false, "error": {...}}], never a dropped
    connection or an escaped exception.

    {2 Protocol}

    Request: [{"op": <op>, "id"?: n, "tenant"?: s, ...}].  Ops:
    - [health] — liveness, drain flag, admission occupancy.
    - [metrics] — the {!Snapshot} shape plus a ["serve"] section.
    - [prepare] — [pattern] (+[xpath], [algorithm]), [name]: parse and
      optimize once, bind [tenant/name] for later [exec].
    - [exec] — [pattern] or prepared [name]; optional [limit],
      [deadline_ms], [include_tuples].  Replies with match count, a
      result digest, timing, cache/degradation provenance.
    - [explain] / [analyze] — plan text / per-operator estimate-vs-actual
      rows for a pattern.

    Responses echo ["id"] and carry ["ok"].  Errors are
    {!Sjos_guard.Error.to_json}; [overloaded] ones include
    [retry_after_ms].

    {2 Lifecycle}

    {!run} accepts until {!initiate_drain} (async-signal-safe: it only
    sets an atomic flag, so it may be called from a SIGTERM handler).
    Draining stops accepting, wakes queued waiters (they shed with
    [overloaded]), lets in-flight requests finish, joins connection
    threads, flushes a final metrics line and removes the socket file.

    The watcher thread polls in-flight connections ~every 25 ms: a
    client that disconnected mid-query gets its budget cancelled, so
    cross-domain kernels abandon the work at their next poll point. *)

type config = {
  max_active : int;  (** concurrent executing queries (default 4) *)
  max_queue : int;  (** waiters beyond that before shedding (default 16) *)
  default_deadline_ms : float option;
      (** deadline applied when neither request nor tenant sets one *)
  watcher_period_s : float;  (** watcher poll period (default 0.025) *)
}

val default_config : config

type t

val create :
  ?config:config ->
  ?tenants:Tenant.registry ->
  ?pool:Sjos_par.Pool.t ->
  Sjos_engine.Database.t ->
  t
(** The watcher thread starts here; {!shutdown} (or a completed {!run})
    stops it. *)

val db : t -> Sjos_engine.Database.t
val tenants : t -> Tenant.registry
val admission : t -> Admission.t

val draining : t -> bool
val initiate_drain : t -> unit
(** Only sets an atomic flag — safe from a signal handler. *)

val handle_request : t -> Sjos_obs.Json.t -> Sjos_obs.Json.t
(** Handle one decoded request (no socket involved) — the full
    admission/quota/execution path.  Never raises. *)

val handle_connection : t -> Unix.file_descr -> unit
(** Serve one connection until EOF, a fatal framing error, or drain.
    Closes [fd] before returning.  Tests drive this directly over a
    socketpair; {!run} spawns one thread per accepted connection. *)

val run : t -> socket_path:string -> unit
(** Bind, listen and accept on a Unix-domain socket until drain
    completes.  Ignores SIGPIPE for the whole process.  Removes a stale
    socket file at bind time and the live one at exit. *)

val shutdown : t -> unit
(** Stop the watcher thread (idempotent).  {!run} calls this on the way
    out; only tests that never call {!run} need it. *)

val response_payload : id:Sjos_obs.Json.t -> Sjos_obs.Json.t -> string
(** Serialize a response for the wire.  A response that would not fit
    in one frame ({!Wire.max_frame_bytes}) is replaced by a structured
    [invalid_request] error (echoing [id]) advising ["limit"] /
    dropping ["include_tuples"] — the size ceiling must never surface
    as an escaped exception or a dropped connection. *)

val result_digest : Sjos_exec.Tuple.t array -> string
(** Order-sensitive 64-bit digest of a result set, as 16 hex digits.
    The bench compares this between served and direct execution —
    equality means bit-identical tuples. *)
