(** Token-bucket rate limiter, one per tenant.

    The bucket holds up to [burst] tokens and refills continuously at
    [rate_per_sec].  Admitting a request takes one token; an empty
    bucket rejects with the time until the next token — the
    [retry_after_ms] hint the wire's [overloaded] error carries.

    Time is passed in explicitly (monotonic nanoseconds) so tests can
    drive the bucket deterministically; production callers use
    {!Sjos_obs.Clock.now_ns}.  Thread-safe. *)

type t

val create : rate_per_sec:float -> burst:float -> t
(** [rate_per_sec <= 0.] builds an unlimited limiter ({!try_take} always
    succeeds).  [burst] is clamped to at least 1 token. *)

val unlimited : unit -> t

val try_take : ?now_ns:int64 -> t -> (unit, float) result
(** Take one token.  [Error retry_after_ms] when the bucket is empty:
    the caller should shed with that hint.  [now_ns] defaults to the
    monotonic clock and must be non-decreasing across calls (a stale
    value is treated as "no time has passed"). *)

val tokens : ?now_ns:int64 -> t -> float
(** Current token count after refill (diagnostic). *)
