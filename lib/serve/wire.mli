(** The serve protocol's framing layer: length-prefixed JSON over a
    stream socket.

    A frame is a 4-byte big-endian payload length followed by that many
    bytes of UTF-8 JSON ({!Sjos_obs.Json}).  The length prefix makes
    request boundaries explicit — no sniffing for balanced braces — and
    lets the server reject oversized payloads {e before} buffering them
    ({!max_frame_bytes}).

    All reads and writes retry on [EINTR] and loop over partial
    transfers.  Nothing here raises on malformed input: a bad frame
    comes back as {!read_result.Bad} so the caller can answer with a
    structured error and decide whether the stream is still usable. *)

val max_frame_bytes : int
(** Hard ceiling on a frame payload (16 MiB).  A peer announcing more is
    assumed broken or hostile; the connection should be closed. *)

type read_result =
  | Frame of Sjos_obs.Json.t  (** a complete, well-formed request *)
  | Eof  (** orderly close before (or at) a frame boundary *)
  | Bad of string
      (** framing or JSON damage — oversized length, short read inside a
          frame, unparsable payload *)

val read_frame : Unix.file_descr -> read_result
(** Block until one full frame (or EOF / damage) has been read. *)

val write_frame : Unix.file_descr -> Sjos_obs.Json.t -> unit
(** Serialize and send one frame.  Raises [Unix.Unix_error] (e.g.
    [EPIPE]) when the peer is gone — callers at the server boundary
    swallow that; the response has nowhere to go.  Raises
    [Invalid_argument] when the serialized payload exceeds
    {!max_frame_bytes}; the server pre-checks sizes with
    {!write_payload} so that can only happen to misbehaving clients. *)

val write_payload : Unix.file_descr -> string -> unit
(** Send one already-serialized frame payload.  Lets the caller check
    [String.length] against {!max_frame_bytes} first (and substitute a
    structured error response) instead of paying for serialization
    twice or letting [Invalid_argument] escape mid-connection. *)

val wait_readable : float -> Unix.file_descr -> [ `Readable | `Timeout ]
(** [wait_readable timeout fd] — [select] with a timeout in seconds, so
    read loops can poll a shutdown flag between frames. *)

val retry_intr : (unit -> 'a) -> 'a
(** Re-run the thunk until it completes without [EINTR]. *)

val peer_closed : Unix.file_descr -> bool
(** True when the peer has half-closed or reset the connection: the
    socket selects readable and a [MSG_PEEK] recv returns 0 (or fails
    with a connection error).  Pipelined request bytes do {e not} count
    as a close.  Never consumes data and never blocks. *)

val str : string -> Sjos_obs.Json.t
val int : int -> Sjos_obs.Json.t

val field : Sjos_obs.Json.t -> string -> Sjos_obs.Json.t option
val string_field : Sjos_obs.Json.t -> string -> string option
val number_field : Sjos_obs.Json.t -> string -> float option
val int_field : Sjos_obs.Json.t -> string -> int option
val bool_field : Sjos_obs.Json.t -> string -> bool option
