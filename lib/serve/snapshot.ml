module Json = Sjos_obs.Json
module Work = Sjos_obs.Work

let fields ?work ?io () =
  [
    ("work", match work with Some w -> Work.to_json w | None -> Json.Null);
    ("io", Option.value io ~default:Json.Null);
    ("gc", Work.gc_to_json (Work.gc_snapshot ()));
    ("registry", Sjos_obs.Registry.to_json ());
  ]

let to_json ?work ?io () = Json.Obj (fields ?work ?io ())
