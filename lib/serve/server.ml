module Json = Sjos_obs.Json
module Registry = Sjos_obs.Registry
module Clock = Sjos_obs.Clock
module Budget = Sjos_guard.Budget
module Error = Sjos_guard.Error
module Database = Sjos_engine.Database
module Query_opts = Sjos_engine.Query_opts
module Optimizer = Sjos_core.Optimizer

type config = {
  max_active : int;
  max_queue : int;
  default_deadline_ms : float option;
  watcher_period_s : float;
}

let default_config =
  {
    max_active = 4;
    max_queue = 16;
    default_deadline_ms = None;
    watcher_period_s = 0.025;
  }

type t = {
  db : Database.t;
  config : config;
  tenants : Tenant.registry;
  adm : Admission.t;
  pool : Sjos_par.Pool.t option;
  draining : bool Atomic.t;
  (* statements bound by [prepare], keyed "<tenant>/<name>" *)
  prepared :
    ( string,
      Sjos_pattern.Pattern.t * Optimizer.algorithm * Optimizer.engine )
    Hashtbl.t;
  m_prepared : Mutex.t;
  (* queries currently executing, so the watcher can cancel budgets whose
     client hung up *)
  mutable inflight : (Unix.file_descr option * Budget.t) list;
  m_inflight : Mutex.t;
  mutable watcher : Thread.t option;
  watcher_stop : bool Atomic.t;
}

let obs_incr name =
  if Registry.enabled () then Registry.incr (Registry.counter name)

let db t = t.db
let tenants t = t.tenants
let admission t = t.adm
let draining t = Atomic.get t.draining
let initiate_drain t = Atomic.set t.draining true

(* ---------- watcher ---------- *)

let watcher_tick t =
  let snapshot =
    Mutex.lock t.m_inflight;
    let l = t.inflight in
    Mutex.unlock t.m_inflight;
    l
  in
  List.iter
    (fun (fd, budget) ->
      match fd with
      | Some fd when Wire.peer_closed fd -> Budget.cancel budget
      | _ -> ())
    snapshot;
  if Registry.enabled () then
    Registry.set_gauge (Registry.gauge "serve.active")
      (float_of_int (Admission.active t.adm));
  (* wake queued waiters so they re-check deadlines and the drain flag
     even when no slot freed up *)
  Admission.notify t.adm

let start_watcher t =
  let th =
    Thread.create
      (fun () ->
        while not (Atomic.get t.watcher_stop) do
          (try watcher_tick t with _ -> ());
          Thread.delay t.config.watcher_period_s
        done)
      ()
  in
  t.watcher <- Some th

let shutdown t =
  if not (Atomic.get t.watcher_stop) then begin
    Atomic.set t.watcher_stop true;
    Option.iter Thread.join t.watcher;
    t.watcher <- None
  end

let create ?(config = default_config) ?tenants ?pool db =
  let tenants =
    match tenants with Some r -> r | None -> Tenant.registry []
  in
  let t =
    {
      db;
      config;
      tenants;
      adm = Admission.create ~max_active:config.max_active
              ~max_queue:config.max_queue;
      pool;
      draining = Atomic.make false;
      prepared = Hashtbl.create 16;
      m_prepared = Mutex.create ();
      inflight = [];
      m_inflight = Mutex.create ();
      watcher = None;
      watcher_stop = Atomic.make false;
    }
  in
  start_watcher t;
  t

let with_inflight t client budget f =
  Mutex.lock t.m_inflight;
  t.inflight <- (client, budget) :: t.inflight;
  Mutex.unlock t.m_inflight;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock t.m_inflight;
      t.inflight <-
        List.filter (fun (_, b) -> not (b == budget)) t.inflight;
      Mutex.unlock t.m_inflight)
    f

(* ---------- digest ---------- *)

(* splitmix64 finalizer folded over every slot of every tuple, order
   sensitive: equal digests mean bit-identical result sets. *)
let result_digest tuples =
  let mix h v =
    let z = Int64.add h (Int64.mul v 0x9E3779B97F4A7C15L) in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
              0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
              0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)
  in
  let h = ref 0x2545F4914F6CDD1DL in
  Array.iter
    (fun tup ->
      Array.iter (fun slot -> h := mix !h (Int64.of_int slot)) tup)
    tuples;
  Printf.sprintf "%016Lx" !h

(* ---------- request parsing helpers ---------- *)

let algorithm_of_string s =
  match String.lowercase_ascii s with
  | "dp" -> Ok Optimizer.Dp
  | "dpp" -> Ok Optimizer.Dpp
  | "dpp-nl" | "dpp'" -> Ok Optimizer.Dpp_no_lookahead
  | "dpap-ld" | "ld" -> Ok Optimizer.Dpap_ld
  | "fp" -> Ok Optimizer.Fp
  | s when String.length s > 8 && String.sub s 0 8 = "dpap-eb:" -> (
      match int_of_string_opt (String.sub s 8 (String.length s - 8)) with
      | Some te when te > 0 -> Ok (Optimizer.Dpap_eb te)
      | _ -> Error "expected dpap-eb:<positive Te>")
  | _ -> Error "expected dp, dpp, dpp-nl, dpap-eb:<Te>, dpap-ld or fp"

let parse_pattern ~xpath s =
  let result =
    if xpath then Result.map fst (Sjos_pattern.Xpath.compile_opt s)
    else Sjos_pattern.Parse.pattern_opt s
  in
  match result with
  | Ok p -> p
  | Error msg -> Error.fail (Error.Parse_error { input = s; message = msg })

let request_algorithm req =
  match Wire.string_field req "algorithm" with
  | None -> Optimizer.Dpp
  | Some s -> (
      match algorithm_of_string s with
      | Ok a -> a
      | Error msg -> Error.fail (Error.Invalid_request msg))

let request_engine req =
  match Wire.string_field req "engine" with
  | None -> Optimizer.Binary
  | Some s -> (
      match Optimizer.engine_of_string s with
      | Some e -> e
      | None ->
          Error.fail
            (Error.Invalid_request "expected engine binary, holistic or auto"))

let stmt_key tenant name = tenant ^ "/" ^ name

(* Either an inline pattern or a previously prepared statement. *)
let resolve_pattern t ~tenant req =
  match Wire.string_field req "name" with
  | Some name -> (
      Mutex.lock t.m_prepared;
      let bound = Hashtbl.find_opt t.prepared (stmt_key tenant name) in
      Mutex.unlock t.m_prepared;
      match bound with
      | Some pae -> pae
      | None ->
          Error.fail
            (Error.Invalid_request
               (Printf.sprintf "no prepared statement %S for tenant %s" name
                  tenant)))
  | None -> (
      match Wire.string_field req "pattern" with
      | Some s ->
          let xpath =
            Option.value (Wire.bool_field req "xpath") ~default:false
          in
          (parse_pattern ~xpath s, request_algorithm req, request_engine req)
      | None ->
          Error.fail
            (Error.Invalid_request "request needs \"pattern\" or \"name\""))

let min_opt a b =
  match (a, b) with
  | Some x, Some y -> Some (Float.min x y)
  | (Some _ as s), None | None, (Some _ as s) -> s
  | None, None -> None

let min_opt_int a b =
  match (a, b) with
  | Some x, Some y -> Some (min x y)
  | (Some _ as s), None | None, (Some _ as s) -> s
  | None, None -> None

let request_budget t (tenant : Tenant.t) req =
  let deadline_ms =
    min_opt
      (Wire.number_field req "deadline_ms")
      (min_opt tenant.quota.deadline_ms t.config.default_deadline_ms)
  in
  let max_tuples =
    min_opt_int (Wire.int_field req "limit") tenant.quota.max_tuples
  in
  (* always pass [cancelled] so the budget is never the [unlimited]
     sentinel: the watcher must be able to cancel it on disconnect *)
  Budget.make ?deadline_ms ?max_tuples ~cancelled:(Atomic.make false) ()

(* Chaos stall: burn the tenant's configured wall time before executing,
   polling the budget so cancellation and deadlines fire mid-stall. *)
let stall budget ms =
  if ms > 0.0 then begin
    let until = Int64.add (Clock.now_ns ()) (Int64.of_float (ms *. 1e6)) in
    let rec loop () =
      Budget.check budget ~during:"execute";
      if Clock.now_ns () < until then begin
        Thread.delay 0.002;
        loop ()
      end
    in
    loop ()
  end

let query_opts t (tenant : Tenant.t) ~algorithm ~engine ~budget =
  Query_opts.make ~algorithm ~engine ~budget ?chaos:tenant.chaos ?pool:t.pool ()

(* ---------- metrics ---------- *)

let io_json t =
  match Sjos_storage.Column_store.io_stats (Database.store t.db) with
  | None -> Json.Null
  | Some s ->
      Json.Obj
        [
          ("accesses", Json.Int s.Sjos_storage.Pager.accesses);
          ("hits", Json.Int s.Sjos_storage.Pager.hits);
          ("misses", Json.Int s.Sjos_storage.Pager.misses);
          ("evictions", Json.Int s.Sjos_storage.Pager.evictions);
        ]

let serve_json t =
  Json.Obj
    [
      ("draining", Json.Bool (Atomic.get t.draining));
      ("active", Json.Int (Admission.active t.adm));
      ("queued", Json.Int (Admission.queued t.adm));
      ("max_active", Json.Int (Admission.max_active t.adm));
      ("max_queue", Json.Int (Admission.max_queue t.adm));
      ( "tenants",
        Json.List (List.map Tenant.to_json (Tenant.known t.tenants)) );
    ]

let metrics_fields t =
  Snapshot.fields ~io:(io_json t) () @ [ ("serve", serve_json t) ]

(* ---------- the ops ---------- *)

let exec_fields prep (run : Database.query_run) ~include_tuples =
  let tuples = run.exec.Sjos_exec.Executor.tuples in
  let base =
    [
      ("fingerprint", Json.Str (Database.prepared_fingerprint prep));
      ("plan_cached", Json.Bool (Database.prepared_from_cache prep));
      ("algorithm", Json.Str (Optimizer.name run.opt.Optimizer.algorithm));
      ( "degraded_from",
        match run.opt.Optimizer.degraded_from with
        | Some a -> Json.Str (Optimizer.name a)
        | None -> Json.Null );
      ("matches", Json.Int (Array.length tuples));
      ("digest", Json.Str (result_digest tuples));
      ("exec_seconds", Json.Float run.exec.Sjos_exec.Executor.seconds);
    ]
  in
  if include_tuples then
    base
    @ [
        ( "tuples",
          Json.List
            (Array.to_list
               (Array.map
                  (fun tup ->
                    Json.List
                      (Array.to_list (Array.map (fun v -> Json.Int v) tup)))
                  tuples)) );
      ]
  else base

let prepare_handle t (tenant : Tenant.t) ~opts pat =
  match Database.prepare_r ~opts t.db pat with
  | Error e -> Error.fail e
  | Ok prep ->
      if Database.prepared_from_cache prep then Tenant.note_cache_hit tenant;
      prep

(* The guarded execution path every real op shares: tenant quota, then a
   bounded execution slot, then [Error.protect] around the work. *)
let admitted t ~client (tenant : Tenant.t) req work =
  match Tenant.admit tenant with
  | Error e -> Error e
  | Ok () ->
      Fun.protect ~finally:(fun () -> Tenant.release tenant) @@ fun () ->
      let budget = request_budget t tenant req in
      let should_abort () =
        if Atomic.get t.draining then
          Some
            (Error.Overloaded
               { reason = "server draining"; retry_after_ms = 1000.0 })
        else
          match Budget.poll budget with
          | Some r ->
              Some (Error.Budget_exhausted { resource = r; during = "admission" })
          | None -> None
      in
      let slot =
        Admission.with_slot t.adm ~should_abort (fun () ->
            obs_incr "serve.admitted";
            with_inflight t client budget (fun () ->
                Error.protect (fun () ->
                    stall budget tenant.quota.stall_ms;
                    work budget)))
      in
      (match slot with
      | Error e -> Error e
      | Ok (Error e) -> Error e
      | Ok (Ok fields) -> Ok fields)

let handle_op t ~client req op =
  let tenant_name =
    Option.value (Wire.string_field req "tenant") ~default:"default"
  in
  let tenant = Tenant.find t.tenants tenant_name in
  let include_tuples =
    Option.value (Wire.bool_field req "include_tuples") ~default:false
  in
  match op with
  | "health" ->
      Ok
        [
          ( "status",
            Json.Str (if Atomic.get t.draining then "draining" else "ok") );
          ("draining", Json.Bool (Atomic.get t.draining));
          ("active", Json.Int (Admission.active t.adm));
          ("queued", Json.Int (Admission.queued t.adm));
        ]
  | "metrics" -> Ok (metrics_fields t)
  | "prepare" ->
      admitted t ~client tenant req (fun budget ->
          let name =
            match Wire.string_field req "name" with
            | Some n -> n
            | None ->
                Error.fail (Error.Invalid_request "prepare needs \"name\"")
          in
          let pattern =
            match Wire.string_field req "pattern" with
            | Some s -> s
            | None ->
                Error.fail (Error.Invalid_request "prepare needs \"pattern\"")
          in
          let xpath =
            Option.value (Wire.bool_field req "xpath") ~default:false
          in
          let pat = parse_pattern ~xpath pattern in
          let algorithm = request_algorithm req in
          let engine = request_engine req in
          let opts = query_opts t tenant ~algorithm ~engine ~budget in
          let prep = prepare_handle t tenant ~opts pat in
          Mutex.lock t.m_prepared;
          Hashtbl.replace t.prepared (stmt_key tenant_name name)
            (pat, algorithm, engine);
          Mutex.unlock t.m_prepared;
          [
            ("name", Json.Str name);
            ("fingerprint", Json.Str (Database.prepared_fingerprint prep));
            ("plan_cached", Json.Bool (Database.prepared_from_cache prep));
          ])
  | "exec" ->
      admitted t ~client tenant req (fun budget ->
          let pat, algorithm, engine = resolve_pattern t ~tenant:tenant_name req in
          let opts = query_opts t tenant ~algorithm ~engine ~budget in
          let prep = prepare_handle t tenant ~opts pat in
          match Database.exec_r prep with
          | Error e -> Error.fail e
          | Ok run -> exec_fields prep run ~include_tuples)
  | "explain" ->
      admitted t ~client tenant req (fun budget ->
          let pat, algorithm, engine = resolve_pattern t ~tenant:tenant_name req in
          let opts = query_opts t tenant ~algorithm ~engine ~budget in
          let prep = prepare_handle t tenant ~opts pat in
          [
            ("fingerprint", Json.Str (Database.prepared_fingerprint prep));
            ("plan", Json.Str (Database.explain_prepared prep));
          ])
  | "analyze" ->
      admitted t ~client tenant req (fun budget ->
          let pat, algorithm, engine = resolve_pattern t ~tenant:tenant_name req in
          let opts = query_opts t tenant ~algorithm ~engine ~budget in
          let prep = prepare_handle t tenant ~opts pat in
          match Database.analyze_prepared_r prep with
          | Error e -> Error.fail e
          | Ok a ->
              [
                ( "matches",
                  Json.Int
                    (Array.length a.Database.exec.Sjos_exec.Executor.tuples) );
                ( "digest",
                  Json.Str
                    (result_digest a.Database.exec.Sjos_exec.Executor.tuples)
                );
                ( "analysis",
                  Sjos_plan.Explain.analysis_to_json pat a.Database.rows );
              ])
  | other ->
      Error (Error.Invalid_request (Printf.sprintf "unknown op %S" other))

let handle_request_fd t ~client req =
  obs_incr "serve.requests";
  let id = match Wire.field req "id" with Some j -> j | None -> Json.Null in
  let outcome =
    (* belt and braces: [admitted] already protects the execution path;
       this catches damage in parsing/op dispatch itself *)
    match
      Error.protect (fun () ->
          match Wire.string_field req "op" with
          | None -> Error (Error.Invalid_request "request needs \"op\"")
          | Some op -> handle_op t ~client req op)
    with
    | Ok r -> r
    | Error e -> Error e
  in
  match outcome with
  | Ok fields -> Json.Obj (("id", id) :: ("ok", Json.Bool true) :: fields)
  | Error e ->
      Json.Obj
        [ ("id", id); ("ok", Json.Bool false); ("error", Error.to_json e) ]

let handle_request t req = handle_request_fd t ~client:None req

(* Serialize before writing: a response bigger than one wire frame
   (e.g. [include_tuples] on a huge result) must come back to the
   client as a structured error, not as [Wire.write_frame]'s
   [Invalid_argument] escaping to the connection loop (which would
   count an escaped exception and drop the connection). *)
let response_payload ~id resp =
  let payload = Json.to_string resp in
  if String.length payload <= Wire.max_frame_bytes then payload
  else begin
    obs_incr "serve.oversized";
    let too_large id =
      Json.to_string
        (Json.Obj
           [
             ("id", id);
             ("ok", Json.Bool false);
             ( "error",
               Error.to_json
                 (Error.Invalid_request
                    (Printf.sprintf
                       "response too large for one frame (%d bytes > %d); \
                        set \"limit\" or drop \"include_tuples\""
                       (String.length payload) Wire.max_frame_bytes)) );
           ])
    in
    let e = too_large id in
    (* an adversarial near-frame-sized "id" could push the error frame
       itself over the ceiling; drop the echo rather than the client *)
    if String.length e <= Wire.max_frame_bytes then e else too_large Json.Null
  end

(* ---------- connections ---------- *)

let handle_connection t fd =
  obs_incr "serve.connections";
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let rec loop () =
    if Atomic.get t.draining then ()
    else
      match Wire.wait_readable 0.1 fd with
      | `Timeout -> loop ()
      | `Readable -> (
          match Wire.read_frame fd with
          | Wire.Eof -> ()
          | Wire.Bad msg ->
              (* the stream is no longer frame-aligned: answer once, close *)
              let resp =
                Json.Obj
                  [
                    ("id", Json.Null);
                    ("ok", Json.Bool false);
                    ( "error",
                      Error.to_json
                        (Error.Invalid_request ("bad frame: " ^ msg)) );
                  ]
              in
              (try Wire.write_frame fd resp with
              | Unix.Unix_error _ -> ())
          | Wire.Frame req -> (
              let resp = handle_request_fd t ~client:(Some fd) req in
              let id =
                match Wire.field req "id" with
                | Some j -> j
                | None -> Json.Null
              in
              match Wire.write_payload fd (response_payload ~id resp) with
              | () -> loop ()
              | exception Unix.Unix_error _ -> ()))
  in
  (try loop () with
  | Unix.Unix_error _ -> ()
  | e ->
      (* must be unreachable: every op runs under [Error.protect] *)
      obs_incr "serve.escaped";
      Fmt.epr "sjos serve: escaped exception: %s@." (Printexc.to_string e))

let run t ~socket_path =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      (try Unix.unlink socket_path with Unix.Unix_error _ -> ()))
  @@ fun () ->
  Unix.bind sock (Unix.ADDR_UNIX socket_path);
  Unix.listen sock 64;
  let m = Mutex.create () in
  (* live connections only: each handler flips its [done] flag when it
     finishes and the accept loop joins finished threads between
     accepts, so a long-running server does not retain one [Thread.t]
     per connection it ever served *)
  let threads = ref [] in
  let reap () =
    let finished =
      Mutex.lock m;
      let fin, live = List.partition (fun (_, d) -> Atomic.get d) !threads in
      threads := live;
      Mutex.unlock m;
      fin
    in
    (* joining a finished thread returns immediately *)
    List.iter (fun (th, _) -> Thread.join th) finished
  in
  let rec accept_loop () =
    if Atomic.get t.draining then ()
    else
      match Wire.wait_readable 0.2 sock with
      | `Timeout ->
          reap ();
          accept_loop ()
      | `Readable -> (
          match Wire.retry_intr (fun () -> Unix.accept ~cloexec:true sock) with
          | fd, _ ->
              let done_ = Atomic.make false in
              let th =
                Thread.create
                  (fun () ->
                    Fun.protect
                      ~finally:(fun () -> Atomic.set done_ true)
                      (fun () -> handle_connection t fd))
                  ()
              in
              Mutex.lock m;
              threads := (th, done_) :: !threads;
              Mutex.unlock m;
              accept_loop ()
          | exception Unix.Unix_error _ ->
              if Atomic.get t.draining then () else accept_loop ())
  in
  accept_loop ();
  (* drain: no new connections; the watcher keeps waking queued waiters
     (they shed) while in-flight requests run to completion *)
  List.iter (fun (th, _) -> Thread.join th) !threads;
  shutdown t;
  obs_incr "serve.drained";
  Fmt.epr "sjos serve: drained; final metrics: %s@."
    (Json.to_string (Json.Obj (metrics_fields t)))
