(** The one metrics-snapshot JSON shape.

    Both [sjos metrics] (one-shot CLI) and the serve protocol's
    [metrics] endpoint emit this same structure, so dashboards and the
    bench-schema checker parse a single shape regardless of where the
    numbers came from:

    {v
    { "work":     {...} | null,   deterministic work counters (when scoped)
      "io":       {...} | null,   pager statistics (disk storage only)
      "gc":       {...},          GC totals for this process
      "registry": {...} }         every registry instrument (guard.*, par.*,
                                  serve.*, ...)
    v} *)

val fields :
  ?work:Sjos_obs.Work.t ->
  ?io:Sjos_obs.Json.t ->
  unit ->
  (string * Sjos_obs.Json.t) list
(** The shared field list, in the fixed order work/io/gc/registry.
    Callers prepend or append their own context fields (pattern, server
    uptime, tenants...) around it. *)

val to_json :
  ?work:Sjos_obs.Work.t -> ?io:Sjos_obs.Json.t -> unit -> Sjos_obs.Json.t
