(** Bounded admission in front of the execution pool.

    The server admits at most [max_active] queries at once; up to
    [max_queue] more may wait their turn.  Anything beyond that is
    {e shed} immediately with a structured [Overloaded] error rather
    than queued without bound — latency under overload stays bounded and
    the client learns to back off.

    Waiters block on a condition variable; because OCaml's
    [Condition.wait] has no timeout, the server's watcher thread calls
    {!notify} periodically so queued waiters can re-check their
    [should_abort] callback (deadline passed, client gone, server
    draining) even when no slot frees up. *)

type t

val create : max_active:int -> max_queue:int -> t
(** Both clamped to at least 1 and 0 respectively. *)

val with_slot :
  t ->
  should_abort:(unit -> Sjos_guard.Error.t option) ->
  (unit -> 'a) ->
  ('a, Sjos_guard.Error.t) result
(** Run [f] holding an execution slot.  Sheds with [Overloaded] when the
    queue is full; while queued, [should_abort] is consulted on every
    wakeup and its error (if any) aborts the wait.  The slot is always
    released, even when [f] raises.  A new arrival never overtakes the
    queue: the immediate (non-queued) path is taken only when no one is
    waiting, so sustained fresh traffic cannot starve queued requests
    out of the freed slots their [retry_after] hints promised. *)

val try_acquire : t -> bool
(** Nonblocking slot grab (tests use this to pin slots and force
    shedding deterministically).  Pair with {!release}.  Subject to the
    same no-overtaking rule as {!with_slot}: fails while anyone is
    queued. *)

val release : t -> unit

val notify : t -> unit
(** Wake all queued waiters so they re-check [should_abort]. *)

val active : t -> int
val queued : t -> int
val max_active : t -> int
val max_queue : t -> int
