module Error = Sjos_guard.Error
module Registry = Sjos_obs.Registry

type t = {
  max_active : int;
  max_queue : int;
  m : Mutex.t;
  c : Condition.t;
  mutable active : int;
  mutable queued : int;
}

let create ~max_active ~max_queue =
  {
    max_active = max 1 max_active;
    max_queue = max 0 max_queue;
    m = Mutex.create ();
    c = Condition.create ();
    active = 0;
    queued = 0;
  }

let obs_incr name =
  if Registry.enabled () then Registry.incr (Registry.counter name)

let shed t =
  obs_incr "serve.shed";
  (* Retry once the currently queued work has had a chance to drain; a
     crude but monotone hint — deeper queue, longer wait. *)
  let retry_after_ms = 25.0 *. float_of_int (t.queued + 1) in
  Error.Overloaded
    {
      reason =
        Printf.sprintf "admission queue full (%d active, %d queued)" t.active
          t.queued;
      retry_after_ms;
    }

let with_slot t ~should_abort f =
  Mutex.lock t.m;
  (* an arrival may only take the fast path when nobody is queued —
     otherwise sustained new traffic would keep grabbing freed slots
     ahead of the waiters whose retry_after hint told them to wait *)
  if t.queued = 0 && t.active < t.max_active then begin
    t.active <- t.active + 1;
    Mutex.unlock t.m;
    Fun.protect
      ~finally:(fun () ->
        Mutex.lock t.m;
        t.active <- t.active - 1;
        Condition.signal t.c;
        Mutex.unlock t.m)
      (fun () -> Ok (f ()))
  end
  else if t.queued >= t.max_queue then begin
    let e = shed t in
    Mutex.unlock t.m;
    Error e
  end
  else begin
    t.queued <- t.queued + 1;
    let rec wait () =
      match should_abort () with
      | Some e ->
          t.queued <- t.queued - 1;
          Mutex.unlock t.m;
          Error e
      | None ->
          if t.active < t.max_active then begin
            t.queued <- t.queued - 1;
            t.active <- t.active + 1;
            Mutex.unlock t.m;
            Fun.protect
              ~finally:(fun () ->
                Mutex.lock t.m;
                t.active <- t.active - 1;
                Condition.signal t.c;
                Mutex.unlock t.m)
              (fun () -> Ok (f ()))
          end
          else begin
            Condition.wait t.c t.m;
            wait ()
          end
    in
    wait ()
  end

let try_acquire t =
  Mutex.lock t.m;
  (* same no-overtaking rule as [with_slot]'s fast path *)
  let ok = t.queued = 0 && t.active < t.max_active in
  if ok then t.active <- t.active + 1;
  Mutex.unlock t.m;
  ok

let release t =
  Mutex.lock t.m;
  t.active <- t.active - 1;
  Condition.signal t.c;
  Mutex.unlock t.m

let notify t =
  Mutex.lock t.m;
  Condition.broadcast t.c;
  Mutex.unlock t.m

let active t = t.active
let queued t = t.queued
let max_active t = t.max_active
let max_queue t = t.max_queue
