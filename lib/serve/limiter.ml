type t = {
  rate_per_sec : float;  (* <= 0. means unlimited *)
  burst : float;
  m : Mutex.t;
  mutable tokens : float;
  (* anchored to the first observed timestamp, not creation time, so an
     injected test clock needn't agree with the monotonic one *)
  mutable last_ns : int64 option;
}

let create ~rate_per_sec ~burst =
  let burst = Float.max 1.0 burst in
  { rate_per_sec; burst; m = Mutex.create (); tokens = burst; last_ns = None }

let unlimited () = create ~rate_per_sec:0.0 ~burst:1.0

let refill t now_ns =
  match t.last_ns with
  | None -> t.last_ns <- Some now_ns
  | Some last ->
      let dt = Int64.to_float (Int64.sub now_ns last) /. 1e9 in
      if dt > 0.0 then begin
        t.tokens <- Float.min t.burst (t.tokens +. (dt *. t.rate_per_sec));
        t.last_ns <- Some now_ns
      end

let try_take ?now_ns t =
  if t.rate_per_sec <= 0.0 then Ok ()
  else begin
    let now = match now_ns with Some n -> n | None -> Sjos_obs.Clock.now_ns () in
    Mutex.lock t.m;
    refill t now;
    let r =
      if t.tokens >= 1.0 then begin
        t.tokens <- t.tokens -. 1.0;
        Ok ()
      end
      else Error ((1.0 -. t.tokens) /. t.rate_per_sec *. 1000.0)
    in
    Mutex.unlock t.m;
    r
  end

let tokens ?now_ns t =
  if t.rate_per_sec <= 0.0 then t.burst
  else begin
    let now = match now_ns with Some n -> n | None -> Sjos_obs.Clock.now_ns () in
    Mutex.lock t.m;
    refill t now;
    let v = t.tokens in
    Mutex.unlock t.m;
    v
  end
