module Json = Sjos_obs.Json
module Registry = Sjos_obs.Registry
module Chaos = Sjos_guard.Chaos
module Error = Sjos_guard.Error

type quota = {
  max_concurrent : int;
  rate_per_sec : float;
  burst : float;
  max_tuples : int option;
  deadline_ms : float option;
  chaos_seed : int option;
  chaos_faults : Chaos.fault list;
  stall_ms : float;
}

let default_quota =
  {
    max_concurrent = 8;
    rate_per_sec = 0.0;
    burst = 1.0;
    max_tuples = None;
    deadline_ms = None;
    chaos_seed = None;
    chaos_faults =
      [ Chaos.Truncate_candidates; Chaos.Unsort_candidates; Chaos.Lie_cardinalities ];
    stall_ms = 0.0;
  }

let fault_of_name = function
  | "truncate_candidates" -> Ok Chaos.Truncate_candidates
  | "unsort_candidates" -> Ok Chaos.Unsort_candidates
  | "lie_cardinalities" -> Ok Chaos.Lie_cardinalities
  | s -> Error (Printf.sprintf "unknown chaos fault %S" s)

let quota_of_json j =
  match j with
  | Json.Obj fields -> (
      let rec fold q = function
        | [] -> Ok q
        | (k, v) :: rest -> (
            let num () =
              match Json.number v with
              | Some f -> Ok f
              | None -> Error (Printf.sprintf "tenant field %S must be a number" k)
            in
            match k with
            | "max_concurrent" ->
                Result.bind (num ()) (fun f ->
                    fold { q with max_concurrent = int_of_float f } rest)
            | "rate_per_sec" ->
                Result.bind (num ()) (fun f -> fold { q with rate_per_sec = f } rest)
            | "burst" ->
                Result.bind (num ()) (fun f -> fold { q with burst = f } rest)
            | "max_tuples" ->
                Result.bind (num ()) (fun f ->
                    fold { q with max_tuples = Some (int_of_float f) } rest)
            | "deadline_ms" ->
                Result.bind (num ()) (fun f ->
                    fold { q with deadline_ms = Some f } rest)
            | "chaos_seed" ->
                Result.bind (num ()) (fun f ->
                    fold { q with chaos_seed = Some (int_of_float f) } rest)
            | "stall_ms" ->
                Result.bind (num ()) (fun f -> fold { q with stall_ms = f } rest)
            | "chaos_faults" -> (
                match v with
                | Json.List items ->
                    let rec parse acc = function
                      | [] -> Ok (List.rev acc)
                      | Json.Str s :: tl ->
                          Result.bind (fault_of_name s) (fun f -> parse (f :: acc) tl)
                      | _ -> Error "chaos_faults entries must be strings"
                    in
                    Result.bind (parse [] items) (fun fs ->
                        fold { q with chaos_faults = fs } rest)
                | _ -> Error "chaos_faults must be a list of fault names")
            | _ -> Error (Printf.sprintf "unknown tenant quota field %S" k))
      in
      fold default_quota fields)
  | _ -> Error "tenant quota must be a JSON object"

type t = {
  name : string;
  quota : quota;
  limiter : Limiter.t;
  active : int Atomic.t;
  admitted : int Atomic.t;
  shed : int Atomic.t;
  cache_hits : int Atomic.t;
  chaos : Chaos.t option;
}

let obs_incr name =
  if Registry.enabled () then Registry.incr (Registry.counter name)

let make name quota =
  let limiter =
    if quota.rate_per_sec <= 0.0 then Limiter.unlimited ()
    else Limiter.create ~rate_per_sec:quota.rate_per_sec ~burst:quota.burst
  in
  let chaos =
    Option.map
      (fun seed -> Chaos.create ~faults:quota.chaos_faults ~seed ())
      quota.chaos_seed
  in
  {
    name;
    quota;
    limiter;
    active = Atomic.make 0;
    admitted = Atomic.make 0;
    shed = Atomic.make 0;
    cache_hits = Atomic.make 0;
    chaos;
  }

let shed_err t reason retry_after_ms =
  Atomic.incr t.shed;
  obs_incr (Printf.sprintf "serve.tenant.%s.shed" t.name);
  Error.Overloaded { reason; retry_after_ms }

let admit t =
  match Limiter.try_take t.limiter with
  | Error retry_after_ms ->
      Error
        (shed_err t
           (Printf.sprintf "tenant %s rate limit exceeded" t.name)
           retry_after_ms)
  | Ok () ->
      (* Optimistic increment, back off when over the cap: keeps the check
         race-free across handler threads without a per-tenant lock. *)
      let n = Atomic.fetch_and_add t.active 1 + 1 in
      if t.quota.max_concurrent > 0 && n > t.quota.max_concurrent then begin
        Atomic.decr t.active;
        Error
          (shed_err t
             (Printf.sprintf "tenant %s at max_concurrent=%d" t.name
                t.quota.max_concurrent)
             50.0)
      end
      else begin
        Atomic.incr t.admitted;
        obs_incr (Printf.sprintf "serve.tenant.%s.admitted" t.name);
        Ok ()
      end

let release t = Atomic.decr t.active

let note_cache_hit t =
  Atomic.incr t.cache_hits;
  obs_incr (Printf.sprintf "serve.tenant.%s.hits" t.name)

type registry = {
  default : quota;
  max_ad_hoc : int;
  m : Mutex.t;
  tbl : (string, t) Hashtbl.t;
  mutable ad_hoc : int;
}

let overflow_name = "~overflow"

let registry ?(default = default_quota) ?(max_ad_hoc = 64) configured =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (name, q) -> Hashtbl.replace tbl name (make name q)) configured;
  { default; max_ad_hoc = max 0 max_ad_hoc; m = Mutex.create (); tbl; ad_hoc = 0 }

let find r name =
  Mutex.lock r.m;
  let t =
    match Hashtbl.find_opt r.tbl name with
    | Some t -> t
    | None when r.ad_hoc < r.max_ad_hoc ->
        let t = make name r.default in
        Hashtbl.add r.tbl name t;
        r.ad_hoc <- r.ad_hoc + 1;
        t
    | None -> (
        (* Ad-hoc cap reached: route further strangers to one shared
           overflow tenant, so a client inventing names cannot grow the
           registry (or the serve.tenant.* metric namespace) without
           bound.  They still get the default quota — collectively. *)
        match Hashtbl.find_opt r.tbl overflow_name with
        | Some t -> t
        | None ->
            let t = make overflow_name r.default in
            Hashtbl.add r.tbl overflow_name t;
            t)
  in
  Mutex.unlock r.m;
  t

let known r =
  Mutex.lock r.m;
  let ts = Hashtbl.fold (fun _ t acc -> t :: acc) r.tbl [] in
  Mutex.unlock r.m;
  List.sort (fun a b -> String.compare a.name b.name) ts

let registry_of_json ?(default = default_quota) j =
  match j with
  | Json.Obj _ -> (
      let default_r =
        match Json.member "default" j with
        | None -> Ok default
        | Some dj -> quota_of_json dj
      in
      let max_ad_hoc_r =
        match Json.member "max_ad_hoc" j with
        | None -> Ok None
        | Some v -> (
            match Json.number v with
            | Some f -> Ok (Some (int_of_float f))
            | None -> Error "\"max_ad_hoc\" must be a number")
      in
      match (default_r, max_ad_hoc_r) with
      | Error msg, _ | _, Error msg -> Error msg
      | Ok default, Ok max_ad_hoc -> (
          match Json.member "tenants" j with
          | None -> Ok (registry ~default ?max_ad_hoc [])
          | Some (Json.Obj entries) ->
              let rec parse acc = function
                | [] -> Ok (registry ~default ?max_ad_hoc (List.rev acc))
                | (name, qj) :: rest ->
                    Result.bind (quota_of_json qj) (fun q ->
                        parse ((name, q) :: acc) rest)
              in
              parse [] entries
          | Some _ -> Error "\"tenants\" must be an object of name -> quota"))
  | _ -> Error "tenant config must be a JSON object"

let to_json t =
  Json.Obj
    [
      ("name", Json.Str t.name);
      ("active", Json.Int (Atomic.get t.active));
      ("admitted", Json.Int (Atomic.get t.admitted));
      ("shed", Json.Int (Atomic.get t.shed));
      ("cache_hits", Json.Int (Atomic.get t.cache_hits));
      ("max_concurrent", Json.Int t.quota.max_concurrent);
      ("rate_per_sec", Json.Float t.quota.rate_per_sec);
      ( "chaos",
        match t.chaos with None -> Json.Bool false | Some c -> Chaos.to_json c );
    ]
