module Json = Sjos_obs.Json

let max_frame_bytes = 16 * 1024 * 1024

type read_result = Frame of Json.t | Eof | Bad of string

let rec retry_intr f = try f () with Unix.Unix_error (Unix.EINTR, _, _) -> retry_intr f

(* Read exactly [n] bytes; [`Eof got] reports a stream that ended early. *)
let read_exact fd buf n =
  let rec go off =
    if off >= n then `Ok
    else
      let r = retry_intr (fun () -> Unix.read fd buf off (n - off)) in
      if r = 0 then `Eof off else go (off + r)
  in
  go 0

let read_frame fd =
  let hdr = Bytes.create 4 in
  match read_exact fd hdr 4 with
  | `Eof 0 -> Eof
  | `Eof _ -> Bad "connection closed mid-header"
  | `Ok -> (
      let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
      if len < 0 || len > max_frame_bytes then
        Bad (Printf.sprintf "frame length %d out of range 0..%d" len max_frame_bytes)
      else
        let payload = Bytes.create len in
        match read_exact fd payload len with
        | `Eof got ->
            Bad (Printf.sprintf "connection closed %d bytes into a %d-byte frame" got len)
        | `Ok -> (
            match Json.of_string (Bytes.unsafe_to_string payload) with
            | Ok j -> Frame j
            | Error msg -> Bad ("frame payload is not JSON: " ^ msg)))

let write_all fd buf =
  let n = Bytes.length buf in
  let rec go off =
    if off < n then
      let w = retry_intr (fun () -> Unix.write fd buf off (n - off)) in
      go (off + w)
  in
  go 0

let write_payload fd payload =
  let len = String.length payload in
  if len > max_frame_bytes then
    invalid_arg "Wire.write_payload: payload exceeds max_frame_bytes";
  let buf = Bytes.create (4 + len) in
  Bytes.set_int32_be buf 0 (Int32.of_int len);
  Bytes.blit_string payload 0 buf 4 len;
  write_all fd buf

let write_frame fd j = write_payload fd (Json.to_string j)

let wait_readable timeout fd =
  match retry_intr (fun () -> Unix.select [ fd ] [] [] timeout) with
  | [], _, _ -> `Timeout
  | _ -> `Readable

let peer_closed fd =
  match retry_intr (fun () -> Unix.select [ fd ] [] [] 0.0) with
  | [], _, _ -> false
  | _ -> (
      (* readable: either pipelined request bytes or EOF/reset *)
      let b = Bytes.create 1 in
      match retry_intr (fun () -> Unix.recv fd b 0 1 [ Unix.MSG_PEEK ]) with
      | 0 -> true
      | _ -> false
      | exception
          Unix.Unix_error
            ((Unix.ECONNRESET | Unix.EPIPE | Unix.ENOTCONN | Unix.EBADF), _, _)
        ->
          true)

let str s = Json.Str s
let int n = Json.Int n

let field j name = Json.member name j
let string_field j name =
  match field j name with Some (Json.Str s) -> Some s | _ -> None

let number_field j name = Option.bind (field j name) Json.number

let int_field j name =
  match field j name with Some (Json.Int n) -> Some n | _ -> None

let bool_field j name =
  match field j name with Some (Json.Bool b) -> Some b | _ -> None
