(** Per-tenant quotas, rate limits and fault configuration.

    Tenants are the unit of isolation in [sjos serve]: each carries a
    concurrent-query cap, a token-bucket rate limit, per-query resource
    ceilings that are folded into every request's
    {!Sjos_guard.Budget.t}, and an optional chaos configuration
    (injected faults and an artificial execution stall) so operators can
    harden one tenant's traffic without touching the others.

    A {!registry} resolves tenant names to live state, creating unknown
    tenants on first sight with the registry's default quota — a
    misbehaving stranger gets the default limits, never unlimited
    access.  Ad-hoc creation is itself bounded ([max_ad_hoc]): past the
    cap, strangers share one overflow tenant, so arbitrary client-chosen
    names cannot grow server memory or the metrics payload without
    bound. *)

type quota = {
  max_concurrent : int;  (** concurrent admitted queries; [<= 0] = unlimited *)
  rate_per_sec : float;  (** token-bucket refill; [<= 0.] = unlimited *)
  burst : float;  (** token-bucket capacity *)
  max_tuples : int option;  (** per-query tuple ceiling (min with request) *)
  deadline_ms : float option;  (** per-request deadline cap (min with request) *)
  chaos_seed : int option;  (** enable fault injection for this tenant *)
  chaos_faults : Sjos_guard.Chaos.fault list;
      (** faults to inject when [chaos_seed] is set (default: all) *)
  stall_ms : float;
      (** chaos: stall each execution this long before running, polling
          the budget — makes slow-query scenarios (and cancellation
          races) reproducible *)
}

val default_quota : quota
(** No rate limit, 8 concurrent queries, no tuple/deadline caps, no
    chaos. *)

val quota_of_json : Sjos_obs.Json.t -> (quota, string) result
(** Parse one tenant's quota object; absent fields keep the default.
    Recognized fields: [max_concurrent], [rate_per_sec], [burst],
    [max_tuples], [deadline_ms], [chaos_seed], [chaos_faults] (list of
    fault names), [stall_ms]. *)

type t = private {
  name : string;
  quota : quota;
  limiter : Limiter.t;
  active : int Atomic.t;  (** currently admitted queries *)
  admitted : int Atomic.t;
  shed : int Atomic.t;
  cache_hits : int Atomic.t;
  chaos : Sjos_guard.Chaos.t option;
}

val admit : t -> (unit, Sjos_guard.Error.t) result
(** Check the rate limit, then the concurrency cap; on success the
    tenant's active count is incremented and the caller {e must} pair
    with {!release}.  On failure returns [Overloaded] with a retry
    hint and counts the shed. *)

val release : t -> unit

val note_cache_hit : t -> unit
(** Count a plan-cache hit for this tenant (mirrored to the registry
    counter [serve.tenant.<name>.hits]). *)

type registry

val registry :
  ?default:quota -> ?max_ad_hoc:int -> (string * quota) list -> registry
(** [max_ad_hoc] (default 64, clamped to [>= 0]) bounds how many
    tenants {!find} may auto-create beyond the configured list. *)

val find : registry -> string -> t
(** Resolve (or create, with the default quota) a tenant by name.  Once
    [max_ad_hoc] names have been auto-created, further unknown names all
    resolve to a single shared ["~overflow"] tenant with the default
    quota. *)

val known : registry -> t list
(** Every tenant seen so far, sorted by name. *)

val registry_of_json :
  ?default:quota -> Sjos_obs.Json.t -> (registry, string) result
(** Parse a config document:
    [{"default": {<quota>}, "max_ad_hoc": n,
      "tenants": {"<name>": {<quota>}, ...}}].
    All fields optional. *)

val to_json : t -> Sjos_obs.Json.t
