(** A size-bounded least-recently-used map with string keys.

    O(1) find/add/remove via a hash table over an intrusive doubly-linked
    recency list.  [find] and [add] both promote the entry to
    most-recently-used; inserting into a full cache evicts the
    least-recently-used entry and reports its key.

    Thread-safe: each operation is individually atomic (an internal
    mutex guards the table and the recency list).  Compound
    read-modify-write sequences still need external synchronization —
    {!Plan_cache} provides it for the plan cache. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] when [capacity < 1]. *)

val capacity : 'a t -> int
val length : 'a t -> int

val find : 'a t -> string -> 'a option
(** Lookup; a hit promotes the entry to most-recently-used. *)

val mem : 'a t -> string -> bool
(** Presence test without promoting. *)

val add : 'a t -> string -> 'a -> string option
(** Insert or replace (either way the entry becomes most-recently-used).
    Returns the key evicted to make room, if any. *)

val remove : 'a t -> string -> unit
val clear : 'a t -> unit

val to_list : 'a t -> (string * 'a) list
(** Entries from most- to least-recently-used. *)
