(** A size-bounded LRU cache of chosen plans, keyed by strings (in practice
    ["<algorithm>|<structural fingerprint>"]).

    Entries store the plan serialized with [Plan_io] against the pattern's
    {e canonical} numbering, so any pattern with the same fingerprint can
    deserialize and transport it back to its own numbering — the cache layer
    itself stays independent of the pattern and plan types.

    Invalidation is epoch-based: every entry is stamped with the cache's
    epoch at insertion, and {!bump_epoch} (called when the owning database's
    statistics or cost factors change) makes all existing entries stale.
    Stale entries are discarded lazily on lookup and counted as
    invalidations.

    Hit/miss/eviction/invalidation counters are always maintained locally
    (readable via {!stats}) and additionally mirrored into
    {!Sjos_obs.Registry} counters ([plan_cache.hits] etc.) when the registry
    is enabled; when it is disabled no instrument is ever registered.

    Thread-safe: every operation (including the compound
    lookup-invalidate path) runs under an internal mutex, so counters
    always agree with outcomes and [stats] snapshots are consistent. *)

type entry = {
  plan_text : string;  (** [Plan_io] serialization in canonical numbering *)
  est_cost : float;  (** optimizer's estimated cost of the cached plan *)
  algorithm : string;  (** display name of the algorithm that chose it *)
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  entries : int;
  capacity : int;
  epoch : int;
}

type t

val create : ?capacity:int -> unit -> t
(** [capacity] defaults to 256 entries. *)

val find : t -> string -> entry option
(** A current-epoch hit promotes the entry to most-recently-used.  A
    stale-epoch entry is removed and counted as an invalidation + miss. *)

val add : t -> string -> entry -> unit
(** Insert (or replace) under the current epoch, evicting the
    least-recently-used entry when full. *)

val bump_epoch : t -> unit
(** Invalidate every existing entry (lazily, on subsequent lookups). *)

val epoch : t -> int
val clear : t -> unit
val stats : t -> stats
val stats_to_json : stats -> Sjos_obs.Json.t
val to_json : t -> Sjos_obs.Json.t
val pp : t Fmt.t
