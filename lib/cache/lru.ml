type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;  (* toward MRU *)
  mutable next : 'a node option;  (* toward LRU *)
}

type 'a t = {
  capacity : int;
  m : Mutex.t;  (* guards table and the recency list *)
  table : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;  (* most recently used *)
  mutable tail : 'a node option;  (* least recently used *)
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  {
    capacity;
    m = Mutex.create ();
    table = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
  }

let locked t f =
  Mutex.lock t.m;
  let r = f () in
  Mutex.unlock t.m;
  r

let capacity t = t.capacity
let length t = locked t (fun () -> Hashtbl.length t.table)

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | None -> None
      | Some n ->
          unlink t n;
          push_front t n;
          Some n.value)

let mem t key = locked t (fun () -> Hashtbl.mem t.table key)

let remove t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | None -> ()
      | Some n ->
          unlink t n;
          Hashtbl.remove t.table key)

let add t key value =
  locked t (fun () ->
  match Hashtbl.find_opt t.table key with
  | Some n ->
      n.value <- value;
      unlink t n;
      push_front t n;
      None
  | None ->
      let evicted =
        if Hashtbl.length t.table >= t.capacity then
          match t.tail with
          | None -> None
          | Some lru ->
              unlink t lru;
              Hashtbl.remove t.table lru.key;
              Some lru.key
        else None
      in
      let n = { key; value; prev = None; next = None } in
      Hashtbl.replace t.table key n;
      push_front t n;
      evicted)

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.table;
      t.head <- None;
      t.tail <- None)

let to_list t =
  locked t (fun () ->
      let rec go acc = function
        | None -> List.rev acc
        | Some n -> go ((n.key, n.value) :: acc) n.next
      in
      go [] t.head)
