open Sjos_obs

type entry = { plan_text : string; est_cost : float; algorithm : string }

type stamped = { entry : entry; stamp : int }

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  entries : int;
  capacity : int;
  epoch : int;
}

type t = {
  lru : stamped Lru.t;
  (* Serializes compound operations (find-then-remove, add-then-count)
     and the counters below, so a lookup's outcome and the counter it
     bumps can never disagree under concurrency.  Always taken before
     the Lru's own lock; never the other way around. *)
  m : Mutex.t;
  mutable epoch : int;
  (* Always-on counters, mirrored into the Registry only when observability
     is enabled (the registry must stay empty in no-op mode). *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
}

let create ?(capacity = 256) () =
  {
    lru = Lru.create ~capacity;
    m = Mutex.create ();
    epoch = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
  }

let locked t f =
  Mutex.lock t.m;
  let r = f () in
  Mutex.unlock t.m;
  r

let observe name =
  if Registry.enabled () then Registry.incr (Registry.counter name)

let epoch t = locked t (fun () -> t.epoch)

let bump_epoch t =
  let e = locked t (fun () -> t.epoch <- t.epoch + 1; t.epoch) in
  if Registry.enabled () then
    Registry.set_gauge (Registry.gauge "plan_cache.epoch") (float_of_int e)

let find t key =
  locked t (fun () ->
      match Lru.find t.lru key with
      | Some s when s.stamp = t.epoch ->
          t.hits <- t.hits + 1;
          observe "plan_cache.hits";
          Some s.entry
      | Some _ ->
          (* Stale: stamped under an earlier epoch; drop it lazily. *)
          Lru.remove t.lru key;
          t.invalidations <- t.invalidations + 1;
          t.misses <- t.misses + 1;
          observe "plan_cache.invalidations";
          observe "plan_cache.misses";
          None
      | None ->
          t.misses <- t.misses + 1;
          observe "plan_cache.misses";
          None)

let add t key entry =
  locked t (fun () ->
      match Lru.add t.lru key { entry; stamp = t.epoch } with
      | Some _evicted ->
          t.evictions <- t.evictions + 1;
          observe "plan_cache.evictions"
      | None -> ())

let clear t = locked t (fun () -> Lru.clear t.lru)

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        invalidations = t.invalidations;
        entries = Lru.length t.lru;
        capacity = Lru.capacity t.lru;
        epoch = t.epoch;
      })

let stats_to_json (s : stats) =
  Json.Obj
    [
      ("hits", Json.Int s.hits);
      ("misses", Json.Int s.misses);
      ("evictions", Json.Int s.evictions);
      ("invalidations", Json.Int s.invalidations);
      ("entries", Json.Int s.entries);
      ("capacity", Json.Int s.capacity);
      ("epoch", Json.Int s.epoch);
    ]

let to_json t = stats_to_json (stats t)

let pp ppf t =
  let s = stats t in
  Fmt.pf ppf
    "plan cache: %d/%d entries, %d hits / %d misses (%d evictions, %d \
     invalidations), epoch %d"
    s.entries s.capacity s.hits s.misses s.evictions s.invalidations s.epoch
