open Sjos_obs

type t =
  | Parse_error of { input : string; message : string }
  | Invalid_request of string
  | Invalid_plan of string
  | Budget_exhausted of { resource : Budget.resource; during : string }
  | Corrupt_cache_entry of { key : string; reason : string }
  | Corrupt_input of { source : string; reason : string }
  | Internal of string
  | Overloaded of { reason : string; retry_after_ms : float }

exception Error of t

let fail t = raise (Error t)

let class_name = function
  | Parse_error _ -> "parse_error"
  | Invalid_request _ -> "invalid_request"
  | Invalid_plan _ -> "invalid_plan"
  | Budget_exhausted _ -> "budget_exhausted"
  | Corrupt_cache_entry _ -> "corrupt_cache_entry"
  | Corrupt_input _ -> "corrupt_input"
  | Internal _ -> "internal"
  | Overloaded _ -> "overloaded"

let exit_code = function
  | Parse_error _ -> 2
  | Invalid_request _ -> 3
  | Invalid_plan _ -> 4
  | Budget_exhausted _ -> 5
  | Corrupt_cache_entry _ -> 6
  | Corrupt_input _ -> 7
  | Internal _ -> 8
  | Overloaded _ -> 9

let all_class_names =
  [
    "parse_error";
    "invalid_request";
    "invalid_plan";
    "budget_exhausted";
    "corrupt_cache_entry";
    "corrupt_input";
    "internal";
    "overloaded";
  ]

let exit_code_of_class name =
  let rec find code = function
    | [] -> None
    | c :: rest -> if String.equal c name then Some code else find (code + 1) rest
  in
  find 2 all_class_names

let message = function
  | Parse_error { message; _ } -> message
  | Invalid_request m -> m
  | Invalid_plan m -> m
  | Budget_exhausted { resource; during } ->
      Fmt.str "%s budget exhausted during %s" (Budget.resource_name resource)
        during
      ^
      (match resource with
      | Budget.Tuples_materialized { limit; count } ->
          Fmt.str " (%d tuples produced, limit %d)" count limit
      | _ -> "")
  | Corrupt_cache_entry { key; reason } ->
      Fmt.str "corrupt cached plan under %S: %s" key reason
  | Corrupt_input { source; reason } -> Fmt.str "%s: %s" source reason
  | Internal m -> m
  | Overloaded { reason; retry_after_ms } ->
      Fmt.str "%s (retry after ~%.0f ms)" reason retry_after_ms

let of_exn = function
  | Error t -> Some t
  | Budget.Exhausted { resource; during } ->
      Some (Budget_exhausted { resource; during })
  (* Every [invalid_arg] in the engine marks a well-formed call with
     out-of-range inputs (an oversized pattern, a bad node index, a
     non-positive knob) — a caller error, not an engine invariant, so it
     classes as a request error rather than [Internal].  This matches
     the CLI, which has always exited 3 on [Invalid_argument]. *)
  | Invalid_argument msg -> Some (Invalid_request msg)
  | Sjos_storage.Column_store.Io_error { path; reason } ->
      Some (Corrupt_input { source = path; reason })
  | _ -> None

let protect ?map f =
  match f () with
  | r -> Ok r
  | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
  | exception e -> (
      match of_exn e with
      | Some t -> Result.Error t
      | None -> (
          match Option.bind map (fun m -> m e) with
          | Some t -> Result.Error t
          | None -> Result.Error (Internal (Printexc.to_string e))))

let to_json t =
  let base = [ ("class", Json.Str (class_name t)); ("message", Json.Str (message t)) ] in
  let extra =
    match t with
    | Budget_exhausted { resource; during } ->
        [
          ("resource", Json.Str (Budget.resource_name resource));
          ("during", Json.Str during);
        ]
        @ (match resource with
          | Budget.Tuples_materialized { limit; count } ->
              [ ("limit", Json.Int limit); ("count", Json.Int count) ]
          | _ -> [])
    | Parse_error { input; _ } -> [ ("input", Json.Str input) ]
    | Corrupt_cache_entry { key; _ } -> [ ("key", Json.Str key) ]
    | Corrupt_input { source; _ } -> [ ("source", Json.Str source) ]
    | Overloaded { retry_after_ms; _ } ->
        [ ("retry_after_ms", Json.Float retry_after_ms) ]
    | _ -> []
  in
  Json.Obj (base @ extra)

let pp ppf t = Fmt.pf ppf "%s: %s" (class_name t) (message t)
