(** Deterministic, seeded fault injection for robustness testing.

    A [Chaos.t] wraps the two data sources the engine trusts — storage
    candidate streams and the cardinality provider — and injects the
    corruptions a production deployment would eventually see: truncated
    streams, out-of-order runs, and wildly wrong statistics.  Everything
    is driven by a splitmix64 generator from the creation seed, so a
    failing run replays exactly from its seed.

    The accompanying property suite asserts the engine's contract under
    injection: every query returns either a correct result or a
    structured {!Error.t} — never an unstructured exception.  Lying
    cardinalities may change the chosen plan but never the result set;
    unsorted runs are detected at the executor's trust boundary and
    reported as [Corrupt_input]; truncation yields a result over the
    surviving data. *)

type fault =
  | Truncate_candidates  (** drop a random suffix of a candidate stream *)
  | Unsort_candidates  (** swap two elements, breaking document order *)
  | Lie_cardinalities
      (** scale provider estimates by a per-mask factor in [1/64, 64] *)

type t

val create : ?faults:fault list -> seed:int -> unit -> t
(** [faults] defaults to all three.  [probability] of injecting into any
    given stream is 1/2, decided by the seeded generator. *)

val seed : t -> int
val faults : t -> fault list

val injected : t -> int
(** Number of injections performed so far (monotone; diagnostic).  A
    parent and its {!derive}d children share one total. *)

val derive : t -> key:string -> t
(** An independent fault stream for [key] (in practice a query's
    structural fingerprint), pure in (parent seed, key): the parent's
    generator state is neither read nor advanced, so per-query faults
    replay from [SJOS_GUARD_SEED] regardless of how many other queries
    ran first, in what order, or on which domains. *)

val wrap_candidates : t -> Sjos_xml.Node.t array -> Sjos_xml.Node.t array
(** Possibly corrupt one candidate stream (fresh array; the input is
    never mutated). *)

val wrap_provider :
  t -> Sjos_plan.Costing.provider -> Sjos_plan.Costing.provider
(** Possibly lie about cardinalities.  Lies are deterministic per mask,
    so the wrapped provider is still a function. *)

val fault_name : fault -> string
val to_json : t -> Sjos_obs.Json.t
val pp : t Fmt.t
