open Sjos_obs

type fault = Truncate_candidates | Unsort_candidates | Lie_cardinalities

type t = {
  seed : int;
  fault_list : fault list;
  mutable state : int64;
  (* shared between a parent and its [derive]d children, so the
     diagnostic total survives per-query stream splitting *)
  injected : int Atomic.t;
}

let all_faults = [ Truncate_candidates; Unsort_candidates; Lie_cardinalities ]

(* splitmix64: tiny, deterministic, and decoupled from Stdlib.Random. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ?(faults = all_faults) ~seed () =
  {
    seed;
    fault_list = faults;
    state = Int64.of_int ((2 * seed) + 1);
    injected = Atomic.make 0;
  }

let seed t = t.seed
let faults t = t.fault_list
let injected t = Atomic.get t.injected

(* An independent stream for [key], pure in (parent seed, key): the
   parent's generator state is never read or advanced, so the faults a
   query sees depend only on the configured seed and the query itself —
   never on how many streams other queries consumed first, or on domain
   scheduling.  The injection total is shared with the parent. *)
let derive t ~key =
  let h =
    String.fold_left
      (fun acc c -> mix (Int64.logxor acc (Int64.of_int (Char.code c))))
      (mix (Int64.of_int ((2 * t.seed) + 1)))
      key
  in
  let child_seed = Int64.to_int (Int64.logand h 0x3FFFFFFFFFFFFFFL) in
  {
    seed = child_seed;
    fault_list = t.fault_list;
    state = Int64.of_int ((2 * child_seed) + 1);
    injected = t.injected;
  }

let next t =
  t.state <- Int64.add t.state 0x9e3779b97f4a7c15L;
  mix t.state

let next_int t n =
  if n <= 0 then 0
  else Int64.to_int (Int64.rem (Int64.logand (next t) Int64.max_int)
                       (Int64.of_int n))

let enabled t f = List.mem f t.fault_list
let flip t = Int64.logand (next t) 1L = 0L

let wrap_candidates t candidates =
  let n = Array.length candidates in
  let stream_faults =
    List.filter
      (fun f -> f <> Lie_cardinalities && enabled t f)
      t.fault_list
  in
  if stream_faults = [] || n = 0 || not (flip t) then candidates
  else
    let f = List.nth stream_faults (next_int t (List.length stream_faults)) in
    match f with
    | Truncate_candidates ->
        Atomic.incr t.injected;
        Array.sub candidates 0 (next_int t n)
    | Unsort_candidates ->
        if n < 2 then candidates
        else begin
          let i = next_int t n in
          let j = (i + 1 + next_int t (n - 1)) mod n in
          if candidates.(i) == candidates.(j) then candidates
          else begin
            Atomic.incr t.injected;
            let c = Array.copy candidates in
            let tmp = c.(i) in
            c.(i) <- c.(j);
            c.(j) <- tmp;
            c
          end
        end
    | Lie_cardinalities -> candidates

(* A per-mask multiplicative lie in [1/64, 64], deterministic in
   (seed, mask) so the wrapped provider remains a function. *)
let lie_factor t mask =
  let h = mix (Int64.of_int (((t.seed * 0x1f123bb5) lxor mask) lor 1)) in
  let exp = Int64.to_int (Int64.rem (Int64.logand h Int64.max_int) 13L) - 6 in
  Float.pow 2.0 (float_of_int exp)

let wrap_provider t (p : Sjos_plan.Costing.provider) =
  if not (enabled t Lie_cardinalities) then p
  else begin
    Atomic.incr t.injected;
    {
      Sjos_plan.Costing.node_card =
        (fun i -> p.Sjos_plan.Costing.node_card i *. lie_factor t (1 lsl i));
      cluster_card =
        (fun mask -> p.Sjos_plan.Costing.cluster_card mask *. lie_factor t mask);
    }
  end

let fault_name = function
  | Truncate_candidates -> "truncate_candidates"
  | Unsort_candidates -> "unsort_candidates"
  | Lie_cardinalities -> "lie_cardinalities"

let to_json t =
  Json.Obj
    [
      ("seed", Json.Int t.seed);
      ( "faults",
        Json.List (List.map (fun f -> Json.Str (fault_name f)) t.fault_list) );
      ("injected", Json.Int (Atomic.get t.injected));
    ]

let pp ppf t =
  Fmt.pf ppf "chaos{seed=%d; faults=%a; injected=%d}" t.seed
    Fmt.(list ~sep:comma string)
    (List.map fault_name t.fault_list)
    (Atomic.get t.injected)
