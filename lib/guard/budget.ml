open Sjos_obs

type resource =
  | Wall_clock
  | Statuses_expanded
  | Tuples_materialized of { limit : int; count : int }
  | Cancelled

type t = {
  deadline_ns : int64 option;
  max_expanded : int option;
  max_tuples : int option;
  cancelled : bool Atomic.t;
}

exception Exhausted of { resource : resource; during : string }

let unlimited =
  {
    deadline_ns = None;
    max_expanded = None;
    max_tuples = None;
    cancelled = Atomic.make false;
  }

let make ?deadline_ms ?max_expanded ?max_tuples ?cancelled () =
  match (deadline_ms, max_expanded, max_tuples, cancelled) with
  | None, None, None, None -> unlimited
  | _ ->
      let deadline_ns =
        Option.map
          (fun ms ->
            Int64.add (Clock.now_ns ()) (Int64.of_float (ms *. 1e6)))
          deadline_ms
      in
      {
        deadline_ns;
        max_expanded;
        max_tuples;
        cancelled =
          (match cancelled with Some c -> c | None -> Atomic.make false);
      }

let cancel t =
  if t == unlimited then invalid_arg "Budget.cancel: the unlimited budget";
  Atomic.set t.cancelled true

(* Physical equality only: a budget built with no ceilings but its own
   [cancelled] ref (e.g. the serve path's disconnect-cancellable
   budgets) must never be treated as unlimited, or every poll that the
   executor gates on [is_unlimited] would be skipped and cancellation
   would silently become a no-op. *)
let is_unlimited t = t == unlimited

let cap_tuples t = function
  | None -> t
  | Some n ->
      let merged =
        match t.max_tuples with Some m -> min m n | None -> n
      in
      if t == unlimited then
        { unlimited with max_tuples = Some merged; cancelled = Atomic.make false }
      else { t with max_tuples = Some merged }

let poll t =
  if t == unlimited then None
  else if Atomic.get t.cancelled then Some Cancelled
  else
    match t.deadline_ns with
    | Some d when Int64.compare (Clock.now_ns ()) d >= 0 -> Some Wall_clock
    | _ -> None

let exhaust ~during resource =
  (* Observed cancellations (client disconnect, server drain, deadline
     races resolved as cancels) are the signal the serve tests and
     dashboards watch; counting at the abort site means the counter
     moves only when a cancellation actually stopped work. *)
  (match resource with
  | Cancelled ->
      if Registry.enabled () then
        Registry.incr (Registry.counter "guard.cancelled")
  | _ -> ());
  raise (Exhausted { resource; during })

let check t ~during =
  match poll t with Some r -> exhaust ~during r | None -> ()

let check_search t ~during ~expanded =
  if t != unlimited then begin
    (match t.max_expanded with
    | Some m when expanded >= m -> exhaust ~during Statuses_expanded
    | _ -> ());
    check t ~during
  end

let check_tuples t ~during ~count =
  if t != unlimited then
    match t.max_tuples with
    | Some limit when count > limit ->
        exhaust ~during (Tuples_materialized { limit; count })
    | _ -> ()

let resource_name = function
  | Wall_clock -> "wall_clock"
  | Statuses_expanded -> "statuses_expanded"
  | Tuples_materialized _ -> "tuples_materialized"
  | Cancelled -> "cancelled"

let pp_resource ppf = function
  | Tuples_materialized { limit; count } ->
      Fmt.pf ppf "tuples_materialized (%d produced, limit %d)" count limit
  | r -> Fmt.string ppf (resource_name r)

let to_json t =
  Json.Obj
    [
      ( "deadline_ns",
        match t.deadline_ns with
        | Some d -> Json.Str (Int64.to_string d)
        | None -> Json.Null );
      ( "max_expanded",
        match t.max_expanded with Some n -> Json.Int n | None -> Json.Null );
      ( "max_tuples",
        match t.max_tuples with Some n -> Json.Int n | None -> Json.Null );
      ("cancelled", Json.Bool (Atomic.get t.cancelled));
    ]

let pp ppf t =
  if is_unlimited t then Fmt.string ppf "unlimited"
  else
    Fmt.pf ppf "{deadline=%s; max_expanded=%a; max_tuples=%a%s}"
      (match t.deadline_ns with Some _ -> "set" | None -> "none")
      Fmt.(option ~none:(any "none") int)
      t.max_expanded
      Fmt.(option ~none:(any "none") int)
      t.max_tuples
      (if Atomic.get t.cancelled then "; cancelled" else "")
