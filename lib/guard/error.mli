(** Structured engine errors — errors as values, not crashes.

    Every failure mode of the query pipeline maps to exactly one
    constructor, so callers can match on the class (and the CLI can map
    each class to a distinct exit code) instead of fishing a raw
    [Invalid_argument] out of a backtrace.  The Result-returning entry
    points ([Database.run_r] and friends) never let any other exception
    escape: {!protect} converts stragglers to {!Internal}. *)

type t =
  | Parse_error of { input : string; message : string }
      (** malformed pattern / XPath / XQuery / XML text *)
  | Invalid_request of string
      (** a well-formed query with out-of-range knobs (e.g. an absurd
          histogram grid or a non-positive [Te]) *)
  | Invalid_plan of string
      (** a plan that does not evaluate the pattern (externally supplied
          or corrupted in transport) *)
  | Budget_exhausted of { resource : Budget.resource; during : string }
      (** a resource ceiling fired and no degradation tier could absorb
          it; [during] is ["optimize"] or ["execute"] *)
  | Corrupt_cache_entry of { key : string; reason : string }
      (** a cached plan failed to deserialize or validate {e and}
          re-optimization failed too (a lone corrupt entry is repaired
          transparently) *)
  | Corrupt_input of { source : string; reason : string }
      (** corrupt data detected at a trust boundary, e.g. an externally
          supplied candidate stream out of document order, or a column
          data file gone missing/truncated underneath a disk store *)
  | Internal of string
      (** an engine invariant failed — a bug, reported structurally
          rather than as an escaped exception *)
  | Overloaded of { reason : string; retry_after_ms : float }
      (** admission control shed the request — the server's bounded
          queue was full or a tenant quota/rate limit fired.  The
          request was well-formed and may be retried after roughly
          [retry_after_ms]; nothing about it was executed *)

exception Error of t
(** Carrier used by the raising (non-[_r]) compatibility surface. *)

val fail : t -> 'a
(** [raise (Error t)]. *)

val class_name : t -> string
(** Stable lowercase class tag, e.g. ["parse_error"]. *)

val exit_code : t -> int
(** Distinct non-zero process exit code per class: parse 2, request 3,
    plan 4, budget 5, corrupt cache 6, corrupt input 7, internal 8,
    overloaded 9. *)

val exit_code_of_class : string -> int option
(** Inverse lookup from a {!class_name} tag — used by wire clients that
    receive only the class string and must exit like the local CLI
    would. *)

val all_class_names : string list
(** Every class tag, in exit-code order (2..9). *)

val message : t -> string
(** One-line human message (no backtrace, no class prefix). *)

val of_exn : exn -> t option
(** Map the exceptions this library owns ({!Error}, {!Budget.Exhausted})
    and the storage layer's [Column_store.Io_error] (to
    {!Corrupt_input}) to their value form. *)

val protect : ?map:(exn -> t option) -> (unit -> 'a) -> ('a, t) result
(** Run the thunk, converting raised errors to values: {!of_exn} first,
    then the caller's [map] (for boundary-specific exceptions such as
    parser errors), then a catch-all to {!Internal}.  [Out_of_memory]
    and [Stack_overflow] are re-raised — they are not query errors. *)

val to_json : t -> Sjos_obs.Json.t
val pp : t Fmt.t
