(** Query resource budgets.

    The exact algorithms (DP/DPP) are worst-case exponential in pattern
    size, and a bad plan can materialize unbounded intermediate results;
    a budget puts hard ceilings on both.  A [Budget.t] travels in
    [Query_opts.t] and is polled from the optimizer search loops (per
    status expansion) and the executor's operator inner loops (per chunk
    of produced tuples).

    Checks are pure observers: they never alter search order or results,
    only abort by raising {!Exhausted} — so an unlimited budget is
    guaranteed bit-identical behaviour, and {!unlimited} itself is a
    single physical-equality test on the hot path. *)

type resource =
  | Wall_clock  (** the deadline passed *)
  | Statuses_expanded  (** the optimizer expanded too many statuses *)
  | Tuples_materialized of { limit : int; count : int }
      (** an operator materialized more than [limit] tuples; [count] is
          the number produced when the budget fired (the partial size) *)
  | Cancelled  (** the cooperative cancellation flag was raised *)

type t = {
  deadline_ns : int64 option;
      (** absolute monotonic deadline ({!Sjos_obs.Clock.now_ns} scale) *)
  max_expanded : int option;  (** optimizer status-expansion ceiling *)
  max_tuples : int option;  (** per-operator materialization ceiling *)
  cancelled : bool Atomic.t;
      (** set (from any domain) to abort at the next poll point; the
          atomic write is the happens-before edge that makes the cancel
          visible to workers mid-merge-loop *)
}

exception Exhausted of { resource : resource; during : string }
(** Raised by the check functions; converted to a structured
    [Error.Budget_exhausted] at the public (Result) boundary. *)

val unlimited : t
(** No ceilings.  All checks are no-ops (and recognized by physical
    equality, so governance costs nothing when no budget is set).  Its
    [cancelled] ref must never be set; use {!make} for a cancellable
    budget. *)

val make :
  ?deadline_ms:float ->
  ?max_expanded:int ->
  ?max_tuples:int ->
  ?cancelled:bool Atomic.t ->
  unit ->
  t
(** [deadline_ms] is relative to now and resolved to an absolute
    monotonic deadline immediately.  With no argument at all the result
    is {!unlimited} itself. *)

val cancel : t -> unit
(** Raise the cancellation flag; every domain polling this budget aborts
    at its next poll point.  Raises [Invalid_argument] on {!unlimited}. *)

val is_unlimited : t -> bool
(** Physical equality with {!unlimited} — the only budget whose checks
    may be skipped wholesale.  A budget built by {!make} with no
    ceilings but a [cancelled] ref is {e not} unlimited: it must keep
    being polled so a cross-thread {!cancel} (client disconnect, server
    drain) can abort execution. *)

val cap_tuples : t -> int option -> t
(** Merge a legacy [?max_tuples] knob into the budget (minimum of the
    two when both are set). *)

val poll : t -> resource option
(** Cheap poll of the time-like resources: cancellation first, then the
    deadline.  [None] while within budget. *)

val check : t -> during:string -> unit
(** {!poll}, raising {!Exhausted} when over. *)

val check_search : t -> during:string -> expanded:int -> unit
(** Search-loop check: [max_expanded] against the effort counter, then
    {!check}.  Call {e before} doing the work the counter will account,
    so an aborted search has performed exactly the budgeted amount. *)

val check_tuples : t -> during:string -> count:int -> unit
(** Executor check: raises when [count] exceeds [max_tuples]. *)

val resource_name : resource -> string
(** Short stable name: ["wall_clock"], ["statuses_expanded"],
    ["tuples_materialized"], ["cancelled"]. *)

val pp_resource : resource Fmt.t
val to_json : t -> Sjos_obs.Json.t
val pp : t Fmt.t
