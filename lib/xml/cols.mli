(** The unified structure-of-arrays column record.

    Row [i] describes the node [ids.(i)]: its interval encoding
    ([starts], [ends]) and depth ([levels]).  This one type replaces the
    two structurally identical records that used to live in [Document]
    and [Element_index]; every consumer of flat columns — the batch join
    kernels, the sort operators, the column store — reads this shape.
    Callers must never mutate the arrays.

    For a {e document-wide} view ({!Document.positions}) [ids] is the
    identity and the arrays are indexed by node id; for a {e candidate
    list} view the rows are a document-ordered subset and [ids.(i)] maps
    the row back to the node. *)

type t = {
  ids : int array;  (** node id of row [i] *)
  starts : int array;  (** [start_pos] of row [i]'s node *)
  ends : int array;  (** [end_pos] of row [i]'s node *)
  levels : int array;  (** [level] of row [i]'s node *)
}

val empty : t

val length : t -> int
(** Number of rows. *)

val of_nodes : Node.t array -> t
(** Extract fresh columns from a (document-ordered) node array. *)

val equal : t -> t -> bool
(** Structural equality of all four columns. *)
