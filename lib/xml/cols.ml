type t = {
  ids : int array;
  starts : int array;
  ends : int array;
  levels : int array;
}

let empty = { ids = [||]; starts = [||]; ends = [||]; levels = [||] }

let length c = Array.length c.ids

let of_nodes (nodes : Node.t array) =
  let n = Array.length nodes in
  let ids = Array.make n 0
  and starts = Array.make n 0
  and ends = Array.make n 0
  and levels = Array.make n 0 in
  for i = 0 to n - 1 do
    let node = Array.unsafe_get nodes i in
    Array.unsafe_set ids i node.Node.id;
    Array.unsafe_set starts i node.Node.start_pos;
    Array.unsafe_set ends i node.Node.end_pos;
    Array.unsafe_set levels i node.Node.level
  done;
  { ids; starts; ends; levels }

let equal a b =
  a.ids = b.ids && a.starts = b.starts && a.ends = b.ends
  && a.levels = b.levels
