(** Immutable XML documents.

    A document is an array of {!Node.t} values in pre-order; a node's [id]
    is its index in the array.  All structural navigation needed by the
    storage, estimation and execution layers is answered from the interval
    encoding, without pointer chasing. *)

type t

type columns = Cols.t = {
  ids : int array;  (** identity: [ids.(id) = id] *)
  starts : int array;  (** [starts.(id)] is [ (node t id).start_pos ] *)
  ends : int array;  (** [ends.(id)] is [ (node t id).end_pos ] *)
  levels : int array;  (** [levels.(id)] is [ (node t id).level ] *)
}
[@@ocaml.deprecated "use Cols.t (via Document.positions)"]
(** Deprecated alias of {!Cols.t}: the document-wide structure-of-arrays
    view used to be its own record; it is now the unified column type
    shared with the storage layer. *)

val of_nodes : Node.t array -> t
(** [of_nodes nodes] wraps a pre-order node array.  Raises
    [Invalid_argument] if ids are not consecutive from 0 or the interval
    encoding is inconsistent (checked shallowly). *)

val size : t -> int
(** Number of element nodes. *)

val node : t -> int -> Node.t
(** [node doc id] is the node with identifier [id].
    Raises [Invalid_argument] on out-of-range ids. *)

val root : t -> Node.t
(** The document root element.  Raises [Invalid_argument] on an empty
    document. *)

val nodes : t -> Node.t array
(** The underlying pre-order array (do not mutate). *)

val positions : t -> Cols.t
(** The flat positional columns ([ids] is the identity), built once on
    first use and cached; indexed by node id.  The batch execution
    kernels compare machine integers read from these columns instead of
    dereferencing {!Node.t} records on the join hot path.  Do not
    mutate.  Safe to call from any domain. *)

val columns : t -> Cols.t
[@@ocaml.deprecated "use Document.positions"]
(** Deprecated alias of {!positions}. *)

val children : t -> Node.t -> Node.t list
(** Direct element children, in document order. *)

val descendants : t -> Node.t -> Node.t list
(** All proper descendants, in document order. *)

val parent : t -> Node.t -> Node.t option
(** Parent element, or [None] for the root. *)

val ancestors : t -> Node.t -> Node.t list
(** Proper ancestors, nearest first. *)

val iter : (Node.t -> unit) -> t -> unit
(** Pre-order iteration over all nodes. *)

val fold : ('a -> Node.t -> 'a) -> 'a -> t -> 'a
(** Pre-order fold over all nodes. *)

val tags : t -> string list
(** Distinct tag names, sorted. *)

val count_tag : t -> string -> int
(** Number of elements with the given tag. *)

val max_level : t -> int
(** Deepest level present (0 for a single-root document). *)

val max_pos : t -> int
(** One past the largest [end_pos]; the extent of the position space. *)

val validate : t -> (unit, string) result
(** Full structural validation of the interval encoding: intervals nest
    properly, levels and parents are consistent.  Used by tests and by the
    parser/builder as a post-condition. *)
