type columns = Cols.t = {
  ids : int array;
  starts : int array;
  ends : int array;
  levels : int array;
}

type t = { arr : Node.t array; cols_m : Mutex.t; mutable cols : Cols.t option }

let of_nodes arr =
  Array.iteri
    (fun i (n : Node.t) ->
      if n.Node.id <> i then
        invalid_arg
          (Printf.sprintf "Document.of_nodes: node at index %d has id %d" i
             n.Node.id))
    arr;
  { arr; cols_m = Mutex.create (); cols = None }

(* The cache fill runs under [cols_m] so concurrent domains share one
   columns record instead of racing to build duplicates.  The unlocked
   fast-path read is safe: [cols] only ever goes [None -> Some c] with
   [c] fully initialized before the (atomic, word-sized) field write. *)
let positions t =
  match t.cols with
  | Some c -> c
  | None ->
      Mutex.lock t.cols_m;
      let c =
        match t.cols with
        | Some c -> c
        | None ->
            let n = Array.length t.arr in
            let ids = Array.make n 0
            and starts = Array.make n 0
            and ends = Array.make n 0
            and levels = Array.make n 0 in
            for i = 0 to n - 1 do
              let node = Array.unsafe_get t.arr i in
              Array.unsafe_set ids i i;
              Array.unsafe_set starts i node.Node.start_pos;
              Array.unsafe_set ends i node.Node.end_pos;
              Array.unsafe_set levels i node.Node.level
            done;
            let c = { Cols.ids; starts; ends; levels } in
            t.cols <- Some c;
            c
      in
      Mutex.unlock t.cols_m;
      c

let columns = positions

let size t = Array.length t.arr

let node t id =
  if id < 0 || id >= Array.length t.arr then
    invalid_arg (Printf.sprintf "Document.node: id %d out of range" id);
  t.arr.(id)

let root t =
  if Array.length t.arr = 0 then invalid_arg "Document.root: empty document";
  t.arr.(0)

let nodes t = t.arr

let is_descendant ~(anc : Node.t) ~(desc : Node.t) =
  anc.Node.start_pos < desc.Node.start_pos
  && desc.Node.end_pos < anc.Node.end_pos

(* Children and descendants of [n] occupy a contiguous id range starting
   right after [n] in pre-order; scan it. *)
let descendants t (n : Node.t) =
  let acc = ref [] in
  let i = ref (n.Node.id + 1) in
  let len = Array.length t.arr in
  while
    !i < len
    &&
    let m = t.arr.(!i) in
    is_descendant ~anc:n ~desc:m
  do
    acc := t.arr.(!i) :: !acc;
    incr i
  done;
  List.rev !acc

let children t (n : Node.t) =
  List.filter (fun (m : Node.t) -> m.Node.parent = n.Node.id) (descendants t n)

let parent t (n : Node.t) =
  if n.Node.parent = Node.root_parent then None else Some (node t n.Node.parent)

let ancestors t n =
  let rec up acc m =
    match parent t m with None -> List.rev acc | Some p -> up (p :: acc) p
  in
  up [] n

let iter f t = Array.iter f t.arr
let fold f init t = Array.fold_left f init t.arr

let tags t =
  let module S = Set.Make (String) in
  let s = fold (fun s n -> S.add n.Node.tag s) S.empty t in
  S.elements s

let count_tag t tag =
  fold (fun c (n : Node.t) -> if String.equal n.Node.tag tag then c + 1 else c) 0 t

let max_level t = fold (fun m (n : Node.t) -> max m n.Node.level) 0 t
let max_pos t = fold (fun m (n : Node.t) -> max m n.Node.end_pos) 0 t + 1

let validate t =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let check_node i (n : Node.t) =
    let* () = if n.Node.id = i then Ok () else err "node %d: bad id" i in
    let* () =
      if n.Node.start_pos < n.Node.end_pos then Ok ()
      else err "node %d: empty interval" i
    in
    if i = 0 then
      if n.Node.parent = Node.root_parent && n.Node.level = 0 then Ok ()
      else err "root: bad parent/level"
    else
      let* () =
        if n.Node.parent >= 0 && n.Node.parent < i then Ok ()
        else err "node %d: parent %d not before node" i n.Node.parent
      in
      let p = t.arr.(n.Node.parent) in
      let* () =
        if is_descendant ~anc:p ~desc:n then Ok ()
        else err "node %d: interval not nested in parent" i
      in
      if n.Node.level = p.Node.level + 1 then Ok ()
      else err "node %d: level not parent+1" i
  in
  let rec go i =
    if i >= Array.length t.arr then Ok ()
    else
      let* () = check_node i t.arr.(i) in
      go (i + 1)
  in
  let* () = go 0 in
  (* pre-order: start positions strictly increase with id *)
  let rec mono i =
    if i + 1 >= Array.length t.arr then Ok ()
    else if t.arr.(i).Node.start_pos < t.arr.(i + 1).Node.start_pos then
      mono (i + 1)
    else err "nodes %d,%d: start positions not increasing" i (i + 1)
  in
  mono 0
