(** Columnar holistic twig join — TwigStack (Bruno, Koudas, Srivastava,
    SIGMOD 2002) as a second physical algebra next to the binary
    Stack-Tree plans.

    One pass over all candidate streams in global document order
    maintains a linked int-indexed stack per pattern node (flat arrays,
    [stride] ints per entry — no boxing on the hot path), appends path
    solutions to flat per-leaf column blocks, then merge-joins the
    blocks on their shared root-path prefixes.  Match sets are identical
    to the binary plans and to the reference {!Twig_join} oracle; the
    output is in canonical order (lexicographic by slot value, i.e.
    document order of the pattern root first).

    Streams arrive as {!Stack_tree.input}s, so lazy disk-backed
    {!Sjos_storage.Column_store} leaves fault pages only as the merged
    cursor front demands, and skip-ahead — dropping a stream whose
    pattern parent can never match again, and galloping a child stream
    up to its parent's front — works identically over both backends,
    counted in {!Metrics.t.skipped_items}.

    Counter contract: [stack_ops] (pushes + expired pops), [io_items]
    (2 per path solution, the TwigStack intermediate-list write+read),
    [output_tuples] (path solutions + merge emissions), [joins],
    [sorted_items]/[sorts]/[sort_cost] (prefix-merge and canonical
    orderings, accounted like the algebra's Sort operator) are charged
    to [metrics]; element comparisons go straight to
    {!Sjos_obs.Work.current} like the binary kernels.  Comparisons
    price decisions only — merged-cursor advances, parent-stack scans,
    child-axis predicates, merge key tests; descendant-axis expansion
    is bulk emission and, like the binary kernels' pair emission, costs
    none.  The pass is serial, so every counter is invariant under
    [SJOS_DOMAINS]. *)

open Sjos_xml
open Sjos_pattern
open Sjos_guard

val run :
  ?budget:Budget.t ->
  metrics:Metrics.t ->
  doc:Document.t ->
  pat:Pattern.t ->
  inputs:Stack_tree.input array ->
  unit ->
  Batch.t
(** [run ~metrics ~doc ~pat ~inputs ()] — the holistic match of [pat],
    given one candidate stream per pattern node ([inputs.(i)] binds slot
    [i] of a width-[node_count] row; document order, distinct elements).

    Raises [Invalid_argument] when the inputs do not form one candidate
    stream per node, and {!Budget.Exhausted} (via polls every 256
    arrivals and per materialized solution) when [budget] runs out. *)

val run_tuples :
  ?budget:Budget.t ->
  metrics:Metrics.t ->
  doc:Document.t ->
  pat:Pattern.t ->
  inputs:Stack_tree.input array ->
  unit ->
  Tuple.t array
(** {!run} unpacked to the boxed tuple surface. *)
