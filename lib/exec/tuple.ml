open Sjos_xml

type t = int array

let unbound = -1
let create width = Array.make width unbound

let singleton ~width slot (node : Node.t) =
  let t = create width in
  t.(slot) <- node.Node.id;
  t

let get t slot = t.(slot)

let unsafe_get t slot =
  assert (slot >= 0 && slot < Array.length t);
  Array.unsafe_get t slot

let is_bound t slot = t.(slot) <> unbound

(* Monomorphic int loop; no closure per slot. *)
let merge a b =
  let width = Array.length a in
  if Array.length b <> width then invalid_arg "Tuple.merge: width mismatch";
  let out = Array.make width unbound in
  for i = 0 to width - 1 do
    let x = Array.unsafe_get a i and y = Array.unsafe_get b i in
    if x = unbound then Array.unsafe_set out i y
    else if y = unbound then Array.unsafe_set out i x
    else invalid_arg "Tuple.merge: slot bound on both sides"
  done;
  out

let bound_mask t =
  let m = ref 0 in
  Array.iteri (fun i v -> if v <> unbound then m := !m lor (1 lsl i)) t;
  !m

let to_string t =
  "("
  ^ String.concat ","
      (Array.to_list
         (Array.map (fun v -> if v = unbound then "_" else string_of_int v) t))
  ^ ")"

(* Monomorphic int-array comparison instead of polymorphic ( = ). *)
let equal a b =
  a == b
  ||
  let n = Array.length a in
  n = Array.length b
  &&
  let rec go i =
    i >= n || (Array.unsafe_get a i = Array.unsafe_get b i && go (i + 1))
  in
  go 0

let compare_by_slot doc slot a b =
  Int.compare
    (Document.node doc a.(slot)).Node.start_pos
    (Document.node doc b.(slot)).Node.start_pos
