(** The non-join physical operators: index scan and sort, in both the
    classic tuple-array flavor and the columnar batch flavor. *)

open Sjos_xml
open Sjos_storage

val index_scan :
  metrics:Metrics.t -> width:int -> slot:int -> Node.t array -> Tuple.t array
(** Turn a document-ordered candidate array into single-binding tuples.
    Accounts one index item per candidate. *)

val index_scan_batch :
  metrics:Metrics.t -> width:int -> slot:int -> Cols.t -> Batch.t
(** The columnar equivalent: binds the candidate [ids] column directly
    into batch rows without materializing per-tuple arrays.  Same
    accounting as {!index_scan}. *)

val sort :
  ?budget:Sjos_guard.Budget.t ->
  metrics:Metrics.t ->
  doc:Document.t ->
  by:int ->
  Tuple.t array ->
  Tuple.t array
(** Stable sort of tuples by the document order of the node bound in slot
    [by]; accounts [n log2 n] sort cost.  This is the blocking operator:
    plans that contain it cannot pipeline.  The budget's deadline and
    cancellation flag are checked once before sorting (the sort itself is
    bounded by its already-materialized input).  Since the batch engine,
    keys are precomputed from the document's [starts] column and an index
    permutation is sorted with a monomorphic int comparator — no
    [Document.node] calls inside the comparator. *)

val sort_batch :
  ?budget:Sjos_guard.Budget.t ->
  metrics:Metrics.t ->
  doc:Document.t ->
  by:int ->
  Batch.t ->
  Batch.t
(** {!sort} over a columnar batch ({!Batch.sort}); same accounting. *)

val sort_legacy :
  ?budget:Sjos_guard.Budget.t ->
  metrics:Metrics.t ->
  doc:Document.t ->
  by:int ->
  Tuple.t array ->
  Tuple.t array
(** The pre-batch-engine sort: [Array.stable_sort] with a comparator that
    dereferences [Document.node] per comparison.  Kept as the measured
    baseline for [bench/bench_perf] and the legacy executor kernel; same
    accounting as {!sort}. *)
