(** The non-join physical operators: index scan and sort. *)

open Sjos_xml

val index_scan :
  metrics:Metrics.t -> width:int -> slot:int -> Node.t array -> Tuple.t array
(** Turn a document-ordered candidate array into single-binding tuples.
    Accounts one index item per candidate. *)

val sort :
  ?budget:Sjos_guard.Budget.t ->
  metrics:Metrics.t ->
  doc:Document.t ->
  by:int ->
  Tuple.t array ->
  Tuple.t array
(** Stable sort of tuples by the document order of the node bound in slot
    [by]; accounts [n log2 n] sort cost.  This is the blocking operator:
    plans that contain it cannot pipeline.  The budget's deadline and
    cancellation flag are checked once before sorting (the sort itself is
    bounded by its already-materialized input). *)
