(** Match tuples: partial mappings from pattern nodes to document nodes.

    A tuple is an int array of length [Pattern.node_count]; slot [i] holds
    the document node id bound to pattern node [i], or {!unbound}. *)

open Sjos_xml

type t = int array

val unbound : int
(** The sentinel for an unbound slot ([-1]). *)

val create : int -> t
(** All-unbound tuple of the given width. *)

val singleton : width:int -> int -> Node.t -> t
(** [singleton ~width slot node] binds exactly one slot. *)

val get : t -> int -> int

val unsafe_get : t -> int -> int
(** Bounds-unchecked slot read for the batch kernels' hot loops; guarded
    by an [assert] so debug builds still bounds-check. *)

val is_bound : t -> int -> bool

val merge : t -> t -> t
(** Combine two tuples with disjoint bound slots.  Raises
    [Invalid_argument] when a slot is bound on both sides.  Implemented
    as a monomorphic int loop (no per-slot closure). *)

val bound_mask : t -> int
val to_string : t -> string

val equal : t -> t -> bool
(** Monomorphic int-array equality (not the polymorphic [( = )]). *)

val compare_by_slot : Document.t -> int -> t -> t -> int
(** Compare two tuples by the document order of the node bound in the given
    slot. *)
