(** Operation accounting for plan execution.

    The executor counts the same quantities the cost model prices —
    index items fetched, stack push/pop work, buffered intermediate-result
    IO, items sorted — so that measured "cost units" are directly
    comparable with the optimizer's estimates, independent of the host
    machine.  Wall-clock time is tracked alongside. *)

type t = {
  mutable index_items : int;  (** items produced by index scans *)
  mutable stack_ops : int;  (** Stack-Tree push+pop operations *)
  mutable io_items : int;  (** tuples buffered by Stack-Tree-Anc *)
  mutable sorted_items : int;  (** tuples passed through sorts *)
  mutable sort_cost : float;  (** accumulated [n log2 n] terms *)
  mutable output_tuples : int;  (** tuples emitted by joins *)
  mutable skipped_items : int;
      (** input tuples the batch kernels' skip-ahead jumped over without
          visiting — diagnostics only, never priced by the cost model, and
          always [0] for the legacy list-based kernels *)
  mutable joins : int;
  mutable sorts : int;
}

val create : unit -> t
val reset : t -> unit
val add : t -> t -> unit
(** Accumulate the second metrics into the first. *)

val cost_units : Sjos_cost.Cost_model.factors -> t -> float
(** Weighted total in cost-model units:
    [f_index*index + f_stack*stack + f_io*io + f_sort*sort_cost]. *)

val pp : t Fmt.t

val to_json : t -> Sjos_obs.Json.t
(** Machine-readable counterpart of {!pp}, one field per counter. *)
