open Sjos_xml
open Sjos_storage
open Sjos_pattern
open Sjos_plan

(* ---------- grouping a tuple stream by its join node ---------- *)

type group = { node : Node.t; tuples : Tuple.t list }

(* Consecutive tuples sharing the node in [slot] become one group; the
   input must be sorted by that node (guaranteed for valid plans). *)
let rec groups doc slot (s : Tuple.t Seq.t) : group Seq.t =
 fun () ->
  match s () with
  | Seq.Nil -> Seq.Nil
  | Seq.Cons (first, rest) ->
      let id = Tuple.get first slot in
      let rec collect acc rest =
        match rest () with
        | Seq.Cons (t, rest') when Tuple.get t slot = id ->
            collect (t :: acc) rest'
        | tail -> (acc, fun () -> tail)
      in
      let tuples, rest = collect [ first ] rest in
      let tuples = List.rev tuples (* in input order, like the kernels *) in
      Seq.Cons ({ node = Document.node doc id; tuples }, groups doc slot rest)

let pop_until stack start =
  let rec go = function
    | g :: rest when g.node.Node.end_pos < start -> go rest
    | stack -> stack
  in
  go stack

let cross a_tuples d_tuples =
  List.concat_map (fun ta -> List.map (Tuple.merge ta) d_tuples) a_tuples

(* ---------- Stack-Tree-Desc, streaming ---------- *)

let stj_desc ~axis (ags : group Seq.t) (dgs : group Seq.t) : Tuple.t Seq.t =
  let rec step ags dgs stack : Tuple.t Seq.t =
   fun () ->
    match dgs () with
    | Seq.Nil -> Seq.Nil
    | Seq.Cons (d, dgs') -> (
        match ags () with
        | Seq.Cons (a, ags')
          when a.node.Node.start_pos < d.node.Node.start_pos ->
            let stack = pop_until stack a.node.Node.start_pos in
            step ags' dgs (a :: stack) ()
        | ags_state ->
            let ags = fun () -> ags_state in
            let stack = pop_until stack d.node.Node.start_pos in
            let pairs =
              List.concat_map
                (fun a ->
                  if Axes.related axis ~anc:a.node ~desc:d.node then
                    cross a.tuples d.tuples
                  else [])
                (List.rev stack)
            in
            Seq.append (List.to_seq pairs) (step ags dgs' stack) ())
  in
  step ags dgs []

(* ---------- Stack-Tree-Anc, streaming ---------- *)

type anc_entry = {
  group : group;
  self_rev : Tuple.t list;
  inherit_chunks_rev : Tuple.t list list;
}

let flush_into e = function
  | [] ->
      `Emit
        (List.rev e.self_rev @ List.concat (List.rev e.inherit_chunks_rev))
  | top :: rest ->
      let pairs =
        List.rev e.self_rev @ List.concat (List.rev e.inherit_chunks_rev)
      in
      let top =
        if pairs = [] then top
        else { top with inherit_chunks_rev = pairs :: top.inherit_chunks_rev }
      in
      `Buffered (top :: rest)

let stj_anc ~axis (ags : group Seq.t) (dgs : group Seq.t) : Tuple.t Seq.t =
  (* pop entries ending before [start]; emitted chunks are collected *)
  let pop_until stack start =
    let rec go emitted = function
      | e :: rest when e.group.node.Node.end_pos < start -> (
          match flush_into e rest with
          | `Emit pairs -> go (emitted @ pairs) []
          | `Buffered stack -> go emitted stack)
      | stack -> (emitted, stack)
    in
    go [] stack
  in
  let feed d stack =
    List.map
      (fun e ->
        if Axes.related axis ~anc:e.group.node ~desc:d.node then
          { e with self_rev = List.rev_append (cross e.group.tuples d.tuples) e.self_rev }
        else e)
      stack
  in
  let rec drain stack : Tuple.t Seq.t =
   fun () ->
    match stack with
    | [] -> Seq.Nil
    | e :: rest -> (
        match flush_into e rest with
        | `Emit pairs -> Seq.append (List.to_seq pairs) (drain []) ()
        | `Buffered stack -> drain stack ())
  in
  let rec step ags dgs stack : Tuple.t Seq.t =
   fun () ->
    match dgs () with
    | Seq.Nil -> drain stack ()
    | Seq.Cons (d, dgs') -> (
        match ags () with
        | Seq.Cons (a, ags')
          when a.node.Node.start_pos < d.node.Node.start_pos ->
            let emitted, stack = pop_until stack a.node.Node.start_pos in
            let entry = { group = a; self_rev = []; inherit_chunks_rev = [] } in
            Seq.append (List.to_seq emitted)
              (step ags' dgs (entry :: stack))
              ()
        | ags_state ->
            let ags = fun () -> ags_state in
            let emitted, stack = pop_until stack d.node.Node.start_pos in
            let stack = feed d stack in
            Seq.append (List.to_seq emitted) (step ags dgs' stack) ())
  in
  step ags dgs []

(* Within [feed], self pairs were prepended in reverse cross order; restore
   by reversing once at flush: [flush_into] uses [List.rev self_rev]. *)

(* ---------- interpreter ---------- *)

let stream index pat plan =
  (match Sjos_plan.Properties.validate pat plan with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Stream_exec.stream: invalid plan: " ^ msg));
  let doc = Element_index.document index in
  let width = Pattern.node_count pat in
  let rec eval = function
    | Plan.Index_scan i ->
        let candidates = Candidate.select index (Pattern.label pat i) in
        Seq.map
          (fun node -> Tuple.singleton ~width i node)
          (Array.to_seq candidates)
    | Plan.Sort { input; by } ->
        (* blocking: force the input; sort on a precomputed key column
           (stable, so identical order to the in-place comparator sort) *)
        let materialized = Array.of_seq (eval input) in
        Array.to_seq (Batch.sort_tuples ~doc ~by materialized)
    | Plan.Structural_join { anc_side; desc_side; edge; algo } -> (
        let ags = groups doc edge.Pattern.anc (eval anc_side) in
        let dgs = groups doc edge.Pattern.desc (eval desc_side) in
        match algo with
        | Plan.Stack_tree_desc -> stj_desc ~axis:edge.Pattern.axis ags dgs
        | Plan.Stack_tree_anc -> stj_anc ~axis:edge.Pattern.axis ags dgs)
    | Plan.Holistic _ ->
        (* the holistic pass buffers path solutions until its prefix
           merge — there is no useful streaming prefix to expose *)
        invalid_arg "Stream_exec.stream: holistic plans are not streamable"
  in
  eval plan

let first_k index pat plan k =
  stream index pat plan |> Seq.take k |> List.of_seq

let time_to_first index pat plan =
  let t0 = Sjos_obs.Clock.now_ns () in
  let s = stream index pat plan in
  let first =
    match s () with
    | Seq.Nil -> Sjos_obs.Clock.elapsed_seconds ~since:t0
    | Seq.Cons (_, _) -> Sjos_obs.Clock.elapsed_seconds ~since:t0
  in
  (* drain from scratch for the total (sequences are persistent, but
     re-evaluating avoids keeping the whole result in memory) *)
  let t1 = Sjos_obs.Clock.now_ns () in
  let n = Seq.fold_left (fun acc _ -> acc + 1) 0 (stream index pat plan) in
  ignore n;
  (first, Sjos_obs.Clock.elapsed_seconds ~since:t1)
