(** Holistic twig join for arbitrary tree patterns, after TwigStack
    (Bruno, Koudas, Srivastava — SIGMOD 2002), the multi-way join the
    paper's §6 names as future work for its optimizer.

    Phase 1 streams every candidate set in global document order through a
    hierarchy of linked stacks (one per pattern node, linked along pattern
    edges) and emits {e path solutions} — matches of each root-to-leaf
    pattern path — without materializing any other intermediate result.
    Phase 2 merge-joins the per-leaf path solutions on their shared prefix
    nodes to assemble full twig matches.

    Compared to the original TwigStack, phase 1 processes elements in plain
    global document order instead of using the [getNext] look-ahead; this
    keeps the algorithm correct for both axes (parent-child edges are
    post-filtered, as in PathStack) at the price of possibly emitting path
    solutions that do not survive the merge — the original's I/O-optimality
    guarantee only holds for descendant-only twigs anyway.

    Path solutions are accounted as buffered IO in the metrics (they must
    be materialized for the merge), so the ablation against binary
    Stack-Tree plans is a fair fight in cost units. *)

open Sjos_xml
open Sjos_storage
open Sjos_pattern
open Sjos_guard

val run :
  ?budget:Budget.t ->
  ?candidates:(int -> Node.t array) ->
  metrics:Metrics.t ->
  Element_index.t ->
  Pattern.t ->
  Tuple.t array
(** Evaluate any tree pattern holistically.  Result tuples are full
    matches, in no guaranteed order.

    [budget] (default unlimited) is polled every 256 streamed arrivals
    and charged per materialized path solution and per merged batch,
    raising {!Budget.Exhausted}.  [candidates] overrides the per-node
    candidate streams (indexed by pattern node); external streams are
    verified — every id must exist in the document and starts must be
    nondecreasing — raising {!Error.Corrupt_input} otherwise.  This
    kernel is the reference oracle for {!Twig_stack}. *)

val count : Element_index.t -> Pattern.t -> int

val path_solutions :
  ?budget:Budget.t ->
  ?candidates:(int -> Node.t array) ->
  metrics:Metrics.t ->
  Element_index.t ->
  Pattern.t ->
  (int * Tuple.t list) list
(** Phase 1 only: for each leaf pattern node, the matches of its
    root-to-leaf path (tuples bind exactly the path's nodes).  Exposed for
    testing and for callers that want the intermediate representation.
    Same [budget]/[candidates] contract as {!run}. *)
