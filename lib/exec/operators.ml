open Sjos_storage

let index_scan ~metrics ~width ~slot candidates =
  metrics.Metrics.index_items <-
    metrics.Metrics.index_items + Array.length candidates;
  Array.map (fun node -> Tuple.singleton ~width slot node) candidates

let index_scan_batch ~metrics ~width ~slot (cols : Cols.t) =
  metrics.Metrics.index_items <-
    metrics.Metrics.index_items + Array.length cols.Cols.ids;
  Batch.of_ids ~width ~slot cols.Cols.ids

let account_sort ~metrics n =
  metrics.Metrics.sorts <- metrics.Metrics.sorts + 1;
  metrics.Metrics.sorted_items <- metrics.Metrics.sorted_items + n;
  if n > 1 then
    metrics.Metrics.sort_cost <-
      metrics.Metrics.sort_cost
      +. (float_of_int n *. (Float.log (float_of_int n) /. Float.log 2.0))

let sort ?(budget = Sjos_guard.Budget.unlimited) ~metrics ~doc ~by tuples =
  Sjos_guard.Budget.check budget ~during:"execute";
  account_sort ~metrics (Array.length tuples);
  Batch.sort_tuples ~doc ~by tuples

let sort_batch ?(budget = Sjos_guard.Budget.unlimited) ~metrics ~doc ~by b =
  Sjos_guard.Budget.check budget ~during:"execute";
  account_sort ~metrics (Batch.length b);
  Batch.sort ~doc ~by b

let sort_legacy ?(budget = Sjos_guard.Budget.unlimited) ~metrics ~doc ~by
    tuples =
  Sjos_guard.Budget.check budget ~during:"execute";
  account_sort ~metrics (Array.length tuples);
  let sorted = Array.copy tuples in
  Array.stable_sort (Tuple.compare_by_slot doc by) sorted;
  sorted
