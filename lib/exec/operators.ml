
let index_scan ~metrics ~width ~slot candidates =
  metrics.Metrics.index_items <-
    metrics.Metrics.index_items + Array.length candidates;
  Array.map (fun node -> Tuple.singleton ~width slot node) candidates

let sort ?(budget = Sjos_guard.Budget.unlimited) ~metrics ~doc ~by tuples =
  Sjos_guard.Budget.check budget ~during:"execute";
  let n = Array.length tuples in
  metrics.Metrics.sorts <- metrics.Metrics.sorts + 1;
  metrics.Metrics.sorted_items <- metrics.Metrics.sorted_items + n;
  if n > 1 then
    metrics.Metrics.sort_cost <-
      metrics.Metrics.sort_cost
      +. (float_of_int n *. (Float.log (float_of_int n) /. Float.log 2.0));
  let sorted = Array.copy tuples in
  Array.stable_sort (Tuple.compare_by_slot doc by) sorted;
  sorted
