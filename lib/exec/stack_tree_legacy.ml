open Sjos_xml
open Sjos_plan
open Sjos_guard

(* Consecutive tuples with the same node in the join slot form one group;
   inputs sorted by the join node keep equal nodes adjacent. *)
type group = { node : Node.t; tuples : Tuple.t list (* in input order *) }

let group_by_slot doc tuples slot =
  let groups = ref [] in
  let current_id = ref min_int in
  let current : Tuple.t list ref = ref [] in
  let flush () =
    if !current <> [] then begin
      let node = Document.node doc !current_id in
      groups := { node; tuples = List.rev !current } :: !groups
    end
  in
  let last_start = ref (-1) in
  Array.iter
    (fun t ->
      let id = Tuple.get t slot in
      if id = Tuple.unbound then
        invalid_arg "Stack_tree: join slot unbound in input tuple";
      if id <> !current_id then begin
        let start = (Document.node doc id).Node.start_pos in
        if start < !last_start then
          invalid_arg "Stack_tree: input not sorted by its join slot";
        last_start := start;
        flush ();
        current_id := id;
        current := [ t ]
      end
      else current := t :: !current)
    tuples;
  flush ();
  Array.of_list (List.rev !groups)

let cross ~budget ~metrics ~count_io out_push a_tuples d_tuples =
  List.iter
    (fun ta ->
      List.iter
        (fun td ->
          out_push (Tuple.merge ta td);
          metrics.Metrics.output_tuples <- metrics.Metrics.output_tuples + 1;
          Budget.check_tuples budget ~during:"execute"
            ~count:metrics.Metrics.output_tuples;
          if count_io then metrics.Metrics.io_items <- metrics.Metrics.io_items + 2)
        d_tuples)
    a_tuples

(* Deadline/cancellation polls in the merge loops are amortized: a clock
   read per descendant group would dominate small joins. *)
let poll_mask = 255

let poll_merge ~budget iters =
  incr iters;
  if !iters land poll_mask = 0 then Budget.check budget ~during:"execute"

(* --- Stack-Tree-Desc: stream output in descendant order --------------- *)

let run_desc ~budget ~metrics ~axis anc_groups desc_groups =
  let work = Sjos_obs.Work.current () in
  let out = ref [] in
  let iters = ref 0 in
  let stack = ref [] in
  (* head = top; entries form a nested chain, innermost first *)
  let pop_until start =
    let rec go () =
      match !stack with
      | g :: rest when g.node.Node.end_pos < start ->
          stack := rest;
          go ()
      | _ -> ()
    in
    go ()
  in
  let na = Array.length anc_groups and nd = Array.length desc_groups in
  let ai = ref 0 and di = ref 0 in
  while !di < nd do
    poll_merge ~budget iters;
    let d = desc_groups.(!di) in
    if
      !ai < na && anc_groups.(!ai).node.Node.start_pos < d.node.Node.start_pos
    then begin
      let a = anc_groups.(!ai) in
      pop_until a.node.Node.start_pos;
      metrics.Metrics.stack_ops <-
        metrics.Metrics.stack_ops + (2 * List.length a.tuples);
      stack := a :: !stack;
      incr ai
    end
    else begin
      pop_until d.node.Node.start_pos;
      (* same work unit as the columnar kernel: one comparison per live
         stack entry examined for this descendant group *)
      work.Sjos_obs.Work.comparisons <-
        work.Sjos_obs.Work.comparisons + List.length !stack;
      (* bottom-to-top = ancestor document order within this descendant *)
      List.iter
        (fun a ->
          if Axes.related axis ~anc:a.node ~desc:d.node then
            cross ~budget ~metrics ~count_io:false
              (fun t -> out := t :: !out)
              a.tuples d.tuples)
        (List.rev !stack);
      incr di
    end
  done;
  Array.of_list (List.rev !out)

(* --- Stack-Tree-Anc: buffer pairs until the ancestor pops ------------- *)

type anc_entry = {
  group : group;
  mutable self_rev : Tuple.t list;  (* pairs with this entry as ancestor *)
  mutable inherit_chunks_rev : Tuple.t list list;
      (* completed pair chunks from entries popped above this one; each
         chunk is in final order, chunks in reverse arrival order *)
}

let run_anc ~budget ~metrics ~axis anc_groups desc_groups =
  let work = Sjos_obs.Work.current () in
  let out_chunks_rev = ref [] in
  let iters = ref 0 in
  let stack = ref [] in
  let flush_entry e =
    (* this entry's own pairs (in descendant arrival order) come first:
       inherited chunks all have ancestors with larger start positions *)
    let pairs =
      List.rev e.self_rev @ List.concat (List.rev e.inherit_chunks_rev)
    in
    match !stack with
    | [] -> if pairs <> [] then out_chunks_rev := pairs :: !out_chunks_rev
    | top :: _ ->
        if pairs <> [] then
          top.inherit_chunks_rev <- pairs :: top.inherit_chunks_rev
  in
  let pop_until start =
    let rec go () =
      match !stack with
      | e :: rest when e.group.node.Node.end_pos < start ->
          stack := rest;
          flush_entry e;
          go ()
      | _ -> ()
    in
    go ()
  in
  let na = Array.length anc_groups and nd = Array.length desc_groups in
  let ai = ref 0 and di = ref 0 in
  while !di < nd do
    poll_merge ~budget iters;
    let d = desc_groups.(!di) in
    if
      !ai < na && anc_groups.(!ai).node.Node.start_pos < d.node.Node.start_pos
    then begin
      let a = anc_groups.(!ai) in
      pop_until a.node.Node.start_pos;
      metrics.Metrics.stack_ops <-
        metrics.Metrics.stack_ops + (2 * List.length a.tuples);
      stack :=
        { group = a; self_rev = []; inherit_chunks_rev = [] } :: !stack;
      incr ai
    end
    else begin
      pop_until d.node.Node.start_pos;
      work.Sjos_obs.Work.comparisons <-
        work.Sjos_obs.Work.comparisons + List.length !stack;
      List.iter
        (fun e ->
          if Axes.related axis ~anc:e.group.node ~desc:d.node then
            cross ~budget ~metrics ~count_io:true
              (fun t -> e.self_rev <- t :: e.self_rev)
              e.group.tuples d.tuples)
        !stack;
      incr di
    end
  done;
  (* drain the stack: innermost entries flush into the ones below *)
  while !stack <> [] do
    match !stack with
    | e :: rest ->
        stack := rest;
        flush_entry e
    | [] -> ()
  done;
  Array.of_list (List.concat (List.rev !out_chunks_rev))

let join ?(budget = Budget.unlimited) ~metrics ~doc ~axis ~algo
    ~anc:(anc_tuples, anc_slot) ~desc:(desc_tuples, desc_slot) () =
  metrics.Metrics.joins <- metrics.Metrics.joins + 1;
  let anc_groups = group_by_slot doc anc_tuples anc_slot in
  let desc_groups = group_by_slot doc desc_tuples desc_slot in
  match algo with
  | Plan.Stack_tree_desc ->
      run_desc ~budget ~metrics ~axis anc_groups desc_groups
  | Plan.Stack_tree_anc ->
      run_anc ~budget ~metrics ~axis anc_groups desc_groups
