open Sjos_xml
open Sjos_pattern
open Sjos_guard
module Ibuf = Batch.Ibuf
module Work = Sjos_obs.Work

(* Columnar holistic twig kernel, after TwigStack (Bruno, Koudas,
   Srivastava — SIGMOD 2002).  The reference tuple-at-a-time
   implementation lives in {!Twig_join}; this kernel must produce the
   same match sets while touching only flat int arrays on the hot path.

   Phase 1 merges every candidate stream in global document order
   through per-pattern-node linked stacks (PathStack-style: plain global
   order, parent-child edges post-filtered at emission) and appends path
   solutions — matches of each root-to-leaf pattern path — to flat
   per-leaf column blocks.  Phase 2 merge-joins the blocks on their
   shared path prefixes (sort-merge over index permutations, no boxing)
   and canonically orders the full matches.

   Streams arrive as {!Stack_tree.input}s and are grouped through
   {!Stack_tree.group_input}, so a Disk-backed lazy leaf faults in only
   the metadata the merged cursor front examines; skip-ahead both drops
   provably dead runs (a stream whose pattern parent can never match
   again) and gallops a child stream past candidates that must arrive
   before their first possible ancestor.  Skips are logical — counted in
   [skipped_items] identically for both storage backends — and the whole
   pass is serial, so every counter is domain-count invariant. *)

(* ---------- per-node state ---------- *)

(* Linked int-indexed stacks: one flat growable buffer per pattern node,
   [stride] ints per entry.  [parent_top] is the index of the deepest
   entry of the parent node's stack that strictly contains this entry at
   push time — the chain emission walks. *)
let stride = 5

let e_start = 0
and e_end = 1
and e_level = 2
and e_id = 3
and e_parent_top = 4

type stack = { mutable buf : int array; mutable len : int (* entries *) }

let new_stack () = { buf = Array.make (8 * stride) 0; len = 0 }

let push st ~start ~end_ ~level ~id ~parent_top =
  if st.len * stride = Array.length st.buf then begin
    let buf = Array.make (2 * st.len * stride) 0 in
    Array.blit st.buf 0 buf 0 (st.len * stride);
    st.buf <- buf
  end;
  let base = st.len * stride in
  st.buf.(base + e_start) <- start;
  st.buf.(base + e_end) <- end_;
  st.buf.(base + e_level) <- level;
  st.buf.(base + e_id) <- id;
  st.buf.(base + e_parent_top) <- parent_top;
  st.len <- st.len + 1

let entry st j f = st.buf.((j * stride) + f)

(* ---------- pattern shape ---------- *)

let parent_axis pat =
  Array.init (Pattern.node_count pat) (fun i ->
      match Pattern.parent_of pat i with
      | None -> (-1, Axes.Descendant)
      | Some (p, e) -> (p, e.Pattern.axis))

(* Root-first order with parents before children, independent of the
   node numbering: the skip-ahead pass visits parents first so a dead
   parent cascades to its subtree across successive rounds. *)
let topo_order pat =
  let n = Pattern.node_count pat in
  let order = Array.make n 0 in
  let k = ref 0 in
  let rec visit i =
    order.(!k) <- i;
    incr k;
    List.iter (fun (c, _) -> visit c) (Pattern.children_of pat i)
  in
  visit 0;
  if !k <> n then invalid_arg "Twig_stack: pattern is not a rooted tree";
  order

let leaves pat =
  List.filter
    (fun i -> Pattern.children_of pat i = [])
    (List.init (Pattern.node_count pat) Fun.id)

(* Root-to-node index path (root first). *)
let paths_to pat =
  Array.init (Pattern.node_count pat) (fun i ->
      let rec up j acc =
        match Pattern.parent_of pat j with
        | None -> j :: acc
        | Some (p, _) -> up p (j :: acc)
      in
      up i [])

(* ---------- the kernel ---------- *)

let poll_mask = 255

let run ?(budget = Budget.unlimited) ~metrics ~doc ~pat ~inputs () =
  let n = Pattern.node_count pat in
  if Array.length inputs <> n then
    invalid_arg "Twig_stack.run: expected one input per pattern node";
  let width = n in
  Array.iter
    (fun i ->
      if Stack_tree.input_width i <> width then
        invalid_arg "Twig_stack.run: input width must equal the node count")
    inputs;
  let cols = lazy (Document.positions doc) in
  let g = Array.init n (fun i -> Stack_tree.group_input ~cols inputs.(i) i) in
  Array.iter
    (fun (gi : Stack_tree.groups) ->
      (* candidate streams carry distinct elements, so every group is a
         single row; anything else is not a candidate stream *)
      if gi.Stack_tree.off.(gi.Stack_tree.n) <> gi.Stack_tree.n then
        invalid_arg "Twig_stack.run: input is not a candidate stream")
    g;
  let data = Array.map Stack_tree.input_data inputs in
  let pa = parent_axis pat in
  let topo = topo_order pat in
  let paths = paths_to pat in
  let leaf_nodes = leaves pat in
  let is_leaf = Array.make n false in
  List.iter (fun l -> is_leaf.(l) <- true) leaf_nodes;
  let limited = not (Budget.is_unlimited budget) in
  let work = Work.current () in
  let pos = Array.make n 0 in
  let stacks = Array.init n (fun _ -> new_stack ()) in
  let blocks = Array.init n (fun _ -> Ibuf.create 64) in
  let sol_count = ref 0 in
  let iters = ref 0 in
  let poll () =
    incr iters;
    if limited && !iters land poll_mask = 0 then
      Budget.check budget ~during:"execute"
  in
  (* -- skip-ahead: dead-run drop + gallop on the merged cursor front -- *)
  let skip_pass () =
    Array.iter
      (fun k ->
        let p, _ = pa.(k) in
        if p >= 0 && stacks.(p).len = 0 && pos.(k) < g.(k).Stack_tree.n then
          if pos.(p) >= g.(p).Stack_tree.n then begin
            (* the parent can never be pushed again: everything left in
               this stream (and, transitively, its subtree) is dead *)
            metrics.Metrics.skipped_items <-
              metrics.Metrics.skipped_items + (g.(k).Stack_tree.n - pos.(k));
            pos.(k) <- g.(k).Stack_tree.n
          end
          else begin
            (* candidates starting before the parent front arrive while
               the parent stack is still empty, so they are dropped on
               arrival anyway — gallop past the whole run *)
            g.(p).Stack_tree.e_probe pos.(p);
            let sp = g.(p).Stack_tree.gstart.(pos.(p)) in
            g.(k).Stack_tree.e_probe pos.(k);
            if g.(k).Stack_tree.gstart.(pos.(k)) < sp then begin
              let j =
                Stack_tree.gallop ~probe:g.(k).Stack_tree.e_probe
                  g.(k).Stack_tree.gstart pos.(k) g.(k).Stack_tree.n sp
              in
              metrics.Metrics.skipped_items <-
                metrics.Metrics.skipped_items + (j - pos.(k));
              pos.(k) <- j
            end
          end)
      topo
  in
  (* -- the merged cursor front: stream with the smallest next start -- *)
  let next_min () =
    let best = ref (-1) and best_start = ref max_int in
    for k = 0 to n - 1 do
      if pos.(k) < g.(k).Stack_tree.n then begin
        g.(k).Stack_tree.e_probe pos.(k);
        let s = g.(k).Stack_tree.gstart.(pos.(k)) in
        work.Work.comparisons <- work.Work.comparisons + 1;
        if s < !best_start then begin
          best_start := s;
          best := k
        end
      end
    done;
    if !best < 0 then None else Some !best
  in
  let clean_stacks start =
    Array.iter
      (fun st ->
        while st.len > 0 && entry st (st.len - 1) e_end < start do
          st.len <- st.len - 1;
          metrics.Metrics.stack_ops <- metrics.Metrics.stack_ops + 1
        done)
      stacks
  in
  (* -- emission: expand all chains of a just-arrived leaf entry -- *)
  let scratch = Array.make width Tuple.unbound in
  let append leaf =
    let b = blocks.(leaf) in
    for s = 0 to width - 1 do
      Ibuf.push b scratch.(s)
    done;
    metrics.Metrics.io_items <- metrics.Metrics.io_items + 2;
    metrics.Metrics.output_tuples <- metrics.Metrics.output_tuples + 1;
    incr sol_count;
    if limited then
      Budget.check_tuples budget ~during:"execute" ~count:!sol_count
  in
  let emit leaf ~start ~end_ ~level ~id ~parent_top =
    Array.fill scratch 0 width Tuple.unbound;
    scratch.(leaf) <- id;
    (* rev_path = leaf :: parent :: ... :: root *)
    let rev_path = List.rev paths.(leaf) in
    let rec expand chain bound ~cstart ~cend ~clevel ~caxis =
      match chain with
      | [] -> append leaf
      | k :: rest ->
          let st = stacks.(k) in
          for j = 0 to bound do
            (* Descendant steps are bulk emission — every stack entry up
               to [bound] qualifies by the nesting invariant, so, like
               the binary kernels' pair emission, they cost no
               comparison.  Child steps evaluate a real predicate. *)
            let ok =
              match caxis with
              | Axes.Descendant -> true
              | Axes.Child ->
                  work.Work.comparisons <- work.Work.comparisons + 1;
                  entry st j e_level = clevel - 1
                  && entry st j e_start < cstart
                  && entry st j e_end > cend
            in
            if ok then begin
              scratch.(k) <- entry st j e_id;
              expand rest
                (entry st j e_parent_top)
                ~cstart:(entry st j e_start) ~cend:(entry st j e_end)
                ~clevel:(entry st j e_level)
                ~caxis:(snd pa.(k))
            end
          done
    in
    match rev_path with
    | [ _ ] -> append leaf
    | _ :: rest ->
        expand rest parent_top ~cstart:start ~cend:end_ ~clevel:level
          ~caxis:(snd pa.(leaf))
    | [] -> assert false
  in
  (* -- phase 1: stream all candidates in global document order -- *)
  let rec loop () =
    skip_pass ();
    match next_min () with
    | None -> ()
    | Some k ->
        poll ();
        let r = pos.(k) in
        pos.(k) <- r + 1;
        g.(k).Stack_tree.e_meta r;
        let start = g.(k).Stack_tree.gstart.(r)
        and end_ = g.(k).Stack_tree.gend.(r)
        and level = g.(k).Stack_tree.glevel.(r) in
        clean_stacks start;
        let p, _ = pa.(k) in
        let parent_top =
          if p < 0 then -1
          else begin
            (* deepest strict ancestor: skip equal-interval top entries
               (the same document node as a candidate for both pattern
               nodes) *)
            let st = stacks.(p) in
            let pt = ref (st.len - 1) in
            while !pt >= 0 && entry st !pt e_start >= start do
              work.Work.comparisons <- work.Work.comparisons + 1;
              decr pt
            done;
            !pt
          end
        in
        if p < 0 || parent_top >= 0 then begin
          metrics.Metrics.stack_ops <- metrics.Metrics.stack_ops + 1;
          g.(k).Stack_tree.e_rows r (r + 1);
          let id = data.(k).((r * width) + k) in
          if is_leaf.(k) then emit k ~start ~end_ ~level ~id ~parent_top
          else push stacks.(k) ~start ~end_ ~level ~id ~parent_top
        end;
        loop ()
  in
  loop ();
  metrics.Metrics.joins <- metrics.Metrics.joins + Pattern.edge_count pat;
  (* -- phase 2: merge path-solution blocks on shared prefixes -- *)
  let shared_slots mask_a mask_b =
    let rec go i acc =
      if 1 lsl i > mask_a land mask_b then List.rev acc
      else if mask_a land mask_b land (1 lsl i) <> 0 then go (i + 1) (i :: acc)
      else go (i + 1) acc
    in
    go 0 []
  in
  let mask_of_path leaf =
    List.fold_left (fun m i -> m lor (1 lsl i)) 0 paths.(leaf)
  in
  (* Index permutation sorted by the key slots, tie-broken by row index:
     a total order, so the sorted sequence (and with it every downstream
     counter) is independent of the sort algorithm.  Accounted exactly
     like the algebra's Sort operator — sorts, sorted_items and
     sort_cost, no per-comparison work — so the engines' comparison
     counters price the same thing. *)
  let sort_perm rows_data nrows key_slots =
    let perm = Array.init nrows Fun.id in
    let cmp ra rb =
      let rec go = function
        | [] -> compare ra rb
        | s :: rest ->
            let c =
              compare rows_data.((ra * width) + s) rows_data.((rb * width) + s)
            in
            if c <> 0 then c else go rest
      in
      go key_slots
    in
    Array.sort cmp perm;
    metrics.Metrics.sorted_items <- metrics.Metrics.sorted_items + nrows;
    metrics.Metrics.sorts <- metrics.Metrics.sorts + 1;
    if nrows > 1 then
      metrics.Metrics.sort_cost <-
        metrics.Metrics.sort_cost
        +. (float_of_int nrows
            *. (Float.log (float_of_int nrows) /. Float.log 2.0));
    perm
  in
  let key_equal rows_a ra rows_b rb key_slots =
    List.for_all
      (fun s ->
        work.Work.comparisons <- work.Work.comparisons + 1;
        rows_a.((ra * width) + s) = rows_b.((rb * width) + s))
      key_slots
  in
  let merge (acc_data, acc_rows) (b_data, b_rows) shared =
    let pa_ = sort_perm acc_data acc_rows shared in
    let pb = sort_perm b_data b_rows shared in
    let out = Ibuf.create (max 64 (acc_rows * width)) in
    let emitted = ref 0 in
    let ia = ref 0 and ib = ref 0 in
    let key_lt rows_a ra rows_b rb =
      let rec go = function
        | [] -> false
        | s :: rest ->
            work.Work.comparisons <- work.Work.comparisons + 1;
            let va = rows_a.((ra * width) + s)
            and vb = rows_b.((rb * width) + s) in
            if va < vb then true else if va > vb then false else go rest
      in
      go shared
    in
    while !ia < acc_rows && !ib < b_rows do
      poll ();
      let ra = pa_.(!ia) and rb = pb.(!ib) in
      if key_lt acc_data ra b_data rb then incr ia
      else if key_lt b_data rb acc_data ra then incr ib
      else begin
        (* equal keys: delimit both runs and emit the cross product *)
        let ja = ref (!ia + 1) in
        while
          !ja < acc_rows && key_equal acc_data pa_.(!ja) acc_data ra shared
        do
          incr ja
        done;
        let jb = ref (!ib + 1) in
        while !jb < b_rows && key_equal b_data pb.(!jb) b_data rb shared do
          incr jb
        done;
        for x = !ia to !ja - 1 do
          for y = !ib to !jb - 1 do
            poll ();
            let ba = pa_.(x) * width and bb = pb.(y) * width in
            for s = 0 to width - 1 do
              let v = acc_data.(ba + s) in
              Ibuf.push out (if v <> Tuple.unbound then v else b_data.(bb + s))
            done;
            incr emitted;
            if limited then
              Budget.check_tuples budget ~during:"execute"
                ~count:(!sol_count + !emitted)
          done
        done;
        ia := !ja;
        ib := !jb
      end
    done;
    metrics.Metrics.output_tuples <- metrics.Metrics.output_tuples + !emitted;
    (Ibuf.data out, !emitted)
  in
  let result_data, result_rows =
    match leaf_nodes with
    | [] -> invalid_arg "Twig_stack.run: pattern has no leaves"
    | first :: rest ->
        let acc = ref (Ibuf.data blocks.(first), Ibuf.length blocks.(first) / width) in
        let acc_mask = ref (mask_of_path first) in
        List.iter
          (fun leaf ->
            let mask = mask_of_path leaf in
            let shared = shared_slots !acc_mask mask in
            let b = (Ibuf.data blocks.(leaf), Ibuf.length blocks.(leaf) / width) in
            acc := merge !acc b shared;
            acc_mask := !acc_mask lor mask)
          rest;
        !acc
  in
  (* -- canonical order: lexicographic by slot values (slot 0 first, i.e.
     document order of the pattern root) -- *)
  let all_slots = List.init width Fun.id in
  let perm = sort_perm result_data result_rows all_slots in
  let buf = Ibuf.create (max 16 (result_rows * width)) in
  Array.iter
    (fun r ->
      let base = r * width in
      for s = 0 to width - 1 do
        Ibuf.push buf result_data.(base + s)
      done)
    perm;
  Batch.unsafe_of_raw ~width ~len:result_rows (Ibuf.data buf)

let run_tuples ?budget ~metrics ~doc ~pat ~inputs () =
  Batch.to_tuples (run ?budget ~metrics ~doc ~pat ~inputs ())
