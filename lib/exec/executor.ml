open Sjos_storage
open Sjos_pattern
open Sjos_cost
open Sjos_plan
open Sjos_obs

exception Tuple_limit_exceeded of int

type run = {
  tuples : Tuple.t array;
  metrics : Metrics.t;
  cost_units : float;
  seconds : float;
  profile : Explain.measured;
}

let op_span_name = function
  | Plan.Index_scan _ -> "exec.index_scan"
  | Plan.Sort _ -> "exec.sort"
  | Plan.Structural_join _ -> "exec.join"

let execute ?(factors = Cost_model.default) ?max_tuples index pat plan =
  (match Properties.validate pat plan with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Executor.execute: invalid plan: " ^ msg));
  let doc = Element_index.document index in
  let width = Pattern.node_count pat in
  let metrics = Metrics.create () in
  let check_limit (tuples : Tuple.t array) =
    match max_tuples with
    | Some limit when Array.length tuples > limit ->
        raise (Tuple_limit_exceeded (Array.length tuples))
    | _ -> tuples
  in
  let t0 = Clock.now_ns () in
  (* Each operator gets its own metrics and its own (monotonic) self time,
     so the run profile prices every operator separately; the per-operator
     metrics are folded into the run total afterwards. *)
  let rec eval plan =
    let inputs, apply =
      match plan with
      | Plan.Index_scan i ->
          ( [],
            fun own _ ->
              let candidates = Candidate.select index (Pattern.label pat i) in
              check_limit
                (Operators.index_scan ~metrics:own ~width ~slot:i candidates) )
      | Plan.Sort { input; by } ->
          ( [ input ],
            fun own -> function
              | [ (tuples, _) ] -> Operators.sort ~metrics:own ~doc ~by tuples
              | _ -> assert false )
      | Plan.Structural_join { anc_side; desc_side; edge; algo } ->
          ( [ anc_side; desc_side ],
            fun own -> function
              | [ (anc_tuples, _); (desc_tuples, _) ] ->
                  check_limit
                    (Stack_tree.join ~metrics:own ~doc ~axis:edge.Pattern.axis
                       ~algo
                       ~anc:(anc_tuples, edge.Pattern.anc)
                       ~desc:(desc_tuples, edge.Pattern.desc))
              | _ -> assert false )
    in
    (* the span opens before the inputs run so child operators nest *)
    let span = Trace.begin_span (op_span_name plan) in
    let child_results =
      (* left-to-right: ancestor side before descendant side *)
      List.rev (List.fold_left (fun acc p -> eval p :: acc) [] inputs)
    in
    let own = Metrics.create () in
    let op_t0 = Clock.now_ns () in
    let tuples = apply own child_results in
    let seconds = Clock.elapsed_seconds ~since:op_t0 in
    Trace.end_span span
      ~attrs:
        [
          ("rows", Json.Int (Array.length tuples));
          ("cost_units", Json.Float (Metrics.cost_units factors own));
        ];
    Metrics.add metrics own;
    ( tuples,
      {
        Explain.mplan = plan;
        rows = Array.length tuples;
        units = Metrics.cost_units factors own;
        seconds;
        inputs = List.map snd child_results;
      } )
  in
  let tuples, profile = eval plan in
  let seconds = Clock.elapsed_seconds ~since:t0 in
  if Registry.enabled () then begin
    Registry.add_seconds (Registry.timer "executor.seconds") seconds;
    Registry.add (Registry.counter "executor.output_tuples") (Array.length tuples)
  end;
  {
    tuples;
    metrics;
    cost_units = Metrics.cost_units factors metrics;
    seconds;
    profile;
  }

let count_matches ?factors index pat plan =
  Array.length (execute ?factors index pat plan).tuples
