open Sjos_storage
open Sjos_pattern
open Sjos_cost
open Sjos_plan
open Sjos_obs
open Sjos_guard

type kernel = [ `Columnar | `Legacy ]

type run = {
  tuples : Tuple.t array;
  metrics : Metrics.t;
  cost_units : float;
  seconds : float;
  profile : Explain.measured;
}

let op_span_name = function
  | Plan.Index_scan _ -> "exec.index_scan"
  | Plan.Sort _ -> "exec.sort"
  | Plan.Structural_join _ -> "exec.join"
  | Plan.Holistic _ -> "exec.twig"

(* Candidate arrays from our own element index are sorted by construction;
   an externally supplied fetch (plan hints, fault injection, a remote
   storage tier) is a trust boundary and gets verified — the joins silently
   produce garbage on unsorted input otherwise.  The check reads the
   document's [starts] column instead of chasing one [Node.t] record per
   element: that is also exactly what the join kernels will see, since
   they resolve positions through the document, not through the fetched
   records.  An id the document does not know is reported as corrupt
   rather than joined blindly. *)
let verify_document_order ~doc ~what candidates =
  let { Sjos_xml.Cols.starts; _ } = Sjos_xml.Document.positions doc in
  let size = Array.length starts in
  let n = Array.length candidates in
  let prev = ref min_int in
  for i = 0 to n - 1 do
    let id = candidates.(i).Sjos_xml.Node.id in
    if id < 0 || id >= size then
      Error.fail
        (Error.Corrupt_input
           {
             source = what;
             reason =
               Printf.sprintf "candidate id %d not in document at position %d"
                 id i;
           });
    let s = Array.unsafe_get starts id in
    if s < !prev then
      Error.fail
        (Error.Corrupt_input
           {
             source = what;
             reason =
               Printf.sprintf
                 "candidate stream not in document order at position %d" i;
           });
    prev := s
  done;
  candidates

(* One physical engine = how each operator runs and how rows are counted.
   The two instantiations (columnar batches, legacy tuple arrays) share
   the interpreter below, so spans, per-operator metrics and the run
   profile are produced identically by both.  [root_join] runs the
   plan's outermost join straight to the caller-facing tuple format —
   for the columnar engine that skips one full materialization of the
   (often dominant) root output. *)
type 'r engine = {
  scan : Metrics.t -> int -> 'r;
  sort_op : Metrics.t -> int -> 'r -> 'r;
  join_op : Metrics.t -> Pattern.edge -> Plan.algo -> 'r -> 'r -> 'r;
  root_join : Metrics.t -> Pattern.edge -> Plan.algo -> 'r -> 'r -> Tuple.t array;
  twig : Metrics.t -> 'r;
      (** the holistic operator: candidate acquisition (and its
          accounting) is the engine's own business, so it appears as one
          leaf operator in spans and the run profile *)
  rows : 'r -> int;
  to_tuples : 'r -> Tuple.t array;
}

let execute ?(factors = Cost_model.default) ?(budget = Budget.unlimited)
    ?max_tuples ?fetch ?(kernel = `Columnar) ?pool ?store index pat plan =
  (match Properties.validate pat plan with
  | Ok () -> ()
  | Error msg -> Error.fail (Error.Invalid_plan msg));
  let budget = Budget.cap_tuples budget max_tuples in
  (* No explicit pool means the process-wide default, sized by
     SJOS_DOMAINS (size 1 unless the environment asks for more — the
     kernels then take their serial path unchanged). *)
  let pool =
    match pool with Some p -> p | None -> Sjos_par.Pool.get_default ()
  in
  (* No explicit store means the Mem backend over this index — exactly
     the pre-Column_store behavior (and a cheap wrapper to build).
     Backend selection is the caller's job: {!Sjos_engine.Database}
     threads its configured store through here. *)
  let store =
    match store with
    | Some s ->
        if Column_store.index s != index then
          invalid_arg "Executor.execute: store built over a different index";
        s
    | None -> Column_store.create ~config:Column_store.mem index
  in
  let doc = Element_index.document index in
  let width = Pattern.node_count pat in
  let metrics = Metrics.create () in
  let candidates_for i =
    let spec = Pattern.label pat i in
    match fetch with
    | None -> Column_store.select_nodes store spec
    | Some f ->
        verify_document_order ~doc
          ~what:(Printf.sprintf "candidates(%s)" (Candidate.spec_to_string spec))
          (f spec)
  in
  let t0 = Clock.now_ns () in
  (* Each operator gets its own metrics and its own (monotonic) self time,
     so the run profile prices every operator separately; the per-operator
     metrics are folded into the run total afterwards. *)
  let run_with : type r. r engine -> Tuple.t array * Explain.measured =
   fun eng ->
    let check_output r =
      Budget.check_tuples budget ~during:"execute" ~count:(eng.rows r);
      r
    in
    (* [measure] owns the span/metrics/profile bookkeeping; it is
       polymorphic in the produced value so the root operator can produce
       the caller-facing tuple array while interior operators stay in the
       engine's row representation. *)
    let rec eval plan : r * Explain.measured =
      match plan with
      | Plan.Index_scan i ->
          measure plan [] (fun own _ -> check_output (eng.scan own i)) eng.rows
      | Plan.Sort { input; by } ->
          measure plan [ input ]
            (fun own -> function
              | [ (r, _) ] -> eng.sort_op own by r
              | _ -> assert false)
            eng.rows
      | Plan.Structural_join { anc_side; desc_side; edge; algo } ->
          measure plan
            [ anc_side; desc_side ]
            (fun own -> function
              | [ (a, _); (d, _) ] -> check_output (eng.join_op own edge algo a d)
              | _ -> assert false)
            eng.rows
      | Plan.Holistic _ ->
          measure plan [] (fun own _ -> check_output (eng.twig own)) eng.rows
    and measure :
        'a.
        Plan.t ->
        Plan.t list ->
        (Metrics.t -> (r * Explain.measured) list -> 'a) ->
        ('a -> int) ->
        'a * Explain.measured =
     fun plan inputs apply rows_of ->
      Budget.check budget ~during:"execute";
      (* the span opens before the inputs run so child operators nest *)
      let span = Trace.begin_span (op_span_name plan) in
      let child_results =
        (* left-to-right: ancestor side before descendant side *)
        List.rev (List.fold_left (fun acc p -> eval p :: acc) [] inputs)
      in
      let own = Metrics.create () in
      let op_t0 = Clock.now_ns () in
      let r = apply own child_results in
      let seconds = Clock.elapsed_seconds ~since:op_t0 in
      Trace.end_span span
        ~attrs:
          [
            ("rows", Json.Int (rows_of r));
            ("cost_units", Json.Float (Metrics.cost_units factors own));
          ];
      Metrics.add metrics own;
      ( r,
        {
          Explain.mplan = plan;
          rows = rows_of r;
          units = Metrics.cost_units factors own;
          seconds;
          inputs = List.map snd child_results;
        } )
    in
    match plan with
    | Plan.Structural_join { anc_side; desc_side; edge; algo } ->
        measure plan
          [ anc_side; desc_side ]
          (fun own -> function
            | [ (a, _); (d, _) ] ->
                let tuples = eng.root_join own edge algo a d in
                Budget.check_tuples budget ~during:"execute"
                  ~count:(Array.length tuples);
                tuples
            | _ -> assert false)
          Array.length
    | _ ->
        let r, profile = eval plan in
        (eng.to_tuples r, profile)
  in
  let tuples, profile =
    match kernel with
    | `Columnar ->
        (* The columnar engine's row representation is {!Stack_tree.input}:
           a leaf scan on the Disk backend stays a lazy handle all the way
           into the join, so only the pages the skip-ahead merge examines
           are ever read.  Scan accounting is identical either way — one
           index item per candidate, leaf length answered from the
           catalog. *)
        let scan_input own i =
          let spec = Pattern.label pat i in
          match fetch with
          | Some f ->
              Stack_tree.Rows
                (Operators.index_scan_batch ~metrics:own ~width ~slot:i
                   (Sjos_xml.Cols.of_nodes
                      (verify_document_order ~doc
                         ~what:
                           (Printf.sprintf "candidates(%s)"
                              (Candidate.spec_to_string spec))
                         (f spec))))
          | None -> (
              match Column_store.leaf store spec with
              | Some lf ->
                  own.Metrics.index_items <-
                    own.Metrics.index_items + Column_store.leaf_length lf;
                  Stack_tree.leaf ~width ~slot:i lf
              | None ->
                  Stack_tree.Rows
                    (Operators.index_scan_batch ~metrics:own ~width ~slot:i
                       (Column_store.select store spec)))
        in
        run_with
          {
            scan = scan_input;
            sort_op =
              (fun own by r ->
                Stack_tree.Rows
                  (Operators.sort_batch ~budget ~metrics:own ~doc ~by
                     (Stack_tree.to_batch r)));
            join_op =
              (fun own edge algo a d ->
                Stack_tree.Rows
                  (Stack_tree.join_batch_in ~budget ~pool ~metrics:own ~doc
                     ~axis:edge.Pattern.axis ~algo
                     ~anc:(a, edge.Pattern.anc)
                     ~desc:(d, edge.Pattern.desc) ()));
            root_join =
              (fun own edge algo a d ->
                Stack_tree.join_root_in ~budget ~pool ~metrics:own ~doc
                  ~axis:edge.Pattern.axis ~algo
                  ~anc:(a, edge.Pattern.anc)
                  ~desc:(d, edge.Pattern.desc) ());
            twig =
              (fun own ->
                let inputs = Array.init width (fun i -> scan_input own i) in
                Stack_tree.Rows
                  (Twig_stack.run ~budget ~metrics:own ~doc ~pat ~inputs ()));
            rows = Stack_tree.input_rows;
            to_tuples = (fun r -> Batch.to_tuples (Stack_tree.to_batch r));
          }
    | `Legacy ->
        run_with
          {
            scan =
              (fun own i ->
                Operators.index_scan ~metrics:own ~width ~slot:i
                  (candidates_for i));
            sort_op =
              (fun own by tuples ->
                Operators.sort_legacy ~budget ~metrics:own ~doc ~by tuples);
            join_op =
              (fun own edge algo a d ->
                Stack_tree_legacy.join ~budget ~metrics:own ~doc
                  ~axis:edge.Pattern.axis ~algo
                  ~anc:(a, edge.Pattern.anc)
                  ~desc:(d, edge.Pattern.desc) ());
            root_join =
              (fun own edge algo a d ->
                Stack_tree_legacy.join ~budget ~metrics:own ~doc
                  ~axis:edge.Pattern.axis ~algo
                  ~anc:(a, edge.Pattern.anc)
                  ~desc:(d, edge.Pattern.desc) ());
            twig =
              (fun own ->
                let tuples =
                  Twig_join.run ~budget
                    ?candidates:
                      (match fetch with
                      | None -> None
                      | Some _ -> Some candidates_for)
                    ~metrics:own index pat
                in
                (* canonical order parity with the columnar kernel:
                   lexicographic by slot value (presentation-only, so
                   uncharged — the columnar kernel's charged ordering
                   pass is part of its merge machinery, this one exists
                   only to make the two engines' outputs comparable) *)
                let cmp (a : Tuple.t) (b : Tuple.t) =
                  let rec go s =
                    if s = width then 0
                    else
                      let c = compare a.(s) b.(s) in
                      if c <> 0 then c else go (s + 1)
                  in
                  go 0
                in
                Array.sort cmp tuples;
                tuples);
            rows = Array.length;
            to_tuples = Fun.id;
          }
  in
  let seconds = Clock.elapsed_seconds ~since:t0 in
  (* Fold the run's differential metrics into the deterministic work
     accumulator.  [metrics] already holds the merged totals from every
     operator and shard (integer sums, partition-invariant), so a single
     end-of-run fold keeps the counters engine- and domain-independent. *)
  let w = Work.current () in
  w.Work.candidates_scanned <-
    w.Work.candidates_scanned + metrics.Metrics.index_items;
  w.Work.tuples_emitted <- w.Work.tuples_emitted + metrics.Metrics.output_tuples;
  w.Work.items_skipped <- w.Work.items_skipped + metrics.Metrics.skipped_items;
  w.Work.stack_ops <- w.Work.stack_ops + metrics.Metrics.stack_ops;
  w.Work.io_items <- w.Work.io_items + metrics.Metrics.io_items;
  w.Work.sorted_items <- w.Work.sorted_items + metrics.Metrics.sorted_items;
  if Registry.enabled () then begin
    Registry.add_seconds (Registry.timer "executor.seconds") seconds;
    Registry.add (Registry.counter "executor.output_tuples") (Array.length tuples)
  end;
  {
    tuples;
    metrics;
    cost_units = Metrics.cost_units factors metrics;
    seconds;
    profile;
  }

let count_matches ?factors index pat plan =
  Array.length (execute ?factors index pat plan).tuples
