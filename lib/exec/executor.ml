open Sjos_storage
open Sjos_pattern
open Sjos_cost
open Sjos_plan
open Sjos_obs
open Sjos_guard

type run = {
  tuples : Tuple.t array;
  metrics : Metrics.t;
  cost_units : float;
  seconds : float;
  profile : Explain.measured;
}

let op_span_name = function
  | Plan.Index_scan _ -> "exec.index_scan"
  | Plan.Sort _ -> "exec.sort"
  | Plan.Structural_join _ -> "exec.join"

(* Candidate arrays from our own element index are sorted by construction;
   an externally supplied fetch (plan hints, fault injection, a remote
   storage tier) is a trust boundary and gets verified — the joins silently
   produce garbage on unsorted input otherwise. *)
let verify_document_order ~what candidates =
  let n = Array.length candidates in
  for i = 1 to n - 1 do
    if
      candidates.(i).Sjos_xml.Node.start_pos
      < candidates.(i - 1).Sjos_xml.Node.start_pos
    then
      Error.fail
        (Error.Corrupt_input
           {
             source = what;
             reason =
               Printf.sprintf
                 "candidate stream not in document order at position %d" i;
           })
  done;
  candidates

let execute ?(factors = Cost_model.default) ?(budget = Budget.unlimited)
    ?max_tuples ?fetch index pat plan =
  (match Properties.validate pat plan with
  | Ok () -> ()
  | Error msg -> Error.fail (Error.Invalid_plan msg));
  let budget = Budget.cap_tuples budget max_tuples in
  let doc = Element_index.document index in
  let width = Pattern.node_count pat in
  let metrics = Metrics.create () in
  let candidates_for i =
    let spec = Pattern.label pat i in
    match fetch with
    | None -> Candidate.select index spec
    | Some f ->
        verify_document_order
          ~what:(Printf.sprintf "candidates(%s)" (Candidate.spec_to_string spec))
          (f spec)
  in
  let check_output (tuples : Tuple.t array) =
    Budget.check_tuples budget ~during:"execute"
      ~count:(Array.length tuples);
    tuples
  in
  let t0 = Clock.now_ns () in
  (* Each operator gets its own metrics and its own (monotonic) self time,
     so the run profile prices every operator separately; the per-operator
     metrics are folded into the run total afterwards. *)
  let rec eval plan =
    Budget.check budget ~during:"execute";
    let inputs, apply =
      match plan with
      | Plan.Index_scan i ->
          ( [],
            fun own _ ->
              check_output
                (Operators.index_scan ~metrics:own ~width ~slot:i
                   (candidates_for i)) )
      | Plan.Sort { input; by } ->
          ( [ input ],
            fun own -> function
              | [ (tuples, _) ] ->
                  Operators.sort ~budget ~metrics:own ~doc ~by tuples
              | _ -> assert false )
      | Plan.Structural_join { anc_side; desc_side; edge; algo } ->
          ( [ anc_side; desc_side ],
            fun own -> function
              | [ (anc_tuples, _); (desc_tuples, _) ] ->
                  check_output
                    (Stack_tree.join ~budget ~metrics:own ~doc
                       ~axis:edge.Pattern.axis ~algo
                       ~anc:(anc_tuples, edge.Pattern.anc)
                       ~desc:(desc_tuples, edge.Pattern.desc) ())
              | _ -> assert false )
    in
    (* the span opens before the inputs run so child operators nest *)
    let span = Trace.begin_span (op_span_name plan) in
    let child_results =
      (* left-to-right: ancestor side before descendant side *)
      List.rev (List.fold_left (fun acc p -> eval p :: acc) [] inputs)
    in
    let own = Metrics.create () in
    let op_t0 = Clock.now_ns () in
    let tuples = apply own child_results in
    let seconds = Clock.elapsed_seconds ~since:op_t0 in
    Trace.end_span span
      ~attrs:
        [
          ("rows", Json.Int (Array.length tuples));
          ("cost_units", Json.Float (Metrics.cost_units factors own));
        ];
    Metrics.add metrics own;
    ( tuples,
      {
        Explain.mplan = plan;
        rows = Array.length tuples;
        units = Metrics.cost_units factors own;
        seconds;
        inputs = List.map snd child_results;
      } )
  in
  let tuples, profile = eval plan in
  let seconds = Clock.elapsed_seconds ~since:t0 in
  if Registry.enabled () then begin
    Registry.add_seconds (Registry.timer "executor.seconds") seconds;
    Registry.add (Registry.counter "executor.output_tuples") (Array.length tuples)
  end;
  {
    tuples;
    metrics;
    cost_units = Metrics.cost_units factors metrics;
    seconds;
    profile;
  }

let count_matches ?factors index pat plan =
  Array.length (execute ?factors index pat plan).tuples
