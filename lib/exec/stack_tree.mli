(** The Stack-Tree family of structural join algorithms
    (Al-Khalifa et al., ICDE 2002), generalized to tuple inputs and
    implemented as columnar batch kernels.

    Both variants merge two inputs sorted by the document order of their
    join nodes, maintaining an in-memory stack of nested ancestor-side
    groups:

    - {b Stack-Tree-Desc} streams its output ordered by the descendant
      join node — no buffering at all;
    - {b Stack-Tree-Anc} produces output ordered by the ancestor join
      node, which requires buffering result pairs until the ancestor is
      popped — the source of the [2 |AB| f_IO] term in the cost model.

    The kernels operate over flat int columns ({!Batch.t} rows plus the
    document's position columns): grouping, the merge stack and the
    output are all reusable int arrays — no list conses on the hot path —
    and the merge skips ahead over provably unproductive input runs
    (galloping the descendant start column, batch-dropping dead ancestor
    groups), counting what it skipped in {!Metrics.t.skipped_items}.
    Outputs, orderings and all other counters are bit-identical to the
    reference implementation kept in {!Stack_tree_legacy}.

    Inputs sorted by their join node keep equal nodes adjacent;
    consecutive rows sharing the join node are processed as one group, so
    duplicate join-node values (the normal case for intermediate results)
    are handled exactly.

    {b Parallelism.}  Given a [pool] of size > 1, a large enough join is
    range-partitioned on the ancestor group column at forest-closed cut
    points (no ancestor interval straddles a cut), each shard runs the
    unchanged serial kernel over its slice on a pool domain, per-shard
    metrics are merged at the barrier, and shard outputs are
    concatenated in shard order.  The result — tuples, ordering, and
    every counter including [skipped_items] — is bit-identical to the
    serial run by construction, for any shard count.  Sharding is
    declined (falling back to serial) when the budget carries a
    [max_tuples] ceiling, since stopping after exactly the n-th global
    tuple is inherently sequential; deadline/cancellation budgets are
    polled per shard and abort cooperatively.  [par_min_rows] (default
    4096 total input rows) keeps small joins serial. *)

open Sjos_xml
open Sjos_plan

(** {1 Join inputs}

    The kernels accept either a resident columnar batch or a lazy
    disk-backed leaf — one tag's candidate columns served page-at-a-time
    by a {!Sjos_storage.Column_store.leaf}.  A leaf input faults in only
    what the merge examines: group metadata for groups actually
    compared, single [starts] probes for gallop skip-ahead (an O(log d)
    page cost for a skip over [d] items), and the [ids] column only for
    rows that reach an emitted pair.  Outputs and all counters except
    page/IO accounting are bit-identical to running the same join over
    the materialized batch.

    Sharded (multi-domain) runs force leaf inputs resident before
    cutting, so their page accounting is a deterministic full scan
    independent of domain count. *)

type leaf_input

type input = Rows of Batch.t | Leaf of leaf_input

val leaf : width:int -> slot:int -> Sjos_storage.Column_store.leaf -> input
(** A lazy scan of the leaf's tag bound in [slot] of a width-[width]
    row.  Raises [Invalid_argument] if [slot] is out of range. *)

val input_rows : input -> int
(** Row count — answered without IO for a leaf. *)

val to_batch : input -> Batch.t
(** The input as a resident batch; forces a leaf fully (charging its
    full-scan page touches). *)

(** {1 Kernel internals shared with the holistic twig kernel}

    {!Twig_stack} drives the same input machinery — grouped candidate
    streams with lazy out-of-core faulting, and galloping skip-ahead —
    so leaves, probes and skip accounting behave identically whether a
    stream feeds a binary Stack-Tree merge or the holistic pass. *)

type groups = {
  n : int;  (** number of groups *)
  off : int array;  (** [n + 1] row offsets delimiting each group *)
  gstart : int array;  (** join-node start positions, strictly increasing *)
  gend : int array;
  glevel : int array;
  e_meta : int -> unit;  (** fault group [g]'s start/end/level *)
  e_probe : int -> unit;  (** fault group [g]'s start only (gallop probe) *)
  e_rows : int -> int -> unit;  (** fault absolute row range [lo, hi) *)
}
(** One input grouped by its join slot: consecutive rows sharing the
    join node form a group; the [e_*] closures fault a disk-backed
    leaf's pages in before the corresponding array slots are read
    (no-ops for resident inputs). *)

val group_input : cols:Cols.t Lazy.t -> input -> int -> groups
(** Group an input by slot.  Raises [Invalid_argument] when the input is
    not sorted by the slot, the slot is unbound, or an id is out of the
    document's range. *)

val input_width : input -> int

val input_data : input -> int array
(** The input's flat row-major data.  For a leaf, slots are readable
    only after the covering {!groups.e_rows} call. *)

val gallop : probe:(int -> unit) -> int array -> int -> int -> int -> int
(** [gallop ~probe a lo hi target] — first index in [[lo, hi)] whose
    value is [>= target] ([hi] if none), by exponential probe plus
    binary search; [probe i] is called before [a.(i)] is read. *)

val join_batch_in :
  ?budget:Sjos_guard.Budget.t ->
  ?pool:Sjos_par.Pool.t ->
  ?par_min_rows:int ->
  metrics:Metrics.t ->
  doc:Document.t ->
  axis:Axes.axis ->
  algo:Plan.algo ->
  anc:input * int ->
  desc:input * int ->
  unit ->
  Batch.t
(** {!join_batch} generalized to lazy inputs.  A leaf joined on a slot
    other than its own bound slot is materialized first (its other
    slots are unbound, so such a join is degenerate anyway). *)

val join_root_in :
  ?budget:Sjos_guard.Budget.t ->
  ?pool:Sjos_par.Pool.t ->
  ?par_min_rows:int ->
  metrics:Metrics.t ->
  doc:Document.t ->
  axis:Axes.axis ->
  algo:Plan.algo ->
  anc:input * int ->
  desc:input * int ->
  unit ->
  Tuple.t array
(** {!join_root} generalized to lazy inputs. *)

val join_batch :
  ?budget:Sjos_guard.Budget.t ->
  ?pool:Sjos_par.Pool.t ->
  ?par_min_rows:int ->
  metrics:Metrics.t ->
  doc:Document.t ->
  axis:Axes.axis ->
  algo:Plan.algo ->
  anc:Batch.t * int ->
  desc:Batch.t * int ->
  unit ->
  Batch.t
(** [join_batch ~metrics ~doc ~axis ~algo ~anc:(ba, sa) ~desc:(bd, sd) ()]
    joins the rows of [ba] (whose slot [sa] holds the ancestor-side node,
    sorted by it) with [bd] (slot [sd], sorted by it), returning merged
    rows ordered by the ancestor (STJ-Anc) or descendant (STJ-Desc) node.
    Raises [Invalid_argument] if an input is not sorted by its join slot,
    a join slot is unbound, or the batch widths differ.

    [budget] (default unlimited, zero-cost) is polled from the merge
    loops: every produced tuple is checked against the materialization
    ceiling, and the deadline/cancellation flag every 256 merge steps —
    raising {!Sjos_guard.Budget.Exhausted} with the partial output count. *)

val join_root :
  ?budget:Sjos_guard.Budget.t ->
  ?pool:Sjos_par.Pool.t ->
  ?par_min_rows:int ->
  metrics:Metrics.t ->
  doc:Document.t ->
  axis:Axes.axis ->
  algo:Plan.algo ->
  anc:Batch.t * int ->
  desc:Batch.t * int ->
  unit ->
  Tuple.t array
(** Same join as {!join_batch} — same inputs, same order, same counters —
    but each output tuple is built in boxed form exactly once instead of
    being written to a flat batch and converted afterwards.  Use for the
    last join of a plan, whose result is handed to the caller as
    [Tuple.t array] anyway: materializing the root output twice is pure
    overhead, and for join-heavy patterns the root output dominates the
    run. *)

val join :
  ?budget:Sjos_guard.Budget.t ->
  ?pool:Sjos_par.Pool.t ->
  ?par_min_rows:int ->
  metrics:Metrics.t ->
  doc:Document.t ->
  axis:Axes.axis ->
  algo:Plan.algo ->
  anc:Tuple.t array * int ->
  desc:Tuple.t array * int ->
  unit ->
  Tuple.t array
(** {!join_batch} behind the classic tuple-array surface: inputs are
    packed with {!Batch.of_tuples} and the result unpacked with
    {!Batch.to_tuples}.  Same contract and same counters. *)
