(** The Stack-Tree family of structural join algorithms
    (Al-Khalifa et al., ICDE 2002), generalized to tuple inputs.

    Both variants merge two inputs sorted by the document order of their
    join nodes, maintaining an in-memory stack of nested ancestor-side
    groups:

    - {b Stack-Tree-Desc} streams its output ordered by the descendant
      join node — no buffering at all;
    - {b Stack-Tree-Anc} produces output ordered by the ancestor join
      node, which requires buffering result pairs in per-stack-entry
      self/inherit lists until the ancestor is popped — the source of the
      [2 |AB| f_IO] term in the cost model.

    Inputs are tuple arrays; consecutive tuples sharing the same join node
    are processed as one group, so duplicate join-node values (the normal
    case for intermediate results) are handled exactly. *)

open Sjos_xml
open Sjos_plan

val join :
  ?budget:Sjos_guard.Budget.t ->
  metrics:Metrics.t ->
  doc:Document.t ->
  axis:Axes.axis ->
  algo:Plan.algo ->
  anc:Tuple.t array * int ->
  desc:Tuple.t array * int ->
  unit ->
  Tuple.t array
(** [join ~metrics ~doc ~axis ~algo ~anc:(ta, sa) ~desc:(td, sd) ()] joins the
    tuples of [ta] (whose slot [sa] holds the ancestor-side node, sorted by
    it) with [td] (slot [sd], sorted by it), returning merged tuples
    ordered by the ancestor (STJ-Anc) or descendant (STJ-Desc) node.
    Raises [Invalid_argument] if an input is not sorted by its join slot.

    [budget] (default unlimited, zero-cost) is polled from the merge
    loops: every produced tuple is checked against the materialization
    ceiling, and the deadline/cancellation flag every 256 merge steps —
    raising {!Sjos_guard.Budget.Exhausted} with the partial output count. *)
