open Sjos_xml
open Sjos_storage
open Sjos_plan
open Sjos_guard
module Ibuf = Batch.Ibuf
module Pool = Sjos_par.Pool
module Shard = Sjos_par.Shard
module Work = Sjos_obs.Work
module Registry = Sjos_obs.Registry

(* Columnar Stack-Tree kernels.  The legacy group-list implementation is
   preserved in {!Stack_tree_legacy}; this module must produce
   bit-identical tuple sequences and counter totals (modulo
   [skipped_items]) while touching only flat int arrays on the hot path.

   With a domain pool, the join is additionally range-partitioned on the
   ancestor group column at forest-closed cut points (no ancestor
   interval straddles a cut — {!Sjos_par.Shard.cut_points}), each shard
   runs the identical serial kernel over its slice, and shard outputs
   are concatenated in shard order.  Sharding is output- and
   counter-preserving by construction, not by sampling: see the
   [~drain] accounting in {!merge_loop}. *)

(* ---------- grouping: batch rows -> flat group columns ---------- *)

(* Consecutive rows with the same node in the join slot form one group;
   [off] has [n + 1] meaningful entries delimiting each group's row
   range.  The arrays are sized for the worst case (one group per row)
   and filled in one pass — growth-free, so grouping costs a handful of
   ns per input row; entries past [n] are unused.

   The [e_*] closures are the out-of-core hook: before the merge reads a
   group's metadata or a row range it calls the matching closure, which
   for a disk-backed leaf faults the covering pages in through the
   buffer pool ({!Column_store.ensure_meta} and friends).  In-memory
   groups carry shared no-op closures, so the resident hot path pays one
   indirect call per ensured access and nothing else.  Once a slot has
   been decoded its value persists even if the pool later evicts the
   backing page (re-reads are idempotent), so stacked ancestor groups
   ensured at push time stay readable for the whole merge. *)
type groups = {
  n : int;
  off : int array;
  gstart : int array;  (* join-node start positions, strictly increasing *)
  gend : int array;
  glevel : int array;
  e_meta : int -> unit;  (* fault group [g]'s start/end/level *)
  e_probe : int -> unit;  (* fault group [g]'s start only (gallop probe) *)
  e_rows : int -> int -> unit;  (* fault absolute row range [lo, hi) *)
}

let no_ensure (_ : int) = ()
let no_ensure2 (_ : int) (_ : int) = ()

let group ~(cols : Cols.t) (b : Batch.t) slot =
  let width = Batch.width b and data = Batch.data b and len = Batch.length b in
  if len > 0 && (slot < 0 || slot >= width) then
    invalid_arg "Stack_tree: join slot out of range";
  let starts = cols.Cols.starts
  and ends = cols.Cols.ends
  and levels = cols.Cols.levels in
  let size = Array.length starts in
  let off = Array.make (len + 1) 0
  and gstart = Array.make len 0
  and gend = Array.make len 0
  and glevel = Array.make len 0 in
  let n = ref 0 in
  let current = ref min_int and last_start = ref (-1) in
  for r = 0 to len - 1 do
    let id = Array.unsafe_get data ((r * width) + slot) in
    if id <> !current then begin
      if id = Tuple.unbound then
        invalid_arg "Stack_tree: join slot unbound in input tuple";
      if id < 0 || id >= size then
        invalid_arg (Printf.sprintf "Document.node: id %d out of range" id);
      let s = Array.unsafe_get starts id in
      if s < !last_start then
        invalid_arg "Stack_tree: input not sorted by its join slot";
      last_start := s;
      let k = !n in
      Array.unsafe_set off k r;
      Array.unsafe_set gstart k s;
      Array.unsafe_set gend k (Array.unsafe_get ends id);
      Array.unsafe_set glevel k (Array.unsafe_get levels id);
      n := k + 1;
      current := id
    end
  done;
  off.(!n) <- len;
  {
    n = !n;
    off;
    gstart;
    gend;
    glevel;
    e_meta = no_ensure;
    e_probe = no_ensure;
    e_rows = no_ensure2;
  }

(* Groups [lo, hi) as a shard-local view.  Row offsets stay absolute
   (they index the shared batch data), only the group indexing is
   rebased.  Sharded slices always run over fully-forced inputs (see
   {!shard_cuts}), so the views carry no-op ensure closures — per-shard
   lazy faulting would make page accounting depend on domain
   interleaving. *)
let sub_groups (g : groups) lo hi =
  {
    n = hi - lo;
    off = Array.sub g.off lo (hi - lo + 1);
    gstart = Array.sub g.gstart lo (hi - lo);
    gend = Array.sub g.gend lo (hi - lo);
    glevel = Array.sub g.glevel lo (hi - lo);
    e_meta = no_ensure;
    e_probe = no_ensure;
    e_rows = no_ensure2;
  }

(* ---------- inputs: resident batches or disk-backed leaves ---------- *)

(* A leaf input is one tag's candidate columns served lazily by a
   {!Column_store.leaf}: the merge faults in group metadata for groups
   it actually examines, single [starts] probes for gallop skips, and
   [ids] only for rows that reach an emitted pair.  Row data is exposed
   to the shared emit machinery as the same flat [width * n] array a
   materialized scan would produce ([slot] bound, everything else
   [Tuple.unbound]); the [ids] column is copied in chunk-at-a-time as
   emits demand it, tracked by one fill flag per chunk. *)

let leaf_chunk = 256

type leaf_input = {
  lf : Column_store.leaf;
  lwidth : int;
  lslot : int;
  ldata : int array;
  lfill : Bytes.t;  (* per-chunk fill flags over [ldata] rows *)
}

type input = Rows of Batch.t | Leaf of leaf_input

let leaf ~width ~slot lf =
  if slot < 0 || slot >= width then
    invalid_arg "Stack_tree: join slot out of range";
  let n = Column_store.leaf_length lf in
  Leaf
    {
      lf;
      lwidth = width;
      lslot = slot;
      ldata = Array.make (max 1 (n * width)) Tuple.unbound;
      lfill = Bytes.make (max 1 ((n + leaf_chunk - 1) / leaf_chunk)) '\000';
    }

let fill_rows (l : leaf_input) lo hi =
  if hi > lo then begin
    let n = Column_store.leaf_length l.lf in
    let w = l.lwidth and slot = l.lslot in
    let c0 = lo / leaf_chunk and c1 = (hi - 1) / leaf_chunk in
    for c = c0 to c1 do
      if Bytes.unsafe_get l.lfill c = '\000' then begin
        let r0 = c * leaf_chunk in
        let r1 = min n (r0 + leaf_chunk) in
        Column_store.ensure_ids l.lf r0 r1;
        let ids = (Column_store.leaf_cols l.lf).Cols.ids in
        for r = r0 to r1 - 1 do
          Array.unsafe_set l.ldata ((r * w) + slot) (Array.unsafe_get ids r)
        done;
        Bytes.unsafe_set l.lfill c '\001'
      end
    done
  end

let force_leaf (l : leaf_input) =
  ignore (Column_store.force l.lf);
  fill_rows l 0 (Column_store.leaf_length l.lf)

(* Candidate ids from the store are strictly increasing (document
   order), so every row is its own group and [off] is the identity —
   the exact grouping {!group} computes for the materialized scan.  The
   metadata columns alias the leaf's buffer frames; slots become
   readable as the ensure closures fault them in.  [e_meta]/[e_probe]
   memoize their last index: the merge re-ensures the current group on
   every iteration, and one [ref] comparison keeps that re-entry off
   the pool. *)
let leaf_groups (l : leaf_input) =
  let c = Column_store.leaf_cols l.lf in
  let n = Column_store.leaf_length l.lf in
  let last_meta = ref (-1) and last_probe = ref (-1) in
  {
    n;
    off = Array.init (n + 1) Fun.id;
    gstart = c.Cols.starts;
    gend = c.Cols.ends;
    glevel = c.Cols.levels;
    e_meta =
      (fun g ->
        if g <> !last_meta then begin
          Column_store.ensure_meta l.lf g (g + 1);
          last_meta := g
        end);
    e_probe =
      (fun g ->
        if g <> !last_probe then begin
          Column_store.ensure_probe l.lf g;
          last_probe := g
        end);
    e_rows = (fun lo hi -> fill_rows l lo hi);
  }

let input_width = function Rows b -> Batch.width b | Leaf l -> l.lwidth

let input_rows = function
  | Rows b -> Batch.length b
  | Leaf l -> Column_store.leaf_length l.lf

let input_data = function Rows b -> Batch.data b | Leaf l -> l.ldata

let to_batch = function
  | Rows b -> b
  | Leaf l ->
      force_leaf l;
      Batch.unsafe_of_raw ~width:l.lwidth
        ~len:(Column_store.leaf_length l.lf)
        l.ldata

(* ---------- shared merge machinery ---------- *)

(* Deadline/cancellation polls in the merge loops are amortized: a clock
   read per descendant group would dominate small joins. *)
let poll_mask = 255

let poll_merge ~budget iters =
  incr iters;
  if !iters land poll_mask = 0 then Budget.check budget ~during:"execute"

(* First index in [lo, hi) whose value is >= [target]; [hi] if none.
   Exponential probe followed by binary search, so a jump over [d] items
   costs O(log d) instead of O(d).  [probe] faults each examined index in
   before its value is read (a no-op for resident inputs) — the skip
   over [d] items therefore costs O(log d) page touches too, which is
   exactly the out-of-core saving the IO bench measures. *)
let gallop ~probe (a : int array) lo hi target =
  if
    lo >= hi
    ||
    (probe lo;
     Array.unsafe_get a lo >= target)
  then lo
  else begin
    let prev = ref lo and cur = ref (lo + 1) and step = ref 1 in
    while
      !cur < hi
      &&
      (probe !cur;
       Array.unsafe_get a !cur < target)
    do
      prev := !cur;
      step := !step * 2;
      cur := !cur + !step
    done;
    let lo' = ref !prev and hi' = ref (min !cur hi) in
    (* invariant: a.(!lo') < target, and either !hi' = hi or
       a.(!hi') >= target *)
    while !hi' - !lo' > 1 do
      let mid = (!lo' + !hi') / 2 in
      probe mid;
      if Array.unsafe_get a mid < target then lo' := mid else hi' := mid
    done;
    !hi'
  end

(* Merge one ancestor row with one descendant row straight into [out] at
   [obase], mirroring {!Tuple.merge} (including its error message). *)
let merge_rows adata abase ddata dbase out obase width =
  for k = 0 to width - 1 do
    let x = Array.unsafe_get adata (abase + k) in
    let y = Array.unsafe_get ddata (dbase + k) in
    if x = Tuple.unbound then Array.unsafe_set out (obase + k) y
    else if y = Tuple.unbound then Array.unsafe_set out (obase + k) x
    else invalid_arg "Tuple.merge: slot bound on both sides"
  done

(* The Stack-Tree merge over group columns, with an explicit int-indexed
   stack of ancestor group indices.  [emit g d] is called for every
   related (ancestor group, descendant group) pair, bottom-to-top within
   each descendant visit — exactly the legacy emission order.

   Skip-ahead (the batch engine's win over the textbook loop):

   - ancestor side: a group whose interval ends before the current
     descendant group starts can never contain it, nor any later
     descendant (their starts only grow).  The whole dead run is skipped
     in one scan without materializing stack entries; the push+pop
     accounting ([stack_ops]) is still charged so executed counters match
     the legacy kernels bit-for-bit.

   - descendant side: when the stack is empty, nothing can emit until
     the next ancestor group opens at [ag.gstart.(ai)], so every
     descendant group starting before it is galloped over (binary search
     on the sorted start column).

   Both skips are counted in [Metrics.skipped_items] (diagnostics only,
   never priced by the cost model).

   [drain]: sharded runs set it on every shard that has descendant
   groups after its own slice.  Ancestor groups left over when the
   shard's descendants run out are then charged as a dead run
   ([stack_ops] push+pop and [skipped_items]), because that is exactly
   what the serial merge does to them when the first later descendant
   becomes current — every leftover group's interval ends before the
   next cut, hence before any later descendant's start.  The serial
   (unsharded) call passes [drain:false]: with no later descendants the
   serial loop leaves those groups untouched, and so do we. *)
let merge_loop ~budget ~metrics ~axis ~drain (ag : groups) (dg : groups) ~emit =
  let work = Work.current () in
  let iters = ref 0 in
  let stack = ref (Array.make 64 0) in
  let sp = ref 0 in
  let push g =
    if !sp = Array.length !stack then begin
      let bigger = Array.make (2 * !sp) 0 in
      Array.blit !stack 0 bigger 0 !sp;
      stack := bigger
    end;
    Array.unsafe_set !stack !sp g;
    incr sp
  in
  let pop_until start =
    while
      !sp > 0
      && Array.unsafe_get ag.gend (Array.unsafe_get !stack (!sp - 1)) < start
    do
      decr sp
    done
  in
  let is_child = match axis with Axes.Child -> true | Axes.Descendant -> false in
  let na = ag.n and nd = dg.n in
  let ai = ref 0 and di = ref 0 in
  while !di < nd do
    poll_merge ~budget iters;
    dg.e_probe !di;
    let dstart = Array.unsafe_get dg.gstart !di in
    if !ai < na then ag.e_meta !ai;
    if !ai < na && Array.unsafe_get ag.gstart !ai < dstart then begin
      if Array.unsafe_get ag.gend !ai < dstart then begin
        (* ancestor-side skip: dead run (validated documents guarantee
           start < end, so end < dstart implies start < dstart) *)
        let j = ref (!ai + 1) in
        while
          !j < na
          &&
          (ag.e_meta !j;
           Array.unsafe_get ag.gend !j < dstart)
        do
          incr j
        done;
        let items = ag.off.(!j) - ag.off.(!ai) in
        metrics.Metrics.stack_ops <- metrics.Metrics.stack_ops + (2 * items);
        metrics.Metrics.skipped_items <-
          metrics.Metrics.skipped_items + items;
        ai := !j
      end
      else begin
        let astart = Array.unsafe_get ag.gstart !ai in
        pop_until astart;
        metrics.Metrics.stack_ops <-
          metrics.Metrics.stack_ops + (2 * (ag.off.(!ai + 1) - ag.off.(!ai)));
        push !ai;
        incr ai
      end
    end
    else begin
      pop_until dstart;
      if !sp = 0 then
        (* descendant-side skip *)
        if !ai >= na then begin
          metrics.Metrics.skipped_items <-
            metrics.Metrics.skipped_items + (dg.off.(nd) - dg.off.(!di));
          di := nd
        end
        else begin
          let j =
            gallop ~probe:dg.e_probe dg.gstart !di nd
              (Array.unsafe_get ag.gstart !ai)
          in
          if j > !di then begin
            metrics.Metrics.skipped_items <-
              metrics.Metrics.skipped_items + (dg.off.(j) - dg.off.(!di));
            di := j
          end
          else incr di
        end
      else begin
        dg.e_meta !di;
        let dend = Array.unsafe_get dg.gend !di in
        let dlevel = Array.unsafe_get dg.glevel !di in
        (* Deterministic work unit: one comparison per live stack entry
           examined for this descendant group.  The stack holds exactly
           the ancestor groups whose interval contains [dstart], which
           does not depend on shard boundaries (forest-closed cuts) or
           on engine (the legacy join scans the same stack), so totals
           are partition- and engine-invariant. *)
        work.Work.comparisons <- work.Work.comparisons + !sp;
        (* bottom-to-top = ancestor document order within this descendant *)
        for s = 0 to !sp - 1 do
          let g = Array.unsafe_get !stack s in
          if
            dend < Array.unsafe_get ag.gend g
            && Array.unsafe_get ag.gstart g < dstart
            && ((not is_child) || dlevel = Array.unsafe_get ag.glevel g + 1)
          then emit g !di
        done;
        incr di
      end
    end
  done;
  if drain && !ai < na then begin
    let items = ag.off.(na) - ag.off.(!ai) in
    metrics.Metrics.stack_ops <- metrics.Metrics.stack_ops + (2 * items);
    metrics.Metrics.skipped_items <- metrics.Metrics.skipped_items + items
  end

(* --- Stack-Tree-Desc: stream output in descendant order --------------- *)

let run_desc ~budget ~metrics ~axis ~drain ~width ~adata ~ddata (ag : groups)
    (dg : groups) =
  let cap = ref (max 16 (width * 64)) in
  let out = ref (Array.make !cap Tuple.unbound) in
  let out_len = ref 0 in
  let limited = not (Budget.is_unlimited budget) in
  let emit g d =
    let a_lo = ag.off.(g) and a_hi = ag.off.(g + 1) in
    let d_lo = dg.off.(d) and d_hi = dg.off.(d + 1) in
    ag.e_rows a_lo a_hi;
    dg.e_rows d_lo d_hi;
    let npairs = (a_hi - a_lo) * (d_hi - d_lo) in
    let need = npairs * width in
    if !out_len + need > !cap then begin
      while !out_len + need > !cap do
        cap := !cap * 2
      done;
      let bigger = Array.make !cap Tuple.unbound in
      Array.blit !out 0 bigger 0 !out_len;
      out := bigger
    end;
    let buf = !out in
    if limited then
      (* slow path: legacy per-tuple budget-check timing, so a capped run
         stops after exactly the same tuple as the legacy engine *)
      for ar = a_lo to a_hi - 1 do
        let abase = ar * width in
        for dr = d_lo to d_hi - 1 do
          merge_rows adata abase ddata (dr * width) buf !out_len width;
          out_len := !out_len + width;
          metrics.Metrics.output_tuples <- metrics.Metrics.output_tuples + 1;
          Budget.check_tuples budget ~during:"execute"
            ~count:metrics.Metrics.output_tuples
        done
      done
    else begin
      let ol = ref !out_len in
      for ar = a_lo to a_hi - 1 do
        let abase = ar * width in
        for dr = d_lo to d_hi - 1 do
          merge_rows adata abase ddata (dr * width) buf !ol width;
          ol := !ol + width
        done
      done;
      out_len := !ol;
      metrics.Metrics.output_tuples <- metrics.Metrics.output_tuples + npairs
    end
  in
  merge_loop ~budget ~metrics ~axis ~drain ag dg ~emit;
  let len = if width = 0 then 0 else !out_len / width in
  Batch.unsafe_of_raw ~width ~len !out

(* --- Stack-Tree-Anc: buffer pairs until the ancestor pops ------------- *)

let run_anc ~budget ~metrics ~axis ~drain ~width ~adata ~ddata (ag : groups)
    (dg : groups) =
  (* Pairs are buffered as (anc group, anc row, desc row) triples in
     generation order, then laid out by a stable counting sort on the anc
     group index.  The legacy variant's self/inherit chunk chaining emits
     exactly this order: all pairs of group [g] (in generation order)
     before any pair of a later group.  Buffering |AB| pairs is what the
     [2 |AB| f_IO] cost term prices, hence [io_items] at generation. *)
  let pairs = Ibuf.create 256 in
  let counts = Array.make ag.n 0 in
  let limited = not (Budget.is_unlimited budget) in
  let emit g d =
    let a_lo = ag.off.(g) and a_hi = ag.off.(g + 1) in
    let d_lo = dg.off.(d) and d_hi = dg.off.(d + 1) in
    ag.e_rows a_lo a_hi;
    dg.e_rows d_lo d_hi;
    let npairs = (a_hi - a_lo) * (d_hi - d_lo) in
    Ibuf.reserve pairs (3 * npairs);
    if limited then
      (* slow path: legacy per-tuple budget-check timing *)
      for ar = a_lo to a_hi - 1 do
        for dr = d_lo to d_hi - 1 do
          Ibuf.push pairs g;
          Ibuf.push pairs ar;
          Ibuf.push pairs dr;
          counts.(g) <- counts.(g) + 1;
          metrics.Metrics.output_tuples <- metrics.Metrics.output_tuples + 1;
          Budget.check_tuples budget ~during:"execute"
            ~count:metrics.Metrics.output_tuples;
          metrics.Metrics.io_items <- metrics.Metrics.io_items + 2
        done
      done
    else begin
      for ar = a_lo to a_hi - 1 do
        for dr = d_lo to d_hi - 1 do
          Ibuf.push pairs g;
          Ibuf.push pairs ar;
          Ibuf.push pairs dr
        done
      done;
      counts.(g) <- counts.(g) + npairs;
      metrics.Metrics.output_tuples <- metrics.Metrics.output_tuples + npairs;
      metrics.Metrics.io_items <- metrics.Metrics.io_items + (2 * npairs)
    end
  in
  merge_loop ~budget ~metrics ~axis ~drain ag dg ~emit;
  let npairs = Ibuf.length pairs / 3 in
  let pos = Array.make ag.n 0 in
  let acc = ref 0 in
  for g = 0 to ag.n - 1 do
    pos.(g) <- !acc;
    acc := !acc + counts.(g)
  done;
  let out = Array.make (npairs * width) Tuple.unbound in
  let pdata = Ibuf.data pairs in
  for p = 0 to npairs - 1 do
    let g = Array.unsafe_get pdata (3 * p) in
    let ar = Array.unsafe_get pdata ((3 * p) + 1) in
    let dr = Array.unsafe_get pdata ((3 * p) + 2) in
    let row = pos.(g) in
    pos.(g) <- row + 1;
    merge_rows adata (ar * width) ddata (dr * width) out (row * width) width
  done;
  Batch.unsafe_of_raw ~width ~len:npairs out

(* --- root variants: emit boxed tuples directly ----------------------- *)

(* The last join of a plan is immediately converted to [Tuple.t array]
   for the caller; materializing a flat batch first would pay for the
   output twice (flat buffer with growth copies, then one boxed tuple
   per row).  The root variants run the same grouping and skip-ahead
   merge but build each output tuple in boxed form exactly once, like
   the legacy kernels do — so the root join is never slower than legacy
   and every interior operator keeps the columnar win. *)

let merge_rows_boxed adata abase ddata dbase width =
  let t = Array.make width Tuple.unbound in
  for k = 0 to width - 1 do
    let x = Array.unsafe_get adata (abase + k) in
    let y = Array.unsafe_get ddata (dbase + k) in
    if x = Tuple.unbound then Array.unsafe_set t k y
    else if y = Tuple.unbound then Array.unsafe_set t k x
    else invalid_arg "Tuple.merge: slot bound on both sides"
  done;
  t

let run_desc_root ~budget ~metrics ~axis ~drain ~width ~adata ~ddata
    (ag : groups) (dg : groups) =
  let cap = ref 64 in
  let out = ref (Array.make !cap ([||] : Tuple.t)) in
  let out_len = ref 0 in
  let limited = not (Budget.is_unlimited budget) in
  let emit g d =
    let a_lo = ag.off.(g) and a_hi = ag.off.(g + 1) in
    let d_lo = dg.off.(d) and d_hi = dg.off.(d + 1) in
    ag.e_rows a_lo a_hi;
    dg.e_rows d_lo d_hi;
    let npairs = (a_hi - a_lo) * (d_hi - d_lo) in
    if !out_len + npairs > !cap then begin
      while !out_len + npairs > !cap do
        cap := !cap * 2
      done;
      let bigger = Array.make !cap ([||] : Tuple.t) in
      Array.blit !out 0 bigger 0 !out_len;
      out := bigger
    end;
    let buf = !out in
    for ar = a_lo to a_hi - 1 do
      let abase = ar * width in
      for dr = d_lo to d_hi - 1 do
        Array.unsafe_set buf !out_len
          (merge_rows_boxed adata abase ddata (dr * width) width);
        incr out_len;
        metrics.Metrics.output_tuples <- metrics.Metrics.output_tuples + 1;
        if limited then
          Budget.check_tuples budget ~during:"execute"
            ~count:metrics.Metrics.output_tuples
      done
    done
  in
  merge_loop ~budget ~metrics ~axis ~drain ag dg ~emit;
  Array.sub !out 0 !out_len

let run_anc_root ~budget ~metrics ~axis ~drain ~width ~adata ~ddata
    (ag : groups) (dg : groups) =
  let pairs = Ibuf.create 256 in
  let counts = Array.make ag.n 0 in
  let limited = not (Budget.is_unlimited budget) in
  let emit g d =
    let a_lo = ag.off.(g) and a_hi = ag.off.(g + 1) in
    let d_lo = dg.off.(d) and d_hi = dg.off.(d + 1) in
    ag.e_rows a_lo a_hi;
    dg.e_rows d_lo d_hi;
    let npairs = (a_hi - a_lo) * (d_hi - d_lo) in
    Ibuf.reserve pairs (3 * npairs);
    if limited then
      (* slow path: legacy per-tuple budget-check timing *)
      for ar = a_lo to a_hi - 1 do
        for dr = d_lo to d_hi - 1 do
          Ibuf.push pairs g;
          Ibuf.push pairs ar;
          Ibuf.push pairs dr;
          counts.(g) <- counts.(g) + 1;
          metrics.Metrics.output_tuples <- metrics.Metrics.output_tuples + 1;
          Budget.check_tuples budget ~during:"execute"
            ~count:metrics.Metrics.output_tuples;
          metrics.Metrics.io_items <- metrics.Metrics.io_items + 2
        done
      done
    else begin
      for ar = a_lo to a_hi - 1 do
        for dr = d_lo to d_hi - 1 do
          Ibuf.push pairs g;
          Ibuf.push pairs ar;
          Ibuf.push pairs dr
        done
      done;
      counts.(g) <- counts.(g) + npairs;
      metrics.Metrics.output_tuples <- metrics.Metrics.output_tuples + npairs;
      metrics.Metrics.io_items <- metrics.Metrics.io_items + (2 * npairs)
    end
  in
  merge_loop ~budget ~metrics ~axis ~drain ag dg ~emit;
  let npairs = Ibuf.length pairs / 3 in
  let pos = Array.make ag.n 0 in
  let acc = ref 0 in
  for g = 0 to ag.n - 1 do
    pos.(g) <- !acc;
    acc := !acc + counts.(g)
  done;
  let out = Array.make npairs ([||] : Tuple.t) in
  let pdata = Ibuf.data pairs in
  for p = 0 to npairs - 1 do
    let g = Array.unsafe_get pdata (3 * p) in
    let ar = Array.unsafe_get pdata ((3 * p) + 1) in
    let dr = Array.unsafe_get pdata ((3 * p) + 2) in
    let row = pos.(g) in
    pos.(g) <- row + 1;
    Array.unsafe_set out row
      (merge_rows_boxed adata (ar * width) ddata (dr * width) width)
  done;
  out

(* ---------- sharded dispatch ---------- *)

(* Below this many total input rows the pool hand-off costs more than
   the merge; tests lower it to force sharding on tiny documents. *)
let default_par_min_rows = 4096

(* Decide whether (and where) to shard.  Parallelism is declined when
   the budget carries a tuple ceiling: the serial kernels stop after
   exactly the budgeted tuple, and per-shard counters cannot reproduce
   that global ordering.  Deadline/cancellation budgets poll per shard
   and stay on.  Returns the cut array only when it yields >= 2 shards.

   [force] materializes any disk-backed leaf inputs; it runs after the
   cheap size checks but before cut-point selection, which scans the
   full ancestor metadata columns.  Sharded merges therefore never
   fault lazily (see {!sub_groups}): page accounting stays a
   deterministic full scan regardless of domain count, at the price of
   giving up skip-ahead IO savings on joins big enough to shard. *)
let shard_cuts ~pool ~par_min_rows ~budget ~force (ag : groups) (dg : groups) =
  match pool with
  | None -> None
  | Some p ->
      if
        Pool.size p <= 1 || ag.n < 2 || dg.n = 0
        || budget.Budget.max_tuples <> None
        || ag.off.(ag.n) + dg.off.(dg.n) < par_min_rows
      then None
      else begin
        force ();
        (* modest oversubscription so row-balanced cuts of skewed inputs
           still fill every domain *)
        let shards = min (2 * Pool.size p) ag.n in
        let cuts =
          Shard.cut_points ~shards ~off:ag.off ~gstart:ag.gstart ~gend:ag.gend
            ~n:ag.n
        in
        if Array.length cuts <= 2 then None else Some cuts
      end

(* Run [runner] once per shard, merge per-shard metrics into [metrics]
   at the barrier (integer counters are order-independent sums), and
   hand the per-shard outputs back in shard order.  Each shard gets the
   ancestor slice [cuts.(k), cuts.(k+1)) and exactly the descendant
   groups whose start falls at-or-after its first ancestor's start and
   before the next shard's — containment pairs never cross a valid cut,
   so every pair is produced by exactly one shard. *)
let run_sharded ~pool ~cuts ~metrics (ag : groups) (dg : groups) runner =
  let m = Array.length cuts - 1 in
  (if Registry.enabled () then begin
     (* Shard-balance accounting, computed from the cuts alone — fully
        deterministic for a given pool size and input, independent of
        scheduling.  balance = max_weighted / total >= 1.0, with 1.0 a
        perfectly even split; the parallel bench gates on this ratio. *)
     let total = ref 0 and max_rows = ref 0 in
     for k = 0 to m - 1 do
       let alo = cuts.(k) and ahi = cuts.(k + 1) in
       let dlo =
         if k = 0 then 0
         else Shard.lower_bound dg.gstart ~lo:0 ~hi:dg.n ag.gstart.(alo)
       in
       let dhi =
         if k = m - 1 then dg.n
         else Shard.lower_bound dg.gstart ~lo:0 ~hi:dg.n ag.gstart.(ahi)
       in
       let rows = ag.off.(ahi) - ag.off.(alo) + (dg.off.(dhi) - dg.off.(dlo)) in
       total := !total + rows;
       if rows > !max_rows then max_rows := rows
     done;
     Registry.incr (Registry.counter "par.sharded_joins");
     Registry.add (Registry.counter "par.shard_rows_total") !total;
     Registry.add (Registry.counter "par.shard_rows_max_weighted")
       (!max_rows * m)
   end);
  let results =
    Pool.run pool m (fun k ->
        let alo = cuts.(k) and ahi = cuts.(k + 1) in
        let dlo =
          if k = 0 then 0
          else Shard.lower_bound dg.gstart ~lo:0 ~hi:dg.n ag.gstart.(alo)
        in
        let dhi =
          if k = m - 1 then dg.n
          else Shard.lower_bound dg.gstart ~lo:0 ~hi:dg.n ag.gstart.(ahi)
        in
        let shard_metrics = Metrics.create () in
        let out =
          runner ~metrics:shard_metrics ~drain:(dhi < dg.n)
            (sub_groups ag alo ahi) (sub_groups dg dlo dhi)
        in
        (shard_metrics, out))
  in
  Array.iter (fun (sm, _) -> Metrics.add metrics sm) results;
  Array.map snd results

let concat_batches ~width (parts : Batch.t array) =
  let total = Array.fold_left (fun acc b -> acc + Batch.length b) 0 parts in
  let data = Array.make (max 1 (total * width)) Tuple.unbound in
  let pos = ref 0 in
  Array.iter
    (fun b ->
      let n = Batch.length b * width in
      Array.blit (Batch.data b) 0 data !pos n;
      pos := !pos + n)
    parts;
  Batch.unsafe_of_raw ~width ~len:total data

(* ---------- entry points ---------- *)

(* Group an input for a join on [slot].  A leaf joined on its own bound
   slot is served lazily; any other slot is unbound in a leaf's rows, so
   {!group} would reject it anyway — materialize and let it raise the
   same diagnostics a batch input gets.  Document position columns are
   only built when a batch input actually needs them. *)
let group_input ~cols (i : input) slot =
  match i with
  | Rows b -> group ~cols:(Lazy.force cols) b slot
  | Leaf l ->
      if slot = l.lslot then leaf_groups l
      else group ~cols:(Lazy.force cols) (to_batch i) slot

let prepare ~doc ~anc:(anc_i, anc_slot) ~desc:(desc_i, desc_slot) =
  let width = input_width anc_i in
  if input_width desc_i <> width then
    invalid_arg "Stack_tree: input batch widths differ";
  let cols = lazy (Document.positions doc) in
  let ag = group_input ~cols anc_i anc_slot in
  let dg = group_input ~cols desc_i desc_slot in
  (width, input_data anc_i, input_data desc_i, ag, dg)

let force_input = function Rows _ -> () | Leaf l -> force_leaf l

let join_batch_in ?(budget = Budget.unlimited) ?pool
    ?(par_min_rows = default_par_min_rows) ~metrics ~doc ~axis ~algo ~anc ~desc
    () =
  metrics.Metrics.joins <- metrics.Metrics.joins + 1;
  let width, adata, ddata, ag, dg = prepare ~doc ~anc ~desc in
  let runner =
    match algo with
    | Plan.Stack_tree_desc -> run_desc
    | Plan.Stack_tree_anc -> run_anc
  in
  let force () =
    force_input (fst anc);
    force_input (fst desc)
  in
  match shard_cuts ~pool ~par_min_rows ~budget ~force ag dg with
  | Some cuts ->
      let pool = Option.get pool in
      let parts =
        run_sharded ~pool ~cuts ~metrics ag dg (fun ~metrics ~drain sag sdg ->
            runner ~budget ~metrics ~axis ~drain ~width ~adata ~ddata sag sdg)
      in
      concat_batches ~width parts
  | None -> runner ~budget ~metrics ~axis ~drain:false ~width ~adata ~ddata ag dg

let join_root_in ?(budget = Budget.unlimited) ?pool
    ?(par_min_rows = default_par_min_rows) ~metrics ~doc ~axis ~algo ~anc ~desc
    () =
  metrics.Metrics.joins <- metrics.Metrics.joins + 1;
  let width, adata, ddata, ag, dg = prepare ~doc ~anc ~desc in
  let runner =
    match algo with
    | Plan.Stack_tree_desc -> run_desc_root
    | Plan.Stack_tree_anc -> run_anc_root
  in
  let force () =
    force_input (fst anc);
    force_input (fst desc)
  in
  match shard_cuts ~pool ~par_min_rows ~budget ~force ag dg with
  | Some cuts ->
      let pool = Option.get pool in
      let parts =
        run_sharded ~pool ~cuts ~metrics ag dg (fun ~metrics ~drain sag sdg ->
            runner ~budget ~metrics ~axis ~drain ~width ~adata ~ddata sag sdg)
      in
      Array.concat (Array.to_list parts)
  | None -> runner ~budget ~metrics ~axis ~drain:false ~width ~adata ~ddata ag dg

let join_batch ?budget ?pool ?par_min_rows ~metrics ~doc ~axis ~algo
    ~anc:(anc_b, anc_slot) ~desc:(desc_b, desc_slot) () =
  join_batch_in ?budget ?pool ?par_min_rows ~metrics ~doc ~axis ~algo
    ~anc:(Rows anc_b, anc_slot) ~desc:(Rows desc_b, desc_slot) ()

let join_root ?budget ?pool ?par_min_rows ~metrics ~doc ~axis ~algo
    ~anc:(anc_b, anc_slot) ~desc:(desc_b, desc_slot) () =
  join_root_in ?budget ?pool ?par_min_rows ~metrics ~doc ~axis ~algo
    ~anc:(Rows anc_b, anc_slot) ~desc:(Rows desc_b, desc_slot) ()

let join ?budget ?pool ?par_min_rows ~metrics ~doc ~axis ~algo
    ~anc:(anc_tuples, anc_slot) ~desc:(desc_tuples, desc_slot) () =
  let width =
    if Array.length anc_tuples > 0 then Array.length anc_tuples.(0)
    else if Array.length desc_tuples > 0 then Array.length desc_tuples.(0)
    else 0
  in
  let anc_b = Batch.of_tuples ~width anc_tuples in
  let desc_b = Batch.of_tuples ~width desc_tuples in
  Batch.to_tuples
    (join_batch ?budget ?pool ?par_min_rows ~metrics ~doc ~axis ~algo
       ~anc:(anc_b, anc_slot) ~desc:(desc_b, desc_slot) ())
