open Sjos_xml

(* ---------- reusable growable int buffer ---------- *)

module Ibuf = struct
  type t = { mutable len : int; mutable data : int array }

  let create cap = { len = 0; data = Array.make (max cap 16) 0 }
  let length b = b.len
  let clear b = b.len <- 0

  let grow b needed =
    let cap = ref (Array.length b.data) in
    while !cap < needed do
      cap := !cap * 2
    done;
    let data = Array.make !cap 0 in
    Array.blit b.data 0 data 0 b.len;
    b.data <- data

  let reserve b extra = if b.len + extra > Array.length b.data then grow b (b.len + extra)

  let push b v =
    if b.len = Array.length b.data then grow b (b.len + 1);
    Array.unsafe_set b.data b.len v;
    b.len <- b.len + 1

  let get b i = b.data.(i)
  let data b = b.data

  let to_array b = Array.sub b.data 0 b.len
end

(* ---------- columnar tuple batches ---------- *)

type t = { width : int; mutable len : int; mutable data : int array }

let create ?(cap = 64) width =
  { width; len = 0; data = Array.make (max width (cap * width)) Tuple.unbound }

let width b = b.width
let length b = b.len
let data b = b.data

let get b row slot = b.data.((row * b.width) + slot)

let unsafe_of_raw ~width ~len data =
  if len * width > Array.length data then
    invalid_arg "Batch.unsafe_of_raw: data shorter than len * width";
  { width; len; data }

let of_tuples ~width (tuples : Tuple.t array) =
  let n = Array.length tuples in
  let data = Array.make (n * width) Tuple.unbound in
  for i = 0 to n - 1 do
    let t = Array.unsafe_get tuples i in
    if Array.length t <> width then
      invalid_arg "Batch.of_tuples: tuple width mismatch";
    Array.blit t 0 data (i * width) width
  done;
  { width; len = n; data }

let to_tuples b =
  (* hand-rolled: one [Array.init]+[Array.sub] per row costs two extra
     C calls on what is the single hottest conversion in the engine *)
  let { width; len; data } = b in
  if len = 0 then [||]
  else begin
    let out = Array.make len ([||] : Tuple.t) in
    for i = 0 to len - 1 do
      let t = Array.make width Tuple.unbound in
      let base = i * width in
      for k = 0 to width - 1 do
        Array.unsafe_set t k (Array.unsafe_get data (base + k))
      done;
      Array.unsafe_set out i t
    done;
    out
  end

let of_ids ~width ~slot (ids : int array) =
  if slot < 0 || slot >= width then invalid_arg "Batch.of_ids: slot out of range";
  let n = Array.length ids in
  let data = Array.make (n * width) Tuple.unbound in
  for i = 0 to n - 1 do
    Array.unsafe_set data ((i * width) + slot) (Array.unsafe_get ids i)
  done;
  { width; len = n; data }

(* ---------- key-column sorts ---------- *)

(* Stable permutation sort on a precomputed int key column: the comparator
   touches only machine ints — no [Document.node] calls, no polymorphic
   compare. *)
let sort_perm (keys : int array) =
  let n = Array.length keys in
  let perm = Array.init n (fun i -> i) in
  Array.stable_sort
    (fun i j -> Int.compare (Array.unsafe_get keys i) (Array.unsafe_get keys j))
    perm;
  perm

let key_of_id ~what (starts : int array) id =
  if id < 0 || id >= Array.length starts then
    invalid_arg (Printf.sprintf "%s: id %d out of range" what id)
  else Array.unsafe_get starts id

let sort ~doc ~by b =
  let { Cols.starts; _ } = Document.positions doc in
  let n = b.len and w = b.width in
  let keys = Array.make n 0 in
  for i = 0 to n - 1 do
    keys.(i) <-
      key_of_id ~what:"Batch.sort" starts (Array.unsafe_get b.data ((i * w) + by))
  done;
  let perm = sort_perm keys in
  let data = Array.make (n * w) Tuple.unbound in
  for i = 0 to n - 1 do
    Array.blit b.data (Array.unsafe_get perm i * w) data (i * w) w
  done;
  { width = w; len = n; data }

let sort_tuples ~doc ~by (tuples : Tuple.t array) =
  let { Cols.starts; _ } = Document.positions doc in
  let n = Array.length tuples in
  let keys = Array.make n 0 in
  for i = 0 to n - 1 do
    keys.(i) <-
      key_of_id ~what:"Batch.sort_tuples" starts
        (Tuple.get (Array.unsafe_get tuples i) by)
  done;
  let perm = sort_perm keys in
  Array.init n (fun i -> tuples.(perm.(i)))
